(* The benchmark harness, in two parts.

   Part 1 regenerates every table of the paper reproduction (E1..E12
   plus the A1 ablation):
   these are simulation experiments, so the numbers that matter are the
   *simulated* metrics inside each table; each runs once in quick mode
   (pass --full for full-size parameters).

   Part 2 is a Bechamel microbenchmark suite over the substrate's hot
   operations (event queue, CRC, AAL5, switching, scheduling decisions,
   name resolution, cache), one Test.make per operation, reporting
   host-machine ns/op. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 2: microbenchmark definitions.                                 *)

let bench_engine =
  Test.make ~name:"engine: 1k timer events"
    (Staged.stage (fun () ->
         let e = Sim.Engine.create () in
         for i = 1 to 1000 do
           ignore (Sim.Engine.schedule e ~delay:(Sim.Time.us i) (fun () -> ()))
         done;
         Sim.Engine.run e))

let bench_heap =
  Test.make ~name:"heap: 1k push+pop"
    (Staged.stage (fun () ->
         let h = Sim.Heap.create () in
         for i = 1 to 1000 do
           Sim.Heap.push h ~key:(Int64.of_int (i * 7919 mod 1000)) ~seq:i ()
         done;
         let rec drain () = match Sim.Heap.pop h with Some _ -> drain () | None -> () in
         drain ()))

let bench_rng =
  let rng = Sim.Rng.create () in
  Test.make ~name:"rng: int64" (Staged.stage (fun () -> ignore (Sim.Rng.int64 rng)))

let bench_crc =
  let buf = Bytes.create 1024 in
  Test.make ~name:"crc32: 1KB" (Staged.stage (fun () -> ignore (Atm.Crc32.digest_bytes buf)))

let bench_aal5 =
  let payload = Bytes.create 1024 in
  Test.make ~name:"aal5: segment+reassemble 1KB"
    (Staged.stage (fun () ->
         let cells = Atm.Aal5.segment ~vci:1 payload in
         let r = Atm.Aal5.Reassembler.create () in
         List.iter (fun c -> ignore (Atm.Aal5.Reassembler.push r c)) cells))

let bench_switch =
  let e = Sim.Engine.create () in
  let sw = Atm.Switch.create e ~name:"sw" ~ports:16 () in
  for vci = 32 to 1031 do
    Atm.Switch.add_route sw ~in_port:0 ~in_vci:vci ~out_port:1
      ~out_vci:(vci + 1000)
  done;
  Test.make ~name:"switch: route lookup"
    (Staged.stage (fun () -> ignore (Atm.Switch.route sw ~in_port:0 ~in_vci:500)))

let bench_tile =
  let p =
    {
      Atm.Tile.x = 10;
      y = 20;
      frame = 3;
      count = 8;
      bytes_per_tile = 8;
      captured_at = Sim.Time.us 1;
      data = Bytes.create 64;
    }
  in
  Test.make ~name:"tile: marshal+unmarshal"
    (Staged.stage (fun () -> ignore (Atm.Tile.unmarshal (Atm.Tile.marshal p))))

let bench_select =
  let domains =
    List.init 8 (fun i ->
        let d =
          Nemesis.Domain.create
            ~name:(Printf.sprintf "d%d" i)
            ~period:(Sim.Time.ms (10 + i)) ~slice:(Sim.Time.ms 1) ()
        in
        Nemesis.Domain.add_job d
          (Nemesis.Job.make ~work:(Sim.Time.ms 1) ~created:Sim.Time.zero ());
        d)
  in
  let policy = Nemesis.Policy.atropos () in
  Test.make ~name:"scheduler: atropos select (8 domains)"
    (Staged.stage (fun () ->
         ignore (policy.Nemesis.Policy.select ~domains ~now:(Sim.Time.ms 5))))

let bench_resolve =
  let ns = Naming.Namespace.create () in
  Naming.Namespace.bind ns ~path:"a/b/c/obj"
    (Naming.Maillon.of_iface ~reference:"o" (Naming.Maillon.iface []));
  Test.make ~name:"naming: resolve depth 4"
    (Staged.stage (fun () -> ignore (Naming.Namespace.resolve ns "a/b/c/obj")))

let bench_maillon =
  let m =
    Naming.Maillon.of_iface ~reference:"o"
      (Naming.Maillon.iface [ ("f", fun b -> b) ])
  in
  Test.make ~name:"naming: maillon invoke"
    (Staged.stage (fun () -> ignore (Naming.Maillon.invoke m ~meth:"f" Bytes.empty)))

let bench_cache =
  let c = Pfs.Cache.create ~capacity_blocks:1024 () in
  let i = ref 0 in
  Test.make ~name:"cache: LRU access"
    (Staged.stage (fun () ->
         incr i;
         ignore (Pfs.Cache.access c ~fid:1 ~block:(!i mod 2048))))

let bench_garbage =
  Test.make ~name:"garbage: 1k appends + marker cycle"
    (Staged.stage (fun () ->
         let g = Pfs.Garbage.create () in
         for s = 1 to 1000 do
           Pfs.Garbage.append g ~seg:s ~off:0 ~len:100
         done;
         Pfs.Garbage.set_marker g;
         ignore (Pfs.Garbage.before_marker g);
         Pfs.Garbage.truncate_to_marker g))

let bench_wire =
  let msg =
    {
      Rpc.Wire.kind = Rpc.Wire.Request;
      call_id = 42;
      iface = "pfs";
      meth = "read";
      payload = Bytes.create 64;
    }
  in
  Test.make ~name:"rpc: wire marshal+unmarshal"
    (Staged.stage (fun () -> ignore (Rpc.Wire.unmarshal (Rpc.Wire.marshal msg))))

let bench_bulk_chunking =
  let e = Sim.Engine.create () in
  let net = Atm.Net.create e in
  let a = Atm.Net.add_host net ~name:"a" in
  let b = Atm.Net.add_host net ~name:"b" in
  Atm.Net.connect net a b;
  let sender, _ = Rpc.Bulk.establish net ~src:a ~dst:b ~on_data:(fun _ -> ()) () in
  let blob = Bytes.create 65536 in
  Test.make ~name:"bulk: chunk 64KB to MTU"
    (Staged.stage (fun () -> Rpc.Bulk.send sender blob))

let bench_vnode_lookup =
  let e = Sim.Engine.create () in
  let raid = Pfs.Raid.create e ~segment_bytes:65536 () in
  let log = Pfs.Log.create e ~raid () in
  let fs = Pfs.Vnode.create e ~log () in
  Pfs.Vnode.mkdir fs "a" (fun _ -> ());
  Pfs.Vnode.mkdir fs "a/b" (fun _ -> ());
  Pfs.Vnode.creat fs "a/b/f" (fun _ -> ());
  Sim.Engine.run e;
  Test.make ~name:"vnode: path lookup depth 3"
    (Staged.stage (fun () -> ignore (Pfs.Vnode.exists fs "a/b/f")))

let microbenches =
  [
    bench_bulk_chunking;
    bench_vnode_lookup;
    bench_engine;
    bench_heap;
    bench_rng;
    bench_crc;
    bench_aal5;
    bench_switch;
    bench_tile;
    bench_select;
    bench_resolve;
    bench_maillon;
    bench_cache;
    bench_garbage;
    bench_wire;
  ]

let run_microbenches () =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "%-40s %14s\n" "microbenchmark" "time/op";
  Printf.printf "%s\n" (String.make 56 '-');
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test |> Analyze.all ols Instance.monotonic_clock
      in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              let pretty =
                if est > 1.0e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
                else if est > 1.0e3 then Printf.sprintf "%.2f us" (est /. 1e3)
                else Printf.sprintf "%.1f ns" est
              in
              Printf.printf "%-40s %14s\n" name pretty
          | Some _ | None -> Printf.printf "%-40s %14s\n" name "n/a")
        results)
    microbenches;
  Printf.printf "%s\n" (String.make 56 '-')

let () =
  let quick = not (Array.exists (fun a -> a = "--full") Sys.argv) in
  Format.printf
    "Pegasus/Nemesis reproduction — benchmark harness@.";
  Format.printf
    "Part 1: paper-claim tables (%s parameters)@.@."
    (if quick then "quick; pass --full for full-size" else "full-size");
  Experiments.Registry.run_all ~quick Format.std_formatter;
  Format.printf "@.Part 2: substrate microbenchmarks (host CPU time)@.@.";
  run_microbenches ()
