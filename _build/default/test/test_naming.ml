(* Tests for naming: namespaces, mounts, maillons, clerks. *)

let obj name =
  Naming.Maillon.of_iface ~reference:name
    (Naming.Maillon.iface
       [ ("name", fun _ -> Bytes.of_string name); ("echo", fun b -> b) ])

let check_resolves ns path expected =
  match Naming.Namespace.resolve ns path with
  | Ok r ->
      Alcotest.(check string) ("resolve " ^ path) expected
        (Naming.Maillon.reference r.Naming.Namespace.maillon);
      r
  | Error e ->
      Alcotest.failf "resolve %s: %a" path Naming.Namespace.pp_error e

let namespace_tests =
  [
    Alcotest.test_case "bind then resolve is identity" `Quick (fun () ->
        let ns = Naming.Namespace.create () in
        Naming.Namespace.bind ns ~path:"dev/camera" (obj "cam0");
        let r = check_resolves ns "dev/camera" "cam0" in
        Alcotest.(check int) "two components" 2 r.Naming.Namespace.components;
        Alcotest.(check int) "no mounts" 0 r.Naming.Namespace.mounts_crossed);
    Alcotest.test_case "leading slash is tolerated" `Quick (fun () ->
        let ns = Naming.Namespace.create () in
        Naming.Namespace.bind ns ~path:"svc/fs" (obj "pfs");
        ignore (check_resolves ns "/svc/fs" "pfs"));
    Alcotest.test_case "resolution cost grows with depth" `Quick (fun () ->
        let ns = Naming.Namespace.create () in
        Naming.Namespace.bind ns ~path:"a" (obj "shallow");
        Naming.Namespace.bind ns ~path:"x/y/z/w/deep" (obj "deep");
        let shallow = check_resolves ns "a" "shallow" in
        let deep = check_resolves ns "x/y/z/w/deep" "deep" in
        Alcotest.(check bool) "deeper costs more" true
          Sim.Time.(shallow.Naming.Namespace.cost < deep.Naming.Namespace.cost));
    Alcotest.test_case "missing names report the failing component" `Quick
      (fun () ->
        let ns = Naming.Namespace.create () in
        Naming.Namespace.bind ns ~path:"a/b" (obj "x");
        (match Naming.Namespace.resolve ns "a/zzz" with
        | Error (Naming.Namespace.Not_found_at "zzz") -> ()
        | _ -> Alcotest.fail "expected Not_found_at zzz");
        match Naming.Namespace.resolve ns "a/b/c" with
        | Error (Naming.Namespace.Not_a_directory "b") -> ()
        | _ -> Alcotest.fail "expected Not_a_directory b");
    Alcotest.test_case "mounted namespaces resolve transparently" `Quick
      (fun () ->
        let local = Naming.Namespace.create ~name:"local" () in
        let fileserver = Naming.Namespace.create ~name:"pfs" () in
        Naming.Namespace.bind fileserver ~path:"media/film" (obj "film1");
        Naming.Namespace.mount local ~path:"fs" ~target:fileserver
          ~via:(Naming.Relation.Remote (Sim.Time.us 500));
        let r = check_resolves local "fs/media/film" "film1" in
        Alcotest.(check int) "one mount crossed" 1 r.Naming.Namespace.mounts_crossed;
        Alcotest.(check bool) "pays the RPC lookup" true
          Sim.Time.(r.Naming.Namespace.cost > Sim.Time.us 500));
    Alcotest.test_case "local names are cheaper than mounted ones" `Quick
      (fun () ->
        let local = Naming.Namespace.create () in
        let remote = Naming.Namespace.create () in
        Naming.Namespace.bind local ~path:"obj" (obj "here");
        Naming.Namespace.bind remote ~path:"obj" (obj "there");
        Naming.Namespace.mount local ~path:"far" ~target:remote
          ~via:(Naming.Relation.Remote (Sim.Time.us 500));
        let here = check_resolves local "obj" "here" in
        let there = check_resolves local "far/obj" "there" in
        Alcotest.(check bool) "local wins by >10x" true
          Sim.Time.(
            Sim.Time.mul here.Naming.Namespace.cost 10
            < there.Naming.Namespace.cost));
    Alcotest.test_case "mounts chain across two hops" `Quick (fun () ->
        let a = Naming.Namespace.create ~name:"a" () in
        let b = Naming.Namespace.create ~name:"b" () in
        let c = Naming.Namespace.create ~name:"c" () in
        Naming.Namespace.bind c ~path:"leaf" (obj "end");
        Naming.Namespace.mount b ~path:"next" ~target:c
          ~via:Naming.Relation.Same_machine;
        Naming.Namespace.mount a ~path:"next" ~target:b
          ~via:Naming.Relation.Same_machine;
        let r = check_resolves a "next/next/leaf" "end" in
        Alcotest.(check int) "two mounts" 2 r.Naming.Namespace.mounts_crossed);
    Alcotest.test_case "mount cycles are detected" `Quick (fun () ->
        let a = Naming.Namespace.create ~name:"a" () in
        let b = Naming.Namespace.create ~name:"b" () in
        Naming.Namespace.mount a ~path:"b" ~target:b ~via:Naming.Relation.Same_domain;
        Naming.Namespace.mount b ~path:"a" ~target:a ~via:Naming.Relation.Same_domain;
        match Naming.Namespace.resolve a "b/a/b/a/b/a/b/a/b/a/b/a/b/a/b/a/b/a/b/a/b/a/b/a/b/a/b/a/b/a/b/a/b/a/b/a/x" with
        | Error Naming.Namespace.Mount_cycle -> ()
        | Error e -> Alcotest.failf "unexpected error %a" Naming.Namespace.pp_error e
        | Ok _ -> Alcotest.fail "expected cycle detection");
    Alcotest.test_case "readdir lists local entries" `Quick (fun () ->
        let ns = Naming.Namespace.create () in
        Naming.Namespace.bind ns ~path:"dev/camera" (obj "c");
        Naming.Namespace.bind ns ~path:"dev/audio" (obj "a");
        Naming.Namespace.mkdir ns ~path:"dev/empty";
        (match Naming.Namespace.readdir ns "dev" with
        | Ok names ->
            Alcotest.(check (list string)) "names" [ "audio"; "camera"; "empty" ] names
        | Error _ -> Alcotest.fail "readdir failed"));
    Alcotest.test_case "a forked namespace is independent" `Quick (fun () ->
        let parent = Naming.Namespace.create ~name:"parent" () in
        Naming.Namespace.bind parent ~path:"shared/svc" (obj "svc");
        let child = Naming.Namespace.fork parent ~name:"child" in
        ignore (check_resolves child "shared/svc" "svc");
        Naming.Namespace.bind child ~path:"private/thing" (obj "mine");
        ignore (check_resolves child "private/thing" "mine");
        match Naming.Namespace.resolve parent "private/thing" with
        | Error (Naming.Namespace.Not_found_at _) -> ()
        | _ -> Alcotest.fail "child bind leaked into parent");
    Alcotest.test_case "unmount detaches the remote tree" `Quick (fun () ->
        let local = Naming.Namespace.create () in
        let remote = Naming.Namespace.create () in
        Naming.Namespace.bind remote ~path:"x" (obj "x");
        Naming.Namespace.mount local ~path:"r" ~target:remote
          ~via:Naming.Relation.Same_domain;
        ignore (check_resolves local "r/x" "x");
        Naming.Namespace.unmount local ~path:"r";
        match Naming.Namespace.resolve local "r/x" with
        | Error (Naming.Namespace.Not_found_at _) -> ()
        | _ -> Alcotest.fail "mount survived unmount");
    Alcotest.test_case "the /global convention is just another subtree" `Quick
      (fun () ->
        (* Two processes agree by convention on a "global" subtree; the
           same object is reachable in both, under the same name. *)
        let universe = Naming.Namespace.create ~name:"universe" () in
        Naming.Namespace.bind universe ~path:"org/pegasus/fs" (obj "pfs");
        let p1 = Naming.Namespace.create ~name:"p1" () in
        let p2 = Naming.Namespace.create ~name:"p2" () in
        Naming.Namespace.mount p1 ~path:"global" ~target:universe
          ~via:(Naming.Relation.Remote (Sim.Time.ms 2));
        Naming.Namespace.mount p2 ~path:"global" ~target:universe
          ~via:(Naming.Relation.Remote (Sim.Time.ms 5));
        ignore (check_resolves p1 "global/org/pegasus/fs" "pfs");
        ignore (check_resolves p2 "global/org/pegasus/fs" "pfs"));
  ]

let maillon_tests =
  [
    Alcotest.test_case "resolution is lazy and cached" `Quick (fun () ->
        let m =
          Naming.Maillon.make ~reference:"r"
            ~resolve:(fun _ -> Naming.Maillon.iface [ ("f", fun b -> b) ])
        in
        Alcotest.(check bool) "not yet resolved" false (Naming.Maillon.resolved m);
        Alcotest.(check int) "0 resolutions" 0 (Naming.Maillon.resolutions m);
        ignore (Naming.Maillon.invoke m ~meth:"f" Bytes.empty);
        ignore (Naming.Maillon.invoke m ~meth:"f" Bytes.empty);
        Alcotest.(check int) "1 resolution" 1 (Naming.Maillon.resolutions m);
        Alcotest.(check int) "2 invocations" 2 (Naming.Maillon.invocations m));
    Alcotest.test_case "unknown method is an error" `Quick (fun () ->
        let m = obj "o" in
        match Naming.Maillon.invoke m ~meth:"zzz" Bytes.empty with
        | Error (Naming.Maillon.No_such_method "zzz") -> ()
        | _ -> Alcotest.fail "expected No_such_method");
    Alcotest.test_case "invalidate forces re-resolution (object migrated)"
      `Quick (fun () ->
        let where = ref "host-a" in
        let m =
          Naming.Maillon.make ~reference:"mobile"
            ~resolve:(fun _ ->
              let location = !where in
              Naming.Maillon.iface
                [ ("where", fun _ -> Bytes.of_string location) ])
        in
        let call () =
          match Naming.Maillon.invoke m ~meth:"where" Bytes.empty with
          | Ok b -> Bytes.to_string b
          | Error _ -> Alcotest.fail "call failed"
        in
        Alcotest.(check string) "before" "host-a" (call ());
        where := "host-b";
        Alcotest.(check string) "stale cache" "host-a" (call ());
        Naming.Maillon.invalidate m;
        Alcotest.(check string) "after migration" "host-b" (call ());
        Alcotest.(check int) "re-resolved" 2 (Naming.Maillon.resolutions m));
    Alcotest.test_case "import interposes a stub" `Quick (fun () ->
        let m = obj "o" in
        let wrapped_calls = ref 0 in
        let wrap i =
          Naming.Maillon.iface
            (List.map
               (fun meth ->
                 ( meth,
                   fun b ->
                     incr wrapped_calls;
                     match Naming.Maillon.invoke m ~meth b with
                     | Ok r -> r
                     | Error _ -> Bytes.empty ))
               (Naming.Maillon.methods i))
        in
        let imported = Naming.Maillon.import m ~wrap in
        (match Naming.Maillon.invoke imported ~meth:"echo" (Bytes.of_string "hi") with
        | Ok b -> Alcotest.(check string) "through stub" "hi" (Bytes.to_string b)
        | Error _ -> Alcotest.fail "failed");
        Alcotest.(check int) "stub ran" 1 !wrapped_calls);
    Alcotest.test_case "invocation cost ladder is ordered" `Quick (fun () ->
        let local = Naming.Relation.invocation_cost Naming.Relation.Same_domain in
        let protected_ =
          Naming.Relation.invocation_cost Naming.Relation.Same_machine
        in
        let remote =
          Naming.Relation.invocation_cost (Naming.Relation.Remote (Sim.Time.us 400))
        in
        Alcotest.(check bool) "local << protected" true
          Sim.Time.(Sim.Time.mul local 10 < protected_);
        Alcotest.(check bool) "protected < remote" true
          Sim.Time.(protected_ < remote);
        Alcotest.(check bool) "maillon overhead is tiny" true
          Sim.Time.(Naming.Relation.maillon_overhead < local));
  ]

let clerk_tests =
  [
    Alcotest.test_case "clerk caches within the TTL" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let backend_calls = ref 0 in
        let m =
          Naming.Maillon.of_iface ~reference:"svc"
            (Naming.Maillon.iface
               [
                 ( "get",
                   fun _ ->
                     incr backend_calls;
                     Bytes.of_string "v" );
               ])
        in
        let clerk =
          Naming.Clerk.wrap m ~ttl:(Sim.Time.ms 10)
            ~clock:(fun () -> Sim.Engine.now e)
        in
        ignore (Naming.Clerk.invoke clerk ~meth:"get" Bytes.empty);
        ignore (Naming.Clerk.invoke clerk ~meth:"get" Bytes.empty);
        ignore (Naming.Clerk.invoke clerk ~meth:"get" Bytes.empty);
        Alcotest.(check int) "backend once" 1 !backend_calls;
        Alcotest.(check int) "hits" 2 (Naming.Clerk.hits clerk);
        (* Advance past the TTL: the next call misses. *)
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 20) (fun () -> ()));
        Sim.Engine.run e;
        ignore (Naming.Clerk.invoke clerk ~meth:"get" Bytes.empty);
        Alcotest.(check int) "backend again" 2 !backend_calls);
    Alcotest.test_case "distinct arguments are distinct entries" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let m = obj "o" in
        let clerk =
          Naming.Clerk.wrap m ~ttl:(Sim.Time.sec 1)
            ~clock:(fun () -> Sim.Engine.now e)
        in
        ignore (Naming.Clerk.invoke clerk ~meth:"echo" (Bytes.of_string "a"));
        ignore (Naming.Clerk.invoke clerk ~meth:"echo" (Bytes.of_string "b"));
        Alcotest.(check int) "both missed" 2 (Naming.Clerk.misses clerk));
    Alcotest.test_case "invalidate clears the cache" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let m = obj "o" in
        let clerk =
          Naming.Clerk.wrap m ~ttl:(Sim.Time.sec 1)
            ~clock:(fun () -> Sim.Engine.now e)
        in
        ignore (Naming.Clerk.invoke clerk ~meth:"echo" (Bytes.of_string "a"));
        Naming.Clerk.invalidate clerk;
        ignore (Naming.Clerk.invoke clerk ~meth:"echo" (Bytes.of_string "a"));
        Alcotest.(check int) "no hits" 0 (Naming.Clerk.hits clerk));
    Alcotest.test_case "errors are not cached" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let m = obj "o" in
        let clerk =
          Naming.Clerk.wrap m ~ttl:(Sim.Time.sec 1)
            ~clock:(fun () -> Sim.Engine.now e)
        in
        (match Naming.Clerk.invoke clerk ~meth:"nope" Bytes.empty with
        | Error (Naming.Maillon.No_such_method _) -> ()
        | Ok _ -> Alcotest.fail "expected error");
        Alcotest.(check int) "miss recorded" 1 (Naming.Clerk.misses clerk);
        match Naming.Clerk.invoke clerk ~meth:"nope" Bytes.empty with
        | Error _ -> Alcotest.(check int) "missed again" 2 (Naming.Clerk.misses clerk)
        | Ok _ -> Alcotest.fail "expected error");
  ]

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"bind/resolve identity on arbitrary paths"
         ~count:200
         QCheck2.Gen.(
           list_size (int_range 1 6)
             (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)))
         (fun segments ->
           let path = String.concat "/" segments in
           let ns = Naming.Namespace.create () in
           Naming.Namespace.bind ns ~path
             (Naming.Maillon.of_iface ~reference:path (Naming.Maillon.iface []));
           match Naming.Namespace.resolve ns path with
           | Ok r ->
               Naming.Maillon.reference r.Naming.Namespace.maillon = path
               && r.Naming.Namespace.components = List.length segments
           | Error _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"resolution cost is monotone in depth" ~count:50
         QCheck2.Gen.(int_range 1 10)
         (fun depth ->
           let ns = Naming.Namespace.create () in
           let path d = String.concat "/" (List.init d (Printf.sprintf "c%d")) in
           Naming.Namespace.bind ns ~path:(path depth)
             (Naming.Maillon.of_iface ~reference:"deep" (Naming.Maillon.iface []));
           Naming.Namespace.bind ns ~path:"x"
             (Naming.Maillon.of_iface ~reference:"shallow" (Naming.Maillon.iface []));
           match
             ( Naming.Namespace.resolve ns "x",
               Naming.Namespace.resolve ns (path depth) )
           with
           | Ok a, Ok b ->
               depth = 1
               || Sim.Time.(a.Naming.Namespace.cost < b.Naming.Namespace.cost)
           | _ -> false));
  ]

let () =
  Alcotest.run "naming"
    [
      ("namespace", namespace_tests);
      ("maillon", maillon_tests);
      ("clerk", clerk_tests);
      ("properties", property_tests);
    ]
