(* Tests for the Unix v-node interface over the log-structured core. *)

let rig () =
  let e = Sim.Engine.create () in
  let raid = Pfs.Raid.create e ~store_data:true ~segment_bytes:65536 () in
  let log = Pfs.Log.create e ~raid () in
  let fs = Pfs.Vnode.create e ~log () in
  (e, fs)

let ok e what k_f =
  let result = ref None in
  k_f (fun r -> result := Some r);
  Sim.Engine.run e;
  match !result with
  | Some (Ok v) -> v
  | Some (Error err) -> Alcotest.failf "%s: %a" what Pfs.Vnode.pp_error err
  | None -> Alcotest.failf "%s never completed" what

let expect_err e what expected k_f =
  let result = ref None in
  k_f (fun r -> result := Some r);
  Sim.Engine.run e;
  match !result with
  | Some (Error err) when err = expected -> ()
  | Some (Error err) ->
      Alcotest.failf "%s: wrong error %a" what Pfs.Vnode.pp_error err
  | Some (Ok _) -> Alcotest.failf "%s unexpectedly succeeded" what
  | None -> Alcotest.failf "%s never completed" what

let basic_tests =
  [
    Alcotest.test_case "create, write, read back through paths" `Quick
      (fun () ->
        let e, fs = rig () in
        ok e "mkdir" (Pfs.Vnode.mkdir fs "home");
        ok e "mkdir2" (Pfs.Vnode.mkdir fs "home/sape");
        ok e "creat" (Pfs.Vnode.creat fs "home/sape/paper.tex");
        let data = Bytes.of_string "\\section{Kernel Support}" in
        ok e "write"
          (Pfs.Vnode.write fs "home/sape/paper.tex" ~off:0 ~data
             ~len:(Bytes.length data));
        (match
           ok e "read"
             (Pfs.Vnode.read fs "home/sape/paper.tex" ~off:0 ~len:(Bytes.length data))
         with
        | Some b -> Alcotest.(check bytes) "content" data b
        | None -> Alcotest.fail "no data");
        let attrs = ok e "stat" (Pfs.Vnode.stat fs "home/sape/paper.tex") in
        Alcotest.(check int) "size" (Bytes.length data) attrs.Pfs.Vnode.size;
        Alcotest.(check bool) "file" false attrs.Pfs.Vnode.is_dir);
    Alcotest.test_case "reads are truncated at end of file" `Quick (fun () ->
        let e, fs = rig () in
        ok e "creat" (Pfs.Vnode.creat fs "f");
        ok e "write" (Pfs.Vnode.write fs "f" ~off:0 ~len:100);
        match ok e "read" (Pfs.Vnode.read fs "f" ~off:50 ~len:1000) with
        | Some b -> Alcotest.(check int) "clamped" 50 (Bytes.length b)
        | None -> Alcotest.fail "no data");
    Alcotest.test_case "readdir and stat on directories" `Quick (fun () ->
        let e, fs = rig () in
        ok e "mkdir" (Pfs.Vnode.mkdir fs "etc");
        ok e "creat1" (Pfs.Vnode.creat fs "etc/passwd");
        ok e "creat2" (Pfs.Vnode.creat fs "etc/motd");
        Alcotest.(check (list string))
          "entries" [ "motd"; "passwd" ]
          (ok e "readdir" (Pfs.Vnode.readdir fs "etc"));
        let attrs = ok e "stat" (Pfs.Vnode.stat fs "etc") in
        Alcotest.(check bool) "is dir" true attrs.Pfs.Vnode.is_dir);
    Alcotest.test_case "unlink removes files, not directories" `Quick
      (fun () ->
        let e, fs = rig () in
        ok e "mkdir" (Pfs.Vnode.mkdir fs "d");
        ok e "creat" (Pfs.Vnode.creat fs "d/f");
        ok e "unlink" (Pfs.Vnode.unlink fs "d/f");
        Alcotest.(check bool) "gone" false (Pfs.Vnode.exists fs "d/f");
        expect_err e "unlink dir" `Is_a_directory (Pfs.Vnode.unlink fs "d"));
    Alcotest.test_case "rmdir refuses non-empty directories" `Quick (fun () ->
        let e, fs = rig () in
        ok e "mkdir" (Pfs.Vnode.mkdir fs "d");
        ok e "creat" (Pfs.Vnode.creat fs "d/f");
        expect_err e "rmdir" `Not_empty (Pfs.Vnode.rmdir fs "d");
        ok e "unlink" (Pfs.Vnode.unlink fs "d/f");
        ok e "rmdir now" (Pfs.Vnode.rmdir fs "d");
        Alcotest.(check bool) "gone" false (Pfs.Vnode.exists fs "d"));
    Alcotest.test_case "rename moves across directories" `Quick (fun () ->
        let e, fs = rig () in
        ok e "mkdir a" (Pfs.Vnode.mkdir fs "a");
        ok e "mkdir b" (Pfs.Vnode.mkdir fs "b");
        ok e "creat" (Pfs.Vnode.creat fs "a/f");
        ok e "write" (Pfs.Vnode.write fs "a/f" ~off:0 ~data:(Bytes.of_string "x") ~len:1);
        ok e "rename" (Pfs.Vnode.rename fs "a/f" "b/g");
        Alcotest.(check bool) "source gone" false (Pfs.Vnode.exists fs "a/f");
        (match ok e "read" (Pfs.Vnode.read fs "b/g" ~off:0 ~len:1) with
        | Some b -> Alcotest.(check string) "content" "x" (Bytes.to_string b)
        | None -> Alcotest.fail "no data");
        expect_err e "rename onto existing" `Already_exists
          (Pfs.Vnode.rename fs "b/g" "b/g"));
    Alcotest.test_case "errors: missing paths and wrong kinds" `Quick
      (fun () ->
        let e, fs = rig () in
        ok e "creat" (Pfs.Vnode.creat fs "plain");
        expect_err e "read missing" `Not_found
          (Pfs.Vnode.read fs "nope" ~off:0 ~len:1);
        expect_err e "creat dup" `Already_exists (Pfs.Vnode.creat fs "plain");
        expect_err e "descend through file" `Not_a_directory
          (Pfs.Vnode.creat fs "plain/sub");
        expect_err e "readdir of file" `Not_a_directory
          (Pfs.Vnode.readdir fs "plain"));
    Alcotest.test_case "directory churn becomes log garbage" `Quick (fun () ->
        let e, fs = rig () in
        let log = Pfs.Vnode.log fs in
        ok e "mkdir" (Pfs.Vnode.mkdir fs "tmp");
        let before = Pfs.Log.garbage_bytes_created log in
        for i = 0 to 9 do
          ok e "creat" (Pfs.Vnode.creat fs (Printf.sprintf "tmp/f%d" i))
        done;
        (* Ten directory-file rewrites obsolete nine earlier versions. *)
        Alcotest.(check bool) "garbage grew" true
          (Pfs.Log.garbage_bytes_created log > before));
  ]

let cache_tests =
  [
    Alcotest.test_case "re-reads are served from the buffer cache" `Quick
      (fun () ->
        let e, fs = rig () in
        ok e "creat" (Pfs.Vnode.creat fs "hot");
        ok e "write" (Pfs.Vnode.write fs "hot" ~off:0 ~len:8192);
        (* Writing primed the cache; a read of the same range needs no
           disk time. *)
        let t0 = Sim.Engine.now e in
        ignore (ok e "read" (Pfs.Vnode.read fs "hot" ~off:0 ~len:8192));
        let dt = Sim.Time.sub (Sim.Engine.now e) t0 in
        Alcotest.(check int64) "instant (cache hit)" Sim.Time.zero dt;
        Alcotest.(check bool) "hits recorded" true
          (Pfs.Cache.hits (Pfs.Vnode.cache fs) > 0));
    Alcotest.test_case "cold reads touch the disk" `Quick (fun () ->
        let e, fs = rig () in
        ok e "creat" (Pfs.Vnode.creat fs "cold");
        ok e "write" (Pfs.Vnode.write fs "cold" ~off:0 ~len:200_000);
        (* Push the file's blocks out with other traffic. *)
        ok e "creat2" (Pfs.Vnode.creat fs "noise");
        ok e "write2" (Pfs.Vnode.write fs "noise" ~off:0 ~len:9_000_000);
        Pfs.Log.sync (Pfs.Vnode.log fs) ~k:(fun _ -> ());
        Sim.Engine.run e;
        let t0 = Sim.Engine.now e in
        ignore (ok e "read" (Pfs.Vnode.read fs "cold" ~off:0 ~len:65536));
        let dt = Sim.Time.sub (Sim.Engine.now e) t0 in
        Alcotest.(check bool) "took disk time" true Sim.Time.(dt > Sim.Time.ms 1));
    Alcotest.test_case "unlink invalidates the file's cached blocks" `Quick
      (fun () ->
        let e, fs = rig () in
        ok e "creat" (Pfs.Vnode.creat fs "f");
        ok e "write" (Pfs.Vnode.write fs "f" ~off:0 ~len:8192);
        let c = Pfs.Vnode.cache fs in
        let size_before = Pfs.Cache.size c in
        ok e "unlink" (Pfs.Vnode.unlink fs "f");
        Alcotest.(check bool) "blocks dropped" true (Pfs.Cache.size c < size_before));
  ]

let () =
  Alcotest.run "vnode" [ ("basic", basic_tests); ("cache", cache_tests) ]
