(* Integration tests: the assembled Pegasus architecture. *)

let ms = Sim.Time.ms

let site_rig () =
  let e = Sim.Engine.create () in
  let site = Pegasus.Site.create e in
  (e, site)

let workstation_tests =
  [
    Alcotest.test_case "devices appear under short local names" `Quick
      (fun () ->
        let _, site = site_rig () in
        let ws = Pegasus.Workstation.create site ~name:"ws1" ~cameras:2 () in
        let ns = Pegasus.Workstation.namespace ws in
        let resolve path =
          match Naming.Namespace.resolve ns path with
          | Ok r -> Naming.Maillon.reference r.Naming.Namespace.maillon
          | Error e -> Alcotest.failf "resolve %s: %a" path Naming.Namespace.pp_error e
        in
        Alcotest.(check string) "camera0" "ws1.cam0" (resolve "dev/camera0");
        Alcotest.(check string) "camera1" "ws1.cam1" (resolve "dev/camera1");
        Alcotest.(check string) "display" "ws1.disp" (resolve "dev/display");
        Alcotest.(check string) "audio" "ws1.dsp" (resolve "dev/audio"));
    Alcotest.test_case "workstations see each other through /global" `Quick
      (fun () ->
        let _, site = site_rig () in
        let ws1 = Pegasus.Workstation.create site ~name:"ws1" () in
        let _ws2 = Pegasus.Workstation.create site ~name:"ws2" () in
        let ns = Pegasus.Workstation.namespace ws1 in
        match Naming.Namespace.resolve ns "global/ws/ws2" with
        | Ok r ->
            Alcotest.(check int) "one mount crossed" 1
              r.Naming.Namespace.mounts_crossed
        | Error e -> Alcotest.failf "resolve: %a" Naming.Namespace.pp_error e);
    Alcotest.test_case "a compute server has no devices" `Quick (fun () ->
        let _, site = site_rig () in
        let cs =
          Pegasus.Workstation.create site ~name:"compute" ~cameras:0
            ~display:false ~audio:false ()
        in
        Alcotest.(check int) "no cameras" 0 (Pegasus.Workstation.camera_count cs);
        Alcotest.(check bool) "no display" true
          (Pegasus.Workstation.display cs = None));
  ]

let av_tests =
  [
    Alcotest.test_case "a videophone session shows frames with low latency"
      `Quick (fun () ->
        let e, site = site_rig () in
        let alice = Pegasus.Workstation.create site ~name:"alice" () in
        let bob = Pegasus.Workstation.create site ~name:"bob" () in
        let session = Pegasus.Av_session.create ~from_:alice ~to_:bob () in
        Pegasus.Av_session.start session;
        Sim.Engine.run e ~until:(ms 500);
        Pegasus.Av_session.stop session;
        Sim.Engine.run e ~until:(ms 600);
        Alcotest.(check bool) "frames shown" true
          (Pegasus.Av_session.frames_shown session >= 10);
        let p50 =
          Sim.Stats.Samples.percentile
            (Pegasus.Av_session.video_staging_latency_us session)
            50.0
        in
        (* Tile-grained release: well under one frame time (40ms). *)
        Alcotest.(check bool)
          (Printf.sprintf "median staging %.0fus" p50)
          true (p50 < 5_000.0);
        Alcotest.(check bool) "audio jitter small" true
          (Pegasus.Av_session.audio_jitter_us session < 100.0);
        Alcotest.(check int) "no late audio" 0
          (Pegasus.Av_session.audio_late_cells session));
    Alcotest.test_case "play-back controller keeps A/V skew bounded" `Quick
      (fun () ->
        let e, site = site_rig () in
        let alice = Pegasus.Workstation.create site ~name:"alice" () in
        let bob = Pegasus.Workstation.create site ~name:"bob" () in
        let session = Pegasus.Av_session.create ~from_:alice ~to_:bob () in
        Pegasus.Av_session.start session;
        Sim.Engine.run e ~until:(Sim.Time.sec 1);
        let skew = Pegasus.Av_session.av_sync_skew_us session in
        Alcotest.(check bool) "matched sync pairs" true
          (Sim.Stats.Samples.count skew > 5);
        let p90 = Sim.Stats.Samples.percentile skew 90.0 in
        (* Lip-sync tolerance is ~80ms; the DAN keeps it far tighter. *)
        Alcotest.(check bool)
          (Printf.sprintf "p90 skew %.0fus" p90)
          true (p90 < 40_000.0));
    Alcotest.test_case "video-only sessions work without DSP nodes" `Quick
      (fun () ->
        let e, site = site_rig () in
        let a = Pegasus.Workstation.create site ~name:"a" ~audio:false () in
        let b = Pegasus.Workstation.create site ~name:"b" ~audio:false () in
        let session =
          Pegasus.Av_session.create ~from_:a ~to_:b ~with_audio:false ()
        in
        Pegasus.Av_session.start session;
        Sim.Engine.run e ~until:(ms 200);
        Alcotest.(check bool) "frames" true
          (Pegasus.Av_session.frames_shown session > 0));
    Alcotest.test_case "sessions to a display-less node are rejected" `Quick
      (fun () ->
        let _, site = site_rig () in
        let a = Pegasus.Workstation.create site ~name:"a" () in
        let b = Pegasus.Workstation.create site ~name:"b" ~display:false () in
        Alcotest.check_raises "no display"
          (Invalid_argument "Av_session: receiver has no display") (fun () ->
            ignore (Pegasus.Av_session.create ~from_:a ~to_:b ())));
  ]

let fs_rig ?(store_data = true) () =
  let e, site = site_rig () in
  let ws = Pegasus.Workstation.create site ~name:"client" () in
  let fs =
    Pegasus.Fileserver.create site ~name:"pfs" ~segment_bytes:65536 ~store_data ()
  in
  let conn, agent = Pegasus.Fileserver.connect_client fs ws in
  (e, site, ws, fs, conn, agent)

let call_ok e conn ~meth payload =
  let result = ref None in
  Rpc.call conn ~iface:"pfs" ~meth payload ~reply:(fun r -> result := Some r);
  Sim.Engine.run e;
  match !result with
  | Some (Ok b) -> b
  | Some (Error err) -> Alcotest.failf "%s failed: %a" meth Rpc.pp_error err
  | None -> Alcotest.failf "%s never replied" meth

let fileserver_tests =
  [
    Alcotest.test_case "files round-trip over the RPC interface" `Quick
      (fun () ->
        let e, _, _, _, conn, _ = fs_rig () in
        let fid =
          Pegasus.Fileserver.decode_u32 (call_ok e conn ~meth:"create" Bytes.empty) 0
        in
        let data = Bytes.of_string "multimedia is only real if..." in
        let args = Pegasus.Fileserver.encode_u32s [ fid; 0; Bytes.length data ] in
        let payload = Bytes.cat args data in
        ignore (call_ok e conn ~meth:"write" payload);
        let back =
          call_ok e conn ~meth:"read"
            (Pegasus.Fileserver.encode_u32s [ fid; 0; Bytes.length data ])
        in
        Alcotest.(check string) "data" (Bytes.to_string data) (Bytes.to_string back);
        let size =
          Pegasus.Fileserver.decode_u32
            (call_ok e conn ~meth:"size" (Pegasus.Fileserver.encode_u32s [ fid ]))
            0
        in
        Alcotest.(check int) "size" (Bytes.length data) size;
        ignore
          (call_ok e conn ~meth:"delete" (Pegasus.Fileserver.encode_u32s [ fid ])));
    Alcotest.test_case "errors travel back to the client" `Quick (fun () ->
        let e, _, _, _, conn, _ = fs_rig () in
        let result = ref None in
        Rpc.call conn ~iface:"pfs" ~meth:"size"
          (Pegasus.Fileserver.encode_u32s [ 999 ])
          ~reply:(fun r -> result := Some r);
        Sim.Engine.run e;
        match !result with
        | Some (Error (Rpc.Remote_error "no such file")) -> ()
        | _ -> Alcotest.fail "expected remote error");
    Alcotest.test_case "recording builds a seekable index from control syncs"
      `Quick (fun () ->
        let e, site, ws, fs, _, _ = fs_rig ~store_data:false () in
        let net = Pegasus.Site.net site in
        let recorder =
          match Pegasus.Fileserver.start_recorder fs ~rate_bps:10_000_000 with
          | Ok r -> r
          | Error `Admission_denied -> Alcotest.fail "admission denied"
        in
        (* Camera data and control streams point at the file server,
           exactly as they would at a display. *)
        let data_vc =
          Atm.Net.open_vc net
            ~src:(Pegasus.Workstation.camera_host ws 0)
            ~dst:(Pegasus.Fileserver.host fs)
            ~rx:(Pegasus.Fileserver.recorder_data_rx recorder)
        in
        let ctl_vc =
          Atm.Net.open_vc net
            ~src:(Pegasus.Workstation.camera_host ws 0)
            ~dst:(Pegasus.Fileserver.host fs)
            ~rx:(Pegasus.Fileserver.recorder_control_rx recorder)
        in
        let camera =
          Atm.Camera.create e ~vc:data_vc ~width:160 ~height:120 ~fps:25
            ~mode:(Atm.Camera.Jpeg { ratio = 8.0 }) ()
        in
        Atm.Camera.on_frame camera (fun ~frame ~captured_at ->
            Atm.Net.send_frame ctl_vc
              (Atm.Control.marshal
                 (Atm.Control.Sync { stream = 1; unit_id = frame; stamp = captured_at })));
        Atm.Camera.start camera;
        Sim.Engine.run e ~until:(ms 500);
        Atm.Camera.stop camera;
        Sim.Engine.run e ~until:(ms 600);
        let fid = Pegasus.Fileserver.recorder_fid recorder in
        Pegasus.Fileserver.finish_recorder fs recorder;
        Alcotest.(check bool) "bytes recorded" true
          (Pegasus.Fileserver.recorder_bytes recorder > 10_000);
        Alcotest.(check bool) "index entries" true
          (Pfs.Stream.index_size (Pegasus.Fileserver.streams fs) ~fid >= 10);
        (* The recording is nameable through the server's namespace. *)
        (match
           Naming.Namespace.resolve
             (Pegasus.Fileserver.namespace fs)
             (Printf.sprintf "media/rec%d" fid)
         with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "recording not bound in namespace");
        (* And it plays back with a guaranteed rate. *)
        let p =
          match
            Pfs.Stream.start_playback
              (Pegasus.Fileserver.streams fs)
              ~fid ~rate_bps:10_000_000 ()
          with
          | Ok p -> p
          | Error _ -> Alcotest.fail "playback denied"
        in
        Sim.Engine.run e;
        Alcotest.(check bool) "chunks played" true (Pfs.Stream.chunks_played p > 0);
        Alcotest.(check int) "no underruns" 0 (Pfs.Stream.underruns p));
    Alcotest.test_case "buffered client writes survive a server crash" `Quick
      (fun () ->
        let e, _, _, fs, _, agent = fs_rig () in
        let server = Pegasus.Fileserver.write_server fs in
        let fid = Pfs.Client_agent.Server.create_file server in
        ignore (Pfs.Client_agent.Agent.write agent ~fid ~off:0 ~len:8192 ());
        Sim.Engine.run e ~until:(Sim.Time.sec 2);
        Pfs.Client_agent.Server.crash server;
        Pfs.Client_agent.Server.recover server;
        Pfs.Client_agent.Agent.replay agent;
        Sim.Engine.run e ~until:(Sim.Time.sec 120);
        let a = Pfs.Client_agent.audit server in
        Alcotest.(check int) "nothing lost" 0 a.Pfs.Client_agent.lost;
        Alcotest.(check int) "durable" 1 a.Pfs.Client_agent.durable);
  ]

let workload_tests =
  [
    Alcotest.test_case "baker traffic hits the 70% short-lived figure" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let rng = Sim.Rng.create ~seed:42L () in
        let counts = Sim.Stats.Counter.create () in
        let next_fid = ref 0 in
        let ops =
          {
            Workloads.Baker.op_create =
              (fun () ->
                incr next_fid;
                Sim.Stats.Counter.incr counts "create";
                !next_fid);
            op_write = (fun ~fid:_ ~off:_ ~len:_ -> Sim.Stats.Counter.incr counts "write");
            op_overwrite = (fun ~fid:_ ~len:_ -> Sim.Stats.Counter.incr counts "overwrite");
            op_delete = (fun ~fid:_ -> Sim.Stats.Counter.incr counts "delete");
          }
        in
        let gen =
          Workloads.Baker.create e ~rng ~ops ~create_rate:20.0 ()
        in
        Workloads.Baker.start gen;
        Sim.Engine.run e ~until:(Sim.Time.sec 600);
        Workloads.Baker.stop gen;
        Alcotest.(check bool) "created plenty" true
          (Workloads.Baker.files_created gen > 5000);
        let f = Workloads.Baker.short_lived_fraction gen in
        Alcotest.(check bool)
          (Printf.sprintf "short-lived fraction %.2f" f)
          true
          (f > 0.62 && f < 0.78);
        Alcotest.(check bool) "deletes and overwrites happen" true
          (Workloads.Baker.deletes gen > 100 && Workloads.Baker.overwrites gen > 100));
    Alcotest.test_case "video trace has the right mean and correlation" `Quick
      (fun () ->
        let rng = Sim.Rng.create ~seed:7L () in
        let v = Workloads.Video.create rng () in
        let n = 10_000 in
        let sizes = Array.init n (fun _ -> Float.of_int (Workloads.Video.next_frame_bytes v)) in
        let mean = Array.fold_left ( +. ) 0.0 sizes /. Float.of_int n in
        Alcotest.(check bool)
          (Printf.sprintf "mean %.0f" mean)
          true
          (mean > 36_000.0 && mean < 44_000.0);
        (* lag-1 autocorrelation should be clearly positive *)
        let num = ref 0.0 and den = ref 0.0 in
        for i = 0 to n - 2 do
          num := !num +. ((sizes.(i) -. mean) *. (sizes.(i + 1) -. mean))
        done;
        for i = 0 to n - 1 do
          den := !den +. ((sizes.(i) -. mean) ** 2.0)
        done;
        let rho = !num /. !den in
        Alcotest.(check bool)
          (Printf.sprintf "rho %.2f" rho)
          true (rho > 0.7);
        Alcotest.(check bool) "rate ~8 Mbit/s" true
          (Workloads.Video.mean_rate_bps v = 8_000_000.0));
  ]

let remote_object_tests =
  [
    Alcotest.test_case "a passed handle becomes a remote connection" `Quick
      (fun () ->
        let e, site = site_rig () in
        let ws1 = Pegasus.Workstation.create site ~name:"owner" () in
        let ws2 = Pegasus.Workstation.create site ~name:"user" () in
        (* owner has a local object... *)
        let counter = ref 0 in
        let obj =
          Naming.Maillon.of_iface ~reference:"counter-0"
            (Naming.Maillon.iface
               [
                 ( "incr",
                   fun _ ->
                     incr counter;
                     Bytes.of_string (string_of_int !counter) );
               ])
        in
        (* ...exports it and passes the reference to ws2, which imports
           it over a connection. *)
        let reference =
          Pegasus.Remote_objects.export (Pegasus.Workstation.rpc ws1) obj
        in
        Alcotest.(check int) "exported" 1
          (Pegasus.Remote_objects.exported_count (Pegasus.Workstation.rpc ws1));
        let conn =
          Rpc.connect (Pegasus.Site.net site)
            ~client:(Pegasus.Workstation.rpc ws2)
            ~server:(Pegasus.Workstation.rpc ws1)
            ()
        in
        let proxy = Pegasus.Remote_objects.import conn ~reference in
        let got = ref None in
        Pegasus.Remote_objects.invoke proxy ~meth:"incr" Bytes.empty
          ~reply:(fun r -> got := Some r);
        Sim.Engine.run e;
        (match !got with
        | Some (Ok b) -> Alcotest.(check string) "result" "1" (Bytes.to_string b)
        | _ -> Alcotest.fail "remote invoke failed");
        Alcotest.(check int) "object really ran at the owner" 1 !counter);
    Alcotest.test_case "unknown references and methods fail cleanly" `Quick
      (fun () ->
        let e, site = site_rig () in
        let ws1 = Pegasus.Workstation.create site ~name:"owner" () in
        let ws2 = Pegasus.Workstation.create site ~name:"user" () in
        ignore
          (Pegasus.Remote_objects.export (Pegasus.Workstation.rpc ws1)
             (Naming.Maillon.of_iface ~reference:"real"
                (Naming.Maillon.iface [ ("f", fun b -> b) ])));
        let conn =
          Rpc.connect (Pegasus.Site.net site)
            ~client:(Pegasus.Workstation.rpc ws2)
            ~server:(Pegasus.Workstation.rpc ws1)
            ()
        in
        let bogus = Pegasus.Remote_objects.import conn ~reference:"ghost" in
        let got = ref None in
        Pegasus.Remote_objects.invoke bogus ~meth:"f" Bytes.empty
          ~reply:(fun r -> got := Some r);
        Sim.Engine.run e;
        (match !got with
        | Some (Error (Rpc.Remote_error msg)) ->
            Alcotest.(check string) "names the ghost" "no such object: ghost" msg
        | _ -> Alcotest.fail "expected remote error");
        let real = Pegasus.Remote_objects.import conn ~reference:"real" in
        let got2 = ref None in
        Pegasus.Remote_objects.invoke real ~meth:"zzz" Bytes.empty
          ~reply:(fun r -> got2 := Some r);
        Sim.Engine.run e;
        match !got2 with
        | Some (Error (Rpc.Remote_error "no such method: zzz")) -> ()
        | _ -> Alcotest.fail "expected method error");
  ]

let wm_tests =
  [
    Alcotest.test_case "manage draws a title bar and clips the stream" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let display = Atm.Display.create e () in
        let wm = Pegasus.Wm.create display in
        let w =
          Pegasus.Wm.manage wm ~vci:7 ~title:"camera one" ~x:100 ~y:100
            ~width:64 ~height:64
        in
        Alcotest.(check (list (pair string int))) "managed"
          [ ("camera one", 7) ]
          (Pegasus.Wm.managed wm);
        (* the title bar sits above the content area *)
        Alcotest.(check int) "title pixels" 0x88
          (Atm.Display.screen_byte display ~x:110 ~y:95);
        Pegasus.Wm.focus wm w;
        Alcotest.(check int) "highlighted on focus" 0xDD
          (Atm.Display.screen_byte display ~x:110 ~y:95));
    Alcotest.test_case "iconize discards the stream, restore brings it back"
      `Quick (fun () ->
        let e = Sim.Engine.create () in
        let display = Atm.Display.create e () in
        let wm = Pegasus.Wm.create display in
        let w =
          Pegasus.Wm.manage wm ~vci:7 ~title:"feed" ~x:0 ~y:50 ~width:64
            ~height:64
        in
        let packet () =
          let p =
            {
              Atm.Tile.x = 4;
              y = 4;
              frame = 0;
              count = 1;
              bytes_per_tile = Atm.Tile.raw_bytes;
              captured_at = Sim.Time.zero;
              data = Bytes.make Atm.Tile.raw_bytes 'v';
            }
          in
          List.iter (fun c -> Atm.Display.cell_rx display c)
            (Atm.Aal5.segment ~vci:7 (Atm.Tile.marshal p))
        in
        packet ();
        Alcotest.(check int) "blitted" 1 (Atm.Display.tiles_blitted display ~vci:7);
        Pegasus.Wm.iconize wm w;
        Alcotest.(check bool) "iconized" true (Pegasus.Wm.iconized w);
        packet ();
        Alcotest.(check int) "clipped while iconized" 1
          (Atm.Display.tiles_clipped display ~vci:7);
        Pegasus.Wm.restore wm w;
        packet ();
        Alcotest.(check int) "blits again" 2
          (Atm.Display.tiles_blitted display ~vci:7));
    Alcotest.test_case "focus raises above an overlapping window" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let display = Atm.Display.create e () in
        let wm = Pegasus.Wm.create display in
        let a =
          Pegasus.Wm.manage wm ~vci:1 ~title:"a" ~x:0 ~y:50 ~width:64 ~height:64
        in
        let _b =
          Pegasus.Wm.manage wm ~vci:2 ~title:"b" ~x:0 ~y:50 ~width:64 ~height:64
        in
        Alcotest.(check bool) "b newer = on top" true
          (Atm.Display.z_order display ~vci:2 > Atm.Display.z_order display ~vci:1);
        Pegasus.Wm.focus wm a;
        Alcotest.(check bool) "a now on top" true
          (Atm.Display.z_order display ~vci:1 > Atm.Display.z_order display ~vci:2));
    Alcotest.test_case "close removes the descriptor" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let display = Atm.Display.create e () in
        let wm = Pegasus.Wm.create display in
        let w =
          Pegasus.Wm.manage wm ~vci:9 ~title:"gone" ~x:0 ~y:50 ~width:32
            ~height:32
        in
        Pegasus.Wm.close wm w;
        Alcotest.(check (list (pair string int))) "unmanaged" []
          (Pegasus.Wm.managed wm);
        Alcotest.(check int) "no window" 0 (Atm.Display.window_count display));
  ]

let () =
  Alcotest.run "pegasus"
    [
      ("workstation", workstation_tests);
      ("av-session", av_tests);
      ("fileserver", fileserver_tests);
      ("workloads", workload_tests);
      ("remote-objects", remote_object_tests);
      ("window-manager", wm_tests);
    ]
