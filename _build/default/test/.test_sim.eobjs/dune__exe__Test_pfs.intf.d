test/test_pfs.mli:
