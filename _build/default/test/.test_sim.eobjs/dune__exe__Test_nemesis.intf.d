test/test_nemesis.mli:
