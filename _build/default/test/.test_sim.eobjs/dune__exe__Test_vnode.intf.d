test/test_vnode.mli:
