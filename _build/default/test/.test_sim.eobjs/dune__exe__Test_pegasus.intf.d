test/test_pegasus.mli:
