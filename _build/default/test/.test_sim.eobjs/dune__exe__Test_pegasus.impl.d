test/test_pegasus.ml: Alcotest Array Atm Bytes Float List Naming Pegasus Pfs Printf Rpc Sim Workloads
