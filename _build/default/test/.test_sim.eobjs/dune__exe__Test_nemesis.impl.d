test/test_nemesis.ml: Alcotest Bytes Float Format Int64 List Nemesis Printf QCheck2 QCheck_alcotest Sim String
