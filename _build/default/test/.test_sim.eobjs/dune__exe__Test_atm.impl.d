test/test_atm.ml: Alcotest Array Atm Bytes Char Hashtbl List Printf QCheck2 QCheck_alcotest Sim
