test/test_rpc.ml: Alcotest Atm Bytes Char Float List Printf QCheck2 QCheck_alcotest Rpc Sim String
