test/test_naming.ml: Alcotest Bytes List Naming Printf QCheck2 QCheck_alcotest Sim String
