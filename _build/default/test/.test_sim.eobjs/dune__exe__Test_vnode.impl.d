test/test_vnode.ml: Alcotest Bytes Pfs Printf Sim
