test/test_sim.ml: Alcotest Array Float Format Fun Int64 List QCheck2 QCheck_alcotest Sim
