test/test_atm.mli:
