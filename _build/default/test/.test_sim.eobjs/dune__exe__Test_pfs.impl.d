test/test_pfs.ml: Alcotest Array Bytes Char Float List Pfs Printf QCheck2 QCheck_alcotest Sim Stdlib
