test/test_experiments.ml: Alcotest Buffer Experiments Lazy List Printf String
