(* Command-line driver: list and run the paper-claim experiments. *)

open Cmdliner

let quick_arg =
  let doc = "Run with reduced parameters (seconds instead of minutes)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-4s %s\n" e.Experiments.Registry.e_id
          e.Experiments.Registry.e_title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available experiments.")
    Term.(const run $ const ())

let run_cmd =
  let ids =
    let doc = "Experiment ids to run (e.g. E1 E9); omit for all." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run quick ids =
    match ids with
    | [] ->
        Experiments.Registry.run_all ~quick Format.std_formatter;
        `Ok ()
    | ids ->
        let rec go = function
          | [] -> `Ok ()
          | id :: rest -> begin
              match Experiments.Registry.find id with
              | Some e ->
                  Format.printf "%a@.@." Experiments.Table.pp
                    (e.Experiments.Registry.e_run ~quick);
                  go rest
              | None -> `Error (false, "unknown experiment " ^ id)
            end
        in
        go ids
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run experiments and print their tables (all when no id given).")
    Term.(ret (const run $ quick_arg $ ids))

let () =
  let doc = "Pegasus/Nemesis reproduction: experiments driver." in
  let info = Cmd.info "pegasus_cli" ~version:"1.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd ]))
