(* The split application (paper §2.3): "We expect many multimedia
   applications to be split over Unix and Nemesis; the Unix part will
   contain the control functionality, whereas the Nemesis part will
   contain the necessary real-time functionality."

   A Unix box runs the editing console (no real-time needs, plain RPC);
   a Nemesis workstation runs the per-frame video processing under a
   guaranteed CPU share.  The console changes the effect quality live:
   each command is one RPC to the workstation's control interface,
   which re-sizes the processing jobs and asks the QoS manager for a
   matching share.  The real-time side never misses a frame while being
   reconfigured.

     dune exec examples/unix_symbiosis.exe *)

let () =
  let engine = Sim.Engine.create () in
  let site = Pegasus.Site.create engine in
  let ws = Pegasus.Workstation.create site ~name:"nemesis-ws" () in
  let unix_host = Pegasus.Site.add_host site ~name:"unix-box" in
  let unix_rpc = Rpc.endpoint (Pegasus.Site.net site) ~host:unix_host in

  (* --- The Nemesis part: real-time per-frame processing. --- *)
  let kernel = Pegasus.Workstation.kernel ws in
  let qos = Pegasus.Workstation.qos ws in
  let effects =
    Nemesis.Domain.create ~name:"effects" ~period:(Sim.Time.ms 40) ()
  in
  Nemesis.Kernel.add_domain kernel effects;
  (* Per-frame work scales with the current quality level (1..5). *)
  let quality = ref 3 in
  let frames = ref 0 in
  Nemesis.Qos.register qos ~domain:effects ~want:0.3
    ~adapt:(fun ~granted ->
      Format.printf "  [%a] nemesis: QoS grant now %.2f@." Sim.Time.pp
        (Sim.Engine.now engine) granted)
    ();
  Sim.Engine.every ~daemon:true engine ~period:(Sim.Time.ms 40) (fun () ->
      let now = Sim.Engine.now engine in
      Nemesis.Kernel.submit kernel effects
        (Nemesis.Job.make ~label:"frame-effect"
           ~work:(Sim.Time.ms (2 * !quality))
           ~deadline:(Sim.Time.add now (Sim.Time.ms 40))
           ~created:now
           ~on_complete:(fun () -> incr frames)
           ());
      true);

  (* The control interface the Nemesis side exports. *)
  Rpc.serve (Pegasus.Workstation.rpc ws) ~iface:"effects-ctl"
    (fun ~meth payload ->
      match meth with
      | "set-quality" ->
          let q = int_of_string (Bytes.to_string payload) in
          quality := q;
          (* more quality needs more CPU: tell the QoS manager *)
          Nemesis.Qos.set_want qos ~domain:effects
            (0.1 +. (Float.of_int q *. 0.08));
          Format.printf "  [%a] nemesis: quality -> %d@." Sim.Time.pp
            (Sim.Engine.now engine) q;
          Ok Bytes.empty
      | "stats" -> Ok (Bytes.of_string (string_of_int !frames))
      | m -> Error ("unknown method " ^ m))
  ;

  (* --- The Unix part: the user twiddles the quality slider. --- *)
  let conn =
    Rpc.connect (Pegasus.Site.net site) ~client:unix_rpc
      ~server:(Pegasus.Workstation.rpc ws) ()
  in
  let command q =
    Rpc.call conn ~iface:"effects-ctl" ~meth:"set-quality"
      (Bytes.of_string (string_of_int q))
      ~reply:(function
        | Ok _ -> ()
        | Error e -> Format.printf "control RPC failed: %a@." Rpc.pp_error e)
  in
  List.iteri
    (fun i q ->
      ignore
        (Sim.Engine.schedule engine
           ~delay:(Sim.Time.ms (500 + (i * 700)))
           (fun () ->
             Format.printf "  [%a] unix: slider to %d@." Sim.Time.pp
               (Sim.Engine.now engine) q;
             command q)))
    [ 5; 1; 4 ];

  Format.printf
    "Unix console controlling a Nemesis effects pipeline over RPC.@.@.";
  Sim.Engine.run engine ~until:(Sim.Time.sec 3);
  let missed = Nemesis.Domain.deadline_misses effects in
  Format.printf
    "@.After 3s: %d frames processed, %d deadline misses during live \
     reconfiguration.@."
    !frames missed;
  Format.printf
    "The console needed no real-time guarantees — an RPC every so often — \
     and the pipeline needed no Unix: each ran where it belongs.@."
