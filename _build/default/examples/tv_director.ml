(* The digital TV director — the application the Pegasus project set
   out to build.  Three camera workstations feed a director's console:
   every feed gets a small preview window, and the "program" window
   shows whichever camera is live.  Cutting between cameras is pure
   window-descriptor manipulation at the director's display; the QoS
   manager shifts the console CPU between the per-feed processing
   domains as the cut changes what matters.

     dune exec examples/tv_director.exe *)

let () =
  let engine = Sim.Engine.create () in
  let site = Pegasus.Site.create engine in
  let director =
    Pegasus.Workstation.create site ~name:"console" ~cameras:0 ~audio:false ()
  in
  let studios =
    List.init 3 (fun i ->
        Pegasus.Workstation.create site
          ~name:(Printf.sprintf "studio%d" i)
          ~display:false ~audio:false ())
  in
  let display =
    match Pegasus.Workstation.display director with
    | Some d -> d
    | None -> assert false
  in
  (* One video session per studio camera into the console's display:
     small preview windows along the bottom of the screen. *)
  let sessions =
    List.mapi
      (fun i studio ->
        let s =
          Pegasus.Av_session.create ~from_:studio ~to_:director ~width:160
            ~height:120 ~with_audio:false
            ~window:(32 + (i * 200), 800)
            ()
        in
        Pegasus.Av_session.start s;
        s)
      studios
  in
  let vcis = List.map Pegasus.Av_session.display_vci sessions in
  (* Per-feed processing domains on the console, under the QoS manager:
     the live feed wants most of the CPU (motion tracking, overlays),
     the previews just decode. *)
  let kernel = Pegasus.Workstation.kernel director in
  let qos = Pegasus.Workstation.qos director in
  let domains =
    List.mapi
      (fun i _ ->
        let d =
          Nemesis.Domain.create
            ~name:(Printf.sprintf "feed%d" i)
            ~period:(Sim.Time.ms 40) ()
        in
        Nemesis.Kernel.add_domain kernel d;
        Nemesis.Kernel.submit kernel d
          (Nemesis.Job.make ~label:"process feed" ~work:(Sim.Time.sec 3600)
             ~created:Sim.Time.zero ());
        Nemesis.Qos.register qos ~domain:d ~want:0.15 ();
        d)
      studios
  in
  let dom_arr = Array.of_list domains in
  let vci_arr = Array.of_list vcis in
  let live = ref (-1) in
  let cut to_ =
    (* The previous program window shrinks back to a preview; the new
       live camera gets the big window and the big CPU share. *)
    if !live >= 0 then begin
      Atm.Display.move_window display ~vci:vci_arr.(!live)
        ~x:(32 + (!live * 200)) ~y:800;
      Atm.Display.resize_window display ~vci:vci_arr.(!live) ~width:160
        ~height:120;
      Nemesis.Qos.set_want qos ~domain:dom_arr.(!live) 0.15
    end;
    live := to_;
    Atm.Display.move_window display ~vci:vci_arr.(to_) ~x:200 ~y:100;
    Atm.Display.resize_window display ~vci:vci_arr.(to_) ~width:160 ~height:120;
    Nemesis.Qos.set_want qos ~domain:dom_arr.(to_) 0.6;
    Format.printf "  [%a] CUT to studio%d@." Sim.Time.pp (Sim.Engine.now engine)
      to_
  in
  Format.printf "On air: three studios into the console.@.@.";
  (* A cut every second: 0 -> 1 -> 2 -> 0. *)
  List.iteri
    (fun i target ->
      ignore
        (Sim.Engine.schedule engine
           ~delay:(Sim.Time.ms ((i * 1000) + 10))
           (fun () -> cut target)))
    [ 0; 1; 2; 0 ];
  Sim.Engine.run engine ~until:(Sim.Time.of_sec_f 4.5);
  List.iter Pegasus.Av_session.stop sessions;
  Sim.Engine.run engine ~until:(Sim.Time.sec 5);
  Format.printf "@.After 4.5s on air:@.";
  List.iteri
    (fun i s ->
      let d = List.nth domains i in
      Format.printf
        "  studio%d: %3d frames shown, feed domain got %a CPU (grant now \
         %.2f)@."
        i
        (Pegasus.Av_session.frames_shown s)
        Sim.Time.pp (Nemesis.Domain.cpu_used d)
        (Nemesis.Qos.granted qos ~domain:d))
    sessions;
  Format.printf
    "@.The cuts moved pixels and CPU, but no media stream was ever \
     re-routed: the switch fabric carried every feed to the display the \
     whole time, and the window descriptors decided what showed.@."
