(* Quickstart: boot one Pegasus workstation and touch each part of the
   system — domains and scheduling, events, the namespace, and a file
   on the storage server.

     dune exec examples/quickstart.exe *)

let () =
  let engine = Sim.Engine.create () in
  let site = Pegasus.Site.create engine in
  let ws = Pegasus.Workstation.create site ~name:"demo" () in
  let fs =
    Pegasus.Fileserver.create site ~name:"pfs" ~segment_bytes:65536
      ~store_data:true ()
  in
  Format.printf "Booted site: workstation 'demo' + file server 'pfs'.@.@.";

  (* 1. Nemesis: create a domain with a guaranteed CPU share and give
     it work with a deadline. *)
  let kernel = Pegasus.Workstation.kernel ws in
  let dom =
    Nemesis.Domain.create ~name:"renderer" ~period:(Sim.Time.ms 40)
      ~slice:(Sim.Time.ms 10) ()
  in
  Nemesis.Kernel.add_domain kernel dom;
  Nemesis.Kernel.submit kernel dom
    (Nemesis.Job.make ~label:"render frame" ~work:(Sim.Time.ms 8)
       ~deadline:(Sim.Time.ms 40) ~created:Sim.Time.zero
       ~on_complete:(fun () ->
         Format.printf "  [%a] renderer finished its frame@." Sim.Time.pp
           (Sim.Engine.now engine))
       ());
  Sim.Engine.run engine ~until:(Sim.Time.ms 50);
  Format.printf "Domain accounting: used %a of CPU, %d deadline misses.@.@."
    Sim.Time.pp
    (Nemesis.Domain.cpu_used dom)
    (Nemesis.Domain.deadline_misses dom);

  (* 2. Events: wire a channel into the domain and signal it. *)
  let served = ref 0 in
  let chan =
    Nemesis.Kernel.channel kernel ~dst:dom ~mode:`Async
      ~closure:(fun () ->
        Some
          (Nemesis.Job.make ~label:"handle event" ~work:(Sim.Time.us 100)
             ~created:(Sim.Engine.now engine)
             ~on_complete:(fun () -> incr served)
             ()))
      ()
  in
  for _ = 1 to 3 do
    Nemesis.Kernel.send kernel chan
  done;
  Sim.Engine.run engine ~until:(Sim.Time.ms 100);
  Format.printf "Events: sent 3, handled %d.@.@." !served;

  (* 3. Naming: local devices resolve under short names; the site tree
     is mounted at "global" by convention. *)
  let ns = Pegasus.Workstation.namespace ws in
  List.iter
    (fun path ->
      match Naming.Namespace.resolve ns path with
      | Ok r ->
          Format.printf "  resolve %-18s -> %s (cost %a)@." path
            (Naming.Maillon.reference r.Naming.Namespace.maillon)
            Sim.Time.pp r.Naming.Namespace.cost
      | Error e ->
          Format.printf "  resolve %-18s -> error: %a@." path
            Naming.Namespace.pp_error e)
    [ "dev/camera0"; "dev/display"; "global/fs/pfs" ];
  Format.printf "@.";

  (* 4. Storage: create, write and read a file over the RPC interface. *)
  let conn, _agent = Pegasus.Fileserver.connect_client fs ws in
  let finish = ref false in
  Rpc.call conn ~iface:"pfs" ~meth:"create" Bytes.empty ~reply:(function
    | Error e -> Format.printf "create failed: %a@." Rpc.pp_error e
    | Ok reply ->
        let fid = Pegasus.Fileserver.decode_u32 reply 0 in
        let data = Bytes.of_string "hello, Pegasus" in
        let payload =
          Bytes.cat
            (Pegasus.Fileserver.encode_u32s [ fid; 0; Bytes.length data ])
            data
        in
        Rpc.call conn ~iface:"pfs" ~meth:"write" payload ~reply:(function
          | Error e -> Format.printf "write failed: %a@." Rpc.pp_error e
          | Ok _ ->
              Rpc.call conn ~iface:"pfs" ~meth:"read"
                (Pegasus.Fileserver.encode_u32s [ fid; 0; Bytes.length data ])
                ~reply:(function
                  | Ok b ->
                      Format.printf
                        "Storage: wrote and read back %S via RPC at %a.@."
                        (Bytes.to_string b) Sim.Time.pp (Sim.Engine.now engine);
                      finish := true
                  | Error e -> Format.printf "read failed: %a@." Rpc.pp_error e)));
  Sim.Engine.run engine;
  if not !finish then Format.printf "storage demo did not complete!@.";
  Format.printf "@.Done: one workstation, one file server, %a of simulated time.@."
    Sim.Time.pp (Sim.Engine.now engine)
