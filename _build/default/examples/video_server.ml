(* Video server: record a camera to the Pegasus file server, then play
   it back — with a mid-stream seek driven by the index the server
   built from the control stream — while ordinary Unix-style file
   traffic hammers the same server through a write-buffering client
   agent.

     dune exec examples/video_server.exe *)

let () =
  let engine = Sim.Engine.create () in
  let site = Pegasus.Site.create engine in
  let ws = Pegasus.Workstation.create site ~name:"studio" () in
  let fs = Pegasus.Fileserver.create site ~name:"pfs" () in
  let net = Pegasus.Site.net site in

  (* --- Recording: camera streams straight to the storage server. --- *)
  let recorder =
    match Pegasus.Fileserver.start_recorder fs ~rate_bps:10_000_000 with
    | Ok r -> r
    | Error `Admission_denied -> failwith "recorder admission denied"
  in
  let data_vc =
    Atm.Net.open_vc net
      ~src:(Pegasus.Workstation.camera_host ws 0)
      ~dst:(Pegasus.Fileserver.host fs)
      ~rx:(Pegasus.Fileserver.recorder_data_rx recorder)
  in
  let ctl_vc =
    Atm.Net.open_vc net
      ~src:(Pegasus.Workstation.camera_host ws 0)
      ~dst:(Pegasus.Fileserver.host fs)
      ~rx:(Pegasus.Fileserver.recorder_control_rx recorder)
  in
  let camera =
    Atm.Camera.create engine ~vc:data_vc ~width:320 ~height:240 ~fps:25
      ~mode:(Atm.Camera.Jpeg { ratio = 8.0 }) ()
  in
  Atm.Camera.on_frame camera (fun ~frame ~captured_at ->
      Atm.Net.send_frame ctl_vc
        (Atm.Control.marshal
           (Atm.Control.Sync { stream = 1; unit_id = frame; stamp = captured_at })));

  (* --- Background Unix traffic through the client agent. --- *)
  let _conn, agent = Pegasus.Fileserver.connect_client fs ws in
  let server = Pegasus.Fileserver.write_server fs in
  let rng = Sim.Rng.create ~seed:11L () in
  let baker =
    Workloads.Baker.create engine ~rng
      ~ops:
        {
          Workloads.Baker.op_create =
            (fun () -> Pfs.Client_agent.Server.create_file server);
          op_write =
            (fun ~fid ~off ~len ->
              ignore (Pfs.Client_agent.Agent.write agent ~fid ~off ~len ()));
          op_overwrite =
            (fun ~fid ~len ->
              ignore (Pfs.Client_agent.Agent.write agent ~fid ~off:0 ~len ()));
          op_delete = (fun ~fid -> Pfs.Client_agent.Agent.delete agent ~fid);
        }
      ~create_rate:3.0 ()
  in
  Workloads.Baker.start baker;
  Atm.Camera.start camera;
  Format.printf "Recording 2s of 320x240 JPEG video while %s@.@."
    "Baker-style file traffic runs against the same server...";
  Sim.Engine.run engine ~until:(Sim.Time.sec 2);
  Atm.Camera.stop camera;
  Sim.Engine.run engine ~until:(Sim.Time.of_sec_f 2.1);
  let fid = Pegasus.Fileserver.recorder_fid recorder in
  Pegasus.Fileserver.finish_recorder fs recorder;
  Format.printf "Recorded %d bytes as file %d; index has %d marks.@.@."
    (Pegasus.Fileserver.recorder_bytes recorder)
    fid
    (Pfs.Stream.index_size (Pegasus.Fileserver.streams fs) ~fid);

  (* --- Playback with a guaranteed rate, seeking via the index. --- *)
  let streams = Pegasus.Fileserver.streams fs in
  let playback =
    match
      Pfs.Stream.start_playback streams ~fid ~rate_bps:10_000_000
        ~chunk_bytes:16384 ()
    with
    | Ok p -> p
    | Error _ -> failwith "playback denied"
  in
  (* Half a second in, the director says "go to the 1.5s mark". *)
  ignore
    (Sim.Engine.schedule engine ~delay:(Sim.Time.ms 500) (fun () ->
         Pfs.Stream.seek_stamp playback (Sim.Time.of_sec_f 1.5);
         Format.printf "  [%a] seek to t=1.5s -> byte offset %d@." Sim.Time.pp
           (Sim.Engine.now engine)
           (Pfs.Stream.position playback)));
  Sim.Engine.run engine ~until:(Sim.Time.sec 4);
  Pfs.Stream.stop_playback streams playback;
  Workloads.Baker.stop baker;
  Sim.Engine.run engine ~until:(Sim.Time.sec 40);

  Format.printf "@.Playback: %d chunks, %d underruns (rate guarantee held).@."
    (Pfs.Stream.chunks_played playback)
    (Pfs.Stream.underruns playback);
  Format.printf "File traffic during the take: %d files created, %d writes \
                 buffered, %d reached disk, %d cancelled by churn.@."
    (Workloads.Baker.files_created baker)
    (Pfs.Client_agent.Server.writes_received server)
    (Pfs.Client_agent.Server.disk_writes server)
    (Pfs.Client_agent.Server.writes_cancelled server);
  let log = Pegasus.Fileserver.log fs in
  Pfs.Log.sync log ~k:(fun _ -> ());
  Sim.Engine.run engine ~until:(Sim.Time.sec 41);
  Format.printf "Log: %d segments, %d garbage entries pending; running the \
                 cleaner...@."
    (Pfs.Log.total_segments log)
    (Pfs.Garbage.count (Pfs.Log.garbage log));
  Pfs.Cleaner.run log (fun stats ->
      Format.printf "  cleaner: %a@." Pfs.Cleaner.pp_stats stats);
  Sim.Engine.run engine ~until:(Sim.Time.sec 60);
  Format.printf "Done at %a simulated.@." Sim.Time.pp (Sim.Engine.now engine)
