examples/videophone.mli:
