examples/videophone.ml: Atm Format Pegasus Sim
