examples/video_server.ml: Atm Format Pegasus Pfs Sim Workloads
