examples/quickstart.ml: Bytes Format List Naming Nemesis Pegasus Rpc Sim
