examples/quickstart.mli:
