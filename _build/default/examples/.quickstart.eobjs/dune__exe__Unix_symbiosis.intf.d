examples/unix_symbiosis.mli:
