examples/unix_symbiosis.ml: Bytes Float Format List Nemesis Pegasus Rpc Sim
