examples/tv_director.mli:
