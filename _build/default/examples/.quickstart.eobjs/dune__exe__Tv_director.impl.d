examples/tv_director.ml: Array Atm Format List Nemesis Pegasus Printf Sim
