(* Videophone: the paper's motivating data path (Figures 1 and 4).

   Two workstations hold a two-way call.  Video flows camera-node to
   display-node and audio DSP-node to DSP-node, switched in hardware —
   the CPUs only run the managers, the control-stream mergers and the
   play-back controllers.  Mid-call, bob's window manager moves alice's
   picture across the screen by editing one window descriptor; the
   stream never notices.

     dune exec examples/videophone.exe *)

let report name session =
  let lat = Pegasus.Av_session.video_staging_latency_us session in
  let skew = Pegasus.Av_session.av_sync_skew_us session in
  Format.printf "%s:@." name;
  Format.printf "  frames shown        %d@."
    (Pegasus.Av_session.frames_shown session);
  if Sim.Stats.Samples.count lat > 0 then
    Format.printf "  video staging       p50 %.0fus  p99 %.0fus@."
      (Sim.Stats.Samples.percentile lat 50.0)
      (Sim.Stats.Samples.percentile lat 99.0);
  Format.printf "  audio jitter        %.1fus (%d late cells)@."
    (Pegasus.Av_session.audio_jitter_us session)
    (Pegasus.Av_session.audio_late_cells session);
  if Sim.Stats.Samples.count skew > 0 then
    Format.printf "  A/V sync skew       p50 %.0fus  p90 %.0fus@."
      (Sim.Stats.Samples.percentile skew 50.0)
      (Sim.Stats.Samples.percentile skew 90.0);
  Format.printf "@."

let () =
  let engine = Sim.Engine.create () in
  let site = Pegasus.Site.create engine in
  let alice = Pegasus.Workstation.create site ~name:"alice" () in
  let bob = Pegasus.Workstation.create site ~name:"bob" () in
  Format.printf "Call setup: alice <-> bob, JPEG 320x240@@25 + stereo audio.@.@.";
  let a_to_b =
    Pegasus.Av_session.create ~from_:alice ~to_:bob ~window:(32, 32) ()
  in
  let b_to_a =
    Pegasus.Av_session.create ~from_:bob ~to_:alice ~window:(32, 32) ()
  in
  Pegasus.Av_session.start a_to_b;
  Pegasus.Av_session.start b_to_a;

  (* One second into the call, bob drags alice's window. *)
  ignore
    (Sim.Engine.schedule engine ~delay:(Sim.Time.sec 1) (fun () ->
         match Pegasus.Workstation.display bob with
         | Some display ->
             Atm.Display.move_window display
               ~vci:(Pegasus.Av_session.display_vci a_to_b)
               ~x:600 ~y:400;
             Format.printf
               "  [%a] bob's window manager moved the call window to \
                (600,400) — one descriptor write, zero stream involvement@.@."
               Sim.Time.pp (Sim.Engine.now engine)
         | None -> ()));

  Sim.Engine.run engine ~until:(Sim.Time.sec 2);
  Pegasus.Av_session.stop a_to_b;
  Pegasus.Av_session.stop b_to_a;
  Sim.Engine.run engine ~until:(Sim.Time.of_sec_f 2.2);

  report "alice -> bob" a_to_b;
  report "bob -> alice" b_to_a;
  (match Pegasus.Workstation.display bob with
  | Some d ->
      let vci = Pegasus.Av_session.display_vci a_to_b in
      Format.printf
        "bob's display blitted %d tiles for the call (0 faulty frames: %b)@."
        (Atm.Display.tiles_blitted d ~vci)
        (Atm.Display.faulty_frames d = 0)
  | None -> ());
  Format.printf "total cells dropped in the network: %d@."
    (Atm.Net.total_cells_dropped (Pegasus.Site.net site))
