type rights = { read : bool; write : bool; execute : bool }

let r = { read = true; write = false; execute = false }
let rw = { read = true; write = true; execute = false }
let rx = { read = true; write = false; execute = true }

type segment = { seg_id : int; seg_name : string; base : int64; size : int }

type space = {
  mutable next_base : int64;
  mutable next_id : int;
  mutable segments : segment list;
  mappings : (int * int, rights) Hashtbl.t;  (* (domain, segment) -> rights *)
}

let create_space () =
  {
    next_base = 0x1000_0000L;
    next_id = 0;
    segments = [];
    mappings = Hashtbl.create 64;
  }

let alloc_segment space ~name ~size =
  let seg =
    { seg_id = space.next_id; seg_name = name; base = space.next_base; size }
  in
  space.next_id <- space.next_id + 1;
  (* Page-align the next base and leave a guard page. *)
  let aligned = Int64.logand (Int64.add (Int64.of_int size) 0x1fffL) (Int64.lognot 0xfffL) in
  space.next_base <- Int64.add space.next_base aligned;
  space.segments <- seg :: space.segments;
  ignore seg.seg_name;
  seg

let segment_base seg = seg.base
let segment_size seg = seg.size

let map space ~domain seg rights =
  Hashtbl.replace space.mappings (domain, seg.seg_id) rights

let unmap space ~domain seg = Hashtbl.remove space.mappings (domain, seg.seg_id)

let find_segment space addr =
  List.find_opt
    (fun seg ->
      addr >= seg.base && Int64.sub addr seg.base < Int64.of_int seg.size)
    space.segments

let access space ~domain ~addr kind =
  match find_segment space addr with
  | None -> Error `Unmapped
  | Some seg -> begin
      match Hashtbl.find_opt space.mappings (domain, seg.seg_id) with
      | None -> Error `Unmapped
      | Some rights ->
          let ok =
            match kind with
            | `Read -> rights.read
            | `Write -> rights.write
            | `Execute -> rights.execute
          in
          if ok then Ok seg else Error `Protection
    end

let shared_mappings space seg =
  Hashtbl.fold
    (fun (_, sid) _ acc -> if sid = seg.seg_id then acc + 1 else acc)
    space.mappings 0

type cache = { lines : int; line_fill : Sim.Time.t }

let default_cache = { lines = 256; line_fill = Sim.Time.ns 200 }

let fixed_switch = Sim.Time.us 2

let switch_cost ?(cache = default_cache) ~aliases () =
  if aliases then
    Sim.Time.add fixed_switch (Sim.Time.mul cache.line_fill cache.lines)
  else fixed_switch

let hashed_base ~code_hash =
  Int64.shift_left (Int64.logand (Int64.of_int32 code_hash) 0xffffffffL) 32

let reuse_collisions rng ~images =
  let seen = Hashtbl.create images in
  let collisions = ref 0 in
  for _ = 1 to images do
    let h = Int64.to_int (Sim.Rng.int64 rng) land 0xffffffff in
    if Hashtbl.mem seen h then incr collisions else Hashtbl.add seen h ()
  done;
  !collisions

let relocation_cost ~relocs = Sim.Time.mul (Sim.Time.ns 100) relocs

let map_cost = Sim.Time.us 50

let load_cost ~relocs ~cache_hit =
  if cache_hit then map_cost else Sim.Time.add map_cost (relocation_cost ~relocs)
