(** The Quality-of-Service manager.

    A domain running above the primitive scheduler on a longer time
    scale.  It recalculates the scheduler weights (slices) from the
    user's policy — both when applications enter or leave and
    adaptively as they change behaviour — deliberately smoothing
    short-term variations in load.  Applications do not always get what
    they want; the [adapt] callback tells them what they did get so
    they can choose algorithms to fit (e.g. a coarser codec). *)

type t

val create :
  Kernel.t ->
  ?interval:Sim.Time.t ->
  ?capacity:float ->
  ?smoothing:float ->
  unit ->
  t
(** [interval] (default 100 ms) is the manager's review period — an
    order of magnitude above scheduling decisions.  [capacity]
    (default 0.9) is the total CPU fraction the manager hands out,
    keeping headroom for the system itself.  [smoothing] (default 0.3)
    is the EWMA coefficient applied to observed utilisation. *)

val register :
  t ->
  domain:Domain.t ->
  want:float ->
  ?adapt:(granted:float -> unit) ->
  unit ->
  unit
(** Put [domain] under management, asking for [want] of the CPU.
    Slices are recalculated immediately and on every review. *)

val unregister : t -> domain:Domain.t -> unit

val set_want : t -> domain:Domain.t -> float -> unit
(** Change an application's request (recalculated at the next review). *)

val granted : t -> domain:Domain.t -> float
(** Current CPU fraction granted.  Raises [Not_found] if unmanaged. *)

val utilisation : t -> domain:Domain.t -> float
(** Smoothed fraction of its grant the domain actually uses. *)

val reviews : t -> int
