type mode = Informed | Opaque

type params = {
  mutable period : Sim.Time.t;
  mutable slice : Sim.Time.t;
  mutable extra : bool;
  mutable priority : int;
}

type sched_state = {
  mutable release : Sim.Time.t;
  mutable deadline : Sim.Time.t;
  mutable remain : Sim.Time.t;
  mutable rr_last : Sim.Time.t;
}

type t = {
  id : int;
  name : string;
  mode : mode;
  params : params;
  sched : sched_state;
  mutable jobs : Job.t list;  (* FIFO order: oldest first *)
  mutable current_job : Job.t option;
  mutable handler : (now:Sim.Time.t -> events:int -> unit) option;
  mutable deactivated : bool;
  mutable runnable_since : Sim.Time.t option;
  mutable used : Sim.Time.t;
  mutable n_activations : int;
  mutable n_completed : int;
  mutable n_missed : int;
  act_latency : Sim.Stats.Samples.t;
  response : Sim.Stats.Samples.t;
}

let next_id = ref 0

let create ~name ?(mode = Informed) ?(period = Sim.Time.ms 40)
    ?(slice = Sim.Time.ms 4) ?(extra = true) ?(priority = 0) () =
  incr next_id;
  {
    id = !next_id;
    name;
    mode;
    params = { period; slice; extra; priority };
    sched =
      {
        release = Sim.Time.zero;
        deadline = Sim.Time.zero;
        remain = Sim.Time.zero;
        rr_last = Sim.Time.zero;
      };
    jobs = [];
    current_job = None;
    handler = None;
    deactivated = true;
    runnable_since = None;
    used = Sim.Time.zero;
    n_activations = 0;
    n_completed = 0;
    n_missed = 0;
    act_latency = Sim.Stats.Samples.create ();
    response = Sim.Stats.Samples.create ();
  }

let id t = t.id
let name t = t.name
let mode t = t.mode
let params t = t.params
let sched t = t.sched
let add_job t job = t.jobs <- t.jobs @ [ job ]

let next_job t =
  match t.mode with
  | Opaque -> begin
      (* Transparent resumption: finish what was running, else FIFO. *)
      match t.current_job with
      | Some j -> Some j
      | None -> ( match t.jobs with [] -> None | j :: _ -> Some j)
    end
  | Informed -> begin
      (* The user-level scheduler is re-entered at activation and runs
         EDF over everything pending, including a preempted job. *)
      match t.jobs with
      | [] -> None
      | first :: rest ->
          let best =
            List.fold_left
              (fun acc j ->
                if Job.deadline_key j < Job.deadline_key acc then j else acc)
              first rest
          in
          Some best
    end

let set_current t j = t.current_job <- j
let current t = t.current_job

let remove_job t job =
  t.jobs <- List.filter (fun j -> j != job) t.jobs;
  match t.current_job with
  | Some j when j == job -> t.current_job <- None
  | Some _ | None -> ()

let job_count t = List.length t.jobs
let has_work t = t.jobs <> []

let earliest_job_deadline t =
  List.fold_left
    (fun acc j -> Sim.Time.min acc (Job.deadline_key j))
    Int64.max_int t.jobs

let set_activation_handler t f = t.handler <- Some f

let activate t ~now ~events =
  t.n_activations <- t.n_activations + 1;
  (match t.runnable_since with
  | Some since ->
      Sim.Stats.Samples.add t.act_latency (Sim.Time.to_us_f (Sim.Time.sub now since));
      t.runnable_since <- None
  | None -> ());
  t.deactivated <- false;
  match t.handler with Some f -> f ~now ~events | None -> ()

let deactivate t = t.deactivated <- true
let is_deactivated t = t.deactivated

let note_runnable t ~now =
  match t.runnable_since with
  | Some _ -> ()
  | None -> t.runnable_since <- Some now

let charge t amount = t.used <- Sim.Time.add t.used amount
let cpu_used t = t.used
let activations t = t.n_activations
let jobs_completed t = t.n_completed
let deadline_misses t = t.n_missed

let note_job_done t (job : Job.t) ~now =
  t.n_completed <- t.n_completed + 1;
  Sim.Stats.Samples.add t.response (Sim.Time.to_us_f (Sim.Time.sub now job.created));
  match job.deadline with
  | Some d when Sim.Time.(now > d) -> t.n_missed <- t.n_missed + 1
  | Some _ | None -> ()

let activation_latency_us t = t.act_latency
let response_time_us t = t.response
