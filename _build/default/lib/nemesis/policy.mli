(** Domain scheduling policies.

    The paper's scheduler (here [atropos], after the Nemesis scheduler
    of that name) gives each domain a guaranteed slice of CPU per
    period and, while domains have allocation remaining, selects among
    them earliest-deadline-first; when all guarantees are satisfied the
    remaining slack is shared round-robin among domains that asked for
    extra time.  [edf], [fixed_priority] and [round_robin] are the
    baselines the evaluation compares against. *)

type decision = {
  domain : Domain.t;
  window_end : Sim.Time.t;
      (** instant at which the kernel must re-examine the decision *)
  from_slack : bool;  (** true when granted from slack, not guarantee *)
}

type t = {
  policy_name : string;
  select : domains:Domain.t list -> now:Sim.Time.t -> decision option;
      (** Pick a runnable domain, or [None] to idle. *)
  charge : Domain.t -> amount:Sim.Time.t -> unit;
      (** Consume [amount] of the domain's allocation. *)
  next_wake : domains:Domain.t list -> now:Sim.Time.t -> Sim.Time.t option;
      (** When to re-run [select] although nothing else happened
          (e.g. a new allocation period starts). *)
}

val atropos :
  ?slack_quantum:Sim.Time.t ->
  ?slack:[ `Round_robin | `Proportional | `None ] ->
  unit ->
  t
(** The paper's scheduler.  [slack_quantum] (default 1 ms) bounds how
    long a slack grant runs before the decision is revisited.  [slack]
    selects the policy for sharing out remaining resources — which the
    paper leaves as "the subject of investigation"; the ablation in
    experiment A1 compares the options.  [`Round_robin] (default)
    rotates among extra-time domains, [`Proportional] weights slack by
    guaranteed share, [`None] idles once guarantees are met. *)

val edf : ?quantum:Sim.Time.t -> unit -> t
(** Plain earliest-deadline-first over the domains' most urgent job
    deadlines, with no reservations: optimal when feasible, collapses
    unpredictably under overload. *)

val fixed_priority : ?quantum:Sim.Time.t -> unit -> t
(** Highest static priority wins; ties broken by domain id. *)

val round_robin : ?quantum:Sim.Time.t -> unit -> t
(** Equal turns in become-runnable order. *)
