type app = {
  qa_domain : Domain.t;
  mutable want : float;
  mutable grant : float;
  mutable ewma_util : float;
  mutable used_mark : Sim.Time.t;  (* Domain.cpu_used at the last review *)
  adapt : (granted:float -> unit) option;
}

type t = {
  kernel : Kernel.t;
  interval : Sim.Time.t;
  capacity : float;
  smoothing : float;
  mutable apps : app list;
  mutable last_review : Sim.Time.t;
  mutable n_reviews : int;
}

let apply_grant t app fraction =
  let changed = Float.abs (fraction -. app.grant) > 0.01 in
  app.grant <- fraction;
  let p = Domain.params app.qa_domain in
  p.Domain.slice <-
    Sim.Time.of_sec_f (Sim.Time.to_sec_f p.Domain.period *. fraction);
  ignore t;
  if changed then
    match app.adapt with Some f -> f ~granted:fraction | None -> ()

(* Redistribute: each application's effective demand is its request,
   shrunk while it demonstrably leaves its grant unused; then scale all
   demands into the available capacity (this is where "weights are
   calculated from the user's current policy"). *)
let recalculate t =
  let demands =
    List.map
      (fun app ->
        let demand =
          if app.ewma_util >= 0.7 then app.want
          else Float.max (app.want *. app.ewma_util /. 0.7) (app.want *. 0.1)
        in
        (app, demand))
      t.apps
  in
  let total = List.fold_left (fun acc (_, d) -> acc +. d) 0.0 demands in
  let scale = if total > t.capacity then t.capacity /. total else 1.0 in
  List.iter (fun (app, demand) -> apply_grant t app (demand *. scale)) demands

let review t =
  let now = Kernel.now t.kernel in
  let elapsed = Sim.Time.to_sec_f (Sim.Time.sub now t.last_review) in
  t.last_review <- now;
  t.n_reviews <- t.n_reviews + 1;
  if elapsed > 0.0 then
    List.iter
      (fun app ->
        let used = Domain.cpu_used app.qa_domain in
        let delta = Sim.Time.to_sec_f (Sim.Time.sub used app.used_mark) in
        app.used_mark <- used;
        let granted_time = elapsed *. Float.max app.grant 0.001 in
        let util = Float.min 1.0 (delta /. granted_time) in
        app.ewma_util <-
          (t.smoothing *. util) +. ((1.0 -. t.smoothing) *. app.ewma_util))
      t.apps;
  recalculate t

let create kernel ?(interval = Sim.Time.ms 100) ?(capacity = 0.9)
    ?(smoothing = 0.3) () =
  let t =
    {
      kernel;
      interval;
      capacity;
      smoothing;
      apps = [];
      last_review = Kernel.now kernel;
      n_reviews = 0;
    }
  in
  Sim.Engine.every ~daemon:true (Kernel.engine kernel) ~period:interval
    (fun () ->
      review t;
      true);
  t

let register t ~domain ~want ?adapt () =
  let app =
    {
      qa_domain = domain;
      want;
      grant = 0.0;
      ewma_util = 1.0;  (* assume full use until measured otherwise *)
      used_mark = Domain.cpu_used domain;
      adapt;
    }
  in
  t.apps <- t.apps @ [ app ];
  recalculate t

let unregister t ~domain =
  t.apps <- List.filter (fun a -> a.qa_domain != domain) t.apps;
  recalculate t

let find t domain =
  match List.find_opt (fun a -> a.qa_domain == domain) t.apps with
  | Some a -> a
  | None -> raise Not_found

let set_want t ~domain want = (find t domain).want <- want
let granted t ~domain = (find t domain).grant
let utilisation t ~domain = (find t domain).ewma_util
let reviews t = t.n_reviews
