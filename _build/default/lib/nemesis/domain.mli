(** Nemesis domains.

    A domain is the schedulable entity: a single protection domain
    within the shared address space, holding its own user-level thread
    scheduler.  The processor is given to a domain by {e activating} it
    (an upcall through the activation vector in the Domain Information
    Block) and taken away by {e deactivating} it — unlike a Unix
    process, the domain is told when it has the processor.

    The [mode] captures the paper's comparison with traditional kernel
    threads: an [Informed] domain's user-level scheduler is re-entered
    at every activation and picks the most urgent job (it can exploit
    the time and pending-event information); an [Opaque] domain is
    resumed transparently exactly where it was preempted, like a
    suspended process, so an urgent job can sit behind a long stale
    one. *)

type mode = Informed | Opaque

(** Scheduling parameters of the domain (the "sdom"): [slice] of CPU
    guaranteed every [period]; [extra] marks willingness to consume
    slack time; [priority] is only used by the fixed-priority baseline
    policy. *)
type params = {
  mutable period : Sim.Time.t;
  mutable slice : Sim.Time.t;
  mutable extra : bool;
  mutable priority : int;
}

(** Per-domain scratch state owned by the scheduling policy. *)
type sched_state = {
  mutable release : Sim.Time.t;  (** start of the next allocation period *)
  mutable deadline : Sim.Time.t;  (** end of the current period *)
  mutable remain : Sim.Time.t;  (** allocation left in this period *)
  mutable rr_last : Sim.Time.t;  (** round-robin recency *)
}

type t

val create :
  name:string ->
  ?mode:mode ->
  ?period:Sim.Time.t ->
  ?slice:Sim.Time.t ->
  ?extra:bool ->
  ?priority:int ->
  unit ->
  t
(** Defaults: [Informed], 40 ms period, 4 ms slice, [extra] = true,
    priority 0. *)

val id : t -> int
val name : t -> string
val mode : t -> mode
val params : t -> params
val sched : t -> sched_state

(** {1 Jobs and the user-level thread scheduler} *)

val add_job : t -> Job.t -> unit

val next_job : t -> Job.t option
(** The job the domain's user-level scheduler would run now:
    EDF among pending jobs for [Informed] domains; for [Opaque]
    domains, the job that was already running, else FIFO order. *)

val set_current : t -> Job.t option -> unit
val current : t -> Job.t option

val remove_job : t -> Job.t -> unit
(** Also clears [current] if it was this job. *)

val job_count : t -> int
val has_work : t -> bool
val earliest_job_deadline : t -> Sim.Time.t
(** Over pending jobs; far future when none carry deadlines. *)

(** {1 Activation bookkeeping} *)

val set_activation_handler : t -> (now:Sim.Time.t -> events:int -> unit) -> unit
(** The activation-vector entry: invoked whenever the domain is given
    the processor after a deactivation.  [events] counts event
    notifications delivered with this activation. *)

val activate : t -> now:Sim.Time.t -> events:int -> unit
(** Called by the kernel; updates accounting and runs the handler. *)

val deactivate : t -> unit
val is_deactivated : t -> bool

val note_runnable : t -> now:Sim.Time.t -> unit
(** Record the instant the domain became runnable (for activation-
    latency accounting); keeps the earliest mark until activation. *)

(** {1 Accounting} *)

val charge : t -> Sim.Time.t -> unit
val cpu_used : t -> Sim.Time.t
val activations : t -> int
val jobs_completed : t -> int
val deadline_misses : t -> int
val note_job_done : t -> Job.t -> now:Sim.Time.t -> unit
val activation_latency_us : t -> Sim.Stats.Samples.t
val response_time_us : t -> Sim.Stats.Samples.t
(** Job creation-to-completion times. *)
