type request = {
  r_meth : string;
  r_payload : bytes;
  r_reply : (bytes, [ `Queue_full ]) result -> unit;
}

type server = {
  s_kernel : Kernel.t;
  s_domain : Domain.t;
  s_depth : int;
  s_cost : Sim.Time.t;
  s_handler : meth:string -> bytes -> bytes;
  mutable s_served : int;
}

type conn = {
  c_server : server;
  c_client : Domain.t;
  (* the shared-memory request queue (client -> server) *)
  c_requests : request Queue.t;
  (* server -> client completions waiting for the client's activation *)
  c_replies : (request * bytes) Queue.t;
  c_to_server : Kernel.channel;
  c_to_client : Kernel.channel;
}

type error = [ `Queue_full ]

let serve kernel ~domain ?(queue_depth = 16) ?(cost = Sim.Time.us 20) handler =
  {
    s_kernel = kernel;
    s_domain = domain;
    s_depth = queue_depth;
    s_cost = cost;
    s_handler = handler;
    s_served = 0;
  }

let connect kernel ~client server =
  let requests = Queue.create () in
  let replies = Queue.create () in
  let engine = Kernel.engine kernel in
  let to_client = ref None in
  (* Server side: each notification is one request to pull off the
     shared queue; the handler runs as a job costing s_cost. *)
  let to_server =
    Kernel.channel kernel ~dst:server.s_domain ~mode:`Sync
      ~closure:(fun () ->
        match Queue.take_opt requests with
        | None -> None
        | Some req ->
            Some
              (Job.make ~label:("serve " ^ req.r_meth) ~work:server.s_cost
                 ~created:(Sim.Engine.now engine)
                 ~on_complete:(fun () ->
                   server.s_served <- server.s_served + 1;
                   let result = server.s_handler ~meth:req.r_meth req.r_payload in
                   Queue.add (req, result) replies;
                   match !to_client with
                   | Some ch -> Kernel.send kernel ch
                   | None -> ())
                 ()))
      ()
  in
  (* Client side: a reply notification delivers the result through a
     tiny stub job (the protected-call return path). *)
  let to_client_ch =
    Kernel.channel kernel ~dst:client ~mode:`Sync
      ~closure:(fun () ->
        match Queue.take_opt replies with
        | None -> None
        | Some (req, result) ->
            Some
              (Job.make ~label:"ipc-return" ~work:(Sim.Time.us 5)
                 ~created:(Sim.Engine.now engine)
                 ~on_complete:(fun () -> req.r_reply (Ok result))
                 ()))
      ()
  in
  to_client := Some to_client_ch;
  {
    c_server = server;
    c_client = client;
    c_requests = requests;
    c_replies = replies;
    c_to_server = to_server;
    c_to_client = to_client_ch;
  }

let call conn ~meth payload ~reply =
  if Queue.length conn.c_requests >= conn.c_server.s_depth then
    reply (Error `Queue_full)
  else begin
    Queue.add { r_meth = meth; r_payload = payload; r_reply = reply }
      conn.c_requests;
    Kernel.send conn.c_server.s_kernel conn.c_to_server
  end

let calls_served s = s.s_served
let queue_depth conn = Queue.length conn.c_requests
