(** The single-address-space memory model.

    All domains share one 64-bit virtual address space; privacy comes
    from per-domain access rights on segments, not from separate
    translations.  The two costs/benefits the paper argues about are
    modelled here:

    - {e context-switch cost}: with per-process address spaces and
      virtually-addressed caches, aliases force cache/TLB flushes on
      every switch; a single address space removes them.
    - {e load-time relocation}: the price of the single space.  It is
      amortised by caching relocation results and reloading a program
      at the virtual address it had last time, which works when the
      top 32 address bits are a hash of the code — collisions are
      rare in a sparse 64-bit space.  *)

(** {1 Segments and protection} *)

type rights = { read : bool; write : bool; execute : bool }

val r : rights
val rw : rights
val rx : rights

type space
(** One machine's shared virtual address space. *)

type segment

val create_space : unit -> space

val alloc_segment : space -> name:string -> size:int -> segment
(** Allocate a segment at a fresh virtual address (never reused). *)

val segment_base : segment -> int64
val segment_size : segment -> int

val map : space -> domain:int -> segment -> rights -> unit
(** Grant [domain] access to [segment].  Remapping replaces rights. *)

val unmap : space -> domain:int -> segment -> unit

val access :
  space -> domain:int -> addr:int64 -> [ `Read | `Write | `Execute ] ->
  (segment, [ `Unmapped | `Protection ]) result
(** Check an access the way the MMU would: same translation for every
    domain, rights differ per domain. *)

val shared_mappings : space -> segment -> int
(** Number of domains a segment is currently mapped in. *)

(** {1 Context-switch cost model} *)

type cache = { lines : int; line_fill : Sim.Time.t }

val default_cache : cache
(** 256 lines, 200 ns per line fill — a small 1994 virtually-indexed
    cache. *)

val switch_cost : ?cache:cache -> aliases:bool -> unit -> Sim.Time.t
(** Cost of moving the CPU between protection domains.  [aliases:true]
    (separate address spaces, virtual caches) pays a full flush and
    refill; [aliases:false] (single address space) pays only the fixed
    register/stack switch (2 us). *)

(** {1 Load-time relocation and address reuse} *)

val hashed_base : code_hash:int32 -> int64
(** Allocate the top 32 address bits from a hash of the code image, so
    a program reloads at the same address with high probability. *)

val reuse_collisions : Sim.Rng.t -> images:int -> int
(** Simulate loading [images] distinct programs with random 32-bit
    hashes; count pairwise collisions (distinct images forced to
    different addresses, i.e. relocation-cache misses). *)

val relocation_cost : relocs:int -> Sim.Time.t
(** Cost of relocating an image with [relocs] entries (100 ns each). *)

val load_cost : relocs:int -> cache_hit:bool -> Sim.Time.t
(** Image load cost: a relocation-cache hit costs a fixed 50 us map
    operation; a miss additionally pays {!relocation_cost}. *)
