lib/nemesis/qos.ml: Domain Float Kernel List Sim
