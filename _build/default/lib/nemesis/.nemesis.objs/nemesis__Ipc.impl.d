lib/nemesis/ipc.ml: Domain Job Kernel Queue Sim
