lib/nemesis/kernel.mli: Domain Job Policy Sim
