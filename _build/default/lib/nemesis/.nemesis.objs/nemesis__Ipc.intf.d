lib/nemesis/ipc.mli: Domain Kernel Sim
