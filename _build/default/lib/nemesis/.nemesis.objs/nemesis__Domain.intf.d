lib/nemesis/domain.mli: Job Sim
