lib/nemesis/policy.mli: Domain Sim
