lib/nemesis/domain.ml: Int64 Job List Sim
