lib/nemesis/vm.ml: Hashtbl Int64 List Sim
