lib/nemesis/qos.mli: Domain Kernel Sim
