lib/nemesis/kernel.ml: Domain Fun Job List Policy Sim
