lib/nemesis/policy.ml: Domain Float Int64 List Sim
