lib/nemesis/job.mli: Sim
