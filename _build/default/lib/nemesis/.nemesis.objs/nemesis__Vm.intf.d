lib/nemesis/vm.mli: Sim
