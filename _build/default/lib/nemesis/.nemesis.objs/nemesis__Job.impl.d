lib/nemesis/job.ml: Int64 Sim
