type decision = { domain : Domain.t; window_end : Sim.Time.t; from_slack : bool }

type t = {
  policy_name : string;
  select : domains:Domain.t list -> now:Sim.Time.t -> decision option;
  charge : Domain.t -> amount:Sim.Time.t -> unit;
  next_wake : domains:Domain.t list -> now:Sim.Time.t -> Sim.Time.t option;
}

let runnable domains = List.filter Domain.has_work domains

(* ------------------------------------------------------------------ *)
(* Atropos: guaranteed slices consumed EDF, slack shared round-robin.  *)

let refresh_allocations domains ~now =
  let refresh d =
    let s = Domain.sched d and p = Domain.params d in
    while Sim.Time.(s.Domain.release <= now) do
      s.Domain.remain <- p.Domain.slice;
      s.Domain.deadline <- Sim.Time.add s.Domain.release p.Domain.period;
      s.Domain.release <- Sim.Time.add s.Domain.release p.Domain.period
    done
  in
  List.iter refresh domains

let next_release domains =
  List.fold_left
    (fun acc d -> Sim.Time.min acc (Domain.sched d).Domain.release)
    Int64.max_int domains

let atropos ?(slack_quantum = Sim.Time.ms 1) ?(slack = `Round_robin) () =
  (* Selection sequence for round-robin fairness of slack: using a
     counter rather than the clock makes ties impossible. *)
  let seq = ref 0L in
  let select ~domains ~now =
    refresh_allocations domains ~now;
    let ready = runnable domains in
    let horizon = next_release domains in
    let guaranteed =
      List.filter (fun d -> (Domain.sched d).Domain.remain > 0L) ready
    in
    match guaranteed with
    | _ :: _ ->
        let best =
          List.fold_left
            (fun acc d ->
              let da = (Domain.sched acc).Domain.deadline
              and dd = (Domain.sched d).Domain.deadline in
              if Sim.Time.(dd < da) then d else acc)
            (List.hd guaranteed) (List.tl guaranteed)
        in
        let s = Domain.sched best in
        let window_end =
          Sim.Time.min
            (Sim.Time.add now s.Domain.remain)
            (Sim.Time.min s.Domain.deadline horizon)
        in
        Some { domain = best; window_end; from_slack = false }
    | [] -> begin
        (* All guarantees met (or exhausted): the slack policy decides
           who, if anyone, gets the leftovers. *)
        match slack with
        | `None -> None
        | (`Round_robin | `Proportional) as policy -> begin
            match
              List.filter (fun d -> (Domain.params d).Domain.extra) ready
            with
            | [] -> None
            | extras ->
                let best =
                  match policy with
                  | `Round_robin ->
                      List.fold_left
                        (fun acc d ->
                          if
                            Sim.Time.(
                              (Domain.sched d).Domain.rr_last
                              < (Domain.sched acc).Domain.rr_last)
                          then d
                          else acc)
                        (List.hd extras) (List.tl extras)
                  | `Proportional ->
                      (* Weight slack by the guaranteed share: the
                         domain furthest below (usage / share) goes
                         next. *)
                      let score d =
                        let p = Domain.params d in
                        let share =
                          Sim.Time.to_sec_f p.Domain.slice
                          /. Float.max 1e-9 (Sim.Time.to_sec_f p.Domain.period)
                        in
                        Sim.Time.to_sec_f (Domain.cpu_used d)
                        /. Float.max 1e-9 share
                      in
                      List.fold_left
                        (fun acc d -> if score d < score acc then d else acc)
                        (List.hd extras) (List.tl extras)
                in
                seq := Int64.add !seq 1L;
                (Domain.sched best).Domain.rr_last <- !seq;
                let window_end =
                  Sim.Time.min (Sim.Time.add now slack_quantum) horizon
                in
                Some { domain = best; window_end; from_slack = true }
          end
      end
  in
  let charge d ~amount =
    let s = Domain.sched d in
    s.Domain.remain <- Sim.Time.max Sim.Time.zero (Sim.Time.sub s.Domain.remain amount)
  in
  let next_wake ~domains ~now =
    if runnable domains = [] then None
    else begin
      let r = next_release domains in
      if Sim.Time.(r > now) && r <> Int64.max_int then Some r else None
    end
  in
  { policy_name = "atropos"; select; charge; next_wake }

(* ------------------------------------------------------------------ *)
(* Baselines.                                                          *)

let simple_policy name pick ?(quantum = Sim.Time.ms 10) () =
  let select ~domains ~now =
    match runnable domains with
    | [] -> None
    | ready ->
        let best = pick ready ~now in
        Some { domain = best; window_end = Sim.Time.add now quantum; from_slack = false }
  in
  {
    policy_name = name;
    select;
    charge = (fun _ ~amount:_ -> ());
    next_wake = (fun ~domains:_ ~now:_ -> None);
  }

let edf ?(quantum = Sim.Time.ms 1) () =
  let pick ready ~now:_ =
    List.fold_left
      (fun acc d ->
        if
          Sim.Time.(Domain.earliest_job_deadline d < Domain.earliest_job_deadline acc)
        then d
        else acc)
      (List.hd ready) (List.tl ready)
  in
  simple_policy "edf" pick ~quantum ()

let fixed_priority ?(quantum = Sim.Time.ms 10) () =
  let pick ready ~now:_ =
    List.fold_left
      (fun acc d ->
        if (Domain.params d).Domain.priority > (Domain.params acc).Domain.priority
        then d
        else acc)
      (List.hd ready) (List.tl ready)
  in
  simple_policy "fixed-priority" pick ~quantum ()

let round_robin ?(quantum = Sim.Time.ms 10) () =
  let seq = ref 0L in
  let pick ready ~now:_ =
    let best =
      List.fold_left
        (fun acc d ->
          if
            Sim.Time.(
              (Domain.sched d).Domain.rr_last < (Domain.sched acc).Domain.rr_last)
          then d
          else acc)
        (List.hd ready) (List.tl ready)
    in
    seq := Int64.add !seq 1L;
    (Domain.sched best).Domain.rr_last <- !seq;
    best
  in
  simple_policy "round-robin" pick ~quantum ()
