(** The Nemesis kernel: domain scheduling, events, interrupts and
    kernel-privileged sections.

    The kernel multiplexes one CPU over its domains under a pluggable
    {!Policy.t}.  A domain holds the processor for a window; it is told
    when it gets the processor (activation) and the kernel charges it
    for exactly the CPU it consumes, including the context-switch
    overhead of getting there.  There are no blocking system calls: a
    domain that runs out of work simply yields the rest of its window.

    Events are the single interprocess-communication primitive.  An
    event channel targets a domain and carries no value — only the fact
    that something happened — but a closure associated with the channel
    turns each notification into work (a {!Job.t}) when the domain is
    next activated.  Sends are [`Sync] (the sender gives up the
    processor, giving the lowest signalling latency for client/server
    pairs) or [`Async] (the sender keeps its window, best for
    demultiplexers that batch arrivals). *)

type t

val create :
  Sim.Engine.t ->
  policy:Policy.t ->
  ?ctx_switch_cost:Sim.Time.t ->
  unit ->
  t
(** [ctx_switch_cost] (default 10 us) is charged whenever the processor
    moves between different domains — see {!Vm} for how the single
    address space shrinks this number. *)

val engine : t -> Sim.Engine.t
val now : t -> Sim.Time.t
val policy_name : t -> string

val add_domain : t -> Domain.t -> unit
(** Register a domain; its first allocation period starts now. *)

val domains : t -> Domain.t list

val submit : t -> Domain.t -> Job.t -> unit
(** Hand a job to a domain's user-level scheduler (and reschedule). *)

(** {1 Events} *)

type channel

val channel :
  t ->
  dst:Domain.t ->
  mode:[ `Sync | `Async ] ->
  ?closure:(unit -> Job.t option) ->
  unit ->
  channel
(** [closure] runs once per pending notification when the destination
    is activated; a returned job is queued in the destination. *)

val send : t -> channel -> unit
(** Raise the event from whatever is currently executing.  [`Sync]
    triggers an immediate reschedule (the sender yields); [`Async]
    leaves the running window alone. *)

val interrupt : t -> channel -> unit
(** Raise the event from a device.  Always triggers a reschedule, but
    is deferred while any kernel-privileged section is active. *)

val pending : channel -> int
val sent : channel -> int
val delivered : channel -> int

val timer : t -> at:Sim.Time.t -> channel -> unit
(** Deliver an interrupt on [channel] at absolute time [at]. *)

(** {1 Kernel-privileged sections (paper Figure 5)} *)

val enter_kps : t -> unit
val exit_kps : t -> unit
(** Raises [Invalid_argument] when not inside a section. *)

val kps_active : t -> bool

val with_kps : t -> (unit -> 'a) -> 'a
(** TRY ... FINALLY semantics: the section is exited even if the body
    raises, so the thread leaves kernel mode before any outside handler
    runs.  Sections nest. *)

(** {1 Introspection} *)

val context_switches : t -> int
val idle_time : t -> Sim.Time.t
(** Total time no domain held the processor. *)

val running : t -> Domain.t option
