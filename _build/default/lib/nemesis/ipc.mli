(** Inter-domain communication: the protected ("local remote") procedure
    call.

    Exactly the construction the paper sketches for same-machine
    invocation: a pair of message queues in memory shared between the
    client and server domains, plus a pair of event channels.  The
    client enqueues a request and raises the server's event
    synchronously (handing over the processor); the server's handler
    job consumes the request and raises the client's event with the
    reply.  Marshalling is bytes-in, bytes-out, matching {!Maillon}
    method signatures upstairs. *)

type server

type conn

val serve :
  Kernel.t ->
  domain:Domain.t ->
  ?queue_depth:int ->
  ?cost:Sim.Time.t ->
  (meth:string -> bytes -> bytes) ->
  server
(** Export a handler running inside [domain].  [cost] (default 20 us)
    is the CPU the handler job consumes per call; [queue_depth]
    (default 16) bounds the shared request queue. *)

val connect : Kernel.t -> client:Domain.t -> server -> conn
(** Set up the shared-memory queue pair and event channels. *)

type error = [ `Queue_full ]

val call :
  conn ->
  meth:string ->
  bytes ->
  reply:((bytes, error) result -> unit) ->
  unit
(** Invoke from within the client domain's execution (typically from a
    job completion).  [reply] runs inside the client when the reply
    event is delivered.  [`Queue_full] is immediate back-pressure. *)

val calls_served : server -> int
val queue_depth : conn -> int
(** Requests currently waiting (for back-pressure tests). *)
