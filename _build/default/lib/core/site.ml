type t = {
  engine : Sim.Engine.t;
  net : Atm.Net.t;
  backbone : Atm.Net.node_id;
  directory : Naming.Namespace.t;
}

let create ?(backbone_ports = 32) engine =
  let net = Atm.Net.create engine in
  let backbone = Atm.Net.add_switch net ~name:"backbone" ~ports:backbone_ports in
  {
    engine;
    net;
    backbone;
    directory = Naming.Namespace.create ~name:"site" ();
  }

let engine t = t.engine
let net t = t.net
let backbone t = t.backbone
let directory t = t.directory

let add_host t ~name =
  let host = Atm.Net.add_host t.net ~name in
  Atm.Net.connect t.net host t.backbone;
  host

let add_switch t ~name ?(ports = 8) () =
  let switch = Atm.Net.add_switch t.net ~name ~ports in
  Atm.Net.connect t.net switch t.backbone;
  switch

let publish t ~path maillon = Naming.Namespace.bind t.directory ~path maillon

let mount_directory t ~into ~rtt =
  Naming.Namespace.mount into ~path:"global" ~target:t.directory
    ~via:(Naming.Relation.Remote rtt)
