(** An audio/video session between two workstations — the video-phone
    path of Figures 1 and 4.

    Video flows camera-node → display-node and audio flows DSP-node →
    DSP-node entirely through the switches; no CPU touches media data.
    Each device also produces a low-bandwidth control stream to its
    workstation's manager; the sender's manager merges them and ships
    one combined control stream to the play-back controller at the
    receiver, which aligns the streams using the synchronisation marks
    and the data-arrival events. *)

type t

val create :
  from_:Workstation.t ->
  to_:Workstation.t ->
  ?camera:int ->
  ?width:int ->
  ?height:int ->
  ?fps:int ->
  ?mode:Atm.Camera.mode ->
  ?release:Atm.Camera.release ->
  ?with_audio:bool ->
  ?window:int * int ->
  unit ->
  t
(** Defaults: camera 0, 320x240 at 25 fps, JPEG 8:1, tile-row release,
    audio on, window at (64, 64).  Raises [Invalid_argument] when the
    endpoints lack the needed devices. *)

val start : t -> unit
val stop : t -> unit

val camera : t -> Atm.Camera.t
val display_vci : t -> int
(** The VCI indexing this session's window descriptor at the display. *)

(** {1 Measurements} *)

val video_staging_latency_us : t -> Sim.Stats.Samples.t
val frames_shown : t -> int
val audio_jitter_us : t -> float
(** 0.0 for video-only sessions. *)

val audio_late_cells : t -> int

val av_sync_skew_us : t -> Sim.Stats.Samples.t
(** |video latency − audio latency| for matching capture instants, from
    the play-back controller. *)

val playback : t -> Atm.Control.Playback.t
