lib/core/fileserver.ml: Atm Bytes List Naming Pfs Printf Rpc Sim Site Workstation
