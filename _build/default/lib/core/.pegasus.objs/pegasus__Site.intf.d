lib/core/site.mli: Atm Naming Sim
