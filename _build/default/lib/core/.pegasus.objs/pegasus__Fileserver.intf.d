lib/core/fileserver.mli: Atm Naming Pfs Rpc Sim Site Workstation
