lib/core/remote_objects.mli: Naming Rpc
