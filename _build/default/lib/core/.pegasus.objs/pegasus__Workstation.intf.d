lib/core/workstation.mli: Atm Naming Nemesis Rpc Site
