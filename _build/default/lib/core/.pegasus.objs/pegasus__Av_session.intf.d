lib/core/av_session.mli: Atm Sim Workstation
