lib/core/av_session.ml: Atm Sim Site Workstation
