lib/core/remote_objects.ml: Hashtbl List Naming Option Rpc String
