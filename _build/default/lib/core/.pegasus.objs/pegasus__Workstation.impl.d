lib/core/workstation.ml: Array Atm Bytes Naming Nemesis Printf Rpc Sim Site
