lib/core/wm.ml: Atm List
