lib/core/site.ml: Atm Naming Sim
