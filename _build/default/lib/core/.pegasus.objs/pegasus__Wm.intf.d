lib/core/wm.mli: Atm
