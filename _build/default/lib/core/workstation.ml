type t = {
  ws_name : string;
  ws_site : Site.t;
  switch : Atm.Net.node_id;
  cpu : Atm.Net.node_id;
  kernel : Nemesis.Kernel.t;
  qos : Nemesis.Qos.t;
  ns : Naming.Namespace.t;
  rpc_ep : Rpc.endpoint;
  cameras : Atm.Net.node_id array;
  display_host : Atm.Net.node_id option;
  display : Atm.Display.t option;
  audio : Atm.Net.node_id option;
}

let device_maillon ~kind ~host_name =
  Naming.Maillon.of_iface ~reference:host_name
    (Naming.Maillon.iface
       [
         ("kind", fun _ -> Bytes.of_string kind);
         ("where", fun _ -> Bytes.of_string host_name);
       ])

let create site ~name ?(cameras = 1) ?(display = true) ?(audio = true)
    ?(policy = Nemesis.Policy.atropos ()) () =
  let engine = Site.engine site in
  let net = Site.net site in
  let switch = Site.add_switch site ~name:(name ^ ".dan") () in
  let attach device =
    let host = Atm.Net.add_host net ~name:device in
    Atm.Net.connect net host switch;
    host
  in
  let cpu = attach (name ^ ".cpu") in
  let camera_hosts =
    Array.init cameras (fun i -> attach (Printf.sprintf "%s.cam%d" name i))
  in
  let display_host, display_dev =
    if display then begin
      let host = attach (name ^ ".disp") in
      (Some host, Some (Atm.Display.create engine ()))
    end
    else (None, None)
  in
  let audio = if audio then Some (attach (name ^ ".dsp")) else None in
  let kernel = Nemesis.Kernel.create engine ~policy () in
  let qos = Nemesis.Qos.create kernel () in
  let ns = Naming.Namespace.create ~name () in
  (* Local names are the shortest: devices appear right under /dev. *)
  Array.iteri
    (fun i host ->
      Naming.Namespace.bind ns
        ~path:(Printf.sprintf "dev/camera%d" i)
        (device_maillon ~kind:"camera" ~host_name:(Atm.Net.node_name net host)))
    camera_hosts;
  (match display_host with
  | Some host ->
      Naming.Namespace.bind ns ~path:"dev/display"
        (device_maillon ~kind:"display" ~host_name:(Atm.Net.node_name net host))
  | None -> ());
  (match audio with
  | Some host ->
      Naming.Namespace.bind ns ~path:"dev/audio"
        (device_maillon ~kind:"audio" ~host_name:(Atm.Net.node_name net host))
  | None -> ());
  (* The shared tree is reachable by convention, never as the root. *)
  Site.mount_directory site ~into:ns ~rtt:(Sim.Time.us 500);
  Site.publish site
    ~path:("ws/" ^ name)
    (device_maillon ~kind:"workstation" ~host_name:name);
  {
    ws_name = name;
    ws_site = site;
    switch;
    cpu;
    kernel;
    qos;
    ns;
    rpc_ep = Rpc.endpoint net ~host:cpu;
    cameras = camera_hosts;
    display_host;
    display = display_dev;
    audio;
  }

let name t = t.ws_name
let site t = t.ws_site
let kernel t = t.kernel
let qos t = t.qos
let namespace t = t.ns
let rpc t = t.rpc_ep
let cpu t = t.cpu
let dan_switch t = t.switch

let camera_host t i =
  if i < 0 || i >= Array.length t.cameras then
    invalid_arg "Workstation.camera_host: no such camera";
  t.cameras.(i)

let camera_count t = Array.length t.cameras
let display_host t = t.display_host
let display t = t.display
let audio_host t = t.audio
