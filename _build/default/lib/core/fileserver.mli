(** The Pegasus storage server as a network node.

    Behind the scenes it is the log-structured core over a 4+1 RAID
    ({!Pfs}); towards the site it is (a) an RPC interface ["pfs"] for
    ordinary file traffic, (b) a multimedia device: point a camera's
    data and control streams at it and it records, building the index
    that later supports seeking and fast-forward, and (c) a name space
    other nodes mount. *)

type t

val create :
  Site.t ->
  name:string ->
  ?segment_bytes:int ->
  ?store_data:bool ->
  ?write_delay:Sim.Time.t ->
  unit ->
  t
(** Defaults: 1 MB segments, timing-only storage, 30 s write-behind. *)

val name : t -> string
val host : t -> Atm.Net.node_id
val rpc : t -> Rpc.endpoint
val log : t -> Pfs.Log.t
val raid : t -> Pfs.Raid.t
val streams : t -> Pfs.Stream.t
val write_server : t -> Pfs.Client_agent.Server.t
val namespace : t -> Naming.Namespace.t

val connect_client :
  t -> Workstation.t -> Rpc.conn * Pfs.Client_agent.Agent.t
(** An RPC connection plus a write-buffering client agent for a
    workstation. *)

(** {1 The RPC interface}

    Interface ["pfs"], binary arguments big-endian:
    - [create] () -> fid(u32)
    - [write] fid(u32) off(u32) len(u32) [data] -> ()
    - [read] fid(u32) off(u32) len(u32) -> data
    - [delete] fid(u32) -> ()
    - [size] fid(u32) -> u32 *)

val encode_u32s : int list -> bytes
val decode_u32 : bytes -> int -> int

(** {1 Recording continuous media} *)

type recorder

val start_recorder :
  t -> rate_bps:int -> (recorder, [ `Admission_denied ]) result

val recorder_data_rx : recorder -> Atm.Cell.t -> unit
(** Attach as the rx of the media data VC: every AAL5 frame is
    appended to the recording. *)

val recorder_control_rx : recorder -> Atm.Cell.t -> unit
(** Attach as the rx of the control VC: synchronisation marks become
    index entries mapping source time to byte offset. *)

val recorder_fid : recorder -> Pfs.Log.fid
val recorder_bytes : recorder -> int
val finish_recorder : t -> recorder -> unit
