(** Remote object invocation: first-class handles across machines.

    Object handles can be passed as arguments in local and remote
    procedures; passing a handle for a local object to a remote process
    has the side effect of creating a connection through which the
    object can be invoked remotely.  {!export} puts a maillon's methods
    behind a host's RPC endpoint; {!import} is what the receiving
    process does with an incoming reference — the resulting proxy calls
    back across the network.  {!as_maillon} re-wraps a proxy as an
    ordinary (caching-capable) handle for namespaces, with
    continuation-passing invocation because remote calls take simulated
    time. *)

type proxy

val export : Rpc.endpoint -> Naming.Maillon.t -> string
(** Make the object callable through the endpoint; returns the opaque
    reference string to pass around (the fixed-size part of the
    maillon). *)

val import : Rpc.conn -> reference:string -> proxy
(** Bind an incoming reference to a connection — the "side effect"
    made explicit. *)

val invoke :
  proxy ->
  meth:string ->
  bytes ->
  reply:((bytes, Rpc.error) result -> unit) ->
  unit

val reference : proxy -> string

val exported_count : Rpc.endpoint -> int
(** How many objects this endpoint serves (connection bookkeeping for
    tests). *)
