let title_bar_height = 12
let colour_focused = 0xDD
let colour_plain = 0x88

type win = {
  w_vci : int;
  w_title : string;
  mutable w_x : int;
  mutable w_y : int;
  mutable w_w : int;
  mutable w_h : int;
  mutable w_iconized : bool;
}

type t = { display : Atm.Display.t; mutable wins : win list }

let create display = { display; wins = [] }

let draw_title_bar t w ~focused =
  Atm.Display.decorate t.display ~x:w.w_x ~y:(w.w_y - title_bar_height)
    ~width:(if w.w_iconized then 16 else w.w_w)
    ~height:title_bar_height
    ~value:(if focused then colour_focused else colour_plain)

let apply_clip t w =
  if w.w_iconized then
    Atm.Display.resize_window t.display ~vci:w.w_vci ~width:16 ~height:16
  else
    Atm.Display.resize_window t.display ~vci:w.w_vci ~width:w.w_w
      ~height:w.w_h

let manage t ~vci ~title ~x ~y ~width ~height =
  let w =
    { w_vci = vci; w_title = title; w_x = x; w_y = y; w_w = width; w_h = height;
      w_iconized = false }
  in
  Atm.Display.add_window t.display ~vci ~x ~y ~width ~height;
  draw_title_bar t w ~focused:false;
  t.wins <- w :: t.wins;
  w

let title w = w.w_title
let geometry w = (w.w_x, w.w_y, w.w_w, w.w_h)

let move t w ~x ~y =
  w.w_x <- x;
  w.w_y <- y;
  Atm.Display.move_window t.display ~vci:w.w_vci ~x ~y;
  draw_title_bar t w ~focused:false

let resize t w ~width ~height =
  w.w_w <- width;
  w.w_h <- height;
  apply_clip t w;
  draw_title_bar t w ~focused:false

let focus t w =
  Atm.Display.raise_window t.display ~vci:w.w_vci;
  List.iter (fun other -> draw_title_bar t other ~focused:(other == w)) t.wins

let lower t w =
  Atm.Display.lower_window t.display ~vci:w.w_vci;
  draw_title_bar t w ~focused:false

let iconize t w =
  if not w.w_iconized then begin
    w.w_iconized <- true;
    apply_clip t w;
    draw_title_bar t w ~focused:false
  end

let restore t w =
  if w.w_iconized then begin
    w.w_iconized <- false;
    apply_clip t w;
    draw_title_bar t w ~focused:false
  end

let iconized w = w.w_iconized

let close t w =
  Atm.Display.remove_window t.display ~vci:w.w_vci;
  t.wins <- List.filter (fun o -> not (o == w)) t.wins

let managed t = List.map (fun w -> (w.w_title, w.w_vci)) t.wins
