(** A Pegasus site (paper Figure 4).

    One ATM backbone switch interconnecting multimedia workstations,
    compute servers, the storage server and Unix boxes.  The site also
    holds the conventional ["global"] name tree that every node mounts
    — global only in the sense that anything can be named through it,
    not because it is anyone's root. *)

type t

val create : ?backbone_ports:int -> Sim.Engine.t -> t
(** Default backbone: a 32-port Fairisle-style switch. *)

val engine : t -> Sim.Engine.t
val net : t -> Atm.Net.t
val backbone : t -> Atm.Net.node_id

val directory : t -> Naming.Namespace.t
(** The site-wide name tree, shared by convention. *)

val add_host : t -> name:string -> Atm.Net.node_id
(** Attach a plain host (e.g. a Unix box) to the backbone. *)

val add_switch : t -> name:string -> ?ports:int -> unit -> Atm.Net.node_id
(** Attach a subsidiary switch (a workstation's desk-area network). *)

val publish : t -> path:string -> Naming.Maillon.t -> unit
(** Bind an object into the site directory. *)

val mount_directory : t -> into:Naming.Namespace.t -> rtt:Sim.Time.t -> unit
(** Mount the site directory at ["global"] in a node's namespace. *)
