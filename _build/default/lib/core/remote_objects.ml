(* Exported objects share one RPC interface, "objects"; the method
   string carries "<reference>\000<method>" so a single dispatcher
   serves every handle the process has given out. *)

let iface = "objects"

(* Keyed by physical identity: endpoints are mutable, so they must not
   be hashed structurally. *)
let registry : (Rpc.endpoint * (string, Naming.Maillon.t) Hashtbl.t) list ref =
  ref []

let find_table ep =
  List.find_opt (fun (e, _) -> e == ep) !registry |> Option.map snd

let table_for ep =
  match find_table ep with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 16 in
      registry := (ep, tbl) :: !registry;
      Rpc.serve ep ~iface (fun ~meth payload ->
          match String.index_opt meth '\000' with
          | None -> Error "malformed object call"
          | Some i -> begin
              let reference = String.sub meth 0 i in
              let real_meth =
                String.sub meth (i + 1) (String.length meth - i - 1)
              in
              match Hashtbl.find_opt tbl reference with
              | None -> Error ("no such object: " ^ reference)
              | Some maillon -> begin
                  match
                    Naming.Maillon.invoke maillon ~meth:real_meth payload
                  with
                  | Ok result -> Ok result
                  | Error (Naming.Maillon.No_such_method m) ->
                      Error ("no such method: " ^ m)
                end
            end);
      tbl

let export ep maillon =
  let tbl = table_for ep in
  let reference = Naming.Maillon.reference maillon in
  Hashtbl.replace tbl reference maillon;
  reference

type proxy = { p_conn : Rpc.conn; p_ref : string }

let import conn ~reference = { p_conn = conn; p_ref = reference }

let invoke proxy ~meth payload ~reply =
  Rpc.call proxy.p_conn ~iface
    ~meth:(proxy.p_ref ^ "\000" ^ meth)
    payload ~reply

let reference proxy = proxy.p_ref

let exported_count ep =
  match find_table ep with Some tbl -> Hashtbl.length tbl | None -> 0
