(** A Pegasus multimedia workstation (paper Figure 1).

    The conventional part — CPU, memory, network interface — hangs off
    a local desk-area switch, and so do the multimedia devices: camera
    nodes, the tile display, the audio/DSP node.  The switch is under
    the workstation's control, so media flows device-to-device without
    the CPU touching a pixel.  The CPU runs a Nemesis kernel with a QoS
    manager, a per-machine namespace (with the site tree mounted at
    ["global"]), and an RPC endpoint. *)

type t

val create :
  Site.t ->
  name:string ->
  ?cameras:int ->
  ?display:bool ->
  ?audio:bool ->
  ?policy:Nemesis.Policy.t ->
  unit ->
  t
(** Defaults: 1 camera, a display, an audio node, Atropos scheduling. *)

val name : t -> string
val site : t -> Site.t
val kernel : t -> Nemesis.Kernel.t
val qos : t -> Nemesis.Qos.t
val namespace : t -> Naming.Namespace.t
val rpc : t -> Rpc.endpoint

val cpu : t -> Atm.Net.node_id
(** The conventional host (where managers and the RPC endpoint live). *)

val dan_switch : t -> Atm.Net.node_id

val camera_host : t -> int -> Atm.Net.node_id
(** The [i]th camera device node.  Raises [Invalid_argument] when the
    workstation has fewer cameras. *)

val camera_count : t -> int

val display_host : t -> Atm.Net.node_id option
val display : t -> Atm.Display.t option

val audio_host : t -> Atm.Net.node_id option
(** The DSP node (capture and play-out). *)
