(** The window manager.

    "By manipulation of these contexts, a window manager can control
    which virtual channel, and thus which process, can access the
    different pixels of the screen. ... can create windows on screen,
    move them, resize them, iconize them and raise or lower them.  It
    can also use a window descriptor that allows it to write the whole
    screen for decorating windows with title bars and resize buttons."

    Everything here is descriptor manipulation at the display — the
    streams feeding the windows are never consulted, which is the whole
    point. *)

type t

type win

val create : Atm.Display.t -> t

val manage :
  t -> vci:int -> title:string -> x:int -> y:int -> width:int -> height:int ->
  win
(** Create the window descriptor and draw its title bar. *)

val title : win -> string
val geometry : win -> int * int * int * int
(** (x, y, width, height) of the content area. *)

val move : t -> win -> x:int -> y:int -> unit
val resize : t -> win -> width:int -> height:int -> unit

val focus : t -> win -> unit
(** Raise the window and repaint its title bar highlighted. *)

val lower : t -> win -> unit

val iconize : t -> win -> unit
(** Shrink the clip to a 16x16 stamp: the stream keeps sending, the
    descriptor just discards almost everything. *)

val restore : t -> win -> unit
val iconized : win -> bool

val close : t -> win -> unit
(** Remove the descriptor; the VC's cells then find no window. *)

val managed : t -> (string * int) list
(** (title, vci) of every managed window. *)

val title_bar_height : int
