(** Remote procedure call over the ATM network.

    Modelled on the Pegasus design: ANSA-style request/response layered
    on MSNA over AAL5.  A {!conn} is a pair of virtual circuits.  Calls
    are continuation-passing (the simulator cannot block); delivery is
    at-most-once — duplicate requests caused by retransmission are
    answered from a reply cache, never re-executed. *)

module Wire : module type of Wire
module Bulk : module type of Bulk

type endpoint

type conn

type error =
  | Timed_out  (** all retransmissions exhausted *)
  | No_such_interface of string
  | No_such_method of string
  | Remote_error of string

val pp_error : Format.formatter -> error -> unit

val endpoint : Atm.Net.t -> host:Atm.Net.node_id -> endpoint
(** At most one endpoint per host. *)

val serve :
  endpoint ->
  iface:string ->
  (meth:string -> bytes -> (bytes, string) result) ->
  unit
(** Export an interface.  The handler may also model a compute delay by
    being registered with {!serve_delayed}. *)

val serve_async :
  endpoint ->
  iface:string ->
  (meth:string ->
   bytes ->
   reply:((bytes, string) result -> unit) ->
   unit) ->
  unit
(** Like {!serve}, for handlers that complete asynchronously (e.g. a
    file server whose reads finish when the disk does): call [reply]
    exactly once, at any later simulated time. *)

val serve_delayed :
  endpoint ->
  iface:string ->
  delay:Sim.Time.t ->
  (meth:string -> bytes -> (bytes, string) result) ->
  unit
(** Like {!serve}, but replies leave [delay] after the request arrives
    (server compute time). *)

val connect :
  Atm.Net.t ->
  client:endpoint ->
  server:endpoint ->
  ?retransmit:Sim.Time.t ->
  ?max_tries:int ->
  unit ->
  conn
(** Establish the VC pair.  Defaults: retransmit after 10 ms, 4 tries. *)

val call :
  conn ->
  iface:string ->
  meth:string ->
  bytes ->
  reply:((bytes, error) result -> unit) ->
  unit

(** {1 Statistics} *)

val calls_sent : conn -> int
val retransmissions : conn -> int
val duplicates_suppressed : endpoint -> int
