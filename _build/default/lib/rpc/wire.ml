type kind = Request | Reply | Error_reply

type msg = {
  kind : kind;
  call_id : int;
  iface : string;
  meth : string;
  payload : bytes;
}

let kind_to_byte = function Request -> 1 | Reply -> 2 | Error_reply -> 3

let kind_of_byte = function
  | 1 -> Some Request
  | 2 -> Some Reply
  | 3 -> Some Error_reply
  | _ -> None

let marshal m =
  let ilen = String.length m.iface and mlen = String.length m.meth in
  let plen = Bytes.length m.payload in
  let b = Bytes.create (1 + 4 + 2 + ilen + 2 + mlen + plen) in
  Bytes.set b 0 (Char.chr (kind_to_byte m.kind));
  Atm.Util.put_u32 b 1 m.call_id;
  Atm.Util.put_u16 b 5 ilen;
  Bytes.blit_string m.iface 0 b 7 ilen;
  Atm.Util.put_u16 b (7 + ilen) mlen;
  Bytes.blit_string m.meth 0 b (9 + ilen) mlen;
  Bytes.blit m.payload 0 b (9 + ilen + mlen) plen;
  b

let unmarshal b =
  let len = Bytes.length b in
  if len < 9 then None
  else
    match kind_of_byte (Char.code (Bytes.get b 0)) with
    | None -> None
    | Some kind ->
        let call_id = Atm.Util.get_u32 b 1 in
        let ilen = Atm.Util.get_u16 b 5 in
        if len < 9 + ilen then None
        else begin
          let iface = Bytes.sub_string b 7 ilen in
          let mlen = Atm.Util.get_u16 b (7 + ilen) in
          if len < 9 + ilen + mlen then None
          else begin
            let meth = Bytes.sub_string b (9 + ilen) mlen in
            let payload =
              Bytes.sub b (9 + ilen + mlen) (len - 9 - ilen - mlen)
            in
            Some { kind; call_id; iface; meth; payload }
          end
        end
