lib/rpc/rpc.ml: Atm Bulk Bytes Format Hashtbl Lazy Sim String Wire
