lib/rpc/wire.ml: Atm Bytes Char String
