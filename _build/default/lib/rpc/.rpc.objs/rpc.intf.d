lib/rpc/rpc.mli: Atm Bulk Format Sim Wire
