lib/rpc/wire.mli:
