lib/rpc/bulk.mli: Atm
