lib/rpc/bulk.ml: Atm Bytes Char Float Queue Sim
