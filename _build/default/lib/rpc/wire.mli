(** Wire format for RPC messages.

    One message per AAL5 frame:
    [kind:u8] [call_id:u32] [iface len:u16 + bytes] [method len:u16 +
    bytes] [payload].  Replies reuse the call id and leave the
    interface and method empty. *)

type kind = Request | Reply | Error_reply

type msg = {
  kind : kind;
  call_id : int;
  iface : string;
  meth : string;
  payload : bytes;
}

val marshal : msg -> bytes
val unmarshal : bytes -> msg option
