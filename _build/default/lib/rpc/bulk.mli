(** Flow-controlled bulk transfer, the continuous-media/bulk side of
    the MSNA protocol hierarchy the Pegasus RPC sits on.

    A unidirectional byte stream over a VC pair: data frames flow on
    the forward circuit; the receiver returns {e credits} on the
    reverse circuit as its consumer drains, so a fast sender can never
    overrun a slow receiver or the switch queues.  With a window of
    [w] frames of [mtu] bytes and round-trip time [rtt], throughput is
    min(line rate, w·mtu/rtt) — the classic sliding-window law, which
    the tests check. *)

type sender

type receiver

val establish :
  Atm.Net.t ->
  src:Atm.Net.node_id ->
  dst:Atm.Net.node_id ->
  ?mtu:int ->
  ?window:int ->
  ?consume_rate_bps:int ->
  on_data:(bytes -> unit) ->
  unit ->
  sender * receiver
(** Set up the circuit pair.  [mtu] (default 8192) is the data-frame
    payload; [window] (default 8) the credit pool; [consume_rate_bps]
    (default unlimited = 0) throttles the receiver's consumer, delaying
    credit return accordingly.  [on_data] runs as each frame is
    consumed. *)

val send : sender -> bytes -> unit
(** Queue bytes for transmission (chunked to the MTU).  Transmission
    proceeds as credits allow. *)

val finish : sender -> on_done:(unit -> unit) -> unit
(** Call after the last {!send}; [on_done] fires when every queued
    byte has been delivered and consumed. *)

val bytes_sent : sender -> int
val bytes_delivered : receiver -> int
val frames_in_flight : sender -> int
val credits_available : sender -> int
