(** Simulated time.

    Time is a count of nanoseconds since the start of the simulation,
    held in an [int64].  2^63 ns is almost three centuries, so overflow
    is not a practical concern.  All of the simulator, the ATM network,
    the Nemesis kernel and the file-server models share this clock. *)

type t = int64

val zero : t

(** {1 Constructors} *)

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val of_sec_f : float -> t
(** [of_sec_f s] converts a duration in (possibly fractional) seconds. *)

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> int -> t
val div : t -> int -> t
val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

(** {1 Conversions} *)

val to_ns : t -> int
val to_us_f : t -> float
val to_ms_f : t -> float
val to_sec_f : t -> float

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)
