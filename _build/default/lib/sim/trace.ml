type t = {
  capacity : int;
  mutable enabled : bool;
  entries : (Time.t * string) option array;
  mutable head : int;  (* next write position *)
  mutable count : int;
}

let create ?(capacity = 4096) ?(enabled = true) () =
  { capacity; enabled; entries = Array.make capacity None; head = 0; count = 0 }

let enable t b = t.enabled <- b

let record t time msg =
  if t.enabled then begin
    t.entries.(t.head) <- Some (time, msg);
    t.head <- (t.head + 1) mod t.capacity;
    if t.count < t.capacity then t.count <- t.count + 1
  end

let recordf t time fmt =
  Format.kasprintf
    (fun msg -> if t.enabled then record t time msg)
    fmt

let length t = t.count

let to_list t =
  let result = ref [] in
  for i = 0 to t.count - 1 do
    let idx = (t.head - 1 - i + (2 * t.capacity)) mod t.capacity in
    match t.entries.(idx) with
    | Some e -> result := e :: !result
    | None -> ()
  done;
  !result

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (time, msg) -> Format.fprintf fmt "%a %s@," Time.pp time msg)
    (to_list t);
  Format.fprintf fmt "@]"
