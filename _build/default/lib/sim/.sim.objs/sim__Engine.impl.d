lib/sim/engine.ml: Format Hashtbl Heap Time
