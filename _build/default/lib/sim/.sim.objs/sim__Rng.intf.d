lib/sim/rng.mli:
