lib/sim/heap.mli:
