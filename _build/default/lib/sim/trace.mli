(** Bounded in-memory event trace.

    Components record interesting moments ([record]); tests and the CLI
    inspect the tail.  Disabled traces cost one branch per record. *)

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t

val enable : t -> bool -> unit

val record : t -> Time.t -> string -> unit
(** Append an entry, overwriting the oldest once at capacity. *)

val recordf :
  t -> Time.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted {!record}; the message is only built when enabled. *)

val length : t -> int

val to_list : t -> (Time.t * string) list
(** Entries, oldest first. *)

val pp : Format.formatter -> t -> unit
