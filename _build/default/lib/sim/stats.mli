(** Online statistics for simulation measurements. *)

(** Streaming summary: count, mean, variance (Welford), min, max. *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
  val merge : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

(** Sample store with exact percentiles (sorts lazily on query). *)
module Samples : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [\[0, 100\]].  Raises [Invalid_argument]
      when empty. *)

  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val to_array : t -> float array
end

(** Fixed-width bucket histogram over [\[0, width * buckets)]; values
    beyond the last bucket are clamped into it. *)
module Histogram : sig
  type t

  val create : bucket_width:float -> buckets:int -> t
  val add : t -> float -> unit
  val count : t -> int
  val bucket_count : t -> int -> int
  val pp : Format.formatter -> t -> unit
end

(** Named monotonic counters. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list
end
