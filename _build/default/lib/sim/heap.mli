(** Binary min-heap keyed by [(int64, int)].

    The primary key is a timestamp; the secondary key is an insertion
    sequence number so that events scheduled for the same instant pop in
    FIFO order, which keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:int64 -> seq:int -> 'a -> unit
(** [push h ~key ~seq v] inserts [v]. *)

val pop : 'a t -> (int64 * int * 'a) option
(** Removes and returns the minimum element, or [None] if empty. *)

val peek : 'a t -> (int64 * int * 'a) option
(** Returns the minimum element without removing it. *)

val clear : 'a t -> unit
