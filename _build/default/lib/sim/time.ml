type t = int64

let zero = 0L
let ns n = Int64.of_int n
let us n = Int64.of_int (n * 1_000)
let ms n = Int64.of_int (n * 1_000_000)
let sec n = Int64.of_int (n * 1_000_000_000)
let of_sec_f s = Int64.of_float (s *. 1e9)
let add = Int64.add
let sub = Int64.sub
let mul t n = Int64.mul t (Int64.of_int n)
let div t n = Int64.div t (Int64.of_int n)
let min = Stdlib.min
let max = Stdlib.max
let compare = Int64.compare
let ( < ) a b = Int64.compare a b < 0
let ( <= ) a b = Int64.compare a b <= 0
let ( > ) a b = Int64.compare a b > 0
let ( >= ) a b = Int64.compare a b >= 0
let to_ns = Int64.to_int
let to_us_f t = Int64.to_float t /. 1e3
let to_ms_f t = Int64.to_float t /. 1e6
let to_sec_f t = Int64.to_float t /. 1e9

let pp fmt t =
  let f = Int64.to_float t in
  if Stdlib.( < ) f 1e3 then Format.fprintf fmt "%Ldns" t
  else if Stdlib.( < ) f 1e6 then Format.fprintf fmt "%.2fus" (f /. 1e3)
  else if Stdlib.( < ) f 1e9 then Format.fprintf fmt "%.3fms" (f /. 1e6)
  else Format.fprintf fmt "%.3fs" (f /. 1e9)
