(** The "domain relation" between invoker and object, and the cost of
    an invocation across it.

    When invoker and object share a protection domain, method
    invocation is a procedure call; on the same machine (same address
    space, different protection domains) it is a protected call; across
    machines it is a remote procedure call.  The constants are
    representative of early-90s hardware and are the knobs of
    experiment E7. *)

type t =
  | Same_domain
  | Same_machine
  | Remote of Sim.Time.t  (** measured round-trip time of the RPC path *)

val procedure_call : Sim.Time.t
(** ~50 ns: an indirect call. *)

val maillon_overhead : Sim.Time.t
(** ~20 ns: the extra indirection through the maillon in the common
    (already-resolved) case. *)

val protected_call : Sim.Time.t
(** ~15 us: trap, protection-domain switch and return on a 1994 CPU. *)

val invocation_cost : t -> Sim.Time.t
(** Cost of one method invocation across the relation (procedure call
    included, maillon overhead excluded — add it for handle-based
    calls). *)

val lookup_cost : t -> Sim.Time.t
(** Cost of one name-lookup request across the relation (a lookup is
    an invocation of the remote name server). *)

val pp : Format.formatter -> t -> unit
