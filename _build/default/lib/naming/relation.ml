type t = Same_domain | Same_machine | Remote of Sim.Time.t

let procedure_call = Sim.Time.ns 50
let maillon_overhead = Sim.Time.ns 20
let protected_call = Sim.Time.us 15

let invocation_cost = function
  | Same_domain -> procedure_call
  | Same_machine -> Sim.Time.add procedure_call protected_call
  | Remote rtt -> Sim.Time.add procedure_call rtt

let lookup_cost = invocation_cost

let pp fmt = function
  | Same_domain -> Format.pp_print_string fmt "same-domain"
  | Same_machine -> Format.pp_print_string fmt "same-machine"
  | Remote rtt -> Format.fprintf fmt "remote(rtt=%a)" Sim.Time.pp rtt
