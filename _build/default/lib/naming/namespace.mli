(** Per-process name spaces, Plan-9 style.

    Every process starts with a name space, usually inherited from its
    parent and at least partly shared.  It has a {e local} part naming
    objects local to the process, and {e mounted} parts naming objects
    in other processes: a mount point holds a connection to a name
    space elsewhere, and resolution continues there by making lookup
    requests through the connection.

    There is deliberately no single root: the root of each tree is the
    most local thing, so local names are short and resolve fastest;
    longer paths generally name things further away.  Sharing works by
    convention (e.g. a subtree called [global]) rather than by a
    worldwide root. *)

type t

type resolution = {
  maillon : Maillon.t;
  cost : Sim.Time.t;  (** modelled resolution cost *)
  components : int;  (** path components walked *)
  mounts_crossed : int;
}

type error =
  | Not_found_at of string  (** the component that failed *)
  | Not_a_directory of string
  | Mount_cycle

val pp_error : Format.formatter -> error -> unit

val create : ?name:string -> unit -> t
val name : t -> string

val bind : t -> path:string -> Maillon.t -> unit
(** Bind an object; intermediate directories are created.  Raises
    [Invalid_argument] if a directory already sits at [path]. *)

val mkdir : t -> path:string -> unit

val mount : t -> path:string -> target:t -> via:Relation.t -> unit
(** Graft another process's name space at [path].  Resolution crossing
    this point pays one {!Relation.lookup_cost} per lookup request. *)

val unmount : t -> path:string -> unit

val resolve : t -> string -> (resolution, error) result
(** Resolve a ['/']-separated path.  A leading '/' is permitted and
    ignored (the root is local). *)

val readdir : t -> string -> (string list, error) result
(** Names bound directly under a directory (in this namespace only —
    does not cross into mounts). *)

val fork : t -> name:string -> t
(** A child's name space: starts as a copy of the parent's tree
    structure, sharing the same objects and mounts (the usual
    inherit-then-customise pattern). *)

val lookups : t -> int
(** Lookup requests served by this namespace (local + on behalf of
    mounts pointing at it). *)
