type iface = { tbl : (string, bytes -> bytes) Hashtbl.t }

let iface entries =
  let tbl = Hashtbl.create (List.length entries) in
  List.iter (fun (name, f) -> Hashtbl.replace tbl name f) entries;
  { tbl }

let methods i = Hashtbl.fold (fun k _ acc -> k :: acc) i.tbl [] |> List.sort compare

type error = No_such_method of string

type t = {
  reference : string;
  resolve : string -> iface;
  mutable cached : iface option;
  mutable n_resolutions : int;
  mutable n_invocations : int;
}

let make ~reference ~resolve =
  { reference; resolve; cached = None; n_resolutions = 0; n_invocations = 0 }

let of_iface ~reference i = make ~reference ~resolve:(fun _ -> i)
let reference t = t.reference

let force t =
  match t.cached with
  | Some i -> i
  | None ->
      let i = t.resolve t.reference in
      t.n_resolutions <- t.n_resolutions + 1;
      t.cached <- Some i;
      i

let resolved t = t.cached <> None

let invoke t ~meth payload =
  let i = force t in
  t.n_invocations <- t.n_invocations + 1;
  match Hashtbl.find_opt i.tbl meth with
  | Some f -> Ok (f payload)
  | None -> Error (No_such_method meth)

let resolutions t = t.n_resolutions
let invocations t = t.n_invocations
let invalidate t = t.cached <- None

let import t ~wrap =
  make ~reference:t.reference ~resolve:(fun _ -> wrap (force t))
