(** Caching client stubs ("agents" or "clerks").

    Client stubs for far-away objects may do more than transport call
    parameters: a clerk caches results so that there is no longer a
    one-to-one mapping between client calls and calls on the remote
    object.  Entries expire after a time-to-live. *)

type t

val wrap :
  Maillon.t -> ttl:Sim.Time.t -> clock:(unit -> Sim.Time.t) -> t
(** Interpose a cache in front of a handle.  [clock] is usually
    [fun () -> Sim.Engine.now engine]. *)

val invoke : t -> meth:string -> bytes -> (bytes, Maillon.error) result
(** Serve from cache when fresh; otherwise invoke through the maillon
    and remember the result.  Errors are never cached. *)

val invalidate : t -> unit
(** Drop every cached entry. *)

val hits : t -> int
val misses : t -> int
