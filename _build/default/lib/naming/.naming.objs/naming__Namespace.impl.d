lib/naming/namespace.ml: Format Hashtbl List Maillon Relation Sim String
