lib/naming/relation.ml: Format Sim
