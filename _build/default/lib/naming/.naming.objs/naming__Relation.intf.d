lib/naming/relation.mli: Format Sim
