lib/naming/maillon.ml: Hashtbl List
