lib/naming/maillon.mli:
