lib/naming/clerk.ml: Bytes Hashtbl Maillon Sim
