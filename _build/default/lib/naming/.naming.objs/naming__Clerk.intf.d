lib/naming/clerk.mli: Maillon Sim
