lib/naming/namespace.mli: Format Maillon Relation Sim
