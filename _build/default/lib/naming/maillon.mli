(** Object handles as maillons (Maisonneuve, Shapiro & Collet 1992).

    A maillon is an opaque, fixed-size object reference together with a
    function that returns the address of the object's interface when
    called with the reference.  The extra indirection lets connections
    be set up — or objects be fetched — lazily before first invocation,
    while in the common case (the object is there) it costs almost
    nothing: the resolved interface is cached. *)

(** An interface: an abstract data type presented as named methods.
    All methods take and return bytes, which keeps local and remote
    invocation uniform. *)
type iface

val iface : (string * (bytes -> bytes)) list -> iface
val methods : iface -> string list

type error = No_such_method of string

type t

val make : reference:string -> resolve:(string -> iface) -> t
(** [resolve] is called (once) with the reference on first use. *)

val of_iface : reference:string -> iface -> t
(** A maillon for an object that is already present. *)

val reference : t -> string

val force : t -> iface
(** Resolve and cache the interface. *)

val resolved : t -> bool

val invoke : t -> meth:string -> bytes -> (bytes, error) result

val resolutions : t -> int
(** Times the resolver ran (0 or 1 unless {!invalidate}d). *)

val invocations : t -> int

val invalidate : t -> unit
(** Drop the cached interface — e.g. the object migrated; the next
    invocation re-resolves, possibly to different interface code. *)

(** {1 Connections}

    Passing an object handle to another process has the side effect of
    creating a connection through which the object can be invoked
    remotely.  [import] models the receiving side: a new maillon whose
    resolver sets up that connection. *)

val import : t -> wrap:(iface -> iface) -> t
(** The importer's maillon; [wrap] interposes whatever stub behaviour
    the domain relation requires (marshalling, caching clerk, ...). *)
