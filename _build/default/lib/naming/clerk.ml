type cached = { value : bytes; fresh_until : Sim.Time.t }

type t = {
  target : Maillon.t;
  ttl : Sim.Time.t;
  clock : unit -> Sim.Time.t;
  cache : (string, cached) Hashtbl.t;
  mutable n_hits : int;
  mutable n_misses : int;
}

let wrap target ~ttl ~clock =
  { target; ttl; clock; cache = Hashtbl.create 32; n_hits = 0; n_misses = 0 }

let key ~meth payload = meth ^ "\000" ^ Bytes.to_string payload

let invoke t ~meth payload =
  let now = t.clock () in
  let k = key ~meth payload in
  match Hashtbl.find_opt t.cache k with
  | Some c when Sim.Time.(now <= c.fresh_until) ->
      t.n_hits <- t.n_hits + 1;
      Ok c.value
  | Some _ | None -> begin
      t.n_misses <- t.n_misses + 1;
      match Maillon.invoke t.target ~meth payload with
      | Ok value ->
          Hashtbl.replace t.cache k { value; fresh_until = Sim.Time.add now t.ttl };
          Ok value
      | Error _ as e -> e
    end

let invalidate t = Hashtbl.reset t.cache
let hits t = t.n_hits
let misses t = t.n_misses
