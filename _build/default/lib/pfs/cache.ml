type node = {
  key : int * int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  cap : int;
  tbl : (int * int, node) Hashtbl.t;
  mutable head : node option;  (* most recent *)
  mutable tail : node option;  (* least recent *)
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_evictions : int;
}

let create ~capacity_blocks () =
  assert (capacity_blocks > 0);
  {
    cap = capacity_blocks;
    tbl = Hashtbl.create (2 * capacity_blocks);
    head = None;
    tail = None;
    n_hits = 0;
    n_misses = 0;
    n_evictions = 0;
  }

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.key;
      t.n_evictions <- t.n_evictions + 1

let access t ~fid ~block =
  let key = (fid, block) in
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
      t.n_hits <- t.n_hits + 1;
      unlink t n;
      push_front t n;
      `Hit
  | None ->
      t.n_misses <- t.n_misses + 1;
      if Hashtbl.length t.tbl >= t.cap then evict_lru t;
      let n = { key; prev = None; next = None } in
      Hashtbl.replace t.tbl key n;
      push_front t n;
      `Miss

let probe t ~fid ~block = Hashtbl.mem t.tbl (fid, block)

let invalidate_file t ~fid =
  let doomed =
    Hashtbl.fold
      (fun (f, _) n acc -> if f = fid then n :: acc else acc)
      t.tbl []
  in
  List.iter
    (fun n ->
      unlink t n;
      Hashtbl.remove t.tbl n.key)
    doomed

let size t = Hashtbl.length t.tbl
let capacity t = t.cap
let hits t = t.n_hits
let misses t = t.n_misses
let evictions t = t.n_evictions

let reset_stats t =
  t.n_hits <- 0;
  t.n_misses <- 0;
  t.n_evictions <- 0
