type index = { mutable stamps : (Sim.Time.t * int) list (* newest first *) }

type t = {
  engine : Sim.Engine.t;
  log : Log.t;
  budget : int;
  mutable admitted : int;
  indexes : (Log.fid, index) Hashtbl.t;
}

let create engine ~log ?(budget_bps = 128_000_000) () =
  {
    engine;
    log;
    budget = budget_bps;
    admitted = 0;
    indexes = Hashtbl.create 16;
  }

let admitted_bps t = t.admitted
let budget_bps t = t.budget

let admit t rate =
  if t.admitted + rate > t.budget then false
  else begin
    t.admitted <- t.admitted + rate;
    true
  end

let release t rate = t.admitted <- t.admitted - rate

(* ---------------- Recording ---------------- *)

type recording = {
  r_owner : t;
  r_fid : Log.fid;
  r_rate : int;
  mutable r_pos : int;
  mutable r_live : bool;
}

let start_recording t ~rate_bps =
  if not (admit t rate_bps) then Error `Admission_denied
  else begin
    let fid = Log.create_file t.log ~kind:Log.Continuous () in
    Hashtbl.replace t.indexes fid { stamps = [] };
    Ok { r_owner = t; r_fid = fid; r_rate = rate_bps; r_pos = 0; r_live = true }
  end

let recording_fid r = r.r_fid

let write_chunk r ?data ~len k =
  let t = r.r_owner in
  Log.write t.log r.r_fid ~off:r.r_pos ?data ~len k;
  r.r_pos <- r.r_pos + len

let index_mark r ~stamp =
  let t = r.r_owner in
  match Hashtbl.find_opt t.indexes r.r_fid with
  | Some idx -> idx.stamps <- (stamp, r.r_pos) :: idx.stamps
  | None -> ()

let finish_recording t r =
  if r.r_live then begin
    r.r_live <- false;
    release t r.r_rate
  end

let index_size t ~fid =
  match Hashtbl.find_opt t.indexes fid with
  | Some idx -> List.length idx.stamps
  | None -> 0

(* ---------------- Playback ---------------- *)

type playback = {
  p_owner : t;
  p_fid : Log.fid;
  p_rate : int;
  p_chunk : int;
  mutable p_dir : [ `Forward | `Reverse ];
  mutable p_pos : int;
  mutable p_live : bool;
  mutable p_underruns : int;
  mutable p_played : int;
  p_on_chunk : (off:int -> unit) option;
  p_on_end : (unit -> unit) option;
}

let chunk_period p =
  Sim.Time.of_sec_f (Float.of_int (p.p_chunk * 8) /. Float.of_int p.p_rate)

let rec play_tick p =
  if p.p_live then begin
    let t = p.p_owner in
    let size = try Log.file_size t.log p.p_fid with Not_found -> 0 in
    let finished =
      match p.p_dir with
      | `Forward -> p.p_pos >= size
      | `Reverse -> p.p_pos < 0
    in
    if finished then begin
      p.p_live <- false;
      release t p.p_rate;
      match p.p_on_end with Some f -> f () | None -> ()
    end
    else begin
      let off = Stdlib.max 0 p.p_pos in
      let len = Stdlib.min p.p_chunk (size - off) in
      let deadline = Sim.Time.add (Sim.Engine.now t.engine) (chunk_period p) in
      Log.read t.log p.p_fid ~off ~len ~k:(fun _ ->
          if p.p_live then begin
            p.p_played <- p.p_played + 1;
            if Sim.Time.(Sim.Engine.now t.engine > deadline) then
              p.p_underruns <- p.p_underruns + 1;
            match p.p_on_chunk with Some f -> f ~off | None -> ()
          end);
      (match p.p_dir with
      | `Forward -> p.p_pos <- p.p_pos + p.p_chunk
      | `Reverse -> p.p_pos <- p.p_pos - p.p_chunk);
      ignore
        (Sim.Engine.schedule t.engine ~delay:(chunk_period p) (fun () ->
             play_tick p))
    end
  end

let start_playback t ~fid ~rate_bps ?(chunk_bytes = 65536)
    ?(direction = `Forward) ?on_chunk ?on_end () =
  if not (Log.file_exists t.log fid) then Error `No_such_file
  else if not (admit t rate_bps) then Error `Admission_denied
  else begin
    let size = Log.file_size t.log fid in
    let start = match direction with `Forward -> 0 | `Reverse -> size - chunk_bytes in
    let p =
      {
        p_owner = t;
        p_fid = fid;
        p_rate = rate_bps;
        p_chunk = chunk_bytes;
        p_dir = direction;
        p_pos = start;
        p_live = true;
        p_underruns = 0;
        p_played = 0;
        p_on_chunk = on_chunk;
        p_on_end = on_end;
      }
    in
    play_tick p;
    Ok p
  end

let seek_stamp p stamp =
  let t = p.p_owner in
  match Hashtbl.find_opt t.indexes p.p_fid with
  | None -> ()
  | Some idx ->
      (* Newest-first list: find the latest mark at or before [stamp]. *)
      let rec find best = function
        | [] -> best
        | (s, off) :: rest ->
            let best =
              match best with
              | Some (bs, _) when Sim.Time.(s <= stamp) && Sim.Time.(s > bs) ->
                  Some (s, off)
              | None when Sim.Time.(s <= stamp) -> Some (s, off)
              | other -> other
            in
            find best rest
      in
      (match find None idx.stamps with
      | Some (_, off) -> p.p_pos <- off
      | None -> p.p_pos <- 0)

let position p = p.p_pos

let stop_playback t p =
  if p.p_live then begin
    p.p_live <- false;
    release t p.p_rate
  end

let underruns p = p.p_underruns
let chunks_played p = p.p_played
