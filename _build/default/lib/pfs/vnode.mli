(** The Unix v-node interface over the log-structured core.

    "Higher-level services are being added; a Unix v-node interface is
    installed which allows the storage system to be used as a Unix
    file system."  This is that service stack: hierarchical
    directories, path-based operations and attributes, all stored in
    the log (directories are ordinary files of entries, so they become
    garbage and get cleaned like everything else).  The normal stack
    runs through the block {!Cache}; continuous files don't come
    through here. *)

type t

type error =
  [ `Not_found
  | `Not_a_directory
  | `Is_a_directory
  | `Already_exists
  | `Not_empty
  | `Lost ]

val pp_error : Format.formatter -> error -> unit

type attrs = {
  size : int;
  is_dir : bool;
  ctime : Sim.Time.t;
  mtime : Sim.Time.t;
}

val create : Sim.Engine.t -> log:Log.t -> ?cache_blocks:int -> unit -> t
(** Mount a fresh tree on the log. [cache_blocks] (default 2048 4 KB
    blocks = 8 MB) sizes the buffer cache consulted on reads. *)

val log : t -> Log.t
val cache : t -> Cache.t

(** All operations are continuation-passing; paths are '/'-separated
    and relative to the root. *)

val mkdir : t -> string -> ((unit, error) result -> unit) -> unit
val creat : t -> string -> ((unit, error) result -> unit) -> unit

val write :
  t -> string -> off:int -> ?data:bytes -> len:int ->
  ((unit, error) result -> unit) -> unit
(** Extends the file as needed.  Fails with [`Not_found] if the file
    does not exist (use {!creat} first). *)

val read :
  t -> string -> off:int -> len:int ->
  ((bytes option, error) result -> unit) -> unit
(** Bytes are returned when the RAID stores data.  Reads past the end
    are truncated; reading a hole yields zeros. *)

val unlink : t -> string -> ((unit, error) result -> unit) -> unit
(** Remove a file (not a directory). *)

val rmdir : t -> string -> ((unit, error) result -> unit) -> unit
(** Remove an empty directory. *)

val rename : t -> string -> string -> ((unit, error) result -> unit) -> unit
(** Move a file or directory; the destination must not exist. *)

val stat : t -> string -> ((attrs, error) result -> unit) -> unit
val readdir : t -> string -> ((string list, error) result -> unit) -> unit
val exists : t -> string -> bool

val cache_hit_rate : t -> float
(** Fraction of read blocks served from the cache. *)
