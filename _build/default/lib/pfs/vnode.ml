type error =
  [ `Not_found
  | `Not_a_directory
  | `Is_a_directory
  | `Already_exists
  | `Not_empty
  | `Lost ]

let pp_error fmt (e : error) =
  Format.pp_print_string fmt
    (match e with
    | `Not_found -> "no such file or directory"
    | `Not_a_directory -> "not a directory"
    | `Is_a_directory -> "is a directory"
    | `Already_exists -> "file exists"
    | `Not_empty -> "directory not empty"
    | `Lost -> "I/O error")

type attrs = {
  size : int;
  is_dir : bool;
  ctime : Sim.Time.t;
  mtime : Sim.Time.t;
}

(* Directories are ordinary files in the log holding marshalled entry
   lists; an in-memory tree (the dentry cache) mirrors them for
   lookup.  Every directory mutation rewrites the directory file, so
   namespace churn creates log traffic and garbage exactly as data
   writes do. *)
type node =
  | Dir of dir
  | File of fmeta

and dir = {
  d_fid : Log.fid;
  entries : (string, node) Hashtbl.t;
  mutable d_ctime : Sim.Time.t;
  mutable d_mtime : Sim.Time.t;
}

and fmeta = {
  f_fid : Log.fid;
  mutable f_size : int;
  mutable f_ctime : Sim.Time.t;
  mutable f_mtime : Sim.Time.t;
}

type t = {
  engine : Sim.Engine.t;
  vlog : Log.t;
  vcache : Cache.t;
  root : dir;
}

let block_bytes = 4096

let create engine ~log ?(cache_blocks = 2048) () =
  let now = Sim.Engine.now engine in
  {
    engine;
    vlog = log;
    vcache = Cache.create ~capacity_blocks:cache_blocks ();
    root =
      {
        d_fid = Log.create_file log ();
        entries = Hashtbl.create 16;
        d_ctime = now;
        d_mtime = now;
      };
  }

let log t = t.vlog
let cache t = t.vcache

let split path = String.split_on_char '/' path |> List.filter (( <> ) "")

(* Walk to the node at [path]. *)
let rec lookup_in dir = function
  | [] -> Ok (Dir dir)
  | [ leaf ] -> begin
      match Hashtbl.find_opt dir.entries leaf with
      | Some node -> Ok node
      | None -> Error `Not_found
    end
  | comp :: rest -> begin
      match Hashtbl.find_opt dir.entries comp with
      | Some (Dir d) -> lookup_in d rest
      | Some (File _) -> Error `Not_a_directory
      | None -> Error `Not_found
    end

let lookup t path = lookup_in t.root (split path)

(* Walk to the parent directory of [path]; returns (dir, leaf). *)
let parent_of t path =
  match List.rev (split path) with
  | [] -> Error `Already_exists (* the root itself *)
  | leaf :: rev ->
      let rec walk dir = function
        | [] -> Ok (dir, leaf)
        | comp :: rest -> begin
            match Hashtbl.find_opt dir.entries comp with
            | Some (Dir d) -> walk d rest
            | Some (File _) -> Error `Not_a_directory
            | None -> Error `Not_found
          end
      in
      walk t.root (List.rev rev)

(* Persist a directory's entry list to its log file. *)
let flush_dir t dir k =
  let payload = Buffer.create 256 in
  Hashtbl.iter
    (fun name node ->
      let fid, kind =
        match node with
        | Dir d -> (d.d_fid, 'd')
        | File f -> (f.f_fid, 'f')
      in
      Buffer.add_string payload (Printf.sprintf "%c %08d %s\n" kind fid name))
    dir.entries;
  let data = Buffer.to_bytes payload in
  let len = Stdlib.max 16 (Bytes.length data) in
  dir.d_mtime <- Sim.Engine.now t.engine;
  Log.write t.vlog dir.d_fid ~off:0 ~data:(Bytes.cat data (Bytes.make (len - Bytes.length data) '\000')) ~len
    (function
    | Ok () -> k (Ok ())
    | Error `Lost -> k (Error `Lost)
    | Error `No_such_file -> k (Error `Not_found))

let mkdir t path k =
  match parent_of t path with
  | Error e -> k (Error e)
  | Ok (dir, leaf) ->
      if Hashtbl.mem dir.entries leaf then k (Error `Already_exists)
      else begin
        let now = Sim.Engine.now t.engine in
        let d =
          {
            d_fid = Log.create_file t.vlog ();
            entries = Hashtbl.create 8;
            d_ctime = now;
            d_mtime = now;
          }
        in
        Hashtbl.replace dir.entries leaf (Dir d);
        flush_dir t dir k
      end

let creat t path k =
  match parent_of t path with
  | Error e -> k (Error e)
  | Ok (dir, leaf) ->
      if Hashtbl.mem dir.entries leaf then k (Error `Already_exists)
      else begin
        let now = Sim.Engine.now t.engine in
        let f =
          {
            f_fid = Log.create_file t.vlog ();
            f_size = 0;
            f_ctime = now;
            f_mtime = now;
          }
        in
        Hashtbl.replace dir.entries leaf (File f);
        flush_dir t dir k
      end

let file_at t path =
  match lookup t path with
  | Ok (File f) -> Ok f
  | Ok (Dir _) -> Error `Is_a_directory
  | Error e -> Error e

let touch_blocks t fid ~off ~len =
  let first = off / block_bytes and last = (off + len - 1) / block_bytes in
  let all_hit = ref true in
  for b = first to last do
    match Cache.access t.vcache ~fid ~block:b with
    | `Hit -> ()
    | `Miss -> all_hit := false
  done;
  !all_hit

let write t path ~off ?data ~len k =
  match file_at t path with
  | Error e -> k (Error e)
  | Ok f ->
      f.f_size <- Stdlib.max f.f_size (off + len);
      f.f_mtime <- Sim.Engine.now t.engine;
      (* Written blocks are hot: prime the cache. *)
      if len > 0 then ignore (touch_blocks t f.f_fid ~off ~len);
      Log.write t.vlog f.f_fid ~off ?data ~len (function
        | Ok () -> k (Ok ())
        | Error `Lost -> k (Error `Lost)
        | Error `No_such_file -> k (Error `Not_found))

let read t path ~off ~len k =
  match file_at t path with
  | Error e -> k (Error e)
  | Ok f ->
      let len = Stdlib.max 0 (Stdlib.min len (f.f_size - off)) in
      if len = 0 then k (Ok (Some Bytes.empty))
      else begin
        let all_hit = touch_blocks t f.f_fid ~off ~len in
        if all_hit then
          (* Every block cached: no disk involved. *)
          k (Ok (Log.peek t.vlog f.f_fid ~off ~len))
        else
          Log.read t.vlog f.f_fid ~off ~len ~k:(function
            | Ok data -> k (Ok data)
            | Error `Lost -> k (Error `Lost)
            | Error `No_such_file -> k (Error `Not_found))
      end

let unlink t path k =
  match parent_of t path with
  | Error e -> k (Error e)
  | Ok (dir, leaf) -> begin
      match Hashtbl.find_opt dir.entries leaf with
      | None -> k (Error `Not_found)
      | Some (Dir _) -> k (Error `Is_a_directory)
      | Some (File f) ->
          Hashtbl.remove dir.entries leaf;
          Cache.invalidate_file t.vcache ~fid:f.f_fid;
          Log.delete t.vlog f.f_fid ~k:(fun _ -> flush_dir t dir k)
    end

let rmdir t path k =
  match parent_of t path with
  | Error e -> k (Error e)
  | Ok (dir, leaf) -> begin
      match Hashtbl.find_opt dir.entries leaf with
      | None -> k (Error `Not_found)
      | Some (File _) -> k (Error `Not_a_directory)
      | Some (Dir d) ->
          if Hashtbl.length d.entries > 0 then k (Error `Not_empty)
          else begin
            Hashtbl.remove dir.entries leaf;
            Log.delete t.vlog d.d_fid ~k:(fun _ -> flush_dir t dir k)
          end
    end

let rename t src dst k =
  match parent_of t src with
  | Error e -> k (Error e)
  | Ok (sdir, sleaf) -> begin
      match Hashtbl.find_opt sdir.entries sleaf with
      | None -> k (Error `Not_found)
      | Some node -> begin
          match parent_of t dst with
          | Error e -> k (Error e)
          | Ok (ddir, dleaf) ->
              if Hashtbl.mem ddir.entries dleaf then k (Error `Already_exists)
              else begin
                Hashtbl.remove sdir.entries sleaf;
                Hashtbl.replace ddir.entries dleaf node;
                flush_dir t sdir (function
                  | Ok () -> flush_dir t ddir k
                  | Error _ as e -> k e)
              end
        end
    end

let stat t path k =
  match lookup t path with
  | Error e -> k (Error e)
  | Ok (File f) ->
      k (Ok { size = f.f_size; is_dir = false; ctime = f.f_ctime; mtime = f.f_mtime })
  | Ok (Dir d) ->
      k (Ok { size = 0; is_dir = true; ctime = d.d_ctime; mtime = d.d_mtime })

let readdir t path k =
  match lookup t path with
  | Error e -> k (Error e)
  | Ok (File _) -> k (Error `Not_a_directory)
  | Ok (Dir d) ->
      k (Ok (Hashtbl.fold (fun name _ acc -> name :: acc) d.entries [] |> List.sort compare))

let exists t path = match lookup t path with Ok _ -> true | Error _ -> false

let cache_hit_rate t =
  let h = Cache.hits t.vcache and m = Cache.misses t.vcache in
  if h + m = 0 then 0.0 else Float.of_int h /. Float.of_int (h + m)
