(** The garbage file.

    During normal operation, every client write or delete that
    obsoletes data appends an entry describing the hole in the log.
    Cleaning reads the entries, sorts them by segment, and cleans in a
    single pass — so its cost depends only on the number of segments to
    be cleaned and the amount of garbage, never on the size of the file
    system.

    Client operations may continue during cleaning: the cleaner first
    {!set_marker}s the current end of the file and uses only entries
    before the marker, while new garbage is appended after it;
    {!truncate_to_marker} then discards the consumed prefix. *)

type entry = { g_seg : int; g_off : int; g_len : int }

type t

val create : unit -> t

val append : t -> seg:int -> off:int -> len:int -> unit

val count : t -> int
(** Entries currently in the file. *)

val total_bytes : t -> int
(** Garbage bytes described by all entries. *)

val set_marker : t -> unit
(** Mark the current end; {!before_marker} is frozen from here on. *)

val before_marker : t -> entry list
(** Entries written before the marker ({!set_marker} must have run). *)

val truncate_to_marker : t -> unit
(** Delete the portion before the marker (cleaning consumed it). *)

val file_bytes : t -> int
(** Size of the garbage file itself (16 bytes per entry) — the amount
    of sequential I/O a cleaning pass must read. *)
