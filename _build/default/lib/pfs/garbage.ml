type entry = { g_seg : int; g_off : int; g_len : int }

let entry_bytes = 16

type t = {
  mutable entries : entry array;
  mutable len : int;
  mutable marker : int option;
}

let create () = { entries = [||]; len = 0; marker = None }

let append t ~seg ~off ~len =
  let e = { g_seg = seg; g_off = off; g_len = len } in
  if t.len = Array.length t.entries then begin
    let cap = if t.len = 0 then 64 else t.len * 2 in
    let arr = Array.make cap e in
    Array.blit t.entries 0 arr 0 t.len;
    t.entries <- arr
  end;
  t.entries.(t.len) <- e;
  t.len <- t.len + 1

let count t = t.len

let total_bytes t =
  let acc = ref 0 in
  for i = 0 to t.len - 1 do
    acc := !acc + t.entries.(i).g_len
  done;
  !acc

let set_marker t = t.marker <- Some t.len

let before_marker t =
  match t.marker with
  | None -> invalid_arg "Garbage.before_marker: no marker set"
  | Some m -> Array.to_list (Array.sub t.entries 0 m)

let truncate_to_marker t =
  match t.marker with
  | None -> invalid_arg "Garbage.truncate_to_marker: no marker set"
  | Some m ->
      let rest = t.len - m in
      Array.blit t.entries m t.entries 0 rest;
      t.len <- rest;
      t.marker <- None

let file_bytes t = t.len * entry_bytes
