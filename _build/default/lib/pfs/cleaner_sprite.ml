let run log ?(max_utilisation = 0.99) ?(per_entry_cost = Sim.Time.us 1) k =
  let engine = Log.engine log in
  let started = Sim.Engine.now engine in
  let total = Log.total_segments log in
  let seg_bytes = Log.segment_bytes log in
  (* Examine every entry of the segment usage table. *)
  let victims = ref [] in
  let reclaimable = ref 0 in
  for seg = 0 to total - 1 do
    if Log.segment_sealed log seg then begin
      let live = Log.segment_live log seg in
      let utilisation = Float.of_int live /. Float.of_int seg_bytes in
      if utilisation <= max_utilisation then begin
        victims := seg :: !victims;
        reclaimable := !reclaimable + (seg_bytes - live)
      end
    end
  done;
  let scan_cost = Sim.Time.mul per_entry_cost total in
  ignore
    (Sim.Engine.schedule engine ~delay:scan_cost (fun () ->
         Cleaner.clean_sequentially log (List.rev !victims)
           ~k:(fun ~segments ~moved ->
             (* Sprite has no garbage file, but ours keeps growing while
                this cleaner is in charge; consume it so comparisons
                over repeated rounds stay fair. *)
             let g = Log.garbage log in
             Garbage.set_marker g;
             Garbage.truncate_to_marker g;
             k
               {
                 Cleaner.segments_cleaned = segments;
                 bytes_moved = moved;
                 bytes_reclaimed = !reclaimable;
                 entries_processed = 0;
                 table_entries_scanned = total;
                 scan_cost;
                 duration = Sim.Time.sub (Sim.Engine.now engine) started;
               })))
