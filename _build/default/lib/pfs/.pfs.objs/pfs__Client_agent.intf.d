lib/pfs/client_agent.mli: Format Log Sim
