lib/pfs/vnode.mli: Cache Format Log Sim
