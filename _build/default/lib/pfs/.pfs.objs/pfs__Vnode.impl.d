lib/pfs/vnode.ml: Buffer Bytes Cache Float Format Hashtbl List Log Printf Sim Stdlib String
