lib/pfs/raid.mli: Disk Sim
