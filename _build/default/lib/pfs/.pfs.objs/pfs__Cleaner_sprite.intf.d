lib/pfs/cleaner_sprite.mli: Cleaner Log Sim
