lib/pfs/stream.mli: Log Sim
