lib/pfs/cleaner_sprite.ml: Cleaner Float Garbage List Log Sim
