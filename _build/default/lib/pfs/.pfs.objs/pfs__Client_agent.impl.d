lib/pfs/client_agent.ml: Format List Log Sim
