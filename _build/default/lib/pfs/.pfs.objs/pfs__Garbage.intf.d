lib/pfs/garbage.mli:
