lib/pfs/cache.mli:
