lib/pfs/cleaner.mli: Format Log Sim
