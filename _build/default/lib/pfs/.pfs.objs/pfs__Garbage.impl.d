lib/pfs/garbage.ml: Array
