lib/pfs/cleaner.ml: Float Format Garbage Hashtbl List Log Sim
