lib/pfs/log.mli: Garbage Raid Sim
