lib/pfs/disk.ml: Float Sim
