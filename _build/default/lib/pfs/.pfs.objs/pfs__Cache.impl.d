lib/pfs/cache.ml: Hashtbl List
