lib/pfs/log.ml: Bytes Garbage Hashtbl List Option Raid Sim Stdlib
