lib/pfs/stream.ml: Float Hashtbl List Log Sim Stdlib
