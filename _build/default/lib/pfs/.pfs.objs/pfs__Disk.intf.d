lib/pfs/disk.mli: Sim
