lib/pfs/raid.ml: Array Bytes Char Disk Fun Hashtbl List Sim Stdlib
