(** The Pegasus cleaner.

    Reads the {!Garbage} file, sorts its entries by segment number, and
    cleans every segment containing garbage in a single pass.  Its cost
    depends only on the number of entries (the amount of garbage) and
    the number of segments to be cleaned — never on the size of the
    file system, which is what lets the design scale to 10 terabytes.
    Client operations may continue while it runs: it freezes a marker
    in the garbage file and ignores entries appended after it. *)

type stats = {
  segments_cleaned : int;
  bytes_moved : int;  (** live data copied to the head of the log *)
  bytes_reclaimed : int;  (** garbage bytes freed *)
  entries_processed : int;  (** garbage-file entries consumed *)
  table_entries_scanned : int;
      (** segment-table entries examined (0 here; the Sprite baseline
          scans them all) *)
  scan_cost : Sim.Time.t;  (** modelled cost of reading/sorting input *)
  duration : Sim.Time.t;  (** wall-clock of the whole pass *)
}

val pp_stats : Format.formatter -> stats -> unit

val run : Log.t -> ?min_garbage:int -> (stats -> unit) -> unit
(** Clean every sealed segment with at least [min_garbage] bytes of
    garbage recorded before the marker (default 1). *)

(** {1 Shared machinery (used by the Sprite baseline too)} *)

val clean_sequentially :
  Log.t -> int list -> k:(segments:int -> moved:int -> unit) -> unit
(** Clean the given segments one after another (skipping any that are
    no longer sealed). *)

val garbage_read_cost : entries:int -> Sim.Time.t
(** Sequential read of 16-byte entries at the disk rate, plus an
    n log n sort at 0.5 us per comparison-ish step. *)
