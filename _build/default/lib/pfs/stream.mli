(** The continuous-media service stack.

    Continuous data is stored in its own segments with a {e guaranteed}
    service rate: streams are admitted only while the sum of their
    rates fits the disk-bandwidth budget.  No caching is involved — a
    guaranteed rate cannot be improved by a cache, and a stream larger
    than the cache would only flush it.

    While recording, the control stream that accompanies the data
    stream is used to build index information: each synchronisation
    mark maps a source time stamp to a byte offset.  The index is what
    makes "go to 12:03", fast-forward and reverse play possible
    afterwards. *)

type t

val create : Sim.Engine.t -> log:Log.t -> ?budget_bps:int -> unit -> t
(** [budget_bps] (default 128 Mbit/s = 16 MB/s, most of a 4-disk
    array) caps the sum of admitted stream rates. *)

val admitted_bps : t -> int
val budget_bps : t -> int

(** {1 Recording} *)

type recording

val start_recording :
  t -> rate_bps:int -> (recording, [ `Admission_denied ]) result

val recording_fid : recording -> Log.fid

val write_chunk :
  recording -> ?data:bytes -> len:int -> ((unit, Log.error) result -> unit) ->
  unit
(** Append media bytes to the recording. *)

val index_mark : recording -> stamp:Sim.Time.t -> unit
(** Note that the current end of the recording corresponds to source
    time [stamp] (driven by the control stream). *)

val finish_recording : t -> recording -> unit
(** Release the admitted bandwidth. *)

val index_size : t -> fid:Log.fid -> int

(** {1 Playback} *)

type playback

val start_playback :
  t ->
  fid:Log.fid ->
  rate_bps:int ->
  ?chunk_bytes:int ->
  ?direction:[ `Forward | `Reverse ] ->
  ?on_chunk:(off:int -> unit) ->
  ?on_end:(unit -> unit) ->
  unit ->
  (playback, [ `Admission_denied | `No_such_file ]) result
(** Read the file at [rate_bps] in [chunk_bytes] units (default 64 KB),
    forwards or backwards.  [on_chunk] fires as each chunk's read
    completes. *)

val seek_stamp : playback -> Sim.Time.t -> unit
(** Jump to the position recorded for the nearest index mark at or
    before [stamp] — the primitive behind fast-forward and "go to". *)

val position : playback -> int

val stop_playback : t -> playback -> unit

val underruns : playback -> int
(** Chunks whose read completed after their play-out deadline — must
    stay 0 for admitted streams on an idle array. *)

val chunks_played : playback -> int
