(** The Sprite-LFS baseline cleaner (Rosenblum & Ousterhout 1991).

    Selects victims by scanning the {e entire} segment usage table for
    the lowest-utilisation sealed segments.  Reclamation is identical
    to the Pegasus cleaner's; what differs is the victim-selection
    cost, which grows with the total size of the file system rather
    than with the amount of garbage — the scaling problem the paper's
    garbage-file design removes. *)

val run :
  Log.t ->
  ?max_utilisation:float ->
  ?per_entry_cost:Sim.Time.t ->
  (Cleaner.stats -> unit) ->
  unit
(** Clean every sealed segment whose live fraction is at most
    [max_utilisation] (default 0.99, i.e. any segment with garbage).
    [per_entry_cost] (default 1 us) models examining one segment-table
    entry during the scan. *)
