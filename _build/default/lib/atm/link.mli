(** Unidirectional ATM link with serialisation, propagation delay and a
    bounded output queue.

    The transmitter is modelled as a virtual queue: a cell offered while
    the line is busy waits its turn; if the backlog would exceed
    [queue_cells], the cell is dropped (and counted).  Delivery happens
    one serialisation time plus the propagation delay after transmission
    starts. *)

type t

val create :
  Sim.Engine.t ->
  ?bandwidth_bps:int ->
  ?prop:Sim.Time.t ->
  ?queue_cells:int ->
  rx:(Cell.t -> unit) ->
  unit ->
  t
(** Defaults: 100 Mbit/s (the paper's network), 5 us propagation,
    256-cell queue. *)

val send : ?priority:bool -> t -> Cell.t -> unit
(** [priority] cells belong to a reserved VC: they are never dropped
    and see at most one cell time of interference from best-effort
    traffic (non-preemptive line). *)

val reserve : t -> bps:int -> bool
(** Admission control: reserve bandwidth for a VC crossing this link;
    refuses beyond 90% of line rate. *)

val release : t -> bps:int -> unit
val reserved_bps : t -> int

val bandwidth_bps : t -> int
val cell_time : t -> Sim.Time.t

(** {1 Statistics} *)

val cells_sent : t -> int
val cells_dropped : t -> int
val busy_time : t -> Sim.Time.t
val utilisation : t -> since:Sim.Time.t -> float
(** Fraction of the interval [since .. now] spent transmitting. *)

val queue_depth : t -> int
(** Cells currently waiting or in transmission. *)
