lib/atm/aal5.ml: Bytes Cell Crc32 Format List Util
