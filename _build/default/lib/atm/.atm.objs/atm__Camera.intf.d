lib/atm/camera.mli: Net Sim
