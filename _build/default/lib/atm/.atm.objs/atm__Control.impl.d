lib/atm/control.ml: Aal5 Array Bytes Cell Float Hashtbl List Net Sim Util
