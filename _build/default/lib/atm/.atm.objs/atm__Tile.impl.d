lib/atm/tile.ml: Bytes Sim Util
