lib/atm/util.ml: Bytes Int32
