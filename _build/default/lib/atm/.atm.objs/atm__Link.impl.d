lib/atm/link.ml: Cell Int64 Sim Stdlib
