lib/atm/display.ml: Aal5 Array Bytes Cell Char Hashtbl Sim Stdlib Tile
