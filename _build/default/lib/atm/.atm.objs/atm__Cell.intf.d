lib/atm/cell.mli: Sim
