lib/atm/net.ml: Aal5 Array Cell Hashtbl Link List Queue Sim Switch
