lib/atm/net.mli: Aal5 Cell Link Sim Switch
