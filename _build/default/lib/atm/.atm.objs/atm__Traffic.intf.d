lib/atm/traffic.mli: Net Sim
