lib/atm/display.mli: Cell Sim Tile
