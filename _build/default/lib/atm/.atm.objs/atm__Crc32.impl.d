lib/atm/crc32.ml: Array Bytes Char Lazy
