lib/atm/audio.mli: Cell Net Sim
