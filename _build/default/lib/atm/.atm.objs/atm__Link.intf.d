lib/atm/link.mli: Cell Sim
