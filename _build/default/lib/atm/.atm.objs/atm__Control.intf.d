lib/atm/control.mli: Cell Net Sim
