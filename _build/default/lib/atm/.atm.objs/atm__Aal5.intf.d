lib/atm/aal5.mli: Cell Format
