lib/atm/switch.mli: Cell Link Sim
