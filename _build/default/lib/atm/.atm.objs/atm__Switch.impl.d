lib/atm/switch.ml: Array Cell Hashtbl Link Sim
