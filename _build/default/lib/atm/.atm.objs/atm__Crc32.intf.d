lib/atm/crc32.mli:
