lib/atm/util.mli:
