lib/atm/cell.ml: Bytes Float Sim
