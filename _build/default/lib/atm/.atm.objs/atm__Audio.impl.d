lib/atm/audio.ml: Array Cell Float Net Sim Stdlib Util
