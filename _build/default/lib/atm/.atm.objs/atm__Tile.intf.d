lib/atm/tile.mli: Sim
