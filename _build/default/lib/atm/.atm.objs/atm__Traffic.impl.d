lib/atm/traffic.ml: Cell Float Net Sim
