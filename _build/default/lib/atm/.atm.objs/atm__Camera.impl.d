lib/atm/camera.ml: Aal5 Bytes Cell Char Float List Net Sim Stdlib Tile
