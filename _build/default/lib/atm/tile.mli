(** Pixel tiles, the unit of video transport.

    The ATM camera digitises scan-lines; once eight lines are buffered
    they are encoded as 8x8-pixel tiles.  A run of consecutive tiles is
    packed into one AAL5 frame together with a trailer giving the (x, y)
    position of the run within the video frame, the frame number, and a
    capture time stamp. *)

val size : int
(** Tiles are [size] x [size] pixels (8). *)

val raw_bytes : int
(** Bytes of one uncompressed tile (64: 8-bit luma). *)

type packet = {
  x : int;  (** x of the first tile, in tiles *)
  y : int;  (** y of the tile row, in tiles *)
  frame : int;  (** video frame number *)
  count : int;  (** number of consecutive tiles *)
  bytes_per_tile : int;  (** 64 raw, less when JPEG-compressed *)
  captured_at : Sim.Time.t;  (** when the tiles' lines finished digitising *)
  data : bytes;  (** [count * bytes_per_tile] bytes of pixel data *)
}

val trailer_bytes : int

val marshal : packet -> bytes

val unmarshal : bytes -> packet option
(** [None] on malformed input (too short, or inconsistent sizes). *)
