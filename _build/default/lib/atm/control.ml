type msg =
  | Start
  | Stop
  | Sync of { stream : int; unit_id : int; stamp : Sim.Time.t }
  | Index_mark of { stream : int; offset : int; stamp : Sim.Time.t }

let marshal = function
  | Start -> Bytes.make 1 '\001'
  | Stop -> Bytes.make 1 '\002'
  | Sync { stream; unit_id; stamp } ->
      let b = Bytes.make 17 '\003' in
      Util.put_u16 b 1 stream;
      Util.put_u32 b 3 unit_id;
      Util.put_i64 b 7 stamp;
      b
  | Index_mark { stream; offset; stamp } ->
      let b = Bytes.make 19 '\004' in
      Util.put_u16 b 1 stream;
      Util.put_u32 b 3 offset;
      Util.put_i64 b 7 stamp;
      b

let unmarshal b =
  if Bytes.length b = 0 then None
  else
    match Bytes.get b 0 with
    | '\001' -> Some Start
    | '\002' -> Some Stop
    | '\003' when Bytes.length b >= 17 ->
        Some
          (Sync
             {
               stream = Util.get_u16 b 1;
               unit_id = Util.get_u32 b 3;
               stamp = Util.get_i64 b 7;
             })
    | '\004' when Bytes.length b >= 19 ->
        Some
          (Index_mark
             {
               stream = Util.get_u16 b 1;
               offset = Util.get_u32 b 3;
               stamp = Util.get_i64 b 7;
             })
    | _ -> None

module Merger = struct
  type t = {
    out : Net.vc;
    reassemblers : (int, Aal5.Reassembler.t) Hashtbl.t;
    mutable forwarded : int;
  }

  let create ~out () = { out; reassemblers = Hashtbl.create 8; forwarded = 0 }

  let rx t (cell : Cell.t) =
    let reassembler =
      match Hashtbl.find_opt t.reassemblers cell.vci with
      | Some r -> r
      | None ->
          let r = Aal5.Reassembler.create () in
          Hashtbl.add t.reassemblers cell.vci r;
          r
    in
    match Aal5.Reassembler.push reassembler cell with
    | Some (Ok payload) ->
        t.forwarded <- t.forwarded + 1;
        Net.send_frame t.out payload
    | Some (Error _) | None -> ()

  let forwarded t = t.forwarded
end

module Playback = struct
  type stream_state = {
    syncs : (int, Sim.Time.t) Hashtbl.t;  (* unit -> source stamp *)
    renders : (int, Sim.Time.t) Hashtbl.t;  (* unit -> render time *)
    mutable matched : (Sim.Time.t * Sim.Time.t) list;  (* stamp, rendered *)
    latency : Sim.Stats.Summary.t;
  }

  type t = {
    engine : Sim.Engine.t;
    streams : (int, stream_state) Hashtbl.t;
    reassembler : Aal5.Reassembler.t;
  }

  let create engine () =
    {
      engine;
      streams = Hashtbl.create 8;
      reassembler = Aal5.Reassembler.create ();
    }

  let stream t id =
    match Hashtbl.find_opt t.streams id with
    | Some s -> s
    | None ->
        let s =
          {
            syncs = Hashtbl.create 64;
            renders = Hashtbl.create 64;
            matched = [];
            latency = Sim.Stats.Summary.create ();
          }
        in
        Hashtbl.add t.streams id s;
        s

  let try_match s unit_id =
    match (Hashtbl.find_opt s.syncs unit_id, Hashtbl.find_opt s.renders unit_id) with
    | Some stamp, Some rendered ->
        Hashtbl.remove s.syncs unit_id;
        Hashtbl.remove s.renders unit_id;
        s.matched <- (stamp, rendered) :: s.matched;
        Sim.Stats.Summary.add s.latency
          (Sim.Time.to_us_f (Sim.Time.sub rendered stamp))
    | _ -> ()

  let control_rx t (cell : Cell.t) =
    match Aal5.Reassembler.push t.reassembler cell with
    | Some (Ok payload) -> begin
        match unmarshal payload with
        | Some (Sync { stream = id; unit_id; stamp }) ->
            let s = stream t id in
            Hashtbl.replace s.syncs unit_id stamp;
            try_match s unit_id
        | Some (Start | Stop | Index_mark _) | None -> ()
      end
    | Some (Error _) | None -> ()

  let data_event t ~stream:id ~unit_id =
    let s = stream t id in
    Hashtbl.replace s.renders unit_id (Sim.Engine.now t.engine);
    try_match s unit_id

  let skew_us t ~a ~b =
    let result = Sim.Stats.Samples.create () in
    match (Hashtbl.find_opt t.streams a, Hashtbl.find_opt t.streams b) with
    | Some sa, Some sb when sb.matched <> [] ->
        let arr_b =
          Array.of_list
            (List.sort (fun (x, _) (y, _) -> Sim.Time.compare x y) sb.matched)
        in
        let nearest stamp =
          (* binary search for the entry of b with the closest stamp *)
          let lo = ref 0 and hi = ref (Array.length arr_b - 1) in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if Sim.Time.(fst arr_b.(mid) < stamp) then lo := mid + 1 else hi := mid
          done;
          let candidate i =
            if i >= 0 && i < Array.length arr_b then Some arr_b.(i) else None
          in
          match (candidate (!lo - 1), candidate !lo) with
          | Some (s1, r1), Some (s2, r2) ->
              if
                Sim.Time.(sub stamp s1 < sub s2 stamp)
              then (s1, r1)
              else (s2, r2)
          | Some e, None | None, Some e -> e
          | None, None -> assert false
        in
        List.iter
          (fun (stamp_a, rendered_a) ->
            let stamp_b, rendered_b = nearest stamp_a in
            let lat_a = Sim.Time.to_us_f (Sim.Time.sub rendered_a stamp_a) in
            let lat_b = Sim.Time.to_us_f (Sim.Time.sub rendered_b stamp_b) in
            Sim.Stats.Samples.add result (Float.abs (lat_a -. lat_b)))
          sa.matched;
        result
    | _ -> result

  let recommended_delay t ~stream:id =
    let mean_of s = Sim.Stats.Summary.mean s.latency in
    let slowest =
      Hashtbl.fold (fun _ s acc -> Float.max acc (mean_of s)) t.streams 0.0
    in
    match Hashtbl.find_opt t.streams id with
    | None -> Sim.Time.zero
    | Some s ->
        let gap_us = slowest -. mean_of s in
        if gap_us <= 0.0 then Sim.Time.zero
        else Sim.Time.of_sec_f (gap_us /. 1e6)
end
