let trailer_bytes = 8

let frame_cells len =
  (len + trailer_bytes + Cell.payload_bytes - 1) / Cell.payload_bytes

let segment ~vci payload =
  let len = Bytes.length payload in
  if len > 0xffff then invalid_arg "Aal5.segment: payload too long";
  let ncells = frame_cells len in
  let pdu_len = ncells * Cell.payload_bytes in
  let pdu = Bytes.make pdu_len '\000' in
  Bytes.blit payload 0 pdu 0 len;
  (* Trailer: UU=0, CPI=0, length, CRC.  The CRC covers the PDU with the
     CRC field itself zeroed, which is how we verify it too. *)
  Util.put_u16 pdu (pdu_len - 6) len;
  let crc = Crc32.digest pdu ~pos:0 ~len:(pdu_len - 4) in
  Util.put_u32 pdu (pdu_len - 4) crc;
  List.init ncells (fun i ->
      let chunk = Bytes.sub pdu (i * Cell.payload_bytes) Cell.payload_bytes in
      Cell.make ~vci ~last:(i = ncells - 1) chunk)

type error = Crc_mismatch | Length_mismatch | Too_long

let pp_error fmt = function
  | Crc_mismatch -> Format.pp_print_string fmt "CRC mismatch"
  | Length_mismatch -> Format.pp_print_string fmt "length mismatch"
  | Too_long -> Format.pp_print_string fmt "frame too long"

module Reassembler = struct
  type t = {
    max_frame : int;
    mutable chunks : bytes list;  (* reversed *)
    mutable count : int;
  }

  let create ?(max_frame = 1 lsl 16) () = { max_frame; chunks = []; count = 0 }

  let reset t =
    t.chunks <- [];
    t.count <- 0

  let pending_cells t = t.count

  let reassemble t =
    let pdu_len = t.count * Cell.payload_bytes in
    let pdu = Bytes.create pdu_len in
    let pos = ref pdu_len in
    List.iter
      (fun chunk ->
        pos := !pos - Cell.payload_bytes;
        Bytes.blit chunk 0 pdu !pos Cell.payload_bytes)
      t.chunks;
    reset t;
    let stored_crc = Util.get_u32 pdu (pdu_len - 4) in
    let crc = Crc32.digest pdu ~pos:0 ~len:(pdu_len - 4) in
    if crc <> stored_crc then Error Crc_mismatch
    else begin
      let len = Util.get_u16 pdu (pdu_len - 6) in
      if frame_cells len * Cell.payload_bytes <> pdu_len then
        Error Length_mismatch
      else Ok (Bytes.sub pdu 0 len)
    end

  let push t (cell : Cell.t) =
    t.chunks <- cell.payload :: t.chunks;
    t.count <- t.count + 1;
    if cell.last then Some (reassemble t)
    else if t.count * Cell.payload_bytes > t.max_frame then begin
      reset t;
      Some (Error Too_long)
    end
    else None
end
