(** CRC-32 (IEEE 802.3 polynomial), as used by the AAL5 trailer. *)

val digest : bytes -> pos:int -> len:int -> int
(** CRC of a byte range, as a non-negative int (fits in 32 bits). *)

val digest_bytes : bytes -> int
(** CRC of a whole buffer. *)
