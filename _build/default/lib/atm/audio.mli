(** The ATM DSP/audio node.

    The source side packs PCM samples into single ATM cells, each
    carrying a time stamp and sequence number; the sink side runs a
    play-out buffer that converts the jittery arrival process back into
    an isochronous sample stream.  Audio has modest bandwidth but is
    the medium most sensitive to jitter, which is what the sink
    measures. *)

val samples_per_cell : int
(** 16-bit samples carried per cell after the 14-byte header. *)

module Source : sig
  type t

  val create :
    Sim.Engine.t -> vc:Net.vc -> ?sample_rate:int -> ?channels:int -> unit -> t
  (** Defaults: 44100 Hz, 2 channels (hi-fi stereo, per the project's
      goal statement). *)

  val start : t -> unit
  val stop : t -> unit

  val on_mark : t -> every:int -> (seq:int -> stamp:Sim.Time.t -> unit) -> unit
  (** Synchronisation callback once every [every] cells, as the cell is
      sent — the device manager turns these into control-stream [Sync]
      messages. *)

  val cells_sent : t -> int
  val cell_period : t -> Sim.Time.t
  val data_rate_bps : t -> float
end

module Sink : sig
  type t

  val create :
    Sim.Engine.t -> ?sample_rate:int -> ?channels:int ->
    ?playout_delay:Sim.Time.t -> unit -> t
  (** [playout_delay] is the target buffering between arrival of the
      first cell and the start of play-out (default 2 ms). *)

  val cell_rx : t -> Cell.t -> unit
  (** Handler to pass as [rx] when opening the audio VC. *)

  val cells_received : t -> int
  val late_cells : t -> int
  (** Cells that missed their play-out deadline (audible dropouts). *)

  val lost_cells : t -> int
  (** Sequence-number gaps. *)

  val delay_us : t -> Sim.Stats.Samples.t
  (** Network delay per cell (arrival - source stamp), microseconds. *)

  val jitter_us : t -> float
  (** Standard deviation of the per-cell network delay. *)

  val on_playout : t -> (seq:int -> stamp:Sim.Time.t -> unit) -> unit
  (** Callback when a cell's samples are played, for synchronisation. *)
end
