(** Byte-buffer helpers for marshalling device payloads.

    All integers are big-endian, matching network convention. *)

val put_u16 : bytes -> int -> int -> unit
val get_u16 : bytes -> int -> int
val put_u32 : bytes -> int -> int -> unit
val get_u32 : bytes -> int -> int
val put_i64 : bytes -> int -> int64 -> unit
val get_i64 : bytes -> int -> int64
