(** ATM cells: 53 bytes on the wire, 48 of payload.

    Only the header fields the models need are represented: the VCI
    (rewritten hop by hop by switches) and the AAL5 end-of-frame bit
    carried in the PTI field. *)

val header_bytes : int (* 5 *)
val payload_bytes : int (* 48 *)
val total_bytes : int (* 53 *)
val wire_bits : int (* 424 *)

type t = {
  mutable vci : int;  (** rewritten at each switch hop *)
  last : bool;  (** AAL5 end-of-frame marker (PTI bit) *)
  payload : bytes;  (** exactly [payload_bytes] long *)
}

val make : vci:int -> last:bool -> bytes -> t
(** Raises [Invalid_argument] if the payload is not 48 bytes. *)

val make_blank : vci:int -> last:bool -> t
(** A cell with a zeroed payload (fresh buffer). *)

val tx_time : bandwidth_bps:int -> Sim.Time.t
(** Serialisation time of one cell at the given link rate. *)
