let header_bytes = 5
let payload_bytes = 48
let total_bytes = header_bytes + payload_bytes
let wire_bits = total_bytes * 8

type t = { mutable vci : int; last : bool; payload : bytes }

let make ~vci ~last payload =
  if Bytes.length payload <> payload_bytes then
    invalid_arg "Cell.make: payload must be 48 bytes";
  { vci; last; payload }

let make_blank ~vci ~last = { vci; last; payload = Bytes.make payload_bytes '\000' }

let tx_time ~bandwidth_bps =
  Sim.Time.of_sec_f (Float.of_int wire_bits /. Float.of_int bandwidth_bps)
