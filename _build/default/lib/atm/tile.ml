let size = 8
let raw_bytes = size * size
let trailer_bytes = 20

type packet = {
  x : int;
  y : int;
  frame : int;
  count : int;
  bytes_per_tile : int;
  captured_at : Sim.Time.t;
  data : bytes;
}

let marshal p =
  let data_len = p.count * p.bytes_per_tile in
  assert (Bytes.length p.data = data_len);
  let b = Bytes.create (data_len + trailer_bytes) in
  Bytes.blit p.data 0 b 0 data_len;
  Util.put_u16 b data_len p.x;
  Util.put_u16 b (data_len + 2) p.y;
  Util.put_u32 b (data_len + 4) p.frame;
  Util.put_u16 b (data_len + 8) p.count;
  Util.put_u16 b (data_len + 10) p.bytes_per_tile;
  Util.put_i64 b (data_len + 12) p.captured_at;
  b

let unmarshal b =
  let len = Bytes.length b in
  if len < trailer_bytes then None
  else begin
    let base = len - trailer_bytes in
    let count = Util.get_u16 b (base + 8) in
    let bytes_per_tile = Util.get_u16 b (base + 10) in
    if count * bytes_per_tile <> base then None
    else
      Some
        {
          x = Util.get_u16 b base;
          y = Util.get_u16 b (base + 2);
          frame = Util.get_u32 b (base + 4);
          count;
          bytes_per_tile;
          captured_at = Util.get_i64 b (base + 12);
          data = Bytes.sub b 0 base;
        }
  end
