let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let digest b ~pos ~len =
  let table = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    let byte = Char.code (Bytes.get b i) in
    c := table.((!c lxor byte) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let digest_bytes b = digest b ~pos:0 ~len:(Bytes.length b)
