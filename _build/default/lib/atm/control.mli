(** The device control protocol (paper §2.2).

    Every multimedia device produces two virtual circuits: the data
    stream and a bidirectional, low-bandwidth control stream used to
    drive the device and to synchronise streams.  A host sending
    synchronised audio and video lets the devices ship their data
    streams directly to the sinks while a local merge process combines
    the two control streams into one for the play-back controller at
    the rendering end.  The file server likewise derives index
    information from the control stream accompanying a recording. *)

type msg =
  | Start
  | Stop
  | Sync of { stream : int; unit_id : int; stamp : Sim.Time.t }
      (** "unit [unit_id] of stream [stream] was captured at [stamp]" *)
  | Index_mark of { stream : int; offset : int; stamp : Sim.Time.t }
      (** storage-side index hint: media byte [offset] corresponds to
          source time [stamp] *)

val marshal : msg -> bytes
val unmarshal : bytes -> msg option

(** Merges the control streams of several source devices into a single
    combined stream for the play-back controller. *)
module Merger : sig
  type t

  val create : out:Net.vc -> unit
  (* merged messages are forwarded verbatim *)
    -> t

  val rx : t -> Cell.t -> unit
  (** Cell handler for each incoming per-device control VC. *)

  val forwarded : t -> int
end

(** Play-back controller: aligns the play-out of several streams using
    source synchronisation marks and data-arrival events. *)
module Playback : sig
  type t

  val create : Sim.Engine.t -> unit -> t

  val control_rx : t -> Cell.t -> unit
  (** Handler for the combined control VC. *)

  val data_event : t -> stream:int -> unit_id:int -> unit
  (** Report that [unit_id] of [stream] was rendered now (wired to
      {!Display.on_blit} / {!Audio.Sink.on_playout}). *)

  val skew_us : t -> a:int -> b:int -> Sim.Stats.Samples.t
  (** Distribution of |render-time difference| between the two streams
      for units captured at the same source instant, in microseconds.
      Empty until both streams have rendered matching units. *)

  val recommended_delay : t -> stream:int -> Sim.Time.t
  (** Extra delay the controller would insert on [stream] to align it
      with the slowest stream seen so far. *)
end
