type port = int

type t = {
  engine : Sim.Engine.t;
  name : string;
  nports : int;
  fabric_delay : Sim.Time.t;
  outputs : Link.t option array;
  table : (int * int, port * int * bool) Hashtbl.t;  (* ..., priority *)
  mutable switched : int;
  mutable unroutable : int;
}

let create engine ~name ~ports ?(fabric_delay = Sim.Time.ns 4240) () =
  {
    engine;
    name;
    nports = ports;
    fabric_delay;
    outputs = Array.make ports None;
    table = Hashtbl.create 64;
    switched = 0;
    unroutable = 0;
  }

let name t = t.name
let ports t = t.nports

let attach_output t port link =
  if port < 0 || port >= t.nports then invalid_arg "Switch.attach_output: bad port";
  match t.outputs.(port) with
  | Some _ -> invalid_arg "Switch.attach_output: port already attached"
  | None -> t.outputs.(port) <- Some link

let add_route ?(priority = false) t ~in_port ~in_vci ~out_port ~out_vci =
  if Hashtbl.mem t.table (in_port, in_vci) then
    invalid_arg "Switch.add_route: route exists";
  Hashtbl.add t.table (in_port, in_vci) (out_port, out_vci, priority)

let remove_route t ~in_port ~in_vci = Hashtbl.remove t.table (in_port, in_vci)

let route t ~in_port ~in_vci =
  match Hashtbl.find_opt t.table (in_port, in_vci) with
  | Some (out_port, out_vci, _) -> Some (out_port, out_vci)
  | None -> None

let input t in_port (cell : Cell.t) =
  match Hashtbl.find_opt t.table (in_port, cell.vci) with
  | None -> t.unroutable <- t.unroutable + 1
  | Some (out_port, out_vci, priority) -> begin
      match t.outputs.(out_port) with
      | None -> t.unroutable <- t.unroutable + 1
      | Some link ->
          t.switched <- t.switched + 1;
          cell.vci <- out_vci;
          let forward () = Link.send ~priority link cell in
          ignore (Sim.Engine.schedule t.engine ~delay:t.fabric_delay forward)
    end

let cells_switched t = t.switched
let cells_unroutable t = t.unroutable
