(** The ATM camera (paper Figure 2).

    Scan-lines are digitised continuously; after eight lines are
    buffered they are encoded as a row of 8x8 tiles, packed into AAL5
    frames and sent directly onto the network — no workstation CPU
    touches the data.  An optional compression stage (motion JPEG)
    shrinks each tile by a configurable ratio.

    The [release] policy models the paper's comparison: [`Tile_row]
    streams every row of tiles as soon as it is digitised (the Pegasus
    design); [`Whole_frame] holds data back until the frame is complete,
    as a conventional frame-grabber does.  Both keep the true
    digitisation time in each packet's [captured_at] stamp, so the
    display can measure staging latency per pixel run. *)

type mode = Raw | Jpeg of { ratio : float }

type release = [ `Tile_row | `Whole_frame ]

type t

val create :
  Sim.Engine.t ->
  vc:Net.vc ->
  ?width:int ->
  ?height:int ->
  ?fps:int ->
  ?mode:mode ->
  ?release:release ->
  ?max_packet_tiles:int ->
  ?pace_bps:int ->
  unit ->
  t
(** Defaults: 640x480 at 25 fps, [Raw], [`Tile_row], at most 14 tiles
    per AAL5 frame (≈ 1 cell-efficient kilobyte raw), paced at
    80 Mbit/s so the camera never overruns its own 100 Mbit/s link.
    [width] and [height] must be multiples of 8. *)

val start : t -> unit
(** Begin capturing at the next frame boundary.  Idempotent. *)

val stop : t -> unit

val running : t -> bool

val on_frame : t -> (frame:int -> captured_at:Sim.Time.t -> unit) -> unit
(** Callback at each frame capture completion; the device manager uses
    it to emit synchronisation marks on the control stream. *)

val frames_captured : t -> int
val packets_sent : t -> int
val bytes_sent : t -> int

val frame_period : t -> Sim.Time.t

val data_rate_bps : t -> float
(** Long-run data rate implied by the geometry, fps and compression. *)
