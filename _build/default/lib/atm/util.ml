let put_u16 b off v = Bytes.set_uint16_be b off (v land 0xffff)
let get_u16 b off = Bytes.get_uint16_be b off

let put_u32 b off v =
  Bytes.set_int32_be b off (Int32.of_int (v land 0xffffffff))

let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xffffffff
let put_i64 b off v = Bytes.set_int64_be b off v
let get_i64 b off = Bytes.get_int64_be b off
