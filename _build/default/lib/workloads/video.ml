type t = {
  rng : Sim.Rng.t;
  fps : int;
  mean : float;
  sigma : float;
  rho : float;
  mutable state : float;  (* deviation from the mean, AR(1) *)
}

let create rng ?(fps = 25) ?(mean_frame_bytes = 40_000) ?(cv = 0.25)
    ?(correlation = 0.9) () =
  let mean = Float.of_int mean_frame_bytes in
  { rng; fps; mean; sigma = cv *. mean; rho = correlation; state = 0.0 }

let fps t = t.fps
let frame_period t = Sim.Time.of_sec_f (1.0 /. Float.of_int t.fps)

let next_frame_bytes t =
  let innovation_sd = t.sigma *. sqrt (1.0 -. (t.rho *. t.rho)) in
  let innovation = Sim.Rng.normal t.rng ~mu:0.0 ~sigma:innovation_sd in
  t.state <- (t.rho *. t.state) +. innovation;
  Stdlib.max 1024 (Float.to_int (t.mean +. t.state))

let mean_rate_bps t = t.mean *. 8.0 *. Float.of_int t.fps
