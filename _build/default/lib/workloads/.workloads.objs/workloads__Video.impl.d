lib/workloads/video.ml: Float Sim Stdlib
