lib/workloads/baker.mli: Sim
