lib/workloads/baker.ml: Float Sim Stdlib
