lib/workloads/video.mli: Sim
