(** Video frame-size traces.

    Motion-JPEG compresses frame by frame, so frame sizes vary with
    scene content; an AR(1) process captures the shot-to-shot
    correlation well enough for storage and network experiments. *)

type t

val create :
  Sim.Rng.t ->
  ?fps:int ->
  ?mean_frame_bytes:int ->
  ?cv:float ->
  ?correlation:float ->
  unit ->
  t
(** Defaults: 25 fps, 40 KB per frame (the paper's ~1 MB/s JPEG
    stream), coefficient of variation 0.25, correlation 0.9. *)

val fps : t -> int
val frame_period : t -> Sim.Time.t

val next_frame_bytes : t -> int
(** Draw the next frame's size. *)

val mean_rate_bps : t -> float
