type ops = {
  op_create : unit -> int;
  op_write : fid:int -> off:int -> len:int -> unit;
  op_overwrite : fid:int -> len:int -> unit;
  op_delete : fid:int -> unit;
}

type t = {
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  ops : ops;
  create_rate : float;
  p_short : float;
  short_mean : float;  (* seconds *)
  long_mean : float;
  overwrite_fraction : float;
  size_median : int;
  mutable running : bool;
  mutable created : int;
  mutable deleted : int;
  mutable overwritten : int;
  mutable bytes : int;
  mutable lives_done : int;
  mutable lives_short : int;
}

let create engine ~rng ~ops ?(create_rate = 2.0) ?(p_short = 0.7)
    ?(short_mean = Sim.Time.sec 10) ?(long_mean = Sim.Time.sec 600)
    ?(overwrite_fraction = 0.5) ?(size_median = 8192) () =
  {
    engine;
    rng;
    ops;
    create_rate;
    p_short;
    short_mean = Sim.Time.to_sec_f short_mean;
    long_mean = Sim.Time.to_sec_f long_mean;
    overwrite_fraction;
    size_median;
    running = false;
    created = 0;
    deleted = 0;
    overwritten = 0;
    bytes = 0;
    lives_done = 0;
    lives_short = 0;
  }

let draw_size t =
  (* Lognormal around the median with sigma ~ 1.2: a few bytes to a
     few hundred kilobytes, like the Sprite traces. *)
  let mu = log (Float.of_int t.size_median) in
  Stdlib.max 64 (Float.to_int (Sim.Rng.lognormal t.rng ~mu ~sigma:1.2))

let draw_lifetime t =
  if Sim.Rng.float t.rng < t.p_short then
    Sim.Rng.exponential t.rng ~mean:t.short_mean
  else Sim.Rng.exponential t.rng ~mean:t.long_mean

let note_life t seconds =
  t.lives_done <- t.lives_done + 1;
  if seconds < 30.0 then t.lives_short <- t.lives_short + 1

(* Schedule the end of a file's current life.  The lifetime is counted
   at draw time so that a finite run does not censor the long tail. *)
let rec schedule_death t fid size =
  let life = draw_lifetime t in
  note_life t life;
  ignore
    (Sim.Engine.schedule t.engine ~delay:(Sim.Time.of_sec_f life) (fun () ->
         if Sim.Rng.float t.rng < t.overwrite_fraction then begin
           let size = draw_size t in
           t.overwritten <- t.overwritten + 1;
           t.bytes <- t.bytes + size;
           t.ops.op_overwrite ~fid ~len:size;
           schedule_death t fid size
         end
         else begin
           t.deleted <- t.deleted + 1;
           t.ops.op_delete ~fid
         end));
  ignore size

let rec arrival t =
  if t.running then begin
    let fid = t.ops.op_create () in
    let size = draw_size t in
    t.created <- t.created + 1;
    t.bytes <- t.bytes + size;
    t.ops.op_write ~fid ~off:0 ~len:size;
    schedule_death t fid size;
    let gap = Sim.Rng.exponential t.rng ~mean:(1.0 /. t.create_rate) in
    ignore
      (Sim.Engine.schedule t.engine ~delay:(Sim.Time.of_sec_f gap) (fun () ->
           arrival t))
  end

let start t =
  if not t.running then begin
    t.running <- true;
    arrival t
  end

let stop t = t.running <- false
let files_created t = t.created
let deletes t = t.deleted
let overwrites t = t.overwritten
let bytes_written t = t.bytes

let short_lived_fraction t =
  if t.lives_done = 0 then 0.0
  else Float.of_int t.lives_short /. Float.of_int t.lives_done
