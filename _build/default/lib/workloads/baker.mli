(** Synthetic Unix file traffic calibrated to Baker et al. [1991].

    The measurement the paper leans on: 70 % of files are deleted or
    overwritten within 30 seconds of being written.  The generator
    creates files at a Poisson rate; each file draws a lognormal size
    and a lifetime from a two-population mixture (a short-lived mass
    below 30 s and a long-lived tail).  At end of life the file is
    deleted or overwritten (an overwrite restarts the lifetime
    clock). *)

(** What the generator drives — wire these to a file-system model. *)
type ops = {
  op_create : unit -> int;  (** returns the new file's id *)
  op_write : fid:int -> off:int -> len:int -> unit;
  op_overwrite : fid:int -> len:int -> unit;
  op_delete : fid:int -> unit;
}

type t

val create :
  Sim.Engine.t ->
  rng:Sim.Rng.t ->
  ops:ops ->
  ?create_rate:float ->
  ?p_short:float ->
  ?short_mean:Sim.Time.t ->
  ?long_mean:Sim.Time.t ->
  ?overwrite_fraction:float ->
  ?size_median:int ->
  unit ->
  t
(** Defaults: 2 files/s, p_short 0.7 (the Baker figure), short lives
    averaging 10 s (so the short mass falls within 30 s), long lives
    averaging 10 min, half of deaths are overwrites, 8 KB median size. *)

val start : t -> unit
val stop : t -> unit
(** Stops creating; lifetimes already scheduled still play out. *)

val files_created : t -> int
val deletes : t -> int
val overwrites : t -> int
val bytes_written : t -> int

val short_lived_fraction : t -> float
(** Fraction of drawn lifetimes under 30 s (counted at draw time so a
    finite run does not censor the long tail) — should come out near
    [p_short]. *)
