(** E4 — activations vs transparent resumption (paper §3.2).

    "First, it provides a means of informing applications when they
    have the processor; a user-level scheduler can use this
    information, together with the current time, to make more informed
    decisions about the fate of the threads which it controls." *)

val run : ?quick:bool -> unit -> Table.t
