(** E8 — storage throughput (paper §5).

    "The speeds of modern disks are such that the overhead of seeks
    between reading and writing whole segments is less than ten per
    cent, so that a transfer rate of at least five megabytes per second
    per disk is possible...  Striping over four disks makes a total
    bandwidth of 20 MB per second possible.  We have not been able to
    test this yet, since our ATM network runs only at a mere 100
    megabits per second, just over 10 MB per second." *)

val run : ?quick:bool -> unit -> Table.t
