(** E9 — cleaning cost vs file-system size (paper §5).

    "If any part of the cleaning process scales with, say, the square
    of the system size, cleaning a terabyte file system will take a
    very long time.  We are currently implementing a cleaning
    algorithm whose complexity only depends on the number of segments
    to be cleaned and the amount of 'garbage'." *)

val run : ?quick:bool -> unit -> Table.t
