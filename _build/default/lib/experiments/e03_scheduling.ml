(* An overloaded workstation: a 25 fps video pipeline and a 100 Hz
   audio pipeline (both with real deadlines), plus compute domains that
   soak up every remaining cycle.  Total demand ~1.4 CPUs on 1 CPU.
   A scheduler earns its keep by keeping the admitted real-time
   domains' misses at zero while letting batch eat only the slack. *)

let periodic k d ~period ~work ~label =
  let e = Nemesis.Kernel.engine k in
  Sim.Engine.every ~daemon:true e ~period (fun () ->
      let now = Sim.Engine.now e in
      Nemesis.Kernel.submit k d
        (Nemesis.Job.make ~label ~work ~deadline:(Sim.Time.add now period)
           ~created:now ());
      true)

let scenario ~policy ~duration =
  let e = Sim.Engine.create () in
  let k = Nemesis.Kernel.create e ~policy () in
  let video =
    Nemesis.Domain.create ~name:"video" ~period:(Sim.Time.ms 40)
      ~slice:(Sim.Time.ms 16) ~extra:false ~priority:5 ()
  in
  let audio =
    Nemesis.Domain.create ~name:"audio" ~period:(Sim.Time.ms 10)
      ~slice:(Sim.Time.ms 1) ~extra:false ~priority:6 ()
  in
  let batch1 =
    Nemesis.Domain.create ~name:"batch1" ~period:(Sim.Time.ms 100)
      ~slice:(Sim.Time.ms 10) ~extra:true ~priority:7 ()
  in
  let batch2 =
    Nemesis.Domain.create ~name:"batch2" ~period:(Sim.Time.ms 100)
      ~slice:(Sim.Time.ms 10) ~extra:true ~priority:4 ()
  in
  List.iter (Nemesis.Kernel.add_domain k) [ video; audio; batch1; batch2 ];
  (* 15ms of processing per 40ms frame; 0.8ms per 10ms audio buffer. *)
  periodic k video ~period:(Sim.Time.ms 40) ~work:(Sim.Time.ms 15) ~label:"frame";
  periodic k audio ~period:(Sim.Time.ms 10) ~work:(Sim.Time.us 800) ~label:"buffer";
  (* Batch: unbounded appetite, submitted as a stream of chunks that
     each CLAIM to be urgent — deadlines cost nothing to assert, which
     is exactly why a scheduler that believes them cannot protect the
     real-time domains. *)
  let greedy d label =
    let rec next () =
      Nemesis.Kernel.submit k d
        (Nemesis.Job.make ~label ~work:(Sim.Time.ms 5)
           ~deadline:(Sim.Time.add (Sim.Engine.now e) (Sim.Time.ms 1))
           ~created:(Sim.Engine.now e) ~on_complete:next ())
    in
    next ()
  in
  greedy batch1 "mine1";
  greedy batch2 "mine2";
  Sim.Engine.run e ~until:duration;
  let miss_pct d =
    let done_ = Nemesis.Domain.jobs_completed d in
    let missed = Nemesis.Domain.deadline_misses d in
    (* Jobs that never even completed within the run count against the
       scheduler too. *)
    let expected =
      Int64.to_int (Int64.div duration (Nemesis.Domain.params d).Nemesis.Domain.period)
    in
    let not_done = Stdlib.max 0 (expected - done_) in
    100.0 *. Float.of_int (missed + not_done) /. Float.of_int (Stdlib.max 1 expected)
  in
  let batch_ms =
    Sim.Time.to_ms_f
      (Sim.Time.add (Nemesis.Domain.cpu_used batch1) (Nemesis.Domain.cpu_used batch2))
  in
  (miss_pct video, miss_pct audio, batch_ms /. Sim.Time.to_ms_f duration *. 100.0)

let run ?(quick = false) () =
  let duration = if quick then Sim.Time.sec 2 else Sim.Time.sec 10 in
  let policies =
    [
      ("atropos (shares+EDF)", Nemesis.Policy.atropos ());
      ("plain EDF", Nemesis.Policy.edf ());
      ("fixed priority", Nemesis.Policy.fixed_priority ());
      ("round robin", Nemesis.Policy.round_robin ());
    ]
  in
  let rows =
    List.map
      (fun (label, policy) ->
        let video, audio, batch = scenario ~policy ~duration in
        [
          label;
          Printf.sprintf "%.1f%%" video;
          Printf.sprintf "%.1f%%" audio;
          Printf.sprintf "%.1f%%" batch;
        ])
      policies
  in
  Table.make ~id:"E3" ~title:"Domain scheduling under overload"
    ~claim:
      "Weighted allocation consumed earliest-deadline-first keeps admitted \
       multimedia domains on schedule while batch work only absorbs slack; \
       priorities and time-slicing cannot express that."
    ~columns:
      [ "policy"; "video misses"; "audio misses"; "batch CPU share" ]
    ~notes:
      [
        "Load: video 15ms/40ms + audio 0.8ms/10ms guaranteed, plus two \
         unbounded batch domains (the system is heavily overcommitted).";
        "Batch domains submit their work as chunks claiming 1ms deadlines: \
         plain EDF believes them and starves the real-time domains, fixed \
         priority gives the highest-priority batch everything, round robin \
         time-slices misses onto everyone. Only the reservation makes the \
         claim irrelevant.";
      ]
    rows

(* The QoS manager at work: one adaptive application watches its grant
   as competitors come and go. *)
let run_qos ?(quick = false) () =
  let scale = if quick then 1 else 4 in
  let e = Sim.Engine.create () in
  let k = Nemesis.Kernel.create e ~policy:(Nemesis.Policy.atropos ()) () in
  let mk name =
    let d = Nemesis.Domain.create ~name ~period:(Sim.Time.ms 40) () in
    Nemesis.Kernel.add_domain k d;
    Nemesis.Kernel.submit k d
      (Nemesis.Job.make ~label:"spin" ~work:(Sim.Time.sec 3600)
         ~created:Sim.Time.zero ());
    d
  in
  let app = mk "editor" in
  let q = Nemesis.Qos.create k () in
  let grants = ref [] in
  Nemesis.Qos.register q ~domain:app ~want:0.6
    ~adapt:(fun ~granted -> grants := granted :: !grants)
    ();
  let phase = Sim.Time.ms (500 * scale) in
  let rows = ref [] in
  let sample label =
    rows :=
      [
        label;
        Printf.sprintf "%.2f" (Nemesis.Qos.granted q ~domain:app);
        Printf.sprintf "%.2f" (Nemesis.Qos.utilisation q ~domain:app);
      ]
      :: !rows
  in
  Sim.Engine.run e ~until:phase;
  sample "alone, wants 0.60";
  let rival1 = mk "renderer" in
  Nemesis.Qos.register q ~domain:rival1 ~want:0.5 ();
  Sim.Engine.run e ~until:(Sim.Time.mul phase 2);
  sample "renderer arrives (wants 0.50)";
  let rival2 = mk "encoder" in
  Nemesis.Qos.register q ~domain:rival2 ~want:0.4 ();
  Sim.Engine.run e ~until:(Sim.Time.mul phase 3);
  sample "encoder arrives (wants 0.40)";
  Nemesis.Qos.unregister q ~domain:rival1;
  Nemesis.Qos.unregister q ~domain:rival2;
  Sim.Engine.run e ~until:(Sim.Time.mul phase 4);
  sample "rivals leave";
  let adaptations = List.length !grants in
  Table.make ~id:"E3b" ~title:"QoS manager: weights over time"
    ~claim:
      "A QoS-manager domain updates the scheduler weights on a longer time \
       scale, both as applications enter or leave and adaptively, smoothing \
       short-term variations."
    ~columns:[ "phase"; "granted fraction"; "smoothed utilisation" ]
    ~notes:
      [
        Printf.sprintf
          "The application's adapt callback fired %d times; each call is its \
           cue to switch algorithms (e.g. a cheaper codec) for the grant it \
           actually has."
          adaptations;
      ]
    (List.rev !rows)
