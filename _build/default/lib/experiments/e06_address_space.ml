(* Three measurements:
   - the per-switch cost model (cache flush vs none), and its end-to-end
     effect on an IPC-heavy two-domain workload;
   - address reuse: collisions among hashed 32-bit image bases;
   - image load cost with and without a relocation-cache hit. *)

let pingpong_throughput ~ctx_cost ~duration =
  let e = Sim.Engine.create () in
  let k = Nemesis.Kernel.create e ~policy:(Nemesis.Policy.atropos ())
      ~ctx_switch_cost:ctx_cost ()
  in
  let a = Nemesis.Domain.create ~name:"a" ~period:(Sim.Time.ms 10)
      ~slice:(Sim.Time.ms 4) ()
  in
  let b = Nemesis.Domain.create ~name:"b" ~period:(Sim.Time.ms 10)
      ~slice:(Sim.Time.ms 4) ()
  in
  Nemesis.Kernel.add_domain k a;
  Nemesis.Kernel.add_domain k b;
  let interactions = ref 0 in
  let chan_to = ref None and chan_back = ref None in
  let get r = match !r with Some c -> c | None -> assert false in
  let mk dst other =
    Nemesis.Kernel.channel k ~dst ~mode:`Sync
      ~closure:(fun () ->
        Some
          (Nemesis.Job.make ~label:"hop" ~work:(Sim.Time.us 20)
             ~created:(Sim.Engine.now e)
             ~on_complete:(fun () ->
               incr interactions;
               Nemesis.Kernel.send k (get other))
             ()))
      ()
  in
  chan_to := Some (mk b chan_back);
  chan_back := Some (mk a chan_to);
  Nemesis.Kernel.submit k a
    (Nemesis.Job.make ~label:"start" ~work:(Sim.Time.us 1)
       ~created:Sim.Time.zero
       ~on_complete:(fun () -> Nemesis.Kernel.send k (get chan_to))
       ());
  Sim.Engine.run e ~until:duration;
  Float.of_int !interactions /. Sim.Time.to_sec_f duration

let run ?(quick = false) () =
  let duration = if quick then Sim.Time.ms 500 else Sim.Time.sec 5 in
  let flush_cost = Nemesis.Vm.switch_cost ~aliases:true () in
  let no_flush_cost = Nemesis.Vm.switch_cost ~aliases:false () in
  let thr_flush = pingpong_throughput ~ctx_cost:flush_cost ~duration in
  let thr_clean = pingpong_throughput ~ctx_cost:no_flush_cost ~duration in
  let rng = Sim.Rng.create ~seed:2024L () in
  let collisions n = Nemesis.Vm.reuse_collisions rng ~images:n in
  let birthday n = Float.of_int n *. Float.of_int n /. 2.0 /. 4294967296.0 in
  let load_hit = Nemesis.Vm.load_cost ~relocs:20_000 ~cache_hit:true in
  let load_miss = Nemesis.Vm.load_cost ~relocs:20_000 ~cache_hit:false in
  Table.make ~id:"E6" ~title:"Single address space: switches and relocation"
    ~claim:
      "Removing virtual-address aliases removes the cache penalty from \
       context switches; the load-time relocation penalty is amortised by \
       reloading images at hashed addresses, where collisions are rare."
    ~columns:[ "quantity"; "separate spaces"; "single space" ]
    ~notes:
      [
        "IPC throughput: two domains bouncing the processor with synchronous \
         events; the only difference between columns is the per-switch cost \
         (cache refill vs none).";
        Printf.sprintf
          "Hashed 32-bit bases: %d collisions in 1k images (birthday bound \
           %.4f), %d in 10k (bound %.2f), %d in 100k (bound %.1f) — so a \
           program nearly always reloads where it ran before and skips \
           relocation."
          (collisions 1_000) (birthday 1_000) (collisions 10_000)
          (birthday 10_000) (collisions 100_000) (birthday 100_000);
      ]
    [
      [
        "context switch cost";
        Format.asprintf "%a" Sim.Time.pp flush_cost;
        Format.asprintf "%a" Sim.Time.pp no_flush_cost;
      ];
      [
        "IPC interactions/s";
        Printf.sprintf "%.0f" thr_flush;
        Printf.sprintf "%.0f" thr_clean;
      ];
      [
        "image load (20k relocs)";
        Format.asprintf "%a (relocate)" Sim.Time.pp load_miss;
        Format.asprintf "%a (cache hit)" Sim.Time.pp load_hit;
      ];
    ]
