(** E3 — shares + EDF scheduling vs the usual suspects (paper §3.3).

    "The approach to scheduling in Nemesis is to schedule domains with
    a weighted scheduling discipline ... While domains have some
    processor allocation remaining, the current scheduler
    implementation uses an earliest deadline first algorithm to select
    between them."  Plus the QoS manager adapting weights above it. *)

val run : ?quick:bool -> unit -> Table.t

val run_qos : ?quick:bool -> unit -> Table.t
(** The QoS-manager half: an application's grant over time as
    competitors arrive and leave, and its adaptation. *)
