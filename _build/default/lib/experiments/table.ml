type t = {
  id : string;
  title : string;
  claim : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~claim ~columns ?(notes = []) rows =
  { id; title; claim; columns; rows; notes }

let cell_f v =
  if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.3f" v

let cell_time_us us =
  if us < 1000.0 then Printf.sprintf "%.1fus" us
  else if us < 1.0e6 then Printf.sprintf "%.2fms" (us /. 1e3)
  else Printf.sprintf "%.3fs" (us /. 1e6)

let wrap width text =
  let words = String.split_on_char ' ' text in
  let lines, last =
    List.fold_left
      (fun (lines, cur) w ->
        if cur = "" then (lines, w)
        else if String.length cur + 1 + String.length w <= width then
          (lines, cur ^ " " ^ w)
        else (cur :: lines, w))
      ([], "") words
  in
  List.rev (if last = "" then lines else last :: lines)

let pp fmt t =
  let all = t.columns :: t.rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- Stdlib.max widths.(i) (String.length cell))
        row)
    all;
  let total = Array.fold_left ( + ) 0 widths + (3 * (ncols - 1)) in
  let rule c = String.make (Stdlib.max total 40) c in
  Format.fprintf fmt "@[<v>%s@,%s: %s@," (rule '=') t.id t.title;
  List.iter (fun l -> Format.fprintf fmt "  %s@," l) (wrap 74 ("Claim: " ^ t.claim));
  Format.fprintf fmt "%s@," (rule '-');
  let print_row row =
    List.iteri
      (fun i cell ->
        let pad = widths.(i) - String.length cell in
        if i > 0 then Format.fprintf fmt " | ";
        Format.fprintf fmt "%s%s" cell (String.make (Stdlib.max 0 pad) ' '))
      row;
    Format.fprintf fmt "@,"
  in
  print_row t.columns;
  Format.fprintf fmt "%s@," (rule '-');
  List.iter print_row t.rows;
  if t.notes <> [] then begin
    Format.fprintf fmt "%s@," (rule '-');
    List.iter
      (fun n -> List.iter (fun l -> Format.fprintf fmt "  %s@," l) (wrap 74 n))
      t.notes
  end;
  Format.fprintf fmt "%s@]" (rule '=')
