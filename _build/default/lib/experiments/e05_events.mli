(** E5 — synchronous vs asynchronous event signalling (paper §3.4).

    "...lowest latency for a client/server interaction will be
    achieved by the client and server implementing the synchronous
    form of notification.  However, a domain performing demultiplexing
    of incoming packets may be most efficient using the asynchronous
    means." *)

val run : ?quick:bool -> unit -> Table.t
