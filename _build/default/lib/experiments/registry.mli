(** Index of every experiment: id → runner.  The bench binary and the
    CLI iterate this. *)

type entry = {
  e_id : string;
  e_title : string;
  e_run : quick:bool -> Table.t;
}

val all : entry list

val find : string -> entry option
(** Case-insensitive lookup by id ("e1", "E3b", ...). *)

val run_all : ?quick:bool -> Format.formatter -> unit
(** Run every experiment and print its table. *)
