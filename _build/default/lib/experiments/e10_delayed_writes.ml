(* The same Baker workload hits two servers: one writes through
   immediately, one holds writes for 30 seconds (safe thanks to the
   client agent's copies).  Measure disk writes, cancelled writes, and
   the garbage the log accrues. *)

let scenario ~write_delay ~duration =
  let e = Sim.Engine.create () in
  let raid = Pfs.Raid.create e ~segment_bytes:262_144 () in
  let log = Pfs.Log.create e ~raid () in
  let server = Pfs.Client_agent.Server.create e ~log ~write_delay () in
  let agent = Pfs.Client_agent.Agent.create e ~server () in
  let rng = Sim.Rng.create ~seed:7L () in
  let fids = Hashtbl.create 256 in
  let ops =
    {
      Workloads.Baker.op_create =
        (fun () ->
          let fid = Pfs.Client_agent.Server.create_file server in
          Hashtbl.replace fids fid ();
          fid);
      op_write =
        (fun ~fid ~off ~len ->
          ignore (Pfs.Client_agent.Agent.write agent ~fid ~off ~len ()));
      op_overwrite =
        (fun ~fid ~len ->
          ignore (Pfs.Client_agent.Agent.write agent ~fid ~off:0 ~len ()));
      op_delete = (fun ~fid -> Pfs.Client_agent.Agent.delete agent ~fid);
    }
  in
  let gen = Workloads.Baker.create e ~rng ~ops ~create_rate:5.0 () in
  Workloads.Baker.start gen;
  Sim.Engine.run e ~until:duration;
  Workloads.Baker.stop gen;
  (* Let the last write-behind windows drain. *)
  Sim.Engine.run e ~until:(Sim.Time.add duration (Sim.Time.sec 60));
  ( Pfs.Client_agent.Server.writes_received server,
    Pfs.Client_agent.Server.disk_writes server,
    Pfs.Client_agent.Server.writes_cancelled server,
    Pfs.Log.garbage_bytes_created log,
    Workloads.Baker.short_lived_fraction gen )

let run ?(quick = false) () =
  let duration = if quick then Sim.Time.sec 120 else Sim.Time.sec 600 in
  let row label ~write_delay =
    let received, to_disk, cancelled, garbage, _short =
      scenario ~write_delay ~duration
    in
    [
      label;
      string_of_int received;
      string_of_int to_disk;
      string_of_int cancelled;
      Printf.sprintf "%.1f MB" (Float.of_int garbage /. 1e6);
    ]
  in
  let rows =
    [
      row "write-through (0s)" ~write_delay:Sim.Time.zero;
      row "write-behind 30s" ~write_delay:(Sim.Time.sec 30);
    ]
  in
  Table.make ~id:"E10"
    ~title:"Write-behind against the 30-second file lifetime wall"
    ~claim:
      "70% of files die within 30 seconds, so delaying disk writes saves \
       most disk operations, and the surviving data is stable enough that \
       garbage accrues far more slowly."
    ~columns:
      [ "server policy"; "writes received"; "disk writes"; "cancelled"; "log garbage" ]
    ~notes:
      [
        "Identical Baker-style traffic (5 creations/s, 70% short-lived) on \
         both rows; client agents hold copies, so the delay costs no \
         durability under single failures (E12).";
      ]
    rows
