(** E7 — naming and invocation costs (paper §4).

    "Name resolution should, therefore, be most efficient for local
    names.  This implies that local names should be shortest..."  The
    invocation ladder: procedure call / protected call / RPC, with the
    maillon imposing "very little overhead" in the common case. *)

val run : ?quick:bool -> unit -> Table.t
