(* Three sweeps:
   - one disk, alternating between the log head and a reader region
     (worst realistic seek pattern), I/O unit swept: seek overhead and
     achieved rate;
   - striped writes across 1..4 data disks (+ parity);
   - the same array serving a client across the 100 Mbit/s ATM network:
     the network becomes the bottleneck at ~10 MB/s. *)

let single_disk_rate ~unit_bytes ~ops =
  let e = Sim.Engine.create () in
  let d = Pfs.Disk.create e ~name:"d" () in
  for i = 0 to ops - 1 do
    let off =
      if i mod 2 = 0 then i / 2 * unit_bytes
      else 1_000_000_000 + (i / 2 * unit_bytes)
    in
    Pfs.Disk.write d ~off ~len:unit_bytes ~k:(fun _ -> ())
  done;
  Sim.Engine.run e;
  let busy = Sim.Time.to_sec_f (Pfs.Disk.busy_time d) in
  let rate = Float.of_int (Pfs.Disk.bytes_written d) /. busy /. 1e6 in
  let overhead = Sim.Time.to_sec_f (Pfs.Disk.seek_time d) /. busy *. 100.0 in
  (rate, overhead)

let striped_rate ~data_disks ~segments =
  let e = Sim.Engine.create () in
  let raid = Pfs.Raid.create e ~data_disks ~segment_bytes:1_048_576 () in
  let t0 = Sim.Engine.now e in
  let finished = ref Sim.Time.zero in
  let rec go n =
    if n < segments then
      Pfs.Raid.write_segment raid ~seg:n (fun _ ->
          finished := Sim.Engine.now e;
          go (n + 1))
  in
  go 0;
  Sim.Engine.run e;
  Float.of_int (segments * 1_048_576)
  /. Sim.Time.to_sec_f (Sim.Time.sub !finished t0)
  /. 1e6

(* Stream segments from the array to a client over one 100 Mbit/s
   link: read segment n+1 while shipping segment n. *)
let networked_rate ~segments =
  let e = Sim.Engine.create () in
  let net = Atm.Net.create e in
  let server = Atm.Net.add_host net ~name:"pfs" in
  let client = Atm.Net.add_host net ~name:"ws" in
  Atm.Net.connect net server client;
  let received = ref 0 in
  let finished = ref Sim.Time.zero in
  let vc =
    Atm.Net.open_vc net ~src:server ~dst:client
      ~rx:
        (Atm.Net.frame_rx
           ~rx:(fun payload ->
             received := !received + Bytes.length payload;
             finished := Sim.Engine.now e)
           ())
  in
  let raid = Pfs.Raid.create e ~segment_bytes:1_048_576 () in
  let chunk = 8192 in
  let frames_per_seg = 1_048_576 / chunk in
  (* Ship each segment as paced 8KB AAL5 frames (the server's network
     interface naturally clocks them out at line rate) and overlap the
     next segment's disk read with the transmission. *)
  let cells_per_frame = Atm.Aal5.frame_cells chunk in
  let frame_time =
    Sim.Time.mul (Atm.Cell.tx_time ~bandwidth_bps:100_000_000) cells_per_frame
  in
  let ship_free = ref Sim.Time.zero in
  let rec pump n =
    if n < segments then
      Pfs.Raid.read_segment raid ~seg:n ~k:(fun _ ->
          (* Ship this segment as soon as the line is free, and start
             the next disk read immediately — reads overlap shipping. *)
          let start = Sim.Time.max (Sim.Engine.now e) !ship_free in
          for i = 0 to frames_per_seg - 1 do
            ignore
              (Sim.Engine.schedule_at e
                 ~at:(Sim.Time.add start (Sim.Time.mul frame_time i))
                 (fun () -> Atm.Net.send_frame vc (Bytes.create chunk)))
          done;
          ship_free := Sim.Time.add start (Sim.Time.mul frame_time frames_per_seg);
          pump (n + 1))
  in
  pump 0;
  Sim.Engine.run e;
  Float.of_int !received /. Sim.Time.to_sec_f !finished /. 1e6

let run ?(quick = false) () =
  let ops = if quick then 10 else 40 in
  let segments = if quick then 8 else 40 in
  let unit_rows =
    List.map
      (fun unit_bytes ->
        let rate, overhead = single_disk_rate ~unit_bytes ~ops in
        [
          Printf.sprintf "1 disk, %dKB units" (unit_bytes / 1024);
          Printf.sprintf "%.2f MB/s" rate;
          Printf.sprintf "%.1f%%" overhead;
        ])
      [ 65_536; 262_144; 1_048_576; 4_194_304 ]
  in
  let stripe_rows =
    List.map
      (fun n ->
        [
          Printf.sprintf "%d-wide stripe + parity, 1MB segments" n;
          Printf.sprintf "%.2f MB/s" (striped_rate ~data_disks:n ~segments);
          "-";
        ])
      [ 1; 2; 4 ]
  in
  let net_row =
    [
      "4-wide stripe read over 100 Mbit/s ATM";
      Printf.sprintf "%.2f MB/s" (networked_rate ~segments);
      "-";
    ]
  in
  Table.make ~id:"E8" ~title:"Disk, stripe and network throughput"
    ~claim:
      "Whole-segment transfers keep seek overhead under 10% and at least 5 \
       MB/s per disk; four-way striping makes 20 MB/s possible; the 100 \
       Mbit/s ATM network caps delivery just over 10 MB/s."
    ~columns:[ "configuration"; "throughput"; "seek overhead" ]
    ~notes:
      [
        "Single-disk pattern alternates between two distant regions (log \
         head vs reader), so every operation pays a full seek — the unit \
         size is what buys the seeks back.";
      ]
    (unit_rows @ stripe_rows @ [ net_row ])
