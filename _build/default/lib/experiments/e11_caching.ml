(* A 64 MB LRU block cache (4 KB blocks) sees three workloads:
   - Zipf-reused normal file traffic (what caches are for);
   - a 512 MB video watched twice, through the cache;
   - the same mix, but with the video bypassing the cache as the
     continuous service stack does — showing the file hit rate
     restored. *)

let block_bytes = 4096
let cache_blocks = 64 * 1024 * 1024 / block_bytes

let zipf_accesses = 200_000
let zipf_files = 2000
let blocks_per_file = 8

let normal_traffic rng cache n =
  for _ = 1 to n do
    let f = Sim.Rng.zipf rng ~n:zipf_files ~s:1.1 in
    let b = Sim.Rng.int rng blocks_per_file in
    ignore (Pfs.Cache.access cache ~fid:f ~block:b)
  done

let video_pass cache ~fid ~video_blocks =
  for b = 0 to video_blocks - 1 do
    ignore (Pfs.Cache.access cache ~fid ~block:b)
  done

let hit_rate hits misses =
  let total = hits + misses in
  if total = 0 then 0.0 else 100.0 *. Float.of_int hits /. Float.of_int total

let run ?(quick = false) () =
  let n = if quick then zipf_accesses / 10 else zipf_accesses in
  let video_blocks = 512 * 1024 * 1024 / block_bytes in
  let video_blocks = if quick then video_blocks / 4 else video_blocks in
  (* Scenario A: files only. *)
  let rng = Sim.Rng.create ~seed:5L () in
  let cache_a = Pfs.Cache.create ~capacity_blocks:cache_blocks () in
  normal_traffic rng cache_a n;
  let files_only = hit_rate (Pfs.Cache.hits cache_a) (Pfs.Cache.misses cache_a) in
  (* Scenario B: video through the cache, twice, interleaved with files. *)
  let rng = Sim.Rng.create ~seed:5L () in
  let cache_b = Pfs.Cache.create ~capacity_blocks:cache_blocks () in
  let video_fid = 999_999 in
  normal_traffic rng cache_b (n / 2);
  let before_hits = Pfs.Cache.hits cache_b
  and before_misses = Pfs.Cache.misses cache_b in
  video_pass cache_b ~fid:video_fid ~video_blocks;
  video_pass cache_b ~fid:video_fid ~video_blocks;
  let mid_hits = Pfs.Cache.hits cache_b and mid_misses = Pfs.Cache.misses cache_b in
  let video_hit =
    hit_rate (mid_hits - before_hits) (mid_misses - before_misses)
  in
  normal_traffic rng cache_b (n / 2);
  let files_after_video =
    hit_rate (Pfs.Cache.hits cache_b - mid_hits)
      (Pfs.Cache.misses cache_b - mid_misses)
  in
  (* Scenario C: same mix, video bypasses the cache. *)
  let rng = Sim.Rng.create ~seed:5L () in
  let cache_c = Pfs.Cache.create ~capacity_blocks:cache_blocks () in
  normal_traffic rng cache_c (n / 2);
  (* the video is served by the continuous stack: no cache traffic *)
  let mid_hits_c = Pfs.Cache.hits cache_c and mid_misses_c = Pfs.Cache.misses cache_c in
  normal_traffic rng cache_c (n / 2);
  let files_with_bypass =
    hit_rate (Pfs.Cache.hits cache_c - mid_hits_c)
      (Pfs.Cache.misses cache_c - mid_misses_c)
  in
  Table.make ~id:"E11" ~title:"LRU caching: files win, streams lose"
    ~claim:
      "Caching cannot raise a stream's guaranteed rate and an LRU cache \
       evicts a long video before it is replayed — while ordinary file \
       traffic caches beautifully; hence the split service stacks."
    ~columns:[ "workload"; "cache hit rate" ]
    ~notes:
      [
        "64 MB cache, 4 KB blocks.  The video is 512 MB watched twice: its \
         second pass finds every block already evicted, and its passage has \
         also flushed the file working set (third row).  Routing the video \
         through the continuous stack (no cache) restores the file hit rate \
         without hurting the video, whose rate is guaranteed by admission \
         control, not by memory.";
      ]
    [
      [ "zipf file traffic, no video"; Printf.sprintf "%.1f%%" files_only ];
      [ "video through cache (2 passes)"; Printf.sprintf "%.1f%%" video_hit ];
      [
        "file traffic just after the video";
        Printf.sprintf "%.1f%%" files_after_video;
      ];
      [
        "file traffic, video bypassing cache";
        Printf.sprintf "%.1f%%" files_with_bypass;
      ];
    ]
