(** Result tables for the paper-claim experiments.

    Every experiment produces one of these; the bench binary and the
    CLI print them, and EXPERIMENTS.md records them. *)

type t = {
  id : string;  (** e.g. "E1" *)
  title : string;
  claim : string;  (** the paper's words being checked *)
  columns : string list;
  rows : string list list;
  notes : string list;
}

val make :
  id:string ->
  title:string ->
  claim:string ->
  columns:string list ->
  ?notes:string list ->
  string list list ->
  t

val pp : Format.formatter -> t -> unit
(** Aligned, boxed rendering. *)

val cell_f : float -> string
(** Format a float compactly (3 significant-ish digits). *)

val cell_time_us : float -> string
(** Format a microsecond quantity with an adaptive unit. *)
