(* Two real-time domains consume ~40% of the CPU inside their
   guarantees.  Three best-effort domains with deliberately unequal
   (tiny) guaranteed shares ask for extra time.  The slack policy
   decides how the remaining ~60% is divided. *)

let scenario ~slack ~duration =
  let e = Sim.Engine.create () in
  let k =
    Nemesis.Kernel.create e ~policy:(Nemesis.Policy.atropos ~slack ()) ()
  in
  let rt1 =
    Nemesis.Domain.create ~name:"video" ~period:(Sim.Time.ms 40)
      ~slice:(Sim.Time.ms 14) ~extra:false ()
  in
  let rt2 =
    Nemesis.Domain.create ~name:"audio" ~period:(Sim.Time.ms 10)
      ~slice:(Sim.Time.ms 1) ~extra:false ()
  in
  let batch =
    List.map
      (fun (name, slice) ->
        Nemesis.Domain.create ~name ~period:(Sim.Time.ms 100)
          ~slice:(Sim.Time.ms slice) ~extra:true ())
      [ ("batch-a", 1); ("batch-b", 2); ("batch-c", 4) ]
  in
  List.iter (Nemesis.Kernel.add_domain k) (rt1 :: rt2 :: batch);
  Sim.Engine.every ~daemon:true e ~period:(Sim.Time.ms 40) (fun () ->
      Nemesis.Kernel.submit k rt1
        (Nemesis.Job.make ~label:"frame" ~work:(Sim.Time.ms 12)
           ~deadline:(Sim.Time.add (Sim.Engine.now e) (Sim.Time.ms 40))
           ~created:(Sim.Engine.now e) ());
      true);
  Sim.Engine.every ~daemon:true e ~period:(Sim.Time.ms 10) (fun () ->
      Nemesis.Kernel.submit k rt2
        (Nemesis.Job.make ~label:"buffer" ~work:(Sim.Time.us 800)
           ~deadline:(Sim.Time.add (Sim.Engine.now e) (Sim.Time.ms 10))
           ~created:(Sim.Engine.now e) ());
      true);
  List.iter
    (fun d ->
      Nemesis.Kernel.submit k d
        (Nemesis.Job.make ~label:"churn" ~work:(Sim.Time.sec 3600)
           ~created:Sim.Time.zero ()))
    batch;
  Sim.Engine.run e ~until:duration;
  let pct d =
    100.0
    *. Sim.Time.to_sec_f (Nemesis.Domain.cpu_used d)
    /. Sim.Time.to_sec_f duration
  in
  let rt_misses =
    Nemesis.Domain.deadline_misses rt1 + Nemesis.Domain.deadline_misses rt2
  in
  (List.map pct batch, pct rt1 +. pct rt2, rt_misses,
   100.0 *. Sim.Time.to_sec_f (Nemesis.Kernel.idle_time k)
   /. Sim.Time.to_sec_f duration)

let run ?(quick = false) () =
  let duration = if quick then Sim.Time.sec 2 else Sim.Time.sec 10 in
  let row label slack =
    let batch_pcts, rt_pct, rt_misses, idle = scenario ~slack ~duration in
    [
      label;
      (match batch_pcts with
      | [ a; b; c ] -> Printf.sprintf "%.1f / %.1f / %.1f %%" a b c
      | _ -> "-");
      Printf.sprintf "%.1f%%" rt_pct;
      string_of_int rt_misses;
      Printf.sprintf "%.1f%%" idle;
    ]
  in
  Table.make ~id:"A1" ~title:"Ablation: sharing out the slack"
    ~claim:
      "The policy for sharing out remaining resources is 'still the subject \
       of investigation' — so investigate: round-robin equalises, \
       proportional follows the guaranteed shares, and no-slack wastes the \
       machine, all without disturbing the guarantees."
    ~columns:
      [
        "slack policy";
        "batch a/b/c CPU (shares 1:2:4)";
        "RT CPU";
        "RT misses";
        "idle";
      ]
    [
      row "round robin" `Round_robin;
      row "proportional to share" `Proportional;
      row "none (idle instead)" `None;
    ]
