(** E2 — stream bandwidths and audio jitter (paper §2).

    "Using frame-by-frame compression, for instance with JPEG, a video
    stream requires no more than a megabyte per second."  "Audio has
    modest bandwidth requirements compared to video, but is much more
    susceptible to jitter." *)

val run : ?quick:bool -> unit -> Table.t
