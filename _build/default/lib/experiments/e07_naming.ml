(* Resolution costs come from the namespace cost model; the remote RPC
   figure is measured live on the simulated ATM network so that the
   Remote relation uses an honest round-trip time. *)

let measured_rpc_rtt () =
  let e = Sim.Engine.create () in
  let net = Atm.Net.create e in
  let sw = Atm.Net.add_switch net ~name:"sw" ~ports:4 in
  let a = Atm.Net.add_host net ~name:"a" in
  let b = Atm.Net.add_host net ~name:"b" in
  Atm.Net.connect net a sw;
  Atm.Net.connect net b sw;
  let client = Rpc.endpoint net ~host:a in
  let server = Rpc.endpoint net ~host:b in
  Rpc.serve server ~iface:"ns" (fun ~meth:_ _ -> Ok Bytes.empty);
  let conn = Rpc.connect net ~client ~server () in
  let rtts = Sim.Stats.Samples.create () in
  let rec call n =
    if n > 0 then begin
      let t0 = Sim.Engine.now e in
      Rpc.call conn ~iface:"ns" ~meth:"lookup" (Bytes.create 32)
        ~reply:(fun _ ->
          Sim.Stats.Samples.add rtts
            (Sim.Time.to_us_f (Sim.Time.sub (Sim.Engine.now e) t0));
          call (n - 1))
    end
  in
  call 20;
  Sim.Engine.run e;
  Sim.Time.of_sec_f (Sim.Stats.Samples.mean rtts /. 1e6)

(* Measure the protected call live: a client domain invoking a server
   domain through the shared-memory queue + sync event pair. *)
let measured_protected_call () =
  let e = Sim.Engine.create () in
  let k =
    Nemesis.Kernel.create e ~policy:(Nemesis.Policy.atropos ())
      ~ctx_switch_cost:(Sim.Time.us 2) ()
  in
  let client =
    Nemesis.Domain.create ~name:"client" ~period:(Sim.Time.ms 10)
      ~slice:(Sim.Time.ms 4) ()
  in
  let srv_dom =
    Nemesis.Domain.create ~name:"server" ~period:(Sim.Time.ms 10)
      ~slice:(Sim.Time.ms 4) ()
  in
  Nemesis.Kernel.add_domain k client;
  Nemesis.Kernel.add_domain k srv_dom;
  let server = Nemesis.Ipc.serve k ~domain:srv_dom (fun ~meth:_ p -> p) in
  let conn = Nemesis.Ipc.connect k ~client server in
  let rtts = Sim.Stats.Samples.create () in
  let remaining = ref 50 in
  let rec once () =
    if !remaining > 0 then begin
      decr remaining;
      let t0 = Sim.Engine.now e in
      Nemesis.Ipc.call conn ~meth:"null" Bytes.empty ~reply:(fun _ ->
          Sim.Stats.Samples.add rtts
            (Sim.Time.to_us_f (Sim.Time.sub (Sim.Engine.now e) t0));
          once ())
    end
  in
  Nemesis.Kernel.submit k client
    (Nemesis.Job.make ~label:"driver" ~work:(Sim.Time.us 5)
       ~created:Sim.Time.zero
       ~on_complete:once ());
  Sim.Engine.run e ~until:(Sim.Time.sec 5);
  Sim.Stats.Samples.percentile rtts 50.0

let obj name =
  Naming.Maillon.of_iface ~reference:name
    (Naming.Maillon.iface [ ("ping", fun b -> b) ])

let resolution_cost ns path =
  match Naming.Namespace.resolve ns path with
  | Ok r -> Sim.Time.to_us_f r.Naming.Namespace.cost
  | Error _ -> Float.nan

let run ?(quick = false) () =
  ignore quick;
  let rtt = measured_rpc_rtt () in
  (* A local namespace, a same-machine service, and two remote hops. *)
  let local = Naming.Namespace.create ~name:"local" () in
  let machine_svc = Naming.Namespace.create ~name:"machine" () in
  let remote_fs = Naming.Namespace.create ~name:"fs" () in
  let far = Naming.Namespace.create ~name:"far" () in
  Naming.Namespace.bind local ~path:"obj" (obj "local-shallow");
  Naming.Namespace.bind local ~path:"a/b/c/obj" (obj "local-deep");
  Naming.Namespace.bind machine_svc ~path:"obj" (obj "svc-obj");
  Naming.Namespace.bind remote_fs ~path:"media/film" (obj "film");
  Naming.Namespace.bind far ~path:"obj" (obj "far-obj");
  Naming.Namespace.mount local ~path:"svc" ~target:machine_svc
    ~via:Naming.Relation.Same_machine;
  Naming.Namespace.mount local ~path:"fs" ~target:remote_fs
    ~via:(Naming.Relation.Remote rtt);
  Naming.Namespace.mount remote_fs ~path:"far" ~target:far
    ~via:(Naming.Relation.Remote rtt);
  let resolution_rows =
    List.map
      (fun (label, path) ->
        [ "resolve " ^ label; path; Table.cell_time_us (resolution_cost local path) ])
      [
        ("local, depth 1", "obj");
        ("local, depth 4", "a/b/c/obj");
        ("same machine mount", "svc/obj");
        ("remote mount", "fs/media/film");
        ("two remote mounts", "fs/far/obj");
      ]
  in
  let call_rows =
    let us t = Table.cell_time_us (Sim.Time.to_us_f t) in
    [
      [
        "invoke, same domain";
        "procedure call";
        us (Naming.Relation.invocation_cost Naming.Relation.Same_domain);
      ];
      [
        "invoke via maillon (resolved)";
        "pointer + indirection";
        us
          (Sim.Time.add
             (Naming.Relation.invocation_cost Naming.Relation.Same_domain)
             Naming.Relation.maillon_overhead);
      ];
      [
        "invoke, same machine";
        "protected call (model)";
        us (Naming.Relation.invocation_cost Naming.Relation.Same_machine);
      ];
      [
        "invoke, same machine";
        "protected call (measured IPC)";
        Table.cell_time_us (measured_protected_call ());
      ];
      [
        "invoke, remote";
        "RPC over ATM (measured)";
        us (Naming.Relation.invocation_cost (Naming.Relation.Remote rtt));
      ];
    ]
  in
  Table.make ~id:"E7" ~title:"Name resolution and the invocation ladder"
    ~claim:
      "Local names are shortest and resolve fastest; invocation is a \
       procedure call, a protected call or an RPC depending on the domain \
       relation, with the maillon adding very little in the common case."
    ~columns:[ "operation"; "path / mechanism"; "cost" ]
    ~notes:
      [
        Format.asprintf
          "The remote lookup figure uses the RPC round-trip measured on the \
           simulated network: %a per hop."
          Sim.Time.pp rtt;
      ]
    (resolution_rows @ call_rows)
