(* One application domain sharing the CPU with a competitor: the app
   carries long decode jobs and a periodic urgent job with a tight
   deadline.  An Informed domain re-enters its user-level scheduler at
   every activation and runs EDF over its threads; an Opaque domain is
   resumed where it was preempted, like a suspended Unix process, so
   the urgent thread waits behind the decode. *)

let scenario ~mode ~urgent_period ~duration =
  let e = Sim.Engine.create () in
  let k = Nemesis.Kernel.create e ~policy:(Nemesis.Policy.atropos ()) () in
  let app =
    Nemesis.Domain.create ~name:"app" ~mode ~period:(Sim.Time.ms 10)
      ~slice:(Sim.Time.ms 5) ~extra:false ()
  in
  let other =
    Nemesis.Domain.create ~name:"other" ~period:(Sim.Time.ms 10)
      ~slice:(Sim.Time.ms 4) ~extra:false ()
  in
  Nemesis.Kernel.add_domain k app;
  Nemesis.Kernel.add_domain k other;
  Nemesis.Kernel.submit k other
    (Nemesis.Job.make ~label:"competitor" ~work:(Sim.Time.sec 3600)
       ~created:Sim.Time.zero ());
  (* A stream of long best-effort decodes keeps the app busy... *)
  Sim.Engine.every ~daemon:true e ~period:(Sim.Time.ms 50) (fun () ->
      Nemesis.Kernel.submit k app
        (Nemesis.Job.make ~label:"decode" ~work:(Sim.Time.ms 20)
           ~created:(Sim.Engine.now e) ());
      true);
  (* ...while small urgent jobs arrive with tight deadlines. *)
  let urgent_latency = Sim.Stats.Samples.create () in
  Sim.Engine.every ~daemon:true e ~period:urgent_period (fun () ->
      let created = Sim.Engine.now e in
      Nemesis.Kernel.submit k app
        (Nemesis.Job.make ~label:"urgent" ~work:(Sim.Time.us 500)
           ~deadline:(Sim.Time.add created (Sim.Time.ms 10))
           ~on_complete:(fun () ->
             Sim.Stats.Samples.add urgent_latency
               (Sim.Time.to_us_f (Sim.Time.sub (Sim.Engine.now e) created)))
           ~created ());
      true);
  Sim.Engine.run e ~until:duration;
  let misses = Nemesis.Domain.deadline_misses app in
  let urgent_count = Sim.Stats.Samples.count urgent_latency in
  let p95 =
    if urgent_count = 0 then 0.0
    else Sim.Stats.Samples.percentile urgent_latency 95.0
  in
  (misses, urgent_count, p95, Nemesis.Domain.activations app)

let run ?(quick = false) () =
  let duration = if quick then Sim.Time.sec 2 else Sim.Time.sec 10 in
  let case label mode =
    let misses, count, p95, activations =
      scenario ~mode ~urgent_period:(Sim.Time.ms 25) ~duration
    in
    [
      label;
      string_of_int misses;
      string_of_int count;
      Table.cell_time_us p95;
      string_of_int activations;
    ]
  in
  Table.make ~id:"E4" ~title:"Scheduler activations vs transparent resumption"
    ~claim:
      "Telling the domain when it has the processor lets its user-level \
       scheduler run the urgent thread first; transparently resumed domains \
       finish whatever was preempted."
    ~columns:
      [
        "thread scheduling";
        "deadline misses";
        "urgent jobs";
        "urgent p95 latency";
        "activations";
      ]
    ~notes:
      [
        "Identical workload: a 20ms decode every 50ms plus a 0.5ms urgent job \
         every 25ms with a 10ms deadline, against a competing domain that \
         forces preemptions.";
      ]
    [
      case "informed (activation upcall)" Nemesis.Domain.Informed;
      case "opaque (resume where preempted)" Nemesis.Domain.Opaque;
    ]
