(* Hold the churn constant (a fixed number of deleted files) while the
   file system grows, and compare what each cleaner has to examine and
   how long the pass takes.  The Pegasus cleaner reads the garbage
   file; the Sprite cleaner reads the whole segment usage table. *)

let seg_bytes = 262_144
let file_bytes = 131_072
let churn_files = 16

let build_fs e ~files =
  let raid = Pfs.Raid.create e ~segment_bytes:seg_bytes () in
  let log = Pfs.Log.create e ~raid () in
  let fids = Array.init files (fun _ -> Pfs.Log.create_file log ()) in
  Array.iter
    (fun fid -> Pfs.Log.write log fid ~off:0 ~len:file_bytes (fun _ -> ()))
    fids;
  Pfs.Log.sync log ~k:(fun _ -> ());
  Sim.Engine.run e;
  (* Absorb population garbage so only churn remains measurable. *)
  Pfs.Cleaner.run log (fun _ -> ());
  Sim.Engine.run e;
  Pfs.Log.sync log ~k:(fun _ -> ());
  Sim.Engine.run e;
  (* Fixed churn, spread across the file population. *)
  for i = 0 to churn_files - 1 do
    Pfs.Log.delete log fids.(i * (files / churn_files)) ~k:(fun _ -> ())
  done;
  Sim.Engine.run e;
  log

let clean which log k =
  match which with
  | `Pegasus -> Pfs.Cleaner.run log k
  | `Sprite -> Pfs.Cleaner_sprite.run log k

let measure which ~files =
  let e = Sim.Engine.create () in
  let log = build_fs e ~files in
  let out = ref None in
  clean which log (fun s -> out := Some s);
  Sim.Engine.run e;
  match !out with Some s -> (s, Pfs.Log.total_segments log) | None -> assert false

let run ?(quick = false) () =
  let sizes = if quick then [ 64; 256 ] else [ 64; 256; 1024; 4096 ] in
  let rows =
    List.concat_map
      (fun files ->
        let mb = files * file_bytes / 1_048_576 in
        let row which label =
          let s, total = measure which ~files in
          [
            Printf.sprintf "%4d MB (%d segs)" mb total;
            label;
            string_of_int
              (Stdlib.max s.Pfs.Cleaner.entries_processed
                 s.Pfs.Cleaner.table_entries_scanned);
            Format.asprintf "%a" Sim.Time.pp s.Pfs.Cleaner.scan_cost;
            Format.asprintf "%a" Sim.Time.pp s.Pfs.Cleaner.duration;
            string_of_int s.Pfs.Cleaner.segments_cleaned;
            Printf.sprintf "%.1f MB"
              (Float.of_int s.Pfs.Cleaner.bytes_reclaimed /. 1e6);
          ]
        in
        [ row `Pegasus "pegasus"; row `Sprite "sprite" ])
      sizes
  in
  Table.make ~id:"E9" ~title:"Cleaning cost as the file system grows"
    ~claim:
      "The garbage-file cleaner's complexity depends only on the number of \
       segments to be cleaned and the amount of garbage; a usage-table scan \
       grows with the size of the file system."
    ~columns:
      [
        "file system";
        "cleaner";
        "entries examined";
        "selection cost";
        "pass duration";
        "segs cleaned";
        "reclaimed";
      ]
    ~notes:
      [
        Printf.sprintf
          "Churn is fixed at %d deleted files (%d KB each) regardless of \
           file-system size: pegasus rows stay flat, sprite rows grow with \
           the segment table.  Extrapolate the sprite selection column to \
           the paper's 10 TB (forty million 256 KB segments) and victim \
           selection alone costs ~40 s per pass; the garbage file still \
           costs only what the churn wrote in it."
          churn_files (file_bytes / 1024);
      ]
    rows
