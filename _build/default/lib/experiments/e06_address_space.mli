(** E6 — the single address space's costs and benefits (paper §3.1).

    Benefits: "the removal of virtual address aliases which can result
    in significant context switch costs with caches accessed by
    virtual address."  Cost: "the penalty of load-time relocation",
    amortised by "allocating the top 32 address bits of a 64 bit
    virtual address based on a 32-bit hash function of the code". *)

val run : ?quick:bool -> unit -> Table.t
