(** A1 (ablation) — policies for sharing out slack time (paper §3.3).

    "Within a given time frame, not all domains may use their
    allocation; the policy for sharing out remaining resources is
    still the subject of investigation."  This ablation runs the
    candidate policies the sentence invites. *)

val run : ?quick:bool -> unit -> Table.t
