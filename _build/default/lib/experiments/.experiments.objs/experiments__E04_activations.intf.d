lib/experiments/e04_activations.mli: Table
