lib/experiments/e03_scheduling.mli: Table
