lib/experiments/e12_failures.ml: Pfs Sim Table
