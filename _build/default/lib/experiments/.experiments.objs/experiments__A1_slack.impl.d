lib/experiments/a1_slack.ml: List Nemesis Printf Sim Table
