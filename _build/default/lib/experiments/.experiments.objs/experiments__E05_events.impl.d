lib/experiments/e05_events.ml: Array List Nemesis Printf Sim Table
