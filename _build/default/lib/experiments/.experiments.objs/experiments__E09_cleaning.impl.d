lib/experiments/e09_cleaning.ml: Array Float Format List Pfs Printf Sim Stdlib Table
