lib/experiments/e11_caching.mli: Table
