lib/experiments/e12_failures.mli: Table
