lib/experiments/e03_scheduling.ml: Float Int64 List Nemesis Printf Sim Stdlib Table
