lib/experiments/e05_events.mli: Table
