lib/experiments/a1_slack.mli: Table
