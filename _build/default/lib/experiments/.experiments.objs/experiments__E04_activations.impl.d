lib/experiments/e04_activations.ml: Nemesis Sim Table
