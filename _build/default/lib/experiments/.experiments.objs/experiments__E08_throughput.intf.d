lib/experiments/e08_throughput.mli: Table
