lib/experiments/e08_throughput.ml: Atm Bytes Float List Pfs Printf Sim Table
