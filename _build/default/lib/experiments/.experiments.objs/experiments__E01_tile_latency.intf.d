lib/experiments/e01_tile_latency.mli: Table
