lib/experiments/e10_delayed_writes.ml: Float Hashtbl Pfs Printf Sim Table Workloads
