lib/experiments/e07_naming.ml: Atm Bytes Float Format List Naming Nemesis Rpc Sim Table
