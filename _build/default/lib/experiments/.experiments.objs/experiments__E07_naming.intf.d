lib/experiments/e07_naming.mli: Table
