lib/experiments/e01_tile_latency.ml: Atm List Sim Table
