lib/experiments/e11_caching.ml: Float Pfs Printf Sim Table
