lib/experiments/e02_bandwidth_jitter.ml: Atm Printf Sim Table
