lib/experiments/e06_address_space.ml: Float Format Nemesis Printf Sim Table
