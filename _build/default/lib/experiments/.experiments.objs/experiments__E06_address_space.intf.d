lib/experiments/e06_address_space.mli: Table
