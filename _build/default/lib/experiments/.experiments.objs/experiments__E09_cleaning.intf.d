lib/experiments/e09_cleaning.mli: Table
