lib/experiments/e10_delayed_writes.mli: Table
