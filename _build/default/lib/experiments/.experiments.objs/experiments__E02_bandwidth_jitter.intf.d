lib/experiments/e02_bandwidth_jitter.mli: Table
