(** E1 — tile-grained vs frame-grained video transport (paper §2.1).

    "The use of tiles for video reduces latency in several places from
    a 'frame time' (33 or 40 ms) to a 'tile time' (30 to 40 us)." *)

val run : ?quick:bool -> unit -> Table.t
