(** E11 — caching helps files, hurts streams (paper §5).

    "In contrast, caching video and audio is usually not a good idea...
    Most video sequences and many audio sequences are larger than the
    cache, so, by the time a user has seen ... a video to the end, the
    beginning has already been evicted from the (LRU) cache." *)

val run : ?quick:bool -> unit -> Table.t
