(* Two microbenchmarks on the same kernel:

   1. Client/server ping-pong.  The client signals the server and has
      background work of its own.  Synchronous signalling hands the
      processor over immediately; asynchronous signalling lets the
      client's window run on, so the server waits.

   2. Packet demultiplexing.  A device interrupt stream feeds a demux
      domain that forwards each packet to a receiver domain.  Here the
      synchronous form bounces the processor on every packet (paying a
      context switch each way) while the asynchronous form drains whole
      batches per window. *)

let job e ?deadline ?on_complete ~label ~work () =
  Nemesis.Job.make ~label ~work ?deadline ?on_complete
    ~created:(Sim.Engine.now e) ()

let pingpong ~mode ~rounds =
  let e = Sim.Engine.create () in
  let k = Nemesis.Kernel.create e ~policy:(Nemesis.Policy.atropos ()) () in
  let client =
    Nemesis.Domain.create ~name:"client" ~period:(Sim.Time.ms 10)
      ~slice:(Sim.Time.ms 5) ()
  in
  let server =
    Nemesis.Domain.create ~name:"server" ~period:(Sim.Time.ms 10)
      ~slice:(Sim.Time.ms 4) ()
  in
  Nemesis.Kernel.add_domain k client;
  Nemesis.Kernel.add_domain k server;
  let latency = Sim.Stats.Samples.create () in
  let remaining = ref rounds in
  let sent_at = ref Sim.Time.zero in
  let send_request = ref (fun () -> ()) in
  let to_client = ref None and to_server = ref None in
  let chan r = match !r with Some c -> c | None -> assert false in
  to_client :=
    Some
      (Nemesis.Kernel.channel k ~dst:client ~mode
         ~closure:(fun () ->
           let deadline = Sim.Time.add (Sim.Engine.now e) (Sim.Time.ms 1) in
           Some
             (job e ~label:"take-reply" ~work:(Sim.Time.us 10) ~deadline
                ~on_complete:(fun () ->
                  Sim.Stats.Samples.add latency
                    (Sim.Time.to_us_f (Sim.Time.sub (Sim.Engine.now e) !sent_at));
                  !send_request ())
                ()))
         ());
  to_server :=
    Some
      (Nemesis.Kernel.channel k ~dst:server ~mode
         ~closure:(fun () ->
           let deadline = Sim.Time.add (Sim.Engine.now e) (Sim.Time.ms 1) in
           Some
             (job e ~label:"serve" ~work:(Sim.Time.us 50) ~deadline
                ~on_complete:(fun () -> Nemesis.Kernel.send k (chan to_client))
                ()))
         ());
  (send_request :=
     fun () ->
       if !remaining > 0 then begin
         decr remaining;
         sent_at := Sim.Engine.now e;
         Nemesis.Kernel.send k (chan to_server);
         (* The client always has background work filling its window —
            this is what the async form keeps running. *)
         Nemesis.Kernel.submit k client
           (job e ~label:"background" ~work:(Sim.Time.ms 2) ())
       end);
  (* Kick things off from within the client's own execution. *)
  Nemesis.Kernel.submit k client
    (job e ~label:"start" ~work:(Sim.Time.us 10)
       ~on_complete:(fun () -> !send_request ())
       ());
  Sim.Engine.run e ~until:(Sim.Time.sec 30);
  latency

let demux ~mode ~packets ~receivers =
  let e = Sim.Engine.create () in
  let k = Nemesis.Kernel.create e ~policy:(Nemesis.Policy.atropos ()) () in
  let demux_dom =
    Nemesis.Domain.create ~name:"demux" ~period:(Sim.Time.ms 10)
      ~slice:(Sim.Time.ms 5) ()
  in
  Nemesis.Kernel.add_domain k demux_dom;
  let rx_doms =
    List.init receivers (fun i ->
        let d =
          Nemesis.Domain.create
            ~name:(Printf.sprintf "rx%d" i)
            ~period:(Sim.Time.ms 10) ~slice:(Sim.Time.ms 1) ()
        in
        Nemesis.Kernel.add_domain k d;
        d)
  in
  let processed = ref 0 in
  let finished_at = ref Sim.Time.zero in
  let rx_chans =
    List.map
      (fun d ->
        Nemesis.Kernel.channel k ~dst:d ~mode
          ~closure:(fun () ->
            Some
              (job e ~label:"consume" ~work:(Sim.Time.us 30)
                 ~on_complete:(fun () ->
                   incr processed;
                   if !processed = packets then
                     finished_at := Sim.Engine.now e)
                 ()))
          ())
      rx_doms
  in
  let rx_arr = Array.of_list rx_chans in
  let next = ref 0 in
  let device =
    Nemesis.Kernel.channel k ~dst:demux_dom ~mode:`Async
      ~closure:(fun () ->
        Some
          (job e ~label:"demux" ~work:(Sim.Time.us 20)
             ~on_complete:(fun () ->
               let target = rx_arr.(!next mod Array.length rx_arr) in
               incr next;
               Nemesis.Kernel.send k target)
             ()))
      ()
  in
  for _ = 1 to packets do
    Nemesis.Kernel.interrupt k device
  done;
  Sim.Engine.run e ~until:(Sim.Time.sec 30);
  ( Sim.Time.to_ms_f !finished_at,
    Nemesis.Kernel.context_switches k,
    !processed )

let run ?(quick = false) () =
  let rounds = if quick then 50 else 400 in
  let packets = if quick then 200 else 2000 in
  let lat_sync = pingpong ~mode:`Sync ~rounds in
  let lat_async = pingpong ~mode:`Async ~rounds in
  let d_sync, sw_sync, done_sync = demux ~mode:`Sync ~packets ~receivers:4 in
  let d_async, sw_async, done_async = demux ~mode:`Async ~packets ~receivers:4 in
  let lat_row label samples =
    [
      "client/server RTT (" ^ label ^ ")";
      Table.cell_time_us (Sim.Stats.Samples.percentile samples 50.0);
      Table.cell_time_us (Sim.Stats.Samples.percentile samples 95.0);
      "-";
    ]
  in
  let demux_row label ms switches count =
    [
      Printf.sprintf "demux %d packets (%s)" count label;
      Table.cell_time_us (ms *. 1000.0);
      "-";
      string_of_int switches;
    ]
  in
  Table.make ~id:"E5" ~title:"Synchronous vs asynchronous event signalling"
    ~claim:
      "Lowest latency for a client/server interaction comes from the \
       synchronous form; a domain demultiplexing incoming packets is most \
       efficient with the asynchronous form."
    ~columns:[ "interaction"; "p50"; "p95"; "context switches" ]
    ~notes:
      [
        "Sync sends give the processor to the signalled domain for the rest \
         of the window; async sends leave the sender's 2ms of background \
         work running, which is exactly the round-trip penalty visible \
         above — and exactly the batching win below.";
      ]
    [
      lat_row "sync" lat_sync;
      lat_row "async" lat_async;
      demux_row "sync handoff" d_sync sw_sync done_sync;
      demux_row "async batch" d_async sw_async done_async;
    ]
