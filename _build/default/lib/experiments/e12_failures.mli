(** E12 — no data loss under single failures (paper §5).

    "The data is now safe under single-point failures: when the server
    crashes, the client agent ... waits for the crashed server to come
    back up; when the client machine crashes, the server will complete
    the write.  When there is a power failure, client and server will
    crash together ... the servers can either be equipped with
    battery-backed-up memory, or with an uninterruptible power
    supply." *)

val run : ?quick:bool -> unit -> Table.t
