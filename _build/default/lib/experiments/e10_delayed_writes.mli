(** E10 — delayed writes under Baker-style traffic (paper §5).

    "Baker et al. showed that 70% of files are deleted or overwritten
    within 30 seconds ... The data that does eventually get written to
    the log is reasonably stable, so garbage is created at a much
    lower rate." *)

val run : ?quick:bool -> unit -> Table.t
