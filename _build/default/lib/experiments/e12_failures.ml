(* A burst of acknowledged writes is in flight (inside the 30 s
   write-behind window) when the failure strikes.  The audit counts
   writes that were acknowledged to the application but can no longer
   be produced from any surviving copy. *)

type failure =
  | No_failure
  | Server_crash
  | Client_crash
  | Power_cut of { ups : bool; nvram : bool }

let scenario ~failure ~writes =
  let e = Sim.Engine.create () in
  let raid = Pfs.Raid.create e ~segment_bytes:262_144 () in
  let log = Pfs.Log.create e ~raid () in
  let ups, nvram =
    match failure with
    | Power_cut { ups; nvram } -> (ups, nvram)
    | _ -> (false, false)
  in
  let server =
    Pfs.Client_agent.Server.create e ~log ~write_delay:(Sim.Time.sec 30) ~ups
      ~nvram ()
  in
  let agent = Pfs.Client_agent.Agent.create e ~server () in
  let fid = Pfs.Client_agent.Server.create_file server in
  for i = 0 to writes - 1 do
    ignore
      (Sim.Engine.schedule e
         ~delay:(Sim.Time.ms (50 * i))
         (fun () ->
           ignore
             (Pfs.Client_agent.Agent.write agent ~fid ~off:(i * 8192) ~len:8192 ())))
  done;
  (* Strike mid-window, after all writes are acknowledged. *)
  let strike_at = Sim.Time.sec 10 in
  ignore
    (Sim.Engine.schedule_at e ~at:strike_at (fun () ->
         match failure with
         | No_failure -> ()
         | Server_crash ->
             Pfs.Client_agent.Server.crash server;
             (* detection, reboot, replay *)
             ignore
               (Sim.Engine.schedule e ~delay:(Sim.Time.sec 5) (fun () ->
                    Pfs.Client_agent.Server.recover server;
                    Pfs.Client_agent.Agent.replay agent))
         | Client_crash -> Pfs.Client_agent.Agent.crash agent
         | Power_cut { nvram; _ } ->
             Pfs.Client_agent.Server.crash server;
             Pfs.Client_agent.Agent.crash agent;
             (* Power comes back; an NVRAM server recovers its buffers. *)
             if nvram then
               ignore
                 (Sim.Engine.schedule e ~delay:(Sim.Time.sec 20) (fun () ->
                      Pfs.Client_agent.Server.recover server))));
  Sim.Engine.run e ~until:(Sim.Time.sec 120);
  Pfs.Client_agent.audit server

let run ?(quick = false) () =
  let writes = if quick then 20 else 100 in
  let row label failure =
    let a = scenario ~failure ~writes in
    [
      label;
      string_of_int a.Pfs.Client_agent.acknowledged;
      string_of_int a.Pfs.Client_agent.durable;
      string_of_int a.Pfs.Client_agent.recoverable;
      string_of_int a.Pfs.Client_agent.lost;
    ]
  in
  Table.make ~id:"E12" ~title:"Acknowledged data across injected failures"
    ~claim:
      "With the client agent keeping copies until the server has the data on \
       disk, no single failure loses acknowledged data; only a simultaneous \
       power failure can — unless the server has a UPS to flush its buffers \
       or battery-backed memory to carry them across."
    ~columns:[ "failure injected"; "acked"; "durable"; "recoverable"; "lost" ]
    ~notes:
      [
        "All writes are acknowledged before the failure strikes at t=10s, \
         squarely inside the 30s write-behind window.";
      ]
    [
      row "none" No_failure;
      row "server crash (+replay)" Server_crash;
      row "client crash" Client_crash;
      row "power cut, no UPS" (Power_cut { ups = false; nvram = false });
      row "power cut, with UPS" (Power_cut { ups = true; nvram = false });
      row "power cut, battery-backed RAM"
        (Power_cut { ups = false; nvram = true });
    ]
