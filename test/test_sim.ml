(* Tests for the discrete-event substrate. *)

let time_tests =
  [
    Alcotest.test_case "unit constructors compose" `Quick (fun () ->
        Alcotest.(check int64) "1us" (Sim.Time.us 1) (Sim.Time.ns 1000);
        Alcotest.(check int64) "1ms" (Sim.Time.ms 1) (Sim.Time.us 1000);
        Alcotest.(check int64) "1s" (Sim.Time.sec 1) (Sim.Time.ms 1000));
    Alcotest.test_case "of_sec_f round-trips" `Quick (fun () ->
        Alcotest.(check (float 1e-9))
          "1.5s" 1.5
          (Sim.Time.to_sec_f (Sim.Time.of_sec_f 1.5)));
    Alcotest.test_case "arithmetic" `Quick (fun () ->
        let a = Sim.Time.ms 3 and b = Sim.Time.ms 1 in
        Alcotest.(check int64) "add" (Sim.Time.ms 4) (Sim.Time.add a b);
        Alcotest.(check int64) "sub" (Sim.Time.ms 2) (Sim.Time.sub a b);
        Alcotest.(check int64) "mul" (Sim.Time.ms 9) (Sim.Time.mul a 3);
        Alcotest.(check int64) "div" (Sim.Time.ms 1) (Sim.Time.div a 3);
        Alcotest.(check bool) "lt" true Sim.Time.(b < a));
    Alcotest.test_case "pp picks sensible units" `Quick (fun () ->
        let s t = Format.asprintf "%a" Sim.Time.pp t in
        Alcotest.(check string) "ns" "500ns" (s (Sim.Time.ns 500));
        Alcotest.(check string) "us" "2.00us" (s (Sim.Time.us 2));
        Alcotest.(check string) "ms" "3.000ms" (s (Sim.Time.ms 3)));
  ]

(* Reference model for the heap property tests: a list kept sorted by
   (key, seq), popped from the front. *)
let model_insert (k, s, v) model =
  let rec go = function
    | [] -> [ (k, s, v) ]
    | (k', s', _) :: _ as rest when k < k' || (k = k' && s < s') ->
        (k, s, v) :: rest
    | e :: rest -> e :: go rest
  in
  go model

let heap_tests =
  [
    Alcotest.test_case "pop order is (key, seq)" `Quick (fun () ->
        let h = Sim.Heap.create () in
        Sim.Heap.push h ~key:5L ~seq:0 "a";
        Sim.Heap.push h ~key:3L ~seq:1 "b";
        Sim.Heap.push h ~key:3L ~seq:2 "c";
        Sim.Heap.push h ~key:1L ~seq:3 "d";
        let pop () =
          match Sim.Heap.pop h with
          | Some (_, _, v) -> v
          | None -> Alcotest.fail "empty"
        in
        Alcotest.(check string) "1st" "d" (pop ());
        Alcotest.(check string) "2nd" "b" (pop ());
        Alcotest.(check string) "3rd" "c" (pop ());
        Alcotest.(check string) "4th" "a" (pop ());
        Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h));
    Alcotest.test_case "peek does not remove" `Quick (fun () ->
        let h = Sim.Heap.create () in
        Sim.Heap.push h ~key:7L ~seq:0 ();
        Alcotest.(check bool) "peek" true (Sim.Heap.peek h <> None);
        Alcotest.(check int) "len" 1 (Sim.Heap.length h));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"pops in nondecreasing key order" ~count:200
         QCheck2.Gen.(list (int_range 0 1000))
         (fun keys ->
           let h = Sim.Heap.create () in
           List.iteri
             (fun i k -> Sim.Heap.push h ~key:(Int64.of_int k) ~seq:i ())
             keys;
           let rec drain last =
             match Sim.Heap.pop h with
             | None -> true
             | Some (k, _, ()) -> k >= last && drain k
           in
           drain Int64.min_int));
    Alcotest.test_case "popped values are not retained" `Quick (fun () ->
        (* A vacated slot left pointing at its entry is a space leak:
           drain the heap, collect, and check through weak pointers
           that every popped value is gone while the heap itself is
           still live. *)
        let h = Sim.Heap.create () in
        let n = 100 in
        let weak = Weak.create n in
        for i = 0 to n - 1 do
          let v = ref i in
          Weak.set weak i (Some v);
          Sim.Heap.push h ~key:(Int64.of_int (i * 37 mod 50)) ~seq:i v
        done;
        let rec drain () =
          match Sim.Heap.pop h with Some _ -> drain () | None -> ()
        in
        drain ();
        Gc.full_major ();
        let live = ref 0 in
        for i = 0 to n - 1 do
          if Weak.check weak i then incr live
        done;
        Alcotest.(check int) "all popped values collected" 0 !live;
        Sim.Heap.push h ~key:0L ~seq:0 (ref 0);
        Alcotest.(check int) "heap still usable" 1 (Sim.Heap.length h));
    Alcotest.test_case "half-drained heap retains only its contents" `Quick
      (fun () ->
        let h = Sim.Heap.create () in
        let n = 100 in
        let weak = Weak.create n in
        for i = 0 to n - 1 do
          let v = ref i in
          Weak.set weak i (Some v);
          Sim.Heap.push h ~key:(Int64.of_int i) ~seq:i v
        done;
        (* Keys are sorted, so the first half is popped exactly. *)
        for _ = 1 to n / 2 do
          ignore (Sim.Heap.pop h)
        done;
        Gc.full_major ();
        for i = 0 to (n / 2) - 1 do
          if Weak.check weak i then
            Alcotest.failf "popped value %d still retained" i
        done;
        for i = n / 2 to n - 1 do
          if not (Weak.check weak i) then
            Alcotest.failf "unpopped value %d was collected" i
        done;
        (* Referencing [h] here keeps the heap itself live across the
           collection above, so only genuinely popped entries can die. *)
        Alcotest.(check int) "heap keeps the rest" (n / 2) (Sim.Heap.length h));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"interleaved push/pop agrees with a sorted-list model" ~count:300
         (* [Some k] pushes with key [k]; [None] pops. *)
         QCheck2.Gen.(list (option (int_range 0 50)))
         (fun ops ->
           let h = Sim.Heap.create () in
           let model = ref [] in
           let seq = ref 0 in
           List.for_all
             (fun op ->
               match op with
               | Some k ->
                   Sim.Heap.push h ~key:(Int64.of_int k) ~seq:!seq !seq;
                   model := model_insert (Int64.of_int k, !seq, !seq) !model;
                   incr seq;
                   Sim.Heap.length h = List.length !model
               | None -> (
                   match (Sim.Heap.pop h, !model) with
                   | None, [] -> true
                   | Some got, m :: rest ->
                       model := rest;
                       got = m
                   | Some _, [] | None, _ :: _ -> false))
             ops
           && (* drain: the tail must still agree *)
           List.for_all
             (fun m ->
               match Sim.Heap.pop h with Some got -> got = m | None -> false)
             !model
           && Sim.Heap.is_empty h));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"equal keys pop in seq (FIFO) order" ~count:100
         QCheck2.Gen.(int_range 1 64)
         (fun n ->
           let h = Sim.Heap.create () in
           (* Insert seqs in a scrambled but deterministic order. *)
           for i = 0 to n - 1 do
             let s = i * 17 mod n in
             Sim.Heap.push h ~key:7L ~seq:s s
           done;
           (* Duplicate seqs from the mod-scramble make FIFO ambiguous;
              only check when all n seqs are distinct (gcd (17, n) = 1). *)
           n mod 17 = 0
           ||
           let popped = ref [] in
           let rec drain () =
             match Sim.Heap.pop h with
             | None -> ()
             | Some (_, s, _) ->
                 popped := s :: !popped;
                 drain ()
           in
           drain ();
           List.rev !popped = List.init n Fun.id));
    Alcotest.test_case "clear empties and the heap stays usable" `Quick
      (fun () ->
        let h = Sim.Heap.create () in
        for i = 1 to 10 do
          Sim.Heap.push h ~key:(Int64.of_int i) ~seq:i i
        done;
        Sim.Heap.clear h;
        Alcotest.(check int) "empty" 0 (Sim.Heap.length h);
        Alcotest.(check bool) "pop none" true (Sim.Heap.pop h = None);
        Sim.Heap.push h ~key:3L ~seq:0 42;
        (match Sim.Heap.pop h with
        | Some (3L, 0, 42) -> ()
        | _ -> Alcotest.fail "heap unusable after clear"));
    Alcotest.test_case "out-of-range key is rejected" `Quick (fun () ->
        let h = Sim.Heap.create () in
        Alcotest.check_raises "max_int64"
          (Invalid_argument "Heap.push: key exceeds native int range")
          (fun () -> Sim.Heap.push h ~key:Int64.max_int ~seq:0 ()));
  ]

let calendar_tests =
  [
    Alcotest.test_case "pop order is (key, seq)" `Quick (fun () ->
        let c = Sim.Calendar.create () in
        Sim.Calendar.push_ns c ~key:5 ~seq:1 10;
        Sim.Calendar.push_ns c ~key:3 ~seq:2 20;
        Sim.Calendar.push_ns c ~key:5 ~seq:0 30;
        Sim.Calendar.push_ns c ~key:4 ~seq:3 40;
        let order = ref [] in
        let rec drain () =
          match Sim.Calendar.pop_ns c with
          | None -> ()
          | Some e ->
              order := e :: !order;
              drain ()
        in
        drain ();
        Alcotest.(check (list (triple int int int)))
          "order"
          [ (3, 2, 20); (4, 3, 40); (5, 0, 30); (5, 1, 10) ]
          (List.rev !order));
    Alcotest.test_case "min_key/min_seq report without removing" `Quick
      (fun () ->
        let c = Sim.Calendar.create () in
        Alcotest.(check int) "empty key" max_int (Sim.Calendar.min_key_ns c);
        Alcotest.(check int) "empty seq" max_int (Sim.Calendar.min_seq_ns c);
        Sim.Calendar.push_ns c ~key:9 ~seq:4 1;
        Sim.Calendar.push_ns c ~key:2 ~seq:7 2;
        Alcotest.(check int) "min key" 2 (Sim.Calendar.min_key_ns c);
        Alcotest.(check int) "min seq" 7 (Sim.Calendar.min_seq_ns c);
        Alcotest.(check int) "still both" 2 (Sim.Calendar.length c));
    Alcotest.test_case "resize stress drains in nondecreasing order" `Quick
      (fun () ->
        (* Scrambled keys across a wide range force several bucket-array
           resizes on the way up and shrinks on the way down. *)
        let c = Sim.Calendar.create () in
        let n = 20_000 in
        for i = 0 to n - 1 do
          let k = i * 2654435761 land 0xFFFFFFF in
          Sim.Calendar.push_ns c ~key:k ~seq:i i
        done;
        Alcotest.(check int) "all in" n (Sim.Calendar.length c);
        let prev_k = ref (-1) and prev_s = ref (-1) and popped = ref 0 in
        let rec drain () =
          match Sim.Calendar.pop_ns c with
          | None -> ()
          | Some (k, s, _) ->
              if k < !prev_k || (k = !prev_k && s < !prev_s) then
                Alcotest.failf "order violated at (%d, %d)" k s;
              prev_k := k;
              prev_s := s;
              incr popped;
              drain ()
        in
        drain ();
        Alcotest.(check int) "all out" n !popped);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"differential: interleaved push/pop agrees with the heap"
         ~count:300
         (* [Some k] pushes with key [k] into both structures; [None]
            pops both and compares.  Key range is narrow enough to
            collide and wide enough to spread across buckets. *)
         QCheck2.Gen.(list (option (int_range 0 5000)))
         (fun ops ->
           let c = Sim.Calendar.create () in
           let h = Sim.Heap.create () in
           let seq = ref 0 in
           List.for_all
             (fun op ->
               match op with
               | Some k ->
                   Sim.Calendar.push_ns c ~key:k ~seq:!seq !seq;
                   Sim.Heap.push h ~key:(Int64.of_int k) ~seq:!seq !seq;
                   incr seq;
                   Sim.Calendar.length c = Sim.Heap.length h
                   && Sim.Calendar.min_key_ns c
                      = Int64.to_int
                          (match Sim.Heap.peek h with
                          | Some (k, _, _) -> k
                          | None -> Int64.of_int max_int)
               | None -> (
                   match (Sim.Calendar.pop_ns c, Sim.Heap.pop h) with
                   | None, None -> true
                   | Some (ck, cs, cv), Some (hk, hs, hv) ->
                       ck = Int64.to_int hk && cs = hs && cv = hv
                   | Some _, None | None, Some _ -> false))
             ops
           &&
           (* Drain both: the tails must agree entry for entry. *)
           let rec drain () =
             match (Sim.Calendar.pop_ns c, Sim.Heap.pop h) with
             | None, None -> true
             | Some (ck, cs, cv), Some (hk, hs, hv) ->
                 ck = Int64.to_int hk && cs = hs && cv = hv && drain ()
             | Some _, None | None, Some _ -> false
           in
           drain ()));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"equal keys pop in seq (FIFO) order" ~count:100
         QCheck2.Gen.(int_range 1 64)
         (fun n ->
           (* A same-key flood degrades a bucket to a linear scan but
              must still respect insertion order. *)
           let c = Sim.Calendar.create () in
           for i = 0 to n - 1 do
             let s = i * 17 mod n in
             Sim.Calendar.push_ns c ~key:7 ~seq:s s
           done;
           n mod 17 = 0
           ||
           let popped = ref [] in
           let rec drain () =
             match Sim.Calendar.pop_ns c with
             | None -> ()
             | Some (_, s, _) ->
                 popped := s :: !popped;
                 drain ()
           in
           drain ();
           List.rev !popped = List.init n Fun.id));
    Alcotest.test_case "same-key flood drains FIFO through the lazy sort" `Quick
      (fun () ->
        (* 5000 ties in one bucket force the sorted-chain path (chains
           above the sort threshold); a mid-drain refill dirties the
           sorted chain and must re-sort without losing order. *)
        let n = 5_000 in
        let c = Sim.Calendar.create () in
        for i = 0 to n - 1 do
          Sim.Calendar.push_ns c ~key:42 ~seq:(i * 3797 mod n) (i * 3797 mod n)
        done;
        for s = 0 to (n / 2) - 1 do
          match Sim.Calendar.pop_ns c with
          | Some (42, s', _) when s' = s -> ()
          | _ -> Alcotest.failf "wrong entry at seq %d" s
        done;
        for s = n to n + 99 do
          Sim.Calendar.push_ns c ~key:42 ~seq:s s
        done;
        for s = n / 2 to n + 99 do
          match Sim.Calendar.pop_ns c with
          | Some (42, s', _) when s' = s -> ()
          | _ -> Alcotest.failf "wrong entry at seq %d after refill" s
        done;
        Alcotest.(check bool) "drained" true (Sim.Calendar.is_empty c));
    Alcotest.test_case "large in-order flood rolls forward linearly" `Quick
      (fun () ->
        (* A ramp of 100k same-key pushes in seq order crosses several
           resizes, each of which reverses the chain, leaving a stack of
           alternately reversed blocks.  That layout drove the previous
           deterministic-pivot quicksort quadratic (~6s for the one lazy
           sort); the merge sort keeps it O(n log n).  The drain-and-
           reschedule loop below is the Monitor window-roll pattern that
           exposed it.  Correctness assert: strict FIFO per key and
           key-major order across rolls. *)
        let n = 100_000 in
        let c = Sim.Calendar.create () in
        let seq = ref 0 in
        let push key =
          incr seq;
          Sim.Calendar.push_ns c ~key ~seq:!seq !seq
        in
        for _ = 1 to n do
          push 1_000_000
        done;
        let t0 = Unix.gettimeofday () in
        for roll = 2 to 3 do
          let prev = ref 0 in
          for _ = 1 to n do
            (match Sim.Calendar.pop_ns c with
            | Some (k, s, _) when k = (roll - 1) * 1_000_000 && s > !prev ->
                prev := s
            | _ -> Alcotest.failf "out of order during roll %d" roll);
            push (roll * 1_000_000)
          done
        done;
        let dt = Unix.gettimeofday () -. t0 in
        Alcotest.(check bool)
          (Printf.sprintf "two rolls of 100k under 2s (took %.2fs)" dt)
          true (dt < 2.0));
    Alcotest.test_case "out-of-range keys are rejected" `Quick (fun () ->
        let c = Sim.Calendar.create () in
        Alcotest.check_raises "negative"
          (Invalid_argument "Calendar.push_ns: key out of range") (fun () ->
            Sim.Calendar.push_ns c ~key:(-1) ~seq:0 0);
        Alcotest.check_raises "beyond 2^61"
          (Invalid_argument "Calendar.push_ns: key out of range") (fun () ->
            Sim.Calendar.push_ns c ~key:((1 lsl 61) + 1) ~seq:0 0));
    Alcotest.test_case "clear empties and the queue stays usable" `Quick
      (fun () ->
        let c = Sim.Calendar.create () in
        for i = 1 to 10 do
          Sim.Calendar.push_ns c ~key:i ~seq:i i
        done;
        Sim.Calendar.clear c;
        Alcotest.(check int) "empty" 0 (Sim.Calendar.length c);
        Alcotest.(check bool) "pop none" true (Sim.Calendar.pop_ns c = None);
        Sim.Calendar.push_ns c ~key:3 ~seq:0 42;
        match Sim.Calendar.pop_ns c with
        | Some (3, 0, 42) -> ()
        | _ -> Alcotest.fail "calendar unusable after clear");
  ]

let fault_tests =
  [
    Alcotest.test_case "identical seeds replay identical fault sequences"
      `Quick (fun () ->
        let record () =
          let e = Sim.Engine.create () in
          let f = Sim.Fault.create ~seed:99L e in
          let events = ref [] in
          let log name () =
            events := (name, Sim.Time.to_ns (Sim.Engine.now e)) :: !events
          in
          Sim.Fault.outages f ~span:(Sim.Time.sec 10)
            ~mean_up:(Sim.Time.ms 200) ~mean_down:(Sim.Time.ms 50)
            ~down:(log "down") ~up:(log "up") ();
          Sim.Fault.latency_spikes f ~span:(Sim.Time.sec 10)
            ~mean_gap:(Sim.Time.ms 300) ~mean_duration:(Sim.Time.ms 20)
            ~max_extra:(Sim.Time.ms 1)
            ~set:(fun extra ->
              events :=
                ( "set+" ^ string_of_int (Sim.Time.to_ns extra),
                  Sim.Time.to_ns (Sim.Engine.now e) )
                :: !events)
            ~clear:(log "clear") ();
          Sim.Engine.run e;
          (List.rev !events, Sim.Fault.events_injected f)
        in
        let seq_a, count_a = record () in
        let seq_b, count_b = record () in
        Alcotest.(check bool) "sequences nonempty" true (seq_a <> []);
        Alcotest.(check bool) "sequences identical" true (seq_a = seq_b);
        Alcotest.(check int) "counters identical" count_a count_b);
    Alcotest.test_case "bernoulli stream is deterministic and near p" `Quick
      (fun () ->
        let draws seed =
          let e = Sim.Engine.create () in
          let f = Sim.Fault.create ~seed e in
          let decide = Sim.Fault.bernoulli f ~p:0.3 in
          List.init 1000 (fun _ -> decide ())
        in
        let a = draws 5L and b = draws 5L in
        Alcotest.(check bool) "same stream" true (a = b);
        let trues = List.length (List.filter Fun.id a) in
        Alcotest.(check bool) "rate near 0.3" true (trues > 200 && trues < 400);
        Alcotest.(check bool) "p=0 never fires" true
          (not
             (List.exists Fun.id
                (let e = Sim.Engine.create () in
                 let f = Sim.Fault.create e in
                 let d = Sim.Fault.bernoulli f ~p:0.0 in
                 List.init 100 (fun _ -> d ())))));
    Alcotest.test_case "window takes a component down and back up" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let f = Sim.Fault.create e in
        let up = ref true in
        Sim.Fault.window f ~at:(Sim.Time.ms 10) ~duration:(Sim.Time.ms 5)
          ~down:(fun () -> up := false)
          ~up:(fun () -> up := true);
        ignore
          (Sim.Engine.schedule_at e ~at:(Sim.Time.ms 12) (fun () ->
               Alcotest.(check bool) "down inside the window" false !up));
        Sim.Engine.run e;
        Alcotest.(check bool) "up after the window" true !up;
        Alcotest.(check int) "two transitions" 2 (Sim.Fault.events_injected f));
    Alcotest.test_case "outages leave the component healthy at span end"
      `Quick (fun () ->
        let e = Sim.Engine.create () in
        let f = Sim.Fault.create ~seed:7L e in
        let up = ref true in
        Sim.Fault.outages f ~span:(Sim.Time.sec 5) ~mean_up:(Sim.Time.ms 100)
          ~mean_down:(Sim.Time.ms 40)
          ~down:(fun () -> up := false)
          ~up:(fun () -> up := true)
          ();
        Sim.Engine.run e;
        Alcotest.(check bool) "healthy at the end" true !up;
        Alcotest.(check bool) "injected transitions" true
          (Sim.Fault.events_injected f > 0));
  ]


let engine_tests =
  [
    Alcotest.test_case "events fire in time order" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let log = ref [] in
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 2) (fun () -> log := 2 :: !log));
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> log := 1 :: !log));
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 3) (fun () -> log := 3 :: !log));
        Sim.Engine.run e;
        Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
        Alcotest.(check int64) "clock" (Sim.Time.ms 3) (Sim.Engine.now e));
    Alcotest.test_case "same-instant events run FIFO" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let log = ref [] in
        for i = 0 to 9 do
          ignore
            (Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> log := i :: !log))
        done;
        Sim.Engine.run e;
        Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
          (List.rev !log));
    Alcotest.test_case "cancel prevents firing" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let fired = ref false in
        let id = Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> fired := true) in
        ignore (Sim.Engine.cancel e id);
        Sim.Engine.run e;
        Alcotest.(check bool) "not fired" false !fired;
        Alcotest.(check int) "pending" 0 (Sim.Engine.pending e));
    Alcotest.test_case "double cancel is harmless" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let id = Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> ()) in
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 2) (fun () -> ()));
        ignore (Sim.Engine.cancel e id);
        ignore (Sim.Engine.cancel e id);
        Alcotest.(check int) "one pending" 1 (Sim.Engine.pending e);
        Sim.Engine.run e);
    Alcotest.test_case "run ~until stops and advances clock" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let fired = ref 0 in
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> incr fired));
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 10) (fun () -> incr fired));
        Sim.Engine.run e ~until:(Sim.Time.ms 5);
        Alcotest.(check int) "one fired" 1 !fired;
        Alcotest.(check int64) "clock at until" (Sim.Time.ms 5) (Sim.Engine.now e);
        Sim.Engine.run e;
        Alcotest.(check int) "both fired" 2 !fired);
    Alcotest.test_case "schedule_at in the past is rejected" `Quick (fun () ->
        let e = Sim.Engine.create () in
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 5) (fun () -> ()));
        Sim.Engine.run e;
        Alcotest.check_raises "past"
          (Invalid_argument
             "Engine.schedule_at: 1.000ms is before now (5.000ms)")
          (fun () ->
            ignore (Sim.Engine.schedule_at e ~at:(Sim.Time.ms 1) (fun () -> ()))));
    Alcotest.test_case "callbacks can schedule more events" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let count = ref 0 in
        let rec chain n () =
          incr count;
          if n > 0 then
            ignore (Sim.Engine.schedule e ~delay:(Sim.Time.us 1) (chain (n - 1)))
        in
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.us 1) (chain 9));
        Sim.Engine.run e;
        Alcotest.(check int) "chain length" 10 !count);
    Alcotest.test_case "every repeats until told to stop" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let n = ref 0 in
        Sim.Engine.every e ~period:(Sim.Time.ms 1) (fun () ->
            incr n;
            !n < 5);
        Sim.Engine.run e;
        Alcotest.(check int) "five ticks" 5 !n;
        Alcotest.(check int64) "clock" (Sim.Time.ms 5) (Sim.Engine.now e));
    Alcotest.test_case "max_events bounds a run" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let n = ref 0 in
        for _ = 1 to 10 do
          ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> incr n))
        done;
        Sim.Engine.run e ~max_events:3;
        Alcotest.(check int) "three" 3 !n);
    Alcotest.test_case "step runs exactly one event" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let n = ref 0 in
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> incr n));
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 2) (fun () -> incr n));
        Alcotest.(check bool) "stepped" true (Sim.Engine.step e);
        Alcotest.(check int) "one" 1 !n;
        Sim.Engine.run e;
        Alcotest.(check bool) "exhausted" false (Sim.Engine.step e));
    Alcotest.test_case "cancel reports whether it took effect" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let id = Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> ()) in
        Alcotest.(check bool) "first cancel" true (Sim.Engine.cancel e id);
        Alcotest.(check bool) "second cancel" false (Sim.Engine.cancel e id));
    Alcotest.test_case "cancel of a fired id leaves accounting untouched"
      `Quick (fun () ->
        (* Regression: this used to run [forget] unconditionally,
           underflowing live/live_user and driving queue_depth negative. *)
        let m = Sim.Metrics.create () in
        let e = Sim.Engine.create ~metrics:m () in
        let id = Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> ()) in
        Sim.Engine.run e;
        let depth = Sim.Metrics.gauge m ~sub:Sim.Subsystem.Sim "engine.queue_depth" in
        let cancelled =
          Sim.Metrics.counter m ~sub:Sim.Subsystem.Sim "engine.events_cancelled"
        in
        Alcotest.(check int) "pending before" 0 (Sim.Engine.pending e);
        Alcotest.(check (float 1e-9)) "depth before" 0.0 (Sim.Metrics.get depth);
        Alcotest.(check bool) "cancel is a no-op" false (Sim.Engine.cancel e id);
        Alcotest.(check int) "pending unchanged" 0 (Sim.Engine.pending e);
        Alcotest.(check (float 1e-9)) "depth unchanged" 0.0
          (Sim.Metrics.get depth);
        Alcotest.(check int) "cancelled counter unchanged" 0
          (Sim.Metrics.value cancelled);
        (* The user-event count must not have underflowed: a fresh user
           event still keeps an unbounded run alive. *)
        let fired = ref false in
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> fired := true));
        Sim.Engine.run e;
        Alcotest.(check bool) "subsequent events still fire" true !fired);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"random schedule/cancel keeps live = user + daemons" ~count:200
         (* Each element: (daemon?, delay_ms, cancel this index later?) *)
         QCheck2.Gen.(list (triple bool (int_range 1 20) bool))
         (fun plan ->
           let m = Sim.Metrics.create () in
           let e = Sim.Engine.create ~metrics:m () in
           let ids =
             List.map
               (fun (daemon, d, _) ->
                 Sim.Engine.schedule ~daemon e ~delay:(Sim.Time.ms d) (fun () -> ()))
               plan
           in
           let users = ref 0 and daemons = ref 0 in
           List.iter
             (fun (daemon, _, _) ->
               if daemon then incr daemons else incr users)
             plan;
           Sim.Engine.pending e = !users + !daemons
           && List.for_all2
                (fun (daemon, _, do_cancel) id ->
                  if not do_cancel then true
                  else begin
                    let took = Sim.Engine.cancel e id in
                    let again = Sim.Engine.cancel e id in
                    if took then
                      if daemon then decr daemons else decr users;
                    took && not again
                    && Sim.Engine.pending e = !users + !daemons
                    && Sim.Engine.pending e >= 0
                  end)
                plan ids
           &&
           ((* A time bound far past every delay fires daemons too. *)
            Sim.Engine.run e ~until:(Sim.Time.ms 100);
            let depth =
              Sim.Metrics.gauge m ~sub:Sim.Subsystem.Sim "engine.queue_depth"
            in
            Sim.Engine.pending e = 0 && Sim.Metrics.get depth = 0.0)));
    Alcotest.test_case "every rejects a non-positive period" `Quick (fun () ->
        (* Regression: a zero or negative period used to reschedule at
           the same instant forever, livelocking the run. *)
        let e = Sim.Engine.create () in
        Alcotest.check_raises "zero"
          (Invalid_argument "Engine.every: period must be positive")
          (fun () -> Sim.Engine.every e ~period:Sim.Time.zero (fun () -> true));
        Alcotest.check_raises "negative"
          (Invalid_argument "Engine.every: period must be positive")
          (fun () ->
            Sim.Engine.every e ~period:(Sim.Time.ns (-5)) (fun () -> true));
        Alcotest.(check int) "nothing scheduled" 0 (Sim.Engine.pending e));
    Alcotest.test_case "stale handle after slot reuse cancels nothing" `Quick
      (fun () ->
        (* The fired event's arena slot is recycled by the next
           schedule; the old handle must fail its generation check
           rather than cancel the new occupant. *)
        let e = Sim.Engine.create () in
        let stale = Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> ()) in
        Sim.Engine.run e;
        let fired = ref false in
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> fired := true));
        Alcotest.(check bool) "stale cancel refused" false
          (Sim.Engine.cancel e stale);
        Alcotest.(check int) "new event untouched" 1 (Sim.Engine.pending e);
        Sim.Engine.run e;
        Alcotest.(check bool) "new event fired" true !fired);
    Alcotest.test_case "step samples rather than flushes the depth gauge"
      `Quick (fun () ->
        (* Regression: [step] used to write the gauge (boxing a float)
           after every event while [run] sampled 1-in-256; both now go
           through the same sampler. *)
        let m = Sim.Metrics.create () in
        let e = Sim.Engine.create ~metrics:m () in
        let depth = Sim.Metrics.gauge m ~sub:Sim.Subsystem.Sim "engine.queue_depth" in
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> ()));
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 2) (fun () -> ()));
        Alcotest.(check bool) "stepped" true (Sim.Engine.step e);
        Alcotest.(check int) "one left" 1 (Sim.Engine.pending e);
        Alcotest.(check (float 1e-9)) "gauge not flushed per step" 0.0
          (Sim.Metrics.get depth);
        Sim.Engine.run e;
        Alcotest.(check (float 1e-9)) "run still flushes" 0.0
          (Sim.Metrics.get depth));
    Alcotest.test_case "queue modes fire in identical order" `Quick (fun () ->
        (* The same scenario — scrambled delays, same-instant ties,
           mid-run cancellations, enough live events to push [`Auto]
           past its migration threshold — must produce the same event
           order on the heap, on the calendar queue, and across the
           auto migration. *)
        let scenario queue =
          let e =
            Sim.Engine.create ~queue ~metrics:(Sim.Metrics.create ()) ()
          in
          let log = ref [] in
          let ids = Array.make 40_000 None in
          for i = 0 to 39_999 do
            let d = 1 + (i * 2654435761 land 0xFFFF) in
            ids.(i) <-
              Some
                (Sim.Engine.schedule e ~delay:(Sim.Time.us d) (fun () ->
                     log := i :: !log))
          done;
          for i = 0 to 39_999 do
            if i mod 7 = 0 then
              match ids.(i) with
              | Some id -> ignore (Sim.Engine.cancel e id)
              | None -> ()
          done;
          Sim.Engine.run e;
          (List.rev !log, Sim.Engine.now e)
        in
        let heap = scenario `Heap in
        let cal = scenario `Calendar in
        let auto = scenario `Auto in
        Alcotest.(check bool) "calendar = heap" true (cal = heap);
        Alcotest.(check bool) "auto = heap" true (auto = heap);
        Alcotest.(check int)
          "log covers the uncancelled events"
          (40_000 - ((39_999 / 7) + 1))
          (List.length (fst heap)));
  ]

let rng_tests =
  [
    Alcotest.test_case "same seed, same stream" `Quick (fun () ->
        let a = Sim.Rng.create ~seed:42L () and b = Sim.Rng.create ~seed:42L () in
        for _ = 1 to 100 do
          Alcotest.(check int64) "det" (Sim.Rng.int64 a) (Sim.Rng.int64 b)
        done);
    Alcotest.test_case "split decorrelates" `Quick (fun () ->
        let a = Sim.Rng.create ~seed:42L () in
        let b = Sim.Rng.split a in
        Alcotest.(check bool) "differ" true (Sim.Rng.int64 a <> Sim.Rng.int64 b));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"float in [0,1)" ~count:1000 QCheck2.Gen.int
         (fun seed ->
           let r = Sim.Rng.create ~seed:(Int64.of_int seed) () in
           let f = Sim.Rng.float r in
           f >= 0.0 && f < 1.0));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"int within bound" ~count:1000
         QCheck2.Gen.(pair int (int_range 1 10000))
         (fun (seed, bound) ->
           let r = Sim.Rng.create ~seed:(Int64.of_int seed) () in
           let v = Sim.Rng.int r bound in
           v >= 0 && v < bound));
    Alcotest.test_case "exponential has roughly the right mean" `Quick (fun () ->
        let r = Sim.Rng.create ~seed:7L () in
        let s = Sim.Stats.Summary.create () in
        for _ = 1 to 20_000 do
          Sim.Stats.Summary.add s (Sim.Rng.exponential r ~mean:3.0)
        done;
        let m = Sim.Stats.Summary.mean s in
        Alcotest.(check bool) "mean near 3" true (m > 2.8 && m < 3.2));
    Alcotest.test_case "normal has roughly the right moments" `Quick (fun () ->
        let r = Sim.Rng.create ~seed:7L () in
        let s = Sim.Stats.Summary.create () in
        for _ = 1 to 20_000 do
          Sim.Stats.Summary.add s (Sim.Rng.normal r ~mu:10.0 ~sigma:2.0)
        done;
        Alcotest.(check bool) "mean" true
          (Float.abs (Sim.Stats.Summary.mean s -. 10.0) < 0.1);
        Alcotest.(check bool) "sd" true
          (Float.abs (Sim.Stats.Summary.stddev s -. 2.0) < 0.1));
    Alcotest.test_case "zipf ranks within range, rank 1 most popular" `Quick
      (fun () ->
        let r = Sim.Rng.create ~seed:11L () in
        let counts = Array.make 10 0 in
        for _ = 1 to 20_000 do
          let k = Sim.Rng.zipf r ~n:10 ~s:1.2 in
          Alcotest.(check bool) "range" true (k >= 1 && k <= 10);
          counts.(k - 1) <- counts.(k - 1) + 1
        done;
        Alcotest.(check bool) "1 beats 10" true (counts.(0) > counts.(9) * 3));
    Alcotest.test_case "zipf table memoisation never changes the draws" `Quick
      (fun () ->
        (* The per-generator (n, s) table cache is pure memoisation:
           every draw consumes exactly one underlying float.  An
           interleaved sequence over more distributions than the cache
           holds (forcing evictions and rebuilds) must equal draws from
           a fresh generator fast-forwarded to the same stream
           position. *)
        let params =
          Array.init 10 (fun i ->
              (10 + (i * 7), 0.6 +. (0.13 *. float_of_int i)))
        in
        let r = Sim.Rng.create ~seed:99L () in
        let drawn =
          Array.init 60 (fun i ->
              let n, s = params.(i mod Array.length params) in
              Sim.Rng.zipf r ~n ~s)
        in
        Array.iteri
          (fun i v ->
            let fresh = Sim.Rng.create ~seed:99L () in
            for _ = 1 to i do
              ignore (Sim.Rng.float fresh)
            done;
            let n, s = params.(i mod Array.length params) in
            Alcotest.(check int)
              (Printf.sprintf "draw %d" i)
              (Sim.Rng.zipf fresh ~n ~s)
              v)
          drawn);
    Alcotest.test_case "shuffle is a permutation" `Quick (fun () ->
        let r = Sim.Rng.create ~seed:3L () in
        let arr = Array.init 50 Fun.id in
        Sim.Rng.shuffle r arr;
        let sorted = Array.copy arr in
        Array.sort compare sorted;
        Alcotest.(check bool) "perm" true (sorted = Array.init 50 Fun.id));
  ]

let stats_tests =
  [
    Alcotest.test_case "empty samples: every statistic raises" `Quick (fun () ->
        (* Regression: [mean] used to return 0.0 on an empty store
           while min/max/percentile raised, so an empty sample set
           could masquerade as a measured zero. *)
        let s = Sim.Stats.Samples.create () in
        Alcotest.check_raises "mean" (Invalid_argument "Samples.mean: empty")
          (fun () -> ignore (Sim.Stats.Samples.mean s));
        Alcotest.check_raises "min" (Invalid_argument "Samples.min: empty")
          (fun () -> ignore (Sim.Stats.Samples.min s));
        Alcotest.check_raises "max" (Invalid_argument "Samples.max: empty")
          (fun () -> ignore (Sim.Stats.Samples.max s));
        Alcotest.check_raises "percentile"
          (Invalid_argument "Samples.percentile: empty") (fun () ->
            ignore (Sim.Stats.Samples.percentile s 50.0));
        (* And the store still works once populated. *)
        List.iter (Sim.Stats.Samples.add s) [ 1.0; 2.0; 3.0 ];
        Alcotest.(check (float 1e-9)) "mean" 2.0 (Sim.Stats.Samples.mean s);
        (* Emptied again (not merely fresh), the contract holds. *)
        Sim.Stats.Samples.clear s;
        Alcotest.check_raises "mean after clear"
          (Invalid_argument "Samples.mean: empty") (fun () ->
            ignore (Sim.Stats.Samples.mean s)));
    Alcotest.test_case "summary of known values" `Quick (fun () ->
        let s = Sim.Stats.Summary.create () in
        List.iter (Sim.Stats.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
        Alcotest.(check (float 1e-9)) "mean" 5.0 (Sim.Stats.Summary.mean s);
        Alcotest.(check (float 1e-9)) "var" (32.0 /. 7.0) (Sim.Stats.Summary.variance s);
        Alcotest.(check (float 1e-9)) "min" 2.0 (Sim.Stats.Summary.min s);
        Alcotest.(check (float 1e-9)) "max" 9.0 (Sim.Stats.Summary.max s);
        Alcotest.(check (float 1e-9)) "total" 40.0 (Sim.Stats.Summary.total s));
    Alcotest.test_case "merge equals concatenation" `Quick (fun () ->
        let a = Sim.Stats.Summary.create () and b = Sim.Stats.Summary.create () in
        let all = Sim.Stats.Summary.create () in
        List.iter
          (fun x ->
            Sim.Stats.Summary.add all x;
            if x < 5.0 then Sim.Stats.Summary.add a x else Sim.Stats.Summary.add b x)
          [ 1.0; 2.0; 3.0; 5.0; 8.0; 13.0 ];
        let m = Sim.Stats.Summary.merge a b in
        Alcotest.(check (float 1e-9)) "mean" (Sim.Stats.Summary.mean all)
          (Sim.Stats.Summary.mean m);
        Alcotest.(check (float 1e-9)) "var" (Sim.Stats.Summary.variance all)
          (Sim.Stats.Summary.variance m));
    Alcotest.test_case "merge with empty is identity, and commutative" `Quick
      (fun () ->
        let of_list xs =
          let s = Sim.Stats.Summary.create () in
          List.iter (Sim.Stats.Summary.add s) xs;
          s
        in
        let empty = Sim.Stats.Summary.create () in
        let a = of_list [ 1.0; 4.0; 9.0 ] in
        let b = of_list [ 2.0; 16.0 ] in
        (* both-empty *)
        let ee = Sim.Stats.Summary.merge empty (Sim.Stats.Summary.create ()) in
        Alcotest.(check int) "empty+empty count" 0 (Sim.Stats.Summary.count ee);
        (* one-sided: merging with empty changes nothing *)
        List.iter
          (fun m ->
            Alcotest.(check int) "count" 3 (Sim.Stats.Summary.count m);
            Alcotest.(check (float 1e-9)) "mean" (Sim.Stats.Summary.mean a)
              (Sim.Stats.Summary.mean m);
            Alcotest.(check (float 1e-9)) "var" (Sim.Stats.Summary.variance a)
              (Sim.Stats.Summary.variance m);
            Alcotest.(check (float 1e-9)) "min" 1.0 (Sim.Stats.Summary.min m);
            Alcotest.(check (float 1e-9)) "max" 9.0 (Sim.Stats.Summary.max m))
          [ Sim.Stats.Summary.merge a empty; Sim.Stats.Summary.merge empty a ];
        (* commutative *)
        let ab = Sim.Stats.Summary.merge a b
        and ba = Sim.Stats.Summary.merge b a in
        Alcotest.(check int) "count" (Sim.Stats.Summary.count ab)
          (Sim.Stats.Summary.count ba);
        Alcotest.(check (float 1e-9)) "mean" (Sim.Stats.Summary.mean ab)
          (Sim.Stats.Summary.mean ba);
        Alcotest.(check (float 1e-9)) "var" (Sim.Stats.Summary.variance ab)
          (Sim.Stats.Summary.variance ba);
        Alcotest.(check (float 1e-9)) "total" (Sim.Stats.Summary.total ab)
          (Sim.Stats.Summary.total ba));
    Alcotest.test_case "percentiles interpolate" `Quick (fun () ->
        let s = Sim.Stats.Samples.create () in
        for i = 1 to 100 do
          Sim.Stats.Samples.add s (Float.of_int i)
        done;
        Alcotest.(check (float 1e-6)) "p0" 1.0 (Sim.Stats.Samples.percentile s 0.0);
        Alcotest.(check (float 1e-6)) "p100" 100.0 (Sim.Stats.Samples.percentile s 100.0);
        Alcotest.(check (float 0.5)) "p50" 50.5 (Sim.Stats.Samples.percentile s 50.0);
        Alcotest.(check (float 0.5)) "p99" 99.0 (Sim.Stats.Samples.percentile s 99.0));
    Alcotest.test_case "percentile edges" `Quick (fun () ->
        (* a single sample answers every quantile *)
        let one = Sim.Stats.Samples.create () in
        Sim.Stats.Samples.add one 42.0;
        List.iter
          (fun q ->
            Alcotest.(check (float 1e-9)) "single" 42.0
              (Sim.Stats.Samples.percentile one q))
          [ 0.0; 50.0; 99.0; 100.0 ];
        (* two samples: endpoints exact, midpoint interpolated *)
        let two = Sim.Stats.Samples.create () in
        Sim.Stats.Samples.add two 10.0;
        Sim.Stats.Samples.add two 20.0;
        Alcotest.(check (float 1e-9)) "p0" 10.0
          (Sim.Stats.Samples.percentile two 0.0);
        Alcotest.(check (float 1e-9)) "p100" 20.0
          (Sim.Stats.Samples.percentile two 100.0);
        Alcotest.(check (float 1e-9)) "p50" 15.0
          (Sim.Stats.Samples.percentile two 50.0);
        Alcotest.(check (float 1e-9)) "p75" 17.5
          (Sim.Stats.Samples.percentile two 75.0));
    Alcotest.test_case "samples can be added after a query" `Quick (fun () ->
        let s = Sim.Stats.Samples.create () in
        Sim.Stats.Samples.add s 10.0;
        ignore (Sim.Stats.Samples.percentile s 50.0);
        Sim.Stats.Samples.add s 0.0;
        Alcotest.(check (float 1e-9)) "min" 0.0 (Sim.Stats.Samples.min s));
    Alcotest.test_case "histogram buckets and clamps" `Quick (fun () ->
        let h = Sim.Stats.Histogram.create ~bucket_width:10.0 ~buckets:5 in
        List.iter (Sim.Stats.Histogram.add h) [ 0.0; 9.9; 10.0; 49.9; 1000.0; -3.0 ];
        Alcotest.(check int) "b0 excludes the negative sample" 2
          (Sim.Stats.Histogram.bucket_count h 0);
        Alcotest.(check int) "b1" 1 (Sim.Stats.Histogram.bucket_count h 1);
        Alcotest.(check int) "b4 clamps" 2 (Sim.Stats.Histogram.bucket_count h 4);
        Alcotest.(check int) "n counts in-range only" 5
          (Sim.Stats.Histogram.count h);
        Alcotest.(check int) "negative is out-of-range" 1
          (Sim.Stats.Histogram.out_of_range h));
    Alcotest.test_case "histogram rejects NaN and negatives from bucket 0"
      `Quick (fun () ->
        (* [Float.to_int nan = 0], so NaN used to be silently filed as a
           zero-valued sample; negatives were clamped up into bucket 0. *)
        let h = Sim.Stats.Histogram.create ~bucket_width:1.0 ~buckets:4 in
        List.iter (Sim.Stats.Histogram.add h)
          [ Float.nan; -0.001; Float.neg_infinity; 0.5 ];
        Alcotest.(check int) "only the real sample lands in b0" 1
          (Sim.Stats.Histogram.bucket_count h 0);
        Alcotest.(check int) "count" 1 (Sim.Stats.Histogram.count h);
        Alcotest.(check int) "oor" 3 (Sim.Stats.Histogram.out_of_range h);
        let text = Format.asprintf "%a" Sim.Stats.Histogram.pp h in
        Alcotest.(check bool) "pp reports out-of-range" true
          (let needle = "out-of-range" in
           let n = String.length needle and l = String.length text in
           let rec scan i =
             i + n <= l && (String.sub text i n = needle || scan (i + 1))
           in
           scan 0));
    Alcotest.test_case "summary and samples clear in place" `Quick (fun () ->
        let s = Sim.Stats.Summary.create () in
        List.iter (Sim.Stats.Summary.add s) [ 1.0; 2.0; 3.0 ];
        Sim.Stats.Summary.clear s;
        Alcotest.(check int) "count" 0 (Sim.Stats.Summary.count s);
        Sim.Stats.Summary.add s 7.0;
        Alcotest.(check (float 1e-9)) "reusable" 7.0 (Sim.Stats.Summary.mean s);
        let xs = Sim.Stats.Samples.create () in
        List.iter (Sim.Stats.Samples.add xs) [ 5.0; 6.0 ];
        Sim.Stats.Samples.clear xs;
        Alcotest.(check int) "samples empty" 0 (Sim.Stats.Samples.count xs);
        Sim.Stats.Samples.add xs 9.0;
        Alcotest.(check (float 1e-9)) "samples reusable" 9.0
          (Sim.Stats.Samples.percentile xs 50.0));
    Alcotest.test_case "counters" `Quick (fun () ->
        let c = Sim.Stats.Counter.create () in
        Sim.Stats.Counter.incr c "a";
        Sim.Stats.Counter.incr c ~by:4 "a";
        Sim.Stats.Counter.incr c "b";
        Alcotest.(check int) "a" 5 (Sim.Stats.Counter.get c "a");
        Alcotest.(check int) "b" 1 (Sim.Stats.Counter.get c "b");
        Alcotest.(check int) "absent" 0 (Sim.Stats.Counter.get c "zzz");
        Alcotest.(check (list (pair string int))) "list"
          [ ("a", 5); ("b", 1) ]
          (Sim.Stats.Counter.to_list c));
  ]

let reservoir_tests =
  [
    Alcotest.test_case "below capacity the reservoir is exact" `Quick (fun () ->
        let r = Sim.Stats.Reservoir.create ~capacity:128 () in
        let s = Sim.Stats.Samples.create () in
        for i = 1 to 100 do
          Sim.Stats.Reservoir.add r (Float.of_int i);
          Sim.Stats.Samples.add s (Float.of_int i)
        done;
        Alcotest.(check int) "count" 100 (Sim.Stats.Reservoir.count r);
        Alcotest.(check int) "stored" 100 (Sim.Stats.Reservoir.stored r);
        List.iter
          (fun q ->
            Alcotest.(check (float 1e-9))
              (Printf.sprintf "p%.0f" q)
              (Sim.Stats.Samples.percentile s q)
              (Sim.Stats.Reservoir.percentile r q))
          [ 0.0; 25.0; 50.0; 95.0; 99.0; 100.0 ]);
    Alcotest.test_case "same seed and stream give identical reservoirs" `Quick
      (fun () ->
        let fill () =
          let r = Sim.Stats.Reservoir.create ~capacity:64 ~seed:11L () in
          for i = 1 to 10_000 do
            Sim.Stats.Reservoir.add r (Float.of_int (i * 31 mod 997))
          done;
          r
        in
        let a = fill () and b = fill () in
        Alcotest.(check bool) "retained samples identical" true
          (Sim.Stats.Reservoir.to_array a = Sim.Stats.Reservoir.to_array b);
        Alcotest.(check (float 1e-9)) "p95 identical"
          (Sim.Stats.Reservoir.percentile a 95.0)
          (Sim.Stats.Reservoir.percentile b 95.0));
    Alcotest.test_case "clear replays exactly like a fresh reservoir" `Quick
      (fun () ->
        let r = Sim.Stats.Reservoir.create ~capacity:32 ~seed:5L () in
        let feed () =
          for i = 1 to 1000 do
            Sim.Stats.Reservoir.add r (Float.of_int (i * 7 mod 101))
          done
        in
        feed ();
        let first = Sim.Stats.Reservoir.to_array r in
        Sim.Stats.Reservoir.clear r;
        Alcotest.(check int) "cleared" 0 (Sim.Stats.Reservoir.count r);
        feed ();
        Alcotest.(check bool) "identical replay" true
          (Sim.Stats.Reservoir.to_array r = first));
    Alcotest.test_case "percentiles stay within tolerance beyond capacity"
      `Quick (fun () ->
        (* 100k uniform draws into a 1024-slot reservoir: p50/p95/p99
           must sit within a few rank points of truth.  The bound here
           is ~4 sigma of the documented standard error, so the (fully
           deterministic) check is far from flaky. *)
        let r = Sim.Stats.Reservoir.create () in
        let rng = Sim.Rng.create ~seed:99L () in
        for _ = 1 to 100_000 do
          Sim.Stats.Reservoir.add r (Sim.Rng.float rng *. 1000.0)
        done;
        Alcotest.(check int) "count tracks the stream" 100_000
          (Sim.Stats.Reservoir.count r);
        Alcotest.(check int) "memory bounded" 1024
          (Sim.Stats.Reservoir.stored r);
        let check q truth tol =
          let got = Sim.Stats.Reservoir.percentile r q in
          if Float.abs (got -. truth) > tol then
            Alcotest.failf "p%.0f = %.1f, want %.1f ± %.0f" q got truth tol
        in
        check 50.0 500.0 65.0;
        check 95.0 950.0 30.0;
        check 99.0 990.0 15.0);
    Alcotest.test_case "capacity must be positive" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Reservoir.create: capacity must be > 0") (fun () ->
            ignore (Sim.Stats.Reservoir.create ~capacity:0 ())));
  ]

let trace_tests =
  [
    Alcotest.test_case "records in order" `Quick (fun () ->
        let tr = Sim.Trace.create ~capacity:8 () in
        Sim.Trace.record tr (Sim.Time.ms 1) "one";
        Sim.Trace.record tr (Sim.Time.ms 2) "two";
        Alcotest.(check (list string)) "order" [ "one"; "two" ]
          (List.map snd (Sim.Trace.to_list tr)));
    Alcotest.test_case "ring overwrites oldest" `Quick (fun () ->
        let tr = Sim.Trace.create ~capacity:3 () in
        List.iter (fun s -> Sim.Trace.record tr Sim.Time.zero s)
          [ "a"; "b"; "c"; "d" ];
        Alcotest.(check int) "len" 3 (Sim.Trace.length tr);
        Alcotest.(check (list string)) "tail" [ "b"; "c"; "d" ]
          (List.map snd (Sim.Trace.to_list tr)));
    Alcotest.test_case "disabled trace records nothing" `Quick (fun () ->
        let tr = Sim.Trace.create ~enabled:false () in
        Sim.Trace.record tr Sim.Time.zero "x";
        Sim.Trace.recordf tr Sim.Time.zero "%d" 42;
        Alcotest.(check int) "empty" 0 (Sim.Trace.length tr));
    Alcotest.test_case "ring counts dropped events and pp reports them" `Quick
      (fun () ->
        let tr = Sim.Trace.create ~capacity:3 () in
        for i = 1 to 10 do
          Sim.Trace.record tr (Sim.Time.ms i) (Printf.sprintf "e%d" i)
        done;
        Alcotest.(check int) "retained" 3 (Sim.Trace.length tr);
        Alcotest.(check int) "dropped" 7 (Sim.Trace.dropped tr);
        let text = Format.asprintf "%a" Sim.Trace.pp tr in
        Alcotest.(check bool) "pp mentions drops" true
          (let needle = "7 earlier entries dropped" in
           let n = String.length needle and l = String.length text in
           let rec scan i =
             i + n <= l && (String.sub text i n = needle || scan (i + 1))
           in
           scan 0);
        Sim.Trace.clear tr;
        Alcotest.(check int) "clear resets drop count" 0 (Sim.Trace.dropped tr));
    Alcotest.test_case "typed events: instant, complete, span" `Quick (fun () ->
        let tr = Sim.Trace.create () in
        Sim.Trace.instant tr ~ts:(Sim.Time.us 1) ~sub:Sim.Subsystem.Atm
          ~cat:"cell" ~args:[ ("vci", Sim.Trace.Int 42) ] "drop";
        Sim.Trace.complete tr ~ts:(Sim.Time.us 2) ~dur:(Sim.Time.us 5)
          ~sub:Sim.Subsystem.Pfs "write";
        let sp =
          Sim.Trace.span_begin tr ~ts:(Sim.Time.us 10) ~sub:Sim.Subsystem.Rpc
            ~cat:"call"
            ~args:[ ("iface", Sim.Trace.Str "pfs") ]
            "pfs.read"
        in
        Alcotest.(check int) "span_begin records nothing" 2
          (Sim.Trace.length tr);
        Sim.Trace.span_end tr ~ts:(Sim.Time.us 25)
          ~args:[ ("ok", Sim.Trace.Bool true) ]
          sp;
        match Sim.Trace.events tr with
        | [ i; c; s ] ->
            Alcotest.(check bool) "instant phase" true
              (i.Sim.Trace.ev_phase = Sim.Trace.Instant);
            Alcotest.(check string) "instant cat" "cell" i.Sim.Trace.ev_cat;
            Alcotest.(check int64) "complete dur" (Sim.Time.us 5)
              (Option.get c.Sim.Trace.ev_dur);
            Alcotest.(check string) "span name" "pfs.read" s.Sim.Trace.ev_name;
            Alcotest.(check int64) "span dur" (Sim.Time.us 15)
              (Option.get s.Sim.Trace.ev_dur);
            Alcotest.(check int) "span args merged" 2
              (List.length s.Sim.Trace.ev_args)
        | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs));
    Alcotest.test_case "disabled span is free and silent" `Quick (fun () ->
        let tr = Sim.Trace.create ~enabled:false () in
        let sp =
          Sim.Trace.span_begin tr ~ts:Sim.Time.zero ~sub:Sim.Subsystem.Sim "x"
        in
        Sim.Trace.span_end tr ~ts:(Sim.Time.ms 1) sp;
        Alcotest.(check int) "nothing recorded" 0 (Sim.Trace.length tr));
    Alcotest.test_case "set_capacity resizes mid-run and restarts the sink"
      `Quick (fun () ->
        let tr = Sim.Trace.create ~capacity:3 () in
        for i = 1 to 10 do
          Sim.Trace.record tr (Sim.Time.ms i) (Printf.sprintf "e%d" i)
        done;
        Alcotest.(check int) "pre-resize retained" 3 (Sim.Trace.length tr);
        Alcotest.(check int) "pre-resize dropped" 7 (Sim.Trace.dropped tr);
        (* Shrink while recording is active: events and the drop counter
           both reset, so post-resize statistics describe the new
           capacity only. *)
        Sim.Trace.set_capacity tr (Some 2);
        Alcotest.(check int) "resize clears events" 0 (Sim.Trace.length tr);
        Alcotest.(check int) "resize clears drop count" 0
          (Sim.Trace.dropped tr);
        for i = 1 to 5 do
          Sim.Trace.record tr (Sim.Time.ms (10 + i)) (Printf.sprintf "f%d" i)
        done;
        Alcotest.(check int) "new ring retains 2" 2 (Sim.Trace.length tr);
        Alcotest.(check int) "new ring dropped 3" 3 (Sim.Trace.dropped tr);
        Alcotest.(check (list string)) "newest survive" [ "f4"; "f5" ]
          (List.map snd (Sim.Trace.to_list tr));
        (* Widen to unbounded: again a fresh start, and nothing drops. *)
        Sim.Trace.set_capacity tr None;
        Alcotest.(check int) "unbounded resize clears" 0 (Sim.Trace.length tr);
        Alcotest.(check int) "unbounded resize clears drops" 0
          (Sim.Trace.dropped tr);
        for i = 1 to 5000 do
          Sim.Trace.record tr (Sim.Time.ms i) "x"
        done;
        Alcotest.(check int) "unbounded keeps all" 5000 (Sim.Trace.length tr);
        Alcotest.(check int) "unbounded drops none" 0 (Sim.Trace.dropped tr));
    Alcotest.test_case "flow recording is gated separately from the sink"
      `Quick (fun () ->
        let tr = Sim.Trace.create () in
        let f = Sim.Trace.alloc_flow tr in
        Alcotest.(check int) "ids start at 1" 1 f;
        Alcotest.(check bool) "flows off by default" false
          (Sim.Trace.flows_on tr);
        Alcotest.(check bool) "cell detail on by default" true
          (Sim.Trace.cell_detail_on tr);
        Sim.Trace.flow_start tr ~ts:(Sim.Time.us 1) ~sub:Sim.Subsystem.Atm
          ~flow:f "start";
        Alcotest.(check int) "no-op while off" 0 (Sim.Trace.length tr);
        Sim.Trace.set_flows tr true;
        Sim.Trace.set_cell_detail tr false;
        Alcotest.(check bool) "flows on" true (Sim.Trace.flows_on tr);
        Alcotest.(check bool) "cell detail off" false
          (Sim.Trace.cell_detail_on tr);
        Sim.Trace.flow_start tr ~ts:(Sim.Time.us 1) ~sub:Sim.Subsystem.Atm
          ~flow:f "start";
        Sim.Trace.flow_step tr ~ts:(Sim.Time.us 2) ~sub:Sim.Subsystem.Atm
          ~flow:f "hop";
        Sim.Trace.flow_end tr ~ts:(Sim.Time.us 3) ~sub:Sim.Subsystem.Atm
          ~flow:f "end";
        Alcotest.(check int) "three events" 3 (Sim.Trace.length tr);
        (* Allocation is independent of recording state. *)
        Alcotest.(check int) "next id" 2 (Sim.Trace.alloc_flow tr);
        (match Sim.Trace.events tr with
        | [ s; m; e ] ->
            Alcotest.(check bool) "phases" true
              (s.Sim.Trace.ev_phase = Sim.Trace.Flow_start
              && m.Sim.Trace.ev_phase = Sim.Trace.Flow_step
              && e.Sim.Trace.ev_phase = Sim.Trace.Flow_end);
            Alcotest.(check int) "flow id carried" f s.Sim.Trace.ev_flow
        | _ -> Alcotest.fail "expected three events");
        (* Disabling the sink also turns the flow guard off. *)
        Sim.Trace.enable tr false;
        Alcotest.(check bool) "flows_on tracks enable" false
          (Sim.Trace.flows_on tr));
  ]

(* Minimal substring check, enough to validate exported JSON content
   without a parser dependency. *)
let contains haystack needle =
  let n = String.length needle and l = String.length haystack in
  let rec scan i =
    i + n <= l && (String.sub haystack i n = needle || scan (i + 1))
  in
  n = 0 || scan 0

let export_tests =
  [
    Alcotest.test_case "chrome export round-trips the events" `Quick (fun () ->
        let tr = Sim.Trace.create () in
        Sim.Trace.instant tr ~ts:(Sim.Time.us 3) ~sub:Sim.Subsystem.Nemesis
          ~cat:"sched"
          ~args:[ ("domain", Sim.Trace.Str "cam\"era") ]
          "deadline_miss";
        Sim.Trace.complete tr ~ts:(Sim.Time.us 10) ~dur:(Sim.Time.us 4)
          ~sub:Sim.Subsystem.Atm "tx";
        let json = Sim.Json.to_string (Sim.Trace.to_chrome tr) in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("contains " ^ needle) true
              (contains json needle))
          [
            "\"traceEvents\":";
            "\"ph\":\"i\"";
            "\"ph\":\"X\"";
            "\"name\":\"deadline_miss\"";
            "\"dur\":4.0";
            "\"thread_name\"";
            (* the quote in the arg value must be escaped *)
            "cam\\\"era";
            "\"dropped\":0";
          ]);
    Alcotest.test_case "jsonl export: one object per line, oldest first" `Quick
      (fun () ->
        let tr = Sim.Trace.create () in
        Sim.Trace.instant tr ~ts:(Sim.Time.us 1) ~sub:Sim.Subsystem.Pfs "a";
        Sim.Trace.instant tr ~ts:(Sim.Time.us 2) ~sub:Sim.Subsystem.Pfs "b";
        let lines =
          String.split_on_char '\n' (String.trim (Sim.Trace.to_jsonl tr))
        in
        Alcotest.(check int) "two events + footer" 3 (List.length lines);
        Alcotest.(check bool) "first is a" true
          (contains (List.nth lines 0) "\"name\":\"a\"");
        Alcotest.(check bool) "second is b" true
          (contains (List.nth lines 1) "\"name\":\"b\"");
        Alcotest.(check bool) "footer closes the stream" true
          (contains (List.nth lines 2) "\"meta\":\"dropped\""));
    Alcotest.test_case "chrome export renders flow phases with ids" `Quick
      (fun () ->
        let tr = Sim.Trace.create () in
        Sim.Trace.set_flows tr true;
        let f = Sim.Trace.alloc_flow tr in
        Sim.Trace.flow_start tr ~ts:(Sim.Time.us 1) ~sub:Sim.Subsystem.Atm
          ~cat:"hop"
          ~args:[ ("stream", Sim.Trace.Str "cam:32") ]
          ~flow:f "send";
        Sim.Trace.flow_step tr ~ts:(Sim.Time.us 2) ~sub:Sim.Subsystem.Atm
          ~cat:"hop" ~flow:f "sw:s1";
        Sim.Trace.flow_end tr ~ts:(Sim.Time.us 3) ~sub:Sim.Subsystem.Atm
          ~cat:"hop" ~flow:f "sink";
        let json = Sim.Json.to_string (Sim.Trace.to_chrome tr) in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("contains " ^ needle) true
              (contains json needle))
          [
            "\"ph\":\"s\"";
            "\"ph\":\"t\"";
            (* binding point "e": the arrow ends at the end event *)
            "\"ph\":\"f\"";
            "\"bp\":\"e\"";
            "\"id\":1";
          ]);
    Alcotest.test_case "exporters carry the drop counter as a final record"
      `Quick (fun () ->
        let tr = Sim.Trace.create ~capacity:2 () in
        for i = 1 to 5 do
          Sim.Trace.instant tr ~ts:(Sim.Time.us i) ~sub:Sim.Subsystem.Atm
            (Printf.sprintf "e%d" i)
        done;
        Alcotest.(check int) "three dropped" 3 (Sim.Trace.dropped tr);
        let chrome = Sim.Json.to_string (Sim.Trace.to_chrome tr) in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("chrome contains " ^ needle) true
              (contains chrome needle))
          [
            "\"process_name\"";
            "\"name\":\"pegasus\"";
            "\"thread_name\"";
            "\"trace_dropped\"";
            "\"dropped\":3";
          ];
        (* The drop record closes the traceEvents array: no event
           follows it. *)
        let tail_from marker s =
          let n = String.length marker and l = String.length s in
          let rec last best i =
            if i + n > l then best
            else if String.sub s i n = marker then last (Some i) (i + 1)
            else last best (i + 1)
          in
          match last None 0 with
          | Some i -> String.sub s i (l - i)
          | None -> Alcotest.failf "marker %s not found" marker
        in
        let tail = tail_from "trace_dropped" chrome in
        Alcotest.(check bool) "no event after the drop record" false
          (contains tail "\"ph\":\"i\"");
        (* JSONL: one line per retained event plus the footer line. *)
        let lines =
          String.split_on_char '\n' (String.trim (Sim.Trace.to_jsonl tr))
        in
        Alcotest.(check int) "two events + footer" 3 (List.length lines);
        Alcotest.(check string) "footer line"
          "{\"meta\":\"dropped\",\"dropped\":3}"
          (List.nth lines 2));
    Alcotest.test_case "json escaping and number forms" `Quick (fun () ->
        let j =
          Sim.Json.Obj
            [
              ("s", Sim.Json.String "tab\tnl\n\"q\"");
              ("i", Sim.Json.Int (-3));
              ("f", Sim.Json.Float 2.5);
              ("whole", Sim.Json.Float 7.0);
              ("nan", Sim.Json.Float Float.nan);
              ("l", Sim.Json.List [ Sim.Json.Bool true; Sim.Json.Null ]);
            ]
        in
        Alcotest.(check string) "rendering"
          "{\"s\":\"tab\\tnl\\n\\\"q\\\"\",\"i\":-3,\"f\":2.5,\"whole\":7.0,\"nan\":null,\"l\":[true,null]}"
          (Sim.Json.to_string j));
  ]

(* ------------------------------------------------------------------ *)
(* Audit: per-stream QoS reports built from flow events.               *)

(* A synthetic capture with known numbers.  "cam" has three completed
   flows (10us net hop, then a display interval of 40/40/100us), one
   flow still in flight and nothing else; "disk" has two identical
   flows dominated by a 70us seek.  One stray step references a flow
   that never started. *)
let audit_capture () =
  let tr = Sim.Trace.create ~unbounded:true () in
  Sim.Trace.set_flows tr true;
  let flow ~stream ~t0 hops =
    let f = Sim.Trace.alloc_flow tr in
    Sim.Trace.flow_start tr ~ts:(Sim.Time.us t0) ~sub:Sim.Subsystem.Atm
      ~cat:"hop"
      ~args:[ ("stream", Sim.Trace.Str stream) ]
      ~flow:f "start";
    let rec go = function
      | [] -> ()
      | [ (dt, name) ] ->
          Sim.Trace.flow_end tr
            ~ts:(Sim.Time.us (t0 + dt))
            ~sub:Sim.Subsystem.Atm ~cat:"hop" ~flow:f name
      | (dt, name) :: rest ->
          Sim.Trace.flow_step tr
            ~ts:(Sim.Time.us (t0 + dt))
            ~sub:Sim.Subsystem.Atm ~cat:"hop" ~flow:f name;
          go rest
    in
    go hops
  in
  flow ~stream:"cam" ~t0:100 [ (10, "net"); (50, "display") ];
  flow ~stream:"cam" ~t0:200 [ (10, "net"); (50, "display") ];
  flow ~stream:"cam" ~t0:300 [ (10, "net"); (110, "display") ];
  let in_flight = Sim.Trace.alloc_flow tr in
  Sim.Trace.flow_start tr ~ts:(Sim.Time.us 400) ~sub:Sim.Subsystem.Atm
    ~cat:"hop"
    ~args:[ ("stream", Sim.Trace.Str "cam") ]
    ~flow:in_flight "start";
  flow ~stream:"disk" ~t0:100 [ (70, "seek"); (80, "done") ];
  flow ~stream:"disk" ~t0:300 [ (70, "seek"); (80, "done") ];
  Sim.Trace.flow_step tr ~ts:(Sim.Time.us 999) ~sub:Sim.Subsystem.Atm
    ~cat:"hop" ~flow:9999 "stray";
  tr

let audit_tests =
  [
    Alcotest.test_case "streams, stages and exhaustive attribution" `Quick
      (fun () ->
        let r = Sim.Audit.of_trace (audit_capture ()) in
        Alcotest.(check int) "completed flows" 5 r.Sim.Audit.rp_flows;
        Alcotest.(check int) "incomplete flows" 1 r.Sim.Audit.rp_incomplete;
        Alcotest.(check int) "orphan events" 1 r.Sim.Audit.rp_orphan_events;
        Alcotest.(check (list string)) "streams sorted by label"
          [ "cam"; "disk" ]
          (List.map (fun s -> s.Sim.Audit.st_label) r.Sim.Audit.rp_streams);
        let cam = List.hd r.Sim.Audit.rp_streams in
        Alcotest.(check int) "cam flows" 3 cam.Sim.Audit.st_flows;
        Alcotest.(check int) "cam in flight" 1 cam.Sim.Audit.st_incomplete;
        (* Latencies 50, 50 and 110us: median 50, mean 70, max 110. *)
        Alcotest.(check (float 1e-6)) "cam e2e p50" 50_000.0
          cam.Sim.Audit.st_e2e_p50_ns;
        Alcotest.(check (float 1e-6)) "cam e2e mean" 70_000.0
          cam.Sim.Audit.st_e2e_mean_ns;
        Alcotest.(check (float 1e-6)) "cam e2e max" 110_000.0
          cam.Sim.Audit.st_e2e_max_ns;
        (* Consecutive e2e deltas |50-50| and |110-50|: mean 30, max 60. *)
        Alcotest.(check (float 1e-6)) "cam jitter mean" 30_000.0
          cam.Sim.Audit.st_jitter_mean_ns;
        Alcotest.(check (float 1e-6)) "cam jitter max" 60_000.0
          cam.Sim.Audit.st_jitter_max_ns;
        (* Every nanosecond of e2e is attributed to a named stage, and
           the display intervals (40+40+100 of 210us total) dominate. *)
        Alcotest.(check (float 1e-9)) "cam fully attributed" 1.0
          cam.Sim.Audit.st_attributed;
        Alcotest.(check (option string)) "cam critical stage"
          (Some "display") cam.Sim.Audit.st_critical;
        (match cam.Sim.Audit.st_stages with
        | [ net; display ] ->
            Alcotest.(check string) "stage order" "net" net.Sim.Audit.sg_name;
            Alcotest.(check int) "net intervals" 3 net.Sim.Audit.sg_count;
            Alcotest.(check (float 1e-6)) "net p50" 10_000.0
              net.Sim.Audit.sg_p50_ns;
            Alcotest.(check (float 1e-9)) "net share" (30.0 /. 210.0)
              net.Sim.Audit.sg_share;
            Alcotest.(check (float 1e-9)) "display share" (180.0 /. 210.0)
              display.Sim.Audit.sg_share
        | stages ->
            Alcotest.failf "cam: expected 2 stages, got %d"
              (List.length stages));
        let disk = List.nth r.Sim.Audit.rp_streams 1 in
        Alcotest.(check (option string)) "disk critical stage" (Some "seek")
          disk.Sim.Audit.st_critical);
    Alcotest.test_case "deadline misses land on the overrunning stage" `Quick
      (fun () ->
        let r =
          Sim.Audit.of_trace ~deadline_ns:60_000 (audit_capture ())
        in
        let cam = List.hd r.Sim.Audit.rp_streams in
        (* Only the 110us flow breaks the 60us deadline, and its display
           interval overran the stream median (100 vs 40us) far more
           than its net hop did (10 vs 10). *)
        Alcotest.(check int) "cam misses" 1 cam.Sim.Audit.st_misses;
        List.iter
          (fun sg ->
            Alcotest.(check int)
              ("misses on " ^ sg.Sim.Audit.sg_name)
              (if sg.Sim.Audit.sg_name = "display" then 1 else 0)
              sg.Sim.Audit.sg_misses)
          cam.Sim.Audit.st_stages;
        (* Both disk flows take 80us: two misses. *)
        let disk = List.nth r.Sim.Audit.rp_streams 1 in
        Alcotest.(check int) "disk misses" 2 disk.Sim.Audit.st_misses);
    Alcotest.test_case "the report is a deterministic function of the trace"
      `Quick (fun () ->
        let render tr =
          let r = Sim.Audit.of_trace ~deadline_ns:60_000 tr in
          ( Sim.Json.to_string (Sim.Audit.to_json r),
            Format.asprintf "%a" Sim.Audit.pp r )
        in
        let j1, t1 = render (audit_capture ()) in
        let j2, t2 = render (audit_capture ()) in
        Alcotest.(check string) "json identical" j1 j2;
        Alcotest.(check string) "table identical" t1 t2;
        Alcotest.(check bool) "json carries the schema tag" true
          (contains j1 "\"schema\":\"pegasus-audit/1\""));
  ]

let metrics_tests =
  [
    Alcotest.test_case "counters, gauges and dists update through handles"
      `Quick (fun () ->
        let m = Sim.Metrics.create () in
        let c = Sim.Metrics.counter m ~sub:Sim.Subsystem.Atm "cells" in
        Sim.Metrics.incr c;
        Sim.Metrics.incr ~by:4 c;
        Alcotest.(check int) "counter" 5 (Sim.Metrics.value c);
        let g = Sim.Metrics.gauge m ~sub:Sim.Subsystem.Sim "depth" in
        Sim.Metrics.set g 3.5;
        Alcotest.(check (float 1e-9)) "gauge" 3.5 (Sim.Metrics.get g);
        let d = Sim.Metrics.dist m ~sub:Sim.Subsystem.Rpc "lat" in
        List.iter (Sim.Metrics.observe d) [ 1.0; 2.0; 3.0 ];
        Alcotest.(check int) "dist count" 3 (Sim.Metrics.observed d));
    Alcotest.test_case "get-or-create shares the metric; mismatch raises"
      `Quick (fun () ->
        let m = Sim.Metrics.create () in
        let a = Sim.Metrics.counter m ~sub:Sim.Subsystem.Pfs "n" in
        let b = Sim.Metrics.counter m ~sub:Sim.Subsystem.Pfs "n" in
        Sim.Metrics.incr a;
        Sim.Metrics.incr b;
        Alcotest.(check int) "shared" 2 (Sim.Metrics.value a);
        (* same name under another subsystem is a different metric *)
        let other = Sim.Metrics.counter m ~sub:Sim.Subsystem.Atm "n" in
        Alcotest.(check int) "distinct" 0 (Sim.Metrics.value other);
        Alcotest.check_raises "kind mismatch"
          (Invalid_argument
             "Metrics: pfs/n registered as counter, requested as gauge")
          (fun () -> ignore (Sim.Metrics.gauge m ~sub:Sim.Subsystem.Pfs "n")));
    Alcotest.test_case "snapshot emits sorted JSON with percentiles" `Quick
      (fun () ->
        let m = Sim.Metrics.create () in
        let c =
          Sim.Metrics.counter m ~sub:Sim.Subsystem.Nemesis ~help:"switches"
            "kernel.switches"
        in
        Sim.Metrics.incr ~by:7 c;
        let d = Sim.Metrics.dist m ~sub:Sim.Subsystem.Atm "delay_us" in
        for i = 1 to 100 do
          Sim.Metrics.observe d (Float.of_int i)
        done;
        let json = Sim.Json.to_string (Sim.Metrics.snapshot m) in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("contains " ^ needle) true
              (contains json needle))
          [
            "\"metrics\":[";
            "\"kind\":\"counter\"";
            "\"value\":7";
            "\"help\":\"switches\"";
            "\"kind\":\"dist\"";
            "\"count\":100";
            "\"p95\":";
            "\"p99\":";
          ];
        (* atm sorts before nemesis *)
        let atm_at = ref 0 and nem_at = ref 0 in
        String.iteri
          (fun i ch ->
            if ch = 'd' && !atm_at = 0 && contains (String.sub json i 10) "delay_us"
            then atm_at := i;
            if
              ch = 'k' && !nem_at = 0
              && i + 15 <= String.length json
              && contains (String.sub json i 15) "kernel.switches"
            then nem_at := i)
          json;
        Alcotest.(check bool) "sorted by subsystem" true (!atm_at < !nem_at));
    Alcotest.test_case "engine counts fired and cancelled events" `Quick
      (fun () ->
        let m = Sim.Metrics.create () in
        let e = Sim.Engine.create ~metrics:m () in
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 1) (fun () -> ()));
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 2) (fun () -> ()));
        let id = Sim.Engine.schedule e ~delay:(Sim.Time.ms 3) (fun () -> ()) in
        ignore (Sim.Engine.cancel e id);
        Sim.Engine.run e;
        let fired = Sim.Metrics.counter m ~sub:Sim.Subsystem.Sim "engine.events_fired" in
        let cancelled =
          Sim.Metrics.counter m ~sub:Sim.Subsystem.Sim "engine.events_cancelled"
        in
        Alcotest.(check int) "fired" 2 (Sim.Metrics.value fired);
        Alcotest.(check int) "cancelled" 1 (Sim.Metrics.value cancelled));
    Alcotest.test_case "reset zeroes in place and keeps handles connected"
      `Quick (fun () ->
        let m = Sim.Metrics.create () in
        let c = Sim.Metrics.counter m ~sub:Sim.Subsystem.Atm "cells" in
        let g = Sim.Metrics.gauge m ~sub:Sim.Subsystem.Sim "depth" in
        let d = Sim.Metrics.dist m ~sub:Sim.Subsystem.Rpc "lat" in
        Sim.Metrics.incr ~by:9 c;
        Sim.Metrics.set g 2.5;
        Sim.Metrics.observe d 1.0;
        Sim.Metrics.reset m;
        Alcotest.(check int) "counter zeroed" 0 (Sim.Metrics.value c);
        Alcotest.(check (float 1e-9)) "gauge zeroed" 0.0 (Sim.Metrics.get g);
        Alcotest.(check int) "dist emptied" 0 (Sim.Metrics.observed d);
        (* Post-reset updates through the pre-reset handles must land in
           future snapshots — they used to vanish because reset dropped
           the registry entries the handles aliased. *)
        Sim.Metrics.incr ~by:3 c;
        Sim.Metrics.observe d 42.0;
        let json = Sim.Json.to_string (Sim.Metrics.snapshot m) in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("contains " ^ needle) true
              (contains json needle))
          [ "\"value\":3"; "\"count\":1"; "\"p50\":42.0" ]);
    Alcotest.test_case "dists are reservoir-bounded by default, exact on demand"
      `Quick (fun () ->
        let bounded = Sim.Metrics.create () in
        let exact = Sim.Metrics.create ~exact_dists:true () in
        let db = Sim.Metrics.dist bounded ~sub:Sim.Subsystem.Rpc "lat" in
        let de = Sim.Metrics.dist exact ~sub:Sim.Subsystem.Rpc "lat" in
        for i = 1 to 50_000 do
          let x = Float.of_int (i mod 1000) in
          Sim.Metrics.observe db x;
          Sim.Metrics.observe de x
        done;
        Alcotest.(check int) "both count the full stream" 50_000
          (Sim.Metrics.observed db);
        Alcotest.(check int) "exact too" 50_000 (Sim.Metrics.observed de);
        (* The exact p50 of (i mod 1000) over 50k draws is ~499.5; the
           reservoir must agree within its documented tolerance. *)
        let ps m =
          match Sim.Metrics.snapshot m with
          | Sim.Json.Obj [ ("metrics", Sim.Json.List [ Sim.Json.Obj fields ]) ]
            -> (
              match List.assoc "p50" fields with
              | Sim.Json.Float f -> f
              | _ -> Alcotest.fail "p50 not a float")
          | _ -> Alcotest.fail "unexpected snapshot shape"
        in
        let pe = ps exact and pb = ps bounded in
        Alcotest.(check bool) "exact p50 is exact" true
          (Float.abs (pe -. 499.5) < 1.0);
        Alcotest.(check bool) "reservoir p50 within tolerance" true
          (Float.abs (pb -. pe) < 65.0);
        (* Deterministic: a second bounded registry fed the same stream
           snapshots to the identical JSON. *)
        let bounded2 = Sim.Metrics.create () in
        let db2 = Sim.Metrics.dist bounded2 ~sub:Sim.Subsystem.Rpc "lat" in
        for i = 1 to 50_000 do
          Sim.Metrics.observe db2 (Float.of_int (i mod 1000))
        done;
        Alcotest.(check string) "byte-identical snapshots"
          (Sim.Json.to_string (Sim.Metrics.snapshot bounded))
          (Sim.Json.to_string (Sim.Metrics.snapshot bounded2)));
  ]

let daemon_tests =
  [
    Alcotest.test_case "daemons do not keep an unbounded run alive" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let ticks = ref 0 in
        Sim.Engine.every ~daemon:true e ~period:(Sim.Time.ms 10) (fun () ->
            incr ticks;
            true);
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 35) (fun () -> ()));
        Sim.Engine.run e;
        (* The run stops at the last user event; the daemon fired only
           while user work remained. *)
        Alcotest.(check int) "three ticks" 3 !ticks;
        Alcotest.(check int64) "stopped at 35ms" (Sim.Time.ms 35)
          (Sim.Engine.now e));
    Alcotest.test_case "daemons do fire under a time bound" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let ticks = ref 0 in
        Sim.Engine.every ~daemon:true e ~period:(Sim.Time.ms 10) (fun () ->
            incr ticks;
            true);
        Sim.Engine.run e ~until:(Sim.Time.ms 55);
        Alcotest.(check int) "five ticks" 5 !ticks);
    Alcotest.test_case "cancelling a daemon keeps the accounting right" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let id = Sim.Engine.schedule ~daemon:true e ~delay:(Sim.Time.ms 1) (fun () -> ()) in
        ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ms 2) (fun () -> ()));
        ignore (Sim.Engine.cancel e id);
        Sim.Engine.run e;
        Alcotest.(check int64) "user event still ran" (Sim.Time.ms 2)
          (Sim.Engine.now e));
  ]

let () =
  Alcotest.run "sim"
    [
      ("time", time_tests);
      ("heap", heap_tests);
      ("calendar", calendar_tests);
      ("engine", engine_tests);
      ("rng", rng_tests);
      ("stats", stats_tests);
      ("reservoir", reservoir_tests);
      ("trace", trace_tests);
      ("export", export_tests);
      ("audit", audit_tests);
      ("metrics", metrics_tests);
      ("daemon", daemon_tests);
      ("fault", fault_tests);
    ]
