(* The cell-train fast path: zero-copy plumbing and, above all, the
   differential property the whole design rests on — a network driven
   through [send_frame] produces byte-identical results whether frames
   move as trains (one event per hop) or cell by cell. *)

let us = Sim.Time.us
let ms = Sim.Time.ms

(* {1 Zero-copy segmentation / reassembly} *)

let train_aal5_tests =
  [
    Alcotest.test_case "segment_train round-trips through push_train" `Quick
      (fun () ->
        let payload = Bytes.init 1000 (fun i -> Char.chr (i land 0xff)) in
        let train = Atm.Aal5.segment_train ~vci:7 payload in
        let r = Atm.Aal5.Reassembler.create () in
        match Atm.Aal5.Reassembler.push_train r train with
        | [ Ok b ] -> Alcotest.(check bytes) "payload" payload b
        | _ -> Alcotest.fail "expected exactly one completed frame");
    Alcotest.test_case "cells are views into one PDU buffer" `Quick (fun () ->
        let payload = Bytes.of_string "zero copy" in
        let train = Atm.Aal5.segment_train ~vci:1 payload in
        let cells = Atm.Aal5.segment ~vci:1 payload in
        List.iteri
          (fun i (c : Atm.Cell.t) ->
            Alcotest.(check int) "offset" (i * Atm.Cell.payload_bytes) c.off)
          cells;
        Alcotest.(check int)
          "train covers the PDU"
          (List.length cells)
          (Atm.Train.count train);
        (* Mutating the train's buffer is visible through a cell view:
           same backing store. *)
        let c = Atm.Train.cell train 0 in
        Bytes.set c.buf c.off 'Z';
        Alcotest.(check char) "shared" 'Z' (Bytes.get (Atm.Train.buf train) 0));
    Alcotest.test_case "push_train equals per-cell push at any split" `Quick
      (fun () ->
        let payload = Bytes.init 700 (fun i -> Char.chr ((i * 7) land 0xff)) in
        let n = Atm.Aal5.frame_cells (Bytes.length payload) in
        for split = 1 to n - 1 do
          let train = Atm.Aal5.segment_train ~vci:3 payload in
          let head = Atm.Train.sub train ~first:0 ~count:split in
          let tail = Atm.Train.sub train ~first:split ~count:(n - split) in
          let r = Atm.Aal5.Reassembler.create () in
          let r1 = Atm.Aal5.Reassembler.push_train r head in
          let r2 = Atm.Aal5.Reassembler.push_train r tail in
          let results = r1 @ r2 in
          match results with
          | [ Ok b ] -> Alcotest.(check bytes) "payload" payload b
          | _ -> Alcotest.fail "expected one frame"
        done);
    Alcotest.test_case "corrupted train reports Crc_mismatch" `Quick (fun () ->
        let train = Atm.Aal5.segment_train ~vci:1 (Bytes.of_string "corrupt me") in
        Bytes.set (Atm.Train.buf train) 3 'X';
        let r = Atm.Aal5.Reassembler.create () in
        match Atm.Aal5.Reassembler.push_train r train with
        | [ Error Atm.Aal5.Crc_mismatch ] -> ()
        | _ -> Alcotest.fail "expected Crc_mismatch");
    Alcotest.test_case "oversized train reports Too_long like per-cell" `Quick
      (fun () ->
        (* max_frame of two cells; a five-cell train overflows partway:
           push_train must produce exactly what per-cell pushes do. *)
        let pdu = Bytes.create (5 * Atm.Cell.payload_bytes) in
        let mk () = Atm.Train.make ~vci:1 (Bytes.copy pdu) in
        let by_train =
          Atm.Aal5.Reassembler.push_train
            (Atm.Aal5.Reassembler.create ~max_frame:96 ())
            (mk ())
        in
        let by_cell =
          let r = Atm.Aal5.Reassembler.create ~max_frame:96 () in
          let train = mk () in
          List.concat
            (List.init (Atm.Train.count train) (fun i ->
                 match Atm.Aal5.Reassembler.push r (Atm.Train.cell train i) with
                 | None -> []
                 | Some res -> [ res ]))
        in
        Alcotest.(check int) "same result count" (List.length by_cell)
          (List.length by_train);
        Alcotest.(check bool) "same results" true (by_train = by_cell);
        Alcotest.(check bool) "Too_long seen" true
          (List.exists (function Error Atm.Aal5.Too_long -> true | _ -> false)
             by_train));
  ]

let crc_tests =
  [
    Alcotest.test_case "second known-answer vector" `Quick (fun () ->
        (* CRC-32("The quick brown fox jumps over the lazy dog") *)
        Alcotest.(check int) "check value" 0x414FA339
          (Atm.Crc32.digest_bytes
             (Bytes.of_string "The quick brown fox jumps over the lazy dog")));
  ]

(* {1 Link-level train behaviour} *)

let link_tests =
  [
    Alcotest.test_case "train delivery matches per-cell last arrival" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let got = ref [] in
        let link =
          Atm.Link.create e ~rx:(fun c -> got := (Sim.Engine.now e, c) :: !got) ()
        in
        let train = Atm.Aal5.segment_train ~vci:1 (Bytes.create 100) in
        let n = Atm.Train.count train in
        Atm.Link.send_train link train;
        Sim.Engine.run e;
        (* Fan-out without a train receiver happens at the window's
           completion instant: last cell's serialisation end + prop. *)
        let expect = Sim.Time.add (Sim.Time.ns (n * 4240)) (us 5) in
        Alcotest.(check int) "all cells" n (List.length !got);
        List.iter
          (fun (at, _) -> Alcotest.(check int64) "arrival" expect at)
          !got);
    Alcotest.test_case "queue_depth integer math at slot boundaries" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let link = Atm.Link.create e ~rx:(fun _ -> ()) () in
        for _ = 1 to 10 do
          Atm.Link.send link (Atm.Cell.make_blank ~vci:1 ~last:true)
        done;
        (* 10 cells of 4240 ns committed at t=0. *)
        Alcotest.(check int) "all queued" 10 (Atm.Link.queue_depth link);
        Sim.Engine.run e ~until:(Sim.Time.ns 4240);
        Alcotest.(check int) "one slot gone" 9 (Atm.Link.queue_depth link);
        Sim.Engine.run e ~until:(Sim.Time.ns 4241);
        Alcotest.(check int) "mid-slot rounds up" 9 (Atm.Link.queue_depth link);
        Sim.Engine.run e ~until:(Sim.Time.ns (10 * 4240));
        Alcotest.(check int) "line idle" 0 (Atm.Link.queue_depth link));
    Alcotest.test_case "open-window accessors match per-cell counters" `Quick
      (fun () ->
        let per_cell_sent = ref (-1) in
        let counted path =
          let e = Sim.Engine.create () in
          let link = Atm.Link.create e ~rx:(fun _ -> ()) ~queue_cells:4 () in
          let snap = ref (-1) in
          (* Sample the counters mid-window, before delivery events. *)
          ignore
            (Sim.Engine.schedule_at e ~at:(Sim.Time.ns 1) (fun () ->
                 snap := Atm.Link.cells_sent link));
          let frame = Bytes.create 480 in
          if path then Atm.Link.send_train link (Atm.Aal5.segment_train ~vci:1 frame)
          else
            List.iter (Atm.Link.send link) (Atm.Aal5.segment ~vci:1 frame);
          Sim.Engine.run e;
          (!snap, Atm.Link.cells_sent link, Atm.Link.cells_dropped link)
        in
        let a = counted false and b = counted true in
        per_cell_sent := (fun (_, s, _) -> s) a;
        Alcotest.(check bool) "identical" true (a = b);
        Alcotest.(check int) "overflow happened" 4 !per_cell_sent);
  ]

(* {1 The differential property}

   A two-switch network with a best-effort video-like flow, a reserved
   (priority) flow and bursty cross traffic over a shared bottleneck,
   plus an outage window and a wire-loss window injected mid-run.  The
   run is executed twice from identical seeds — train path on and off —
   and every externally visible outcome must be byte-identical:
   per-frame completion instants and payloads at every sink, and every
   link/switch counter. *)

type outcome = {
  frames : (string * int * int * int) list;  (* sink, t_ns, len, digest *)
  counters : (int * int * int) list;  (* per link: sent, dropped, lost *)
  switched : int list;
  errors : int;
  flow_events : (int * string * int) list;  (* ts_ns, name, flow; sorted *)
}

(* With [flows] set, the run records causal flow events (flow-only
   mode: no cell detail, so the train path stays engaged) — every sent
   frame gets a flow id, switches record per-hop steps, sinks record
   the end.  The differential property must keep holding, and both
   paths must record the same flow events. *)
let run_differential ?(flows = false) ~trains ~seed () =
  let trace = Sim.Trace.create ~unbounded:true ~enabled:flows () in
  if flows then begin
    Sim.Trace.set_flows trace true;
    Sim.Trace.set_cell_detail trace false
  end;
  let e = Sim.Engine.create ~trace () in
  let net = Atm.Net.create e in
  Atm.Net.set_train_path net trains;
  let a = Atm.Net.add_host net ~name:"a" in
  let c = Atm.Net.add_host net ~name:"c" in
  let b = Atm.Net.add_host net ~name:"b" in
  let d = Atm.Net.add_host net ~name:"d" in
  let s1 = Atm.Net.add_switch net ~name:"s1" ~ports:4 in
  let s2 = Atm.Net.add_switch net ~name:"s2" ~ports:4 in
  Atm.Net.connect net a s1;
  Atm.Net.connect net c s1;
  (* The shared bottleneck: a shallow queue so bursts overflow partway
     through a train. *)
  Atm.Net.connect net ~queue_cells:24 s1 s2;
  Atm.Net.connect net s2 b;
  Atm.Net.connect net s2 d;
  let frames = ref [] and errors = ref 0 in
  let sink name =
    Atm.Net.frame_rx_pair_flow
      ~rx:(fun ~flow p ->
        if flow >= 0 && Sim.Trace.flows_on trace then
          Sim.Trace.flow_end trace
            ~ts:(Sim.Engine.now e)
            ~sub:Sim.Subsystem.Atm ~cat:"hop" ~flow "sink";
        frames :=
          ( name,
            Sim.Time.to_ns (Sim.Engine.now e),
            Bytes.length p,
            Atm.Crc32.digest_bytes p )
          :: !frames)
      ~on_error:(fun err ->
        incr errors;
        let code = match err with
          | Atm.Aal5.Crc_mismatch -> -1
          | Atm.Aal5.Length_mismatch -> -2
          | Atm.Aal5.Too_long -> -3
        in
        frames :=
          (name, Sim.Time.to_ns (Sim.Engine.now e), code, 0) :: !frames)
      ()
  in
  let vc_of name ?reserve_bps ~src ~dst () =
    let rx, rx_train = sink name in
    Atm.Net.open_vc ?reserve_bps net ~src ~dst ~rx ~rx_train
  in
  let main_vc = vc_of "main" ~src:a ~dst:b () in
  let prio_vc = vc_of "prio" ~reserve_bps:10_000_000 ~src:c ~dst:b () in
  let cross_vc = vc_of "cross" ~src:c ~dst:d () in
  let rng = Sim.Rng.create ~seed () in
  let payload rng len = Bytes.init len (fun _ -> Char.chr (Sim.Rng.int rng 256)) in
  let send stream vc p =
    let flow =
      if not (Sim.Trace.flows_on trace) then Sim.Trace.no_flow
      else begin
        let f = Sim.Trace.alloc_flow trace in
        Sim.Trace.flow_start trace
          ~ts:(Sim.Engine.now e)
          ~sub:Sim.Subsystem.Atm ~cat:"hop"
          ~args:[ ("stream", Sim.Trace.Str stream) ]
          ~flow:f "send";
        f
      end
    in
    Atm.Net.send_frame ~flow vc p
  in
  (* Best-effort frames of random size at a jittered period. *)
  let wl_rng = Sim.Rng.split rng in
  let rec main_tick () =
    send "main" main_vc (payload wl_rng (1 + Sim.Rng.int wl_rng 6000));
    ignore
      (Sim.Engine.schedule e
         ~delay:(Sim.Time.us (100 + Sim.Rng.int wl_rng 400))
         main_tick)
  in
  main_tick ();
  (* A reserved flow that lands mid-window on the shared links. *)
  let prio_rng = Sim.Rng.split rng in
  let rec prio_tick () =
    send "prio" prio_vc (payload prio_rng (1 + Sim.Rng.int prio_rng 400));
    ignore (Sim.Engine.schedule e ~delay:(Sim.Time.us 531) prio_tick)
  in
  prio_tick ();
  (* Bursty cross traffic: several frames back to back, enough to
     overflow the bottleneck queue partway through a burst. *)
  let cross_rng = Sim.Rng.split rng in
  let rec cross_tick () =
    for _ = 1 to 1 + Sim.Rng.int cross_rng 4 do
      send "cross" cross_vc (payload cross_rng (1 + Sim.Rng.int cross_rng 12_000))
    done;
    ignore
      (Sim.Engine.schedule e
         ~delay:(Sim.Time.us (200 + Sim.Rng.int cross_rng 700))
         cross_tick)
  in
  cross_tick ();
  (* Fault windows: an outage on the bottleneck, then Bernoulli wire
     loss everywhere (which forces the per-cell fallback), then clean. *)
  let fault_rng = Sim.Rng.split rng in
  ignore
    (Sim.Engine.schedule_at e ~at:(ms 8) (fun () ->
         Atm.Net.set_link_down net s1 s2 true));
  ignore
    (Sim.Engine.schedule_at e ~at:(ms 10) (fun () ->
         Atm.Net.set_link_down net s1 s2 false));
  ignore
    (Sim.Engine.schedule_at e ~at:(ms 14) (fun () ->
         Atm.Net.inject_loss net ~rng:fault_rng 0.02));
  ignore
    (Sim.Engine.schedule_at e ~at:(ms 18) (fun () -> Atm.Net.clear_faults net));
  Sim.Engine.run e ~until:(ms 25);
  {
    frames = List.rev !frames;
    counters =
      List.map
        (fun l ->
          (Atm.Link.cells_sent l, Atm.Link.cells_dropped l, Atm.Link.cells_lost l))
        (Atm.Net.links net);
    switched = List.map Atm.Switch.cells_switched (Atm.Net.switches net);
    errors = !errors;
    flow_events =
      (* The train path commits hop steps ahead of time: record order
         differs between the two paths, and a truncated run retains a
         few steps timed past the horizon that the per-cell path never
         executes.  The equivalence claim is over events within the
         simulated horizon, as a sorted set. *)
      (let horizon = Sim.Time.to_ns (Sim.Engine.now e) in
       List.sort compare
         (List.filter_map
            (fun (ev : Sim.Trace.event) ->
              match ev.Sim.Trace.ev_phase with
              | Sim.Trace.Flow_start | Sim.Trace.Flow_step | Sim.Trace.Flow_end
                ->
                  let ts = Sim.Time.to_ns ev.Sim.Trace.ev_ts in
                  if ts > horizon then None
                  else Some (ts, ev.Sim.Trace.ev_name, ev.Sim.Trace.ev_flow)
              | Sim.Trace.Instant | Sim.Trace.Complete -> None)
            (Sim.Trace.events trace)));
  }

let differential_tests =
  [
    Alcotest.test_case "train and per-cell runs are byte-identical" `Quick
      (fun () ->
        List.iter
          (fun seed ->
            let fast = run_differential ~trains:true ~seed () in
            let slow = run_differential ~trains:false ~seed () in
            Alcotest.(check int)
              (Printf.sprintf "seed %Ld: frame count" seed)
              (List.length slow.frames) (List.length fast.frames);
            List.iter2
              (fun sf ff ->
                if sf <> ff then
                  let name, t, len, _ = sf and name', t', len', _ = ff in
                  Alcotest.failf
                    "seed %Ld: frame diverged: %s@%dns len=%d vs %s@%dns len=%d"
                    seed name t len name' t' len')
              slow.frames fast.frames;
            Alcotest.(check bool)
              (Printf.sprintf "seed %Ld: counters" seed)
              true (slow = fast);
            (* The scenario must actually exercise drops and losses,
               or the property is vacuous. *)
            let dropped = List.fold_left (fun acc (_, d, _) -> acc + d) 0 slow.counters in
            let lost = List.fold_left (fun acc (_, _, l) -> acc + l) 0 slow.counters in
            Alcotest.(check bool) "queue pressure exercised" true (dropped > 0);
            Alcotest.(check bool) "faults exercised" true (lost > 0))
          [ 1L; 42L; 1994L ]);
    Alcotest.test_case
      "flow tracing on: still byte-identical, and both paths record the \
       same flow events"
      `Quick
      (fun () ->
        List.iter
          (fun seed ->
            let fast = run_differential ~flows:true ~trains:true ~seed () in
            let slow = run_differential ~flows:true ~trains:false ~seed () in
            (* The differential property holds with flow tracing on... *)
            Alcotest.(check bool)
              (Printf.sprintf "seed %Ld: outcomes identical" seed)
              true
              (slow.frames = fast.frames
              && slow.counters = fast.counters
              && slow.switched = fast.switched
              && slow.errors = fast.errors);
            (* ...the recorded flow events agree between the paths... *)
            Alcotest.(check int)
              (Printf.sprintf "seed %Ld: flow event count" seed)
              (List.length slow.flow_events)
              (List.length fast.flow_events);
            Alcotest.(check bool)
              (Printf.sprintf "seed %Ld: flow events identical" seed)
              true
              (slow.flow_events = fast.flow_events);
            (* ...and the capture is not vacuous: sends, per-switch hop
               steps and sink ends all appear. *)
            let count name =
              List.length
                (List.filter (fun (_, n, _) -> n = name) fast.flow_events)
            in
            List.iter
              (fun name ->
                Alcotest.(check bool)
                  (Printf.sprintf "seed %Ld: has %s events" seed name)
                  true
                  (count name > 0))
              [ "send"; "sw:s1"; "sw:s2"; "sink" ];
            (* Tracing must not perturb the simulation: the traced run's
               outcome equals the untraced one's. *)
            let untraced = run_differential ~trains:true ~seed () in
            Alcotest.(check bool)
              (Printf.sprintf "seed %Ld: tracing is outcome-neutral" seed)
              true
              (untraced.frames = fast.frames
              && untraced.counters = fast.counters
              && untraced.switched = fast.switched))
          [ 1L; 42L; 1994L ]);
  ]

let () =
  Alcotest.run "train"
    [
      ("aal5-train", train_aal5_tests);
      ("crc32-kat", crc_tests);
      ("link-train", link_tests);
      ("differential", differential_tests);
    ]
