(* Tests for Pfs.Directory: popularity-aware replication and read
   load balancing over a fleet of log-structured file servers. *)

let ms = Sim.Time.ms

let seg_64k = 65536

let pattern n tag = Bytes.init n (fun i -> Char.chr ((i + tag) land 0xff))

(* A fleet of [n] data-storing shards wired through a loopback
   transport. *)
let fleet ?(n = 4) ?(segment_bytes = seg_64k) ?delay ?config e =
  let logs =
    Array.init n (fun _ ->
        let raid = Pfs.Raid.create e ~store_data:true ~segment_bytes () in
        Pfs.Log.create e ~raid ())
  in
  Pfs.Directory.create e ~logs
    ~transport:(Pfs.Directory.loopback ?delay e)
    ?config ()

let dir_write e dir fid ~off data =
  let done_ = ref false in
  Pfs.Directory.write dir fid ~off ~data ~len:(Bytes.length data) (fun r ->
      (match r with Ok () -> () | Error _ -> Alcotest.fail "write failed");
      done_ := true);
  Sim.Engine.run e;
  Alcotest.(check bool) "write completed" true !done_

let dir_sync e dir =
  let done_ = ref false in
  Pfs.Directory.sync dir ~k:(fun r ->
      (match r with Ok () -> () | Error _ -> Alcotest.fail "sync failed");
      done_ := true);
  Sim.Engine.run e;
  Alcotest.(check bool) "sync completed" true !done_

(* Drive one hot file through a read storm and a cool-down, checking
   bytes on every read, and return a fingerprint of everything
   observable.  Used once for the behaviour assertions and twice for
   the determinism check. *)
let grow_shrink_scenario () =
  let e = Sim.Engine.create () in
  let config =
    {
      Pfs.Directory.default_config with
      per_replica_rate = 25.0;
      max_replicas = 3;
      ewma_tau = ms 100;
      review_period = ms 5;
    }
  in
  let dir = fleet ~n:4 ~config e in
  let data = Array.init 4 (fun tag -> pattern seg_64k (7 * (tag + 1))) in
  let fids = Array.init 4 (fun _ -> Pfs.Directory.create_file dir ()) in
  Array.iteri (fun i fid -> dir_write e dir fid ~off:0 data.(i)) fids;
  dir_sync e dir;
  let hot = fids.(1) in
  let t0 = Sim.Engine.now e in
  let reads_done = ref 0 and mismatches = ref 0 in
  (* 300 reads at 10 ms spacing: a 100 reads/s EWMA against a 25
     reads/s per-replica budget wants more than the 3-replica cap,
     and one shard's disks (~58 64KB-reads/s) cannot keep up alone —
     the replica set both forms and carries real load. *)
  for i = 0 to 299 do
    ignore
      (Sim.Engine.schedule_at e
         ~at:(Sim.Time.add t0 (ms (10 * i)))
         (fun () ->
           Pfs.Directory.read dir ~client:(i mod 8) hot ~off:0 ~len:seg_64k
             ~k:(fun r ->
               incr reads_done;
               match r with
               | Ok (Some b) ->
                   if not (Bytes.equal b data.(1)) then incr mismatches
               | _ -> incr mismatches)))
  done;
  (* Probe at the height of the storm, long after growth settles. *)
  let peak_replicas = ref [] and peak_rate = ref 0.0 in
  ignore
    (Sim.Engine.schedule_at e
       ~at:(Sim.Time.add t0 (ms 1500))
       (fun () ->
         peak_replicas := Pfs.Directory.replicas_of dir hot;
         peak_rate := Pfs.Directory.rate_of dir hot));
  (* The review tick is a daemon, so the cool-down needs a time bound
     to keep firing after the last read drains. *)
  Sim.Engine.run e ~until:(Sim.Time.add t0 (ms 4500));
  let ints l = String.concat "," (List.map string_of_int l) in
  let srv = List.init 4 (Pfs.Directory.server_reads dir) in
  let rbytes = List.init 4 (Pfs.Directory.server_replica_bytes dir) in
  let fingerprint =
    Printf.sprintf
      "done=%d mism=%d peak=[%s] prate=%.6f final=[%s] total=%d home=%d \
       rep=%d started=%d completed=%d discarded=%d dropped=%d srv=[%s] \
       rbytes=[%s] erate=%.6f"
      !reads_done !mismatches (ints !peak_replicas) !peak_rate
      (ints (Pfs.Directory.replicas_of dir hot))
      (Pfs.Directory.reads_total dir)
      (Pfs.Directory.reads_home dir)
      (Pfs.Directory.reads_replica dir)
      (Pfs.Directory.replications_started dir)
      (Pfs.Directory.replications_completed dir)
      (Pfs.Directory.replications_discarded dir)
      (Pfs.Directory.replicas_dropped dir)
      (ints srv) (ints rbytes)
      (Pfs.Directory.rate_of dir hot)
  in
  (dir, !reads_done, !mismatches, !peak_replicas, srv, fingerprint)

let replication_tests =
  [
    Alcotest.test_case "static config never replicates" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let config =
          {
            Pfs.Directory.default_config with
            replicate = false;
            max_replicas = 1;
          }
        in
        let dir = fleet ~n:2 ~config e in
        let data = pattern seg_64k 5 in
        let fid = Pfs.Directory.create_file dir () in
        dir_write e dir fid ~off:0 data;
        dir_sync e dir;
        let t0 = Sim.Engine.now e in
        for i = 0 to 99 do
          ignore
            (Sim.Engine.schedule_at e
               ~at:(Sim.Time.add t0 (ms i))
               (fun () ->
                 Pfs.Directory.read dir fid ~off:0 ~len:512 ~k:(fun _ -> ())))
        done;
        Sim.Engine.run e ~until:(Sim.Time.add t0 (ms 1500));
        Alcotest.(check int) "no copies" 0
          (Pfs.Directory.replications_started dir);
        Alcotest.(check (list int)) "no replicas" []
          (Pfs.Directory.replicas_of dir fid);
        Alcotest.(check int) "all reads at home" 100
          (Pfs.Directory.server_reads dir (Pfs.Directory.home_of dir fid)));
    Alcotest.test_case "hot file grows to the replica cap, then shrinks away"
      `Quick (fun () ->
        let dir, reads_done, mismatches, peak, srv, _ =
          grow_shrink_scenario ()
        in
        Alcotest.(check int) "every read completed" 300 reads_done;
        Alcotest.(check int) "every read byte-exact" 0 mismatches;
        Alcotest.(check int) "grew to max_replicas" 3 (List.length peak);
        Alcotest.(check (list int)) "cooled back to none" []
          (Pfs.Directory.replicas_of dir 1);
        Alcotest.(check bool) "replica serves happened" true
          (Pfs.Directory.reads_replica dir > 0);
        Alcotest.(check bool) "home still serves" true
          (Pfs.Directory.reads_home dir > 0);
        Alcotest.(check bool) "3+ copies built" true
          (Pfs.Directory.replications_completed dir >= 3);
        Alcotest.(check bool) "3+ replicas dropped on cooling" true
          (Pfs.Directory.replicas_dropped dir >= 3);
        (* Rotation + load bias actually spreads the storm: every
           shard in the replica set took a share. *)
        Alcotest.(check int) "reads conserved" 300
          (List.fold_left ( + ) 0 srv);
        Alcotest.(check bool) "load spread over 3+ shards" true
          (List.length (List.filter (fun r -> r > 0) srv) >= 3);
        (* Replica segment bytes are recycled when the set shrinks. *)
        Alcotest.(check (list int)) "replica bytes returned" [ 0; 0; 0; 0 ]
          (List.init 4 (Pfs.Directory.server_replica_bytes dir));
        Alcotest.(check bool) "rate decayed" true
          (Pfs.Directory.rate_of dir 1 < 1.0));
    Alcotest.test_case "grow/shrink runs are byte-deterministic" `Quick
      (fun () ->
        let _, _, _, _, _, fp1 = grow_shrink_scenario () in
        let _, _, _, _, _, fp2 = grow_shrink_scenario () in
        Alcotest.(check string) "identical fingerprints" fp1 fp2);
    Alcotest.test_case
      "a reseal mid-copy discards the copy and never serves stale bytes"
      `Quick (fun () ->
        let e = Sim.Engine.create () in
        let config =
          {
            Pfs.Directory.default_config with
            per_replica_rate = 5.0;
            max_replicas = 2;
            ewma_tau = ms 100;
            review_period = ms 5;
          }
        in
        (* A 10 ms transport keeps the first copy airborne across the
           rewrite below. *)
        let dir = fleet ~n:3 ~delay:(ms 10) ~config e in
        let a = pattern seg_64k 3 in
        let b = pattern 8192 91 in
        let fresh = Bytes.copy a in
        Bytes.blit b 0 fresh 0 8192;
        let fid = Pfs.Directory.create_file dir () in
        dir_write e dir fid ~off:0 a;
        dir_sync e dir;
        let t0 = Sim.Engine.now e in
        let b_done = ref false and failures = ref 0 in
        let checked = ref 0 and stale = ref 0 in
        (* Reads from 2 ms push the rate over threshold; the 5 ms
           review tick launches a copy of version 1. *)
        for i = 1 to 60 do
          ignore
            (Sim.Engine.schedule_at e
               ~at:(Sim.Time.add t0 (ms (2 * i)))
               (fun () ->
                 let after_reseal = !b_done in
                 Pfs.Directory.read dir fid ~off:0 ~len:seg_64k ~k:(fun r ->
                     incr checked;
                     match r with
                     | Ok (Some got) ->
                         let old_ok = Bytes.equal got a in
                         let new_ok = Bytes.equal got fresh in
                         if not (old_ok || new_ok) then incr failures;
                         if after_reseal && not new_ok then incr stale
                     | _ -> incr failures)))
        done;
        (* Rewrite the head of the file at 7 ms — while the version-1
           copy is still in flight — then reseal. *)
        ignore
          (Sim.Engine.schedule_at e
             ~at:(Sim.Time.add t0 (ms 7))
             (fun () ->
               Pfs.Directory.write dir fid ~off:0 ~data:b ~len:8192 (fun r ->
                   (match r with Ok () -> () | Error _ -> incr failures);
                   Pfs.Directory.sync dir ~k:(fun r ->
                       (match r with Ok () -> () | Error _ -> incr failures);
                       b_done := true))));
        (* 60 64KB reads take ~1 s on one shard's disks; leave room
           for the tail to drain. *)
        Sim.Engine.run e ~until:(Sim.Time.add t0 (ms 2500));
        Alcotest.(check int) "every read completed" 60 !checked;
        Alcotest.(check int) "no op failed or returned garbage" 0 !failures;
        Alcotest.(check int) "no stale replica serve after the reseal" 0
          !stale;
        Alcotest.(check bool) "the in-flight copy was discarded" true
          (Pfs.Directory.replications_discarded dir >= 1);
        Alcotest.(check bool) "the new version replicated afterwards" true
          (Pfs.Directory.replications_completed dir >= 1));
  ]

(* Model-based property: arbitrary write/read/sync/advance sequences
   against a replicating fleet must return exactly the home shard's
   bytes on every read — replicas, caches and routing never change
   what a client sees. *)

type dir_op =
  | D_write of int * int * int  (* file slot, offset, length *)
  | D_read of int * int * int
  | D_sync
  | D_advance  (* let review ticks and copies run for 25 ms *)

let dir_op_gen =
  QCheck2.Gen.(
    frequency
      [
        ( 3,
          map3
            (fun f off len -> D_write (f, off, len))
            (int_range 0 2) (int_range 0 24_000) (int_range 1 8_000) );
        ( 6,
          map3
            (fun f off len -> D_read (f, off, len))
            (int_range 0 2) (int_range 0 24_000) (int_range 1 8_000) );
        (1, return D_sync);
        (2, return D_advance);
      ])

let run_dir_ops ops =
  let e = Sim.Engine.create () in
  let config =
    {
      Pfs.Directory.default_config with
      (* One read is enough to trigger replication, so the op mix
         constantly builds, invalidates and rebuilds replicas. *)
      per_replica_rate = 1.0;
      max_replicas = 2;
      ewma_tau = ms 50;
      review_period = ms 2;
    }
  in
  let dir = fleet ~n:3 ~segment_bytes:16_384 ~config e in
  let file_bytes = 32_768 in
  let fids = Array.init 3 (fun _ -> Pfs.Directory.create_file dir ()) in
  let model = Array.init 3 (fun i -> pattern file_bytes (40 + i)) in
  let ok = ref true in
  Array.iteri
    (fun i fid ->
      Pfs.Directory.write dir fid ~off:0 ~data:model.(i) ~len:file_bytes
        (fun r -> if r <> Ok () then ok := false))
    fids;
  Sim.Engine.run e;
  Pfs.Directory.sync dir ~k:(fun r -> if r <> Ok () then ok := false);
  Sim.Engine.run e;
  let tag = ref 100 in
  let apply = function
    | D_write (f, off, len) ->
        incr tag;
        let data = pattern len !tag in
        Bytes.blit data 0 model.(f) off len;
        Pfs.Directory.write dir fids.(f) ~off ~data ~len (fun r ->
            if r <> Ok () then ok := false)
    | D_read (f, off, len) ->
        let expect = Bytes.sub model.(f) off len in
        Pfs.Directory.read dir fids.(f) ~off ~len ~k:(fun r ->
            match r with
            | Ok (Some got) -> if not (Bytes.equal got expect) then ok := false
            | _ -> ok := false)
    | D_sync ->
        Pfs.Directory.sync dir ~k:(fun r -> if r <> Ok () then ok := false)
    | D_advance ->
        Sim.Engine.run e ~until:(Sim.Time.add (Sim.Engine.now e) (ms 25))
  in
  List.iter
    (fun op ->
      apply op;
      Sim.Engine.run e)
    ops;
  (* Let any copy still in flight land, then audit every byte of every
     file once more through the directory. *)
  Sim.Engine.run e ~until:(Sim.Time.add (Sim.Engine.now e) (ms 100));
  Array.iteri
    (fun f fid ->
      Pfs.Directory.read dir fid ~off:0 ~len:file_bytes ~k:(fun r ->
          match r with
          | Ok (Some got) -> if not (Bytes.equal got model.(f)) then ok := false
          | _ -> ok := false))
    fids;
  Sim.Engine.run e;
  !ok

let model_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"directory reads equal home-shard bytes under churn" ~count:30
         QCheck2.Gen.(list_size (int_range 5 40) dir_op_gen)
         run_dir_ops);
  ]

(* The E15 rows are independent worlds fanned over domains; any domain
   count must produce the same numbers. *)
let e15_tests =
  [
    Alcotest.test_case "E15 results identical across domains 1/2/4" `Slow
      (fun () ->
        let r1 = Experiments.E15_vodscale.results ~quick:true ~domains:1 () in
        let r2 = Experiments.E15_vodscale.results ~quick:true ~domains:2 () in
        let r4 = Experiments.E15_vodscale.results ~quick:true ~domains:4 () in
        Alcotest.(check bool) "domains 1 = 2" true (r1 = r2);
        Alcotest.(check bool) "domains 1 = 4" true (r1 = r4));
  ]

let () =
  Alcotest.run "directory"
    [
      ("replication", replication_tests);
      ("model", model_tests);
      ("e15", e15_tests);
    ]
