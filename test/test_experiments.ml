(* Integration tests over the experiment harness: every table builds,
   and the headline shape of each claim holds even at quick size. *)

let tables =
  lazy
    (List.map
       (fun e ->
         (e.Experiments.Registry.e_id, e.Experiments.Registry.e_run ~quick:true ~domains:1))
       Experiments.Registry.all)

let table id =
  match List.assoc_opt id (Lazy.force tables) with
  | Some t -> t
  | None -> Alcotest.failf "experiment %s missing" id

(* Parse helpers for table cells. *)
let cell t ~row ~col = List.nth (List.nth t.Experiments.Table.rows row) col

let number s =
  (* first numeric token in the cell, ignoring units *)
  let b = Buffer.create 8 in
  (try
     String.iter
       (fun c ->
         if (c >= '0' && c <= '9') || c = '.' then Buffer.add_char b c
         else if Buffer.length b > 0 then raise Exit)
       s
   with Exit -> ());
  float_of_string (Buffer.contents b)

let time_us s =
  let v = number s in
  if String.length s > 2 && String.sub s (String.length s - 2) 2 = "ms" then
    v *. 1000.0
  else if String.ends_with ~suffix:"s" s && not (String.ends_with ~suffix:"us" s)
  then v *. 1.0e6
  else v

let structure_tests =
  [
    Alcotest.test_case "every experiment produces a well-formed table" `Quick
      (fun () ->
        List.iter
          (fun (id, t) ->
            Alcotest.(check string) "id matches" id t.Experiments.Table.id;
            let ncols = List.length t.Experiments.Table.columns in
            Alcotest.(check bool) (id ^ " has columns") true (ncols >= 2);
            Alcotest.(check bool) (id ^ " has rows") true
              (t.Experiments.Table.rows <> []);
            List.iter
              (fun row ->
                Alcotest.(check int) (id ^ " row width") ncols (List.length row))
              t.Experiments.Table.rows;
            Alcotest.(check bool) (id ^ " states its claim") true
              (String.length t.Experiments.Table.claim > 20))
          (Lazy.force tables));
  ]

let shape_tests =
  [
    Alcotest.test_case "E1: tiles beat whole frames by >100x" `Quick (fun () ->
        let t = table "E1" in
        let tile = time_us (cell t ~row:0 ~col:1) in
        let frame = time_us (cell t ~row:3 ~col:1) in
        Alcotest.(check bool)
          (Printf.sprintf "%.0f vs %.0f" tile frame)
          true
          (tile *. 100.0 < frame));
    Alcotest.test_case "E2: JPEG fits in a megabyte per second" `Quick
      (fun () ->
        let t = table "E2" in
        Alcotest.(check bool) "<= 1 MB/s" true (number (cell t ~row:1 ~col:1) <= 1.0));
    Alcotest.test_case "E2: the reserved VC has no late cells" `Quick (fun () ->
        let t = table "E2" in
        let late_unreserved = number (cell t ~row:3 ~col:3) in
        let late_reserved = number (cell t ~row:5 ~col:3) in
        Alcotest.(check bool) "unreserved suffers" true (late_unreserved > 0.0);
        Alcotest.(check (float 0.0)) "reserved clean" 0.0 late_reserved);
    Alcotest.test_case "E3: only atropos protects the admitted domains" `Quick
      (fun () ->
        let t = table "E3" in
        let atropos_video = number (cell t ~row:0 ~col:1) in
        Alcotest.(check bool) "atropos low" true (atropos_video < 5.0);
        List.iter
          (fun row ->
            Alcotest.(check bool) "baseline high" true
              (number (cell t ~row ~col:1) > 50.0))
          [ 1; 2; 3 ]);
    Alcotest.test_case "E4: informed misses none, opaque misses most" `Quick
      (fun () ->
        let t = table "E4" in
        Alcotest.(check (float 0.0)) "informed" 0.0 (number (cell t ~row:0 ~col:1));
        Alcotest.(check bool) "opaque" true (number (cell t ~row:1 ~col:1) > 10.0));
    Alcotest.test_case "E5: sync is faster; async switches less" `Quick
      (fun () ->
        let t = table "E5" in
        let sync = time_us (cell t ~row:0 ~col:1) in
        let async = time_us (cell t ~row:1 ~col:1) in
        Alcotest.(check bool) "sync lower" true (sync *. 5.0 < async);
        let sw_sync = number (cell t ~row:2 ~col:3) in
        let sw_async = number (cell t ~row:3 ~col:3) in
        Alcotest.(check bool) "async batches" true (sw_async *. 10.0 < sw_sync));
    Alcotest.test_case "E8: >=5MB/s per disk at 1MB units; ~10MB/s over ATM"
      `Quick (fun () ->
        let t = table "E8" in
        Alcotest.(check bool) "1MB row" true (number (cell t ~row:2 ~col:1) >= 5.0);
        let atm = number (cell t ~row:7 ~col:1) in
        Alcotest.(check bool)
          (Printf.sprintf "net-capped %.2f" atm)
          true
          (atm > 9.0 && atm < 12.0));
    Alcotest.test_case "E9: sprite examines the whole table, pegasus does not"
      `Quick (fun () ->
        let t = table "E9" in
        (* rows alternate pegasus/sprite, growing fs size *)
        let pegasus_small = number (cell t ~row:0 ~col:2) in
        let pegasus_big = number (cell t ~row:2 ~col:2) in
        let sprite_small = number (cell t ~row:1 ~col:2) in
        let sprite_big = number (cell t ~row:3 ~col:2) in
        Alcotest.(check bool) "pegasus flat" true
          (pegasus_big < pegasus_small *. 2.0);
        Alcotest.(check bool) "sprite grows" true
          (sprite_big > sprite_small *. 3.0));
    Alcotest.test_case "E10: write-behind halves disk writes" `Quick (fun () ->
        let t = table "E10" in
        let through = number (cell t ~row:0 ~col:2) in
        let behind = number (cell t ~row:1 ~col:2) in
        Alcotest.(check bool) "saved" true (behind *. 2.0 < through));
    Alcotest.test_case "E11: the video's replay hit rate is zero" `Quick
      (fun () ->
        let t = table "E11" in
        Alcotest.(check (float 0.01)) "video" 0.0 (number (cell t ~row:1 ~col:1));
        Alcotest.(check bool) "files cache well" true
          (number (cell t ~row:0 ~col:1) > 50.0));
    Alcotest.test_case "E12: losses exactly where the paper says" `Quick
      (fun () ->
        let t = table "E12" in
        let lost row = number (cell t ~row ~col:4) in
        List.iter
          (fun row -> Alcotest.(check (float 0.0)) "no loss" 0.0 (lost row))
          [ 0; 1; 2; 4; 5 ];
        Alcotest.(check bool) "uncovered double failure loses" true
          (lost 3 > 0.0));
    Alcotest.test_case "E13: delivery degrades monotonically with loss" `Quick
      (fun () ->
        let t = table "E13" in
        let r row = number (cell t ~row ~col:3) in
        (* Video rows 0-3 sweep the cell-loss rate upward under a fixed
           seed: the delivered-frame ratio must never rise. *)
        Alcotest.(check (float 0.0)) "no loss delivers everything" 1.0 (r 0);
        Alcotest.(check bool) "monotone in the loss rate" true
          (r 0 >= r 1 && r 1 >= r 2 && r 2 >= r 3);
        Alcotest.(check bool) "loss really bites" true (r 3 < r 0);
        (* RPC retransmission holds goodput through loss and outage. *)
        Alcotest.(check (float 0.0)) "rpc goodput under loss" 1.0 (r 5);
        Alcotest.(check (float 0.0)) "rpc goodput through outage" 1.0 (r 6);
        (* RAID: one disk down is survived via parity, two lose data. *)
        Alcotest.(check (float 0.0)) "raid one disk down" 1.0 (r 8);
        Alcotest.(check bool) "degraded reads were served" true
          (number (cell t ~row:8 ~col:4) > 0.0);
        Alcotest.(check bool) "two disks down lose segments" true (r 9 < 1.0));
    Alcotest.test_case "E13: two runs are byte-identical" `Quick (fun () ->
        let t = table "E13" in
        let again = Experiments.E13_faults.run ~quick:true () in
        Alcotest.(check bool) "identical rows" true
          (t.Experiments.Table.rows = again.Experiments.Table.rows));
    Alcotest.test_case "A1: guarantees hold under every slack policy" `Quick
      (fun () ->
        let t = table "A1" in
        List.iteri
          (fun row _ ->
            Alcotest.(check (float 0.0)) "no RT misses" 0.0
              (number (cell t ~row ~col:3)))
          t.Experiments.Table.rows;
        (* no-slack idles; the others do not *)
        Alcotest.(check bool) "none idles" true (number (cell t ~row:2 ~col:4) > 30.0);
        Alcotest.(check bool) "rr busy" true (number (cell t ~row:0 ~col:4) < 5.0));
  ]

let () =
  Alcotest.run "experiments"
    [ ("structure", structure_tests); ("shapes", shape_tests) ]
