(* The sharded parallel runner: mailbox FIFO across the spill path,
   epoch-barrier lookahead arithmetic (the event exactly at the horizon
   is the interesting one), the conservative [post] contract, and the
   differential property the whole design exists for — multi-seed
   scenarios are byte-identical at every domain count. *)

let us = Sim.Time.us
let ms = Sim.Time.ms

(* {1 Mailbox} *)

let mailbox_tests =
  [
    Alcotest.test_case "FIFO within the ring" `Quick (fun () ->
        let m = Sim.Mailbox.create ~capacity:8 () in
        for i = 0 to 5 do
          Sim.Mailbox.push m i
        done;
        Alcotest.(check int) "length" 6 (Sim.Mailbox.length m);
        for i = 0 to 5 do
          Alcotest.(check (option int)) "pop" (Some i) (Sim.Mailbox.pop m)
        done;
        Alcotest.(check bool) "empty" true (Sim.Mailbox.is_empty m);
        Alcotest.(check (option int)) "drained" None (Sim.Mailbox.pop m));
    Alcotest.test_case "wraparound keeps order" `Quick (fun () ->
        let m = Sim.Mailbox.create ~capacity:4 () in
        (* Interleave pushes and pops so head/tail lap the ring. *)
        let next = ref 0 and expect = ref 0 in
        for _round = 1 to 10 do
          for _ = 1 to 3 do
            Sim.Mailbox.push m !next;
            incr next
          done;
          for _ = 1 to 3 do
            Alcotest.(check (option int)) "pop" (Some !expect)
              (Sim.Mailbox.pop m);
            incr expect
          done
        done;
        Alcotest.(check int) "no spill needed" 0 (Sim.Mailbox.overflows m));
    Alcotest.test_case "overflow spills without losing order" `Quick (fun () ->
        let m = Sim.Mailbox.create ~capacity:4 () in
        for i = 0 to 19 do
          Sim.Mailbox.push m i
        done;
        Alcotest.(check int) "length counts spill" 20 (Sim.Mailbox.length m);
        Alcotest.(check bool) "spilled" true (Sim.Mailbox.overflows m > 0);
        (* Drain below ring capacity, push more (these must queue behind
           the spill, not jump into the freed ring slots), drain all. *)
        for i = 0 to 9 do
          Alcotest.(check (option int)) "pop" (Some i) (Sim.Mailbox.pop m)
        done;
        for i = 20 to 24 do
          Sim.Mailbox.push m i
        done;
        for i = 10 to 24 do
          Alcotest.(check (option int)) "pop after refill" (Some i)
            (Sim.Mailbox.pop m)
        done;
        Alcotest.(check bool) "empty" true (Sim.Mailbox.is_empty m));
    Alcotest.test_case "capacity rounds up to a power of two" `Quick (fun () ->
        let m = Sim.Mailbox.create ~capacity:5 () in
        Alcotest.(check int) "capacity" 8 (Sim.Mailbox.capacity m));
  ]

(* {1 Par} *)

let par_tests =
  [
    Alcotest.test_case "map returns results in input order" `Quick (fun () ->
        let tasks = Array.init 13 (fun i () -> i * i) in
        let workers = if Sim.Par.available then 4 else 1 in
        let out = Sim.Par.map ~workers tasks in
        Array.iteri
          (fun i v -> Alcotest.(check int) "slot" (i * i) v)
          out);
    Alcotest.test_case "map with more workers than tasks" `Quick (fun () ->
        let workers = if Sim.Par.available then 8 else 1 in
        let out = Sim.Par.map ~workers [| (fun () -> "a"); (fun () -> "b") |] in
        Alcotest.(check (array string)) "results" [| "a"; "b" |] out);
    Alcotest.test_case "map re-raises the lowest failing task" `Quick (fun () ->
        let tasks =
          [|
            (fun () -> 0);
            (fun () -> failwith "task-1");
            (fun () -> failwith "task-2");
          |]
        in
        let workers = if Sim.Par.available then 2 else 1 in
        match Sim.Par.map ~workers tasks with
        | _ -> Alcotest.fail "expected an exception"
        | exception Failure m -> Alcotest.(check string) "which" "task-1" m);
  ]

(* {1 Shard: the conservative contract} *)

let shard_unit_tests =
  [
    Alcotest.test_case "post below the lookahead horizon is refused" `Quick
      (fun () ->
        let t = Sim.Shard.create ~lookahead:(ms 1) ~shards:2 () in
        match Sim.Shard.post t ~src:0 ~dst:1 ~at:(us 999) (fun () -> ()) with
        | () -> Alcotest.fail "post under the horizon must raise"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "message exactly at the epoch horizon is on time" `Quick
      (fun () ->
        (* Epoch 1 runs both shards to horizon - 1 = lookahead - 1; the
           message posted at exactly [lookahead] must arrive in a later
           epoch at exactly that instant — neither early (conservatism)
           nor lost (the off-by-one this test pins down). *)
        let lookahead = ms 1 in
        let t = Sim.Shard.create ~lookahead ~shards:2 () in
        let log = ref [] in
        let e0 = Sim.Shard.engine t 0 and e1 = Sim.Shard.engine t 1 in
        ignore
          (Sim.Engine.schedule e0 ~delay:Sim.Time.zero (fun () ->
               Sim.Shard.post t ~src:0 ~dst:1 ~at:lookahead (fun () ->
                   log :=
                     ("msg", Sim.Time.to_ns (Sim.Engine.now e1)) :: !log)));
        (* A local event at the very same instant, queued at setup: the
           tie must break local-before-message. *)
        ignore
          (Sim.Engine.schedule e1 ~delay:lookahead (fun () ->
               log := ("local", Sim.Time.to_ns (Sim.Engine.now e1)) :: !log));
        Sim.Shard.run t;
        let expected_ns = Sim.Time.to_ns lookahead in
        Alcotest.(check (list (pair string int)))
          "both fire at the horizon, local first"
          [ ("local", expected_ns); ("msg", expected_ns) ]
          (List.rev !log);
        Alcotest.(check bool) "took more than one epoch" true
          (Sim.Shard.epochs t >= 2);
        Alcotest.(check int) "one message" 1 (Sim.Shard.messages t));
    Alcotest.test_case "same-instant messages order by (src, seq)" `Quick
      (fun () ->
        let lookahead = ms 1 in
        let t = Sim.Shard.create ~lookahead ~shards:3 () in
        let log = ref [] in
        let arrive tag () = log := tag :: !log in
        (* Shards 1 and 2 each post two messages to shard 0 for the same
           instant.  Whatever order the workers run in, delivery must
           sort (src shard, then posting sequence). *)
        let at = ms 2 in
        let sender src tag1 tag2 () =
          Sim.Shard.post t ~src ~dst:0 ~at (arrive tag1);
          Sim.Shard.post t ~src ~dst:0 ~at (arrive tag2)
        in
        ignore
          (Sim.Engine.schedule (Sim.Shard.engine t 2) ~delay:Sim.Time.zero
             (sender 2 "2a" "2b"));
        ignore
          (Sim.Engine.schedule (Sim.Shard.engine t 1) ~delay:Sim.Time.zero
             (sender 1 "1a" "1b"));
        Sim.Shard.run t;
        Alcotest.(check (list string))
          "delivery order" [ "1a"; "1b"; "2a"; "2b" ] (List.rev !log));
    Alcotest.test_case "until is inclusive and aligns every clock" `Quick
      (fun () ->
        let t = Sim.Shard.create ~lookahead:(us 10) ~shards:2 () in
        let hits = ref 0 in
        let e0 = Sim.Shard.engine t 0 in
        ignore (Sim.Engine.schedule e0 ~delay:(ms 5) (fun () -> incr hits));
        ignore (Sim.Engine.schedule e0 ~delay:(ms 7) (fun () -> incr hits));
        Sim.Shard.run ~until:(ms 5) t;
        Alcotest.(check int) "event at until ran" 1 !hits;
        Alcotest.(check (list int))
          "clocks at until"
          [ Sim.Time.to_ns (ms 5); Sim.Time.to_ns (ms 5) ]
          [
            Sim.Time.to_ns (Sim.Engine.now (Sim.Shard.engine t 0));
            Sim.Time.to_ns (Sim.Engine.now (Sim.Shard.engine t 1));
          ]);
    Alcotest.test_case "single shard delegates to the plain engine" `Quick
      (fun () ->
        (* Same workload on a 1-shard runner and on a bare engine: the
           event log must match exactly (this is the --domains 1
           byte-identity discipline in miniature). *)
        let workload e log =
          let rec tick n () =
            log := (n, Sim.Time.to_ns (Sim.Engine.now e)) :: !log;
            if n < 20 then
              ignore (Sim.Engine.schedule e ~delay:(us (7 + (n mod 3))) (tick (n + 1)))
          in
          ignore (Sim.Engine.schedule e ~delay:(us 1) (tick 0))
        in
        let log_plain = ref [] in
        let plain =
          Sim.Engine.create
            ~trace:(Sim.Trace.create ~enabled:false ())
            ~metrics:(Sim.Metrics.create ()) ()
        in
        workload plain log_plain;
        Sim.Engine.run plain;
        let t = Sim.Shard.create ~shards:1 () in
        let log_shard = ref [] in
        workload (Sim.Shard.engine t 0) log_shard;
        Sim.Shard.run t;
        Alcotest.(check (list (pair int int)))
          "identical logs" (List.rev !log_plain) (List.rev !log_shard);
        Alcotest.(check int) "no barrier epochs" 0 (Sim.Shard.epochs t));
    Alcotest.test_case "self-post on a single shard still works" `Quick
      (fun () ->
        let t = Sim.Shard.create ~lookahead:(us 5) ~shards:1 () in
        let got = ref (-1) in
        let e = Sim.Shard.engine t 0 in
        ignore
          (Sim.Engine.schedule e ~delay:(us 1) (fun () ->
               Sim.Shard.post t ~src:0 ~dst:0 ~at:(us 6) (fun () ->
                   got := Sim.Time.to_ns (Sim.Engine.now e))));
        Sim.Shard.run t;
        Alcotest.(check int) "delivered at its instant" 6_000 !got);
  ]

(* {1 The differential property: domain count never shows} *)

let render t = Format.asprintf "%a" Experiments.Table.pp t

let differential_tests =
  let domain_counts = if Sim.Par.available then [ 1; 2; 4 ] else [ 1 ] in
  [
    Alcotest.test_case "fabric is byte-identical across domain counts"
      `Quick (fun () ->
        List.iter
          (fun seed ->
            let tables =
              List.map
                (fun domains ->
                  render (Experiments.Fabric.run ~quick:true ~domains ~seed ()))
                domain_counts
            in
            match tables with
            | [] -> assert false
            | reference :: rest ->
                List.iteri
                  (fun i t ->
                    Alcotest.(check string)
                      (Printf.sprintf "seed %d, domains %d vs 1" seed
                         (List.nth domain_counts (i + 1)))
                      reference t)
                  rest)
          [ 1; 2; 3 ]);
    Alcotest.test_case "fabric actually crossed shards" `Quick (fun () ->
        let o =
          Experiments.Fabric.execute
            (Experiments.Fabric.default_params ~quick:true)
        in
        Alcotest.(check bool) "epochs" true (o.epochs > 1);
        Alcotest.(check bool) "messages" true (o.messages > 0);
        Alcotest.(check bool)
          "remote frames landed" true
          (Array.fold_left ( + ) 0 o.remote_frames > 0));
  ]

let () =
  Alcotest.run "shard"
    [
      ("mailbox", mailbox_tests);
      ("par", par_tests);
      ("shard", shard_unit_tests);
      ("differential", differential_tests);
    ]
