(* Tests for the ATM network substrate and devices. *)

let ms = Sim.Time.ms
let us = Sim.Time.us

let crc_tests =
  [
    Alcotest.test_case "known vector" `Quick (fun () ->
        (* CRC-32("123456789") = 0xCBF43926 *)
        Alcotest.(check int) "check value" 0xCBF43926
          (Atm.Crc32.digest_bytes (Bytes.of_string "123456789")));
    Alcotest.test_case "empty input" `Quick (fun () ->
        Alcotest.(check int) "crc" 0 (Atm.Crc32.digest_bytes Bytes.empty));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"single bit flip changes the digest" ~count:100
         QCheck2.Gen.(pair (string_size ~gen:char (int_range 1 200)) nat)
         (fun (s, flip) ->
           let b = Bytes.of_string s in
           let original = Atm.Crc32.digest_bytes b in
           let i = flip mod (Bytes.length b * 8) in
           let byte = i / 8 and bit = i mod 8 in
           Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
           Atm.Crc32.digest_bytes b <> original));
  ]

let util_tests =
  [
    Alcotest.test_case "u16/u32/i64 round-trip" `Quick (fun () ->
        let b = Bytes.create 16 in
        Atm.Util.put_u16 b 0 0xBEEF;
        Atm.Util.put_u32 b 2 0xDEADBEEF;
        Atm.Util.put_i64 b 6 (-123456789L);
        Alcotest.(check int) "u16" 0xBEEF (Atm.Util.get_u16 b 0);
        Alcotest.(check int) "u32" 0xDEADBEEF (Atm.Util.get_u32 b 2);
        Alcotest.(check int64) "i64" (-123456789L) (Atm.Util.get_i64 b 6));
  ]

let cell_tests =
  [
    Alcotest.test_case "cells are 53 bytes, 424 bits" `Quick (fun () ->
        Alcotest.(check int) "total" 53 Atm.Cell.total_bytes;
        Alcotest.(check int) "bits" 424 Atm.Cell.wire_bits);
    Alcotest.test_case "payload size is enforced" `Quick (fun () ->
        Alcotest.check_raises "short"
          (Invalid_argument "Cell.make: payload must be 48 bytes") (fun () ->
            ignore (Atm.Cell.make ~vci:1 ~last:false (Bytes.create 10))));
    Alcotest.test_case "tx time at 100 Mbit/s is 4.24us" `Quick (fun () ->
        Alcotest.(check int64) "4240ns" (Sim.Time.ns 4240)
          (Atm.Cell.tx_time ~bandwidth_bps:100_000_000));
  ]

let aal5_tests =
  [
    Alcotest.test_case "frame_cells accounts for the trailer" `Quick (fun () ->
        Alcotest.(check int) "0 bytes" 1 (Atm.Aal5.frame_cells 0);
        Alcotest.(check int) "40 bytes" 1 (Atm.Aal5.frame_cells 40);
        Alcotest.(check int) "41 bytes" 2 (Atm.Aal5.frame_cells 41);
        Alcotest.(check int) "88 bytes" 2 (Atm.Aal5.frame_cells 88));
    Alcotest.test_case "only the final cell is marked last" `Quick (fun () ->
        let cells = Atm.Aal5.segment ~vci:5 (Bytes.create 100) in
        Alcotest.(check int) "count" 3 (List.length cells);
        List.iteri
          (fun i (c : Atm.Cell.t) ->
            Alcotest.(check bool) "last flag" (i = 2) c.last;
            Alcotest.(check int) "vci" 5 c.vci)
          cells);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"segment/reassemble round-trips" ~count:200
         QCheck2.Gen.(string_size ~gen:char (int_range 0 5000))
         (fun s ->
           let payload = Bytes.of_string s in
           let cells = Atm.Aal5.segment ~vci:1 payload in
           let r = Atm.Aal5.Reassembler.create () in
           let rec feed = function
             | [] -> false
             | [ c ] -> begin
                 match Atm.Aal5.Reassembler.push r c with
                 | Some (Ok b) -> Bytes.equal b payload
                 | Some (Error _) | None -> false
               end
             | c :: rest ->
                 (match Atm.Aal5.Reassembler.push r c with
                 | None -> feed rest
                 | Some _ -> false)
           in
           feed cells));
    Alcotest.test_case "corruption is detected" `Quick (fun () ->
        let cells = Atm.Aal5.segment ~vci:1 (Bytes.of_string "hello, pegasus") in
        let r = Atm.Aal5.Reassembler.create () in
        (match cells with
        | [ c ] ->
            Bytes.set c.buf (c.off + 3) 'X';
            (match Atm.Aal5.Reassembler.push r c with
            | Some (Error Atm.Aal5.Crc_mismatch) -> ()
            | _ -> Alcotest.fail "expected CRC mismatch")
        | _ -> Alcotest.fail "expected one cell"));
    Alcotest.test_case "reassembler recovers after an error" `Quick (fun () ->
        let r = Atm.Aal5.Reassembler.create () in
        let bad = Atm.Aal5.segment ~vci:1 (Bytes.of_string "corrupt me") in
        (match bad with
        | [ c ] ->
            Bytes.set c.buf (c.off + 0) '!';
            ignore (Atm.Aal5.Reassembler.push r c)
        | _ -> Alcotest.fail "one cell expected");
        let ok = Atm.Aal5.segment ~vci:1 (Bytes.of_string "clean frame") in
        let result =
          List.fold_left (fun _ c -> Atm.Aal5.Reassembler.push r c) None ok
        in
        match result with
        | Some (Ok b) -> Alcotest.(check string) "payload" "clean frame" (Bytes.to_string b)
        | _ -> Alcotest.fail "expected clean reassembly");
    Alcotest.test_case "oversized frame reports Too_long" `Quick (fun () ->
        let r = Atm.Aal5.Reassembler.create ~max_frame:96 () in
        let cell () = Atm.Cell.make ~vci:1 ~last:false (Bytes.create 48) in
        ignore (Atm.Aal5.Reassembler.push r (cell ()));
        ignore (Atm.Aal5.Reassembler.push r (cell ()));
        match Atm.Aal5.Reassembler.push r (cell ()) with
        | Some (Error Atm.Aal5.Too_long) -> ()
        | _ -> Alcotest.fail "expected Too_long");
  ]

(* A one-link rig: sender closure + received cells with arrival times. *)
let link_rig ?(bandwidth_bps = 100_000_000) ?(prop = us 5) ?(queue_cells = 256) ()
    =
  let e = Sim.Engine.create () in
  let received = ref [] in
  let link =
    Atm.Link.create e ~bandwidth_bps ~prop ~queue_cells
      ~rx:(fun c -> received := (Sim.Engine.now e, c) :: !received)
      ()
  in
  (e, link, received)

let link_tests =
  [
    Alcotest.test_case "delivery = serialisation + propagation" `Quick (fun () ->
        let e, link, received = link_rig () in
        Atm.Link.send link (Atm.Cell.make_blank ~vci:1 ~last:true);
        Sim.Engine.run e;
        match !received with
        | [ (at, _) ] ->
            Alcotest.(check int64) "arrival"
              (Sim.Time.add (Sim.Time.ns 4240) (us 5))
              at
        | _ -> Alcotest.fail "expected one cell");
    Alcotest.test_case "back-to-back cells serialise in turn" `Quick (fun () ->
        let e, link, received = link_rig () in
        Atm.Link.send link (Atm.Cell.make_blank ~vci:1 ~last:false);
        Atm.Link.send link (Atm.Cell.make_blank ~vci:1 ~last:true);
        Sim.Engine.run e;
        match List.rev !received with
        | [ (t1, _); (t2, _) ] ->
            Alcotest.(check int64) "spacing" (Sim.Time.ns 4240) (Sim.Time.sub t2 t1)
        | _ -> Alcotest.fail "expected two cells");
    Alcotest.test_case "queue overflow drops and counts" `Quick (fun () ->
        let e, link, received = link_rig ~queue_cells:4 () in
        for _ = 1 to 10 do
          Atm.Link.send link (Atm.Cell.make_blank ~vci:1 ~last:true)
        done;
        Sim.Engine.run e;
        Alcotest.(check int) "dropped" 6 (Atm.Link.cells_dropped link);
        Alcotest.(check int) "delivered" 4 (List.length !received);
        Alcotest.(check int) "sent counter" 4 (Atm.Link.cells_sent link));
    Alcotest.test_case "utilisation reflects busy time" `Quick (fun () ->
        let e, link, _ = link_rig () in
        (* 100 cells at 4.24us each = 424us busy *)
        for _ = 1 to 100 do
          Atm.Link.send link (Atm.Cell.make_blank ~vci:1 ~last:true)
        done;
        Sim.Engine.run e ~until:(ms 1);
        let u = Atm.Link.utilisation link ~since:Sim.Time.zero in
        Alcotest.(check bool) "~42%" true (u > 0.40 && u < 0.45));
  ]

let switch_tests =
  [
    Alcotest.test_case "routes and rewrites VCIs" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let got = ref [] in
        let out =
          Atm.Link.create e ~rx:(fun c -> got := c.Atm.Cell.vci :: !got) ()
        in
        let sw = Atm.Switch.create e ~name:"sw" ~ports:4 () in
        Atm.Switch.attach_output sw 1 out;
        Atm.Switch.add_route sw ~in_port:0 ~in_vci:42 ~out_port:1 ~out_vci:99;
        Atm.Switch.input sw 0 (Atm.Cell.make_blank ~vci:42 ~last:true);
        Sim.Engine.run e;
        Alcotest.(check (list int)) "rewritten" [ 99 ] !got;
        Alcotest.(check int) "switched" 1 (Atm.Switch.cells_switched sw));
    Alcotest.test_case "unroutable cells are dropped" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let sw = Atm.Switch.create e ~name:"sw" ~ports:2 () in
        Atm.Switch.input sw 0 (Atm.Cell.make_blank ~vci:7 ~last:true);
        Sim.Engine.run e;
        Alcotest.(check int) "unroutable" 1 (Atm.Switch.cells_unroutable sw));
    Alcotest.test_case "duplicate route rejected, removal works" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let sw = Atm.Switch.create e ~name:"sw" ~ports:2 () in
        Atm.Switch.add_route sw ~in_port:0 ~in_vci:1 ~out_port:1 ~out_vci:2;
        Alcotest.check_raises "dup" (Invalid_argument "Switch.add_route: route exists")
          (fun () ->
            Atm.Switch.add_route sw ~in_port:0 ~in_vci:1 ~out_port:1 ~out_vci:3);
        Atm.Switch.remove_route sw ~in_port:0 ~in_vci:1;
        Alcotest.(check bool) "gone" true
          (Atm.Switch.route sw ~in_port:0 ~in_vci:1 = None));
  ]

(* Standard two-host, one-switch rig used by several suites. *)
let star_net () =
  let e = Sim.Engine.create () in
  let net = Atm.Net.create e in
  let sw = Atm.Net.add_switch net ~name:"fairisle" ~ports:8 in
  let a = Atm.Net.add_host net ~name:"hosta" in
  let b = Atm.Net.add_host net ~name:"hostb" in
  Atm.Net.connect net a sw;
  Atm.Net.connect net b sw;
  (e, net, a, b)

let net_tests =
  [
    Alcotest.test_case "frame crosses a switched path" `Quick (fun () ->
        let e, net, a, b = star_net () in
        let got = ref None in
        let rx = Atm.Net.frame_rx ~rx:(fun p -> got := Some (Bytes.to_string p)) () in
        let vc = Atm.Net.open_vc net ~src:a ~dst:b ~rx in
        Alcotest.(check int) "two hops" 2 (Atm.Net.vc_hops vc);
        Atm.Net.send_frame vc (Bytes.of_string "over the fabric");
        Sim.Engine.run e;
        Alcotest.(check (option string)) "payload" (Some "over the fabric") !got);
    Alcotest.test_case "independent VCs get distinct VCIs at the sink" `Quick
      (fun () ->
        let _, net, a, b = star_net () in
        let vc1 = Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun _ -> ()) in
        let vc2 = Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun _ -> ()) in
        Alcotest.(check bool) "distinct" true
          (Atm.Net.vc_dst_vci vc1 <> Atm.Net.vc_dst_vci vc2));
    Alcotest.test_case "close_vc stops delivery" `Quick (fun () ->
        let e, net, a, b = star_net () in
        let count = ref 0 in
        let vc = Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun _ -> incr count) in
        Atm.Net.send vc (Atm.Cell.make_blank ~vci:0 ~last:true);
        Sim.Engine.run e;
        Atm.Net.close_vc net vc;
        Atm.Net.send vc (Atm.Cell.make_blank ~vci:0 ~last:true);
        Sim.Engine.run e;
        Alcotest.(check int) "one delivery" 1 !count);
    Alcotest.test_case "no path raises" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let net = Atm.Net.create e in
        let a = Atm.Net.add_host net ~name:"a" in
        let b = Atm.Net.add_host net ~name:"b" in
        Alcotest.check_raises "no path" (Failure "Net.open_vc: no path") (fun () ->
            ignore (Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun _ -> ()))));
    Alcotest.test_case "find looks nodes up by name" `Quick (fun () ->
        let _, net, a, _ = star_net () in
        Alcotest.(check string) "name" "hosta"
          (Atm.Net.node_name net (Atm.Net.find net "hosta"));
        Alcotest.(check bool) "same node" true (Atm.Net.find net "hosta" = a));
    Alcotest.test_case "multi-switch path installs all hops" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let net = Atm.Net.create e in
        let s1 = Atm.Net.add_switch net ~name:"s1" ~ports:4 in
        let s2 = Atm.Net.add_switch net ~name:"s2" ~ports:4 in
        let s3 = Atm.Net.add_switch net ~name:"s3" ~ports:4 in
        let a = Atm.Net.add_host net ~name:"a" in
        let b = Atm.Net.add_host net ~name:"b" in
        Atm.Net.connect net a s1;
        Atm.Net.connect net s1 s2;
        Atm.Net.connect net s2 s3;
        Atm.Net.connect net s3 b;
        let got = ref 0 in
        let vc = Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun _ -> incr got) in
        Alcotest.(check int) "hops" 4 (Atm.Net.vc_hops vc);
        Atm.Net.send vc (Atm.Cell.make_blank ~vci:0 ~last:true);
        Sim.Engine.run e;
        Alcotest.(check int) "delivered" 1 !got);
  ]

let tile_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"tile packet marshal round-trips" ~count:200
         QCheck2.Gen.(
           tup5 (int_range 0 200) (int_range 0 100) (int_range 0 10000)
             (int_range 1 16) (int_range 2 64))
         (fun (x, y, frame, count, bpt) ->
           let data = Bytes.init (count * bpt) (fun i -> Char.chr (i land 0xff)) in
           let p =
             {
               Atm.Tile.x;
               y;
               frame;
               count;
               bytes_per_tile = bpt;
               captured_at = Sim.Time.us 123;
               data;
             }
           in
           match Atm.Tile.unmarshal (Atm.Tile.marshal p) with
           | Some q ->
               q.Atm.Tile.x = x && q.y = y && q.frame = frame && q.count = count
               && q.bytes_per_tile = bpt
               && q.captured_at = Sim.Time.us 123
               && Bytes.equal q.data data
           | None -> false));
    Alcotest.test_case "unmarshal rejects junk" `Quick (fun () ->
        Alcotest.(check bool) "short" true (Atm.Tile.unmarshal (Bytes.create 3) = None);
        let b = Bytes.make 40 '\042' in
        Alcotest.(check bool) "inconsistent" true (Atm.Tile.unmarshal b = None));
  ]

(* Camera wired to display across the star network. *)
let video_rig ?mode ?release () =
  let e, net, a, b = star_net () in
  let display = Atm.Display.create e () in
  let vc =
    Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun c -> Atm.Display.cell_rx display c)
  in
  let camera =
    Atm.Camera.create e ~vc ~width:64 ~height:48 ~fps:25 ?mode ?release ()
  in
  Atm.Display.add_window display ~vci:(Atm.Net.vc_dst_vci vc) ~x:100 ~y:50
    ~width:64 ~height:48;
  (e, net, camera, display, Atm.Net.vc_dst_vci vc)

let camera_display_tests =
  [
    Alcotest.test_case "video flows camera to display untouched by hosts" `Quick
      (fun () ->
        let e, _, camera, display, vci = video_rig () in
        Atm.Camera.start camera;
        Sim.Engine.run e ~until:(ms 90);
        Atm.Camera.stop camera;
        Alcotest.(check int) "frames captured" 2 (Atm.Camera.frames_captured camera);
        (* 64x48 = 8x6 tiles; all should be inside the window. *)
        Alcotest.(check bool) "tiles blitted" true
          (Atm.Display.tiles_blitted display ~vci >= 48);
        Alcotest.(check int) "nothing clipped" 0
          (Atm.Display.tiles_clipped display ~vci);
        Alcotest.(check int) "no faulty frames" 0 (Atm.Display.faulty_frames display));
    Alcotest.test_case "pixels land at the window offset" `Quick (fun () ->
        let e, _, camera, display, _ = video_rig () in
        Atm.Camera.start camera;
        Sim.Engine.run e ~until:(ms 90);
        (* Window is at (100,50); the framebuffer should be non-zero there
           and untouched at the origin. *)
        let painted = ref false in
        for dx = 0 to 63 do
          if Atm.Display.screen_byte display ~x:(100 + dx) ~y:51 <> 0 then
            painted := true
        done;
        Alcotest.(check bool) "window painted" true !painted;
        Alcotest.(check int) "outside untouched" 0
          (Atm.Display.screen_byte display ~x:0 ~y:0));
    Alcotest.test_case "moving a window redirects subsequent tiles" `Quick
      (fun () ->
        let e, _, camera, display, vci = video_rig () in
        Atm.Camera.start camera;
        Sim.Engine.run e ~until:(ms 45);
        Atm.Display.move_window display ~vci ~x:500 ~y:500;
        Sim.Engine.run e ~until:(ms 90);
        let painted = ref false in
        for dx = 0 to 63 do
          if Atm.Display.screen_byte display ~x:(500 + dx) ~y:501 <> 0 then
            painted := true
        done;
        Alcotest.(check bool) "new position painted" true !painted);
    Alcotest.test_case "resize clips out-of-window tiles" `Quick (fun () ->
        let e, _, camera, display, vci = video_rig () in
        Atm.Display.resize_window display ~vci ~width:32 ~height:24;
        Atm.Camera.start camera;
        Sim.Engine.run e ~until:(ms 45);
        Alcotest.(check bool) "clipped" true
          (Atm.Display.tiles_clipped display ~vci > 0));
    Alcotest.test_case "tile release beats whole-frame release on latency" `Quick
      (fun () ->
        let run release =
          let e, _, camera, display, vci = video_rig ~release () in
          Atm.Camera.start camera;
          Sim.Engine.run e ~until:(ms 200);
          Sim.Stats.Samples.percentile
            (Atm.Display.staging_latency_us display ~vci)
            50.0
        in
        let tile = run `Tile_row and frame = run `Whole_frame in
        Alcotest.(check bool)
          (Printf.sprintf "tile %.0fus << frame %.0fus" tile frame)
          true
          (tile *. 10.0 < frame));
    Alcotest.test_case "JPEG shrinks the data rate" `Quick (fun () ->
        let e, _, camera, display, _ =
          video_rig ~mode:(Atm.Camera.Jpeg { ratio = 8.0 }) ()
        in
        ignore display;
        Atm.Camera.start camera;
        Sim.Engine.run e ~until:(ms 90);
        let raw_rate = 64. *. 48. *. 8. *. 25. in
        Alcotest.(check bool) "about 8x less" true
          (Atm.Camera.data_rate_bps camera < raw_rate /. 7.0));
    Alcotest.test_case "frame callback fires per frame" `Quick (fun () ->
        let e, _, camera, _, _ = video_rig () in
        let frames = ref [] in
        Atm.Camera.on_frame camera (fun ~frame ~captured_at:_ ->
            frames := frame :: !frames);
        Atm.Camera.start camera;
        Sim.Engine.run e ~until:(ms 130);
        Alcotest.(check (list int)) "frames" [ 0; 1; 2 ] (List.rev !frames));
  ]

let audio_tests =
  [
    Alcotest.test_case "audio arrives with sequence integrity" `Quick (fun () ->
        let e, net, a, b = star_net () in
        let sink = Atm.Audio.Sink.create e () in
        let vc =
          Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun c -> Atm.Audio.Sink.cell_rx sink c)
        in
        let src = Atm.Audio.Source.create e ~vc () in
        Atm.Audio.Source.start src;
        Sim.Engine.run e ~until:(ms 100);
        Atm.Audio.Source.stop src;
        Sim.Engine.run e;
        Alcotest.(check int) "all cells" (Atm.Audio.Source.cells_sent src)
          (Atm.Audio.Sink.cells_received sink);
        Alcotest.(check int) "no loss" 0 (Atm.Audio.Sink.lost_cells sink);
        Alcotest.(check int) "no late cells" 0 (Atm.Audio.Sink.late_cells sink);
        Alcotest.(check bool) "sent plenty" true (Atm.Audio.Source.cells_sent src > 200));
    Alcotest.test_case "idle network keeps jitter tiny" `Quick (fun () ->
        let e, net, a, b = star_net () in
        let sink = Atm.Audio.Sink.create e () in
        let vc =
          Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun c -> Atm.Audio.Sink.cell_rx sink c)
        in
        let src = Atm.Audio.Source.create e ~vc () in
        Atm.Audio.Source.start src;
        Sim.Engine.run e ~until:(ms 100);
        Alcotest.(check bool) "sub-microsecond" true
          (Atm.Audio.Sink.jitter_us sink < 1.0));
    Alcotest.test_case "playout callbacks are isochronous" `Quick (fun () ->
        let e, net, a, b = star_net () in
        let sink = Atm.Audio.Sink.create e () in
        let vc =
          Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun c -> Atm.Audio.Sink.cell_rx sink c)
        in
        let src = Atm.Audio.Source.create e ~vc () in
        let times = ref [] in
        Atm.Audio.Sink.on_playout sink (fun ~seq:_ ~stamp:_ ->
            times := Sim.Engine.now e :: !times);
        Atm.Audio.Source.start src;
        Sim.Engine.run e ~until:(ms 20);
        let rec gaps = function
          | a :: (b :: _ as rest) -> Sim.Time.sub a b :: gaps rest
          | _ -> []
        in
        let all_equal = function
          | [] -> true
          | g :: rest -> List.for_all (fun x -> x = g) rest
        in
        Alcotest.(check bool) "even spacing" true (all_equal (gaps !times));
        Alcotest.(check bool) "some playout" true (List.length !times > 10));
  ]

let control_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"control messages round-trip" ~count:100
         QCheck2.Gen.(
           oneof
             [
               return Atm.Control.Start;
               return Atm.Control.Stop;
               map3
                 (fun s u t ->
                   Atm.Control.Sync { stream = s; unit_id = u; stamp = Sim.Time.us t })
                 (int_range 0 100) (int_range 0 10000) (int_range 0 1000000);
               map3
                 (fun s o t ->
                   Atm.Control.Index_mark
                     { stream = s; offset = o; stamp = Sim.Time.us t })
                 (int_range 0 100) (int_range 0 1000000) (int_range 0 1000000);
             ])
         (fun msg -> Atm.Control.unmarshal (Atm.Control.marshal msg) = Some msg));
    Alcotest.test_case "merger combines control streams" `Quick (fun () ->
        let e, net, a, b = star_net () in
        let got = ref [] in
        let out_rx =
          Atm.Net.frame_rx
            ~rx:(fun p ->
              match Atm.Control.unmarshal p with
              | Some m -> got := m :: !got
              | None -> ())
            ()
        in
        let out = Atm.Net.open_vc net ~src:a ~dst:b ~rx:out_rx in
        let merger = Atm.Control.Merger.create ~out () in
        (* Two device control VCs loop back into the merger on host a. *)
        let dev1 = Atm.Net.open_vc net ~src:b ~dst:a ~rx:(Atm.Control.Merger.rx merger) in
        let dev2 = Atm.Net.open_vc net ~src:b ~dst:a ~rx:(Atm.Control.Merger.rx merger) in
        Atm.Net.send_frame dev1
          (Atm.Control.marshal
             (Atm.Control.Sync { stream = 1; unit_id = 7; stamp = Sim.Time.us 10 }));
        Atm.Net.send_frame dev2
          (Atm.Control.marshal
             (Atm.Control.Sync { stream = 2; unit_id = 7; stamp = Sim.Time.us 10 }));
        Sim.Engine.run e;
        Alcotest.(check int) "forwarded" 2 (Atm.Control.Merger.forwarded merger);
        Alcotest.(check int) "received" 2 (List.length !got));
    Alcotest.test_case "playback controller measures skew" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let pb = Atm.Control.Playback.create e () in
        (* Stream 1 renders 1 ms after capture, stream 2 renders 3 ms after. *)
        for u = 0 to 9 do
          let stamp = Sim.Time.ms (10 * (u + 1)) in
          List.iter
            (fun cell -> Atm.Control.Playback.control_rx pb cell)
            (Atm.Aal5.segment ~vci:1
               (Atm.Control.marshal
                  (Atm.Control.Sync { stream = 1; unit_id = u; stamp })));
          List.iter
            (fun cell -> Atm.Control.Playback.control_rx pb cell)
            (Atm.Aal5.segment ~vci:1
               (Atm.Control.marshal
                  (Atm.Control.Sync { stream = 2; unit_id = u; stamp })));
          ignore
            (Sim.Engine.schedule_at e
               ~at:(Sim.Time.add stamp (Sim.Time.ms 1))
               (fun () -> Atm.Control.Playback.data_event pb ~stream:1 ~unit_id:u));
          ignore
            (Sim.Engine.schedule_at e
               ~at:(Sim.Time.add stamp (Sim.Time.ms 3))
               (fun () -> Atm.Control.Playback.data_event pb ~stream:2 ~unit_id:u))
        done;
        Sim.Engine.run e;
        let skew = Atm.Control.Playback.skew_us pb ~a:1 ~b:2 in
        Alcotest.(check int) "pairs" 10 (Sim.Stats.Samples.count skew);
        Alcotest.(check (float 1.0)) "2ms skew" 2000.0
          (Sim.Stats.Samples.percentile skew 50.0);
        (* Aligning stream 1 (fast) requires ~2ms of delay. *)
        let d = Atm.Control.Playback.recommended_delay pb ~stream:1 in
        Alcotest.(check bool) "recommended ~2ms" true
          (Sim.Time.to_ms_f d > 1.9 && Sim.Time.to_ms_f d < 2.1);
        Alcotest.(check int64) "slow stream needs none" Sim.Time.zero
          (Atm.Control.Playback.recommended_delay pb ~stream:2));
  ]

let traffic_tests =
  [
    Alcotest.test_case "CBR sends at the configured rate" `Quick (fun () ->
        let e, net, a, b = star_net () in
        let got = ref 0 in
        let vc = Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun _ -> incr got) in
        let source = Atm.Traffic.cbr e ~vc ~rate_bps:42_400_000 in
        Atm.Traffic.start source;
        Sim.Engine.run e ~until:(ms 10);
        Atm.Traffic.stop source;
        Sim.Engine.run e;
        (* 42.4 Mbit/s = one cell per 10us = 1000 cells in 10ms *)
        Alcotest.(check bool) "about 1000" true (!got >= 990 && !got <= 1010));
    Alcotest.test_case "Poisson averages the configured rate" `Quick (fun () ->
        let e, net, a, b = star_net () in
        let got = ref 0 in
        let vc = Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun _ -> incr got) in
        let rng = Sim.Rng.create ~seed:1L () in
        let source = Atm.Traffic.poisson e ~vc ~rate_bps:42_400_000 ~rng in
        Atm.Traffic.start source;
        Sim.Engine.run e ~until:(ms 50);
        Atm.Traffic.stop source;
        Sim.Engine.run e;
        (* expectation 5000; allow generous tolerance *)
        Alcotest.(check bool) "rate" true (!got > 4200 && !got < 5800));
    Alcotest.test_case "on/off source alternates" `Quick (fun () ->
        let e, net, a, b = star_net () in
        let vc = Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun _ -> ()) in
        let rng = Sim.Rng.create ~seed:2L () in
        let source =
          Atm.Traffic.on_off e ~vc ~peak_bps:84_800_000 ~mean_on:(ms 2)
            ~mean_off:(ms 2) ~rng
        in
        Atm.Traffic.start source;
        Sim.Engine.run e ~until:(ms 100);
        Atm.Traffic.stop source;
        Sim.Engine.run e;
        let sent = Atm.Traffic.cells_sent source in
        (* Peak would be 20000 cells in 100ms; ~50% duty cycle expected. *)
        Alcotest.(check bool)
          (Printf.sprintf "duty cycled (%d)" sent)
          true
          (sent > 3000 && sent < 17000));
  ]

let reservation_tests =
  [
    Alcotest.test_case "reserved VC keeps its latency under load" `Quick
      (fun () ->
        let run reserved =
          let e, net, a, b = star_net () in
          let arrivals = Sim.Stats.Samples.create () in
          let stamps = Hashtbl.create 64 in
          let next = ref 0 in
          let vc =
            Atm.Net.open_vc
              ?reserve_bps:(if reserved then Some 1_000_000 else None)
              net ~src:a ~dst:b
              ~rx:(fun c ->
                (match Hashtbl.find_opt stamps c.Atm.Cell.vci with
                | Some _ -> ()
                | None -> ());
                Sim.Stats.Samples.add arrivals
                  (Sim.Time.to_us_f (Sim.Engine.now e)))
          in
          (* competing best-effort flood on the same path *)
          let cross_vc = Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun _ -> ()) in
          let rng = Sim.Rng.create ~seed:3L () in
          let cross =
            Atm.Traffic.on_off e ~vc:cross_vc ~peak_bps:300_000_000
              ~mean_on:(Sim.Time.us 500) ~mean_off:(Sim.Time.ms 1) ~rng
          in
          Atm.Traffic.start cross;
          (* one probe cell every ms; jitter = spread of inter-arrivals *)
          let sent = Sim.Stats.Samples.create () in
          Sim.Engine.every e ~period:(Sim.Time.ms 1) (fun () ->
              incr next;
              Sim.Stats.Samples.add sent (Sim.Time.to_us_f (Sim.Engine.now e));
              Atm.Net.send vc (Atm.Cell.make_blank ~vci:0 ~last:true);
              !next < 100);
          Sim.Engine.run e ~until:(Sim.Time.ms 150);
          Atm.Traffic.stop cross;
          (* per-cell one-way delay spread *)
          let n = min (Sim.Stats.Samples.count sent) (Sim.Stats.Samples.count arrivals) in
          let s = Sim.Stats.Samples.to_array sent
          and r = Sim.Stats.Samples.to_array arrivals in
          let delays = Sim.Stats.Summary.create () in
          for i = 0 to n - 1 do
            Sim.Stats.Summary.add delays (r.(i) -. s.(i))
          done;
          Sim.Stats.Summary.stddev delays
        in
        let best_effort = run false and reserved = run true in
        Alcotest.(check bool)
          (Printf.sprintf "reserved %.1fus << best-effort %.1fus" reserved
             best_effort)
          true
          (reserved *. 5.0 < best_effort));
    Alcotest.test_case "admission control refuses over-subscription" `Quick
      (fun () ->
        let _, net, a, b = star_net () in
        ignore (Atm.Net.open_vc ~reserve_bps:60_000_000 net ~src:a ~dst:b ~rx:(fun _ -> ()));
        Alcotest.check_raises "refused"
          (Failure "Net.open_vc: reservation refused (admission)") (fun () ->
            ignore
              (Atm.Net.open_vc ~reserve_bps:40_000_000 net ~src:a ~dst:b
                 ~rx:(fun _ -> ()))));
    Alcotest.test_case "closing a reserved VC returns the bandwidth" `Quick
      (fun () ->
        let _, net, a, b = star_net () in
        let vc =
          Atm.Net.open_vc ~reserve_bps:60_000_000 net ~src:a ~dst:b
            ~rx:(fun _ -> ())
        in
        Alcotest.(check (option int)) "recorded" (Some 60_000_000)
          (Atm.Net.vc_reserved vc);
        Atm.Net.close_vc net vc;
        (* now the second reservation fits *)
        ignore
          (Atm.Net.open_vc ~reserve_bps:60_000_000 net ~src:a ~dst:b
             ~rx:(fun _ -> ())));
  ]

let stacking_tests =
  [
    Alcotest.test_case "a higher window occludes; raising repairs" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let d = Atm.Display.create e () in
        Atm.Display.add_window d ~vci:1 ~x:0 ~y:0 ~width:64 ~height:64;
        Atm.Display.add_window d ~vci:2 ~x:0 ~y:0 ~width:64 ~height:64;
        let packet vci tag =
          let data = Bytes.make (Atm.Tile.raw_bytes * 2) tag in
          let p =
            {
              Atm.Tile.x = 0;
              y = 0;
              frame = 0;
              count = 2;
              bytes_per_tile = Atm.Tile.raw_bytes;
              captured_at = Sim.Time.zero;
              data;
            }
          in
          List.iter
            (fun c -> Atm.Display.cell_rx d c)
            (Atm.Aal5.segment ~vci (Atm.Tile.marshal p))
        in
        (* window 2 is newer = on top: it wins the shared pixels *)
        packet 1 'a';
        packet 2 'b';
        Alcotest.(check int) "top window shows" (Char.code 'b')
          (Atm.Display.screen_byte d ~x:3 ~y:3);
        Alcotest.(check bool) "occluded pixels counted" true
          (Atm.Display.pixels_occluded d ~vci:1 = 0);
        packet 1 'a';
        Alcotest.(check bool) "bottom window occluded now" true
          (Atm.Display.pixels_occluded d ~vci:1 > 0);
        Alcotest.(check int) "still shows top" (Char.code 'b')
          (Atm.Display.screen_byte d ~x:3 ~y:3);
        (* raise window 1: the next repaint takes the pixels over *)
        Atm.Display.raise_window d ~vci:1;
        packet 1 'a';
        Alcotest.(check int) "raised window repaired" (Char.code 'a')
          (Atm.Display.screen_byte d ~x:3 ~y:3));
    Alcotest.test_case "lower_window yields the pixels on repaint" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let d = Atm.Display.create e () in
        Atm.Display.add_window d ~vci:1 ~x:0 ~y:0 ~width:16 ~height:16;
        Atm.Display.add_window d ~vci:2 ~x:0 ~y:0 ~width:16 ~height:16;
        Atm.Display.lower_window d ~vci:2;
        Alcotest.(check bool) "2 below 1" true
          (Atm.Display.z_order d ~vci:2 < Atm.Display.z_order d ~vci:1));
    Alcotest.test_case "window-manager decoration is paintable over" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let d = Atm.Display.create e () in
        Atm.Display.decorate d ~x:0 ~y:0 ~width:100 ~height:10 ~value:0xEE;
        Alcotest.(check int) "title bar drawn" 0xEE
          (Atm.Display.screen_byte d ~x:50 ~y:5);
        Atm.Display.add_window d ~vci:1 ~x:0 ~y:0 ~width:64 ~height:64;
        let data = Bytes.make Atm.Tile.raw_bytes 'w' in
        let p =
          {
            Atm.Tile.x = 0;
            y = 0;
            frame = 0;
            count = 1;
            bytes_per_tile = Atm.Tile.raw_bytes;
            captured_at = Sim.Time.zero;
            data;
          }
        in
        List.iter (fun c -> Atm.Display.cell_rx d c)
          (Atm.Aal5.segment ~vci:1 (Atm.Tile.marshal p));
        Alcotest.(check int) "window paints over decoration" (Char.code 'w')
          (Atm.Display.screen_byte d ~x:3 ~y:3));
  ]

let conservation_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"frames are conserved through the fabric under light load"
         ~count:50
         QCheck2.Gen.(list_size (int_range 1 20) (int_range 1 2000))
         (fun sizes ->
           let e, net, a, b = star_net () in
           let received = ref 0 and received_bytes = ref 0 in
           let vc =
             Atm.Net.open_vc net ~src:a ~dst:b
               ~rx:
                 (Atm.Net.frame_rx
                    ~rx:(fun p ->
                      incr received;
                      received_bytes := !received_bytes + Bytes.length p)
                    ())
           in
           (* spaced 1ms apart: far below line rate, nothing may drop *)
           List.iteri
             (fun i size ->
               ignore
                 (Sim.Engine.schedule e ~delay:(Sim.Time.ms i) (fun () ->
                      Atm.Net.send_frame vc (Bytes.create size))))
             sizes;
           Sim.Engine.run e;
           !received = List.length sizes
           && !received_bytes = List.fold_left ( + ) 0 sizes
           && Atm.Net.total_cells_dropped net = 0));
  ]

let () =
  Alcotest.run "atm"
    [
      ("crc32", crc_tests);
      ("util", util_tests);
      ("cell", cell_tests);
      ("aal5", aal5_tests);
      ("link", link_tests);
      ("switch", switch_tests);
      ("net", net_tests);
      ("tile", tile_tests);
      ("camera-display", camera_display_tests);
      ("audio", audio_tests);
      ("control", control_tests);
      ("traffic", traffic_tests);
      ("reservation", reservation_tests);
      ("stacking", stacking_tests);
      ("conservation", conservation_tests);
    ]
