(* The SLO monitor: spec validation, the burn-rate state machine
   (pending -> firing -> resolved, silent pending clears, hysteresis
   against flapping), windowed percentile sources, roll alignment at
   shard barriers (byte-identical reports across domain counts), and
   the sorted-dump guarantee of the metrics registry. *)

let ms = Sim.Time.ms

let fresh_engine () =
  Sim.Engine.create
    ~trace:(Sim.Trace.create ~enabled:false ())
    ~metrics:(Sim.Metrics.create ()) ()

(* Keep the engine alive (monitor rolls are daemon events) with a
   no-op tick chain every millisecond up to [until]. *)
let keep_alive e ~until =
  let rec tick at =
    if Sim.Time.(at < until) then
      ignore
        (Sim.Engine.schedule_at e ~at (fun () ->
             tick (Sim.Time.add at (ms 1))))
  in
  tick (ms 1)

let level_slo ?(threshold = 10.0) ?(fire_after = 2) ?(resolve_after = 2)
    ?(slow_windows = 2) () =
  Sim.Slo.make ~sub:Sim.Subsystem.Sim ~window:(ms 10) ~fast_windows:1
    ~slow_windows ~fire_after ~resolve_after ~hysteresis:0.5 ~threshold
    "test.level"

let the_alert report =
  match report.Sim.Monitor.rep_alerts with
  | [ a ] -> a
  | l -> Alcotest.failf "expected 1 alert, got %d" (List.length l)

let transition_summary a =
  List.map
    (fun tr ->
      (Sim.Time.to_ms_f tr.Sim.Monitor.tr_at, tr.Sim.Monitor.tr_event))
    a.Sim.Monitor.r_transitions

let slo_tests =
  [
    Alcotest.test_case "spec validation" `Quick (fun () ->
        let bad f = Alcotest.check_raises "rejects" (Invalid_argument "") f in
        let bad f =
          ignore bad;
          match f () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"
        in
        bad (fun () -> Sim.Slo.make ~sub:Sim.Subsystem.Sim ~threshold:1.0 "");
        bad (fun () ->
            Sim.Slo.make ~sub:Sim.Subsystem.Sim ~window:Sim.Time.zero
              ~threshold:1.0 "w");
        bad (fun () ->
            Sim.Slo.make ~sub:Sim.Subsystem.Sim ~fast_windows:3 ~slow_windows:2
              ~threshold:1.0 "w");
        bad (fun () ->
            (* resolve threshold on the unhealthy side of the fire one *)
            Sim.Slo.make ~sub:Sim.Subsystem.Sim ~hysteresis:1.5 ~threshold:1.0
              "w");
        let s =
          Sim.Slo.make ~sub:Sim.Subsystem.Sim ~hysteresis:0.5 ~threshold:10.0
            "ok"
        in
        Alcotest.(check (float 1e-9))
          "resolve" 5.0
          (Sim.Slo.resolve_threshold s));
    Alcotest.test_case "strict breach: the boundary is healthy" `Quick
      (fun () ->
        let s = Sim.Slo.make ~sub:Sim.Subsystem.Sim ~threshold:10.0 "b" in
        Alcotest.(check bool) "at threshold" false (Sim.Slo.violates s 10.0);
        Alcotest.(check bool) "above" true (Sim.Slo.violates s 10.001);
        let a =
          Sim.Slo.make ~sub:Sim.Subsystem.Sim ~comparator:Sim.Slo.Above
            ~threshold:10.0 "a"
        in
        Alcotest.(check bool) "at threshold" false (Sim.Slo.violates a 10.0);
        Alcotest.(check bool) "below" true (Sim.Slo.violates a 9.999));
  ]

(* Drive a Level source through a scripted signal and check the alert
   lifecycle against the exact roll instants. *)
let lifecycle_tests =
  [
    Alcotest.test_case "pending -> firing -> resolved" `Quick (fun () ->
        let e = fresh_engine () in
        let signal = ref 0.0 in
        let m = Sim.Monitor.create ~name:"t" e in
        Sim.Monitor.register m (level_slo ())
          (Sim.Monitor.Level (fun () -> !signal));
        ignore
          (Sim.Engine.schedule_at e ~at:(ms 15) (fun () -> signal := 100.0));
        ignore (Sim.Engine.schedule_at e ~at:(ms 55) (fun () -> signal := 0.0));
        keep_alive e ~until:(ms 95);
        Sim.Engine.run e ~until:(ms 95);
        let a = the_alert (Sim.Monitor.report [ m ]) in
        Alcotest.(check string)
          "final state" "ok"
          (Sim.Monitor.state_string a.Sim.Monitor.r_state);
        Alcotest.(check int) "fired" 1 a.Sim.Monitor.r_fired;
        Alcotest.(check int) "resolved" 1 a.Sim.Monitor.r_resolved;
        (* Breaches at rolls 20..50; slow (2-window) worst drains by 70,
           and resolve_after 2 lands the resolution at the 80 ms roll. *)
        Alcotest.(check (list (pair (float 1e-6) string)))
          "transitions"
          [ (20.0, "pending"); (30.0, "firing"); (80.0, "resolved") ]
          (transition_summary a);
        (* The lifecycle counters live in the engine's registry. *)
        let reg = Sim.Engine.metrics e in
        let c n =
          Sim.Metrics.value (Sim.Metrics.counter reg ~sub:Sim.Subsystem.Sim n)
        in
        Alcotest.(check int) "pending ctr" 1 (c "monitor.pending");
        Alcotest.(check int) "firing ctr" 1 (c "monitor.firing");
        Alcotest.(check int) "resolved ctr" 1 (c "monitor.resolved"));
    Alcotest.test_case "one-roll blip: pending clears silently" `Quick
      (fun () ->
        let e = fresh_engine () in
        let signal = ref 0.0 in
        let m = Sim.Monitor.create e in
        Sim.Monitor.register m (level_slo ())
          (Sim.Monitor.Level (fun () -> !signal));
        ignore
          (Sim.Engine.schedule_at e ~at:(ms 15) (fun () -> signal := 100.0));
        ignore (Sim.Engine.schedule_at e ~at:(ms 25) (fun () -> signal := 0.0));
        keep_alive e ~until:(ms 60);
        Sim.Engine.run e ~until:(ms 60);
        let a = the_alert (Sim.Monitor.report [ m ]) in
        Alcotest.(check string)
          "state" "ok"
          (Sim.Monitor.state_string a.Sim.Monitor.r_state);
        Alcotest.(check int) "never fired" 0 a.Sim.Monitor.r_fired;
        Alcotest.(check (list (pair (float 1e-6) string)))
          "only the pending edge" [ (20.0, "pending") ]
          (transition_summary a));
    Alcotest.test_case "boundary-riding signal never fires" `Quick (fun () ->
        let e = fresh_engine () in
        let m = Sim.Monitor.create e in
        (* Exactly at the threshold, forever: strict violation keeps it
           healthy, so no flapping on a signal that rides the line. *)
        Sim.Monitor.register m (level_slo ())
          (Sim.Monitor.Level (fun () -> 10.0));
        keep_alive e ~until:(ms 100);
        Sim.Engine.run e ~until:(ms 100);
        let a = the_alert (Sim.Monitor.report [ m ]) in
        Alcotest.(check int) "no breaches" 0 a.Sim.Monitor.r_breaches;
        Alcotest.(check (list (pair (float 1e-6) string)))
          "no transitions" [] (transition_summary a));
    Alcotest.test_case "hysteresis holds a half-recovered alert" `Quick
      (fun () ->
        let e = fresh_engine () in
        let signal = ref 100.0 in
        let m = Sim.Monitor.create e in
        Sim.Monitor.register m (level_slo ())
          (Sim.Monitor.Level (fun () -> !signal));
        (* Recover only into the hysteresis band (5 < 8 <= 10): the fast
           aggregate stops breaching but the slow aggregate never
           reaches the resolve threshold, so the alert stays firing
           instead of flapping. *)
        ignore (Sim.Engine.schedule_at e ~at:(ms 45) (fun () -> signal := 8.0));
        keep_alive e ~until:(ms 120);
        Sim.Engine.run e ~until:(ms 120);
        let a = the_alert (Sim.Monitor.report [ m ]) in
        Alcotest.(check string)
          "still firing" "firing"
          (Sim.Monitor.state_string a.Sim.Monitor.r_state);
        Alcotest.(check int) "no resolution" 0 a.Sim.Monitor.r_resolved);
    Alcotest.test_case "ratio with an idle denominator is healthy" `Quick
      (fun () ->
        let e = fresh_engine () in
        let reg = Sim.Engine.metrics e in
        let num = Sim.Metrics.counter reg ~sub:Sim.Subsystem.Sim "t.num" in
        let den = Sim.Metrics.counter reg ~sub:Sim.Subsystem.Sim "t.den" in
        let m = Sim.Monitor.create e in
        Sim.Monitor.register m
          (Sim.Slo.make ~sub:Sim.Subsystem.Sim ~window:(ms 10) ~threshold:0.01
             "test.ratio")
          (Sim.Monitor.counter_ratio ~num ~den);
        keep_alive e ~until:(ms 50);
        Sim.Engine.run e ~until:(ms 50);
        let a = the_alert (Sim.Monitor.report [ m ]) in
        Alcotest.(check int) "no breaches" 0 a.Sim.Monitor.r_breaches;
        Alcotest.(check bool) "no data" true (a.Sim.Monitor.r_last = None));
    Alcotest.test_case "windowed source evaluates the span percentile" `Quick
      (fun () ->
        let e = fresh_engine () in
        let reg = Sim.Engine.metrics e in
        let obs = Sim.Metrics.observer reg ~sub:Sim.Subsystem.Sim "t.win" in
        let m = Sim.Monitor.create e in
        Sim.Monitor.register m
          (level_slo ~threshold:1000.0 ())
          (Sim.Monitor.windowed ~q:99.0 obs);
        ignore
          (Sim.Engine.schedule_at e ~at:(ms 5) (fun () ->
               for v = 1 to 100 do
                 Sim.Metrics.sample obs (float_of_int v)
               done));
        keep_alive e ~until:(ms 15);
        Sim.Engine.run e ~until:(ms 15);
        let a = the_alert (Sim.Monitor.report [ m ]) in
        (* p99 of 1..100 with linear interpolation: rank 98.01. *)
        match a.Sim.Monitor.r_last with
        | Some v -> Alcotest.(check (float 1e-6)) "p99" 99.01 v
        | None -> Alcotest.fail "no data at the first roll");
  ]

(* {1 Shard alignment} *)

(* Two shards, each with its own monitor on its own engine: rolls are
   pinned to absolute multiples of the window, so they land identically
   however epochs are spread over domains.  Each shard counts pings the
   other shard posts across the barrier. *)
let shard_rig ~domains =
  let shard = Sim.Shard.create ~lookahead:(ms 5) ~shards:2 () in
  let monitors =
    Array.init 2 (fun i ->
        let e = Sim.Shard.engine shard i in
        let reg = Sim.Engine.metrics e in
        let pings = Sim.Metrics.counter reg ~sub:Sim.Subsystem.Sim "t.pings" in
        let m = Sim.Monitor.create ~name:(Printf.sprintf "shard%d" i) e in
        Sim.Monitor.register m
          (Sim.Slo.make ~sub:Sim.Subsystem.Sim ~window:(ms 10)
             ~fast_windows:1 ~slow_windows:2 ~threshold:2000.0
             (Printf.sprintf "shard%d.ping_rate" i))
          (Sim.Monitor.counter_rate pings);
        Sim.Monitor.register m
          (Sim.Slo.make ~sub:Sim.Subsystem.Sim ~window:(ms 10)
             ~fast_windows:1 ~slow_windows:2 ~threshold:1.0e6
             (Printf.sprintf "shard%d.queue_depth" i))
          (Sim.Monitor.gauge_level
             (Sim.Metrics.gauge reg ~sub:Sim.Subsystem.Sim
                "engine.queue_depth"));
        (m, pings))
  in
  Array.iteri
    (fun i (_, pings) ->
      let e = Sim.Shard.engine shard i in
      let rec tick at =
        if Sim.Time.(at < ms 60) then
          ignore
            (Sim.Engine.schedule_at e ~at (fun () ->
                 Sim.Metrics.incr pings;
                 let peer = 1 - i in
                 Sim.Shard.post shard ~src:i ~dst:peer
                   ~at:(Sim.Time.add (Sim.Engine.now e) (ms 5))
                   (fun () ->
                     let _, (peer_pings : Sim.Metrics.counter) =
                       monitors.(peer)
                     in
                     Sim.Metrics.incr peer_pings);
                 tick (Sim.Time.add at (ms 1))))
      in
      tick (ms 1))
    monitors;
  Sim.Shard.run ~domains ~until:(ms 60) shard;
  Sim.Monitor.report ~name:"shards"
    (Array.to_list (Array.map fst monitors))

let render report = Format.asprintf "%a" Sim.Monitor.pp report

let shard_tests =
  [
    Alcotest.test_case "rolls align at barriers across domain counts"
      `Quick (fun () ->
        let r1 = render (shard_rig ~domains:1) in
        let r2 = render (shard_rig ~domains:2) in
        Alcotest.(check string) "domains 1 = 2" r1 r2;
        (* And the JSON export is byte-identical too. *)
        let j1 =
          Sim.Json.to_string (Sim.Monitor.to_json (shard_rig ~domains:1))
        in
        let j2 =
          Sim.Json.to_string (Sim.Monitor.to_json (shard_rig ~domains:2))
        in
        Alcotest.(check string) "json" j1 j2);
    Alcotest.test_case "fabric health scenario is domain-independent"
      `Quick (fun () ->
        let r1 =
          render (Experiments.Health_scenarios.fabric ~duration:(ms 60) ())
        in
        let r2 =
          render
            (Experiments.Health_scenarios.fabric ~duration:(ms 60) ~domains:2
               ())
        in
        Alcotest.(check string) "domains 1 = 2" r1 r2);
  ]

(* {1 Registry dump order} *)

let order_tests =
  [
    Alcotest.test_case "snapshot and pp are sorted, not insertion order"
      `Quick (fun () ->
        let reg = Sim.Metrics.create () in
        (* Register in an order that disagrees with the sorted one, and
           across enough entries that hashtable iteration order would
           almost surely differ. *)
        ignore (Sim.Metrics.counter reg ~sub:Sim.Subsystem.Rpc "zz.last");
        ignore (Sim.Metrics.gauge reg ~sub:Sim.Subsystem.Atm "mm.mid");
        ignore (Sim.Metrics.observer reg ~sub:Sim.Subsystem.Atm "aa.first");
        ignore (Sim.Metrics.dist reg ~sub:Sim.Subsystem.Nemesis "qq.dist");
        ignore (Sim.Metrics.counter reg ~sub:Sim.Subsystem.Atm "zz.atm");
        let dump = Sim.Json.to_string (Sim.Metrics.snapshot reg) in
        let pos name =
          let rec find i =
            if i + String.length name > String.length dump then
              Alcotest.failf "%s not in dump" name
            else if String.sub dump i (String.length name) = name then i
            else find (i + 1)
          in
          find 0
        in
        (* Subsystems sort alphabetically, names within a subsystem. *)
        let order =
          [ "aa.first"; "mm.mid"; "zz.atm"; "qq.dist"; "zz.last" ]
        in
        let positions = List.map pos order in
        let rec ascending = function
          | a :: (b :: _ as rest) -> a < b && ascending rest
          | _ -> true
        in
        Alcotest.(check bool) "ascending" true (ascending positions);
        (* Same dump twice: byte-identical. *)
        Alcotest.(check string)
          "stable" dump
          (Sim.Json.to_string (Sim.Metrics.snapshot reg)));
  ]

let () =
  Alcotest.run "monitor"
    [
      ("slo", slo_tests);
      ("lifecycle", lifecycle_tests);
      ("shards", shard_tests);
      ("registry order", order_tests);
    ]
