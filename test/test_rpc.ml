(* Tests for the RPC layer (request/response over AAL5 over ATM). *)

let ms = Sim.Time.ms

let rig () =
  let e = Sim.Engine.create () in
  let net = Atm.Net.create e in
  let sw = Atm.Net.add_switch net ~name:"sw" ~ports:8 in
  let a = Atm.Net.add_host net ~name:"client" in
  let b = Atm.Net.add_host net ~name:"server" in
  Atm.Net.connect net a sw;
  Atm.Net.connect net b sw;
  (e, net, Rpc.endpoint net ~host:a, Rpc.endpoint net ~host:b)

let wire_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"wire messages round-trip" ~count:200
         QCheck2.Gen.(
           tup5 (int_range 1 3) (int_range 0 100000) (string_size (int_range 0 30))
             (string_size (int_range 0 30))
             (string_size ~gen:char (int_range 0 2000)))
         (fun (k, call_id, iface, meth, payload) ->
           let kind =
             match k with
             | 1 -> Rpc.Wire.Request
             | 2 -> Rpc.Wire.Reply
             | _ -> Rpc.Wire.Error_reply
           in
           let msg =
             {
               Rpc.Wire.kind;
               call_id;
               iface;
               meth;
               payload = Bytes.of_string payload;
             }
           in
           Rpc.Wire.unmarshal (Rpc.Wire.marshal msg) = Some msg));
    Alcotest.test_case "junk does not unmarshal" `Quick (fun () ->
        Alcotest.(check bool) "short" true (Rpc.Wire.unmarshal (Bytes.create 3) = None);
        let b = Bytes.make 20 '\255' in
        Alcotest.(check bool) "bad kind" true (Rpc.Wire.unmarshal b = None));
  ]

let call_tests =
  [
    Alcotest.test_case "a call round-trips over the network" `Quick (fun () ->
        let e, net, client, server = rig () in
        Rpc.serve server ~iface:"echo" (fun ~meth payload ->
            Alcotest.(check string) "method" "shout" meth;
            Ok (Bytes.of_string (String.uppercase_ascii (Bytes.to_string payload))));
        let conn = Rpc.connect net ~client ~server () in
        let result = ref None in
        Rpc.call conn ~iface:"echo" ~meth:"shout" (Bytes.of_string "pegasus")
          ~reply:(fun r -> result := Some r);
        Sim.Engine.run e;
        (match !result with
        | Some (Ok b) -> Alcotest.(check string) "reply" "PEGASUS" (Bytes.to_string b)
        | _ -> Alcotest.fail "expected a reply");
        Alcotest.(check int) "one send" 1 (Rpc.calls_sent conn);
        Alcotest.(check int) "no retransmissions" 0 (Rpc.retransmissions conn));
    Alcotest.test_case "reply latency is a plausible network RTT" `Quick
      (fun () ->
        let e, net, client, server = rig () in
        Rpc.serve server ~iface:"null" (fun ~meth:_ _ -> Ok Bytes.empty);
        let conn = Rpc.connect net ~client ~server () in
        let done_at = ref Sim.Time.zero in
        Rpc.call conn ~iface:"null" ~meth:"null" Bytes.empty ~reply:(fun _ ->
            done_at := Sim.Engine.now e);
        Sim.Engine.run e;
        let rtt = Sim.Time.to_us_f !done_at in
        (* two switch crossings, four link hops, one cell each way *)
        Alcotest.(check bool) (Printf.sprintf "rtt=%.1fus" rtt) true
          (rtt > 20.0 && rtt < 100.0));
    Alcotest.test_case "unknown interface is reported" `Quick (fun () ->
        let e, net, client, server = rig () in
        let conn = Rpc.connect net ~client ~server () in
        let result = ref None in
        Rpc.call conn ~iface:"nothing" ~meth:"x" Bytes.empty ~reply:(fun r ->
            result := Some r);
        Sim.Engine.run e;
        match !result with
        | Some (Error (Rpc.No_such_interface "nothing")) -> ()
        | _ -> Alcotest.fail "expected No_such_interface");
    Alcotest.test_case "handler errors come back as Remote_error" `Quick
      (fun () ->
        let e, net, client, server = rig () in
        Rpc.serve server ~iface:"flaky" (fun ~meth:_ _ -> Error "boom");
        let conn = Rpc.connect net ~client ~server () in
        let result = ref None in
        Rpc.call conn ~iface:"flaky" ~meth:"x" Bytes.empty ~reply:(fun r ->
            result := Some r);
        Sim.Engine.run e;
        match !result with
        | Some (Error (Rpc.Remote_error "boom")) -> ()
        | _ -> Alcotest.fail "expected Remote_error");
    Alcotest.test_case "slow server causes retransmission, not re-execution"
      `Quick (fun () ->
        let e, net, client, server = rig () in
        let executions = ref 0 in
        Rpc.serve_delayed server ~iface:"slow" ~delay:(ms 25)
          (fun ~meth:_ _ ->
            incr executions;
            Ok Bytes.empty);
        let conn = Rpc.connect net ~client ~server ~retransmit:(ms 10) () in
        let replies = ref 0 in
        Rpc.call conn ~iface:"slow" ~meth:"x" Bytes.empty ~reply:(fun _ ->
            incr replies);
        Sim.Engine.run e;
        Alcotest.(check bool) "retransmitted" true (Rpc.retransmissions conn >= 1);
        Alcotest.(check int) "executed once" 1 !executions;
        Alcotest.(check int) "one reply" 1 !replies);
    Alcotest.test_case "duplicate requests are answered from the reply cache"
      `Quick (fun () ->
        let e, net, client, server = rig () in
        let executions = ref 0 in
        (* Reply just after the first retransmission fires. *)
        Rpc.serve_delayed server ~iface:"dup" ~delay:(ms 12) (fun ~meth:_ _ ->
            incr executions;
            Ok (Bytes.of_string "once"));
        let conn = Rpc.connect net ~client ~server ~retransmit:(ms 10) () in
        Rpc.call conn ~iface:"dup" ~meth:"x" Bytes.empty ~reply:(fun _ -> ());
        Sim.Engine.run e;
        Alcotest.(check int) "executed once" 1 !executions;
        Alcotest.(check bool) "duplicate suppressed" true
          (Rpc.duplicates_suppressed server >= 1));
    Alcotest.test_case "exhausted retries time out" `Quick (fun () ->
        let e, net, client, server = rig () in
        (* Server replies far after the single try's patience. *)
        Rpc.serve_delayed server ~iface:"dead" ~delay:(Sim.Time.sec 5)
          (fun ~meth:_ _ -> Ok Bytes.empty);
        let conn =
          Rpc.connect net ~client ~server ~retransmit:(ms 10) ~max_tries:1 ()
        in
        let result = ref None in
        Rpc.call conn ~iface:"dead" ~meth:"x" Bytes.empty ~reply:(fun r ->
            result := Some r);
        Sim.Engine.run e ~until:(ms 100);
        match !result with
        | Some (Error Rpc.Timed_out) -> ()
        | _ -> Alcotest.fail "expected Timed_out");
    Alcotest.test_case "concurrent calls multiplex on one connection" `Quick
      (fun () ->
        let e, net, client, server = rig () in
        Rpc.serve server ~iface:"id" (fun ~meth:_ p -> Ok p);
        let conn = Rpc.connect net ~client ~server () in
        let got = ref [] in
        for i = 0 to 9 do
          Rpc.call conn ~iface:"id" ~meth:"x"
            (Bytes.of_string (string_of_int i))
            ~reply:(fun r ->
              match r with
              | Ok b -> got := Bytes.to_string b :: !got
              | Error _ -> Alcotest.fail "call failed")
        done;
        Sim.Engine.run e;
        Alcotest.(check (list string)) "all replies"
          [ "0"; "1"; "2"; "3"; "4"; "5"; "6"; "7"; "8"; "9" ]
          (List.sort compare !got));
  ]

let recovery_tests =
  [
    Alcotest.test_case "error payload decoding requires the tag colon" `Quick
      (fun () ->
        let check name want s =
          Alcotest.(check bool) name true (Rpc.error_of_payload s = want)
        in
        check "iface tag" (Rpc.No_such_interface "tty") "I:tty";
        check "method tag" (Rpc.No_such_method "read") "M:read";
        check "error tag" (Rpc.Remote_error "boom") "E:boom";
        (* Untagged strings starting with a tag letter must survive
           whole, not lose their first two characters. *)
        check "bare I word" (Rpc.Remote_error "Ignored") "Ignored";
        check "bare E word" (Rpc.Remote_error "Eaten") "Eaten";
        check "unknown tag" (Rpc.Remote_error "X:ray") "X:ray";
        check "empty" (Rpc.Remote_error "") "";
        check "one char" (Rpc.Remote_error "I") "I";
        check "empty detail" (Rpc.No_such_interface "") "I:");
    Alcotest.test_case "the reply cache is bounded" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let net = Atm.Net.create e in
        let a = Atm.Net.add_host net ~name:"client" in
        let b = Atm.Net.add_host net ~name:"server" in
        Atm.Net.connect net a b;
        let client = Rpc.endpoint net ~host:a in
        let server = Rpc.endpoint ~reply_cache_cap:8 net ~host:b in
        Rpc.serve server ~iface:"id" (fun ~meth:_ p -> Ok p);
        let conn = Rpc.connect net ~client ~server () in
        let ok = ref 0 in
        for i = 0 to 99 do
          ignore
            (Sim.Engine.schedule e ~delay:(ms i) (fun () ->
                 Rpc.call conn ~iface:"id" ~meth:"x" Bytes.empty
                   ~reply:(function Ok _ -> incr ok | Error _ -> ())))
        done;
        Sim.Engine.run e;
        Alcotest.(check int) "all calls answered" 100 !ok;
        Alcotest.(check bool) "cache held at its cap" true
          (Rpc.reply_cache_size server <= 8);
        Alcotest.(check int) "nothing left in progress" 0
          (Rpc.in_progress_size server));
    Alcotest.test_case "calls recover under injected cell loss" `Quick
      (fun () ->
        let e, net, client, server = rig () in
        let fault = Sim.Fault.create ~seed:3L e in
        Atm.Net.inject_loss net ~rng:(Sim.Fault.rng fault) 0.05;
        let executions = ref 0 in
        Rpc.serve server ~iface:"echo" (fun ~meth:_ p ->
            incr executions;
            Ok p);
        let conn =
          Rpc.connect net ~client ~server ~retransmit:(ms 5) ~max_tries:8
            ~seed:11L ()
        in
        let ok = ref 0 in
        for i = 0 to 49 do
          ignore
            (Sim.Engine.schedule e
               ~delay:(ms (2 * i))
               (fun () ->
                 Rpc.call conn ~iface:"echo" ~meth:"x"
                   (Bytes.of_string (string_of_int i))
                   ~reply:(function Ok _ -> incr ok | Error _ -> ())))
        done;
        Sim.Engine.run e;
        Alcotest.(check int) "every call completed within max_tries" 50 !ok;
        Alcotest.(check bool) "loss forced retransmissions" true
          (Rpc.retransmissions conn > 0);
        Alcotest.(check bool) "cells really were lost" true
          (Atm.Net.total_cells_lost net > 0);
        (* Retransmitted duplicates are answered from the reply cache,
           never re-executed. *)
        Alcotest.(check int) "each call executed once" 50 !executions);
    Alcotest.test_case "a link outage mid-call is survived by retransmission"
      `Quick (fun () ->
        let e, net, client, server = rig () in
        let fault = Sim.Fault.create e in
        Rpc.serve server ~iface:"echo" (fun ~meth:_ p -> Ok p);
        let conn =
          Rpc.connect net ~client ~server ~retransmit:(ms 5) ~max_tries:8 ()
        in
        let ca = Atm.Net.find net "client" and sw = Atm.Net.find net "sw" in
        Sim.Fault.window fault ~at:(ms 1) ~duration:(ms 10)
          ~down:(fun () -> Atm.Net.set_link_down net ca sw true)
          ~up:(fun () -> Atm.Net.set_link_down net ca sw false);
        let result = ref None in
        ignore
          (Sim.Engine.schedule e ~delay:(ms 2) (fun () ->
               Rpc.call conn ~iface:"echo" ~meth:"x" (Bytes.of_string "hi")
                 ~reply:(fun r -> result := Some r)));
        Sim.Engine.run e;
        (match !result with
        | Some (Ok b) -> Alcotest.(check string) "reply" "hi" (Bytes.to_string b)
        | _ -> Alcotest.fail "call did not survive the outage");
        Alcotest.(check bool) "retransmitted through the outage" true
          (Rpc.retransmissions conn >= 1));
  ]

let bulk_rig ?mtu ?window ?consume_rate_bps ?prop () =
  let e = Sim.Engine.create () in
  let net = Atm.Net.create e in
  let a = Atm.Net.add_host net ~name:"src" in
  let b = Atm.Net.add_host net ~name:"dst" in
  Atm.Net.connect net ?prop a b;
  let chunks = ref [] in
  let sender, receiver =
    Rpc.Bulk.establish net ~src:a ~dst:b ?mtu ?window ?consume_rate_bps
      ~on_data:(fun b -> chunks := Bytes.to_string b :: !chunks)
      ()
  in
  (e, sender, receiver, chunks)

let bulk_tests =
  [
    Alcotest.test_case "bytes arrive complete and in order" `Quick (fun () ->
        let e, sender, receiver, chunks = bulk_rig ~mtu:100 () in
        let message = String.init 1050 (fun i -> Char.chr (i land 0xff)) in
        Rpc.Bulk.send sender (Bytes.of_string message);
        let finished = ref false in
        Rpc.Bulk.finish sender ~on_done:(fun () -> finished := true);
        Sim.Engine.run e;
        Alcotest.(check bool) "finished" true !finished;
        Alcotest.(check int) "all delivered" 1050
          (Rpc.Bulk.bytes_delivered receiver);
        Alcotest.(check string) "reassembled" message
          (String.concat "" (List.rev !chunks));
        Alcotest.(check int) "credits restored" 8
          (Rpc.Bulk.credits_available sender));
    Alcotest.test_case "a slow consumer throttles the sender" `Quick (fun () ->
        (* 8 Mbit/s consumer against a 100 Mbit/s line: delivery takes
           ~ bytes*8/8e6 seconds, not line time. *)
        let e, sender, receiver, _ =
          bulk_rig ~consume_rate_bps:8_000_000 ()
        in
        let total = 1_000_000 in
        Rpc.Bulk.send sender (Bytes.create total);
        let done_at = ref Sim.Time.zero in
        Rpc.Bulk.finish sender ~on_done:(fun () -> done_at := Sim.Engine.now e);
        Sim.Engine.run e;
        let secs = Sim.Time.to_sec_f !done_at in
        Alcotest.(check int) "delivered" total (Rpc.Bulk.bytes_delivered receiver);
        Alcotest.(check bool)
          (Printf.sprintf "paced to the consumer (%.2fs)" secs)
          true
          (secs > 0.9 && secs < 1.3));
    Alcotest.test_case "in-flight frames never exceed the window" `Quick
      (fun () ->
        let e, sender, _, _ = bulk_rig ~window:4 ~consume_rate_bps:1_000_000 () in
        Rpc.Bulk.send sender (Bytes.create 200_000);
        let violations = ref 0 in
        Sim.Engine.every e ~period:(Sim.Time.ms 1) (fun () ->
            if Rpc.Bulk.frames_in_flight sender > 4 then incr violations;
            Rpc.Bulk.frames_in_flight sender > 0 || Rpc.Bulk.credits_available sender < 4);
        Rpc.Bulk.finish sender ~on_done:(fun () -> ());
        Sim.Engine.run e ~until:(Sim.Time.sec 3);
        Alcotest.(check int) "window respected" 0 !violations);
    Alcotest.test_case "throughput follows the window law" `Quick (fun () ->
        (* Across a 2ms-propagation path the pipe is deep: a window of
           one drains between credits (throughput ~ mtu/rtt), a wide
           window fills the line. *)
        let run window =
          let e, sender, receiver, _ =
            bulk_rig ~window ~prop:(Sim.Time.ms 2) ()
          in
          Rpc.Bulk.send sender (Bytes.create 500_000);
          let done_at = ref Sim.Time.zero in
          Rpc.Bulk.finish sender ~on_done:(fun () -> done_at := Sim.Engine.now e);
          Sim.Engine.run e;
          ignore receiver;
          Float.of_int 500_000 /. Sim.Time.to_sec_f !done_at
        in
        let narrow = run 1 and wide = run 16 in
        Alcotest.(check bool)
          (Printf.sprintf "wide %.1f MB/s >> narrow %.1f MB/s" (wide /. 1e6)
             (narrow /. 1e6))
          true
          (wide > narrow *. 3.0));
  ]

let () =
  Alcotest.run "rpc"
    [
      ("wire", wire_tests);
      ("calls", call_tests);
      ("recovery", recovery_tests);
      ("bulk", bulk_tests);
    ]
