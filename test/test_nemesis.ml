(* Tests for the Nemesis kernel: domains, scheduling, events, KPS, VM. *)

let ms = Sim.Time.ms
let us = Sim.Time.us

let rig ?(policy = Nemesis.Policy.atropos ()) ?(ctx = us 10) () =
  let e = Sim.Engine.create () in
  let k = Nemesis.Kernel.create e ~policy ~ctx_switch_cost:ctx () in
  (e, k)

let job ?label ?deadline ?on_complete e ~work =
  Nemesis.Job.make ?label ?deadline ?on_complete ~work
    ~created:(Sim.Engine.now e) ()

let kernel_tests =
  [
    Alcotest.test_case "a job completes after work + switch cost" `Quick
      (fun () ->
        let e, k = rig () in
        let d = Nemesis.Domain.create ~name:"d" () in
        Nemesis.Kernel.add_domain k d;
        let done_at = ref Sim.Time.zero in
        Nemesis.Kernel.submit k d
          (job e ~work:(ms 1) ~on_complete:(fun () -> done_at := Sim.Engine.now e));
        Sim.Engine.run e ~until:(ms 100);
        Alcotest.(check int64) "completion" (Sim.Time.add (ms 1) (us 10)) !done_at;
        Alcotest.(check int) "completed" 1 (Nemesis.Domain.jobs_completed d);
        Alcotest.(check int64) "charged" (Sim.Time.add (ms 1) (us 10))
          (Nemesis.Domain.cpu_used d));
    Alcotest.test_case "sequential jobs in one domain do not re-pay the switch"
      `Quick (fun () ->
        let e, k = rig () in
        let d =
          Nemesis.Domain.create ~name:"d" ~period:(ms 100) ~slice:(ms 50) ()
        in
        Nemesis.Kernel.add_domain k d;
        let done_at = ref Sim.Time.zero in
        Nemesis.Kernel.submit k d (job e ~work:(ms 1));
        Nemesis.Kernel.submit k d
          (job e ~work:(ms 1) ~on_complete:(fun () -> done_at := Sim.Engine.now e));
        Sim.Engine.run e ~until:(ms 100);
        Alcotest.(check int64) "second completion" (Sim.Time.add (ms 2) (us 10))
          !done_at;
        Alcotest.(check int) "switches" 1 (Nemesis.Kernel.context_switches k));
    Alcotest.test_case "idle time is accounted" `Quick (fun () ->
        let e, k = rig () in
        let d = Nemesis.Domain.create ~name:"d" () in
        Nemesis.Kernel.add_domain k d;
        Nemesis.Kernel.submit k d (job e ~work:(ms 2));
        Sim.Engine.run e ~until:(ms 10);
        let idle = Nemesis.Kernel.idle_time k in
        (* ~8ms of the 10ms window is idle (minus the 10us switch) *)
        Alcotest.(check bool) "about 8ms idle" true
          (Sim.Time.to_ms_f idle > 7.9 && Sim.Time.to_ms_f idle < 8.1));
    Alcotest.test_case "domain runs within its guaranteed slice only" `Quick
      (fun () ->
        let e, k = rig () in
        (* 2ms per 10ms period, no extra time; one big job. *)
        let d =
          Nemesis.Domain.create ~name:"d" ~period:(ms 10) ~slice:(ms 2)
            ~extra:false ()
        in
        Nemesis.Kernel.add_domain k d;
        Nemesis.Kernel.submit k d (job e ~work:(ms 20));
        Sim.Engine.run e ~until:(ms 100);
        (* 10 periods x 2ms = 20ms of guarantee: the job (20ms + overhead)
           cannot quite finish, and usage must not exceed the guarantee. *)
        let used = Sim.Time.to_ms_f (Nemesis.Domain.cpu_used d) in
        Alcotest.(check bool)
          (Printf.sprintf "used %.2fms <= 20ms" used)
          true (used <= 20.0 +. 0.01);
        Alcotest.(check bool) "ran at all" true (used > 15.0));
    Alcotest.test_case "overloaded domains split CPU by their shares" `Quick
      (fun () ->
        let e, k = rig () in
        let a =
          Nemesis.Domain.create ~name:"a" ~period:(ms 10) ~slice:(ms 6)
            ~extra:false ()
        in
        let b =
          Nemesis.Domain.create ~name:"b" ~period:(ms 10) ~slice:(ms 3)
            ~extra:false ()
        in
        Nemesis.Kernel.add_domain k a;
        Nemesis.Kernel.add_domain k b;
        Nemesis.Kernel.submit k a (job e ~work:(Sim.Time.sec 1));
        Nemesis.Kernel.submit k b (job e ~work:(Sim.Time.sec 1));
        Sim.Engine.run e ~until:(Sim.Time.ms 500);
        let ua = Sim.Time.to_ms_f (Nemesis.Domain.cpu_used a)
        and ub = Sim.Time.to_ms_f (Nemesis.Domain.cpu_used b) in
        Alcotest.(check bool)
          (Printf.sprintf "a=%.1f b=%.1f ratio 2:1" ua ub)
          true
          (ua /. ub > 1.8 && ua /. ub < 2.2));
    Alcotest.test_case "slack goes to extra-time domains" `Quick (fun () ->
        let e, k = rig () in
        let a =
          Nemesis.Domain.create ~name:"a" ~period:(ms 10) ~slice:(ms 2)
            ~extra:true ()
        in
        Nemesis.Kernel.add_domain k a;
        Nemesis.Kernel.submit k a (job e ~work:(ms 80));
        Sim.Engine.run e ~until:(ms 100);
        (* Guarantee alone is 20ms; with slack it should finish all 80ms. *)
        Alcotest.(check int) "completed" 1 (Nemesis.Domain.jobs_completed a));
    Alcotest.test_case "earliest deadline runs first within guarantees" `Quick
      (fun () ->
        let e, k = rig ~ctx:Sim.Time.zero () in
        let fast =
          Nemesis.Domain.create ~name:"fast" ~period:(ms 5) ~slice:(ms 1) ()
        in
        let slow =
          Nemesis.Domain.create ~name:"slow" ~period:(ms 50) ~slice:(ms 10) ()
        in
        Nemesis.Kernel.add_domain k fast;
        Nemesis.Kernel.add_domain k slow;
        let order = ref [] in
        Nemesis.Kernel.submit k slow
          (job e ~work:(ms 1) ~on_complete:(fun () -> order := "slow" :: !order));
        Nemesis.Kernel.submit k fast
          (job e ~work:(ms 1) ~on_complete:(fun () -> order := "fast" :: !order));
        Sim.Engine.run e ~until:(ms 100);
        Alcotest.(check (list string)) "fast first" [ "fast"; "slow" ]
          (List.rev !order));
  ]

let baseline_tests =
  [
    Alcotest.test_case "fixed priority starves the low side under load" `Quick
      (fun () ->
        let e, k = rig ~policy:(Nemesis.Policy.fixed_priority ()) () in
        let hi = Nemesis.Domain.create ~name:"hi" ~priority:10 () in
        let lo = Nemesis.Domain.create ~name:"lo" ~priority:1 () in
        Nemesis.Kernel.add_domain k hi;
        Nemesis.Kernel.add_domain k lo;
        Nemesis.Kernel.submit k hi (job e ~work:(Sim.Time.sec 1));
        Nemesis.Kernel.submit k lo (job e ~work:(Sim.Time.sec 1));
        Sim.Engine.run e ~until:(ms 200);
        Alcotest.(check int64) "low got nothing" Sim.Time.zero
          (Nemesis.Domain.cpu_used lo);
        Alcotest.(check bool) "high got everything" true
          (Sim.Time.to_ms_f (Nemesis.Domain.cpu_used hi) > 199.0));
    Alcotest.test_case "round robin shares equally regardless of need" `Quick
      (fun () ->
        let e, k = rig ~policy:(Nemesis.Policy.round_robin ()) () in
        let a = Nemesis.Domain.create ~name:"a" () in
        let b = Nemesis.Domain.create ~name:"b" () in
        Nemesis.Kernel.add_domain k a;
        Nemesis.Kernel.add_domain k b;
        Nemesis.Kernel.submit k a (job e ~work:(Sim.Time.sec 1));
        Nemesis.Kernel.submit k b (job e ~work:(Sim.Time.sec 1));
        Sim.Engine.run e ~until:(ms 200);
        let ua = Sim.Time.to_ms_f (Nemesis.Domain.cpu_used a)
        and ub = Sim.Time.to_ms_f (Nemesis.Domain.cpu_used b) in
        Alcotest.(check bool)
          (Printf.sprintf "a=%.1f b=%.1f equal" ua ub)
          true
          (Float.abs (ua -. ub) < 11.0));
    Alcotest.test_case "plain EDF honours job deadlines when feasible" `Quick
      (fun () ->
        let e, k = rig ~policy:(Nemesis.Policy.edf ()) ~ctx:Sim.Time.zero () in
        let a = Nemesis.Domain.create ~name:"a" () in
        let b = Nemesis.Domain.create ~name:"b" () in
        Nemesis.Kernel.add_domain k a;
        Nemesis.Kernel.add_domain k b;
        let order = ref [] in
        Nemesis.Kernel.submit k a
          (job e ~work:(ms 2) ~deadline:(ms 50)
             ~on_complete:(fun () -> order := "late" :: !order));
        Nemesis.Kernel.submit k b
          (job e ~work:(ms 2) ~deadline:(ms 10)
             ~on_complete:(fun () -> order := "urgent" :: !order));
        Sim.Engine.run e ~until:(ms 100);
        Alcotest.(check (list string)) "urgent first" [ "urgent"; "late" ]
          (List.rev !order);
        Alcotest.(check int) "no misses"
          0
          (Nemesis.Domain.deadline_misses a + Nemesis.Domain.deadline_misses b));
    Alcotest.test_case
      "every miss accounting surface agrees on exactly k misses" `Quick
      (fun () ->
        (* Five sequential 2ms jobs in one domain complete no earlier
           than 2ms, 4ms, ..., 10ms apart.  Two carry deadlines no
           execution order can meet (1ms and 3ms, versus at least 2ms
           and 4ms of preceding work), so the workload misses exactly
           2 — and the domain counter, the kernel metrics counter and
           the trace instants must all say so. *)
        let metrics = Sim.Metrics.create () in
        let trace = Sim.Trace.create ~unbounded:true () in
        Sim.Trace.set_flows trace true;
        let e = Sim.Engine.create ~metrics ~trace () in
        let k = Nemesis.Kernel.create e ~policy:(Nemesis.Policy.atropos ()) () in
        let d = Nemesis.Domain.create ~name:"d" () in
        Nemesis.Kernel.add_domain k d;
        let deadlines = [ ms 50; ms 1; ms 50; ms 3; ms 50 ] in
        List.iter
          (fun deadline ->
            let flow = Sim.Trace.alloc_flow trace in
            Nemesis.Kernel.submit k d
              (Nemesis.Job.make ~deadline ~flow ~work:(ms 2)
                 ~created:(Sim.Engine.now e) ()))
          deadlines;
        Sim.Engine.run e ~until:(ms 100);
        let k_misses = 2 in
        Alcotest.(check int) "domain counter" k_misses
          (Nemesis.Domain.deadline_misses d);
        let counter =
          Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Nemesis
            "kernel.deadline_misses"
        in
        Alcotest.(check int) "metrics counter" k_misses
          (Sim.Metrics.value counter);
        let miss_events =
          List.filter
            (fun ev -> ev.Sim.Trace.ev_name = "deadline_miss")
            (Sim.Trace.events trace)
        in
        Alcotest.(check int) "trace instants" k_misses
          (List.length miss_events);
        (* The instants identify the guilty jobs: flows 2 and 4. *)
        Alcotest.(check (list int)) "flows on the instants" [ 2; 4 ]
          (List.sort compare
             (List.map (fun ev -> ev.Sim.Trace.ev_flow) miss_events));
        (* And with flow recording on, each job's completion left a
           cpu.run step bound to its flow. *)
        Alcotest.(check int) "cpu.run steps" (List.length deadlines)
          (List.length
             (List.filter
                (fun ev -> ev.Sim.Trace.ev_name = "cpu.run")
                (Sim.Trace.events trace))));
  ]

let event_tests =
  [
    Alcotest.test_case "event closures turn notifications into jobs" `Quick
      (fun () ->
        let e, k = rig () in
        let d = Nemesis.Domain.create ~name:"server" () in
        Nemesis.Kernel.add_domain k d;
        let handled = ref 0 in
        let ch =
          Nemesis.Kernel.channel k ~dst:d ~mode:`Async
            ~closure:(fun () ->
              Some
                (job e ~work:(us 100) ~on_complete:(fun () -> incr handled)))
            ()
        in
        for _ = 1 to 5 do
          Nemesis.Kernel.send k ch
        done;
        Sim.Engine.run e ~until:(ms 50);
        Alcotest.(check int) "handled all" 5 !handled;
        Alcotest.(check int) "sent" 5 (Nemesis.Kernel.sent ch);
        Alcotest.(check int) "delivered" 5 (Nemesis.Kernel.delivered ch);
        Alcotest.(check int) "none pending" 0 (Nemesis.Kernel.pending ch));
    Alcotest.test_case "sync signalling beats async on latency" `Quick (fun () ->
        (* Client sends to server; measure time until the server job runs.
           Sync: the sender yields, the server runs immediately.  Async:
           the sender keeps its window (it has a long job), the server
           waits. *)
        let run mode =
          let e, k = rig ~ctx:Sim.Time.zero () in
          let client =
            Nemesis.Domain.create ~name:"client" ~period:(ms 100)
              ~slice:(ms 50) ()
          in
          let server =
            Nemesis.Domain.create ~name:"server" ~period:(ms 100)
              ~slice:(ms 50) ()
          in
          Nemesis.Kernel.add_domain k client;
          Nemesis.Kernel.add_domain k server;
          let served_at = ref None in
          let ch =
            Nemesis.Kernel.channel k ~dst:server ~mode
              ~closure:(fun () ->
                Some
                  (job e ~work:(us 10)
                     ~on_complete:(fun () ->
                       if !served_at = None then
                         served_at := Some (Sim.Engine.now e))))
              ()
          in
          let sent_at = ref Sim.Time.zero in
          (* Client: a tiny job that signals, then a long compute job
             that keeps its window busy. *)
          Nemesis.Kernel.submit k client
            (job e ~work:(us 10)
               ~on_complete:(fun () ->
                 sent_at := Sim.Engine.now e;
                 Nemesis.Kernel.send k ch));
          Nemesis.Kernel.submit k client (job e ~work:(ms 40));
          Sim.Engine.run e ~until:(ms 200);
          match !served_at with
          | Some at -> Sim.Time.to_us_f (Sim.Time.sub at !sent_at)
          | None -> Alcotest.fail "server never ran"
        in
        let sync = run `Sync and async = run `Async in
        Alcotest.(check bool)
          (Printf.sprintf "sync %.0fus << async %.0fus" sync async)
          true
          (sync *. 10.0 < async));
    Alcotest.test_case "events to an idle system wake it" `Quick (fun () ->
        let e, k = rig () in
        let d = Nemesis.Domain.create ~name:"d" () in
        Nemesis.Kernel.add_domain k d;
        let ran = ref false in
        let ch =
          Nemesis.Kernel.channel k ~dst:d ~mode:`Async
            ~closure:(fun () ->
              Some (job e ~work:(us 1) ~on_complete:(fun () -> ran := true)))
            ()
        in
        ignore
          (Sim.Engine.schedule e ~delay:(ms 30) (fun () ->
               Nemesis.Kernel.send k ch));
        Sim.Engine.run e ~until:(ms 60);
        Alcotest.(check bool) "woke up" true !ran);
    Alcotest.test_case "timer delivers an interrupt at the right time" `Quick
      (fun () ->
        let e, k = rig () in
        let d = Nemesis.Domain.create ~name:"driver" () in
        Nemesis.Kernel.add_domain k d;
        let fired_at = ref Sim.Time.zero in
        let ch =
          Nemesis.Kernel.channel k ~dst:d ~mode:`Async
            ~closure:(fun () ->
              Some
                (job e ~work:(us 1)
                   ~on_complete:(fun () -> fired_at := Sim.Engine.now e)))
            ()
        in
        Nemesis.Kernel.timer k ~at:(ms 25) ch;
        Sim.Engine.run e ~until:(ms 60);
        Alcotest.(check bool) "about 25ms" true
          (Sim.Time.to_ms_f !fired_at >= 25.0 && Sim.Time.to_ms_f !fired_at < 25.2));
  ]

let kps_tests =
  [
    Alcotest.test_case "interrupts are deferred inside a KPS" `Quick (fun () ->
        let e, k = rig () in
        let d = Nemesis.Domain.create ~name:"driver" () in
        Nemesis.Kernel.add_domain k d;
        let ch = Nemesis.Kernel.channel k ~dst:d ~mode:`Async () in
        Nemesis.Kernel.with_kps k (fun () ->
            Nemesis.Kernel.interrupt k ch;
            Alcotest.(check int) "not yet raised" 0 (Nemesis.Kernel.sent ch));
        Alcotest.(check int) "raised on exit" 1 (Nemesis.Kernel.sent ch);
        Sim.Engine.run e);
    Alcotest.test_case "KPS exits even when the body raises (TRY..FINALLY)"
      `Quick (fun () ->
        let _, k = rig () in
        (try
           Nemesis.Kernel.with_kps k (fun () -> failwith "trap!")
         with Failure _ -> ());
        Alcotest.(check bool) "left kernel mode" false
          (Nemesis.Kernel.kps_active k));
    Alcotest.test_case "KPS nests" `Quick (fun () ->
        let e, k = rig () in
        let d = Nemesis.Domain.create ~name:"driver" () in
        Nemesis.Kernel.add_domain k d;
        let ch = Nemesis.Kernel.channel k ~dst:d ~mode:`Async () in
        Nemesis.Kernel.with_kps k (fun () ->
            Nemesis.Kernel.with_kps k (fun () -> Nemesis.Kernel.interrupt k ch);
            Alcotest.(check bool) "still privileged" true
              (Nemesis.Kernel.kps_active k);
            Alcotest.(check int) "still deferred" 0 (Nemesis.Kernel.sent ch));
        Alcotest.(check int) "delivered at outermost exit" 1
          (Nemesis.Kernel.sent ch);
        Sim.Engine.run e);
    Alcotest.test_case "exit without enter is rejected" `Quick (fun () ->
        let _, k = rig () in
        Alcotest.check_raises "unbalanced"
          (Invalid_argument "Kernel.exit_kps: not in a section") (fun () ->
            Nemesis.Kernel.exit_kps k));
  ]

let activation_tests =
  [
    Alcotest.test_case "informed domains run urgent work first after preemption"
      `Quick (fun () ->
        (* One long best-effort job is in progress; an urgent deadline
           job arrives.  The informed user-level scheduler picks it on
           reactivation; the opaque one finishes the long job first. *)
        let run mode =
          let e, k = rig ~ctx:Sim.Time.zero () in
          let d =
            Nemesis.Domain.create ~name:"app" ~mode ~period:(ms 10)
              ~slice:(ms 5) ()
          in
          Nemesis.Kernel.add_domain k d;
          let urgent_done = ref None in
          Nemesis.Kernel.submit k d (job e ~work:(ms 30) ~label:"long");
          ignore
            (Sim.Engine.schedule e ~delay:(ms 7) (fun () ->
                 Nemesis.Kernel.submit k d
                   (Nemesis.Job.make ~label:"urgent" ~work:(ms 1)
                      ~deadline:(ms 12) ~created:(Sim.Engine.now e)
                      ~on_complete:(fun () ->
                        urgent_done := Some (Sim.Engine.now e))
                      ())));
          Sim.Engine.run e ~until:(ms 100);
          (!urgent_done, Nemesis.Domain.deadline_misses d)
        in
        let informed, informed_misses = run Nemesis.Domain.Informed in
        let opaque, opaque_misses = run Nemesis.Domain.Opaque in
        (match (informed, opaque) with
        | Some i, Some o ->
            Alcotest.(check bool)
              (Format.asprintf "informed %a < opaque %a" Sim.Time.pp i
                 Sim.Time.pp o)
              true
              Sim.Time.(i < o)
        | _ -> Alcotest.fail "urgent job did not finish");
        Alcotest.(check int) "informed meets deadline" 0 informed_misses;
        Alcotest.(check int) "opaque misses it" 1 opaque_misses);
    Alcotest.test_case "activation handler sees event counts" `Quick (fun () ->
        let e, k = rig () in
        let d = Nemesis.Domain.create ~name:"d" () in
        let seen = ref [] in
        Nemesis.Domain.set_activation_handler d (fun ~now:_ ~events ->
            seen := events :: !seen);
        Nemesis.Kernel.add_domain k d;
        let ch = Nemesis.Kernel.channel k ~dst:d ~mode:`Async () in
        Nemesis.Kernel.send k ch;
        Nemesis.Kernel.send k ch;
        Sim.Engine.run e ~until:(ms 10);
        Alcotest.(check bool) "one activation with 2 events" true
          (List.mem 2 !seen));
    Alcotest.test_case "activation latency is recorded" `Quick (fun () ->
        let e, k = rig () in
        let d = Nemesis.Domain.create ~name:"d" () in
        Nemesis.Kernel.add_domain k d;
        Nemesis.Kernel.submit k d (job e ~work:(ms 1));
        Sim.Engine.run e ~until:(ms 10);
        Alcotest.(check bool) "has a sample" true
          (Sim.Stats.Samples.count (Nemesis.Domain.activation_latency_us d) >= 1));
  ]

let vm_tests =
  [
    Alcotest.test_case "segments share one translation, rights differ" `Quick
      (fun () ->
        let space = Nemesis.Vm.create_space () in
        let seg = Nemesis.Vm.alloc_segment space ~name:"buf" ~size:4096 in
        Nemesis.Vm.map space ~domain:1 seg Nemesis.Vm.rw;
        Nemesis.Vm.map space ~domain:2 seg Nemesis.Vm.r;
        let addr = Nemesis.Vm.segment_base seg in
        Alcotest.(check bool) "d1 writes" true
          (Nemesis.Vm.access space ~domain:1 ~addr `Write = Ok seg);
        Alcotest.(check bool) "d2 reads" true
          (Nemesis.Vm.access space ~domain:2 ~addr `Read = Ok seg);
        Alcotest.(check bool) "d2 cannot write" true
          (Nemesis.Vm.access space ~domain:2 ~addr `Write = Error `Protection);
        Alcotest.(check bool) "d3 unmapped" true
          (Nemesis.Vm.access space ~domain:3 ~addr `Read = Error `Unmapped);
        Alcotest.(check int) "shared by two" 2
          (Nemesis.Vm.shared_mappings space seg));
    Alcotest.test_case "unmap revokes access" `Quick (fun () ->
        let space = Nemesis.Vm.create_space () in
        let seg = Nemesis.Vm.alloc_segment space ~name:"s" ~size:100 in
        Nemesis.Vm.map space ~domain:1 seg Nemesis.Vm.r;
        Nemesis.Vm.unmap space ~domain:1 seg;
        Alcotest.(check bool) "revoked" true
          (Nemesis.Vm.access space ~domain:1
             ~addr:(Nemesis.Vm.segment_base seg) `Read
          = Error `Unmapped));
    Alcotest.test_case "segments never overlap" `Quick (fun () ->
        let space = Nemesis.Vm.create_space () in
        let a = Nemesis.Vm.alloc_segment space ~name:"a" ~size:5000 in
        let b = Nemesis.Vm.alloc_segment space ~name:"b" ~size:5000 in
        let a_end =
          Int64.add (Nemesis.Vm.segment_base a)
            (Int64.of_int (Nemesis.Vm.segment_size a))
        in
        Alcotest.(check bool) "disjoint" true
          (Nemesis.Vm.segment_base b >= a_end));
    Alcotest.test_case "alias flush dominates the context-switch cost" `Quick
      (fun () ->
        let with_aliases = Nemesis.Vm.switch_cost ~aliases:true () in
        let without = Nemesis.Vm.switch_cost ~aliases:false () in
        Alcotest.(check bool)
          (Format.asprintf "%a vs %a" Sim.Time.pp with_aliases Sim.Time.pp without)
          true
          Sim.Time.(Sim.Time.mul without 10 < with_aliases));
    Alcotest.test_case "hashed bases rarely collide" `Quick (fun () ->
        let rng = Sim.Rng.create ~seed:5L () in
        let collisions = Nemesis.Vm.reuse_collisions rng ~images:1000 in
        (* Birthday bound: expect ~ n^2 / 2^33 ~ 0.0001 collisions. *)
        Alcotest.(check int) "none in 1000 images" 0 collisions);
    Alcotest.test_case "relocation cache hit avoids relocation cost" `Quick
      (fun () ->
        let hit = Nemesis.Vm.load_cost ~relocs:10_000 ~cache_hit:true in
        let miss = Nemesis.Vm.load_cost ~relocs:10_000 ~cache_hit:false in
        Alcotest.(check int64) "hit is the map cost" (us 50) hit;
        Alcotest.(check int64) "miss adds relocs" (Sim.Time.add (us 50) (ms 1))
          miss);
  ]

let qos_tests =
  [
    Alcotest.test_case "requests within capacity are granted in full" `Quick
      (fun () ->
        let e, k = rig () in
        let d = Nemesis.Domain.create ~name:"app" ~period:(ms 10) () in
        Nemesis.Kernel.add_domain k d;
        let q = Nemesis.Qos.create k () in
        Nemesis.Qos.register q ~domain:d ~want:0.4 ();
        Sim.Engine.run e ~until:(ms 50);
        Alcotest.(check (float 0.01)) "granted" 0.4 (Nemesis.Qos.granted q ~domain:d);
        (* slice = 40% of 10ms period *)
        Alcotest.(check int64) "slice applied" (ms 4)
          (Nemesis.Domain.params d).Nemesis.Domain.slice);
    Alcotest.test_case "overload scales grants proportionally" `Quick (fun () ->
        let e, k = rig () in
        let a = Nemesis.Domain.create ~name:"a" ~period:(ms 10) () in
        let b = Nemesis.Domain.create ~name:"b" ~period:(ms 10) () in
        Nemesis.Kernel.add_domain k a;
        Nemesis.Kernel.add_domain k b;
        (* Keep both busy so utilisation stays high. *)
        Nemesis.Kernel.submit k a (job e ~work:(Sim.Time.sec 10));
        Nemesis.Kernel.submit k b (job e ~work:(Sim.Time.sec 10));
        let q = Nemesis.Qos.create k ~capacity:0.9 () in
        Nemesis.Qos.register q ~domain:a ~want:0.8 ();
        Nemesis.Qos.register q ~domain:b ~want:0.4 ();
        Sim.Engine.run e ~until:(Sim.Time.sec 1);
        let ga = Nemesis.Qos.granted q ~domain:a
        and gb = Nemesis.Qos.granted q ~domain:b in
        Alcotest.(check (float 0.02)) "a scaled" 0.6 ga;
        Alcotest.(check (float 0.02)) "b scaled" 0.3 gb);
    Alcotest.test_case "unused allocation is reclaimed over time" `Quick
      (fun () ->
        let e, k = rig () in
        let idle_dom = Nemesis.Domain.create ~name:"idle" ~period:(ms 10) () in
        Nemesis.Kernel.add_domain k idle_dom;
        let q = Nemesis.Qos.create k ~smoothing:0.5 () in
        Nemesis.Qos.register q ~domain:idle_dom ~want:0.8 ();
        (* The domain never submits work, so its utilisation decays and
           the manager shrinks its grant. *)
        Sim.Engine.run e ~until:(Sim.Time.sec 2);
        Alcotest.(check bool) "grant shrank" true
          (Nemesis.Qos.granted q ~domain:idle_dom < 0.3);
        Alcotest.(check bool) "reviews happened" true (Nemesis.Qos.reviews q > 10));
    Alcotest.test_case "adapt callback reports grant changes" `Quick (fun () ->
        let e, k = rig () in
        let a = Nemesis.Domain.create ~name:"a" ~period:(ms 10) () in
        let b = Nemesis.Domain.create ~name:"b" ~period:(ms 10) () in
        Nemesis.Kernel.add_domain k a;
        Nemesis.Kernel.add_domain k b;
        Nemesis.Kernel.submit k a (job e ~work:(Sim.Time.sec 10));
        Nemesis.Kernel.submit k b (job e ~work:(Sim.Time.sec 10));
        let q = Nemesis.Qos.create k () in
        let grants = ref [] in
        Nemesis.Qos.register q ~domain:a ~want:0.8
          ~adapt:(fun ~granted -> grants := granted :: !grants)
          ();
        Sim.Engine.run e ~until:(ms 300);
        (* Competitor arrives: a's grant must shrink, invoking adapt. *)
        Nemesis.Qos.register q ~domain:b ~want:0.8 ();
        Sim.Engine.run e ~until:(ms 600);
        Alcotest.(check bool) "adapted down" true
          (List.exists (fun g -> g < 0.5) !grants));
    Alcotest.test_case "unregister returns capacity" `Quick (fun () ->
        let e, k = rig () in
        let a = Nemesis.Domain.create ~name:"a" ~period:(ms 10) () in
        let b = Nemesis.Domain.create ~name:"b" ~period:(ms 10) () in
        Nemesis.Kernel.add_domain k a;
        Nemesis.Kernel.add_domain k b;
        Nemesis.Kernel.submit k a (job e ~work:(Sim.Time.sec 10));
        Nemesis.Kernel.submit k b (job e ~work:(Sim.Time.sec 10));
        let q = Nemesis.Qos.create k ~capacity:0.9 () in
        Nemesis.Qos.register q ~domain:a ~want:0.8 ();
        Nemesis.Qos.register q ~domain:b ~want:0.8 ();
        Sim.Engine.run e ~until:(ms 300);
        Alcotest.(check bool) "squeezed" true (Nemesis.Qos.granted q ~domain:a < 0.5);
        Nemesis.Qos.unregister q ~domain:b;
        Sim.Engine.run e ~until:(ms 600);
        Alcotest.(check (float 0.02)) "restored" 0.8
          (Nemesis.Qos.granted q ~domain:a));
  ]

let slack_tests =
  [
    Alcotest.test_case "no-slack policy idles after guarantees" `Quick
      (fun () ->
        let e, k =
          rig ~policy:(Nemesis.Policy.atropos ~slack:`None ()) ()
        in
        let d =
          Nemesis.Domain.create ~name:"d" ~period:(ms 10) ~slice:(ms 2)
            ~extra:true ()
        in
        Nemesis.Kernel.add_domain k d;
        Nemesis.Kernel.submit k d (job e ~work:(Sim.Time.sec 1));
        Sim.Engine.run e ~until:(ms 100);
        (* 10 periods x 2ms: the guarantee only, despite extra=true. *)
        let used = Sim.Time.to_ms_f (Nemesis.Domain.cpu_used d) in
        Alcotest.(check bool)
          (Printf.sprintf "used %.1fms" used)
          true
          (used <= 20.01));
    Alcotest.test_case "proportional slack follows the shares" `Quick
      (fun () ->
        let e, k =
          rig ~policy:(Nemesis.Policy.atropos ~slack:`Proportional ())
            ~ctx:Sim.Time.zero ()
        in
        let mk name slice =
          let d =
            Nemesis.Domain.create ~name ~period:(ms 100) ~slice:(ms slice)
              ~extra:true ()
          in
          Nemesis.Kernel.add_domain k d;
          Nemesis.Kernel.submit k d (job e ~work:(Sim.Time.sec 10));
          d
        in
        let small = mk "small" 1 in
        let big = mk "big" 3 in
        Sim.Engine.run e ~until:(Sim.Time.sec 1);
        let us_ d = Sim.Time.to_ms_f (Nemesis.Domain.cpu_used d) in
        let ratio = us_ big /. us_ small in
        Alcotest.(check bool)
          (Printf.sprintf "big/small = %.2f (want ~3)" ratio)
          true
          (ratio > 2.5 && ratio < 3.5));
  ]

let handoff_tests =
  [
    Alcotest.test_case "sync send runs the receiver immediately" `Quick
      (fun () ->
        let e, k = rig ~ctx:Sim.Time.zero () in
        let sender =
          Nemesis.Domain.create ~name:"sender" ~period:(ms 10) ~slice:(ms 5) ()
        in
        let receiver =
          Nemesis.Domain.create ~name:"receiver" ~period:(ms 10) ~slice:(ms 5) ()
        in
        Nemesis.Kernel.add_domain k sender;
        Nemesis.Kernel.add_domain k receiver;
        let served_at = ref None in
        let ch =
          Nemesis.Kernel.channel k ~dst:receiver ~mode:`Sync
            ~closure:(fun () ->
              Some
                (job e ~work:(Sim.Time.us 10)
                   ~on_complete:(fun () ->
                     served_at := Some (Sim.Engine.now e))))
            ()
        in
        (* The sender signals, then still has plenty of its own work. *)
        Nemesis.Kernel.submit k sender
          (job e ~work:(Sim.Time.us 10)
             ~on_complete:(fun () -> Nemesis.Kernel.send k ch));
        Nemesis.Kernel.submit k sender (job e ~work:(ms 4));
        Sim.Engine.run e ~until:(ms 50);
        match !served_at with
        | Some at ->
            Alcotest.(check bool)
              (Format.asprintf "served at %a" Sim.Time.pp at)
              true
              Sim.Time.(at < Sim.Time.us 100)
        | None -> Alcotest.fail "receiver never ran");
    Alcotest.test_case "submitting to the running domain does not preempt"
      `Quick (fun () ->
        let e, k = rig () in
        let d = Nemesis.Domain.create ~name:"d" ~period:(ms 100) ~slice:(ms 50) () in
        Nemesis.Kernel.add_domain k d;
        Nemesis.Kernel.submit k d
          (job e ~work:(ms 1)
             ~on_complete:(fun () ->
               (* adding a job to ourselves must not cost a context
                  switch or reschedule *)
               Nemesis.Kernel.submit k d (job e ~work:(ms 1))));
        Sim.Engine.run e ~until:(ms 50);
        Alcotest.(check int) "both jobs done" 2 (Nemesis.Domain.jobs_completed d);
        Alcotest.(check int) "single switch" 1 (Nemesis.Kernel.context_switches k));
  ]

let ipc_tests =
  [
    Alcotest.test_case "a protected call round-trips between domains" `Quick
      (fun () ->
        let e, k = rig () in
        let client = Nemesis.Domain.create ~name:"client" ~period:(ms 10) ~slice:(ms 4) () in
        let srv_dom = Nemesis.Domain.create ~name:"server" ~period:(ms 10) ~slice:(ms 4) () in
        Nemesis.Kernel.add_domain k client;
        Nemesis.Kernel.add_domain k srv_dom;
        let server =
          Nemesis.Ipc.serve k ~domain:srv_dom (fun ~meth payload ->
              Alcotest.(check string) "method" "upper" meth;
              Bytes.of_string (String.uppercase_ascii (Bytes.to_string payload)))
        in
        let conn = Nemesis.Ipc.connect k ~client server in
        let got = ref None in
        let done_at = ref Sim.Time.zero in
        Nemesis.Kernel.submit k client
          (job e ~work:(us 10)
             ~on_complete:(fun () ->
               Nemesis.Ipc.call conn ~meth:"upper" (Bytes.of_string "nemesis")
                 ~reply:(fun r ->
                   done_at := Sim.Engine.now e;
                   got := Some r)));
        Sim.Engine.run e ~until:(ms 100);
        (match !got with
        | Some (Ok b) -> Alcotest.(check string) "reply" "NEMESIS" (Bytes.to_string b)
        | _ -> Alcotest.fail "no reply");
        Alcotest.(check int) "served once" 1 (Nemesis.Ipc.calls_served server);
        (* protected-call latency: two sync handoffs + handler cost *)
        Alcotest.(check bool)
          (Format.asprintf "RTT %a" Sim.Time.pp !done_at)
          true
          Sim.Time.(!done_at < ms 1));
    Alcotest.test_case "pipelined calls are all served in order" `Quick
      (fun () ->
        let e, k = rig () in
        let client = Nemesis.Domain.create ~name:"client" ~period:(ms 10) ~slice:(ms 4) () in
        let srv_dom = Nemesis.Domain.create ~name:"server" ~period:(ms 10) ~slice:(ms 4) () in
        Nemesis.Kernel.add_domain k client;
        Nemesis.Kernel.add_domain k srv_dom;
        let server = Nemesis.Ipc.serve k ~domain:srv_dom (fun ~meth:_ p -> p) in
        let conn = Nemesis.Ipc.connect k ~client server in
        let replies = ref [] in
        Nemesis.Kernel.submit k client
          (job e ~work:(us 10)
             ~on_complete:(fun () ->
               for i = 0 to 9 do
                 Nemesis.Ipc.call conn ~meth:"echo"
                   (Bytes.of_string (string_of_int i))
                   ~reply:(fun r ->
                     match r with
                     | Ok b -> replies := Bytes.to_string b :: !replies
                     | Error `Queue_full -> Alcotest.fail "queue full")
               done));
        Sim.Engine.run e ~until:(ms 100);
        Alcotest.(check (list string)) "in order"
          [ "0"; "1"; "2"; "3"; "4"; "5"; "6"; "7"; "8"; "9" ]
          (List.rev !replies));
    Alcotest.test_case "the shared queue pushes back when full" `Quick
      (fun () ->
        let e, k = rig () in
        let client = Nemesis.Domain.create ~name:"client" () in
        let srv_dom = Nemesis.Domain.create ~name:"server" () in
        Nemesis.Kernel.add_domain k client;
        Nemesis.Kernel.add_domain k srv_dom;
        let server =
          Nemesis.Ipc.serve k ~domain:srv_dom ~queue_depth:4 (fun ~meth:_ p -> p)
        in
        let conn = Nemesis.Ipc.connect k ~client server in
        let full = ref 0 in
        Nemesis.Kernel.submit k client
          (job e ~work:(us 10)
             ~on_complete:(fun () ->
               for _ = 0 to 9 do
                 Nemesis.Ipc.call conn ~meth:"x" Bytes.empty ~reply:(fun r ->
                     match r with Error `Queue_full -> incr full | Ok _ -> ())
               done));
        Sim.Engine.run e ~until:(ms 100);
        Alcotest.(check int) "six rejected" 6 !full;
        Alcotest.(check int) "four served" 4 (Nemesis.Ipc.calls_served server));
  ]

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"a non-extra domain never exceeds its guarantee" ~count:50
         QCheck2.Gen.(pair (int_range 1 5) (int_range 10 20))
         (fun (slice_ms, period_ms) ->
           let e = Sim.Engine.create () in
           let k =
             Nemesis.Kernel.create e ~policy:(Nemesis.Policy.atropos ()) ()
           in
           let d =
             Nemesis.Domain.create ~name:"d" ~period:(ms period_ms)
               ~slice:(ms slice_ms) ~extra:false ()
           in
           Nemesis.Kernel.add_domain k d;
           Nemesis.Kernel.submit k d
             (Nemesis.Job.make ~work:(Sim.Time.sec 10) ~created:Sim.Time.zero ());
           let horizon = 200 in
           Sim.Engine.run e ~until:(ms horizon);
           let allowed =
             (* ceil(horizon/period) periods of slice each *)
             ((horizon + period_ms - 1) / period_ms) * slice_ms
           in
           Sim.Time.to_ms_f (Nemesis.Domain.cpu_used d)
           <= Float.of_int allowed +. 0.001));
  ]

let () =
  Alcotest.run "nemesis"
    [
      ("kernel", kernel_tests);
      ("baselines", baseline_tests);
      ("events", event_tests);
      ("kps", kps_tests);
      ("activations", activation_tests);
      ("vm", vm_tests);
      ("qos", qos_tests);
      ("slack", slack_tests);
      ("handoff", handoff_tests);
      ("ipc", ipc_tests);
      ("properties", property_tests);
    ]
