(* Tests for the Pegasus file server: disks, RAID, log, cleaners,
   cache, client agent, continuous-media stack. *)

let ms = Sim.Time.ms

let seg_64k = 65536

let rig ?(store_data = true) ?(segment_bytes = seg_64k) () =
  let e = Sim.Engine.create () in
  let raid = Pfs.Raid.create e ~store_data ~segment_bytes () in
  let log = Pfs.Log.create e ~raid () in
  (e, raid, log)

(* Write a deterministic pattern and return it. *)
let pattern n tag = Bytes.init n (fun i -> Char.chr ((i + tag) land 0xff))

let write_ok e log fid ~off data =
  let done_ = ref false in
  Pfs.Log.write log fid ~off ~data ~len:(Bytes.length data) (fun r ->
      (match r with Ok () -> () | Error _ -> Alcotest.fail "write failed");
      done_ := true);
  Sim.Engine.run e;
  Alcotest.(check bool) "write completed" true !done_

let read_back e log fid ~off ~len =
  let result = ref None in
  Pfs.Log.read log fid ~off ~len ~k:(fun r -> result := Some r);
  Sim.Engine.run e;
  match !result with
  | Some (Ok (Some b)) -> b
  | Some (Ok None) -> Alcotest.fail "no data stored"
  | Some (Error _) -> Alcotest.fail "read failed"
  | None -> Alcotest.fail "read never completed"

let disk_tests =
  [
    Alcotest.test_case "sequential I/O avoids seeks" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let d = Pfs.Disk.create e ~name:"d" () in
        let n = 16 in
        for i = 0 to n - 1 do
          Pfs.Disk.write d ~off:(i * 65536) ~len:65536 ~k:(fun _ -> ())
        done;
        Sim.Engine.run e;
        (* Only the first op positions the head. *)
        Alcotest.(check bool) "one seek's worth" true
          Sim.Time.(Pfs.Disk.seek_time d < Sim.Time.ms 20);
        Alcotest.(check int) "ops" n (Pfs.Disk.writes d));
    Alcotest.test_case "random I/O pays positioning" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let d = Pfs.Disk.create e ~name:"d" () in
        for i = 0 to 15 do
          let off = (i * 7919 * 65536) mod 1_000_000_000 in
          Pfs.Disk.read d ~off ~len:4096 ~k:(fun _ -> ())
        done;
        Sim.Engine.run e;
        Alcotest.(check bool) "seeks dominate" true
          Sim.Time.(Pfs.Disk.seek_time d > Sim.Time.ms 50));
    Alcotest.test_case "megabyte extents keep seek overhead under 10%" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let d = Pfs.Disk.create e ~name:"d" () in
        (* Alternate between two distant regions, 1MB at a time: every
           op seeks, as when the log head and a read stream compete. *)
        for i = 0 to 19 do
          let off = if i mod 2 = 0 then i * 1_048_576 else 1_500_000_000 + (i * 1_048_576) in
          Pfs.Disk.write d ~off ~len:1_048_576 ~k:(fun _ -> ())
        done;
        Sim.Engine.run e;
        let overhead =
          Sim.Time.to_sec_f (Pfs.Disk.seek_time d)
          /. Sim.Time.to_sec_f (Pfs.Disk.busy_time d)
        in
        Alcotest.(check bool)
          (Printf.sprintf "overhead %.1f%%" (overhead *. 100.))
          true (overhead < 0.10);
        (* ...which sustains at least the paper's 5 MB/s per disk. *)
        let rate =
          Float.of_int (Pfs.Disk.bytes_written d)
          /. Sim.Time.to_sec_f (Pfs.Disk.busy_time d)
        in
        Alcotest.(check bool)
          (Printf.sprintf "%.2f MB/s" (rate /. 1e6))
          true
          (rate >= 5.0e6));
    Alcotest.test_case "failed disks answer with errors" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let d = Pfs.Disk.create e ~name:"d" () in
        Pfs.Disk.fail d;
        let got = ref None in
        Pfs.Disk.read d ~off:0 ~len:100 ~k:(fun r -> got := Some r);
        Sim.Engine.run e;
        Alcotest.(check bool) "error" true (!got = Some (Error `Failed));
        Pfs.Disk.repair d;
        Pfs.Disk.read d ~off:0 ~len:100 ~k:(fun r -> got := Some r);
        Sim.Engine.run e;
        Alcotest.(check bool) "ok after repair" true (!got = Some (Ok ())));
  ]

let raid_tests =
  [
    Alcotest.test_case "write/read round-trips through striping" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let raid = Pfs.Raid.create e ~store_data:true ~segment_bytes:4096 () in
        let data = pattern 4096 7 in
        Pfs.Raid.write_segment raid ~seg:3 ~data (fun r ->
            Alcotest.(check bool) "write ok" true (r = Ok ()));
        Sim.Engine.run e;
        let got = ref None in
        Pfs.Raid.read_segment raid ~seg:3 ~k:(fun r -> got := Some r);
        Sim.Engine.run e;
        match !got with
        | Some (Ok (Some b)) -> Alcotest.(check bytes) "data" data b
        | _ -> Alcotest.fail "read failed");
    Alcotest.test_case "a single failed data disk is reconstructed from parity"
      `Quick (fun () ->
        let e = Sim.Engine.create () in
        let raid = Pfs.Raid.create e ~store_data:true ~segment_bytes:4096 () in
        let data = pattern 4096 11 in
        Pfs.Raid.write_segment raid ~seg:0 ~data (fun _ -> ());
        Sim.Engine.run e;
        Pfs.Raid.fail_disk raid 2;
        let got = ref None in
        Pfs.Raid.read_segment raid ~seg:0 ~k:(fun r -> got := Some r);
        Sim.Engine.run e;
        (match !got with
        | Some (Ok (Some b)) -> Alcotest.(check bytes) "reconstructed" data b
        | _ -> Alcotest.fail "degraded read failed");
        Alcotest.(check (list int)) "failed list" [ 2 ] (Pfs.Raid.failed_disks raid));
    Alcotest.test_case "a failed parity disk does not block reads" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let raid = Pfs.Raid.create e ~store_data:true ~segment_bytes:4096 () in
        let data = pattern 4096 13 in
        Pfs.Raid.write_segment raid ~seg:0 ~data (fun _ -> ());
        Sim.Engine.run e;
        Pfs.Raid.fail_disk raid (Pfs.Raid.data_disks raid);
        let got = ref None in
        Pfs.Raid.read_segment raid ~seg:0 ~k:(fun r -> got := Some r);
        Sim.Engine.run e;
        match !got with
        | Some (Ok (Some b)) -> Alcotest.(check bytes) "data intact" data b
        | _ -> Alcotest.fail "read failed");
    Alcotest.test_case "two failures lose data" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let raid = Pfs.Raid.create e ~store_data:true ~segment_bytes:4096 () in
        Pfs.Raid.write_segment raid ~seg:0 ~data:(pattern 4096 1) (fun _ -> ());
        Sim.Engine.run e;
        Pfs.Raid.fail_disk raid 0;
        Pfs.Raid.fail_disk raid 1;
        let got = ref None in
        Pfs.Raid.read_segment raid ~seg:0 ~k:(fun r -> got := Some r);
        Sim.Engine.run e;
        Alcotest.(check bool) "lost" true (!got = Some (Error `Lost)));
    Alcotest.test_case "striping multiplies single-disk bandwidth by ~4" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let seg = 1_048_576 in
        let raid = Pfs.Raid.create e ~segment_bytes:seg () in
        let t0 = Sim.Engine.now e in
        let done_at = ref Sim.Time.zero in
        let rec write n =
          if n < 20 then
            Pfs.Raid.write_segment raid ~seg:n (fun _ ->
                done_at := Sim.Engine.now e;
                write (n + 1))
        in
        write 0;
        Sim.Engine.run e;
        let rate =
          Float.of_int (20 * seg) /. Sim.Time.to_sec_f (Sim.Time.sub !done_at t0)
        in
        (* The paper: four striped disks make 20 MB/s possible. *)
        Alcotest.(check bool)
          (Printf.sprintf "%.1f MB/s" (rate /. 1e6))
          true
          (rate > 18.0e6));
    Alcotest.test_case "partial reads touch only the stripes they cover" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let raid = Pfs.Raid.create e ~segment_bytes:1_048_576 () in
        Pfs.Raid.write_segment raid ~seg:0 (fun _ -> ());
        Sim.Engine.run e;
        Pfs.Raid.reset_stats raid;
        (* 10 KB within the first 256 KB chunk: only disk 0 reads. *)
        Pfs.Raid.read_extent raid ~seg:0 ~off:1000 ~len:10_000 ~k:(fun _ -> ());
        Sim.Engine.run e;
        let reads_per_disk =
          List.map (fun d -> Pfs.Disk.reads d) (Pfs.Raid.disks raid)
        in
        Alcotest.(check (list int)) "one disk" [ 1; 0; 0; 0; 0 ] reads_per_disk);
    Alcotest.test_case "multi-chunk extents read later chunks from their start"
      `Quick (fun () ->
        let e = Sim.Engine.create () in
        (* chunk = 1024 *)
        let raid = Pfs.Raid.create e ~segment_bytes:4096 () in
        Pfs.Raid.write_segment raid ~seg:1 (fun _ -> ());
        Sim.Engine.run e;
        (* Extent [1000, 2048) of segment 1: disk 0 serves the last 24
           bytes of its chunk, disk 1 the first 1024 of its own.  The
           head position after the read exposes the per-disk offset
           actually used — disk 1 must start at its chunk's beginning,
           not repeat disk 0's intra-chunk offset. *)
        Pfs.Raid.read_extent raid ~seg:1 ~off:1000 ~len:1048 ~k:(fun _ -> ());
        Sim.Engine.run e;
        let disks = Array.of_list (Pfs.Raid.disks raid) in
        Alcotest.(check int) "disk0 head" (1024 + 1000 + 24)
          (Pfs.Disk.head disks.(0));
        Alcotest.(check int) "disk1 head" (1024 + 0 + 1024)
          (Pfs.Disk.head disks.(1)));
    Alcotest.test_case "a disk failing mid-read falls back to parity" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let raid = Pfs.Raid.create e ~store_data:true ~segment_bytes:4096 () in
        let data = pattern 4096 17 in
        Pfs.Raid.write_segment raid ~seg:0 ~data (fun _ -> ());
        Sim.Engine.run e;
        (* The disk dies a microsecond after the chunk reads are
           issued: its in-flight read completes with an error after the
           targets were chosen, which must trigger a retry over the
           survivors plus parity, not a lost segment. *)
        let got = ref None in
        Pfs.Raid.read_segment raid ~seg:0 ~k:(fun r -> got := Some r);
        Pfs.Raid.fail_disk_at raid 1
          ~at:(Sim.Time.add (Sim.Engine.now e) (Sim.Time.us 1));
        Sim.Engine.run e;
        (match !got with
        | Some (Ok (Some b)) -> Alcotest.(check bytes) "reconstructed" data b
        | _ -> Alcotest.fail "mid-read failure was not survived");
        Alcotest.(check bool) "served degraded" true
          (Pfs.Raid.degraded_reads raid > 0));
    Alcotest.test_case "every single-disk failure in turn is survived" `Quick
      (fun () ->
        for victim = 0 to 4 do
          let e = Sim.Engine.create () in
          let raid =
            Pfs.Raid.create e ~store_data:true ~segment_bytes:4096 ()
          in
          let data = pattern 4096 (19 + victim) in
          Pfs.Raid.write_segment raid ~seg:0 ~data (fun _ -> ());
          Sim.Engine.run e;
          Pfs.Raid.fail_disk raid victim;
          let got = ref None in
          Pfs.Raid.read_segment raid ~seg:0 ~k:(fun r -> got := Some r);
          Sim.Engine.run e;
          match !got with
          | Some (Ok (Some b)) ->
              Alcotest.(check bytes)
                (Printf.sprintf "disk %d down, data intact" victim)
                data b
          | _ -> Alcotest.failf "read failed with disk %d down" victim
        done);
    Alcotest.test_case "a transient failure window heals" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let raid = Pfs.Raid.create e ~store_data:true ~segment_bytes:4096 () in
        let data = pattern 4096 23 in
        Pfs.Raid.write_segment raid ~seg:0 ~data (fun _ -> ());
        Sim.Engine.run e;
        Pfs.Raid.fail_disk_for raid 0
          ~at:(Sim.Engine.now e)
          ~duration:(Sim.Time.ms 1);
        let got = ref None in
        ignore
          (Sim.Engine.schedule e ~delay:(Sim.Time.ms 5) (fun () ->
               Alcotest.(check (list int)) "window over" []
                 (Pfs.Raid.failed_disks raid);
               Pfs.Raid.read_segment raid ~seg:0 ~k:(fun r -> got := Some r)));
        Sim.Engine.run e;
        match !got with
        | Some (Ok (Some b)) -> Alcotest.(check bytes) "data intact" data b
        | _ -> Alcotest.fail "read after the window failed");
  ]

let log_tests =
  [
    Alcotest.test_case "write then read returns the same bytes" `Quick
      (fun () ->
        let e, _, log = rig () in
        let fid = Pfs.Log.create_file log () in
        let data = pattern 10_000 3 in
        write_ok e log fid ~off:0 data;
        Alcotest.(check bytes) "round trip" data (read_back e log fid ~off:0 ~len:10_000);
        Alcotest.(check int) "size" 10_000 (Pfs.Log.file_size log fid));
    Alcotest.test_case "files spanning many segments read back intact" `Quick
      (fun () ->
        let e, _, log = rig () in
        let fid = Pfs.Log.create_file log () in
        let data = pattern 300_000 5 in
        (* 300KB across 64KB segments *)
        write_ok e log fid ~off:0 data;
        Alcotest.(check bytes) "all bytes" data
          (read_back e log fid ~off:0 ~len:300_000);
        Alcotest.(check bool) "several segments" true
          (Pfs.Log.total_segments log >= 5));
    Alcotest.test_case "partial overwrite keeps both old and new ranges right"
      `Quick (fun () ->
        let e, _, log = rig () in
        let fid = Pfs.Log.create_file log () in
        write_ok e log fid ~off:0 (Bytes.make 9000 'a');
        write_ok e log fid ~off:3000 (Bytes.make 3000 'b');
        let b = read_back e log fid ~off:0 ~len:9000 in
        Alcotest.(check char) "head" 'a' (Bytes.get b 0);
        Alcotest.(check char) "edge before" 'a' (Bytes.get b 2999);
        Alcotest.(check char) "overwritten" 'b' (Bytes.get b 3000);
        Alcotest.(check char) "edge inside" 'b' (Bytes.get b 5999);
        Alcotest.(check char) "tail" 'a' (Bytes.get b 6000));
    Alcotest.test_case "overwrites record garbage" `Quick (fun () ->
        let e, _, log = rig () in
        let fid = Pfs.Log.create_file log () in
        write_ok e log fid ~off:0 (pattern 5000 1);
        let before = Pfs.Garbage.count (Pfs.Log.garbage log) in
        write_ok e log fid ~off:0 (pattern 5000 2);
        Alcotest.(check bool) "entries appended" true (Pfs.Garbage.count (Pfs.Log.garbage log) > before);
        Alcotest.(check bool) "at least the data range" true
          (Pfs.Garbage.total_bytes (Pfs.Log.garbage log) >= 5000));
    Alcotest.test_case "delete turns the whole file into garbage" `Quick
      (fun () ->
        let e, _, log = rig () in
        let fid = Pfs.Log.create_file log () in
        write_ok e log fid ~off:0 (pattern 5000 1);
        let live0 = Pfs.Log.live_bytes log in
        Pfs.Log.delete log fid ~k:(fun r ->
            Alcotest.(check bool) "ok" true (r = Ok ()));
        Sim.Engine.run e;
        Alcotest.(check bool) "gone" false (Pfs.Log.file_exists log fid);
        Alcotest.(check bool) "live dropped" true (Pfs.Log.live_bytes log < live0));
    Alcotest.test_case "holes read as zeros" `Quick (fun () ->
        let e, _, log = rig () in
        let fid = Pfs.Log.create_file log () in
        write_ok e log fid ~off:8000 (Bytes.make 100 'x');
        let b = read_back e log fid ~off:0 ~len:8100 in
        Alcotest.(check char) "hole" '\000' (Bytes.get b 0);
        Alcotest.(check char) "data" 'x' (Bytes.get b 8000));
    Alcotest.test_case "sync seals open segments (tails become garbage)" `Quick
      (fun () ->
        let e, _, log = rig () in
        let fid = Pfs.Log.create_file log () in
        write_ok e log fid ~off:0 (pattern 1000 1);
        let g0 = Pfs.Garbage.total_bytes (Pfs.Log.garbage log) in
        Pfs.Log.sync log ~k:(fun _ -> ());
        Sim.Engine.run e;
        Alcotest.(check bool) "tail recorded" true
          (Pfs.Garbage.total_bytes (Pfs.Log.garbage log) > g0);
        (* Data still readable after sealing. *)
        Alcotest.(check bytes) "after sync" (pattern 1000 1)
          (read_back e log fid ~off:0 ~len:1000));
    Alcotest.test_case "metadata updates append to the normal log" `Quick
      (fun () ->
        let e, _, log = rig () in
        let fid = Pfs.Log.create_file log () in
        let m0 = Pfs.Log.metadata_writes log in
        write_ok e log fid ~off:0 (pattern 100 1);
        write_ok e log fid ~off:100 (pattern 100 2);
        Alcotest.(check int) "one pnode write per update" (m0 + 2)
          (Pfs.Log.metadata_writes log));
    Alcotest.test_case "cleaning preserves every live byte" `Quick (fun () ->
        let e, _, log = rig () in
        let keep = Pfs.Log.create_file log () in
        let doomed = Pfs.Log.create_file log () in
        let kept_data = pattern 40_000 9 in
        write_ok e log keep ~off:0 kept_data;
        write_ok e log doomed ~off:0 (pattern 40_000 4);
        Pfs.Log.sync log ~k:(fun _ -> ());
        Sim.Engine.run e;
        Pfs.Log.delete log doomed ~k:(fun _ -> ());
        Sim.Engine.run e;
        (* Clean every sealed segment that has garbage. *)
        let cleaned = ref (-1) in
        Pfs.Cleaner.run log (fun stats ->
            cleaned := stats.Pfs.Cleaner.segments_cleaned);
        Sim.Engine.run e;
        Alcotest.(check bool) "cleaned some" true (!cleaned > 0);
        Alcotest.(check bytes) "live data intact" kept_data
          (read_back e log keep ~off:0 ~len:40_000);
        Alcotest.(check bool) "segments freed" true (Pfs.Log.free_segments log > 0));
    Alcotest.test_case "freed segments are reused" `Quick (fun () ->
        let e, _, log = rig () in
        let doomed = Pfs.Log.create_file log () in
        write_ok e log doomed ~off:0 (pattern 100_000 4);
        Pfs.Log.sync log ~k:(fun _ -> ());
        Sim.Engine.run e;
        Pfs.Log.delete log doomed ~k:(fun _ -> ());
        Sim.Engine.run e;
        Pfs.Cleaner.run log (fun _ -> ());
        Sim.Engine.run e;
        let segs_before = Pfs.Log.total_segments log in
        let f = Pfs.Log.create_file log () in
        write_ok e log f ~off:0 (pattern 100_000 6);
        (* Reuse means the table barely grows. *)
        Alcotest.(check bool) "reused free segments" true
          (Pfs.Log.total_segments log <= segs_before + 1));
  ]

let garbage_tests =
  [
    Alcotest.test_case "marker freezes the cleanable prefix" `Quick (fun () ->
        let g = Pfs.Garbage.create () in
        Pfs.Garbage.append g ~seg:1 ~off:0 ~len:10;
        Pfs.Garbage.append g ~seg:2 ~off:0 ~len:20;
        Pfs.Garbage.set_marker g;
        Pfs.Garbage.append g ~seg:3 ~off:0 ~len:30;
        let before = Pfs.Garbage.before_marker g in
        Alcotest.(check int) "two entries" 2 (List.length before);
        Pfs.Garbage.truncate_to_marker g;
        Alcotest.(check int) "one survives" 1 (Pfs.Garbage.count g);
        Alcotest.(check int) "its bytes" 30 (Pfs.Garbage.total_bytes g));
    Alcotest.test_case "file size reflects entry count" `Quick (fun () ->
        let g = Pfs.Garbage.create () in
        for i = 1 to 100 do
          Pfs.Garbage.append g ~seg:i ~off:0 ~len:1
        done;
        Alcotest.(check int) "16 bytes per entry" 1600 (Pfs.Garbage.file_bytes g));
  ]

(* Build a steady-state log: populate [files] files of [file_bytes],
   clean away the population garbage, then delete a fixed number of
   files — so the remaining garbage reflects churn, not file-system
   size. *)
let aged_log e ~segment_bytes ~files ~file_bytes ~delete_count =
  let raid = Pfs.Raid.create e ~segment_bytes () in
  let log = Pfs.Log.create e ~raid () in
  let fids = Array.init files (fun _ -> Pfs.Log.create_file log ()) in
  Array.iter
    (fun fid -> Pfs.Log.write log fid ~off:0 ~len:file_bytes (fun _ -> ()))
    fids;
  Pfs.Log.sync log ~k:(fun _ -> ());
  Sim.Engine.run e;
  (* Absorb the garbage created while populating. *)
  Pfs.Cleaner.run log (fun _ -> ());
  Sim.Engine.run e;
  Pfs.Log.sync log ~k:(fun _ -> ());
  Sim.Engine.run e;
  for i = 0 to delete_count - 1 do
    Pfs.Log.delete log fids.(i * (files / delete_count)) ~k:(fun _ -> ())
  done;
  Sim.Engine.run e;
  log

let cleaner_tests =
  [
    Alcotest.test_case "both cleaners reclaim the same garbage" `Quick
      (fun () ->
        let run which =
          let e = Sim.Engine.create () in
          let log =
            aged_log e ~segment_bytes:seg_64k ~files:40 ~file_bytes:32_000
              ~delete_count:10
          in
          let out = ref None in
          (match which with
          | `Pegasus -> Pfs.Cleaner.run log (fun s -> out := Some s)
          | `Sprite -> Pfs.Cleaner_sprite.run log (fun s -> out := Some s));
          Sim.Engine.run e;
          match !out with Some s -> s | None -> Alcotest.fail "no stats"
        in
        let p = run `Pegasus and s = run `Sprite in
        (* Ten files of 32 KB died; both cleaners must recover at least
           90 % of those bytes (they differ slightly on pnode slivers). *)
        let deleted = 10 * 32_000 in
        Alcotest.(check bool)
          (Printf.sprintf "pegasus reclaims %d" p.Pfs.Cleaner.bytes_reclaimed)
          true
          (p.Pfs.Cleaner.bytes_reclaimed >= deleted * 9 / 10);
        Alcotest.(check bool)
          (Printf.sprintf "sprite reclaims %d" s.Pfs.Cleaner.bytes_reclaimed)
          true
          (s.Pfs.Cleaner.bytes_reclaimed >= deleted * 9 / 10));
    Alcotest.test_case
      "pegasus scan cost tracks garbage, sprite scan cost tracks size" `Quick
      (fun () ->
        (* Same garbage, 8x file-system size. *)
        let run which ~files =
          let e = Sim.Engine.create () in
          let log =
            aged_log e ~segment_bytes:seg_64k ~files ~file_bytes:32_000
              ~delete_count:8
          in
          let out = ref None in
          (match which with
          | `Pegasus -> Pfs.Cleaner.run log (fun s -> out := Some s)
          | `Sprite -> Pfs.Cleaner_sprite.run log (fun s -> out := Some s));
          Sim.Engine.run e;
          match !out with Some s -> s | None -> Alcotest.fail "no stats"
        in
        let p_small = run `Pegasus ~files:32 in
        let p_big = run `Pegasus ~files:256 in
        let s_small = run `Sprite ~files:32 in
        let s_big = run `Sprite ~files:256 in
        (* Pegasus victim selection examined no table entries at all. *)
        Alcotest.(check int) "pegasus scans nothing (small)" 0
          p_small.Pfs.Cleaner.table_entries_scanned;
        Alcotest.(check int) "pegasus scans nothing (big)" 0
          p_big.Pfs.Cleaner.table_entries_scanned;
        Alcotest.(check bool) "sprite scan grows ~8x" true
          (s_big.Pfs.Cleaner.table_entries_scanned
          > 6 * s_small.Pfs.Cleaner.table_entries_scanned);
        (* Pegasus's scan cost is driven by entries, which stay similar. *)
        let ratio =
          Sim.Time.to_sec_f p_big.Pfs.Cleaner.scan_cost
          /. Float.max 1e-9 (Sim.Time.to_sec_f p_small.Pfs.Cleaner.scan_cost)
        in
        Alcotest.(check bool)
          (Printf.sprintf "pegasus scan ratio %.2f stays small" ratio)
          true (ratio < 3.0));
    Alcotest.test_case "writes during cleaning are untouched (marker)" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let log =
          aged_log e ~segment_bytes:seg_64k ~files:16 ~file_bytes:32_000
            ~delete_count:4
        in
        let garbage = Pfs.Log.garbage log in
        (* Start cleaning, then create new garbage mid-pass. *)
        let finished = ref false in
        Pfs.Cleaner.run log (fun _ -> finished := true);
        ignore
          (Sim.Engine.schedule e ~delay:(ms 1) (fun () ->
               let f = Pfs.Log.create_file log () in
               Pfs.Log.write log f ~off:0 ~len:10_000 (fun _ -> ());
               Pfs.Log.write log f ~off:0 ~len:10_000 (fun _ -> ())));
        Sim.Engine.run e;
        Alcotest.(check bool) "pass completed" true !finished;
        (* The overwrite's garbage survived the truncation. *)
        Alcotest.(check bool) "new garbage kept" true
          (Pfs.Garbage.count garbage > 0));
  ]

let cache_tests =
  [
    Alcotest.test_case "hits refresh recency" `Quick (fun () ->
        let c = Pfs.Cache.create ~capacity_blocks:2 () in
        Alcotest.(check bool) "miss a" true (Pfs.Cache.access c ~fid:1 ~block:0 = `Miss);
        Alcotest.(check bool) "miss b" true (Pfs.Cache.access c ~fid:1 ~block:1 = `Miss);
        Alcotest.(check bool) "hit a" true (Pfs.Cache.access c ~fid:1 ~block:0 = `Hit);
        (* c evicts b (LRU), not a. *)
        ignore (Pfs.Cache.access c ~fid:1 ~block:2);
        Alcotest.(check bool) "a kept" true (Pfs.Cache.probe c ~fid:1 ~block:0);
        Alcotest.(check bool) "b evicted" false (Pfs.Cache.probe c ~fid:1 ~block:1));
    Alcotest.test_case "sequential streams larger than the cache never hit"
      `Quick (fun () ->
        let c = Pfs.Cache.create ~capacity_blocks:100 () in
        (* Two passes over a 500-block video: pure LRU death. *)
        for _ = 1 to 2 do
          for b = 0 to 499 do
            ignore (Pfs.Cache.access c ~fid:9 ~block:b)
          done
        done;
        Alcotest.(check int) "zero hits" 0 (Pfs.Cache.hits c);
        Alcotest.(check int) "all misses" 1000 (Pfs.Cache.misses c));
    Alcotest.test_case "reuse within the working set hits" `Quick (fun () ->
        let c = Pfs.Cache.create ~capacity_blocks:100 () in
        for _ = 1 to 10 do
          for b = 0 to 49 do
            ignore (Pfs.Cache.access c ~fid:1 ~block:b)
          done
        done;
        Alcotest.(check int) "misses only once" 50 (Pfs.Cache.misses c);
        Alcotest.(check int) "the rest hit" 450 (Pfs.Cache.hits c));
    Alcotest.test_case "invalidate_file drops only that file" `Quick (fun () ->
        let c = Pfs.Cache.create ~capacity_blocks:10 () in
        ignore (Pfs.Cache.access c ~fid:1 ~block:0);
        ignore (Pfs.Cache.access c ~fid:2 ~block:0);
        Pfs.Cache.invalidate_file c ~fid:1;
        Alcotest.(check bool) "fid1 gone" false (Pfs.Cache.probe c ~fid:1 ~block:0);
        Alcotest.(check bool) "fid2 kept" true (Pfs.Cache.probe c ~fid:2 ~block:0);
        Alcotest.(check int) "size" 1 (Pfs.Cache.size c));
    Alcotest.test_case "per-fid index survives eviction and reinsertion" `Quick
      (fun () ->
        let c = Pfs.Cache.create ~capacity_blocks:4 () in
        (* Fill with fid 1, push half out with fid 2: evicted blocks
           must leave the per-fid index too, or a later invalidation
           would corrupt the LRU list. *)
        for b = 0 to 3 do ignore (Pfs.Cache.access c ~fid:1 ~block:b) done;
        for b = 0 to 1 do ignore (Pfs.Cache.access c ~fid:2 ~block:b) done;
        Alcotest.(check int) "full" 4 (Pfs.Cache.size c);
        Alcotest.(check int) "two evictions" 2 (Pfs.Cache.evictions c);
        Pfs.Cache.invalidate_file c ~fid:1;
        Alcotest.(check int) "only fid2 left" 2 (Pfs.Cache.size c);
        Alcotest.(check bool) "fid2 intact" true (Pfs.Cache.probe c ~fid:2 ~block:1);
        (* Invalidating an absent file is a no-op... *)
        Pfs.Cache.invalidate_file c ~fid:1;
        Alcotest.(check int) "idempotent" 2 (Pfs.Cache.size c);
        (* ...and the file can come back cleanly afterwards. *)
        Alcotest.(check bool) "reinsert misses" true
          (Pfs.Cache.access c ~fid:1 ~block:0 = `Miss);
        Alcotest.(check bool) "reinserted" true (Pfs.Cache.probe c ~fid:1 ~block:0);
        Pfs.Cache.invalidate_file c ~fid:2;
        Pfs.Cache.invalidate_file c ~fid:1;
        Alcotest.(check int) "empty again" 0 (Pfs.Cache.size c));
  ]

let agent_rig ?write_delay ?ups () =
  let e = Sim.Engine.create () in
  let raid = Pfs.Raid.create e ~segment_bytes:seg_64k () in
  let log = Pfs.Log.create e ~raid () in
  let server = Pfs.Client_agent.Server.create e ~log ?write_delay ?ups () in
  let agent = Pfs.Client_agent.Agent.create e ~server () in
  (e, server, agent)

let agent_tests =
  [
    Alcotest.test_case "writes are acknowledged and eventually durable" `Quick
      (fun () ->
        let e, server, agent = agent_rig ~write_delay:(Sim.Time.sec 5) () in
        let fid = Pfs.Client_agent.Server.create_file server in
        let acked = ref false in
        ignore
          (Pfs.Client_agent.Agent.write agent ~fid ~off:0 ~len:4096
             ~ack:(fun () -> acked := true)
             ());
        Sim.Engine.run e ~until:(ms 100);
        Alcotest.(check bool) "acked fast" true !acked;
        Alcotest.(check int) "not yet on disk" 0
          (Pfs.Client_agent.Server.disk_writes server);
        Sim.Engine.run e ~until:(Sim.Time.sec 10);
        Alcotest.(check int) "flushed" 1
          (Pfs.Client_agent.Server.disk_writes server);
        let a = Pfs.Client_agent.audit server in
        Alcotest.(check int) "durable" 1 a.Pfs.Client_agent.durable;
        Sim.Engine.run e;
        Alcotest.(check int) "copy released" 0
          (Pfs.Client_agent.Agent.copies_held agent));
    Alcotest.test_case "short-lived data never costs a disk write" `Quick
      (fun () ->
        let e, server, agent = agent_rig ~write_delay:(Sim.Time.sec 30) () in
        let fid = Pfs.Client_agent.Server.create_file server in
        ignore (Pfs.Client_agent.Agent.write agent ~fid ~off:0 ~len:4096 ());
        (* Deleted after 10 s — inside the write-behind window. *)
        ignore
          (Sim.Engine.schedule e ~delay:(Sim.Time.sec 10) (fun () ->
               Pfs.Client_agent.Agent.delete agent ~fid));
        Sim.Engine.run e ~until:(Sim.Time.sec 60);
        Alcotest.(check int) "no disk writes" 0
          (Pfs.Client_agent.Server.disk_writes server);
        Alcotest.(check int) "cancelled" 1
          (Pfs.Client_agent.Server.writes_cancelled server));
    Alcotest.test_case "overwrites inside the window save disk writes" `Quick
      (fun () ->
        let e, server, agent = agent_rig ~write_delay:(Sim.Time.sec 30) () in
        let fid = Pfs.Client_agent.Server.create_file server in
        for i = 0 to 4 do
          ignore
            (Sim.Engine.schedule e
               ~delay:(Sim.Time.sec (i * 2))
               (fun () ->
                 ignore
                   (Pfs.Client_agent.Agent.write agent ~fid ~off:0 ~len:4096 ())))
        done;
        Sim.Engine.run e ~until:(Sim.Time.sec 120);
        Alcotest.(check int) "only the last reaches disk" 1
          (Pfs.Client_agent.Server.disk_writes server);
        Alcotest.(check int) "four cancelled" 4
          (Pfs.Client_agent.Server.writes_cancelled server));
    Alcotest.test_case "server crash: the agent's copy replays, nothing lost"
      `Quick (fun () ->
        let e, server, agent = agent_rig ~write_delay:(Sim.Time.sec 30) () in
        let fid = Pfs.Client_agent.Server.create_file server in
        ignore (Pfs.Client_agent.Agent.write agent ~fid ~off:0 ~len:4096 ());
        Sim.Engine.run e ~until:(Sim.Time.sec 5);
        Pfs.Client_agent.Server.crash server;
        let mid = Pfs.Client_agent.audit server in
        Alcotest.(check int) "recoverable, not lost" 0 mid.Pfs.Client_agent.lost;
        Alcotest.(check int) "one recoverable" 1
          mid.Pfs.Client_agent.recoverable;
        Pfs.Client_agent.Server.recover server;
        Pfs.Client_agent.Agent.replay agent;
        Sim.Engine.run e ~until:(Sim.Time.sec 60);
        let fin = Pfs.Client_agent.audit server in
        Alcotest.(check int) "durable after replay" 1 fin.Pfs.Client_agent.durable;
        Alcotest.(check int) "lost" 0 fin.Pfs.Client_agent.lost);
    Alcotest.test_case
      "writes issued while the server is down retry until it returns" `Quick
      (fun () ->
        let e, server, agent = agent_rig ~write_delay:(Sim.Time.sec 1) () in
        let fid = Pfs.Client_agent.Server.create_file server in
        Pfs.Client_agent.Server.crash server;
        let acked = ref false in
        ignore
          (Pfs.Client_agent.Agent.write agent ~fid ~off:0 ~len:4096
             ~ack:(fun () -> acked := true)
             ());
        Sim.Engine.run e ~until:(Sim.Time.sec 2);
        Alcotest.(check bool) "unacked while down" false !acked;
        Alcotest.(check bool) "agent kept retrying" true
          (Pfs.Client_agent.Agent.retries agent > 0);
        Pfs.Client_agent.Server.recover server;
        Sim.Engine.run e ~until:(Sim.Time.sec 60);
        Alcotest.(check bool) "acked after recovery" true !acked;
        let a = Pfs.Client_agent.audit server in
        Alcotest.(check int) "durable" 1 a.Pfs.Client_agent.durable;
        Alcotest.(check int) "lost" 0 a.Pfs.Client_agent.lost);
    Alcotest.test_case "client crash: the server completes the write" `Quick
      (fun () ->
        let e, server, agent = agent_rig ~write_delay:(Sim.Time.sec 10) () in
        let fid = Pfs.Client_agent.Server.create_file server in
        ignore (Pfs.Client_agent.Agent.write agent ~fid ~off:0 ~len:4096 ());
        Sim.Engine.run e ~until:(Sim.Time.sec 2);
        Pfs.Client_agent.Agent.crash agent;
        Sim.Engine.run e ~until:(Sim.Time.sec 30);
        let a = Pfs.Client_agent.audit server in
        Alcotest.(check int) "durable" 1 a.Pfs.Client_agent.durable;
        Alcotest.(check int) "lost" 0 a.Pfs.Client_agent.lost);
    Alcotest.test_case "power failure without UPS loses buffered data" `Quick
      (fun () ->
        let e, server, agent = agent_rig ~write_delay:(Sim.Time.sec 30) () in
        let fid = Pfs.Client_agent.Server.create_file server in
        ignore (Pfs.Client_agent.Agent.write agent ~fid ~off:0 ~len:4096 ());
        Sim.Engine.run e ~until:(Sim.Time.sec 5);
        (* Both machines die at once. *)
        Pfs.Client_agent.Server.crash server;
        Pfs.Client_agent.Agent.crash agent;
        let a = Pfs.Client_agent.audit server in
        Alcotest.(check int) "lost" 1 a.Pfs.Client_agent.lost);
    Alcotest.test_case "power failure with UPS flushes and loses nothing"
      `Quick (fun () ->
        let e, server, agent =
          agent_rig ~write_delay:(Sim.Time.sec 30) ~ups:true ()
        in
        let fid = Pfs.Client_agent.Server.create_file server in
        ignore (Pfs.Client_agent.Agent.write agent ~fid ~off:0 ~len:4096 ());
        Sim.Engine.run e ~until:(Sim.Time.sec 5);
        Pfs.Client_agent.Server.crash server;
        Pfs.Client_agent.Agent.crash agent;
        Sim.Engine.run e ~until:(Sim.Time.sec 60);
        let a = Pfs.Client_agent.audit server in
        Alcotest.(check int) "lost" 0 a.Pfs.Client_agent.lost;
        Alcotest.(check int) "durable" 1 a.Pfs.Client_agent.durable);
  ]

let stream_rig () =
  let e = Sim.Engine.create () in
  let raid = Pfs.Raid.create e ~segment_bytes:(1 lsl 20) () in
  let log = Pfs.Log.create e ~raid () in
  let streams = Pfs.Stream.create e ~log () in
  (e, log, streams)

let stream_tests =
  [
    Alcotest.test_case "admission control enforces the bandwidth budget" `Quick
      (fun () ->
        let _, _, streams = stream_rig () in
        let budget = Pfs.Stream.budget_bps streams in
        (match Pfs.Stream.start_recording streams ~rate_bps:(budget / 2) with
        | Ok _ -> ()
        | Error `Admission_denied -> Alcotest.fail "should admit half");
        (match Pfs.Stream.start_recording streams ~rate_bps:(budget / 2) with
        | Ok _ -> ()
        | Error `Admission_denied -> Alcotest.fail "should admit second half");
        match Pfs.Stream.start_recording streams ~rate_bps:1_000_000 with
        | Error `Admission_denied -> ()
        | Ok _ -> Alcotest.fail "over budget must be denied");
    Alcotest.test_case "finishing a recording releases its bandwidth" `Quick
      (fun () ->
        let _, _, streams = stream_rig () in
        match Pfs.Stream.start_recording streams ~rate_bps:8_000_000 with
        | Error `Admission_denied -> Alcotest.fail "denied"
        | Ok r ->
            Alcotest.(check int) "admitted" 8_000_000
              (Pfs.Stream.admitted_bps streams);
            Pfs.Stream.finish_recording streams r;
            Alcotest.(check int) "released" 0 (Pfs.Stream.admitted_bps streams));
    Alcotest.test_case "record, index, play back with no underruns" `Quick
      (fun () ->
        let e, _, streams = stream_rig () in
        let r =
          match Pfs.Stream.start_recording streams ~rate_bps:8_000_000 with
          | Ok r -> r
          | Error _ -> Alcotest.fail "denied"
        in
        (* Record 2 MB in 64K chunks with an index mark per chunk. *)
        for i = 0 to 31 do
          Pfs.Stream.index_mark r ~stamp:(ms (i * 40));
          Pfs.Stream.write_chunk r ~len:65536 (fun _ -> ())
        done;
        let fid = Pfs.Stream.recording_fid r in
        Pfs.Stream.finish_recording streams r;
        Sim.Engine.run e;
        Alcotest.(check int) "index built" 32
          (Pfs.Stream.index_size streams ~fid);
        let ended = ref false in
        let played = ref None in
        (match
           Pfs.Stream.start_playback streams ~fid ~rate_bps:8_000_000
             ~on_end:(fun () -> ended := true)
             ()
         with
        | Ok p -> played := Some p
        | Error _ -> Alcotest.fail "playback denied");
        Sim.Engine.run e;
        (match !played with
        | Some p ->
            Alcotest.(check int) "no underruns" 0 (Pfs.Stream.underruns p);
            Alcotest.(check int) "all chunks" 32 (Pfs.Stream.chunks_played p)
        | None -> ());
        Alcotest.(check bool) "ended" true !ended);
    Alcotest.test_case "seek_stamp jumps via the index" `Quick (fun () ->
        let e, _, streams = stream_rig () in
        let r =
          match Pfs.Stream.start_recording streams ~rate_bps:8_000_000 with
          | Ok r -> r
          | Error _ -> Alcotest.fail "denied"
        in
        for i = 0 to 15 do
          Pfs.Stream.index_mark r ~stamp:(ms (i * 40));
          Pfs.Stream.write_chunk r ~len:65536 (fun _ -> ())
        done;
        let fid = Pfs.Stream.recording_fid r in
        Pfs.Stream.finish_recording streams r;
        Sim.Engine.run e;
        let p =
          match Pfs.Stream.start_playback streams ~fid ~rate_bps:8_000_000 () with
          | Ok p -> p
          | Error _ -> Alcotest.fail "denied"
        in
        (* "Go to 200 ms": marks at 0,40,...; 200ms is mark 5 = chunk 5. *)
        Pfs.Stream.seek_stamp p (ms 200);
        Alcotest.(check int) "position" (5 * 65536) (Pfs.Stream.position p);
        Pfs.Stream.stop_playback streams p;
        Sim.Engine.run e);
    Alcotest.test_case "reverse play walks backwards to the start" `Quick
      (fun () ->
        let e, _, streams = stream_rig () in
        let r =
          match Pfs.Stream.start_recording streams ~rate_bps:8_000_000 with
          | Ok r -> r
          | Error _ -> Alcotest.fail "denied"
        in
        for _ = 0 to 7 do
          Pfs.Stream.write_chunk r ~len:65536 (fun _ -> ())
        done;
        let fid = Pfs.Stream.recording_fid r in
        Pfs.Stream.finish_recording streams r;
        Sim.Engine.run e;
        let offsets = ref [] in
        let ended = ref false in
        (match
           Pfs.Stream.start_playback streams ~fid ~rate_bps:8_000_000
             ~direction:`Reverse
             ~on_chunk:(fun ~off -> offsets := off :: !offsets)
             ~on_end:(fun () -> ended := true)
             ()
         with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "denied");
        Sim.Engine.run e;
        Alcotest.(check bool) "ended" true !ended;
        (match !offsets with
        | last :: _ -> Alcotest.(check int) "finishes at 0" 0 last
        | [] -> Alcotest.fail "nothing played");
        Alcotest.(check int) "all chunks" 8 (List.length !offsets));
  ]

let extension_tests =
  [
    Alcotest.test_case "battery-backed memory survives a power cut" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let raid = Pfs.Raid.create e ~segment_bytes:seg_64k () in
        let log = Pfs.Log.create e ~raid () in
        let server =
          Pfs.Client_agent.Server.create e ~log
            ~write_delay:(Sim.Time.sec 30) ~nvram:true ()
        in
        let agent = Pfs.Client_agent.Agent.create e ~server () in
        let fid = Pfs.Client_agent.Server.create_file server in
        ignore (Pfs.Client_agent.Agent.write agent ~fid ~off:0 ~len:4096 ());
        Sim.Engine.run e ~until:(Sim.Time.sec 5);
        (* power cut: both sides die *)
        Pfs.Client_agent.Server.crash server;
        Pfs.Client_agent.Agent.crash agent;
        let mid = Pfs.Client_agent.audit server in
        Alcotest.(check int) "recoverable in NVRAM" 0 mid.Pfs.Client_agent.lost;
        Pfs.Client_agent.Server.recover server;
        Sim.Engine.run e ~until:(Sim.Time.sec 60);
        let fin = Pfs.Client_agent.audit server in
        Alcotest.(check int) "durable after recovery" 1
          fin.Pfs.Client_agent.durable;
        Alcotest.(check int) "lost" 0 fin.Pfs.Client_agent.lost);
    Alcotest.test_case "Log.peek returns stored bytes without time passing"
      `Quick (fun () ->
        let e, _, log = rig () in
        let fid = Pfs.Log.create_file log () in
        let data = pattern 100_000 3 in
        write_ok e log fid ~off:0 data;
        Pfs.Log.sync log ~k:(fun _ -> ());
        Sim.Engine.run e;
        let t0 = Sim.Engine.now e in
        (match Pfs.Log.peek log fid ~off:0 ~len:100_000 with
        | Some b -> Alcotest.(check bytes) "bytes" data b
        | None -> Alcotest.fail "peek failed");
        Alcotest.(check int64) "no time consumed" t0 (Sim.Engine.now e));
    Alcotest.test_case "peek on a timing-only array returns None" `Quick
      (fun () ->
        let e, _, log = rig ~store_data:false () in
        let fid = Pfs.Log.create_file log () in
        Pfs.Log.write log fid ~off:0 ~len:100 (fun _ -> ());
        Sim.Engine.run e;
        Alcotest.(check bool) "none" true
          (Pfs.Log.peek log fid ~off:0 ~len:100 = None));
  ]

(* Model-based property test: arbitrary write/overwrite/delete/sync/
   clean sequences must leave every surviving file byte-identical to a
   plain in-memory reference. *)

type model_op =
  | M_write of int * int * int  (* file slot, offset, length *)
  | M_delete of int
  | M_sync
  | M_clean

let model_op_gen =
  QCheck2.Gen.(
    frequency
      [
        (6, map3 (fun f off len -> M_write (f, off, len))
              (int_range 0 3) (int_range 0 20_000) (int_range 1 9_000));
        (1, map (fun f -> M_delete f) (int_range 0 3));
        (1, return M_sync);
        (1, return M_clean);
      ])

let run_model_ops ops =
  let e = Sim.Engine.create () in
  let raid = Pfs.Raid.create e ~store_data:true ~segment_bytes:16_384 () in
  let log = Pfs.Log.create e ~raid () in
  let fids = Array.make 4 None in
  let model : bytes option array = Array.make 4 None in
  let tag = ref 0 in
  let apply = function
    | M_write (slot, off, len) ->
        incr tag;
        let fid =
          match fids.(slot) with
          | Some fid -> fid
          | None ->
              let fid = Pfs.Log.create_file log () in
              fids.(slot) <- Some fid;
              model.(slot) <- Some Bytes.empty;
              fid
        in
        let data = pattern len !tag in
        Pfs.Log.write log fid ~off ~data ~len (fun r ->
            match r with
            | Ok () -> ()
            | Error _ -> Alcotest.fail "model write failed");
        let old = match model.(slot) with Some b -> b | None -> Bytes.empty in
        let size = Stdlib.max (Bytes.length old) (off + len) in
        let next = Bytes.make size '\000' in
        Bytes.blit old 0 next 0 (Bytes.length old);
        Bytes.blit data 0 next off len;
        model.(slot) <- Some next
    | M_delete slot -> begin
        match fids.(slot) with
        | None -> ()
        | Some fid ->
            Pfs.Log.delete log fid ~k:(fun _ -> ());
            fids.(slot) <- None;
            model.(slot) <- None
      end
    | M_sync -> Pfs.Log.sync log ~k:(fun _ -> ())
    | M_clean ->
        Pfs.Log.sync log ~k:(fun _ -> ());
        Sim.Engine.run e;
        Pfs.Cleaner.run log (fun _ -> ())
  in
  List.iter
    (fun op ->
      apply op;
      Sim.Engine.run e)
    ops;
  (* Verify every surviving file against the reference. *)
  let ok = ref true in
  Array.iteri
    (fun slot fid ->
      match (fid, model.(slot)) with
      | Some fid, Some expected when Bytes.length expected > 0 ->
          let got = ref None in
          Pfs.Log.read log fid ~off:0 ~len:(Bytes.length expected)
            ~k:(fun r -> got := Some r);
          Sim.Engine.run e;
          (match !got with
          | Some (Ok (Some b)) -> if not (Bytes.equal b expected) then ok := false
          | _ -> ok := false)
      | _ -> ())
    fids;
  !ok

let model_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"log matches a reference model under churn"
         ~count:40
         QCheck2.Gen.(list_size (int_range 5 40) model_op_gen)
         run_model_ops);
  ]

let recovery_tests =
  [
    Alcotest.test_case "sealed data survives a crash, buffered data is lost"
      `Quick (fun () ->
        let e, _, log = rig () in
        let safe = Pfs.Log.create_file log () in
        let durable = pattern 20_000 1 in
        write_ok e log safe ~off:0 durable;
        Pfs.Log.sync log ~k:(fun _ -> ());
        Sim.Engine.run e;
        (* Written after the last seal: only in the open buffer. *)
        let fresh = Pfs.Log.create_file log () in
        Pfs.Log.write log fresh ~off:0 ~len:5_000 (fun _ -> ());
        Sim.Engine.run e;
        let lost = ref (-1) in
        Pfs.Log.crash_and_recover log ~k:(fun ~lost_bytes -> lost := lost_bytes);
        Sim.Engine.run e;
        Alcotest.(check bool) "buffered bytes lost" true (!lost >= 5_000);
        Alcotest.(check bool) "sealed file intact" true
          (Pfs.Log.file_exists log safe);
        Alcotest.(check bytes) "content intact" durable
          (read_back e log safe ~off:0 ~len:20_000);
        Alcotest.(check bool) "fresh file rolled back" false
          (Pfs.Log.file_exists log fresh));
    Alcotest.test_case "a delete after the last seal is rolled back" `Quick
      (fun () ->
        let e, _, log = rig () in
        let fid = Pfs.Log.create_file log () in
        write_ok e log fid ~off:0 (pattern 10_000 2);
        Pfs.Log.checkpoint log ~k:(fun _ -> ());
        Sim.Engine.run e;
        Pfs.Log.delete log fid ~k:(fun _ -> ());
        Sim.Engine.run e;
        Alcotest.(check bool) "deleted" false (Pfs.Log.file_exists log fid);
        Pfs.Log.crash_and_recover log ~k:(fun ~lost_bytes:_ -> ());
        Sim.Engine.run e;
        (* The LFS quirk the interface documents: the delete vanished. *)
        Alcotest.(check bool) "file resurrected" true
          (Pfs.Log.file_exists log fid);
        Alcotest.(check bytes) "content back" (pattern 10_000 2)
          (read_back e log fid ~off:0 ~len:10_000));
    Alcotest.test_case "the log keeps working after recovery" `Quick (fun () ->
        let e, _, log = rig () in
        let a = Pfs.Log.create_file log () in
        write_ok e log a ~off:0 (pattern 30_000 3);
        Pfs.Log.checkpoint log ~k:(fun _ -> ());
        Sim.Engine.run e;
        Pfs.Log.crash_and_recover log ~k:(fun ~lost_bytes:_ -> ());
        Sim.Engine.run e;
        let b = Pfs.Log.create_file log () in
        write_ok e log b ~off:0 (pattern 30_000 4);
        Alcotest.(check bytes) "old" (pattern 30_000 3)
          (read_back e log a ~off:0 ~len:30_000);
        Alcotest.(check bytes) "new" (pattern 30_000 4)
          (read_back e log b ~off:0 ~len:30_000);
        (* and the cleaner still works on the recovered state *)
        Pfs.Log.delete log a ~k:(fun _ -> ());
        Pfs.Log.sync log ~k:(fun _ -> ());
        Sim.Engine.run e;
        Pfs.Cleaner.run log (fun stats ->
            Alcotest.(check bool) "reclaimed" true
              (stats.Pfs.Cleaner.bytes_reclaimed > 0));
        Sim.Engine.run e;
        Alcotest.(check bytes) "survivor intact" (pattern 30_000 4)
          (read_back e log b ~off:0 ~len:30_000));
    Alcotest.test_case "a double crash does not resurrect post-recovery state"
      `Quick (fun () ->
        let e, _, log = rig () in
        let a = Pfs.Log.create_file log () in
        write_ok e log a ~off:0 (pattern 1_000 1);
        Pfs.Log.checkpoint log ~k:(fun _ -> ());
        Sim.Engine.run e;
        Pfs.Log.crash_and_recover log ~k:(fun ~lost_bytes:_ -> ());
        Sim.Engine.run e;
        (* mutate after recovery, seal, crash again *)
        write_ok e log a ~off:0 (pattern 1_000 9);
        Pfs.Log.sync log ~k:(fun _ -> ());
        Sim.Engine.run e;
        Pfs.Log.crash_and_recover log ~k:(fun ~lost_bytes:_ -> ());
        Sim.Engine.run e;
        Alcotest.(check bytes) "latest sealed state" (pattern 1_000 9)
          (read_back e log a ~off:0 ~len:1_000));
  ]

let () =
  Alcotest.run "pfs"
    [
      ("disk", disk_tests);
      ("raid", raid_tests);
      ("log", log_tests);
      ("garbage", garbage_tests);
      ("cleaner", cleaner_tests);
      ("cache", cache_tests);
      ("client-agent", agent_tests);
      ("stream", stream_tests);
      ("extensions", extension_tests);
      ("model", model_tests);
      ("recovery", recovery_tests);
    ]
