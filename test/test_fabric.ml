(* Tests for the fabric-scale Net features: signalling rollback, VCI
   reuse, host-transparent routing, the Clos generator and the network
   QoS manager. *)

let reserved_on net a b =
  match Atm.Net.links_between net a b with
  | [ l ] -> Atm.Link.reserved_bps l
  | ls -> Alcotest.failf "expected one link, got %d" (List.length ls)

(* a - s1 - s2 - b, plus a probe host c on s2 whose circuits exhaust
   b's VCI pool so an a->b open fails on its *last* hop, after a switch
   route is already installed. *)
let rollback_tests =
  [
    Alcotest.test_case "failed open leaves no reservation, route or VCI"
      `Quick (fun () ->
        let e = Sim.Engine.create () in
        (* vci_limit 33 leaves two VCIs (32, 33) per (node, port). *)
        let net = Atm.Net.create ~vci_limit:33 e in
        let s1 = Atm.Net.add_switch net ~name:"s1" ~ports:4 in
        let s2 = Atm.Net.add_switch net ~name:"s2" ~ports:4 in
        let a = Atm.Net.add_host net ~name:"a" in
        let b = Atm.Net.add_host net ~name:"b" in
        let c = Atm.Net.add_host net ~name:"c" in
        Atm.Net.connect net a s1;
        Atm.Net.connect net s1 s2;
        Atm.Net.connect net s2 b;
        Atm.Net.connect net c s2;
        (* Two probe circuits c->b consume both of b's VCIs. *)
        let p1 = Atm.Net.open_vc net ~src:c ~dst:b ~rx:(fun _ -> ()) in
        let p2 = Atm.Net.open_vc net ~src:c ~dst:b ~rx:(fun _ -> ()) in
        ignore p1;
        (* a->b now reserves all three links and installs a route at s1
           before discovering b's pool is empty at the final hop. *)
        (match
           Atm.Net.open_vc net ~reserve_bps:10_000_000 ~src:a ~dst:b
             ~rx:(fun _ -> ())
         with
        | _ -> Alcotest.fail "open should have failed"
        | exception Failure _ -> ());
        Alcotest.(check int) "a->s1 released" 0 (reserved_on net a s1);
        Alcotest.(check int) "s1->s2 released" 0 (reserved_on net s1 s2);
        Alcotest.(check int) "s2->b released" 0 (reserved_on net s2 b);
        (* Free one VCI at b and retry.  The free lists are LIFO, so the
           retry claims exactly the VCIs the failed attempt briefly held;
           it can only succeed if the rollback removed the s1 route
           (Switch.add_route raises on a clash). *)
        Atm.Net.close_vc net p2;
        let got = ref None in
        let vc =
          Atm.Net.open_vc net ~reserve_bps:10_000_000 ~src:a ~dst:b
            ~rx:
              (Atm.Net.frame_rx ~rx:(fun p -> got := Some (Bytes.to_string p)) ())
        in
        Alcotest.(check int) "hops" 3 (Atm.Net.vc_hops vc);
        Alcotest.(check int) "reservation held" 10_000_000
          (reserved_on net a s1);
        Atm.Net.send_frame vc (Bytes.of_string "after rollback");
        Sim.Engine.run e;
        Alcotest.(check (option string)) "delivered" (Some "after rollback")
          !got);
    Alcotest.test_case "admission refusal rolls back partial reservations"
      `Quick (fun () ->
        let e = Sim.Engine.create () in
        let net = Atm.Net.create e in
        let s1 = Atm.Net.add_switch net ~name:"s1" ~ports:4 in
        let s2 = Atm.Net.add_switch net ~name:"s2" ~ports:4 in
        let a = Atm.Net.add_host net ~name:"a" in
        let b = Atm.Net.add_host net ~name:"b" in
        Atm.Net.connect net a s1;
        (* The middle link is the thin one: admission gets past a->s1,
           then must give that reservation back. *)
        Atm.Net.connect net ~bandwidth_bps:10_000_000 s1 s2;
        Atm.Net.connect net s2 b;
        (match
           Atm.Net.open_vc net ~reserve_bps:50_000_000 ~src:a ~dst:b
             ~rx:(fun _ -> ())
         with
        | _ -> Alcotest.fail "open should have failed"
        | exception Failure _ -> ());
        Alcotest.(check int) "a->s1 released" 0 (reserved_on net a s1);
        Alcotest.(check int) "s1->s2 released" 0 (reserved_on net s1 s2));
  ]

(* Hosts must never relay: a multi-homed host offering a shortcut is
   skipped by the path search even at the cost of a longer route. *)
let transparency_tests =
  [
    Alcotest.test_case "paths route around a multi-homed host" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let net = Atm.Net.create e in
        let s1 = Atm.Net.add_switch net ~name:"s1" ~ports:4 in
        let s2 = Atm.Net.add_switch net ~name:"s2" ~ports:4 in
        let s3 = Atm.Net.add_switch net ~name:"s3" ~ports:4 in
        let s4 = Atm.Net.add_switch net ~name:"s4" ~ports:4 in
        let a = Atm.Net.add_host net ~name:"a" in
        let b = Atm.Net.add_host net ~name:"b" in
        let m = Atm.Net.add_host net ~name:"m" in
        Atm.Net.connect net a s1;
        (* The shortcut attaches first, so a naive BFS would take it:
           a-s1-m-s4-b is 4 hops against 5 through the switches. *)
        Atm.Net.connect net s1 m;
        Atm.Net.connect net m s4;
        Atm.Net.connect net b s4;
        Atm.Net.connect net s1 s2;
        Atm.Net.connect net s2 s3;
        Atm.Net.connect net s3 s4;
        let got = ref None in
        let vc =
          Atm.Net.open_vc net ~src:a ~dst:b
            ~rx:
              (Atm.Net.frame_rx ~rx:(fun p -> got := Some (Bytes.to_string p)) ())
        in
        Alcotest.(check int) "switch path, not the host shortcut" 5
          (Atm.Net.vc_hops vc);
        Atm.Net.send_frame vc (Bytes.of_string "via switches");
        Sim.Engine.run e;
        Alcotest.(check (option string)) "delivered" (Some "via switches")
          !got;
        (* The multi-homed host is still a valid endpoint. *)
        let vm = Atm.Net.open_vc net ~src:m ~dst:b ~rx:(fun _ -> ()) in
        Alcotest.(check int) "m->b direct" 2 (Atm.Net.vc_hops vm));
  ]

let churn_tests =
  [
    Alcotest.test_case "VCIs are reused and rx tables stay pinned" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let net = Atm.Net.create e in
        let s = Atm.Net.add_switch net ~name:"s" ~ports:4 in
        let a = Atm.Net.add_host net ~name:"a" in
        let b = Atm.Net.add_host net ~name:"b" in
        Atm.Net.connect net a s;
        Atm.Net.connect net b s;
        let vc0 = Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun _ -> ()) in
        let vci0 = Atm.Net.vc_dst_vci vc0 in
        Alcotest.(check bool) "live" true (Atm.Net.vc_live vc0);
        Atm.Net.close_vc net vc0;
        Alcotest.(check bool) "closed" false (Atm.Net.vc_live vc0);
        let cap0 = Atm.Net.host_rx_capacity net b in
        for _ = 1 to 200 do
          let vc = Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun _ -> ()) in
          Alcotest.(check int) "same vci every cycle" vci0
            (Atm.Net.vc_dst_vci vc);
          Atm.Net.close_vc net vc
        done;
        Alcotest.(check int) "rx table did not grow" cap0
          (Atm.Net.host_rx_capacity net b));
  ]

let clos_tests =
  [
    Alcotest.test_case "generator shape and path lengths" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let net = Atm.Net.create e in
        let cl = Atm.Net.clos net ~spines:2 ~leaves:3 ~hosts_per_leaf:2 () in
        Alcotest.(check int) "spines" 2 (Array.length cl.Atm.Net.cl_spines);
        Alcotest.(check int) "leaves" 3 (Array.length cl.Atm.Net.cl_leaves);
        Alcotest.(check int) "hosts" 6 (Array.length cl.Atm.Net.cl_hosts);
        Alcotest.(check string) "leaf-major host naming" "h2.1"
          (Atm.Net.node_name net cl.Atm.Net.cl_hosts.(5));
        (* Every leaf reaches every spine. *)
        Array.iter
          (fun leaf ->
            Array.iter
              (fun spine ->
                Alcotest.(check int) "trunk" 1
                  (List.length (Atm.Net.links_between net leaf spine)))
              cl.Atm.Net.cl_spines)
          cl.Atm.Net.cl_leaves;
        (match Atm.Net.links_between net cl.Atm.Net.cl_leaves.(0)
                 cl.Atm.Net.cl_spines.(0)
         with
        | [ l ] ->
            Alcotest.(check int) "trunk rate" 1_000_000_000
              (Atm.Link.bandwidth_bps l)
        | _ -> Alcotest.fail "missing trunk");
        let same_leaf =
          Atm.Net.open_vc net ~src:cl.Atm.Net.cl_hosts.(0)
            ~dst:cl.Atm.Net.cl_hosts.(1) ~rx:(fun _ -> ())
        in
        Alcotest.(check int) "same leaf: 2 hops" 2 (Atm.Net.vc_hops same_leaf);
        let cross_leaf =
          Atm.Net.open_vc net ~src:cl.Atm.Net.cl_hosts.(0)
            ~dst:cl.Atm.Net.cl_hosts.(4) ~rx:(fun _ -> ())
        in
        Alcotest.(check int) "cross leaf: 4 hops" 4
          (Atm.Net.vc_hops cross_leaf);
        (* path_sel spreads cross-leaf circuits over distinct spines. *)
        let spine_links sel =
          let vc =
            Atm.Net.open_vc net ~path_sel:sel ~src:cl.Atm.Net.cl_hosts.(2)
              ~dst:cl.Atm.Net.cl_hosts.(5) ~rx:(fun _ -> ())
          in
          Atm.Net.vc_path_links vc
        in
        Alcotest.(check bool) "distinct equal-cost crossings" false
          (List.for_all2 ( == ) (spine_links 0) (spine_links 1)));
  ]

(* Conservation: at any instant, every link's reserved bandwidth equals
   the sum of the reservations of the live VCs that cross it — and zero
   once every VC is closed.  Exercised over random open/close sequences
   with random rates and path selectors on a small Clos. *)
let conservation_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"admission conservation over open/close churn"
       ~count:60
       QCheck2.Gen.(
         list_size (int_range 1 60)
           (pair (pair nat nat) (pair nat nat)))
       (fun ops ->
         let e = Sim.Engine.create () in
         let net = Atm.Net.create e in
         let cl = Atm.Net.clos net ~spines:2 ~leaves:2 ~hosts_per_leaf:2 () in
         let nh = Array.length cl.Atm.Net.cl_hosts in
         let live = ref [] in
         let consistent () =
           List.for_all
             (fun l ->
               let expected =
                 List.fold_left
                   (fun acc (vc, bps) ->
                     if List.memq l (Atm.Net.vc_path_links vc) then acc + bps
                     else acc)
                   0 !live
               in
               Atm.Link.reserved_bps l = expected)
             (Atm.Net.links net)
         in
         List.iter
           (fun ((op, x), (y, z)) ->
             if op mod 4 = 0 && !live <> [] then begin
               let n = List.length !live in
               let (vc, _) = List.nth !live (x mod n) in
               Atm.Net.close_vc net vc;
               live := List.filter (fun (vc', _) -> vc' != vc) !live
             end
             else
               let src = cl.Atm.Net.cl_hosts.(x mod nh) in
               let dst = cl.Atm.Net.cl_hosts.(y mod nh) in
               let bps = 1 + (z mod 30_000_000) in
               if src <> dst then
                 match
                   Atm.Net.open_vc net ~reserve_bps:bps ~path_sel:(op mod 2)
                     ~src ~dst ~rx:(fun _ -> ())
                 with
                 | vc -> live := (vc, bps) :: !live
                 | exception Failure _ -> ())
           ops;
         let mid = consistent () in
         List.iter (fun (vc, _) -> Atm.Net.close_vc net vc) !live;
         live := [];
         mid && consistent ()))

let qos_mgr_tests =
  [
    Alcotest.test_case "admit, degrade, reject across a saturating link"
      `Quick (fun () ->
        let e = Sim.Engine.create () in
        let net = Atm.Net.create e in
        let s = Atm.Net.add_switch net ~name:"s" ~ports:4 in
        let a = Atm.Net.add_host net ~name:"a" in
        let b = Atm.Net.add_host net ~name:"b" in
        Atm.Net.connect net a s;
        Atm.Net.connect net b s;
        let qm = Atm.Qos_mgr.create net () in
        let ask () =
          Atm.Qos_mgr.request qm ~cls:Atm.Qos_mgr.Video ~bps:60_000_000 ~src:a
            ~dst:b
            ~rx:(fun _ -> ())
            ()
        in
        (* 90 Mbit/s reservable on the 100 Mbit/s host link: 60 fits,
           then only the half-rate tier, then nothing. *)
        let c1 =
          match ask () with
          | Atm.Qos_mgr.Accepted c -> c
          | _ -> Alcotest.fail "first request should be accepted"
        in
        let c2 =
          match ask () with
          | Atm.Qos_mgr.Degraded c -> c
          | _ -> Alcotest.fail "second request should be degraded"
        in
        (match ask () with
        | Atm.Qos_mgr.Rejected -> ()
        | _ -> Alcotest.fail "third request should be rejected");
        Alcotest.(check int) "granted full" 60_000_000
          (Atm.Qos_mgr.granted_bps c1);
        Alcotest.(check int) "granted half" 30_000_000
          (Atm.Qos_mgr.granted_bps c2);
        Alcotest.(check bool) "degraded flag" true (Atm.Qos_mgr.is_degraded c2);
        Alcotest.(check int) "offered" 3 (Atm.Qos_mgr.offered qm);
        Alcotest.(check int) "accepted" 1 (Atm.Qos_mgr.accepted qm);
        Alcotest.(check int) "degraded" 1 (Atm.Qos_mgr.degraded qm);
        Alcotest.(check int) "rejected" 1 (Atm.Qos_mgr.rejected qm);
        (* Departure frees capacity; review renegotiates upward. *)
        Atm.Qos_mgr.teardown qm c1;
        Atm.Qos_mgr.teardown qm c1;
        Alcotest.(check int) "teardown is idempotent" 1
          (Atm.Qos_mgr.released qm);
        Atm.Qos_mgr.review qm;
        Alcotest.(check int) "promoted to full rate" 60_000_000
          (Atm.Qos_mgr.granted_bps c2);
        Alcotest.(check bool) "no longer degraded" false
          (Atm.Qos_mgr.is_degraded c2);
        Alcotest.(check int) "one upgrade" 1 (Atm.Qos_mgr.upgrades c2);
        Alcotest.(check int) "renegotiated" 1 (Atm.Qos_mgr.renegotiated qm);
        Alcotest.(check int) "link tracks the upgrade" 60_000_000
          (reserved_on net a s);
        Atm.Qos_mgr.teardown qm c2;
        Alcotest.(check int) "all released" 0 (reserved_on net a s));
    Alcotest.test_case "reservation renegotiation on a raw VC" `Quick
      (fun () ->
        let e = Sim.Engine.create () in
        let net = Atm.Net.create e in
        let s = Atm.Net.add_switch net ~name:"s" ~ports:4 in
        let a = Atm.Net.add_host net ~name:"a" in
        let b = Atm.Net.add_host net ~name:"b" in
        Atm.Net.connect net a s;
        Atm.Net.connect net b s;
        let vc =
          Atm.Net.open_vc net ~reserve_bps:10_000_000 ~src:a ~dst:b
            ~rx:(fun _ -> ())
        in
        Alcotest.(check bool) "shrink succeeds" true
          (Atm.Net.vc_adjust_reservation vc ~bps:5_000_000);
        Alcotest.(check int) "released the difference" 5_000_000
          (reserved_on net a s);
        Alcotest.(check bool) "over-capacity grow refused" false
          (Atm.Net.vc_adjust_reservation vc ~bps:1_000_000_000);
        Alcotest.(check int) "refusal changed nothing" 5_000_000
          (reserved_on net a s);
        Alcotest.(check bool) "grow succeeds" true
          (Atm.Net.vc_adjust_reservation vc ~bps:50_000_000);
        Alcotest.(check int) "grown" 50_000_000 (reserved_on net a s);
        Atm.Net.close_vc net vc;
        Alcotest.(check bool) "closed VC refuses" false
          (Atm.Net.vc_adjust_reservation vc ~bps:20_000_000));
  ]

let () =
  Alcotest.run "fabric"
    [
      ("signalling rollback", rollback_tests);
      ("host transparency", transparency_tests);
      ("vci churn", churn_tests);
      ("clos generator", clos_tests);
      ("conservation", [ conservation_prop ]);
      ("qos manager", qos_mgr_tests);
    ]
