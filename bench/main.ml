(* The benchmark harness, in three parts.

   Part 1 regenerates every table of the paper reproduction (E1..E13
   plus the A1 ablation): these are simulation experiments, so the
   numbers that matter are the *simulated* metrics inside each table;
   each runs once in quick mode (pass --full for full-size parameters).

   Part 2 is a Bechamel microbenchmark suite over the substrate's hot
   operations (event queue, CRC, AAL5, switching, scheduling decisions,
   name resolution, cache), one Test.make per operation, reporting
   host-machine ns/op.

   Part 3 re-times the same operations with a light sampling harness
   and writes machine-readable results (per-benchmark mean/p50/p95/p99
   ns/op, per-experiment wall time, and the metrics-registry snapshot)
   to BENCH_results.json so the perf trajectory across PRs is
   comparable.  `--smoke` runs parts 1 and 3 only, with small sample
   counts, for CI.  `--json-out FILE` overrides the output path. *)

(* Alias the raw clock before [open Toolkit] shadows its module name
   with Bechamel's measure of the same clock. *)
module Clock = Monotonic_clock

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Microbenchmark operations, shared by Bechamel and the sampler.      *)

let op_engine () =
  let e = Sim.Engine.create () in
  for i = 1 to 1000 do
    ignore (Sim.Engine.schedule e ~delay:(Sim.Time.us i) (fun () -> ()))
  done;
  Sim.Engine.run e

let op_heap () =
  let h = Sim.Heap.create () in
  for i = 1 to 1000 do
    Sim.Heap.push h ~key:(Int64.of_int (i * 7919 mod 1000)) ~seq:i ()
  done;
  let rec drain () =
    match Sim.Heap.pop h with Some _ -> drain () | None -> ()
  in
  drain ()

let op_rng =
  let rng = Sim.Rng.create () in
  fun () -> ignore (Sim.Rng.int64 rng)

let op_crc =
  let buf = Bytes.create 1024 in
  fun () -> ignore (Atm.Crc32.digest_bytes buf)

let op_aal5 =
  let payload = Bytes.create 1024 in
  fun () ->
    let cells = Atm.Aal5.segment ~vci:1 payload in
    let r = Atm.Aal5.Reassembler.create () in
    List.iter (fun c -> ignore (Atm.Aal5.Reassembler.push r c)) cells

let op_switch =
  let e = Sim.Engine.create () in
  let sw = Atm.Switch.create e ~name:"sw" ~ports:16 () in
  for vci = 32 to 1031 do
    Atm.Switch.add_route sw ~in_port:0 ~in_vci:vci ~out_port:1
      ~out_vci:(vci + 1000)
  done;
  fun () -> ignore (Atm.Switch.route sw ~in_port:0 ~in_vci:500)

let op_tile =
  let p =
    {
      Atm.Tile.x = 10;
      y = 20;
      frame = 3;
      count = 8;
      bytes_per_tile = 8;
      captured_at = Sim.Time.us 1;
      data = Bytes.create 64;
    }
  in
  fun () -> ignore (Atm.Tile.unmarshal (Atm.Tile.marshal p))

let op_select =
  let domains =
    List.init 8 (fun i ->
        let d =
          Nemesis.Domain.create
            ~name:(Printf.sprintf "d%d" i)
            ~period:(Sim.Time.ms (10 + i)) ~slice:(Sim.Time.ms 1) ()
        in
        Nemesis.Domain.add_job d
          (Nemesis.Job.make ~work:(Sim.Time.ms 1) ~created:Sim.Time.zero ());
        d)
  in
  let policy = Nemesis.Policy.atropos () in
  fun () -> ignore (policy.Nemesis.Policy.select ~domains ~now:(Sim.Time.ms 5))

let op_resolve =
  let ns = Naming.Namespace.create () in
  Naming.Namespace.bind ns ~path:"a/b/c/obj"
    (Naming.Maillon.of_iface ~reference:"o" (Naming.Maillon.iface []));
  fun () -> ignore (Naming.Namespace.resolve ns "a/b/c/obj")

let op_maillon =
  let m =
    Naming.Maillon.of_iface ~reference:"o"
      (Naming.Maillon.iface [ ("f", fun b -> b) ])
  in
  fun () -> ignore (Naming.Maillon.invoke m ~meth:"f" Bytes.empty)

let op_cache =
  let c = Pfs.Cache.create ~capacity_blocks:1024 () in
  let i = ref 0 in
  fun () ->
    incr i;
    ignore (Pfs.Cache.access c ~fid:1 ~block:(!i mod 2048))

let op_garbage () =
  let g = Pfs.Garbage.create () in
  for s = 1 to 1000 do
    Pfs.Garbage.append g ~seg:s ~off:0 ~len:100
  done;
  Pfs.Garbage.set_marker g;
  ignore (Pfs.Garbage.before_marker g);
  Pfs.Garbage.truncate_to_marker g

let op_fault () =
  let e = Sim.Engine.create () in
  let f = Sim.Fault.create ~seed:42L e in
  let up = ref true in
  for i = 1 to 100 do
    Sim.Fault.window f
      ~at:(Sim.Time.us (i * 20))
      ~duration:(Sim.Time.us 10)
      ~down:(fun () -> up := false)
      ~up:(fun () -> up := true)
  done;
  Sim.Engine.run e;
  let decide = Sim.Fault.bernoulli f ~p:0.01 in
  for _ = 1 to 1000 do
    ignore (decide ())
  done

let op_wire =
  let msg =
    {
      Rpc.Wire.kind = Rpc.Wire.Request;
      call_id = 42;
      iface = "pfs";
      meth = "read";
      payload = Bytes.create 64;
    }
  in
  fun () -> ignore (Rpc.Wire.unmarshal (Rpc.Wire.marshal msg))

let op_bulk_chunking =
  let e = Sim.Engine.create () in
  let net = Atm.Net.create e in
  let a = Atm.Net.add_host net ~name:"a" in
  let b = Atm.Net.add_host net ~name:"b" in
  Atm.Net.connect net a b;
  let sender, _ =
    Rpc.Bulk.establish net ~src:a ~dst:b ~on_data:(fun _ -> ()) ()
  in
  let blob = Bytes.create 65536 in
  fun () -> Rpc.Bulk.send sender blob

let op_vnode_lookup =
  let e = Sim.Engine.create () in
  let raid = Pfs.Raid.create e ~segment_bytes:65536 () in
  let log = Pfs.Log.create e ~raid () in
  let fs = Pfs.Vnode.create e ~log () in
  Pfs.Vnode.mkdir fs "a" (fun _ -> ());
  Pfs.Vnode.mkdir fs "a/b" (fun _ -> ());
  Pfs.Vnode.creat fs "a/b/f" (fun _ -> ());
  Sim.Engine.run e;
  fun () -> ignore (Pfs.Vnode.exists fs "a/b/f")

let ops : (string * (unit -> unit)) list =
  [
    ("bulk: chunk 64KB to MTU", op_bulk_chunking);
    ("vnode: path lookup depth 3", op_vnode_lookup);
    ("engine: 1k timer events", op_engine);
    ("heap: 1k push+pop", op_heap);
    ("rng: int64", op_rng);
    ("crc32: 1KB", op_crc);
    ("aal5: segment+reassemble 1KB", op_aal5);
    ("switch: route lookup", op_switch);
    ("tile: marshal+unmarshal", op_tile);
    ("scheduler: atropos select (8 domains)", op_select);
    ("naming: resolve depth 4", op_resolve);
    ("naming: maillon invoke", op_maillon);
    ("cache: LRU access", op_cache);
    ("garbage: 1k appends + marker cycle", op_garbage);
    ("fault: 100 windows + 1k loss draws", op_fault);
    ("rpc: wire marshal+unmarshal", op_wire);
  ]

(* ------------------------------------------------------------------ *)
(* Part 2: the Bechamel table.                                         *)

let run_microbenches () =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "%-40s %14s\n" "microbenchmark" "time/op";
  Printf.printf "%s\n" (String.make 56 '-');
  List.iter
    (fun (name, fn) ->
      let test = Test.make ~name (Staged.stage fn) in
      let results =
        Benchmark.all cfg instances test
        |> Analyze.all ols Instance.monotonic_clock
      in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              let pretty =
                if est > 1.0e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
                else if est > 1.0e3 then Printf.sprintf "%.2f us" (est /. 1e3)
                else Printf.sprintf "%.1f ns" est
              in
              Printf.printf "%-40s %14s\n" name pretty
          | Some _ | None -> Printf.printf "%-40s %14s\n" name "n/a")
        results)
    ops;
  Printf.printf "%s\n" (String.make 56 '-')

(* ------------------------------------------------------------------ *)
(* Part 3: sampling harness and the machine-readable results file.     *)

let now_ns () = Clock.now ()

(* Time [samples] batches of [fn]; batch size is calibrated so one
   batch takes roughly a millisecond, keeping clock granularity noise
   out of the per-op numbers. *)
let sample_op ~samples fn =
  fn ();
  (* calibration: time a small burst *)
  let calib = 16 in
  let t0 = now_ns () in
  for _ = 1 to calib do
    fn ()
  done;
  let t1 = now_ns () in
  let per_op = Stdlib.max 1L (Int64.div (Int64.sub t1 t0) (Int64.of_int calib)) in
  let batch =
    Stdlib.max 1 (Stdlib.min 10_000 (Int64.to_int (Int64.div 1_000_000L per_op)))
  in
  let s = Sim.Stats.Samples.create () in
  for _ = 1 to samples do
    let b0 = now_ns () in
    for _ = 1 to batch do
      fn ()
    done;
    let b1 = now_ns () in
    Sim.Stats.Samples.add s
      (Int64.to_float (Int64.sub b1 b0) /. Float.of_int batch)
  done;
  s

let json_of_samples name s =
  let p q = Sim.Json.Float (Sim.Stats.Samples.percentile s q) in
  Sim.Json.Obj
    [
      ("name", Sim.Json.String name);
      ("unit", Sim.Json.String "ns/op");
      ("samples", Sim.Json.Int (Sim.Stats.Samples.count s));
      ("mean", Sim.Json.Float (Sim.Stats.Samples.mean s));
      ("min", Sim.Json.Float (Sim.Stats.Samples.min s));
      ("max", Sim.Json.Float (Sim.Stats.Samples.max s));
      ("p50", p 50.0);
      ("p95", p 95.0);
      ("p99", p 99.0);
    ]

let run_experiments ~quick ~domains fmt =
  List.map
    (fun e ->
      let t0 = now_ns () in
      let table = e.Experiments.Registry.e_run ~quick ~domains in
      let wall_ms =
        Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e6
      in
      Format.fprintf fmt "%a@.@." Experiments.Table.pp table;
      Sim.Json.Obj
        [
          ("id", Sim.Json.String e.Experiments.Registry.e_id);
          ("title", Sim.Json.String e.Experiments.Registry.e_title);
          ("wall_ms", Sim.Json.Float wall_ms);
        ])
    Experiments.Registry.all

(* ------------------------------------------------------------------ *)
(* Part 4: engine/metrics hot-path benchmark — BENCH_engine.json.      *)

(* The simulator event loop and metrics paths are the substrate every
   experiment runs on, so their throughput is tracked as its own
   machine-readable file with a committed baseline (CI fails on >30%
   schedule/fire regression; see .github/workflows/ci.yml). *)

(* Best-of-3 wall time for [fn ()], in ns.  Each repetition starts from
   a compacted heap so that garbage left over from earlier parts (or
   earlier repetitions) does not tax this one's collector. *)
let best_of_3 fn =
  let once () =
    Gc.compact ();
    let t0 = now_ns () in
    fn ();
    Int64.sub (now_ns ()) t0
  in
  let a = once () in
  let b = once () in
  let c = once () in
  Int64.to_float (Stdlib.min a (Stdlib.min b c))

(* Best-of-3 where [fn] times its own measured section and returns the
   elapsed ns, so per-repetition setup (e.g. prefilling a queue to the
   target depth) stays off the clock. *)
let best_of_3_timed fn =
  let once () =
    Gc.compact ();
    fn ()
  in
  let a = once () in
  let b = once () in
  let c = once () in
  Int64.to_float (Stdlib.min a (Stdlib.min b c))

let throughput_json ~ops total_ns =
  let ns_per_op = total_ns /. Float.of_int ops in
  [
    ("ops", Sim.Json.Int ops);
    ("ns_per_op", Sim.Json.Float ns_per_op);
    ("ops_per_sec", Sim.Json.Float (1e9 /. ns_per_op));
  ]

let engine_events = 1_000_000

(* Schedule [engine_events] one-shot events (fanned over 1000 distinct
   instants so the heap sees real depth) and run them all. *)
let bench_schedule_fire () =
  let nop () = () in
  let total =
    best_of_3 (fun () ->
        let e =
          Sim.Engine.create ~metrics:(Sim.Metrics.create ())
            ~trace:(Sim.Trace.create ~enabled:false ()) ()
        in
        for i = 1 to engine_events do
          ignore (Sim.Engine.schedule e ~delay:(Sim.Time.us (i mod 1000)) nop)
        done;
        Sim.Engine.run e)
  in
  ("schedule_fire", Sim.Json.Obj (throughput_json ~ops:engine_events total))

(* Same, but every event is cancelled before the run: measures the
   tombstone path (cancel + skip on delivery). *)
let bench_schedule_cancel () =
  let nop () = () in
  let total =
    best_of_3 (fun () ->
        let e =
          Sim.Engine.create ~metrics:(Sim.Metrics.create ())
            ~trace:(Sim.Trace.create ~enabled:false ()) ()
        in
        let ids =
          Array.init engine_events (fun i ->
              Sim.Engine.schedule e ~delay:(Sim.Time.us (i mod 1000)) nop)
        in
        Array.iter (fun id -> ignore (Sim.Engine.cancel e id)) ids;
        Sim.Engine.run e ~until:(Sim.Time.ms 2))
  in
  ( "schedule_cancel_fire",
    Sim.Json.Obj (throughput_json ~ops:engine_events total) )

let bench_dist_observe ~exact =
  let m = Sim.Metrics.create ~exact_dists:exact () in
  let d = Sim.Metrics.dist m ~sub:Sim.Subsystem.Rpc "bench.lat" in
  let ops = 1_000_000 in
  let total =
    best_of_3 (fun () ->
        for i = 1 to ops do
          Sim.Metrics.observe d (Float.of_int (i land 1023))
        done)
  in
  ( (if exact then "dist_observe_exact" else "dist_observe_reservoir"),
    Sim.Json.Obj (throughput_json ~ops total) )

(* Steady-state heap churn at a fixed queue depth: prefill [depth]
   entries, then time push+pop pairs.  Run for both the live 4-ary
   parallel-array heap and the preserved pre-PR boxed binary heap.
   The 1e6 row is the massive-N regime where the calendar queue is
   expected to overtake the heap. *)
let heap_depths = [ 1_000; 10_000; 100_000; 1_000_000 ]
let heap_pairs = 200_000

let mix i = (i * 2654435761) land 0xFFFFFF

let bench_heap_at_depth depth =
  let live =
    best_of_3_timed (fun () ->
        let h = Sim.Heap.create () in
        for i = 1 to depth do
          Sim.Heap.push h ~key:(Int64.of_int (mix i)) ~seq:i ()
        done;
        let t0 = now_ns () in
        for i = 1 to heap_pairs do
          Sim.Heap.push h ~key:(Int64.of_int (mix (depth + i))) ~seq:(depth + i) ();
          ignore (Sim.Heap.pop h)
        done;
        Int64.sub (now_ns ()) t0)
  in
  let ref_ =
    best_of_3_timed (fun () ->
        let h = Binheap_ref.create () in
        for i = 1 to depth do
          Binheap_ref.push h ~key:(Int64.of_int (mix i)) ~seq:i ()
        done;
        let t0 = now_ns () in
        for i = 1 to heap_pairs do
          Binheap_ref.push h ~key:(Int64.of_int (mix (depth + i))) ~seq:(depth + i) ();
          ignore (Binheap_ref.pop h)
        done;
        Int64.sub (now_ns ()) t0)
  in
  let ops = 2 * heap_pairs in
  let per_op ns = ns /. Float.of_int ops in
  ( depth,
    per_op live,
    per_op ref_,
    Sim.Json.Obj
      [
        ("depth", Sim.Json.Int depth);
        ("ops", Sim.Json.Int ops);
        ("ns_per_op", Sim.Json.Float (per_op live));
        ("binheap_ref_ns_per_op", Sim.Json.Float (per_op ref_));
        ("speedup", Sim.Json.Float (per_op ref_ /. per_op live));
      ] )

(* The same churn pattern through the calendar queue, reported against
   the live heap's figure at the same depth: the crossover where O(1)
   bucket access beats the heap's O(log n) sift is what justifies the
   engine's [`Auto] migration. *)
let bench_calendar_at_depth (depth, heap_ns_per_op) =
  let total =
    best_of_3_timed (fun () ->
        let c = Sim.Calendar.create () in
        for i = 1 to depth do
          Sim.Calendar.push_ns c ~key:(mix i) ~seq:i i
        done;
        let t0 = now_ns () in
        for i = 1 to heap_pairs do
          Sim.Calendar.push_ns c ~key:(mix (depth + i)) ~seq:(depth + i) i;
          ignore (Sim.Calendar.pop_min c)
        done;
        Int64.sub (now_ns ()) t0)
  in
  let ops = 2 * heap_pairs in
  let per_op = total /. Float.of_int ops in
  ( depth,
    per_op,
    heap_ns_per_op,
    Sim.Json.Obj
      [
        ("depth", Sim.Json.Int depth);
        ("ops", Sim.Json.Int ops);
        ("ns_per_op", Sim.Json.Float per_op);
        ("heap_ns_per_op", Sim.Json.Float heap_ns_per_op);
        ("speedup_vs_heap", Sim.Json.Float (heap_ns_per_op /. per_op));
      ] )

(* Schedule+fire at one million live events with zero minor-heap
   allocation per event — the arena engine's acceptance test.  The
   engine runs on the calendar queue, events self-reschedule from a
   preallocated delay table (so the call sites box no Int64 either),
   and the measured window's [Gc.minor_words] delta must stay at the
   noise floor: one boxed word per event would read as
   minor_words_per_op >= 1, against a gate of 0.001. *)
let bench_steady_state () =
  let live = 1_000_000 in
  let measured = 2_000_000 in
  let e =
    Sim.Engine.create ~queue:`Calendar ~metrics:(Sim.Metrics.create ())
      ~trace:(Sim.Trace.create ~enabled:false ()) ()
  in
  (* Nanosecond-granularity delays over a ~1ms window keep the million
     live events dispersed (~1 per calendar bucket) instead of flooding
     a handful of instants. *)
  let delays =
    Array.init 1024 (fun i -> Sim.Time.ns (1 + (i * 2654435761 land 0xFFFFF)))
  in
  let k = ref 0 in
  let rec self () =
    k := (!k + 1) land 1023;
    ignore (Sim.Engine.schedule e ~delay:delays.(!k) self)
  in
  for i = 1 to live do
    ignore
      (Sim.Engine.schedule e
         ~delay:(Sim.Time.ns (1 + (i * 2654435761 land 0xFFFFF)))
         self)
  done;
  (* Settle: arena capacity and calendar geometry reach their fixed
     point before the measured window opens. *)
  Sim.Engine.run e ~max_events:300_000;
  Gc.compact ();
  let w0 = Gc.minor_words () in
  let t0 = now_ns () in
  Sim.Engine.run e ~max_events:measured;
  let total = Int64.to_float (Int64.sub (now_ns ()) t0) in
  let minor_per_op = (Gc.minor_words () -. w0) /. Float.of_int measured in
  if minor_per_op > 0.001 then
    failwith
      (Printf.sprintf "engine steady state allocates: %.6f minor words/event"
         minor_per_op);
  let per_op = total /. Float.of_int measured in
  ( "steady_state",
    Sim.Json.Obj
      [
        ("live_events", Sim.Json.Int live);
        ("ops", Sim.Json.Int measured);
        ("ns_per_op", Sim.Json.Float per_op);
        ("ops_per_sec", Sim.Json.Float (1e9 /. per_op));
        ("minor_words_per_op", Sim.Json.Float minor_per_op);
      ] )

let run_engine_bench path =
  Format.printf "@.Part 4: engine/metrics hot-path benchmark@.@.";
  let engine_parts =
    [ bench_schedule_fire (); bench_schedule_cancel (); bench_steady_state () ]
  in
  let metric_parts =
    [ bench_dist_observe ~exact:false; bench_dist_observe ~exact:true ]
  in
  let heap_rows = List.map bench_heap_at_depth heap_depths in
  let cal_rows =
    List.map
      (fun (depth, live, _, _) -> bench_calendar_at_depth (depth, live))
      heap_rows
  in
  List.iter
    (fun (name, j) ->
      match j with
      | Sim.Json.Obj fields -> (
          match List.assoc "ns_per_op" fields with
          | Sim.Json.Float ns -> Printf.printf "%-28s %10.1f ns/op\n" name ns
          | _ -> ())
      | _ -> ())
    (engine_parts @ metric_parts);
  List.iter
    (fun (depth, live, ref_, _) ->
      Printf.printf "heap push+pop @ depth %-7d %10.1f ns/op (binary ref %.1f, %.2fx)\n"
        depth live ref_ (ref_ /. live))
    heap_rows;
  List.iter
    (fun (depth, cal, heap_ns, _) ->
      Printf.printf
        "calendar push+pop @ depth %-7d %10.1f ns/op (4-ary heap %.1f, %.2fx)\n"
        depth cal heap_ns (heap_ns /. cal))
    cal_rows;
  let json =
    Sim.Json.Obj
      [
        ("schema", Sim.Json.String "pegasus-engine-bench/2");
        ("engine", Sim.Json.Obj engine_parts);
        ("metrics", Sim.Json.Obj metric_parts);
        ( "heap",
          Sim.Json.List (List.map (fun (_, _, _, j) -> j) heap_rows) );
        ( "calendar",
          Sim.Json.List (List.map (fun (_, _, _, j) -> j) cal_rows) );
      ]
  in
  Sim.Json.to_file path json;
  Format.printf "@.Wrote engine benchmark results to %s@." path

(* ------------------------------------------------------------------ *)
(* Part 5: ATM cell-train fast-path benchmark — BENCH_atm.json.        *)

(* Bulk AAL5 frames across a two-switch path, once with the per-cell
   path and once with the cell-train fast path (same topology, same
   pacing).  The train path's claim is wall-clock: one scheduled event
   per hop per burst instead of per cell, identical simulated results.
   Tracked as its own machine-readable file with a committed baseline
   (CI fails on >30% train-path throughput regression and checks the
   64KB train speedup stays above 3x; see .github/workflows/ci.yml). *)

let atm_frame_sizes = [ 1_024; 8_192; 65_535 (* AAL5 max *) ]

let atm_run ~trains ~frame_bytes ~frames () =
  let e =
    Sim.Engine.create ~metrics:(Sim.Metrics.create ())
      ~trace:(Sim.Trace.create ~enabled:false ()) ()
  in
  let net = Atm.Net.create e in
  Atm.Net.set_train_path net trains;
  let a = Atm.Net.add_host net ~name:"a" in
  let b = Atm.Net.add_host net ~name:"b" in
  let s1 = Atm.Net.add_switch net ~name:"s1" ~ports:4 in
  let s2 = Atm.Net.add_switch net ~name:"s2" ~ports:4 in
  (* Queues deep enough that a whole frame bursts in without drops:
     drops would make the comparison measure loss, not batching. *)
  let q = Atm.Aal5.frame_cells frame_bytes + 64 in
  Atm.Net.connect net ~queue_cells:q a s1;
  Atm.Net.connect net ~queue_cells:q s1 s2;
  Atm.Net.connect net ~queue_cells:q s2 b;
  let received = ref 0 in
  let cell_rx, train_rx =
    Atm.Net.frame_rx_pair ~rx:(fun _ -> incr received) ()
  in
  let vc = Atm.Net.open_vc net ~src:a ~dst:b ~rx:cell_rx ~rx_train:train_rx in
  let payload = Bytes.make frame_bytes 'x' in
  let cells = Atm.Aal5.frame_cells frame_bytes in
  let cell_ns =
    Sim.Time.to_ns (Atm.Cell.tx_time ~bandwidth_bps:100_000_000)
  in
  (* One frame per transmit time plus slack: the wire stays busy, the
     queue stays shallow. *)
  let period = Sim.Time.ns ((cells * cell_ns) + 20_000) in
  let sent = ref 0 in
  let rec tick () =
    if !sent < frames then begin
      incr sent;
      Atm.Net.send_frame vc payload;
      ignore (Sim.Engine.schedule e ~delay:period tick)
    end
  in
  tick ();
  Sim.Engine.run e;
  if !received <> frames then
    failwith
      (Printf.sprintf "atm bench: sent %d frames but received %d" frames
         !received)

let atm_mode_json ~frames ~cells total_ns =
  let secs = total_ns /. 1e9 in
  Sim.Json.Obj
    [
      ("wall_ns", Sim.Json.Float total_ns);
      ("frames_per_sec", Sim.Json.Float (Float.of_int frames /. secs));
      ("cells_per_sec", Sim.Json.Float (Float.of_int cells /. secs));
    ]

let run_atm_bench ~smoke path =
  Format.printf "@.Part 5: ATM cell-train fast-path benchmark@.@.";
  let target_cells = if smoke then 60_000 else 400_000 in
  let rows =
    List.map
      (fun frame_bytes ->
        let per_frame = Atm.Aal5.frame_cells frame_bytes in
        let frames = Stdlib.max 20 (target_cells / per_frame) in
        let cells = frames * per_frame in
        let slow =
          best_of_3 (atm_run ~trains:false ~frame_bytes ~frames)
        in
        let fast = best_of_3 (atm_run ~trains:true ~frame_bytes ~frames) in
        let speedup = slow /. fast in
        Printf.printf
          "%3dKB frames: per-cell %8.1f ms, train %8.1f ms  (%.2fx, %d \
           frames, %d cells)\n"
          ((frame_bytes + 1023) / 1024)
          (slow /. 1e6) (fast /. 1e6) speedup frames
          cells;
        Sim.Json.Obj
          [
            ("frame_bytes", Sim.Json.Int frame_bytes);
            ("frames", Sim.Json.Int frames);
            ("cells", Sim.Json.Int cells);
            ("per_cell", atm_mode_json ~frames ~cells slow);
            ("train", atm_mode_json ~frames ~cells fast);
            ("speedup", Sim.Json.Float speedup);
          ])
      atm_frame_sizes
  in
  let json =
    Sim.Json.Obj
      [
        ("schema", Sim.Json.String "pegasus-atm-bench/1");
        ("mode", Sim.Json.String (if smoke then "smoke" else "full"));
        ("frames", Sim.Json.List rows);
      ]
  in
  Sim.Json.to_file path json;
  Format.printf "@.Wrote ATM benchmark results to %s@." path

(* ------------------------------------------------------------------ *)
(* Part 6: flow-trace record-site benchmark — BENCH_trace.json.        *)

(* Every hop of the causal-flow layer runs through the same site shape:
   a [flows_on] guard in front of a [flow_step].  The disabled-path
   number is the cost the instrumentation adds to every untraced run —
   the contract is "one branch per record site", and CI gates on it
   regressing >30% against the committed baseline (see
   .github/workflows/ci.yml).  The enabled numbers split the recording
   cost between the unbounded sink (audit capture) and the default
   bounded ring. *)

let trace_record_ops = 1_000_000

let trace_for mode =
  match mode with
  | `Disabled -> Sim.Trace.create ~enabled:false ()
  | `Unbounded ->
      let tr = Sim.Trace.create ~unbounded:true ~enabled:true () in
      Sim.Trace.set_flows tr true;
      tr
  | `Ring ->
      let tr = Sim.Trace.create ~capacity:65536 ~enabled:true () in
      Sim.Trace.set_flows tr true;
      tr

let bench_record_site mode =
  let name =
    match mode with
    | `Disabled -> "record_disabled"
    | `Unbounded -> "record_unbounded"
    | `Ring -> "record_ring"
  in
  let ts = Sim.Time.us 1 in
  let total =
    best_of_3 (fun () ->
        let tr = trace_for mode in
        for i = 1 to trace_record_ops do
          if Sim.Trace.flows_on tr then
            Sim.Trace.flow_step tr ~ts ~sub:Sim.Subsystem.Atm ~cat:"bench"
              ~flow:(i land 1023) "hop"
        done)
  in
  (name, Sim.Json.Obj (throughput_json ~ops:trace_record_ops total))

(* Audit-report construction over a synthetic 1e5-event capture:
   10k flows of start + 8 hops + end across 4 streams, the shape the
   [pegasus_cli audit] scenarios produce. *)
let bench_audit_build () =
  let tr = Sim.Trace.create ~unbounded:true ~enabled:true () in
  Sim.Trace.set_flows tr true;
  let flows = 10_000 and hops = 8 in
  let events = flows * (hops + 2) in
  for f = 1 to flows do
    let id = Sim.Trace.alloc_flow tr in
    let t0 = f * 1000 in
    Sim.Trace.flow_start tr ~ts:(Sim.Time.ns t0) ~sub:Sim.Subsystem.Atm
      ~cat:"bench"
      ~args:[ ("stream", Sim.Trace.Str (Printf.sprintf "s%d" (f mod 4))) ]
      ~flow:id "start";
    for h = 1 to hops do
      Sim.Trace.flow_step tr
        ~ts:(Sim.Time.ns (t0 + (h * 10)))
        ~sub:Sim.Subsystem.Atm ~cat:"bench" ~flow:id
        (Printf.sprintf "hop%d" h)
    done;
    Sim.Trace.flow_end tr
      ~ts:(Sim.Time.ns (t0 + 1000))
      ~sub:Sim.Subsystem.Atm ~cat:"bench" ~flow:id "end"
  done;
  let total = best_of_3 (fun () -> ignore (Sim.Audit.of_trace tr)) in
  ( "audit_build",
    Sim.Json.Obj
      (("events", Sim.Json.Int events)
       :: ("build_ms", Sim.Json.Float (total /. 1e6))
       :: throughput_json ~ops:events total) )

let run_trace_bench path =
  Format.printf "@.Part 6: flow-trace record-site benchmark@.@.";
  let sites =
    [
      bench_record_site `Disabled;
      bench_record_site `Unbounded;
      bench_record_site `Ring;
    ]
  in
  let audit = bench_audit_build () in
  List.iter
    (fun (name, j) ->
      match j with
      | Sim.Json.Obj fields -> (
          match List.assoc "ns_per_op" fields with
          | Sim.Json.Float ns -> Printf.printf "%-28s %10.2f ns/op\n" name ns
          | _ -> ())
      | _ -> ())
    (sites @ [ audit ]);
  let json =
    Sim.Json.Obj
      [
        ("schema", Sim.Json.String "pegasus-trace-bench/1");
        ("record_site", Sim.Json.Obj sites);
        ("audit", Sim.Json.Obj [ audit ]);
      ]
  in
  Sim.Json.to_file path json;
  Format.printf "@.Wrote trace benchmark results to %s@." path

(* ------------------------------------------------------------------ *)
(* Part 7: sharded parallel simulation benchmark — BENCH_parallel.json. *)

(* The multi-site fabric (Experiments.Fabric) timed at one domain and
   at [domains], with the determinism self-check that makes the speedup
   trustworthy: both runs must produce identical per-site digests.
   Between repetitions we run [Gc.full_major] rather than [Gc.compact]:
   compaction moves the shared major heap under domains that were just
   spawned, which taxes the very path being measured, while a full
   major still starts each repetition from a clean heap.  CI gates on
   the committed baseline: >=2x speedup at 4 domains (only on runners
   with >= 4 cores) and no >30% single-domain throughput regression
   (see bench/check_baseline.sh). *)

let best_of_3_par fn =
  let once () =
    Gc.full_major ();
    let t0 = now_ns () in
    fn ();
    Int64.sub (now_ns ()) t0
  in
  let a = once () in
  let b = once () in
  let c = once () in
  Int64.to_float (Stdlib.min a (Stdlib.min b c))

let run_parallel_bench ~smoke ~domains path =
  Format.printf "@.Part 7: sharded parallel simulation benchmark@.@.";
  let p = Experiments.Fabric.default_params ~quick:smoke in
  let reference = ref None in
  let total_frames o =
    Array.fold_left ( + ) 0 o.Experiments.Fabric.local_frames
    + Array.fold_left ( + ) 0 o.Experiments.Fabric.remote_frames
  in
  let run_at domains =
    (* The timed closure keeps only the last outcome; every repetition
       simulates the identical world. *)
    let out = ref None in
    let wall_ns =
      best_of_3_par (fun () ->
          out := Some (Experiments.Fabric.execute ~domains p))
    in
    let o = match !out with Some o -> o | None -> assert false in
    (match !reference with
    | None -> reference := Some o.Experiments.Fabric.digests
    | Some d ->
        if d <> o.Experiments.Fabric.digests then
          failwith
            (Printf.sprintf
               "parallel bench: digests at %d domains differ from 1 domain"
               domains));
    let frames = total_frames o in
    let fps = Float.of_int frames /. (wall_ns /. 1e9) in
    Printf.printf
      "%d domain%s: %8.1f ms wall, %9.0f frames/s  (%d frames, %d epochs, \
       %d messages)\n"
      domains
      (if domains = 1 then " " else "s")
      (wall_ns /. 1e6) fps frames o.Experiments.Fabric.epochs
      o.Experiments.Fabric.messages;
    ( wall_ns,
      Sim.Json.Obj
        [
          ("domains", Sim.Json.Int domains);
          ("wall_ns", Sim.Json.Float wall_ns);
          ("frames", Sim.Json.Int frames);
          ("frames_per_sec", Sim.Json.Float fps);
          ("epochs", Sim.Json.Int o.Experiments.Fabric.epochs);
          ("messages", Sim.Json.Int o.Experiments.Fabric.messages);
          ("overflows", Sim.Json.Int o.Experiments.Fabric.overflows);
        ] )
  in
  let base_ns, base_json = run_at 1 in
  let rows, speedup =
    if Sim.Par.available && domains > 1 then begin
      let par_ns, par_json = run_at domains in
      ([ base_json; par_json ], base_ns /. par_ns)
    end
    else ([ base_json ], 1.0)
  in
  Printf.printf "speedup at %d domains: %.2fx (digests identical)\n" domains
    speedup;
  let json =
    Sim.Json.Obj
      [
        ("schema", Sim.Json.String "pegasus-parallel-bench/1");
        ("mode", Sim.Json.String (if smoke then "smoke" else "full"));
        ("domains_available", Sim.Json.Bool Sim.Par.available);
        ("cores", Sim.Json.Int (Sim.Par.recommended_workers ()));
        ("domains", Sim.Json.Int domains);
        ("sites", Sim.Json.Int p.Experiments.Fabric.sites);
        ("runs", Sim.Json.List rows);
        ("speedup", Sim.Json.Float speedup);
      ]
  in
  Sim.Json.to_file path json;
  Format.printf "@.Wrote parallel benchmark results to %s@." path

(* ------------------------------------------------------------------ *)
(* Part 8: city-scale fabric benchmark — BENCH_cityscale.json.         *)

(* Two costs behind experiment E14, tracked with committed baselines:
   VC signalling throughput (open/close cycles over a Clos, exercising
   path search, admission and the VCI free lists) and admitted-stream
   cell throughput (paced frames from QoS-admitted contracts moving as
   cell trains across the fabric). *)

let cityscale_signalling ~cycles =
  let e = Sim.Engine.create () in
  let net = Atm.Net.create e in
  let cl = Atm.Net.clos net ~spines:2 ~leaves:4 ~hosts_per_leaf:4 () in
  let hosts = cl.Atm.Net.cl_hosts in
  let nh = Array.length hosts in
  fun () ->
    for i = 0 to cycles - 1 do
      let src = hosts.(i mod nh) and dst = hosts.((i + 7) mod nh) in
      let vc =
        Atm.Net.open_vc net ~reserve_bps:1_000_000 ~path_sel:i ~src ~dst
          ~rx:(fun _ -> ())
      in
      Atm.Net.close_vc net vc
    done

let cityscale_traffic ~offered ~duration () =
  let e = Sim.Engine.create () in
  let net = Atm.Net.create e in
  let cl = Atm.Net.clos net ~spines:2 ~leaves:4 ~hosts_per_leaf:4 () in
  let hosts = cl.Atm.Net.cl_hosts in
  let nh = Array.length hosts in
  let qm = Atm.Qos_mgr.create ~path_attempts:2 net () in
  let frame_bytes = 8192 in
  let payload = Bytes.create frame_bytes in
  for i = 0 to offered - 1 do
    let src = hosts.(i mod nh) and dst = hosts.((i + (nh / 2) + 1) mod nh) in
    let rx, rx_train = Atm.Net.frame_rx_pair ~rx:(fun _ -> ()) () in
    match
      Atm.Qos_mgr.request ~rx_train qm ~cls:Atm.Qos_mgr.Video ~bps:6_000_000
        ~src ~dst ~rx ()
    with
    | Atm.Qos_mgr.Rejected -> ()
    | Atm.Qos_mgr.Accepted c | Atm.Qos_mgr.Degraded c -> (
        match Atm.Qos_mgr.contract_vc c with
        | None -> ()
        | Some vc ->
            let period_ns =
              int_of_float
                (Float.of_int (frame_bytes * 8)
                 *. 1e9
                 /. Float.of_int (Atm.Qos_mgr.granted_bps c))
            in
            let k = ref 0 in
            let at () = Sim.Time.ns (!k * period_ns) in
            while Sim.Time.(at () < duration) do
              let when_ = at () in
              ignore
                (Sim.Engine.schedule_at e ~at:when_ (fun () ->
                     Atm.Net.send_frame vc payload));
              incr k
            done)
  done;
  Sim.Engine.run e;
  List.fold_left (fun acc l -> acc + Atm.Link.cells_sent l) 0 (Atm.Net.links net)

let run_cityscale_bench ~smoke path =
  Format.printf "@.Part 8: city-scale fabric benchmark@.@.";
  let cycles = if smoke then 2_000 else 20_000 in
  let signalling = cityscale_signalling ~cycles in
  let vc_ns = best_of_3 signalling in
  let cycles_per_sec = Float.of_int cycles /. (vc_ns /. 1e9) in
  Printf.printf "VC signalling: %7.1f ms for %d open/close cycles (%9.0f cycles/s)\n"
    (vc_ns /. 1e6) cycles cycles_per_sec;
  let offered = if smoke then 64 else 128 in
  let duration = Sim.Time.ms (if smoke then 50 else 200) in
  let cells = ref 0 in
  let traffic_ns =
    best_of_3 (fun () -> cells := cityscale_traffic ~offered ~duration ())
  in
  let cells_per_sec = Float.of_int !cells /. (traffic_ns /. 1e9) in
  Printf.printf
    "Admitted traffic: %7.1f ms wall for %d cells across the fabric (%9.0f \
     cells/s)\n"
    (traffic_ns /. 1e6) !cells cells_per_sec;
  let json =
    Sim.Json.Obj
      [
        ("schema", Sim.Json.String "pegasus-cityscale-bench/1");
        ("mode", Sim.Json.String (if smoke then "smoke" else "full"));
        ( "vc",
          Sim.Json.Obj
            [
              ("cycles", Sim.Json.Int cycles);
              ("wall_ns", Sim.Json.Float vc_ns);
              ("cycles_per_sec", Sim.Json.Float cycles_per_sec);
            ] );
        ( "traffic",
          Sim.Json.Obj
            [
              ("offered", Sim.Json.Int offered);
              ("cells", Sim.Json.Int !cells);
              ("wall_ns", Sim.Json.Float traffic_ns);
              ("cells_per_sec", Sim.Json.Float cells_per_sec);
            ] );
      ]
  in
  Sim.Json.to_file path json;
  Format.printf "@.Wrote city-scale benchmark results to %s@." path

(* ------------------------------------------------------------------ *)
(* Part 9: VOD replication benchmark — BENCH_vod.json.                 *)

(* The claim behind experiment E15, tracked with a committed baseline:
   at the flash-crowd peak, popularity-aware replication must beat
   static placement on both throughput (strictly, with a floor) and
   p99 read tail (>= 2x better).  Those two speedups are simulated
   metrics — exact and deterministic — while the sweep's wall-clock
   rows/s guards the host cost of the directory hot paths (routing,
   EWMA accounting, replica serves). *)

let run_vod_bench ~smoke ~domains path =
  Format.printf "@.Part 9: VOD replication benchmark@.@.";
  let rows = ref [||] in
  let wall_ns =
    best_of_3 (fun () ->
        rows := Experiments.E15_vodscale.results ~quick:smoke ~domains ())
  in
  let rows = !rows in
  let rows_per_sec = Float.of_int (Array.length rows) /. (wall_ns /. 1e9) in
  Printf.printf "Sweep: %7.1f ms wall for %d rows (%5.2f rows/s)\n"
    (wall_ns /. 1e6) (Array.length rows) rows_per_sec;
  let mode_name = function
    | Experiments.E15_vodscale.Static -> "static"
    | Experiments.E15_vodscale.Cache_only -> "cache"
    | Experiments.E15_vodscale.Replicate -> "replicate"
  in
  let peak_clients =
    Array.fold_left
      (fun acc r -> Stdlib.max acc r.Experiments.E15_vodscale.rr_clients)
      0 rows
  in
  let peak mode =
    let r =
      Array.to_list rows
      |> List.find (fun r ->
             r.Experiments.E15_vodscale.rr_clients = peak_clients
             && r.Experiments.E15_vodscale.rr_mode = mode)
    in
    let p99 =
      match r.Experiments.E15_vodscale.rr_p99_flash_us with
      | Some v -> v
      | None -> Float.nan
    in
    (r.Experiments.E15_vodscale.rr_reads_s, p99)
  in
  let static_reads_s, static_p99 = peak Experiments.E15_vodscale.Static in
  let repl_reads_s, repl_p99 = peak Experiments.E15_vodscale.Replicate in
  let throughput_speedup = repl_reads_s /. static_reads_s in
  let p99_speedup = static_p99 /. repl_p99 in
  Printf.printf
    "Peak (%d clients): replicate %.0f reads/s p99 %.1f ms vs static %.0f \
     reads/s p99 %.1f ms (throughput x%.2f, p99 x%.2f)\n"
    peak_clients repl_reads_s (repl_p99 /. 1e3) static_reads_s
    (static_p99 /. 1e3) throughput_speedup p99_speedup;
  let row_json r =
    Sim.Json.Obj
      [
        ("clients", Sim.Json.Int r.Experiments.E15_vodscale.rr_clients);
        ( "placement",
          Sim.Json.String (mode_name r.Experiments.E15_vodscale.rr_mode) );
        ( "reads_per_sec",
          Sim.Json.Float r.Experiments.E15_vodscale.rr_reads_s );
        ( "p99_flash_us",
          match r.Experiments.E15_vodscale.rr_p99_flash_us with
          | Some v -> Sim.Json.Float v
          | None -> Sim.Json.Null );
      ]
  in
  let json =
    Sim.Json.Obj
      [
        ("schema", Sim.Json.String "pegasus-vod-bench/1");
        ("mode", Sim.Json.String (if smoke then "smoke" else "full"));
        ( "sweep",
          Sim.Json.Obj
            [
              ("rows", Sim.Json.Int (Array.length rows));
              ("wall_ns", Sim.Json.Float wall_ns);
              ("rows_per_sec", Sim.Json.Float rows_per_sec);
            ] );
        ( "peak",
          Sim.Json.Obj
            [
              ("clients", Sim.Json.Int peak_clients);
              ("static_reads_per_sec", Sim.Json.Float static_reads_s);
              ("replicate_reads_per_sec", Sim.Json.Float repl_reads_s);
              ("throughput_speedup", Sim.Json.Float throughput_speedup);
              ("static_p99_flash_us", Sim.Json.Float static_p99);
              ("replicate_p99_flash_us", Sim.Json.Float repl_p99);
              ("p99_speedup", Sim.Json.Float p99_speedup);
            ] );
        ("rows", Sim.Json.List (Array.to_list rows |> List.map row_json));
      ]
  in
  Sim.Json.to_file path json;
  Format.printf "@.Wrote VOD replication benchmark results to %s@." path

(* ------------------------------------------------------------------ *)
(* Part 10: SLO monitor benchmark — BENCH_monitor.json.                *)

(* The health layer's hot-path contract is the observer sample site:
   with no monitor attached, [Metrics.sample] must cost one load and
   one branch, so instrumented components pay nothing in unmonitored
   runs — CI gates on the disabled-path throughput regressing >30%
   against the committed baseline (see .github/workflows/ci.yml).  The
   monitored number adds the sink fan-out into a live window buffer,
   and the roll benchmark prices the evaluation side: 1e5 armed
   windows rolled by the daemon chain, each closing a sub-window and
   running the burn-rate state machine. *)

let monitor_sample_ops = 1_000_000

let monitor_engine () =
  Sim.Engine.create
    ~trace:(Sim.Trace.create ~enabled:false ())
    ~metrics:(Sim.Metrics.create ()) ()

let bench_sample_disabled () =
  let reg = Sim.Metrics.create () in
  let o = Sim.Metrics.observer reg ~sub:Sim.Subsystem.Atm "bench.win_us" in
  let total =
    best_of_3 (fun () ->
        for i = 1 to monitor_sample_ops do
          Sim.Metrics.sample o (Float.of_int (i land 1023))
        done)
  in
  ( "sample_disabled",
    Sim.Json.Obj (throughput_json ~ops:monitor_sample_ops total) )

let bench_sample_monitored () =
  let e = monitor_engine () in
  let o =
    Sim.Metrics.observer (Sim.Engine.metrics e) ~sub:Sim.Subsystem.Atm
      "bench.win_us"
  in
  let m = Sim.Monitor.create e in
  Sim.Monitor.register m
    (Sim.Slo.make ~sub:Sim.Subsystem.Atm ~window:(Sim.Time.ms 10)
       ~threshold:1.0e9 "bench.p99")
    (Sim.Monitor.windowed o);
  let total =
    best_of_3 (fun () ->
        for i = 1 to monitor_sample_ops do
          Sim.Metrics.sample o (Float.of_int (i land 1023))
        done)
  in
  ( "sample_monitored",
    Sim.Json.Obj (throughput_json ~ops:monitor_sample_ops total) )

let monitor_windows = 100_000

let bench_window_roll () =
  let rolls_seen = ref 0 in
  let total =
    best_of_3_timed (fun () ->
        let e = monitor_engine () in
        let m = Sim.Monitor.create e in
        for i = 1 to monitor_windows do
          Sim.Monitor.register m
            (Sim.Slo.make ~sub:Sim.Subsystem.Sim ~window:(Sim.Time.ms 1)
               ~fast_windows:1 ~slow_windows:5 ~threshold:1.0e9
               (Printf.sprintf "w%d" i))
            (Sim.Monitor.Level (fun () -> 1.0))
        done;
        (* Rolls are daemon events: a no-op tick chain keeps the run
           alive across the measured span. *)
        let rec tick at =
          if Sim.Time.(at < Sim.Time.ms 10) then
            ignore
              (Sim.Engine.schedule_at e ~at (fun () ->
                   tick (Sim.Time.add at (Sim.Time.ms 1))))
        in
        tick (Sim.Time.ms 1);
        let t0 = now_ns () in
        Sim.Engine.run e ~until:(Sim.Time.ms 10);
        let dt = Int64.sub (now_ns ()) t0 in
        (match (Sim.Monitor.report [ m ]).Sim.Monitor.rep_alerts with
        | a :: _ -> rolls_seen := a.Sim.Monitor.r_rolls
        | [] -> ());
        dt)
  in
  let ops = monitor_windows * Stdlib.max 1 !rolls_seen in
  ( "window_roll",
    Sim.Json.Obj
      (("windows", Sim.Json.Int monitor_windows)
       :: ("rolls", Sim.Json.Int !rolls_seen)
       :: throughput_json ~ops total) )

let run_monitor_bench path =
  Format.printf "@.Part 10: SLO monitor benchmark@.@.";
  let observes = [ bench_sample_disabled (); bench_sample_monitored () ] in
  let roll = bench_window_roll () in
  List.iter
    (fun (name, j) ->
      match j with
      | Sim.Json.Obj fields -> (
          match List.assoc "ns_per_op" fields with
          | Sim.Json.Float ns -> Printf.printf "%-28s %10.2f ns/op\n" name ns
          | _ -> ())
      | _ -> ())
    (observes @ [ roll ]);
  let json =
    Sim.Json.Obj
      [
        ("schema", Sim.Json.String "pegasus-monitor-bench/1");
        ("observe", Sim.Json.Obj observes);
        ("roll", Sim.Json.Obj [ roll ]);
      ]
  in
  Sim.Json.to_file path json;
  Format.printf "@.Wrote monitor benchmark results to %s@." path

let find_arg_value flag =
  let result = ref None in
  Array.iteri
    (fun i a ->
      if a = flag && i + 1 < Array.length Sys.argv then
        result := Some Sys.argv.(i + 1))
    Sys.argv;
  !result

let () =
  let has f = Array.exists (fun a -> a = f) Sys.argv in
  let quick = not (has "--full") in
  let smoke = has "--smoke" in
  let json_out =
    match find_arg_value "--json-out" with
    | Some p -> p
    | None -> "BENCH_results.json"
  in
  let engine_json_out =
    match find_arg_value "--engine-json-out" with
    | Some p -> p
    | None -> "BENCH_engine.json"
  in
  let atm_json_out =
    match find_arg_value "--atm-json-out" with
    | Some p -> p
    | None -> "BENCH_atm.json"
  in
  let trace_json_out =
    match find_arg_value "--trace-json-out" with
    | Some p -> p
    | None -> "BENCH_trace.json"
  in
  let parallel_json_out =
    match find_arg_value "--parallel-json-out" with
    | Some p -> p
    | None -> "BENCH_parallel.json"
  in
  let cityscale_json_out =
    match find_arg_value "--cityscale-json-out" with
    | Some p -> p
    | None -> "BENCH_cityscale.json"
  in
  let vod_json_out =
    match find_arg_value "--vod-json-out" with
    | Some p -> p
    | None -> "BENCH_vod.json"
  in
  let monitor_json_out =
    match find_arg_value "--monitor-json-out" with
    | Some p -> p
    | None -> "BENCH_monitor.json"
  in
  (* Domain count for the parallel bench, pinned from the CLI so CI
     measures a known width rather than whatever the runner reports. *)
  let domains =
    match find_arg_value "--domains" with
    | Some s -> int_of_string s
    | None -> Stdlib.min 4 (Sim.Par.recommended_workers ())
  in
  Format.printf "Pegasus/Nemesis reproduction — benchmark harness@.";
  Format.printf "Part 1: paper-claim tables (%s parameters)@.@."
    (if quick then "quick; pass --full for full-size" else "full-size");
  let experiments = run_experiments ~quick ~domains Format.std_formatter in
  if not smoke then begin
    Format.printf "@.Part 2: substrate microbenchmarks (host CPU time)@.@.";
    run_microbenches ()
  end;
  let samples = if smoke then 10 else 50 in
  let micro =
    List.map (fun (name, fn) -> json_of_samples name (sample_op ~samples fn)) ops
  in
  let results =
    Sim.Json.Obj
      [
        ("schema", Sim.Json.String "pegasus-bench/1");
        ( "mode",
          Sim.Json.String
            (if smoke then "smoke" else if quick then "quick" else "full") );
        ("experiments", Sim.Json.List experiments);
        ("microbenchmarks", Sim.Json.List micro);
        ("metrics", Sim.Metrics.snapshot Sim.Metrics.default);
      ]
  in
  Sim.Json.to_file json_out results;
  Format.printf "@.Wrote machine-readable results to %s@." json_out;
  run_engine_bench engine_json_out;
  run_atm_bench ~smoke atm_json_out;
  run_trace_bench trace_json_out;
  run_parallel_bench ~smoke ~domains parallel_json_out;
  run_cityscale_bench ~smoke cityscale_json_out;
  run_vod_bench ~smoke ~domains vod_json_out;
  run_monitor_bench monitor_json_out
