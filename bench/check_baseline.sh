#!/usr/bin/env sh
# Gate a benchmark results file against its committed baseline.
#
#   check_baseline.sh <results.json> <baseline.json> <gate>...
#
# Each gate is  PATH OP THRESHOLD  written without spaces:
#
#   engine.schedule_fire.ops_per_sec>=0.7x
#       relative gate: the 'x' suffix multiplies the BASELINE's value
#       at the same path (here: fail under 70% of baseline throughput)
#   heap[depth=100000].speedup>=1.5
#       absolute gate, with a [key=value] selector picking one element
#       out of a JSON list
#   frames[@frame_bytes].train.cells_per_sec>=0.7x
#       [@key] fans the gate out over every element of the list in the
#       results, joining each to the baseline element with the same key
#   speedup>=2.0?cores>=4
#       a '?guard' suffix skips the gate (with a note) unless the guard
#       — evaluated on the results file — holds; used for gates that
#       only mean anything on big-enough runners
#
# The schema fields of the two files must match.  Exit status is
# non-zero when any applicable gate fails.
set -eu
[ $# -ge 3 ] || { echo "usage: $0 <results.json> <baseline.json> <gate>..." >&2; exit 2; }

exec python3 - "$@" <<'EOF'
import json, re, sys

cur_path, base_path, *gates = sys.argv[1:]
cur = json.load(open(cur_path))
base = json.load(open(base_path))
if cur.get("schema") != base.get("schema"):
    raise SystemExit(
        f"schema mismatch: {cur.get('schema')} (results) vs "
        f"{base.get('schema')} (baseline)")

SEG = re.compile(r"^(?P<name>\w+)(?:\[(?P<sel>[^\]]+)\])?$")
GATE = re.compile(
    r"^(?P<path>[^<>?]+)(?P<op>>=|<=)(?P<thr>[0-9.]+)(?P<rel>x?)"
    r"(?:\?(?P<guard>.+))?$")


def expand(doc, segs, prefix=""):
    """Resolve a gate path against [doc] into concrete (path, value)
    pairs; a [@key] selector fans out over the list it names."""
    if not segs:
        return [(prefix.rstrip("."), doc)]
    m = SEG.match(segs[0])
    if not m:
        raise SystemExit(f"bad path segment: {segs[0]!r}")
    name, sel = m.group("name"), m.group("sel")
    if name not in doc:
        raise SystemExit(f"no field {name!r} at {prefix!r} in {cur_path}")
    node = doc[name]
    if sel is None:
        return expand(node, segs[1:], prefix + name + ".")
    if sel.startswith("@"):
        key = sel[1:]
        out = []
        for item in node:
            concrete = f"{name}[{key}={item[key]}]"
            out += expand(item, segs[1:], prefix + concrete + ".")
        return out
    key, want = sel.split("=", 1)
    item = next((i for i in node if str(i.get(key)) == want), None)
    if item is None:
        raise SystemExit(f"no element with {sel} under {prefix + name!r}")
    return expand(item, segs[1:], prefix + segs[0] + ".")


def lookup(doc, concrete):
    """Fetch the scalar at a concrete path (only [k=v] selectors)."""
    for seg in concrete.split("."):
        m = SEG.match(seg)
        name, sel = m.group("name"), m.group("sel")
        if name not in doc:
            raise SystemExit(f"baseline {base_path} lacks {concrete!r}")
        doc = doc[name]
        if sel is not None:
            key, want = sel.split("=", 1)
            doc = next((i for i in doc if str(i.get(key)) == want), None)
            if doc is None:
                raise SystemExit(f"baseline {base_path} lacks {concrete!r}")
    return doc


failures = []
for gate in gates:
    g = GATE.match(gate)
    if not g:
        raise SystemExit(f"bad gate: {gate!r}")
    if g.group("guard"):
        gd = GATE.match(g.group("guard"))
        if not gd or gd.group("rel") or gd.group("guard"):
            raise SystemExit(f"bad guard in gate: {gate!r}")
        [(gpath, gval)] = expand(cur, gd.group("path").split("."))
        ok = (gval >= float(gd.group("thr"))) if gd.group("op") == ">=" \
            else (gval <= float(gd.group("thr")))
        if not ok:
            print(f"SKIP {gate}   ({gpath} = {gval:g})")
            continue
    for concrete, got in expand(cur, g.group("path").split(".")):
        if g.group("rel"):
            ref = lookup(base, concrete)
            want = float(g.group("thr")) * ref
            detail = f"{got:,.4g} vs {g.group('thr')} * baseline {ref:,.4g}"
        else:
            want = float(g.group("thr"))
            detail = f"{got:,.4g} vs {want:g}"
        ok = got >= want if g.group("op") == ">=" else got <= want
        print(f"{'OK  ' if ok else 'FAIL'} {concrete} {g.group('op')} "
              f"{detail}")
        if not ok:
            failures.append(f"{concrete}: {detail}")

if failures:
    raise SystemExit(f"{len(failures)} gate(s) failed:\n" + "\n".join(failures))
EOF
