(* Reference implementation: the boxed-record binary heap that
   [Sim.Heap] used before the 4-ary parallel-array rewrite, preserved
   verbatim so BENCH_engine.json can report the speedup of the live
   implementation against a fixed baseline on the same machine and
   build.  Not used outside the benchmark harness. *)

type 'a entry = { key : int64; seq : int; value : 'a }

type 'a t = { mutable arr : 'a entry array; mutable len : int }

let create () = { arr = [||]; len = 0 }

let lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let hole : 'a. unit -> 'a entry = fun () -> Obj.magic 0

let grow h =
  let cap = Array.length h.arr in
  if h.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let narr = Array.make ncap (hole ()) in
    Array.blit h.arr 0 narr 0 h.len;
    h.arr <- narr
  end

let push h ~key ~seq value =
  let e = { key; seq; value } in
  grow h;
  h.arr.(h.len) <- e;
  h.len <- h.len + 1;
  let i = ref (h.len - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    lt h.arr.(!i) h.arr.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = h.arr.(p) in
    h.arr.(p) <- h.arr.(!i);
    h.arr.(!i) <- tmp;
    i := p
  done

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then h.arr.(0) <- h.arr.(h.len);
    h.arr.(h.len) <- hole ();
    if h.len > 0 then begin
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && lt h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.len && lt h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.key, top.seq, top.value)
  end
