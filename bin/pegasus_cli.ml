(* Command-line driver: list and run the paper-claim experiments. *)

open Cmdliner

let quick_arg =
  let doc = "Run with reduced parameters (seconds instead of minutes)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

(* The observability flags below are shared by every subcommand that
   runs a simulation (run, audit, health, parallel, cityscale,
   vodscale); they export the process-default trace sink and metrics
   registry after the run, so sharded rigs whose shards carry private
   registries contribute only what they route through the defaults. *)

let trace_out_arg =
  let doc =
    "Record a typed event trace of the run and write it to $(docv) in \
     Chrome trace_event JSON (open in about:tracing or \
     https://ui.perfetto.dev).  Use a .jsonl suffix for line-oriented \
     JSONL instead."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc =
    "Write a JSON snapshot of the metrics registry (counters, gauges, \
     latency distributions with p50/p95/p99) to $(docv) after the run."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let domains_arg =
  let doc =
    "Worker domains for parallelisable work (OCaml 5 only; silently 1 \
     on 4.14).  Results are byte-identical at every value — the domain \
     count buys wall-clock speed, never different answers."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let check_domains domains k =
  if domains < 1 then
    `Error (false, Printf.sprintf "--domains %d: must be >= 1" domains)
  else k ()

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-4s %s\n" e.Experiments.Registry.e_id
          e.Experiments.Registry.e_title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available experiments.")
    Term.(const run $ const ())

let with_observability ~trace_out ~metrics_out f =
  let tr = Sim.Trace.default in
  (match trace_out with
  | Some _ ->
      (* Full-fidelity capture for export: no ring, count every event. *)
      Sim.Trace.set_capacity tr None;
      Sim.Trace.enable tr true
  | None -> ());
  let result = f () in
  try
    (match trace_out with
    | Some path ->
        if Filename.check_suffix path ".jsonl" then
          Sim.Trace.write_jsonl tr path
        else Sim.Trace.write_chrome tr path;
        Format.eprintf "wrote %d trace events to %s (%d dropped)@."
          (Sim.Trace.length tr) path (Sim.Trace.dropped tr)
    | None -> ());
    (match metrics_out with
    | Some path ->
        Sim.Metrics.write Sim.Metrics.default path;
        Format.eprintf "wrote metrics snapshot to %s@." path
    | None -> ());
    result
  with Sys_error msg -> `Error (false, msg)

let run_cmd =
  let ids =
    let doc = "Experiment ids to run (e.g. E1 E9); omit for all." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run quick trace_out metrics_out domains ids =
    check_domains domains @@ fun () ->
    with_observability ~trace_out ~metrics_out (fun () ->
        match ids with
        | [] ->
            Experiments.Registry.run_all ~quick ~domains Format.std_formatter;
            `Ok ()
        | ids ->
            let rec go = function
              | [] -> `Ok ()
              | id :: rest -> begin
                  match Experiments.Registry.find id with
                  | Some e ->
                      Format.printf "%a@.@." Experiments.Table.pp
                        (e.Experiments.Registry.e_run ~quick ~domains);
                      go rest
                  | None -> `Error (false, "unknown experiment " ^ id)
                end
            in
            go ids)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run experiments and print their tables (all when no id given).")
    Term.(
      ret
        (const run $ quick_arg $ trace_out_arg $ metrics_out_arg $ domains_arg
       $ ids))

let audit_cmd =
  let scenario_arg =
    let scenarios =
      [
        ("video", `Video);
        ("av", `Av);
        ("pfs", `Pfs);
        ("video-pfs", `Video_pfs);
      ]
    in
    let doc =
      "Scenario to trace and audit: " ^ Arg.doc_alts_enum scenarios
      ^ ". $(b,video) is the E1 tile-latency rig, $(b,av) the E2 \
         loaded-path rig, $(b,pfs) the RPC file service, $(b,video-pfs) \
         both on one engine."
    in
    Arg.(value & pos 0 (enum scenarios) `Video & info [] ~docv:"SCENARIO" ~doc)
  in
  let json_arg =
    let doc = "Emit the report as JSON instead of a table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let deadline_arg =
    let doc =
      "Per-flow end-to-end deadline in microseconds: completed flows \
       slower than this count as misses, attributed to the stage that \
       overran its stream median the most."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-us" ] ~docv:"MICROSECONDS" ~doc)
  in
  let duration_arg =
    let doc = "Simulated run length in milliseconds." in
    Arg.(value & opt int 400 & info [ "duration-ms" ] ~docv:"MS" ~doc)
  in
  let run scenario json deadline_us duration_ms domains trace_out =
    check_domains domains @@ fun () ->
    (* The audit rigs are single-shard worlds: any domain count yields
       the same report (the CI determinism job diffs this). *)
    let tr = Sim.Trace.default in
    (* Flow-only capture: unbounded (the audit needs every flow event),
       without per-cell detail, so the train fast path stays intact and
       short runs stay cheap. *)
    Sim.Trace.set_capacity tr None;
    Sim.Trace.enable tr true;
    Sim.Trace.set_flows tr true;
    Sim.Trace.set_cell_detail tr false;
    let duration = Sim.Time.ms duration_ms in
    let e = Sim.Engine.create () in
    (match scenario with
    | `Video -> Experiments.Audit_scenarios.video ~duration e
    | `Av -> Experiments.Audit_scenarios.av ~duration e
    | `Pfs -> Experiments.Audit_scenarios.pfs ~duration e
    | `Video_pfs -> Experiments.Audit_scenarios.video_pfs ~duration e);
    let deadline_ns = Option.map (fun us -> us * 1_000) deadline_us in
    let report = Sim.Audit.of_trace ?deadline_ns tr in
    try
      (match trace_out with
      | Some path ->
          if Filename.check_suffix path ".jsonl" then
            Sim.Trace.write_jsonl tr path
          else Sim.Trace.write_chrome tr path;
          Format.eprintf "wrote %d trace events to %s (%d dropped)@."
            (Sim.Trace.length tr) path (Sim.Trace.dropped tr)
      | None -> ());
      if json then print_string (Sim.Json.to_string (Sim.Audit.to_json report))
      else Format.printf "%a" Sim.Audit.pp report;
      `Ok ()
    with Sys_error msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Run a flow-traced scenario and print its per-stream QoS audit \
          (stage latency breakdown, end-to-end latency, jitter, deadline \
          misses, critical path).")
    Term.(
      ret
        (const run $ scenario_arg $ json_arg $ deadline_arg $ duration_arg
       $ domains_arg $ trace_out_arg))

let health_cmd =
  let scenario_arg =
    let scenarios =
      List.map (fun n -> (n, n)) Experiments.Health_scenarios.names
    in
    let doc =
      "Health scenario to run: " ^ Arg.doc_alts_enum scenarios
      ^ ". $(b,video) is the E1 rig under healthy load, $(b,congest) the \
         same rig with a scripted wire-loss episode that fires and \
         resolves the cell-loss alert mid-run, $(b,pfs) the RPC file \
         service plus a replicated directory with a retransmission \
         storm, $(b,fabric) a 4-site sharded ring (one monitor per \
         shard, merged in shard order)."
    in
    Arg.(value & pos 0 (enum scenarios) "video" & info [] ~docv:"SCENARIO" ~doc)
  in
  let json_arg =
    let doc =
      "Emit the health report as $(b,pegasus-health/1) JSON instead of a \
       table."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let duration_arg =
    let doc =
      "Simulated run length in milliseconds (default per scenario)."
    in
    Arg.(value & opt (some int) None & info [ "duration-ms" ] ~docv:"MS" ~doc)
  in
  let run scenario json duration_ms domains trace_out metrics_out =
    check_domains domains @@ fun () ->
    (* SLO evaluation runs inside the simulation: the report — including
       every alert transition instant — is byte-identical across runs
       and, for the sharded fabric scenario, across --domains values
       (the CI determinism job diffs both). *)
    with_observability ~trace_out ~metrics_out (fun () ->
        let duration = Option.map Sim.Time.ms duration_ms in
        let report =
          Experiments.Health_scenarios.run ?duration ~domains scenario
        in
        if json then
          print_string (Sim.Json.to_string (Sim.Monitor.to_json report))
        else Format.printf "%a" Sim.Monitor.pp report;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Run a monitored scenario and print its SLO health report: \
          per-objective state (ok/pending/firing), breach counts, worst \
          observed burn, and the full pending/firing/resolved transition \
          history with simulated timestamps.")
    Term.(
      ret
        (const run $ scenario_arg $ json_arg $ duration_arg $ domains_arg
       $ trace_out_arg $ metrics_out_arg))

let parallel_cmd =
  let sites_arg =
    let doc = "Number of sites (= shards) in the fabric." in
    Arg.(value & opt (some int) None & info [ "sites" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Seed for the deterministic source phases." in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let run quick domains sites seed trace_out metrics_out =
    check_domains domains @@ fun () ->
    match sites with
    | Some s when s < 1 ->
        `Error (false, Printf.sprintf "--sites %d: must be >= 1" s)
    | _ ->
        with_observability ~trace_out ~metrics_out (fun () ->
            Format.printf "%a@." Experiments.Table.pp
              (Experiments.Fabric.run ~quick ~domains ?sites ?seed ());
            `Ok ())
  in
  Cmd.v
    (Cmd.info "parallel"
       ~doc:
         "Run the sharded multi-site fabric (conservative parallel \
          simulation over OCaml domains) and print its table.  The table \
          is byte-identical at every $(b,--domains) value; the CI \
          determinism job diffs it across 1, 2 and 4.")
    Term.(
      ret
        (const run $ quick_arg $ domains_arg $ sites_arg $ seed_arg
       $ trace_out_arg $ metrics_out_arg))

let cityscale_cmd =
  let seed_arg =
    let doc = "Seed for the deterministic contract arrival pattern." in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let run quick domains seed trace_out metrics_out =
    check_domains domains @@ fun () ->
    with_observability ~trace_out ~metrics_out (fun () ->
        Format.printf "%a@." Experiments.Table.pp
          (Experiments.E14_cityscale.run ~quick ~domains ?seed ());
        `Ok ())
  in
  Cmd.v
    (Cmd.info "cityscale"
       ~doc:
         "Run the city-scale admission sweep (experiment E14): a Clos \
          fabric takes 10 to 10,000 offered stream contracts through the \
          network QoS manager and reports accept/degrade/reject rates, \
          per-class jitter and video fairness.  The table is \
          byte-identical at every $(b,--domains) value.")
    Term.(
      ret
        (const run $ quick_arg $ domains_arg $ seed_arg $ trace_out_arg
       $ metrics_out_arg))

let vodscale_cmd =
  let run quick domains trace_out metrics_out =
    check_domains domains @@ fun () ->
    with_observability ~trace_out ~metrics_out (fun () ->
        Format.printf "%a@." Experiments.Table.pp
          (Experiments.E15_vodscale.run ~quick ~domains ());
        `Ok ())
  in
  Cmd.v
    (Cmd.info "vodscale"
       ~doc:
         "Run the VOD flash-crowd sweep (experiment E15): a sharded file \
          service under Zipf read traffic with a scripted popularity flip, \
          comparing static placement, per-server caching and \
          popularity-aware replication on flash-window throughput and \
          p50/p95/p99 read tails.  The table is byte-identical at every \
          $(b,--domains) value.")
    Term.(
      ret
        (const run $ quick_arg $ domains_arg $ trace_out_arg $ metrics_out_arg))

let () =
  let doc = "Pegasus/Nemesis reproduction: experiments driver." in
  let info = Cmd.info "pegasus_cli" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; audit_cmd; health_cmd; parallel_cmd;
            cityscale_cmd; vodscale_cmd;
          ]))
