(* Command-line driver: list and run the paper-claim experiments. *)

open Cmdliner

let quick_arg =
  let doc = "Run with reduced parameters (seconds instead of minutes)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let trace_out_arg =
  let doc =
    "Record a typed event trace of the run and write it to $(docv) in \
     Chrome trace_event JSON (open in about:tracing or \
     https://ui.perfetto.dev).  Use a .jsonl suffix for line-oriented \
     JSONL instead."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc =
    "Write a JSON snapshot of the metrics registry (counters, gauges, \
     latency distributions with p50/p95/p99) to $(docv) after the run."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-4s %s\n" e.Experiments.Registry.e_id
          e.Experiments.Registry.e_title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available experiments.")
    Term.(const run $ const ())

let with_observability ~trace_out ~metrics_out f =
  let tr = Sim.Trace.default in
  (match trace_out with
  | Some _ ->
      (* Full-fidelity capture for export: no ring, count every event. *)
      Sim.Trace.set_capacity tr None;
      Sim.Trace.enable tr true
  | None -> ());
  let result = f () in
  try
    (match trace_out with
    | Some path ->
        if Filename.check_suffix path ".jsonl" then
          Sim.Trace.write_jsonl tr path
        else Sim.Trace.write_chrome tr path;
        Format.eprintf "wrote %d trace events to %s (%d dropped)@."
          (Sim.Trace.length tr) path (Sim.Trace.dropped tr)
    | None -> ());
    (match metrics_out with
    | Some path ->
        Sim.Metrics.write Sim.Metrics.default path;
        Format.eprintf "wrote metrics snapshot to %s@." path
    | None -> ());
    result
  with Sys_error msg -> `Error (false, msg)

let run_cmd =
  let ids =
    let doc = "Experiment ids to run (e.g. E1 E9); omit for all." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run quick trace_out metrics_out ids =
    with_observability ~trace_out ~metrics_out (fun () ->
        match ids with
        | [] ->
            Experiments.Registry.run_all ~quick Format.std_formatter;
            `Ok ()
        | ids ->
            let rec go = function
              | [] -> `Ok ()
              | id :: rest -> begin
                  match Experiments.Registry.find id with
                  | Some e ->
                      Format.printf "%a@.@." Experiments.Table.pp
                        (e.Experiments.Registry.e_run ~quick);
                      go rest
                  | None -> `Error (false, "unknown experiment " ^ id)
                end
            in
            go ids)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run experiments and print their tables (all when no id given).")
    Term.(ret (const run $ quick_arg $ trace_out_arg $ metrics_out_arg $ ids))

let () =
  let doc = "Pegasus/Nemesis reproduction: experiments driver." in
  let info = Cmd.info "pegasus_cli" ~version:"1.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd ]))
