module Wire = Wire
module Bulk = Bulk

type error =
  | Timed_out
  | No_such_interface of string
  | No_such_method of string
  | Remote_error of string

let pp_error fmt = function
  | Timed_out -> Format.pp_print_string fmt "timed out"
  | No_such_interface i -> Format.fprintf fmt "no such interface: %s" i
  | No_such_method m -> Format.fprintf fmt "no such method: %s" m
  | Remote_error e -> Format.fprintf fmt "remote error: %s" e

(* Error replies carry a one-character tag, a colon and the detail:
   "I:tty" = no such interface, "M:read" = no such method, "E:msg" = a
   handler-reported error.  Anything else — including strings that
   merely start with 'I' or 'E', like "Ignored" — is an opaque remote
   error, reported whole. *)
let error_of_payload s =
  if String.length s >= 2 && s.[1] = ':' then
    let detail = String.sub s 2 (String.length s - 2) in
    match s.[0] with
    | 'I' -> No_such_interface detail
    | 'M' -> No_such_method detail
    | 'E' -> Remote_error detail
    | _ -> Remote_error s
  else Remote_error s

type handler = {
  h_delay : Sim.Time.t;
  h_fn :
    meth:string ->
    flow:int ->
    bytes ->
    reply:((bytes, string) result -> unit) ->
    unit;
}

(* A hash table with FIFO eviction once it exceeds [cap].  The order
   queue may hold keys already removed from the table; they are skipped
   at eviction time and compacted away when they dominate the queue, so
   memory stays proportional to [cap]. *)
type 'v bounded = {
  tbl : (int * int, 'v) Hashtbl.t;
  order : (int * int) Queue.t;
  cap : int;
}

let bounded_create cap = { tbl = Hashtbl.create 64; order = Queue.create (); cap }

let bounded_add b key v =
  if not (Hashtbl.mem b.tbl key) then Queue.push key b.order;
  Hashtbl.replace b.tbl key v;
  while Hashtbl.length b.tbl > b.cap do
    match Queue.take_opt b.order with
    | None -> assert false  (* every table key is queued *)
    | Some k -> Hashtbl.remove b.tbl k
  done;
  if
    Queue.length b.order > b.cap
    && Queue.length b.order > 2 * Hashtbl.length b.tbl
  then begin
    let live = Queue.create () in
    Queue.iter (fun k -> if Hashtbl.mem b.tbl k then Queue.push k live) b.order;
    Queue.clear b.order;
    Queue.transfer live b.order
  end

type endpoint = {
  net : Atm.Net.t;
  host : Atm.Net.node_id;
  ifaces : (string, handler) Hashtbl.t;
  (* at-most-once: last reply per (conn id, call id), oldest evicted *)
  reply_cache : Wire.msg bounded;
  (* calls received but not yet answered (duplicates are dropped) *)
  in_progress : unit bounded;
  mutable dups : int;
  mutable next_conn_id : int;
  m_dups : Sim.Metrics.counter;
}

type pending = {
  mutable tries : int;
  mutable retry_ev : Sim.Engine.event_id option;
  k : (bytes, error) result -> unit;
}

type conn = {
  c_id : int;
  c_client : endpoint;
  c_server : endpoint;
  c_req_vc : Atm.Net.vc;  (* client -> server *)
  c_rep_vc : Atm.Net.vc;  (* server -> client *)
  retransmit : Sim.Time.t;
  backoff_cap : Sim.Time.t;
  jitter : float;
  c_rng : Sim.Rng.t;
  max_tries : int;
  mutable next_call : int;
  pendings : (int, pending) Hashtbl.t;
  mutable sent : int;
  mutable retrans : int;
  m_calls : Sim.Metrics.counter;
  m_retrans : Sim.Metrics.counter;
  m_timeouts : Sim.Metrics.counter;
  m_backoff_win : Sim.Metrics.observer;
}

let endpoint ?(reply_cache_cap = 512) net ~host =
  if reply_cache_cap < 1 then invalid_arg "Rpc.endpoint: reply_cache_cap < 1";
  {
    net;
    host;
    ifaces = Hashtbl.create 8;
    reply_cache = bounded_create reply_cache_cap;
    in_progress = bounded_create (2 * reply_cache_cap);
    dups = 0;
    next_conn_id = 0;
    m_dups =
      Sim.Metrics.counter
        (Sim.Engine.metrics (Atm.Net.engine net))
        ~sub:Sim.Subsystem.Rpc
        ~help:"duplicate requests answered from the reply cache or dropped"
        "server.duplicates";
  }

let serve_flow ep ~iface f =
  Hashtbl.replace ep.ifaces iface { h_delay = Sim.Time.zero; h_fn = f }

let serve_async ep ~iface f =
  serve_flow ep ~iface (fun ~meth ~flow:_ payload ~reply -> f ~meth payload ~reply)

let serve_delayed ep ~iface ~delay f =
  Hashtbl.replace ep.ifaces iface
    {
      h_delay = delay;
      h_fn = (fun ~meth ~flow:_ payload ~reply -> reply (f ~meth payload));
    }

let serve ep ~iface f = serve_delayed ep ~iface ~delay:Sim.Time.zero f

let engine_of ep = Atm.Net.engine ep.net

let execute ep ~flow (msg : Wire.msg) ~k =
  let reply_of = function
    | Ok payload ->
        {
          Wire.kind = Wire.Reply;
          call_id = msg.Wire.call_id;
          iface = "";
          meth = "";
          payload;
        }
    | Error e ->
        {
          Wire.kind = Wire.Error_reply;
          call_id = msg.Wire.call_id;
          iface = "";
          meth = "";
          payload = Bytes.of_string ("E:" ^ e);
        }
  in
  match Hashtbl.find_opt ep.ifaces msg.Wire.iface with
  | None ->
      k
        {
          Wire.kind = Wire.Error_reply;
          call_id = msg.Wire.call_id;
          iface = "";
          meth = "";
          payload = Bytes.of_string ("I:" ^ msg.Wire.iface);
        }
  | Some h ->
      h.h_fn ~meth:msg.Wire.meth ~flow msg.Wire.payload ~reply:(fun r ->
          k (reply_of r))

(* Server side: handle an incoming request frame on a connection.
   [flow] is the causal flow id the request's cells carried; the reply
   is stamped with the same id, so one flow spans the round trip. *)
let server_rx ?(flow = Sim.Trace.no_flow) conn payload =
  match Wire.unmarshal payload with
  | None -> ()
  | Some msg when msg.Wire.kind <> Wire.Request -> ()
  | Some msg -> begin
      let ep = conn.c_server in
      let fl = if flow >= 0 then Some flow else None in
      let tr = Sim.Engine.trace (engine_of ep) in
      if Sim.Trace.flows_on tr && flow >= 0 then
        Sim.Trace.flow_step tr
          ~ts:(Sim.Engine.now (engine_of ep))
          ~sub:Sim.Subsystem.Rpc ~cat:"rpc" ~flow "rpc.server";
      let key = (conn.c_id, msg.Wire.call_id) in
      match Hashtbl.find_opt ep.reply_cache.tbl key with
      | Some cached ->
          (* Duplicate: answer from the cache without re-executing. *)
          ep.dups <- ep.dups + 1;
          Sim.Metrics.incr ep.m_dups;
          Atm.Net.send_frame ?flow:fl conn.c_rep_vc (Wire.marshal cached)
      | None when Hashtbl.mem ep.in_progress.tbl key ->
          (* Duplicate of a call still executing: drop it — the reply
             will answer every copy. *)
          ep.dups <- ep.dups + 1;
          Sim.Metrics.incr ep.m_dups
      | None ->
          bounded_add ep.in_progress key ();
          let delay =
            match Hashtbl.find_opt ep.ifaces msg.Wire.iface with
            | Some h -> h.h_delay
            | None -> Sim.Time.zero
          in
          let respond () =
            execute ep ~flow msg ~k:(fun reply ->
                Hashtbl.remove ep.in_progress.tbl key;
                bounded_add ep.reply_cache key reply;
                if Sim.Trace.flows_on tr && flow >= 0 then
                  Sim.Trace.flow_step tr
                    ~ts:(Sim.Engine.now (engine_of ep))
                    ~sub:Sim.Subsystem.Rpc ~cat:"rpc" ~flow "rpc.exec";
                Atm.Net.send_frame ?flow:fl conn.c_rep_vc (Wire.marshal reply))
          in
          if delay = 0L then respond ()
          else ignore (Sim.Engine.schedule (engine_of ep) ~delay respond)
    end

let client_rx conn payload =
  match Wire.unmarshal payload with
  | None -> ()
  | Some msg when msg.Wire.kind = Wire.Request -> ()
  | Some msg -> begin
      match Hashtbl.find_opt conn.pendings msg.Wire.call_id with
      | None -> ()  (* late duplicate reply *)
      | Some p ->
          Hashtbl.remove conn.pendings msg.Wire.call_id;
          (match p.retry_ev with
          | Some ev -> ignore (Sim.Engine.cancel (engine_of conn.c_client) ev)
          | None -> ());
          let result =
            match msg.Wire.kind with
            | Wire.Reply -> Ok msg.Wire.payload
            | Wire.Error_reply | Wire.Request ->
                Error (error_of_payload (Bytes.to_string msg.Wire.payload))
          in
          p.k result
    end

let connect net ~client ~server ?(retransmit = Sim.Time.ms 10)
    ?(backoff_cap = Sim.Time.ms 500) ?(jitter = 0.1) ?seed ?(max_tries = 4) ()
    =
  if jitter < 0. || jitter >= 1. then
    invalid_arg "Rpc.connect: jitter must be in [0, 1)";
  let conn_id = server.next_conn_id in
  server.next_conn_id <- server.next_conn_id + 1;
  let rec conn =
    lazy
      (let req_cell_rx, req_train_rx =
         Atm.Net.frame_rx_pair_flow
           ~rx:(fun ~flow p -> server_rx ~flow (Lazy.force conn) p)
           ()
       in
       let req_vc =
         Atm.Net.open_vc net ~src:client.host ~dst:server.host ~rx:req_cell_rx
           ~rx_train:req_train_rx
       in
       let rep_cell_rx, rep_train_rx =
         Atm.Net.frame_rx_pair ~rx:(fun p -> client_rx (Lazy.force conn) p) ()
       in
       let rep_vc =
         Atm.Net.open_vc net ~src:server.host ~dst:client.host ~rx:rep_cell_rx
           ~rx_train:rep_train_rx
       in
       let metrics = Sim.Engine.metrics (engine_of client) in
       {
         c_id = conn_id;
         c_client = client;
         c_server = server;
         c_req_vc = req_vc;
         c_rep_vc = rep_vc;
         retransmit;
         backoff_cap;
         jitter;
         c_rng = Sim.Rng.create ?seed ();
         max_tries;
         next_call = 0;
         pendings = Hashtbl.create 16;
         sent = 0;
         retrans = 0;
         m_calls =
           Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Rpc
             ~help:"invocations started" "client.calls";
         m_retrans =
           Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Rpc
             ~help:"request frames retransmitted" "client.retransmissions";
         m_timeouts =
           Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Rpc
             ~help:"calls that exhausted every retry" "client.timeouts";
         m_backoff_win =
           Sim.Metrics.observer metrics ~sub:Sim.Subsystem.Rpc
             ~help:"windowed retransmission backoff samples (us)"
             "client.backoff_win_us";
       })
  in
  Lazy.force conn

let call conn ~iface ~meth payload ~reply =
  let call_id = conn.next_call in
  conn.next_call <- conn.next_call + 1;
  let msg = { Wire.kind = Wire.Request; call_id; iface; meth; payload } in
  let frame = Wire.marshal msg in
  let engine = engine_of conn.c_client in
  let metrics = Sim.Engine.metrics engine in
  let tr = Sim.Engine.trace engine in
  let started = Sim.Engine.now engine in
  Sim.Metrics.incr conn.m_calls;
  (* Latency by kind: one distribution per exported interface. *)
  let m_latency =
    Sim.Metrics.dist metrics ~sub:Sim.Subsystem.Rpc
      ~help:"reply latency in us (per interface)"
      ("call_latency_us." ^ iface)
  in
  (* One causal flow per invocation, spanning the full round trip:
     request transit, server execution (with any PFS hops), reply
     transit.  The id rides the request and reply frames' cells. *)
  let flow =
    if Sim.Trace.flows_on tr then begin
      let f = Sim.Trace.alloc_flow tr in
      Sim.Trace.flow_start tr ~ts:started ~sub:Sim.Subsystem.Rpc ~cat:"rpc"
        ~args:[ ("stream", Sim.Trace.Str ("rpc:" ^ iface ^ "." ^ meth)) ]
        ~flow:f "rpc.call";
      Some f
    end
    else None
  in
  let span =
    Sim.Trace.span_begin tr ~ts:started ~sub:Sim.Subsystem.Rpc ~cat:"call"
      ?flow
      ~args:
        [
          ("iface", Sim.Trace.Str iface);
          ("meth", Sim.Trace.Str meth);
          ("call_id", Sim.Trace.Int call_id);
        ]
      (iface ^ "." ^ meth)
  in
  let p_cell = ref None in
  let finished result =
    let now = Sim.Engine.now engine in
    (match result with
    | Ok _ -> Sim.Metrics.observe m_latency (Sim.Time.to_us_f (Sim.Time.sub now started))
    | Error Timed_out -> Sim.Metrics.incr conn.m_timeouts
    | Error _ -> ());
    let tries = match !p_cell with Some p -> p.tries | None -> 0 in
    Sim.Trace.span_end tr ~ts:now
      ~args:
        [
          ("ok", Sim.Trace.Bool (Result.is_ok result));
          ("tries", Sim.Trace.Int tries);
        ]
      span;
    (match flow with
    | Some f ->
        Sim.Trace.flow_end tr ~ts:now ~sub:Sim.Subsystem.Rpc ~cat:"rpc"
          ~flow:f "rpc.done"
    | None -> ());
    reply result
  in
  let p = { tries = 0; retry_ev = None; k = finished } in
  p_cell := Some p;
  Hashtbl.replace conn.pendings call_id p;
  let rec attempt () =
    if Hashtbl.mem conn.pendings call_id then begin
      if p.tries >= conn.max_tries then begin
        Hashtbl.remove conn.pendings call_id;
        p.k (Error Timed_out)
      end
      else begin
        p.tries <- p.tries + 1;
        if p.tries > 1 then begin
          conn.retrans <- conn.retrans + 1;
          Sim.Metrics.incr conn.m_retrans
        end;
        conn.sent <- conn.sent + 1;
        Atm.Net.send_frame ?flow conn.c_req_vc frame;
        (* Capped exponential backoff, with a jitter factor so that a
           herd of clients does not retransmit in lock-step. *)
        let shift = Stdlib.min (p.tries - 1) 16 in
        let base =
          Sim.Time.min (Sim.Time.mul conn.retransmit (1 lsl shift))
            conn.backoff_cap
        in
        let backoff =
          if conn.jitter <= 0. then base
          else
            let f =
              Sim.Rng.uniform conn.c_rng ~lo:(1. -. conn.jitter)
                ~hi:(1. +. conn.jitter)
            in
            Sim.Time.max (Sim.Time.ns 1)
              (Sim.Time.of_sec_f (Sim.Time.to_sec_f base *. f))
        in
        if p.tries > 1 then
          Sim.Metrics.sample conn.m_backoff_win (Sim.Time.to_us_f backoff);
        p.retry_ev <- Some (Sim.Engine.schedule engine ~delay:backoff attempt)
      end
    end
  in
  attempt ()

let calls_sent conn = conn.sent
let retransmissions conn = conn.retrans
let duplicates_suppressed ep = ep.dups
let reply_cache_size ep = Hashtbl.length ep.reply_cache.tbl
let in_progress_size ep = Hashtbl.length ep.in_progress.tbl
