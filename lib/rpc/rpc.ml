module Wire = Wire
module Bulk = Bulk

type error =
  | Timed_out
  | No_such_interface of string
  | No_such_method of string
  | Remote_error of string

let pp_error fmt = function
  | Timed_out -> Format.pp_print_string fmt "timed out"
  | No_such_interface i -> Format.fprintf fmt "no such interface: %s" i
  | No_such_method m -> Format.fprintf fmt "no such method: %s" m
  | Remote_error e -> Format.fprintf fmt "remote error: %s" e

type handler = {
  h_delay : Sim.Time.t;
  h_fn :
    meth:string -> bytes -> reply:((bytes, string) result -> unit) -> unit;
}

type endpoint = {
  net : Atm.Net.t;
  host : Atm.Net.node_id;
  ifaces : (string, handler) Hashtbl.t;
  (* at-most-once: last reply per (conn id, call id) *)
  reply_cache : (int * int, Wire.msg) Hashtbl.t;
  (* calls received but not yet answered (duplicates are dropped) *)
  in_progress : (int * int, unit) Hashtbl.t;
  mutable dups : int;
  mutable next_conn_id : int;
  m_dups : Sim.Metrics.counter;
}

type pending = {
  mutable tries : int;
  mutable retry_ev : Sim.Engine.event_id option;
  k : (bytes, error) result -> unit;
}

type conn = {
  c_id : int;
  c_client : endpoint;
  c_server : endpoint;
  c_req_vc : Atm.Net.vc;  (* client -> server *)
  c_rep_vc : Atm.Net.vc;  (* server -> client *)
  retransmit : Sim.Time.t;
  max_tries : int;
  mutable next_call : int;
  pendings : (int, pending) Hashtbl.t;
  mutable sent : int;
  mutable retrans : int;
  m_calls : Sim.Metrics.counter;
  m_retrans : Sim.Metrics.counter;
  m_timeouts : Sim.Metrics.counter;
}

let endpoint net ~host =
  {
    net;
    host;
    ifaces = Hashtbl.create 8;
    reply_cache = Hashtbl.create 64;
    in_progress = Hashtbl.create 16;
    dups = 0;
    next_conn_id = 0;
    m_dups =
      Sim.Metrics.counter
        (Sim.Engine.metrics (Atm.Net.engine net))
        ~sub:Sim.Subsystem.Rpc
        ~help:"duplicate requests answered from the reply cache or dropped"
        "server.duplicates";
  }

let serve_async ep ~iface f = Hashtbl.replace ep.ifaces iface { h_delay = Sim.Time.zero; h_fn = f }

let serve_delayed ep ~iface ~delay f =
  Hashtbl.replace ep.ifaces iface
    { h_delay = delay; h_fn = (fun ~meth payload ~reply -> reply (f ~meth payload)) }

let serve ep ~iface f = serve_delayed ep ~iface ~delay:Sim.Time.zero f

let engine_of ep = Atm.Net.engine ep.net

let execute ep (msg : Wire.msg) ~k =
  let reply_of = function
    | Ok payload ->
        {
          Wire.kind = Wire.Reply;
          call_id = msg.Wire.call_id;
          iface = "";
          meth = "";
          payload;
        }
    | Error e ->
        {
          Wire.kind = Wire.Error_reply;
          call_id = msg.Wire.call_id;
          iface = "";
          meth = "";
          payload = Bytes.of_string ("E:" ^ e);
        }
  in
  match Hashtbl.find_opt ep.ifaces msg.Wire.iface with
  | None ->
      k
        {
          Wire.kind = Wire.Error_reply;
          call_id = msg.Wire.call_id;
          iface = "";
          meth = "";
          payload = Bytes.of_string ("I:" ^ msg.Wire.iface);
        }
  | Some h ->
      h.h_fn ~meth:msg.Wire.meth msg.Wire.payload ~reply:(fun r ->
          k (reply_of r))

(* Server side: handle an incoming request frame on a connection. *)
let server_rx conn payload =
  match Wire.unmarshal payload with
  | None -> ()
  | Some msg when msg.Wire.kind <> Wire.Request -> ()
  | Some msg -> begin
      let ep = conn.c_server in
      let key = (conn.c_id, msg.Wire.call_id) in
      match Hashtbl.find_opt ep.reply_cache key with
      | Some cached ->
          (* Duplicate: answer from the cache without re-executing. *)
          ep.dups <- ep.dups + 1;
          Sim.Metrics.incr ep.m_dups;
          Atm.Net.send_frame conn.c_rep_vc (Wire.marshal cached)
      | None when Hashtbl.mem ep.in_progress key ->
          (* Duplicate of a call still executing: drop it — the reply
             will answer every copy. *)
          ep.dups <- ep.dups + 1;
          Sim.Metrics.incr ep.m_dups
      | None ->
          Hashtbl.replace ep.in_progress key ();
          let delay =
            match Hashtbl.find_opt ep.ifaces msg.Wire.iface with
            | Some h -> h.h_delay
            | None -> Sim.Time.zero
          in
          let respond () =
            execute ep msg ~k:(fun reply ->
                Hashtbl.remove ep.in_progress key;
                Hashtbl.replace ep.reply_cache key reply;
                Atm.Net.send_frame conn.c_rep_vc (Wire.marshal reply))
          in
          if delay = 0L then respond ()
          else ignore (Sim.Engine.schedule (engine_of ep) ~delay respond)
    end

let client_rx conn payload =
  match Wire.unmarshal payload with
  | None -> ()
  | Some msg when msg.Wire.kind = Wire.Request -> ()
  | Some msg -> begin
      match Hashtbl.find_opt conn.pendings msg.Wire.call_id with
      | None -> ()  (* late duplicate reply *)
      | Some p ->
          Hashtbl.remove conn.pendings msg.Wire.call_id;
          (match p.retry_ev with
          | Some ev -> Sim.Engine.cancel (engine_of conn.c_client) ev
          | None -> ());
          let result =
            match msg.Wire.kind with
            | Wire.Reply -> Ok msg.Wire.payload
            | Wire.Error_reply | Wire.Request ->
                let s = Bytes.to_string msg.Wire.payload in
                if String.length s >= 2 && s.[0] = 'I' then
                  Error (No_such_interface (String.sub s 2 (String.length s - 2)))
                else if String.length s >= 2 && s.[0] = 'E' then
                  Error (Remote_error (String.sub s 2 (String.length s - 2)))
                else Error (Remote_error s)
          in
          p.k result
    end

let connect net ~client ~server ?(retransmit = Sim.Time.ms 10) ?(max_tries = 4)
    () =
  let conn_id = server.next_conn_id in
  server.next_conn_id <- server.next_conn_id + 1;
  let rec conn =
    lazy
      (let req_vc =
         Atm.Net.open_vc net ~src:client.host ~dst:server.host
           ~rx:
             (Atm.Net.frame_rx ~rx:(fun p -> server_rx (Lazy.force conn) p) ())
       in
       let rep_vc =
         Atm.Net.open_vc net ~src:server.host ~dst:client.host
           ~rx:
             (Atm.Net.frame_rx ~rx:(fun p -> client_rx (Lazy.force conn) p) ())
       in
       let metrics = Sim.Engine.metrics (engine_of client) in
       {
         c_id = conn_id;
         c_client = client;
         c_server = server;
         c_req_vc = req_vc;
         c_rep_vc = rep_vc;
         retransmit;
         max_tries;
         next_call = 0;
         pendings = Hashtbl.create 16;
         sent = 0;
         retrans = 0;
         m_calls =
           Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Rpc
             ~help:"invocations started" "client.calls";
         m_retrans =
           Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Rpc
             ~help:"request frames retransmitted" "client.retransmissions";
         m_timeouts =
           Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Rpc
             ~help:"calls that exhausted every retry" "client.timeouts";
       })
  in
  Lazy.force conn

let call conn ~iface ~meth payload ~reply =
  let call_id = conn.next_call in
  conn.next_call <- conn.next_call + 1;
  let msg = { Wire.kind = Wire.Request; call_id; iface; meth; payload } in
  let frame = Wire.marshal msg in
  let engine = engine_of conn.c_client in
  let metrics = Sim.Engine.metrics engine in
  let tr = Sim.Engine.trace engine in
  let started = Sim.Engine.now engine in
  Sim.Metrics.incr conn.m_calls;
  (* Latency by kind: one distribution per exported interface. *)
  let m_latency =
    Sim.Metrics.dist metrics ~sub:Sim.Subsystem.Rpc
      ~help:"reply latency in us (per interface)"
      ("call_latency_us." ^ iface)
  in
  let span =
    Sim.Trace.span_begin tr ~ts:started ~sub:Sim.Subsystem.Rpc ~cat:"call"
      ~args:
        [
          ("iface", Sim.Trace.Str iface);
          ("meth", Sim.Trace.Str meth);
          ("call_id", Sim.Trace.Int call_id);
        ]
      (iface ^ "." ^ meth)
  in
  let p_cell = ref None in
  let finished result =
    let now = Sim.Engine.now engine in
    (match result with
    | Ok _ -> Sim.Metrics.observe m_latency (Sim.Time.to_us_f (Sim.Time.sub now started))
    | Error Timed_out -> Sim.Metrics.incr conn.m_timeouts
    | Error _ -> ());
    let tries = match !p_cell with Some p -> p.tries | None -> 0 in
    Sim.Trace.span_end tr ~ts:now
      ~args:
        [
          ("ok", Sim.Trace.Bool (Result.is_ok result));
          ("tries", Sim.Trace.Int tries);
        ]
      span;
    reply result
  in
  let p = { tries = 0; retry_ev = None; k = finished } in
  p_cell := Some p;
  Hashtbl.replace conn.pendings call_id p;
  let rec attempt () =
    if Hashtbl.mem conn.pendings call_id then begin
      if p.tries >= conn.max_tries then begin
        Hashtbl.remove conn.pendings call_id;
        p.k (Error Timed_out)
      end
      else begin
        p.tries <- p.tries + 1;
        if p.tries > 1 then begin
          conn.retrans <- conn.retrans + 1;
          Sim.Metrics.incr conn.m_retrans
        end;
        conn.sent <- conn.sent + 1;
        Atm.Net.send_frame conn.c_req_vc frame;
        (* Exponential backoff on retransmission. *)
        let backoff = Sim.Time.mul conn.retransmit (1 lsl (p.tries - 1)) in
        p.retry_ev <- Some (Sim.Engine.schedule engine ~delay:backoff attempt)
      end
    end
  in
  attempt ()

let calls_sent conn = conn.sent
let retransmissions conn = conn.retrans
let duplicates_suppressed ep = ep.dups
