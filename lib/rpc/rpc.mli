(** Remote procedure call over the ATM network.

    Modelled on the Pegasus design: ANSA-style request/response layered
    on MSNA over AAL5.  A {!conn} is a pair of virtual circuits.  Calls
    are continuation-passing (the simulator cannot block); delivery is
    at-most-once — duplicate requests caused by retransmission are
    answered from a reply cache, never re-executed. *)

module Wire : module type of Wire
module Bulk : module type of Bulk

type endpoint

type conn

type error =
  | Timed_out  (** all retransmissions exhausted *)
  | No_such_interface of string
  | No_such_method of string
  | Remote_error of string

val pp_error : Format.formatter -> error -> unit

val error_of_payload : string -> error
(** Decode an error-reply payload.  Tagged payloads ("I:iface",
    "M:meth", "E:msg") map to the corresponding constructor; anything
    else — including strings that merely begin with a tag letter — is
    [Remote_error] of the whole string.  Exposed for testing. *)

val endpoint : ?reply_cache_cap:int -> Atm.Net.t -> host:Atm.Net.node_id -> endpoint
(** At most one endpoint per host.  [reply_cache_cap] (default 512)
    bounds the at-most-once reply cache: the oldest cached replies are
    evicted first, so a client retransmitting a very old call may, in
    the worst case, see it re-executed — the standard trade of memory
    against the at-most-once window. *)

val serve :
  endpoint ->
  iface:string ->
  (meth:string -> bytes -> (bytes, string) result) ->
  unit
(** Export an interface.  The handler may also model a compute delay by
    being registered with {!serve_delayed}. *)

val serve_async :
  endpoint ->
  iface:string ->
  (meth:string ->
   bytes ->
   reply:((bytes, string) result -> unit) ->
   unit) ->
  unit
(** Like {!serve}, for handlers that complete asynchronously (e.g. a
    file server whose reads finish when the disk does): call [reply]
    exactly once, at any later simulated time. *)

val serve_flow :
  endpoint ->
  iface:string ->
  (meth:string ->
   flow:int ->
   bytes ->
   reply:((bytes, string) result -> unit) ->
   unit) ->
  unit
(** Like {!serve_async}, but the handler also receives the causal flow
    id carried by the request ({!Sim.Trace.no_flow} when untraced), so
    it can thread the flow into the subsystems it drives — the file
    server passes it down to the PFS log, RAID and disks. *)

val serve_delayed :
  endpoint ->
  iface:string ->
  delay:Sim.Time.t ->
  (meth:string -> bytes -> (bytes, string) result) ->
  unit
(** Like {!serve}, but replies leave [delay] after the request arrives
    (server compute time). *)

val connect :
  Atm.Net.t ->
  client:endpoint ->
  server:endpoint ->
  ?retransmit:Sim.Time.t ->
  ?backoff_cap:Sim.Time.t ->
  ?jitter:float ->
  ?seed:int64 ->
  ?max_tries:int ->
  unit ->
  conn
(** Establish the VC pair.  Retransmission backs off exponentially from
    [retransmit] (default 10 ms), capped at [backoff_cap] (default
    500 ms), each delay scaled by a uniform factor in
    [1 ± jitter] (default 0.1; [0] disables jitter) drawn from a
    deterministic per-connection stream seeded by [seed].  [max_tries]
    (default 4) bounds the attempts before [Timed_out]. *)

val call :
  conn ->
  iface:string ->
  meth:string ->
  bytes ->
  reply:((bytes, error) result -> unit) ->
  unit
(** When flow tracing is on ({!Sim.Trace.flows_on}), every invocation
    is one causal flow named ["rpc:iface.meth"], spanning request
    transit, server execution and reply transit; the id rides the
    frames' cells as simulation metadata (the wire format is
    unchanged). *)

(** {1 Statistics} *)

val calls_sent : conn -> int
val retransmissions : conn -> int
val duplicates_suppressed : endpoint -> int

val reply_cache_size : endpoint -> int
(** Live entries in the bounded reply cache (never exceeds the cap). *)

val in_progress_size : endpoint -> int
(** Calls accepted but not yet answered. *)
