(* Frame format: [kind:u8][seq:u32][payload...] for data on the forward
   VC; [kind:u8][count:u32] for credit grants on the reverse VC. *)

let k_data = 1
let k_credit = 2

type sender = {
  s_engine : Sim.Engine.t;
  s_mtu : int;
  mutable s_credits : int;
  s_backlog : bytes Queue.t;  (* mtu-sized chunks awaiting credit *)
  mutable s_partial : bytes option;  (* trailing short chunk *)
  mutable s_seq : int;
  mutable s_sent_bytes : int;
  mutable s_in_flight : int;
  mutable s_done : (unit -> unit) option;
  mutable s_finished : bool;
  mutable s_data_vc : Atm.Net.vc option;
  mutable s_tx_free : Sim.Time.t;  (* NIC pacing horizon *)
}

type receiver = {
  r_engine : Sim.Engine.t;
  r_consume_bps : int;
  mutable r_free_at : Sim.Time.t;  (* consumer availability horizon *)
  mutable r_delivered : int;
  r_on_data : bytes -> unit;
  mutable r_credit_vc : Atm.Net.vc option;
}

let data_frame ~seq payload =
  let b = Bytes.create (5 + Bytes.length payload) in
  Bytes.set b 0 (Char.chr k_data);
  Atm.Util.put_u32 b 1 seq;
  Bytes.blit payload 0 b 5 (Bytes.length payload);
  b

let credit_frame ~count =
  let b = Bytes.create 5 in
  Bytes.set b 0 (Char.chr k_credit);
  Atm.Util.put_u32 b 1 count;
  b

let rec pump sender =
  match sender.s_data_vc with
  | None -> ()
  | Some vc ->
      if sender.s_credits > 0 && not (Queue.is_empty sender.s_backlog) then begin
        let chunk = Queue.pop sender.s_backlog in
        sender.s_credits <- sender.s_credits - 1;
        sender.s_in_flight <- sender.s_in_flight + 1;
        sender.s_sent_bytes <- sender.s_sent_bytes + Bytes.length chunk;
        let frame = data_frame ~seq:sender.s_seq chunk in
        sender.s_seq <- sender.s_seq + 1;
        (* The NIC clocks frames out at line rate, so a whole window
           never lands on the switch queue at one instant. *)
        let frame_time =
          Sim.Time.mul
            (Atm.Cell.tx_time ~bandwidth_bps:(Atm.Net.vc_bandwidth_bps vc))
            (Atm.Aal5.frame_cells (Bytes.length frame))
        in
        let now = Sim.Engine.now sender.s_engine in
        let at = Sim.Time.max now sender.s_tx_free in
        sender.s_tx_free <- Sim.Time.add at frame_time;
        ignore
          (Sim.Engine.schedule_at sender.s_engine ~at (fun () ->
               Atm.Net.send_frame vc frame));
        pump sender
      end
      else if
        sender.s_finished && sender.s_in_flight = 0
        && Queue.is_empty sender.s_backlog
      then begin
        match sender.s_done with
        | Some f ->
            sender.s_done <- None;
            f ()
        | None -> ()
      end

let receiver_rx receiver sender payload =
  if Bytes.length payload >= 5 && Char.code (Bytes.get payload 0) = k_data then begin
    let body = Bytes.sub payload 5 (Bytes.length payload - 5) in
    (* The consumer drains at its own rate; the credit goes back only
       once this frame's bytes have actually been consumed. *)
    let now = Sim.Engine.now receiver.r_engine in
    let consume_time =
      if receiver.r_consume_bps <= 0 then Sim.Time.zero
      else
        Sim.Time.of_sec_f
          (Float.of_int (Bytes.length body * 8)
          /. Float.of_int receiver.r_consume_bps)
    in
    let start = Sim.Time.max now receiver.r_free_at in
    let finish_at = Sim.Time.add start consume_time in
    receiver.r_free_at <- finish_at;
    ignore
      (Sim.Engine.schedule_at receiver.r_engine ~at:finish_at (fun () ->
           receiver.r_delivered <- receiver.r_delivered + Bytes.length body;
           receiver.r_on_data body;
           match receiver.r_credit_vc with
           | Some vc -> Atm.Net.send_frame vc (credit_frame ~count:1)
           | None -> ()));
    ignore sender
  end

let sender_rx sender payload =
  if Bytes.length payload >= 5 && Char.code (Bytes.get payload 0) = k_credit
  then begin
    let n = Atm.Util.get_u32 payload 1 in
    sender.s_credits <- sender.s_credits + n;
    sender.s_in_flight <- sender.s_in_flight - n;
    pump sender
  end

let establish net ~src ~dst ?(mtu = 8192) ?(window = 8)
    ?(consume_rate_bps = 0) ~on_data () =
  let engine = Atm.Net.engine net in
  let sender =
    {
      s_engine = engine;
      s_mtu = mtu;
      s_credits = window;
      s_backlog = Queue.create ();
      s_partial = None;
      s_seq = 0;
      s_sent_bytes = 0;
      s_in_flight = 0;
      s_done = None;
      s_finished = false;
      s_data_vc = None;
      s_tx_free = Sim.Time.zero;
    }
  in
  let receiver =
    {
      r_engine = engine;
      r_consume_bps = consume_rate_bps;
      r_free_at = Sim.Time.zero;
      r_delivered = 0;
      r_on_data = on_data;
      r_credit_vc = None;
    }
  in
  let data_cell_rx, data_train_rx =
    Atm.Net.frame_rx_pair ~rx:(fun p -> receiver_rx receiver sender p) ()
  in
  let data_vc =
    Atm.Net.open_vc net ~src ~dst ~rx:data_cell_rx ~rx_train:data_train_rx
  in
  let credit_cell_rx, credit_train_rx =
    Atm.Net.frame_rx_pair ~rx:(fun p -> sender_rx sender p) ()
  in
  let credit_vc =
    Atm.Net.open_vc net ~src:dst ~dst:src ~rx:credit_cell_rx
      ~rx_train:credit_train_rx
  in
  sender.s_data_vc <- Some data_vc;
  receiver.r_credit_vc <- Some credit_vc;
  (sender, receiver)

(* Chunk user bytes to the MTU, coalescing the previous partial tail. *)
let send sender data =
  let data =
    match sender.s_partial with
    | Some tail ->
        sender.s_partial <- None;
        Bytes.cat tail data
    | None -> data
  in
  let len = Bytes.length data in
  let full = len / sender.s_mtu in
  for i = 0 to full - 1 do
    Queue.add (Bytes.sub data (i * sender.s_mtu) sender.s_mtu) sender.s_backlog
  done;
  let rest = len - (full * sender.s_mtu) in
  if rest > 0 then
    sender.s_partial <- Some (Bytes.sub data (full * sender.s_mtu) rest);
  pump sender

let finish sender ~on_done =
  (match sender.s_partial with
  | Some tail ->
      sender.s_partial <- None;
      Queue.add tail sender.s_backlog
  | None -> ());
  sender.s_finished <- true;
  sender.s_done <- Some on_done;
  pump sender

let bytes_sent sender = sender.s_sent_bytes
let bytes_delivered receiver = receiver.r_delivered
let frames_in_flight sender = sender.s_in_flight
let credits_available sender = sender.s_credits
