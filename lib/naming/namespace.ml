type entry =
  | Obj of Maillon.t
  | Dir of dir
  | Mount of mount

and dir = (string, entry) Hashtbl.t

and mount = { target : t; via : Relation.t }

and t = { ns_name : string; root : dir; mutable n_lookups : int }

type resolution = {
  maillon : Maillon.t;
  cost : Sim.Time.t;
  components : int;
  mounts_crossed : int;
}

type error =
  | Not_found_at of string
  | Not_a_directory of string
  | Mount_cycle

let pp_error fmt = function
  | Not_found_at c -> Format.fprintf fmt "not found: %s" c
  | Not_a_directory c -> Format.fprintf fmt "not a directory: %s" c
  | Mount_cycle -> Format.pp_print_string fmt "mount cycle"

(* Cost of walking one component within a local directory. *)
let component_cost = Sim.Time.ns 200

(* Namespaces are passive structures with no engine handle, so they
   report into the process-wide default registry. *)
let m_resolutions =
  Sim.Metrics.counter Sim.Metrics.default ~sub:Sim.Subsystem.Naming
    ~help:"successful path resolutions" "namespace.resolutions"

let m_resolve_errors =
  Sim.Metrics.counter Sim.Metrics.default ~sub:Sim.Subsystem.Naming
    ~help:"failed path resolutions" "namespace.resolve_errors"

let m_resolve_cost =
  Sim.Metrics.dist Sim.Metrics.default ~sub:Sim.Subsystem.Naming
    ~help:"modelled cost of successful resolutions in us"
    "namespace.resolve_cost_us"

let create ?(name = "ns") () =
  { ns_name = name; root = Hashtbl.create 16; n_lookups = 0 }

let name t = t.ns_name

let split path =
  String.split_on_char '/' path |> List.filter (fun c -> c <> "")

(* Walk to the parent directory of [path], creating directories. *)
let rec ensure_dir dir = function
  | [] -> dir
  | c :: rest -> begin
      match Hashtbl.find_opt dir c with
      | Some (Dir d) -> ensure_dir d rest
      | Some (Obj _ | Mount _) ->
          invalid_arg ("Namespace: " ^ c ^ " is not a directory")
      | None ->
          let d = Hashtbl.create 8 in
          Hashtbl.replace dir c (Dir d);
          ensure_dir d rest
    end

let parent_and_leaf t path =
  match List.rev (split path) with
  | [] -> invalid_arg "Namespace: empty path"
  | leaf :: rev_dirs -> (ensure_dir t.root (List.rev rev_dirs), leaf)

let bind t ~path maillon =
  let dir, leaf = parent_and_leaf t path in
  (match Hashtbl.find_opt dir leaf with
  | Some (Dir _) -> invalid_arg ("Namespace.bind: directory at " ^ path)
  | Some (Obj _ | Mount _) | None -> ());
  Hashtbl.replace dir leaf (Obj maillon)

let mkdir t ~path = ignore (ensure_dir t.root (split path))

let mount t ~path ~target ~via =
  let dir, leaf = parent_and_leaf t path in
  Hashtbl.replace dir leaf (Mount { target; via })

let unmount t ~path =
  let dir, leaf = parent_and_leaf t path in
  match Hashtbl.find_opt dir leaf with
  | Some (Mount _) -> Hashtbl.remove dir leaf
  | Some (Obj _ | Dir _) | None ->
      invalid_arg ("Namespace.unmount: no mount at " ^ path)

let max_mount_depth = 32

let resolve t path =
  let rec walk ns dir components ~cost ~walked ~mounts ~depth =
    if depth > max_mount_depth then Error Mount_cycle
    else
      match components with
      | [] -> Error (Not_found_at path)
      | c :: rest -> begin
          ns.n_lookups <- ns.n_lookups + 1;
          let cost = Sim.Time.add cost component_cost in
          let walked = walked + 1 in
          match Hashtbl.find_opt dir c with
          | None -> Error (Not_found_at c)
          | Some (Obj m) ->
              if rest = [] then
                Ok { maillon = m; cost; components = walked; mounts_crossed = mounts }
              else Error (Not_a_directory c)
          | Some (Dir d) ->
              if rest = [] then Error (Not_found_at c)
              else walk ns d rest ~cost ~walked ~mounts ~depth
          | Some (Mount m) ->
              if rest = [] then Error (Not_found_at c)
              else begin
                (* One lookup request through the connection carries the
                   whole remaining path, Plan-9 style. *)
                let cost = Sim.Time.add cost (Relation.lookup_cost m.via) in
                walk m.target m.target.root rest ~cost ~walked
                  ~mounts:(mounts + 1) ~depth:(depth + 1)
              end
        end
  in
  let result =
    match split path with
    | [] -> Error (Not_found_at path)
    | components ->
        walk t t.root components ~cost:Sim.Time.zero ~walked:0 ~mounts:0
          ~depth:0
  in
  (match result with
  | Ok r ->
      Sim.Metrics.incr m_resolutions;
      Sim.Metrics.observe m_resolve_cost (Sim.Time.to_us_f r.cost)
  | Error _ -> Sim.Metrics.incr m_resolve_errors);
  result

let readdir t path =
  let rec walk dir = function
    | [] -> Ok (Hashtbl.fold (fun k _ acc -> k :: acc) dir [] |> List.sort compare)
    | c :: rest -> begin
        match Hashtbl.find_opt dir c with
        | Some (Dir d) -> walk d rest
        | Some (Obj _ | Mount _) -> Error (Not_a_directory c)
        | None -> Error (Not_found_at c)
      end
  in
  walk t.root (split path)

let rec copy_dir dir =
  let d = Hashtbl.create (Hashtbl.length dir) in
  Hashtbl.iter
    (fun k v ->
      let v' = match v with Dir sub -> Dir (copy_dir sub) | Obj _ | Mount _ -> v in
      Hashtbl.replace d k v')
    dir;
  d

let fork t ~name = { ns_name = name; root = copy_dir t.root; n_lookups = 0 }

let lookups t = t.n_lookups
