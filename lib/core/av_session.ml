let video_stream_id = 1
let audio_stream_id = 2
let audio_mark_every = 64

type t = {
  engine : Sim.Engine.t;
  camera : Atm.Camera.t;
  audio_src : Atm.Audio.Source.t option;
  audio_sink : Atm.Audio.Sink.t option;
  display : Atm.Display.t;
  video_vci : int;
  playback : Atm.Control.Playback.t;
  mutable running : bool;
}

let create ~from_ ~to_ ?(camera = 0) ?(width = 320) ?(height = 240) ?(fps = 25)
    ?(mode = Atm.Camera.Jpeg { ratio = 8.0 }) ?(release = `Tile_row)
    ?(with_audio = true) ?(window = (64, 64)) () =
  let site = Workstation.site from_ in
  let engine = Site.engine site in
  let net = Site.net site in
  let display =
    match Workstation.display to_ with
    | Some d -> d
    | None -> invalid_arg "Av_session: receiver has no display"
  in
  let display_host =
    match Workstation.display_host to_ with
    | Some h -> h
    | None -> assert false
  in
  (* Data path: camera device straight to the display device. *)
  let video_vc =
    Atm.Net.open_vc net
      ~src:(Workstation.camera_host from_ camera)
      ~dst:display_host
      ~rx:(fun cell -> Atm.Display.cell_rx display cell)
      ~rx_train:(fun train -> Atm.Display.train_rx display train)
  in
  let video_vci = Atm.Net.vc_dst_vci video_vc in
  let wx, wy = window in
  Atm.Display.add_window display ~vci:video_vci ~x:wx ~y:wy ~width ~height;
  let cam = Atm.Camera.create engine ~vc:video_vc ~width ~height ~fps ~mode ~release () in
  (* Control path: per-device control streams to the sender's manager,
     merged there, one combined stream to the receiver's play-back
     controller. *)
  let playback = Atm.Control.Playback.create engine () in
  let merged_vc =
    Atm.Net.open_vc net ~src:(Workstation.cpu from_) ~dst:(Workstation.cpu to_)
      ~rx:(fun cell -> Atm.Control.Playback.control_rx playback cell)
  in
  let merger = Atm.Control.Merger.create ~out:merged_vc () in
  let camera_ctl_vc =
    Atm.Net.open_vc net
      ~src:(Workstation.camera_host from_ camera)
      ~dst:(Workstation.cpu from_)
      ~rx:(Atm.Control.Merger.rx merger)
  in
  Atm.Camera.on_frame cam (fun ~frame ~captured_at ->
      Atm.Net.send_frame camera_ctl_vc
        (Atm.Control.marshal
           (Atm.Control.Sync
              { stream = video_stream_id; unit_id = frame; stamp = captured_at })));
  Atm.Display.on_blit display (fun ~vci packet ->
      if vci = video_vci then
        Atm.Control.Playback.data_event playback ~stream:video_stream_id
          ~unit_id:packet.Atm.Tile.frame);
  let audio_src, audio_sink =
    if not with_audio then (None, None)
    else begin
      match (Workstation.audio_host from_, Workstation.audio_host to_) with
      | Some src_host, Some dst_host ->
          let sink = Atm.Audio.Sink.create engine () in
          let audio_vc =
            Atm.Net.open_vc net ~src:src_host ~dst:dst_host ~rx:(fun cell ->
                Atm.Audio.Sink.cell_rx sink cell)
          in
          let src = Atm.Audio.Source.create engine ~vc:audio_vc () in
          let audio_ctl_vc =
            Atm.Net.open_vc net ~src:src_host ~dst:(Workstation.cpu from_)
              ~rx:(Atm.Control.Merger.rx merger)
          in
          Atm.Audio.Source.on_mark src ~every:audio_mark_every
            (fun ~seq ~stamp ->
              Atm.Net.send_frame audio_ctl_vc
                (Atm.Control.marshal
                   (Atm.Control.Sync
                      { stream = audio_stream_id; unit_id = seq; stamp })));
          Atm.Audio.Sink.on_playout sink (fun ~seq ~stamp:_ ->
              if seq mod audio_mark_every = 0 then
                Atm.Control.Playback.data_event playback
                  ~stream:audio_stream_id ~unit_id:seq);
          (Some src, Some sink)
      | _ -> invalid_arg "Av_session: audio requested but a DSP node is missing"
    end
  in
  {
    engine;
    camera = cam;
    audio_src;
    audio_sink;
    display;
    video_vci;
    playback;
    running = false;
  }

let start t =
  if not t.running then begin
    t.running <- true;
    Atm.Camera.start t.camera;
    match t.audio_src with
    | Some src -> Atm.Audio.Source.start src
    | None -> ()
  end

let stop t =
  if t.running then begin
    t.running <- false;
    Atm.Camera.stop t.camera;
    match t.audio_src with
    | Some src -> Atm.Audio.Source.stop src
    | None -> ()
  end

let camera t = t.camera
let display_vci t = t.video_vci

let video_staging_latency_us t =
  Atm.Display.staging_latency_us t.display ~vci:t.video_vci

let frames_shown t = Atm.Display.frames_completed t.display ~vci:t.video_vci

let audio_jitter_us t =
  match t.audio_sink with
  | Some sink -> Atm.Audio.Sink.jitter_us sink
  | None -> 0.0

let audio_late_cells t =
  match t.audio_sink with
  | Some sink -> Atm.Audio.Sink.late_cells sink
  | None -> 0

let av_sync_skew_us t =
  Atm.Control.Playback.skew_us t.playback ~a:video_stream_id ~b:audio_stream_id

let playback t = t.playback
