type t = {
  fs_name : string;
  fs_site : Site.t;
  host : Atm.Net.node_id;
  rpc_ep : Rpc.endpoint;
  raid : Pfs.Raid.t;
  log : Pfs.Log.t;
  streams : Pfs.Stream.t;
  wserver : Pfs.Client_agent.Server.t;
  ns : Naming.Namespace.t;
}

let encode_u32s ints =
  let b = Bytes.create (4 * List.length ints) in
  List.iteri (fun i v -> Atm.Util.put_u32 b (4 * i) v) ints;
  b

let decode_u32 b i = Atm.Util.get_u32 b (4 * i)

let serve_pfs t =
  (* The request's causal flow (allocated by Rpc.call when flow tracing
     is on) is threaded into the log so the audit can attribute a call's
     latency across log, RAID and disk stages. *)
  Rpc.serve_flow t.rpc_ep ~iface:"pfs" (fun ~meth ~flow payload ~reply ->
      match meth with
      | "create" ->
          let fid = Pfs.Log.create_file t.log () in
          reply (Ok (encode_u32s [ fid ]))
      | "write" ->
          let fid = decode_u32 payload 0
          and off = decode_u32 payload 1
          and len = decode_u32 payload 2 in
          let data =
            if Bytes.length payload > 12 then
              Some (Bytes.sub payload 12 (Bytes.length payload - 12))
            else None
          in
          Pfs.Log.write t.log fid ~off ?data ~flow ~len (function
            | Ok () -> reply (Ok Bytes.empty)
            | Error `No_such_file -> reply (Error "no such file")
            | Error `Lost -> reply (Error "storage lost"))
      | "read" ->
          let fid = decode_u32 payload 0
          and off = decode_u32 payload 1
          and len = decode_u32 payload 2 in
          Pfs.Log.read_flow t.log fid ~off ~len ~flow ~k:(function
            | Ok (Some data) -> reply (Ok data)
            | Ok None -> reply (Ok (Bytes.make len '\000'))
            | Error `No_such_file -> reply (Error "no such file")
            | Error `Lost -> reply (Error "storage lost"))
      | "delete" ->
          let fid = decode_u32 payload 0 in
          Pfs.Log.delete t.log fid ~k:(function
            | Ok () -> reply (Ok Bytes.empty)
            | Error `No_such_file -> reply (Error "no such file")
            | Error `Lost -> reply (Error "storage lost"))
      | "size" ->
          let fid = decode_u32 payload 0 in
          (try reply (Ok (encode_u32s [ Pfs.Log.file_size t.log fid ]))
           with Not_found -> reply (Error "no such file"))
      | other -> reply (Error ("unknown method " ^ other)))

let create site ~name ?(segment_bytes = 1 lsl 20) ?(store_data = false)
    ?(write_delay = Sim.Time.sec 30) () =
  let engine = Site.engine site in
  let host = Site.add_host site ~name in
  let raid = Pfs.Raid.create engine ~store_data ~segment_bytes () in
  let log = Pfs.Log.create engine ~raid () in
  let streams = Pfs.Stream.create engine ~log () in
  let wserver = Pfs.Client_agent.Server.create engine ~log ~write_delay () in
  let ns = Naming.Namespace.create ~name () in
  let t =
    {
      fs_name = name;
      fs_site = site;
      host;
      rpc_ep = Rpc.endpoint (Site.net site) ~host;
      raid;
      log;
      streams;
      wserver;
      ns;
    }
  in
  serve_pfs t;
  let ctl =
    Naming.Maillon.of_iface ~reference:name
      (Naming.Maillon.iface
         [
           ("kind", fun _ -> Bytes.of_string "fileserver");
           ( "segments",
             fun _ -> Bytes.of_string (string_of_int (Pfs.Log.total_segments log))
           );
         ])
  in
  Naming.Namespace.bind ns ~path:"ctl" ctl;
  Site.publish site ~path:("fs/" ^ name) ctl;
  t

let name t = t.fs_name
let host t = t.host
let rpc t = t.rpc_ep
let log t = t.log
let raid t = t.raid
let streams t = t.streams
let write_server t = t.wserver
let namespace t = t.ns

let connect_client t ws =
  let conn =
    Rpc.connect (Site.net t.fs_site) ~client:(Workstation.rpc ws)
      ~server:t.rpc_ep ()
  in
  let agent =
    Pfs.Client_agent.Agent.create (Site.engine t.fs_site) ~server:t.wserver ()
  in
  (conn, agent)

type recorder = {
  r_owner : t;
  recording : Pfs.Stream.recording;
  data_reassembler : Atm.Aal5.Reassembler.t;
  ctl_reassembler : Atm.Aal5.Reassembler.t;
  mutable bytes : int;
}

let start_recorder t ~rate_bps =
  match Pfs.Stream.start_recording t.streams ~rate_bps with
  | Error `Admission_denied -> Error `Admission_denied
  | Ok recording ->
      Ok
        {
          r_owner = t;
          recording;
          data_reassembler = Atm.Aal5.Reassembler.create ();
          ctl_reassembler = Atm.Aal5.Reassembler.create ();
          bytes = 0;
        }

let recorder_data_rx r cell =
  match Atm.Aal5.Reassembler.push r.data_reassembler cell with
  | Some (Ok payload) ->
      let len = Bytes.length payload in
      let data =
        if Pfs.Raid.stores_data (Pfs.Log.raid (log r.r_owner)) then Some payload
        else None
      in
      r.bytes <- r.bytes + len;
      Pfs.Stream.write_chunk r.recording ?data ~len (fun _ -> ())
  | Some (Error _) | None -> ()

let recorder_control_rx r cell =
  match Atm.Aal5.Reassembler.push r.ctl_reassembler cell with
  | Some (Ok payload) -> begin
      match Atm.Control.unmarshal payload with
      | Some (Atm.Control.Sync { stamp; _ })
      | Some (Atm.Control.Index_mark { stamp; _ }) ->
          Pfs.Stream.index_mark r.recording ~stamp
      | Some (Atm.Control.Start | Atm.Control.Stop) | None -> ()
    end
  | Some (Error _) | None -> ()

let recorder_fid r = Pfs.Stream.recording_fid r.recording
let recorder_bytes r = r.bytes

let finish_recorder t r =
  Pfs.Stream.finish_recording t.streams r.recording;
  (* Make the recording nameable. *)
  let fid = recorder_fid r in
  Naming.Namespace.bind t.ns
    ~path:(Printf.sprintf "media/rec%d" fid)
    (Naming.Maillon.of_iface ~reference:(Printf.sprintf "rec%d" fid)
       (Naming.Maillon.iface
          [ ("fid", fun _ -> Bytes.of_string (string_of_int fid)) ]))
