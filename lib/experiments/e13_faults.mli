(** E13 — graceful degradation under deterministic fault injection.

    A seeded {!Sim.Fault} plan drops cells, takes links down and fails
    disks while three workloads run: an open-loop video source (frame
    delivery must fall monotonically with the cell-loss rate), an RPC
    echo client (retransmission holds goodput through loss and a link
    outage), and a RAID read sweep (parity serves reads through one
    disk failure; only two failures lose data).  Fixed seeds make two
    runs of the experiment byte-identical. *)

val run : ?quick:bool -> unit -> Table.t
