(** E13 — graceful degradation under deterministic fault injection.

    A seeded {!Sim.Fault} plan drops cells, takes links down and fails
    disks while three workloads run: an open-loop video source (frame
    delivery must fall monotonically with the cell-loss rate), an RPC
    echo client (retransmission holds goodput through loss and a link
    outage), and a RAID read sweep (parity serves reads through one
    disk failure; only two failures lose data).  Fixed seeds make two
    runs of the experiment byte-identical.

    The ten rows are independent closed worlds, so [domains] runs them
    on that many OCaml domains through {!Sim.Par.map} — the table is
    byte-identical at every domain count (and [domains] is silently 1
    on OCaml 4.14). *)

val run : ?quick:bool -> ?domains:int -> unit -> Table.t
