(** Deterministic rigs with {!Sim.Monitor} SLO monitors attached across
    the stack — the scenarios behind [pegasus_cli health].

    Each scenario builds a rig, registers objectives against its live
    instruments, runs to [duration] in simulated time and returns the
    merged health report.  Disruptions (wire-loss episodes) are scripted
    at absolute instants from seeded streams, so reports are
    byte-identical across runs — and, for {!fabric}, across [domains]. *)

val default_duration : Sim.Time.t

val video : ?duration:Sim.Time.t -> unit -> Sim.Monitor.report
(** The E1 camera/switch/display rig under healthy load: staging p99,
    link queue-delay p99, cell-loss ratio and engine queue depth all
    stay Ok. *)

val congest : ?duration:Sim.Time.t -> unit -> Sim.Monitor.report
(** The video rig with 5% wire loss injected from 100 ms to 220 ms: the
    cell-loss objective goes Pending at 120 ms, Firing at 140 ms and
    resolves at 300 ms. *)

val pfs : ?duration:Sim.Time.t -> unit -> Sim.Monitor.report
(** The Pegasus file service over RPC plus a replicated directory on
    loopback shards under a flash-crowd read load; heavy loss from
    150 ms to 280 ms fires (and then resolves) the RPC retransmission
    objective while directory latency, replica lag and kernel deadline
    objectives stay healthy. *)

val fabric :
  ?duration:Sim.Time.t -> ?domains:int -> unit -> Sim.Monitor.report
(** A 4-site sharded ring with one monitor per shard, merged in shard
    order; 10% loss at site 0 from 30 ms to 70 ms fires and resolves
    that site's cell-loss objective.  Byte-identical across [domains]
    (default 1). *)

val names : string list
(** The scenario names accepted by {!run}, in display order. *)

val run :
  ?duration:Sim.Time.t -> ?domains:int -> string -> Sim.Monitor.report
(** Dispatch by name ([domains] only affects ["fabric"]).  Raises
    [Invalid_argument] on an unknown name. *)
