(** E14 — city-scale fabric: admission control under a load sweep.

    A fixed Clos fabric ({!Atm.Net.clos}) takes 10 to 10,000 offered
    stream contracts mixed over video/audio/RPC; {!Atm.Qos_mgr} admits,
    degrades or rejects each, churn departs every fifth contract, and
    renegotiation promotes degraded contracts into the freed capacity.
    A deterministic sample of survivors carries flow-traced traffic so
    {!Sim.Audit} yields per-class jitter and a Jain fairness index.

    The sweep rows are independent closed worlds: [domains] fans them
    over OCaml domains through {!Sim.Par.map} with byte-identical
    output at every domain count. *)

val run : ?quick:bool -> ?domains:int -> ?seed:int -> unit -> Table.t
