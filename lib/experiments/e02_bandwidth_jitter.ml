(* Part 1: long-run video stream rates for raw vs JPEG cameras.
   Part 2: audio jitter and dropouts with and without bursty cross
   traffic sharing the path, for two play-out buffer sizes. *)

let video_rate mode =
  let e = Sim.Engine.create () in
  let net = Atm.Net.create e in
  let a = Atm.Net.add_host net ~name:"a" in
  let b = Atm.Net.add_host net ~name:"b" in
  Atm.Net.connect net a b ~bandwidth_bps:155_000_000;
  let vc = Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun _ -> ()) in
  let camera =
    Atm.Camera.create e ~vc ~width:640 ~height:480 ~fps:25 ~mode
      ~pace_bps:120_000_000 ()
  in
  Atm.Camera.data_rate_bps camera /. 8.0 /. 1e6

let audio_run ?reserve_bps ~loaded ~playout ~duration () =
  let e = Sim.Engine.create () in
  let net = Atm.Net.create e in
  let sw = Atm.Net.add_switch net ~name:"sw" ~ports:4 in
  let a = Atm.Net.add_host net ~name:"a" in
  let b = Atm.Net.add_host net ~name:"b" in
  Atm.Net.connect net a sw;
  Atm.Net.connect net b sw;
  let sink = Atm.Audio.Sink.create e ~playout_delay:playout () in
  let vc =
    Atm.Net.open_vc ?reserve_bps net ~src:a ~dst:b ~rx:(fun c ->
        Atm.Audio.Sink.cell_rx sink c)
  in
  let src = Atm.Audio.Source.create e ~vc () in
  let cross =
    if loaded then begin
      let cross_vc = Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun _ -> ()) in
      let rng = Sim.Rng.create ~seed:99L () in
      Some
        (Atm.Traffic.on_off e ~vc:cross_vc ~peak_bps:300_000_000
           ~mean_on:(Sim.Time.us 500) ~mean_off:(Sim.Time.ms 2) ~rng)
    end
    else None
  in
  (match cross with Some c -> Atm.Traffic.start c | None -> ());
  Atm.Audio.Source.start src;
  Sim.Engine.run e ~until:duration;
  Atm.Audio.Source.stop src;
  (match cross with Some c -> Atm.Traffic.stop c | None -> ());
  ( Atm.Audio.Sink.jitter_us sink,
    Atm.Audio.Sink.late_cells sink,
    Atm.Audio.Sink.cells_received sink )

let audit_scenario ?(duration = Sim.Time.ms 400) e =
  (* The loaded-path topology of the audio rows, with the traced video
     stream standing where the audio source did: one switch shared with
     bursty 300 Mbit/s-peak cross traffic, so the audit's jitter and
     per-hop spread show what the cross load does to a stream. *)
  let net = Atm.Net.create e in
  let sw = Atm.Net.add_switch net ~name:"sw" ~ports:4 in
  let a = Atm.Net.add_host net ~name:"a" in
  let b = Atm.Net.add_host net ~name:"b" in
  Atm.Net.connect net a sw;
  Atm.Net.connect net b sw;
  let display = Atm.Display.create e () in
  let vc =
    Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun c ->
        Atm.Display.cell_rx display c)
  in
  let vci = Atm.Net.vc_dst_vci vc in
  let width = 640 and height = 480 in
  Atm.Display.add_window display ~vci ~x:0 ~y:0 ~width ~height;
  let camera =
    Atm.Camera.create e ~vc ~width ~height ~fps:25
      ~mode:(Atm.Camera.Jpeg { ratio = 8.0 })
      ()
  in
  let cross_vc = Atm.Net.open_vc net ~src:a ~dst:b ~rx:(fun _ -> ()) in
  let rng = Sim.Rng.create ~seed:99L () in
  let cross =
    Atm.Traffic.on_off e ~vc:cross_vc ~peak_bps:300_000_000
      ~mean_on:(Sim.Time.us 500) ~mean_off:(Sim.Time.ms 2) ~rng
  in
  Atm.Traffic.start cross;
  Atm.Camera.start camera;
  Sim.Engine.run e ~until:duration;
  Atm.Traffic.stop cross

let run ?(quick = false) () =
  let duration = if quick then Sim.Time.ms 300 else Sim.Time.sec 2 in
  let raw = video_rate Atm.Camera.Raw in
  let jpeg = video_rate (Atm.Camera.Jpeg { ratio = 8.0 }) in
  let audio_row ?reserve_bps label ~loaded ~playout =
    let jitter, late, received =
      audio_run ?reserve_bps ~loaded ~playout ~duration ()
    in
    [
      label;
      Printf.sprintf "%.3f" (44100.0 *. 2.0 *. 2.0 /. 1e6);
      Printf.sprintf "%.1fus" jitter;
      Printf.sprintf "%d/%d" late received;
    ]
  in
  let rows =
    [
      [ "video, raw 640x480@25"; Table.cell_f raw; "-"; "-" ];
      [ "video, JPEG 8:1 640x480@25"; Table.cell_f jpeg; "-"; "-" ];
      audio_row "audio, idle net, 2ms buffer" ~loaded:false
        ~playout:(Sim.Time.ms 2);
      audio_row "audio, bursty load, 0.2ms buffer" ~loaded:true
        ~playout:(Sim.Time.us 200);
      audio_row "audio, bursty load, 2ms buffer" ~loaded:true
        ~playout:(Sim.Time.ms 2);
      audio_row "audio, bursty load, 0.2ms buffer, reserved VC" ~loaded:true
        ~playout:(Sim.Time.us 200) ~reserve_bps:1_500_000;
    ]
  in
  Table.make ~id:"E2" ~title:"Stream bandwidths; audio jitter sensitivity"
    ~claim:
      "With JPEG a video stream requires no more than a megabyte per second; \
       audio has modest bandwidth but is much more susceptible to jitter."
    ~columns:[ "stream"; "MB/s"; "delay jitter"; "late cells" ]
    ~notes:
      [
        "Audio is 44.1 kHz 16-bit stereo packed into timestamped cells. Under \
         bursty 300 Mbit/s-peak cross traffic the network delay jitters by tens of \
         microseconds; a play-out buffer shorter than that jitter turns it \
         into audible dropouts (late cells), which is why audio, not video, \
         dictates the latency discipline.";
        "The last row reserves bandwidth for the audio VC at signalling \
         time: its cells are forwarded with priority, so even the short \
         buffer survives the load — the latency guarantee ATM signalling \
         can provide.";
      ]
    rows
