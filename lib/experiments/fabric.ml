(* Sharded multi-site fabric: the parallel-simulation showcase rig.

   The model is a metropolitan fabric of [sites], each a campus ATM
   switch with camera hosts streaming fixed-rate video to a local
   display over 10 Gbit/s links, joined in a ring by long-haul trunks
   whose propagation delay dwarfs anything on campus.  Each site is one
   {!Sim.Shard} shard with a private engine; every [cross_every]-th
   frame of stream 0 is also forwarded to the next site over the trunk,
   crossing shards through {!Sim.Shard.post} with the trunk delay.

   The trunk delay is not invented here: the topology is first built as
   a single-net blueprint, {!Atm.Net.partition} splits it per switch
   neighbourhood, and {!Atm.Net.cut_lookahead} reports the minimum
   propagation delay across the cut — which becomes the shard runner's
   lookahead.

   Every arrival folds into a per-site digest, so byte-equality of the
   output table means event-order equality of the whole run: the CI
   determinism job diffs this table across --domains 1/2/4, and the
   differential property test does the same across seeds. *)

type params = {
  sites : int;
  streams_per_site : int;
  frame_bytes : int;
  fps : int;
  cross_every : int;  (* every k-th frame of stream 0 goes to the next site *)
  trunk_prop : Sim.Time.t;  (* inter-site propagation = shard lookahead *)
  duration : Sim.Time.t;
  seed : int;
}

let default_params ~quick =
  {
    sites = 8;
    streams_per_site = (if quick then 12 else 48);
    frame_bytes = 8_192;
    fps = (if quick then 100 else 250);
    cross_every = 4;
    trunk_prop = Sim.Time.ms 2;
    duration = (if quick then Sim.Time.ms 120 else Sim.Time.ms 400);
    seed = 1;
  }

type outcome = {
  p : params;
  local_frames : int array;  (* per site *)
  remote_frames : int array;
  digests : int array;  (* per-site fold over (arrival, stream, origin) *)
  epochs : int;
  messages : int;
  overflows : int;
  lookahead : Sim.Time.t;
}

(* One site's mutable receive-side state. *)
type site = {
  mutable s_local : int;
  mutable s_remote : int;
  mutable s_digest : int;
}

let fold_digest d ~ns ~stream ~origin =
  (* A simple deterministic mixing fold; any reordering or retiming of
     arrivals changes the final value. *)
  let d = (d * 1000003) + ns in
  let d = (d * 1000003) + (stream * 31) + origin in
  d land max_int

(* The blueprint: the whole fabric as one (never-run) net, used to
   derive the partition and its lookahead. *)
let blueprint p =
  let e =
    Sim.Engine.create
      ~trace:(Sim.Trace.create ~enabled:false ())
      ~metrics:(Sim.Metrics.create ()) ()
  in
  let net = Atm.Net.create e in
  let sws =
    Array.init p.sites (fun i ->
        Atm.Net.add_switch net ~name:(Printf.sprintf "sw%d" i)
          ~ports:(p.sites + 4))
  in
  for i = 0 to p.sites - 1 do
    let cam = Atm.Net.add_host net ~name:(Printf.sprintf "cam%d" i) in
    let disp = Atm.Net.add_host net ~name:(Printf.sprintf "disp%d" i) in
    let gw = Atm.Net.add_host net ~name:(Printf.sprintf "gw%d" i) in
    Atm.Net.connect net ~bandwidth_bps:10_000_000_000 cam sws.(i);
    Atm.Net.connect net ~bandwidth_bps:10_000_000_000 disp sws.(i);
    Atm.Net.connect net ~bandwidth_bps:10_000_000_000 gw sws.(i)
  done;
  if p.sites > 1 then
    for i = 0 to p.sites - 1 do
      Atm.Net.connect net ~bandwidth_bps:2_400_000_000 ~prop:p.trunk_prop
        sws.(i)
        sws.((i + 1) mod p.sites)
    done;
  let assign = Atm.Net.partition net ~parts:p.sites in
  let lookahead =
    match Atm.Net.cut_lookahead net ~assign with
    | Some l -> l
    | None -> p.trunk_prop  (* single site: nothing crosses the cut *)
  in
  (assign, lookahead)

let execute ?(domains = 1) p =
  if p.sites < 1 then invalid_arg "Fabric: sites < 1";
  let _assign, lookahead = blueprint p in
  let shard = Sim.Shard.create ~lookahead ~shards:p.sites () in
  let states = Array.init p.sites (fun _ -> { s_local = 0; s_remote = 0; s_digest = 0 }) in
  let period_ns = 1_000_000_000 / p.fps in
  let payload = Bytes.make p.frame_bytes 'x' in
  (* Remote-ingress VC per site, filled in during the site builds below;
     the ring means site i posts into site (i+1) mod sites. *)
  let ingress = Array.make p.sites None in
  let sites_built =
    Array.init p.sites (fun i ->
        let e = Sim.Shard.engine shard i in
        let net = Atm.Net.create e in
        let sw = Atm.Net.add_switch net ~name:"sw" ~ports:8 in
        let cam = Atm.Net.add_host net ~name:"cam" in
        let disp = Atm.Net.add_host net ~name:"disp" in
        let gw = Atm.Net.add_host net ~name:"gw" in
        let q = Atm.Aal5.frame_cells p.frame_bytes + 64 in
        Atm.Net.connect net ~bandwidth_bps:10_000_000_000 ~queue_cells:q cam sw;
        Atm.Net.connect net ~bandwidth_bps:10_000_000_000 ~queue_cells:q disp
          sw;
        Atm.Net.connect net ~bandwidth_bps:10_000_000_000 ~queue_cells:q gw sw;
        let st = states.(i) in
        let vcs =
          Array.init p.streams_per_site (fun s ->
              let cell_rx, train_rx =
                Atm.Net.frame_rx_pair
                  ~rx:(fun _ ->
                    st.s_local <- st.s_local + 1;
                    st.s_digest <-
                      fold_digest st.s_digest
                        ~ns:(Sim.Time.to_ns (Sim.Engine.now e))
                        ~stream:s ~origin:i)
                  ()
              in
              Atm.Net.open_vc net ~src:cam ~dst:disp ~rx:cell_rx
                ~rx_train:train_rx)
        in
        let cell_rx, train_rx =
          Atm.Net.frame_rx_pair
            ~rx:(fun _ ->
              st.s_remote <- st.s_remote + 1;
              st.s_digest <-
                fold_digest st.s_digest
                  ~ns:(Sim.Time.to_ns (Sim.Engine.now e))
                  ~stream:(-1)
                  ~origin:((i + p.sites - 1) mod p.sites))
            ()
        in
        ingress.(i) <-
          Some
            (Atm.Net.open_vc net ~src:gw ~dst:disp ~rx:cell_rx
               ~rx_train:train_rx);
        (e, vcs))
  in
  (* Sources: every stream paces frames at [fps], staggered by a
     seed-mixed deterministic phase so sites do not fire in lockstep. *)
  Array.iteri
    (fun i (e, vcs) ->
      Array.iteri
        (fun s vc ->
          let phase =
            ((p.seed * 1_000_003) + (i * 131_071) + (s * 7_919))
            mod period_ns
          in
          let frame = ref 0 in
          let rec tick () =
            Atm.Net.send_frame vc payload;
            (if s = 0 && !frame mod p.cross_every = 0 && p.sites > 1 then
               let dst = (i + 1) mod p.sites in
               let at = Sim.Time.add (Sim.Engine.now e) p.trunk_prop in
               let data = Bytes.copy payload in
               Sim.Shard.post shard ~src:i ~dst ~at (fun () ->
                   match ingress.(dst) with
                   | Some gvc -> Atm.Net.send_frame gvc data
                   | None -> assert false));
            incr frame;
            ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ns period_ns) tick)
          in
          ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ns phase) tick))
        vcs)
    sites_built;
  Sim.Shard.run ~domains ~until:p.duration shard;
  {
    p;
    local_frames = Array.map (fun s -> s.s_local) states;
    remote_frames = Array.map (fun s -> s.s_remote) states;
    digests = Array.map (fun s -> s.s_digest) states;
    epochs = Sim.Shard.epochs shard;
    messages = Sim.Shard.messages shard;
    overflows = Sim.Shard.overflows shard;
    lookahead = Sim.Shard.lookahead shard;
  }

let run ?(quick = false) ?(domains = 1) ?sites ?seed () =
  let p = default_params ~quick in
  let p = match sites with Some s -> { p with sites = s } | None -> p in
  let p = match seed with Some s -> { p with seed = s } | None -> p in
  let o = execute ~domains p in
  let rows =
    List.init p.sites (fun i ->
        [
          Printf.sprintf "site %d" i;
          Printf.sprintf "%d local" o.local_frames.(i);
          Printf.sprintf "%d via trunk" o.remote_frames.(i);
          Printf.sprintf "%016x" o.digests.(i);
        ])
  in
  let total_frames =
    Array.fold_left ( + ) 0 o.local_frames
    + Array.fold_left ( + ) 0 o.remote_frames
  in
  Table.make ~id:"PAR"
    ~title:"Sharded fabric: conservative parallel simulation"
    ~claim:
      "A multi-site fabric partitioned per switch runs on any number of \
       domains with byte-identical results: trunk propagation delay is the \
       conservative lookahead, cross-site frames travel through bounded \
       mailboxes, and same-instant ties break on (site, sequence)."
    ~columns:[ "shard"; "frames delivered"; "remote frames"; "arrival digest" ]
    ~notes:
      [
        Printf.sprintf
          "%d sites x %d streams of %d B frames at %d fps for %.0f ms; \
           seed %d."
          p.sites p.streams_per_site p.frame_bytes p.fps
          (Sim.Time.to_ms_f p.duration)
          p.seed;
        Printf.sprintf
          "%d frames total; %d epochs, %d cross-shard messages, %d mailbox \
           spills; lookahead %.1f us (= trunk propagation, from \
           Net.cut_lookahead)."
          total_frames o.epochs o.messages o.overflows
          (Sim.Time.to_us_f o.lookahead);
        "The digest folds every arrival instant: equality of this table \
         across --domains values is event-order equality of the runs.";
      ]
    rows
