(** Sharded multi-site fabric — the conservative-parallel-simulation
    showcase rig behind [pegasus_cli parallel] and the BENCH_parallel
    benchmark.

    [sites] campus networks (switch + camera/display/gateway hosts, 10
    Gbit/s links) are joined in a ring of long-haul trunks; each site is
    one {!Sim.Shard} shard, the trunk propagation delay is the
    lookahead (derived through {!Atm.Net.partition} and
    {!Atm.Net.cut_lookahead} on a single-net blueprint of the same
    topology), and cross-site frames travel through {!Sim.Shard.post}.
    Every arrival folds into a per-site digest, so byte-equality of two
    outputs is event-order equality of the runs — the property the CI
    determinism job checks across --domains 1/2/4. *)

type params = {
  sites : int;
  streams_per_site : int;
  frame_bytes : int;
  fps : int;
  cross_every : int;
  trunk_prop : Sim.Time.t;
  duration : Sim.Time.t;
  seed : int;
}

val default_params : quick:bool -> params

type outcome = {
  p : params;
  local_frames : int array;
  remote_frames : int array;
  digests : int array;
  epochs : int;
  messages : int;
  overflows : int;
  lookahead : Sim.Time.t;
}

val execute : ?domains:int -> params -> outcome
(** Build and run the fabric on [domains] workers (default 1).  The
    outcome is independent of [domains]; only wall-clock time varies. *)

val run :
  ?quick:bool -> ?domains:int -> ?sites:int -> ?seed:int -> unit -> Table.t
(** The CLI entry: run with default parameters and render the result
    (per-site frame counts and digests, epoch/message statistics). *)
