(* E14: city-scale fabric — the QoS manager exercised at scale.

   A fixed leaf-spine Clos fabric (4 spines, 8 leaves, 8 hosts per
   leaf; 100 Mbit/s host links, 1 Gbit/s trunks) takes an offered load
   swept from 10 to 10,000 concurrent stream contracts, mixed evenly
   over the three classes (video 6 Mbit/s, audio 768 kbit/s, RPC
   128 kbit/s).  {!Atm.Qos_mgr} admits each at full rate when any of
   the four spine crossings has capacity, degrades it down its class
   ladder when only a lower tier fits, and rejects it otherwise.  Every
   fifth admitted contract then departs (churn), and three review
   passes renegotiate waiting degraded contracts upward into the freed
   capacity.

   A deterministic sample of the surviving contracts then carries real
   traffic — frames paced at each contract's granted rate with causal
   flow tracing on — and {!Sim.Audit} turns the capture into per-class
   end-to-end jitter plus a Jain fairness index over the video
   streams' delivered frames (1.0 when every sampled video stream got
   the same service; lower when degradation split the class).

   Each sweep row is an independent closed world with private trace
   and metrics sinks, so the rows fan out over OCaml domains through
   {!Sim.Par.map} with byte-identical output at every domain count.

   This sweep only works because signalling is leak-free: a rejected
   request must leave no reservation, route or VCI behind (see the
   rollback invariant in DESIGN.md section 10), and 10k open/close
   cycles must reuse VCIs rather than grow per-host state without
   bound. *)

type spec = {
  sp_class : Atm.Qos_mgr.stream_class;
  sp_bps : int;
  sp_frame_bytes : int;
}

let specs =
  [|
    { sp_class = Atm.Qos_mgr.Video; sp_bps = 6_000_000; sp_frame_bytes = 8_192 };
    { sp_class = Atm.Qos_mgr.Audio; sp_bps = 768_000; sp_frame_bytes = 320 };
    { sp_class = Atm.Qos_mgr.Rpc; sp_bps = 128_000; sp_frame_bytes = 256 };
  |]

let spines = 4
let leaves = 8
let hosts_per_leaf = 8
let churn_every = 5
let review_rounds = 3

(* Jain's fairness index: (sum x)^2 / (n * sum x^2); 1.0 = equal. *)
let jain = function
  | [] -> None
  | xs ->
      let n = float_of_int (List.length xs) in
      let s = List.fold_left ( +. ) 0.0 xs in
      let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
      if s2 = 0.0 then Some 1.0 else Some (s *. s /. (n *. s2))

type row_result = {
  rr_offered : int;
  rr_accepted : int;
  rr_degraded : int;
  rr_rejected : int;
  rr_upgraded : int;
  rr_jitter_us : (string * float option) list;  (* per class, mean of means *)
  rr_video_fairness : float option;
}

let row ~quick ~seed ~offered () =
  let tr = Sim.Trace.create ~unbounded:true ~enabled:true () in
  Sim.Trace.set_flows tr true;
  Sim.Trace.set_cell_detail tr false;
  let e = Sim.Engine.create ~trace:tr ~metrics:(Sim.Metrics.create ()) () in
  let net = Atm.Net.create e in
  let fabric = Atm.Net.clos net ~spines ~leaves ~hosts_per_leaf () in
  let hosts = fabric.Atm.Net.cl_hosts in
  let nh = Array.length hosts in
  let qm = Atm.Qos_mgr.create ~path_attempts:spines net () in
  let rng = Sim.Rng.create ~seed:(Int64.of_int (0xE14000 + (seed * 8191) + offered)) () in
  (* Admission wave.  Every request gets a replaceable delivery sink so
     the contracts picked for the traffic phase can be wired up after
     admission decides which ones exist. *)
  let sinks = Hashtbl.create 64 in
  for _i = 0 to offered - 1 do
    let spec = specs.(_i mod Array.length specs) in
    let src = Sim.Rng.int rng nh in
    let d = Sim.Rng.int rng (nh - 1) in
    let dst = if d >= src then d + 1 else d in
    let sink = ref (fun ~flow:_ -> ()) in
    let cell_rx, train_rx =
      Atm.Net.frame_rx_pair_flow ~rx:(fun ~flow _payload -> !sink ~flow) ()
    in
    match
      Atm.Qos_mgr.request qm ~cls:spec.sp_class ~bps:spec.sp_bps
        ~src:hosts.(src) ~dst:hosts.(dst) ~rx:cell_rx ~rx_train:train_rx ()
    with
    | Atm.Qos_mgr.Accepted c | Atm.Qos_mgr.Degraded c ->
        Hashtbl.replace sinks (Atm.Qos_mgr.contract_id c) sink
    | Atm.Qos_mgr.Rejected -> ()
  done;
  let accepted = Atm.Qos_mgr.accepted qm in
  let degraded = Atm.Qos_mgr.degraded qm in
  let rejected = Atm.Qos_mgr.rejected qm in
  (* Churn: every [churn_every]-th live contract departs, then reviews
     promote waiting degraded contracts into the freed capacity. *)
  List.iteri
    (fun k c -> if k mod churn_every = churn_every - 1 then Atm.Qos_mgr.teardown qm c)
    (Atm.Qos_mgr.live qm);
  for _r = 1 to review_rounds do
    Atm.Qos_mgr.review qm
  done;
  let upgraded = Atm.Qos_mgr.renegotiated qm in
  (* Traffic phase: [sample_per_class] surviving contracts of each
     class send frames paced at their granted rate, with causal flows
     from source to delivery.  The sample deliberately mixes service
     levels — up to half of it comes from contracts still degraded
     after review — so the fairness index sees the split the admission
     decisions created, not just the full-rate head of the queue. *)
  let sample_per_class = if quick then 3 else 6 in
  let duration = Sim.Time.ms (if quick then 150 else 400) in
  let sampled =
    List.concat_map
      (fun cls ->
        let of_class =
          List.filter
            (fun c -> Atm.Qos_mgr.contract_class c = cls)
            (Atm.Qos_mgr.live qm)
        in
        let deg, full = List.partition Atm.Qos_mgr.is_degraded of_class in
        let rec take n = function
          | [] -> []
          | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
        in
        let deg_take = take (sample_per_class / 2) deg in
        take sample_per_class (deg_take @ full))
      [ Atm.Qos_mgr.Video; Atm.Qos_mgr.Audio; Atm.Qos_mgr.Rpc ]
  in
  List.iter
    (fun c ->
      let cls = Atm.Qos_mgr.contract_class c in
      let spec =
        (* specs is indexed by class; find the matching entry. *)
        Array.to_list specs |> List.find (fun s -> s.sp_class = cls)
      in
      let label =
        Printf.sprintf "%s:%05d"
          (Atm.Qos_mgr.class_name cls)
          (Atm.Qos_mgr.contract_id c)
      in
      let vc =
        match Atm.Qos_mgr.contract_vc c with
        | Some vc -> vc
        | None -> assert false  (* sampled from the live list *)
      in
      (match Hashtbl.find_opt sinks (Atm.Qos_mgr.contract_id c) with
      | Some sink ->
          sink :=
            fun ~flow ->
              if flow <> Sim.Trace.no_flow then
                Sim.Trace.flow_end tr ~ts:(Sim.Engine.now e)
                  ~sub:Sim.Subsystem.Atm ~cat:"e14" ~flow "deliver"
      | None -> assert false);
      let payload = Bytes.make spec.sp_frame_bytes 'e' in
      let period_ns =
        spec.sp_frame_bytes * 8 * 1_000_000_000 / Atm.Qos_mgr.granted_bps c
      in
      let phase_ns = Atm.Qos_mgr.contract_id c * 104_729 mod period_ns in
      let send () =
        let flow =
          if Sim.Trace.flows_on tr then begin
            let f = Sim.Trace.alloc_flow tr in
            Sim.Trace.flow_start tr ~ts:(Sim.Engine.now e)
              ~sub:Sim.Subsystem.Atm ~cat:"e14"
              ~args:[ ("stream", Sim.Trace.Str label) ]
              ~flow:f "qos.source";
            Some f
          end
          else None
        in
        Atm.Net.send_frame ?flow vc payload
      in
      let rec schedule_frames k =
        let at = Sim.Time.ns (phase_ns + (k * period_ns)) in
        if Sim.Time.(at < duration) then begin
          ignore (Sim.Engine.schedule_at e ~at send);
          schedule_frames (k + 1)
        end
      in
      schedule_frames 0)
    sampled;
  Sim.Engine.run e;
  let report = Sim.Audit.of_trace tr in
  let class_streams cls =
    let prefix = Atm.Qos_mgr.class_name cls ^ ":" in
    List.filter
      (fun st ->
        String.length st.Sim.Audit.st_label >= String.length prefix
        && String.sub st.Sim.Audit.st_label 0 (String.length prefix) = prefix)
      report.Sim.Audit.rp_streams
  in
  let mean_jitter cls =
    match class_streams cls with
    | [] -> None
    | sts ->
        let sum =
          List.fold_left (fun acc st -> acc +. st.Sim.Audit.st_jitter_mean_ns) 0.0 sts
        in
        Some (sum /. float_of_int (List.length sts) /. 1_000.0)
  in
  let video_fairness =
    jain
      (List.map
         (fun st -> float_of_int st.Sim.Audit.st_flows)
         (class_streams Atm.Qos_mgr.Video))
  in
  {
    rr_offered = offered;
    rr_accepted = accepted;
    rr_degraded = degraded;
    rr_rejected = rejected;
    rr_upgraded = upgraded;
    rr_jitter_us =
      List.map
        (fun cls -> (Atm.Qos_mgr.class_name cls, mean_jitter cls))
        [ Atm.Qos_mgr.Video; Atm.Qos_mgr.Audio; Atm.Qos_mgr.Rpc ];
    rr_video_fairness = video_fairness;
  }

let render r =
  let pct n =
    if r.rr_offered = 0 then "0%"
    else Printf.sprintf "%d (%.1f%%)" n (100.0 *. float_of_int n /. float_of_int r.rr_offered)
  in
  let jitter_cell =
    String.concat " / "
      (List.map
         (fun (_, j) ->
           match j with Some us -> Table.cell_time_us us | None -> "-")
         r.rr_jitter_us)
  in
  [
    string_of_int r.rr_offered;
    pct r.rr_accepted;
    pct r.rr_degraded;
    pct r.rr_rejected;
    string_of_int r.rr_upgraded;
    jitter_cell;
    (match r.rr_video_fairness with Some f -> Table.cell_f f | None -> "-");
  ]

let run ?(quick = false) ?(domains = 1) ?(seed = 1) () =
  let workers = if Sim.Par.available then Stdlib.max 1 domains else 1 in
  let loads = [| 10; 100; 1_000; 10_000 |] in
  let rows =
    Sim.Par.map ~workers
      (Array.map (fun offered () -> render (row ~quick ~seed ~offered ())) loads)
  in
  Table.make ~id:"E14"
    ~title:"City-scale fabric: contract admission from 10 to 10k streams"
    ~claim:
      "A QoS manager mediating between streams and a multi-stage fabric \
       accepts everything at low load, and under saturation produces a \
       mix of full-rate, degraded and rejected contracts rather than \
       collapsing; churn plus renegotiation promotes degraded contracts \
       into freed capacity, and admitted streams keep bounded jitter."
    ~columns:
      [
        "offered";
        "accepted";
        "degraded";
        "rejected";
        "upgraded";
        "jitter v/a/r";
        "video fairness";
      ]
    ~notes:
      [
        Printf.sprintf
          "Fabric: %d spines x %d leaves x %d hosts/leaf (Net.clos); 100 \
           Mbit/s host links, 1 Gbit/s trunks; admission tries all %d spine \
           crossings per tier."
          spines leaves hosts_per_leaf spines;
        "Classes round-robin video 6 Mbit/s / audio 768 kbit/s / RPC 128 \
         kbit/s with degradation ladders 1-1/2-1/4, 1-1/2 and \
         take-it-or-leave-it; every 5th admitted contract then departs and \
         three review passes upgrade waiting degraded contracts.";
        "Jitter and fairness come from Sim.Audit over a deterministic \
         sample of surviving contracts carrying paced traffic; fairness is \
         Jain's index over the sampled video streams' delivered frames.";
        "Each row is an independent world: with --domains N the rows run \
         on N OCaml domains, byte-identically.";
      ]
    (Array.to_list rows)
