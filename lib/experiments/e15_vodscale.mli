(** E15 — VOD flash crowd: popularity-aware replication vs static
    placement vs caching.

    Four Pegasus file servers behind one switch serve a Zipf-popular
    catalogue to closed-loop clients; halfway through the run a
    scripted popularity flip ({!Workloads.Vod}) moves the Zipf head to
    cold titles.  The sweep compares static placement, per-server
    block caching and {!Pfs.Directory}'s popularity-aware replication
    on flash-window throughput and p50/p95/p99 read tails
    ({!Sim.Audit} over causal flows).

    The (clients, placement) rows are independent closed worlds:
    [domains] fans them over OCaml domains through {!Sim.Par.map} with
    byte-identical output at every domain count. *)

type mode = Static | Cache_only | Replicate

type row_result = {
  rr_clients : int;
  rr_mode : mode;
  rr_reads_s : float;  (** Completed reads/s over the flash window. *)
  rr_p50_us : float option;  (** Flash window. *)
  rr_p99_pre_us : float option;
  rr_p99_flash_us : float option;
  rr_replica_pct : float;
  rr_copies : int;
  rr_drops : int;
}

val results : ?quick:bool -> ?domains:int -> unit -> row_result array
(** The raw sweep, in row order (clients major, placement minor) —
    what the benchmark harness consumes. *)

val run : ?quick:bool -> ?domains:int -> unit -> Table.t
