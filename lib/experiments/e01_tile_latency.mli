(** E1 — tile-grained vs frame-grained video transport (paper §2.1).

    "The use of tiles for video reduces latency in several places from
    a 'frame time' (33 or 40 ms) to a 'tile time' (30 to 40 us)." *)

val run : ?quick:bool -> unit -> Table.t

val audit_scenario : ?duration:Sim.Time.t -> Sim.Engine.t -> unit
(** The tile-row raw-video rig behind the table's second row, run on
    the given engine for [duration] (default 400 ms) — the scenario
    [pegasus_cli audit video] traces, so the per-stage breakdown cited
    alongside this experiment comes from the same topology. *)
