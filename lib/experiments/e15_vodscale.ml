(* E15: VOD flash crowd — popularity-aware replication vs static
   placement vs caching.

   Four file servers hang off one switch ({!Atm.Net.fan}, 100 Mbit/s
   links), each a full Pegasus stack (disk array, RAID, log).  A
   {!Pfs.Directory} shards a 16-title catalogue over them (256 KB per
   title, sealed continuous-media segments) and a Zipf flash-crowd
   workload ({!Workloads.Vod}) of closed-loop clients reads 64 KB
   chunks; halfway through, the scripted popularity flip moves the
   Zipf head to previously cold titles.

   Three placements face the same traffic:

   - {e static}: every read goes to the title's home shard.  The Zipf
     head concentrates ~40% of the load on one server, whose 100
     Mbit/s link saturates while the other three idle — throughput
     caps and the p99 read latency is pure queueing delay.
   - {e cache}: a 1 MB block cache per server absorbs the disk reads,
     but a cache cannot add link capacity: the hot server's wire is
     still the bottleneck, so the tail barely moves.
   - {e replicate}: the directory notices the hot titles (EWMA read
     rates), copies their sealed segments onto other shards over the
     fabric, and rotates reads across the copies with a load bias.
     The same wire that was the bottleneck becomes one of four.

   Responses and segment copies are paced against a per-server
   ship-free horizon (the E8 pattern — an interface clocks frames out
   at line rate; it does not dump a megabyte into the first-hop
   queue).  Reads are traced as causal flows in two streams, before
   and after the flip, so {!Sim.Audit} yields pre-flip and flash-crowd
   p50/p95/p99 separately — the flash numbers are where replication
   must re-converge after the flip invalidates its replica set.

   Each (clients, placement) row is an independent closed world with
   private trace and metrics sinks; rows fan out over OCaml domains
   through {!Sim.Par.map} byte-identically at any domain count. *)

let servers = 4
let files = 32
let seg_bytes = 262_144
let file_bytes = 262_144
let read_bytes = 65_536
let zipf_s = 1.3
let bandwidth_bps = 100_000_000
let queue_cells = 32_768
let req_bytes = 64

type mode = Static | Cache_only | Replicate

let mode_name = function
  | Static -> "static"
  | Cache_only -> "cache"
  | Replicate -> "replicate"

let mode_config = function
  | Static -> { Pfs.Directory.default_config with replicate = false }
  | Cache_only ->
      {
        Pfs.Directory.default_config with
        replicate = false;
        cache_blocks = 128;
        cache_block_bytes = 8_192;
      }
  | Replicate -> Pfs.Directory.default_config

type row_result = {
  rr_clients : int;
  rr_mode : mode;
  rr_reads_s : float;  (* completed reads/s over the flash window *)
  rr_p50_us : float option;  (* flash window *)
  rr_p99_pre_us : float option;
  rr_p99_flash_us : float option;
  rr_replica_pct : float;
  rr_copies : int;
  rr_drops : int;
}

let row ~quick ~clients ~mode () =
  let tr = Sim.Trace.create ~unbounded:true ~enabled:true () in
  Sim.Trace.set_flows tr true;
  Sim.Trace.set_cell_detail tr false;
  let e = Sim.Engine.create ~trace:tr ~metrics:(Sim.Metrics.create ()) () in
  let net = Atm.Net.create e in
  let sw = Atm.Net.add_switch net ~name:"sw" ~ports:(servers + clients) in
  let srv =
    Atm.Net.fan net ~bandwidth_bps ~queue_cells ~switch:sw ~prefix:"srv"
      ~n:servers
  in
  let cli =
    Atm.Net.fan net ~bandwidth_bps ~queue_cells ~switch:sw ~prefix:"cli"
      ~n:clients
  in
  (* Frame dispatch: each transport leg has its own VC, and a FIFO of
     continuations per VC maps in-order frame arrivals back to the
     callbacks the directory handed us. *)
  let queues : (int * int * int, (unit -> unit) Queue.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let q key =
    match Hashtbl.find_opt queues key with
    | Some qq -> qq
    | None ->
        let qq = Queue.create () in
        Hashtbl.replace queues key qq;
        qq
  in
  let pop key ~flow:_ _payload = Queue.pop (q key) () in
  let req_vc =
    Array.init clients (fun c ->
        Array.init servers (fun s ->
            Atm.Net.open_pipe net ~src:cli.(c) ~dst:srv.(s)
              ~rx:(pop (0, c, s))))
  in
  let resp_vc =
    Array.init servers (fun s ->
        Array.init clients (fun c ->
            Atm.Net.open_pipe net ~src:srv.(s) ~dst:cli.(c)
              ~rx:(pop (1, s, c))))
  in
  let copy_vc =
    Array.init servers (fun s ->
        Array.init servers (fun d ->
            if s = d then None
            else
              Some
                (Atm.Net.open_pipe net ~src:srv.(s) ~dst:srv.(d)
                   ~rx:(pop (2, s, d)))))
  in
  (* Line-rate pacing (the E8 ship-free pattern), one horizon per
     sending host. *)
  let cell_time = Atm.Cell.tx_time ~bandwidth_bps in
  let cli_free = Array.make clients Sim.Time.zero in
  let srv_free = Array.make servers Sim.Time.zero in
  let payloads = Hashtbl.create 4 in
  let payload len =
    match Hashtbl.find_opt payloads len with
    | Some b -> b
    | None ->
        let b = Bytes.make len 'v' in
        Hashtbl.replace payloads len b;
        b
  in
  let pace free i vc ~flow ~len =
    let tx = Sim.Time.mul cell_time (Atm.Aal5.frame_cells len) in
    let start = Sim.Time.max (Sim.Engine.now e) free.(i) in
    free.(i) <- Sim.Time.add start tx;
    let flow = if flow >= 0 then Some flow else None in
    ignore
      (Sim.Engine.schedule_at e ~at:start (fun () ->
           Atm.Net.send_frame ?flow vc (payload len)))
  in
  (* A message larger than one AAL5 frame (65535 bytes) travels as a
     train of 32 KB frames; in-order delivery on the VC lets the
     receive FIFO run the continuation on the last frame only. *)
  let chunk_bytes = 32_768 in
  let send_msg free i vc key ~flow ~len ~k =
    let rec go off =
      let n = Stdlib.min chunk_bytes (len - off) in
      let last = off + n >= len in
      Queue.push (if last then k else fun () -> ()) (q key);
      pace free i vc ~flow ~len:n;
      if not last then go (off + n)
    in
    go 0
  in
  let transport =
    {
      Pfs.Directory.t_request =
        (fun ~client ~server ~flow ~k ->
          send_msg cli_free client
            req_vc.(client).(server)
            (0, client, server) ~flow ~len:req_bytes ~k);
      t_respond =
        (fun ~server ~client ~flow ~len ~k ->
          send_msg srv_free server
            resp_vc.(server).(client)
            (1, server, client) ~flow ~len ~k);
      t_copy =
        (fun ~src ~dst ~len ~k ->
          match copy_vc.(src).(dst) with
          | Some vc ->
              send_msg srv_free src vc (2, src, dst) ~flow:Sim.Trace.no_flow
                ~len ~k
          | None -> assert false (* the directory never copies to src *));
    }
  in
  let logs =
    Array.init servers (fun _ ->
        let raid = Pfs.Raid.create e ~segment_bytes:seg_bytes () in
        Pfs.Log.create e ~raid ())
  in
  let dir =
    Pfs.Directory.create e ~logs ~transport ~config:(mode_config mode) ()
  in
  let half = Sim.Time.ms (if quick then 750 else 2_000) in
  let duration = Sim.Time.mul half 2 in
  (* Reads issued while a transient is still draining — the cold-start
     herd at the beginning of each half, and the stretch after the flip
     where replication is still re-converging — go to a separate
     "ramp" stream, so pre and flash percentiles measure steady state
     on both sides and the ramp is reported on its own terms. *)
  let grace = Sim.Time.ms (if quick then 400 else 750) in
  let flash_done = ref 0 in
  (* Preload the catalogue (continuous-media segments), seal it, then
     unleash the clients. *)
  let rec preload i k =
    if i = files then k ()
    else begin
      let fid = Pfs.Directory.create_file dir ~kind:Pfs.Log.Continuous () in
      assert (fid = i);
      Pfs.Directory.write dir fid ~off:0 ~len:file_bytes (fun r ->
          (match r with Ok () -> () | Error _ -> assert false);
          preload (i + 1) k)
    end
  in
  ignore
    (Sim.Engine.schedule_at e ~at:Sim.Time.zero (fun () ->
         preload 0 (fun () ->
             Pfs.Directory.sync dir ~k:(fun r ->
                 (match r with Ok () -> () | Error _ -> assert false);
                 let t0 = Sim.Engine.now e in
                 let flip_at = Sim.Time.add t0 half in
                 let stop_at = Sim.Time.add t0 duration in
                 let pre_start = Sim.Time.add t0 grace in
                 let flash_start = Sim.Time.add flip_at grace in
                 let ops =
                   {
                     Workloads.Vod.op_read =
                       (fun ~client ~fid ~off ~len ~k ->
                         let now () = Sim.Engine.now e in
                         let t = now () in
                         let in_flash = Sim.Time.(t >= flash_start) in
                         let label =
                           if in_flash then "vod:flash"
                           else if
                             Sim.Time.(t >= pre_start) && Sim.Time.(t < flip_at)
                           then "vod:pre"
                           else "vod:ramp"
                         in
                         let flow = Sim.Trace.alloc_flow tr in
                         Sim.Trace.flow_start tr ~ts:(now ())
                           ~sub:Sim.Subsystem.Pfs ~cat:"e15"
                           ~args:[ ("stream", Sim.Trace.Str label) ]
                           ~flow "vod.read";
                         Pfs.Directory.read dir ~client ~flow fid ~off ~len
                           ~k:(fun _ ->
                             Sim.Trace.flow_end tr ~ts:(now ())
                               ~sub:Sim.Subsystem.Pfs ~cat:"e15" ~flow
                               "vod.done";
                             if in_flash then incr flash_done;
                             k ()));
                   }
                 in
                 let rng =
                   Sim.Rng.create
                     ~seed:
                       (Int64.of_int
                          (0xE15000 + (clients * 31)
                          + (match mode with
                            | Static -> 0
                            | Cache_only -> 1
                            | Replicate -> 2)))
                     ()
                 in
                 let v =
                   Workloads.Vod.create e ~rng ~ops ~clients ~files ~file_bytes
                     ~read_bytes ~zipf_s ~flip_at ~stop_at ()
                 in
                 Workloads.Vod.start v))));
  Sim.Engine.run e;
  let report = Sim.Audit.of_trace tr in
  let stream label =
    List.find_opt
      (fun st -> st.Sim.Audit.st_label = label)
      report.Sim.Audit.rp_streams
  in
  let p99 label =
    Option.map (fun st -> st.Sim.Audit.st_e2e_p99_ns /. 1_000.0) (stream label)
  in
  let p50_flash =
    Option.map
      (fun st -> st.Sim.Audit.st_e2e_p50_ns /. 1_000.0)
      (stream "vod:flash")
  in
  let flash_sec = Sim.Time.to_sec_f (Sim.Time.sub half grace) in
  let total = Pfs.Directory.reads_total dir in
  let replica_pct =
    if total = 0 then 0.0
    else
      100.0
      *. float_of_int (Pfs.Directory.reads_replica dir)
      /. float_of_int total
  in
  {
    rr_clients = clients;
    rr_mode = mode;
    rr_reads_s = float_of_int !flash_done /. flash_sec;
    rr_p50_us = p50_flash;
    rr_p99_pre_us = p99 "vod:pre";
    rr_p99_flash_us = p99 "vod:flash";
    rr_replica_pct = replica_pct;
    rr_copies = Pfs.Directory.replications_completed dir;
    rr_drops = Atm.Net.total_cells_dropped net;
  }

let render r =
  [
    string_of_int r.rr_clients;
    mode_name r.rr_mode;
    Printf.sprintf "%.0f" r.rr_reads_s;
    (match r.rr_p50_us with Some us -> Table.cell_time_us us | None -> "-");
    (match r.rr_p99_pre_us with Some us -> Table.cell_time_us us | None -> "-");
    (match r.rr_p99_flash_us with Some us -> Table.cell_time_us us | None -> "-");
    Printf.sprintf "%.0f%%" r.rr_replica_pct;
    string_of_int r.rr_copies;
    string_of_int r.rr_drops;
  ]

let client_counts ~quick = if quick then [| 8; 64 |] else [| 8; 24; 64 |]

let results ?(quick = false) ?(domains = 1) () =
  let workers = if Sim.Par.available then Stdlib.max 1 domains else 1 in
  let cases =
    Array.concat
      (Array.to_list
         (Array.map
            (fun clients ->
              Array.map
                (fun mode -> (clients, mode))
                [| Static; Cache_only; Replicate |])
            (client_counts ~quick)))
  in
  Sim.Par.map ~workers
    (Array.map (fun (clients, mode) () -> row ~quick ~clients ~mode ()) cases)

let run ?(quick = false) ?(domains = 1) () =
  let rows = results ~quick ~domains () in
  Table.make ~id:"E15"
    ~title:"VOD flash crowd: popularity-aware replication vs static placement"
    ~claim:
      "Sharding a file service spreads capacity but not popularity: a Zipf \
       flash crowd saturates the hot title's home server while the rest \
       idle, and a cache cannot add link capacity.  Replicating hot files' \
       sealed segments and rotating reads over the copies turns the one \
       saturated wire into four, holding throughput strictly higher and \
       the p99 read tail at least 2x lower through the popularity flip."
    ~columns:
      [
        "clients";
        "placement";
        "reads/s";
        "p50 flash";
        "p99 pre";
        "p99 flash";
        "replica reads";
        "copies";
        "drops";
      ]
    ~notes:
      [
        Printf.sprintf
          "%d servers behind one switch (Net.fan), 100 Mbit/s links; %d-title \
           catalogue, %d KB per title in sealed continuous-media segments, \
           %d KB reads, Zipf(%.1f) popularity with a scripted flip at \
           half-run (Workloads.Vod)."
          servers files (file_bytes / 1024) (read_bytes / 1024) zipf_s;
        "Placements: static = all reads at the home shard; cache = static \
         plus a 1 MB block cache per server; replicate = Pfs.Directory \
         EWMA popularity, sealed-segment copies, rotation + load-bias \
         routing (writes always at the home shard; replicas die on \
         version bump).";
        "reads/s and the flash percentiles cover the flash-crowd window: \
         from a grace period after the flip (cold-start and re-convergence \
         transients are measured separately as a ramp stream) to the end of \
         the run; p99 pre is the warmed-up pre-flip tail.  Responses and \
         copies are paced at line rate against a per-server ship-free \
         horizon; drops counts queue-dropped cells (0 = no frame loss).";
        "Each row is an independent world: with --domains N the rows run \
         on N OCaml domains, byte-identically.";
      ]
    (List.map render (Array.to_list rows))
