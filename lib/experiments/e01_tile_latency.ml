(* One camera, one Fairisle switch, one display window — shared between
   the latency measurements below and the flow-audit scenario. *)
let rig e ~release ~mode =
  let net = Atm.Net.create e in
  let sw = Atm.Net.add_switch net ~name:"dan" ~ports:4 in
  let cam_host = Atm.Net.add_host net ~name:"cam" in
  let disp_host = Atm.Net.add_host net ~name:"disp" in
  Atm.Net.connect net cam_host sw;
  Atm.Net.connect net disp_host sw;
  let display = Atm.Display.create e () in
  let vc =
    Atm.Net.open_vc net ~src:cam_host ~dst:disp_host ~rx:(fun c ->
        Atm.Display.cell_rx display c)
  in
  let vci = Atm.Net.vc_dst_vci vc in
  let width = 640 and height = 480 in
  Atm.Display.add_window display ~vci ~x:0 ~y:0 ~width ~height;
  let camera = Atm.Camera.create e ~vc ~width ~height ~fps:25 ~mode ~release () in
  (display, vci, camera)

let measure ~release ~mode ~duration =
  let e = Sim.Engine.create () in
  let display, vci, camera = rig e ~release ~mode in
  Atm.Camera.start camera;
  Sim.Engine.run e ~until:duration;
  let samples = Atm.Display.staging_latency_us display ~vci in
  ( Sim.Stats.Samples.percentile samples 50.0,
    Sim.Stats.Samples.percentile samples 99.0,
    Atm.Display.frames_completed display ~vci )

let audit_scenario ?(duration = Sim.Time.ms 400) e =
  let _display, _vci, camera = rig e ~release:`Tile_row ~mode:Atm.Camera.Raw in
  Atm.Camera.start camera;
  Sim.Engine.run e ~until:duration

let run ?(quick = false) () =
  let duration = if quick then Sim.Time.ms 400 else Sim.Time.sec 2 in
  let cases =
    [
      ("tile rows, JPEG 8:1", `Tile_row, Atm.Camera.Jpeg { ratio = 8.0 });
      ("tile rows, raw", `Tile_row, Atm.Camera.Raw);
      ("whole frame, JPEG 8:1", `Whole_frame, Atm.Camera.Jpeg { ratio = 8.0 });
      ("whole frame, raw", `Whole_frame, Atm.Camera.Raw);
    ]
  in
  let rows =
    List.map
      (fun (label, release, mode) ->
        let p50, p99, frames = measure ~release ~mode ~duration in
        [
          label;
          Table.cell_time_us p50;
          Table.cell_time_us p99;
          string_of_int frames;
        ])
      cases
  in
  Table.make ~id:"E1" ~title:"Video staging latency: tiles vs whole frames"
    ~claim:
      "Tiles reduce latency in several places from a frame time (33 or 40 \
       ms) to a tile time (30 to 40 us)."
    ~columns:[ "camera release policy"; "p50 latency"; "p99 latency"; "frames" ]
    ~notes:
      [
        "Latency is measured per tile packet, from the instant its scan-lines \
         finished digitising to the blit at the display, across one Fairisle \
         switch at 100 Mbit/s.";
        "Whole-frame release is what a conventional frame-grabber does: every \
         pixel waits for the frame to complete before transport begins.";
      ]
    rows
