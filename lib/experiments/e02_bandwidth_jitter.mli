(** E2 — stream bandwidths and audio jitter (paper §2).

    "Using frame-by-frame compression, for instance with JPEG, a video
    stream requires no more than a megabyte per second."  "Audio has
    modest bandwidth requirements compared to video, but is much more
    susceptible to jitter." *)

val run : ?quick:bool -> unit -> Table.t

val audit_scenario : ?duration:Sim.Time.t -> Sim.Engine.t -> unit
(** The loaded-path rig behind the bursty-load rows, with a JPEG video
    stream in the audio source's place, run on the given engine for
    [duration] (default 400 ms) — the [pegasus_cli audit av] scenario,
    whose jitter figures complement this experiment's table. *)
