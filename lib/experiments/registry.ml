type entry = {
  e_id : string;
  e_title : string;
  e_run : quick:bool -> domains:int -> Table.t;
}

(* Most experiments are inherently sequential stories; their runners
   ignore [domains].  Experiments whose rows are independent worlds use
   [entry_par] and fan the rows out over domains (E13 today). *)
let entry e_id e_title (run : ?quick:bool -> unit -> Table.t) =
  { e_id; e_title; e_run = (fun ~quick ~domains:_ -> run ~quick ()) }

let entry_par e_id e_title (run : ?quick:bool -> ?domains:int -> unit -> Table.t)
    =
  { e_id; e_title; e_run = (fun ~quick ~domains -> run ~quick ~domains ()) }

let all =
  [
    entry "E1" "Video staging latency: tiles vs whole frames"
      E01_tile_latency.run;
    entry "E2" "Stream bandwidths; audio jitter sensitivity"
      E02_bandwidth_jitter.run;
    entry "E3" "Domain scheduling under overload" E03_scheduling.run;
    entry "E3b" "QoS manager: weights over time" E03_scheduling.run_qos;
    entry "E4" "Scheduler activations vs transparent resumption"
      E04_activations.run;
    entry "E5" "Synchronous vs asynchronous event signalling" E05_events.run;
    entry "E6" "Single address space: switches and relocation"
      E06_address_space.run;
    entry "E7" "Name resolution and the invocation ladder" E07_naming.run;
    entry "E8" "Disk, stripe and network throughput" E08_throughput.run;
    entry "E9" "Cleaning cost as the file system grows" E09_cleaning.run;
    entry "E10" "Write-behind against the 30-second lifetime wall"
      E10_delayed_writes.run;
    entry "E11" "LRU caching: files win, streams lose" E11_caching.run;
    entry "E12" "Acknowledged data across injected failures" E12_failures.run;
    entry_par "E13" "Graceful degradation under injected faults" E13_faults.run;
    entry_par "E14" "City-scale fabric: contract admission from 10 to 10k streams"
      (fun ?quick ?domains () -> E14_cityscale.run ?quick ?domains ());
    entry_par "E15" "VOD flash crowd: popularity-aware replication vs static placement"
      (fun ?quick ?domains () -> E15_vodscale.run ?quick ?domains ());
    entry "A1" "Ablation: sharing out the slack" A1_slack.run;
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.e_id = id) all

let run_all ?(quick = false) ?(domains = 1) fmt =
  List.iter
    (fun e ->
      let table = e.e_run ~quick ~domains in
      Format.fprintf fmt "%a@.@." Table.pp table)
    all
