(* E13: deterministic fault injection across the stack.

   Part 1: an open-loop video source sends 8 KB tiles as AAL5 frames
   through a switch while a seeded fault plan drops cells on the
   links; a frame missing any cell fails reassembly, so the
   delivered-frame ratio falls monotonically as the loss rate rises —
   and identically on every run with the same seed.

   Part 2: RPC echo calls over the same lossy network.  At-most-once
   retransmission with capped, jittered backoff recovers lost
   requests, so goodput stays near one while the retransmission count
   shows the work done; a mid-run link outage is also survived.

   Part 3: a RAID array serving a read sweep while the plan fails
   disks under it: with one disk down reads are served degraded
   through parity, with two down they are lost.

   Each row is an independent closed world (its own engine, network,
   fault plan and seeds), so the ten rows are also the registry's
   show-piece for {!Sim.Par.map}: with [~domains:n] they run on [n]
   OCaml domains.  Parallel rows must not share the process-default
   trace and metrics sinks, so they get private ones — which is also
   why the table is identical either way: no row reads those sinks. *)

let tile_bytes = 8192
let frame_gap = Sim.Time.ms 40  (* 25 fps *)

(* [iso] rows run on worker domains: give them private trace/metrics
   sinks instead of the process-wide defaults.  Tracing is off in both
   cases, so results cannot differ (see lib/atm/link.mli on why an
   enabled trace would matter). *)
let mk_engine ~iso () =
  if iso then
    Sim.Engine.create
      ~trace:(Sim.Trace.create ~enabled:false ())
      ~metrics:(Sim.Metrics.create ()) ()
  else Sim.Engine.create ()

let video_run ~iso ~loss ~with_outages ~frames () =
  let e = mk_engine ~iso () in
  let fault = Sim.Fault.create ~seed:0x13AB1EL e in
  let net = Atm.Net.create e in
  let sw = Atm.Net.add_switch net ~name:"sw" ~ports:4 in
  let cam = Atm.Net.add_host net ~name:"cam" in
  let disp = Atm.Net.add_host net ~name:"display" in
  Atm.Net.connect net cam sw;
  Atm.Net.connect net disp sw;
  let delivered = ref 0 in
  let vc =
    Atm.Net.open_vc net ~src:cam ~dst:disp
      ~rx:(Atm.Net.frame_rx ~rx:(fun _ -> incr delivered) ())
  in
  if loss > 0.0 then Atm.Net.inject_loss net ~rng:(Sim.Fault.rng fault) loss;
  let span = Sim.Time.mul frame_gap (frames + 2) in
  if with_outages then
    Sim.Fault.outages fault ~span ~mean_up:(Sim.Time.ms 300)
      ~mean_down:(Sim.Time.ms 30)
      ~down:(fun () -> Atm.Net.set_link_down net cam sw true)
      ~up:(fun () -> Atm.Net.set_link_down net cam sw false)
      ();
  for i = 0 to frames - 1 do
    ignore
      (Sim.Engine.schedule e
         ~delay:(Sim.Time.mul frame_gap i)
         (fun () -> Atm.Net.send_frame vc (Bytes.make tile_bytes 'v')))
  done;
  Sim.Engine.run e;
  (!delivered, frames, Atm.Net.total_cells_lost net)

let rpc_run ~iso ~loss ~with_outage ~calls () =
  let e = mk_engine ~iso () in
  let fault = Sim.Fault.create ~seed:0x13FA11L e in
  let net = Atm.Net.create e in
  let ch = Atm.Net.add_host net ~name:"client" in
  let sh = Atm.Net.add_host net ~name:"server" in
  Atm.Net.connect net ch sh;
  let client = Rpc.endpoint net ~host:ch in
  let server = Rpc.endpoint net ~host:sh in
  Rpc.serve server ~iface:"echo" (fun ~meth:_ payload -> Ok payload);
  let conn =
    Rpc.connect net ~client ~server ~retransmit:(Sim.Time.ms 5) ~seed:7L
      ~max_tries:8 ()
  in
  if loss > 0.0 then Atm.Net.inject_loss net ~rng:(Sim.Fault.rng fault) loss;
  if with_outage then
    Sim.Fault.window fault
      ~at:(Sim.Time.ms (calls / 2))
      ~duration:(Sim.Time.ms 40)
      ~down:(fun () -> Atm.Net.set_link_down net ch sh true)
      ~up:(fun () -> Atm.Net.set_link_down net ch sh false);
  let ok = ref 0 in
  for i = 0 to calls - 1 do
    ignore
      (Sim.Engine.schedule e ~delay:(Sim.Time.ms i) (fun () ->
           Rpc.call conn ~iface:"echo" ~meth:"ping" (Bytes.make 64 'q')
             ~reply:(function Ok _ -> incr ok | Error _ -> ())))
  done;
  Sim.Engine.run e;
  (!ok, calls, Rpc.retransmissions conn)

type raid_fault = Raid_none | Raid_one_window | Raid_two_down

let raid_run ~iso ~fault_kind ~segments () =
  let e = mk_engine ~iso () in
  let raid = Pfs.Raid.create e ~store_data:true ~segment_bytes:65_536 () in
  let pattern seg = Bytes.make 65_536 (Char.chr (Char.code 'a' + (seg mod 26))) in
  for seg = 0 to segments - 1 do
    Pfs.Raid.write_segment raid ~seg ~data:(pattern seg) (fun _ -> ())
  done;
  Sim.Engine.run e;
  (* The read sweep is paced at 5 ms per segment; the failure windows
     land squarely inside it. *)
  let read_gap = Sim.Time.ms 5 in
  let sweep_span = Sim.Time.mul read_gap segments in
  let mid = Sim.Time.add (Sim.Engine.now e) (Sim.Time.div sweep_span 4) in
  let half = Sim.Time.div sweep_span 2 in
  (match fault_kind with
  | Raid_none -> ()
  | Raid_one_window -> Pfs.Raid.fail_disk_for raid 0 ~at:mid ~duration:half
  | Raid_two_down ->
      Pfs.Raid.fail_disk_for raid 0 ~at:mid ~duration:half;
      Pfs.Raid.fail_disk_for raid 1 ~at:mid ~duration:half);
  let ok = ref 0 in
  for seg = 0 to segments - 1 do
    ignore
      (Sim.Engine.schedule e
         ~delay:(Sim.Time.mul read_gap (seg + 1))
         (fun () ->
           Pfs.Raid.read_segment raid ~seg ~k:(function
             | Ok (Some data) when Bytes.equal data (pattern seg) -> incr ok
             | Ok _ | Error `Lost -> ())))
  done;
  Sim.Engine.run e;
  (!ok, segments, Pfs.Raid.degraded_reads raid)

let run ?(quick = false) ?(domains = 1) () =
  let workers = if Sim.Par.available then max 1 domains else 1 in
  let iso = workers > 1 in
  let frames = if quick then 25 else 75 in
  let calls = if quick then 100 else 300 in
  let segments = if quick then 32 else 96 in
  let ratio a b = Table.cell_f (float_of_int a /. float_of_int b) in
  let video_row label ~loss ~with_outages =
    let delivered, sent, cells_lost =
      video_run ~iso ~loss ~with_outages ~frames ()
    in
    [
      "video 25fps 8KB tiles";
      label;
      Printf.sprintf "%d/%d frames" delivered sent;
      ratio delivered sent;
      Printf.sprintf "%d cells lost" cells_lost;
    ]
  in
  let rpc_row label ~loss ~with_outage =
    let ok, sent, retrans = rpc_run ~iso ~loss ~with_outage ~calls () in
    [
      "rpc echo, 8 tries";
      label;
      Printf.sprintf "%d/%d calls" ok sent;
      ratio ok sent;
      Printf.sprintf "%d retransmissions" retrans;
    ]
  in
  let raid_row label fault_kind =
    let ok, total, degraded = raid_run ~iso ~fault_kind ~segments () in
    [
      "raid 4+1 read sweep";
      label;
      Printf.sprintf "%d/%d segments" ok total;
      ratio ok total;
      Printf.sprintf "%d degraded reads" degraded;
    ]
  in
  Table.make ~id:"E13" ~title:"Graceful degradation under injected faults"
    ~claim:
      "Deterministic fault injection shows the stack degrading gracefully: \
       video frame delivery falls smoothly (and monotonically) with the cell \
       loss rate, RPC retransmission holds goodput near one through loss and \
       a link outage, and the RAID array keeps serving reads through a \
       single disk failure, losing data only when two disks are down at \
       once."
    ~columns:[ "workload"; "fault injected"; "delivered"; "ratio"; "recovery work" ]
    ~notes:
      [
        "Every row replays an identical fault plan from a fixed seed: two \
         runs of this experiment produce identical tables, and raising only \
         the loss rate drops a superset of the same cells.";
        "A video tile is an AAL5 frame of ~171 cells, so even 0.1% cell \
         loss costs whole frames; the display simply renders what arrives \
         (the paper's devices skip faulty tiles rather than stall).";
        "RAID reads during the one-disk window are served from parity \
         (degraded), bit-identical to the written data.";
      ]
    (Array.to_list
       (Sim.Par.map ~workers
          [|
            (fun () -> video_row "none" ~loss:0.0 ~with_outages:false);
            (fun () ->
              video_row "cell loss p=0.001" ~loss:0.001 ~with_outages:false);
            (fun () ->
              video_row "cell loss p=0.01" ~loss:0.01 ~with_outages:false);
            (fun () ->
              video_row "cell loss p=0.05" ~loss:0.05 ~with_outages:false);
            (fun () ->
              video_row "loss p=0.01 + link outages" ~loss:0.01
                ~with_outages:true);
            (fun () -> rpc_row "cell loss p=0.01" ~loss:0.01 ~with_outage:false);
            (fun () ->
              rpc_row "loss p=0.05 + 40ms outage" ~loss:0.05 ~with_outage:true);
            (fun () -> raid_row "none" Raid_none);
            (fun () -> raid_row "1 disk down mid-sweep" Raid_one_window);
            (fun () -> raid_row "2 disks down mid-sweep" Raid_two_down);
          |]))
