(** Scenarios for [pegasus_cli audit]: short deterministic runs to be
    executed with flow tracing enabled ({!Sim.Trace.set_flows}), after
    which {!Sim.Audit.of_trace} turns the recorded flow events into a
    per-stream QoS report.  Each takes the engine to build on and runs
    it for [duration] (default 400 ms). *)

val video : ?duration:Sim.Time.t -> Sim.Engine.t -> unit
(** The E1 tile-latency rig: raw tile-row video, camera → switch →
    display. *)

val av : ?duration:Sim.Time.t -> Sim.Engine.t -> unit
(** The E2 loaded-path rig: JPEG video sharing a switch with bursty
    cross traffic. *)

val pfs : ?duration:Sim.Time.t -> Sim.Engine.t -> unit
(** The Pegasus file service: RPC reads/writes sealing log segments,
    plus a Baker-mix client-agent write load. *)

val video_pfs : ?duration:Sim.Time.t -> Sim.Engine.t -> unit
(** {!video} and {!pfs} on one engine — the CI audit smoke scenario. *)
