(* The scenarios behind `pegasus_cli health`: short deterministic rigs
   with SLO monitors attached across the stack.

   - "video"   : the E1 camera/switch/display rig under a healthy load —
                 every objective stays Ok.
   - "congest" : the same rig with a scripted wire-loss episode
                 (5% from 100 ms to 220 ms): the cell-loss objective
                 walks Ok -> Pending -> Firing and resolves mid-run
                 once the slow window drains.
   - "pfs"     : the Pegasus file service (workstation client calling a
                 file server over RPC) plus a replicated {!Pfs.Directory}
                 under a flash-crowd read load; a scripted loss episode
                 drives an RPC retransmission storm that fires and
                 resolves while the directory and deadline objectives
                 stay healthy.
   - "fabric"  : a 4-site sharded ring (one monitor per shard, merged in
                 shard order) with a loss episode at site 0 — the
                 --domains 1/2/4 byte-identity scenario.

   Every disruption is scripted at absolute instants with
   [Sim.Engine.schedule_at] and every loss stream is seeded, so each
   scenario is a pure function of its parameters: the CI job runs the
   health report twice (and across domain counts for "fabric") and
   diffs the bytes. *)

let default_duration = Sim.Time.ms 400

(* ------------------------------------------------------------------ *)
(* Shared video rig: E1's camera -> Fairisle switch -> display window,
   returning the net so scenarios can script faults on its links. *)

let video_rig e =
  let net = Atm.Net.create e in
  let sw = Atm.Net.add_switch net ~name:"dan" ~ports:4 in
  let cam_host = Atm.Net.add_host net ~name:"cam" in
  let disp_host = Atm.Net.add_host net ~name:"disp" in
  Atm.Net.connect net cam_host sw;
  Atm.Net.connect net disp_host sw;
  let display = Atm.Display.create e () in
  let vc =
    Atm.Net.open_vc net ~src:cam_host ~dst:disp_host ~rx:(fun c ->
        Atm.Display.cell_rx display c)
  in
  let vci = Atm.Net.vc_dst_vci vc in
  Atm.Display.add_window display ~vci ~x:0 ~y:0 ~width:640 ~height:480;
  let camera =
    Atm.Camera.create e ~vc ~width:640 ~height:480 ~fps:25 ~mode:Atm.Camera.Raw
      ~release:`Tile_row ()
  in
  Atm.Camera.start camera;
  net

(* The objectives shared by "video" and "congest".  All handles are
   get-or-create against the engine's registry, so they alias the
   instruments the components registered when the rig was built. *)
let video_slos m e =
  let reg = Sim.Engine.metrics e in
  let atm = Sim.Subsystem.Atm in
  let win = Sim.Time.ms 20 in
  Sim.Monitor.register m
    (Sim.Slo.make ~help:"p99 capture-to-blit staging latency" ~unit_:"us"
       ~window:win ~fast_windows:1 ~slow_windows:3 ~fire_after:2
       ~resolve_after:2 ~hysteresis:0.8 ~sub:atm ~threshold:2000.0
       "video.staging_p99_us")
    (Sim.Monitor.windowed
       (Sim.Metrics.observer reg ~sub:atm "display.staging_win_us"));
  Sim.Monitor.register m
    (Sim.Slo.make ~help:"p99 link queueing delay" ~unit_:"us" ~window:win
       ~fast_windows:1 ~slow_windows:3 ~fire_after:2 ~resolve_after:2
       ~hysteresis:0.8 ~sub:atm ~threshold:1000.0 "video.queue_delay_p99_us")
    (Sim.Monitor.windowed
       (Sim.Metrics.observer reg ~sub:atm "link.queue_delay_win_us"));
  Sim.Monitor.register m
    (Sim.Slo.make ~help:"wire cells lost per cell sent" ~unit_:"ratio"
       ~window:win ~fast_windows:1 ~slow_windows:3 ~fire_after:2
       ~resolve_after:2 ~hysteresis:0.5 ~sub:atm ~threshold:0.01
       "video.cell_loss")
    (Sim.Monitor.counter_ratio
       ~num:(Sim.Metrics.counter reg ~sub:atm "link.cells_lost")
       ~den:(Sim.Metrics.counter reg ~sub:atm "link.cells_sent"));
  Sim.Monitor.register m
    (Sim.Slo.make ~help:"engine event-queue depth" ~unit_:"events" ~window:win
       ~fast_windows:1 ~slow_windows:3 ~fire_after:2 ~resolve_after:2
       ~hysteresis:0.8 ~sub:Sim.Subsystem.Sim ~threshold:5000.0
       "video.queue_depth")
    (Sim.Monitor.gauge_level
       (Sim.Metrics.gauge reg ~sub:Sim.Subsystem.Sim "engine.queue_depth"))

let video ?(duration = default_duration) () =
  let e = Sim.Engine.create () in
  let _net = video_rig e in
  let m = Sim.Monitor.create ~name:"video" e in
  video_slos m e;
  Sim.Engine.run e ~until:duration;
  Sim.Monitor.report ~name:"video" [ m ]

let congest ?(duration = default_duration) () =
  let e = Sim.Engine.create () in
  let net = video_rig e in
  let m = Sim.Monitor.create ~name:"congest" e in
  video_slos m e;
  (* Scripted wire-loss episode: 5% Bernoulli loss on every link from
     100 ms to 220 ms.  With 20 ms sub-windows the cell-loss objective
     goes Pending at 120 ms, Firing at 140 ms, and resolves at 300 ms
     once the slow (3-window) aggregate has drained past the 0.5x
     hysteresis threshold. *)
  let rng = Sim.Rng.create ~seed:11L () in
  ignore
    (Sim.Engine.schedule_at e ~at:(Sim.Time.ms 100) (fun () ->
         Atm.Net.inject_loss net ~rng 0.05));
  ignore
    (Sim.Engine.schedule_at e ~at:(Sim.Time.ms 220) (fun () ->
         Atm.Net.clear_faults net));
  Sim.Engine.run e ~until:duration;
  Sim.Monitor.report ~name:"congest" [ m ]

(* ------------------------------------------------------------------ *)
(* File service: the audit "pfs" rig (workstation client calling the
   file server over RPC every 10 ms) plus a replicated directory over
   four loopback shards under a flash-crowd read load. *)

(* RPC retries back off from 10 ms with at most 4 tries, so the last
   retransmission of a call issued during the loss episode lands about
   80 ms after the episode ends; 600 ms leaves the slow window room to
   drain and the storm objective to resolve. *)
let pfs ?(duration = Sim.Time.ms 600) () =
  let e = Sim.Engine.create () in
  let site = Pegasus.Site.create e in
  let ws = Pegasus.Workstation.create site ~name:"client" () in
  let fs =
    Pegasus.Fileserver.create site ~name:"pfs" ~segment_bytes:65536
      ~write_delay:(Sim.Time.ms 40) ()
  in
  let conn, _agent = Pegasus.Fileserver.connect_client fs ws in
  let fid = Pfs.Log.create_file (Pegasus.Fileserver.log fs) () in
  let chunk = 8192 in
  let period = Sim.Time.ms 10 in
  let rec schedule_calls i =
    let at = Sim.Time.mul period (i + 1) in
    if Sim.Time.(at < duration) then begin
      ignore
        (Sim.Engine.schedule_at e ~at (fun () ->
             if i mod 4 = 3 then
               Rpc.call conn ~iface:"pfs" ~meth:"read"
                 (Pegasus.Fileserver.encode_u32s [ fid; 0; chunk ])
                 ~reply:(fun _ -> ())
             else
               let args =
                 Pegasus.Fileserver.encode_u32s [ fid; i * chunk; chunk ]
               in
               Rpc.call conn ~iface:"pfs" ~meth:"write"
                 (Bytes.cat args (Bytes.create chunk))
                 ~reply:(fun _ -> ())));
      schedule_calls (i + 1)
    end
  in
  schedule_calls 0;
  (* Replicated directory on a loopback transport: preload one file,
     seal it, then read it hot enough that the review tick grows
     replicas — exercising the read-latency and copy-lag observers. *)
  let logs =
    Array.init 4 (fun _ ->
        let raid = Pfs.Raid.create e ~segment_bytes:65536 () in
        Pfs.Log.create e ~raid ())
  in
  let dir =
    Pfs.Directory.create e ~logs ~transport:(Pfs.Directory.loopback e) ()
  in
  let hot = Pfs.Directory.create_file dir () in
  Pfs.Directory.write dir hot ~off:0 ~len:65536 (fun _ -> ());
  ignore
    (Sim.Engine.schedule_at e ~at:(Sim.Time.ms 5) (fun () ->
         Pfs.Directory.sync dir ~k:(fun _ -> ())));
  let read_period = Sim.Time.ms 4 in
  let rec schedule_reads i =
    let at = Sim.Time.add (Sim.Time.ms 10) (Sim.Time.mul read_period i) in
    if Sim.Time.(at < duration) then begin
      ignore
        (Sim.Engine.schedule_at e ~at (fun () ->
             Pfs.Directory.read dir ~client:(i mod 4) hot ~off:0 ~len:4096
               ~k:(fun _ -> ())));
      schedule_reads (i + 1)
    end
  in
  schedule_reads 0;
  (* The disruption: heavy wire loss on the site fabric from 150 ms to
     280 ms turns RPC retries into a retransmission storm. *)
  let net = Pegasus.Site.net site in
  let rng = Sim.Rng.create ~seed:13L () in
  ignore
    (Sim.Engine.schedule_at e ~at:(Sim.Time.ms 150) (fun () ->
         Atm.Net.inject_loss net ~rng 0.3));
  ignore
    (Sim.Engine.schedule_at e ~at:(Sim.Time.ms 280) (fun () ->
         Atm.Net.clear_faults net));
  let m = Sim.Monitor.create ~name:"pfs" e in
  let reg = Sim.Engine.metrics e in
  let win = Sim.Time.ms 25 in
  Sim.Monitor.register m
    (Sim.Slo.make ~help:"p99 directory read latency" ~unit_:"us" ~window:win
       ~fast_windows:1 ~slow_windows:3 ~fire_after:2 ~resolve_after:2
       ~hysteresis:0.8 ~sub:Sim.Subsystem.Pfs ~threshold:50000.0
       "pfs.dir_read_p99_us")
    (Sim.Monitor.windowed
       (Sim.Metrics.observer reg ~sub:Sim.Subsystem.Pfs
          "dir.read_latency_win_us"));
  Sim.Monitor.register m
    (Sim.Slo.make ~help:"p99 replica copy lag" ~unit_:"us" ~window:win
       ~fast_windows:1 ~slow_windows:3 ~fire_after:2 ~resolve_after:2
       ~hysteresis:0.8 ~sub:Sim.Subsystem.Pfs ~threshold:100000.0
       "pfs.replica_lag_p99_us")
    (Sim.Monitor.windowed
       (Sim.Metrics.observer reg ~sub:Sim.Subsystem.Pfs "dir.copy_lag_win_us"));
  (* 40/s over a 50 ms fast span means two retransmissions: a single
     straggler (a reply overlapping a segment seal, say) never pends,
     only the storm does. *)
  Sim.Monitor.register m
    (Sim.Slo.make ~help:"RPC retransmissions per second" ~unit_:"/s"
       ~window:win ~fast_windows:2 ~slow_windows:4 ~fire_after:2
       ~resolve_after:2 ~hysteresis:0.5 ~sub:Sim.Subsystem.Rpc ~threshold:40.0
       "pfs.rpc_retransmit_rate")
    (Sim.Monitor.counter_rate
       (Sim.Metrics.counter reg ~sub:Sim.Subsystem.Rpc
          "client.retransmissions"));
  Sim.Monitor.register m
    (Sim.Slo.make ~help:"kernel deadline misses per second" ~unit_:"/s"
       ~window:win ~fast_windows:2 ~slow_windows:4 ~fire_after:2
       ~resolve_after:2 ~hysteresis:0.5 ~sub:Sim.Subsystem.Nemesis
       ~threshold:100.0 "pfs.deadline_miss_rate")
    (Sim.Monitor.counter_rate
       (Sim.Metrics.counter reg ~sub:Sim.Subsystem.Nemesis
          "kernel.deadline_misses"));
  Sim.Engine.run e ~until:duration;
  Sim.Monitor.report ~name:"pfs" [ m ]

(* ------------------------------------------------------------------ *)
(* Sharded fabric: a small 4-site ring modelled on {!Fabric}, one
   monitor per shard, merged in shard order.  The trunk propagation
   delay is the conservative lookahead; 10 ms roll windows land on
   epoch boundaries, and {!Sim.Shard} flushes sampled gauges at every
   barrier, so the merged report is byte-identical at --domains 1/2/4. *)

let fabric ?(duration = Sim.Time.ms 130) ?(domains = 1) () =
  let sites = 4 in
  let streams_per_site = 8 in
  let frame_bytes = 8_192 in
  let fps = 100 in
  let trunk_prop = Sim.Time.ms 2 in
  let shard = Sim.Shard.create ~lookahead:trunk_prop ~shards:sites () in
  let payload = Bytes.make frame_bytes 'x' in
  let period_ns = 1_000_000_000 / fps in
  let ingress = Array.make sites None in
  let nets = Array.make sites None in
  let sites_built =
    Array.init sites (fun i ->
        let e = Sim.Shard.engine shard i in
        let net = Atm.Net.create e in
        nets.(i) <- Some net;
        let sw = Atm.Net.add_switch net ~name:"sw" ~ports:8 in
        let cam = Atm.Net.add_host net ~name:"cam" in
        let disp = Atm.Net.add_host net ~name:"disp" in
        let gw = Atm.Net.add_host net ~name:"gw" in
        let q = Atm.Aal5.frame_cells frame_bytes + 64 in
        Atm.Net.connect net ~bandwidth_bps:10_000_000_000 ~queue_cells:q cam sw;
        Atm.Net.connect net ~bandwidth_bps:10_000_000_000 ~queue_cells:q disp
          sw;
        Atm.Net.connect net ~bandwidth_bps:10_000_000_000 ~queue_cells:q gw sw;
        let vcs =
          Array.init streams_per_site (fun _ ->
              let cell_rx, train_rx =
                Atm.Net.frame_rx_pair ~rx:(fun _ -> ()) ()
              in
              Atm.Net.open_vc net ~src:cam ~dst:disp ~rx:cell_rx
                ~rx_train:train_rx)
        in
        let cell_rx, train_rx = Atm.Net.frame_rx_pair ~rx:(fun _ -> ()) () in
        ingress.(i) <-
          Some
            (Atm.Net.open_vc net ~src:gw ~dst:disp ~rx:cell_rx
               ~rx_train:train_rx);
        (e, vcs))
  in
  Array.iteri
    (fun i (e, vcs) ->
      Array.iteri
        (fun s vc ->
          let phase = ((i * 131_071) + (s * 7_919)) mod period_ns in
          let frame = ref 0 in
          let rec tick () =
            Atm.Net.send_frame vc payload;
            (if s = 0 && !frame mod 4 = 0 then
               let dst = (i + 1) mod sites in
               let at = Sim.Time.add (Sim.Engine.now e) trunk_prop in
               let data = Bytes.copy payload in
               Sim.Shard.post shard ~src:i ~dst ~at (fun () ->
                   match ingress.(dst) with
                   | Some gvc -> Atm.Net.send_frame gvc data
                   | None -> assert false));
            incr frame;
            ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ns period_ns) tick)
          in
          ignore (Sim.Engine.schedule e ~delay:(Sim.Time.ns phase) tick))
        vcs)
    sites_built;
  (* One monitor per shard: a source reaching across shards would race
     under parallel domains. *)
  let monitors =
    Array.mapi
      (fun i (e, _) ->
        let m =
          Sim.Monitor.create ~name:(Printf.sprintf "site%d" i) e
        in
        let reg = Sim.Engine.metrics e in
        let atm = Sim.Subsystem.Atm in
        let win = Sim.Time.ms 10 in
        Sim.Monitor.register m
          (Sim.Slo.make ~help:"wire cells lost per cell sent" ~unit_:"ratio"
             ~window:win ~fast_windows:1 ~slow_windows:3 ~fire_after:2
             ~resolve_after:2 ~hysteresis:0.5 ~sub:atm ~threshold:0.01
             (Printf.sprintf "site%d.cell_loss" i))
          (Sim.Monitor.counter_ratio
             ~num:(Sim.Metrics.counter reg ~sub:atm "link.cells_lost")
             ~den:(Sim.Metrics.counter reg ~sub:atm "link.cells_sent"));
        Sim.Monitor.register m
          (Sim.Slo.make ~help:"p99 link queueing delay" ~unit_:"us"
             ~window:win ~fast_windows:1 ~slow_windows:3 ~fire_after:2
             ~resolve_after:2 ~hysteresis:0.8 ~sub:atm ~threshold:1000.0
             (Printf.sprintf "site%d.queue_delay_p99_us" i))
          (Sim.Monitor.windowed
             (Sim.Metrics.observer reg ~sub:atm "link.queue_delay_win_us"));
        Sim.Monitor.register m
          (Sim.Slo.make ~help:"engine event-queue depth" ~unit_:"events"
             ~window:win ~fast_windows:1 ~slow_windows:3 ~fire_after:2
             ~resolve_after:2 ~hysteresis:0.8 ~sub:Sim.Subsystem.Sim
             ~threshold:50000.0
             (Printf.sprintf "site%d.queue_depth" i))
          (Sim.Monitor.gauge_level
             (Sim.Metrics.gauge reg ~sub:Sim.Subsystem.Sim
                "engine.queue_depth"));
        m)
      sites_built
  in
  (* The disruption: 10% wire loss at site 0 from 30 ms to 70 ms; its
     cell-loss objective fires at 50 ms and resolves at 110 ms. *)
  (let e0 = Sim.Shard.engine shard 0 in
   let net0 = match nets.(0) with Some n -> n | None -> assert false in
   let rng = Sim.Rng.create ~seed:7L () in
   ignore
     (Sim.Engine.schedule_at e0 ~at:(Sim.Time.ms 30) (fun () ->
          Atm.Net.inject_loss net0 ~rng 0.1));
   ignore
     (Sim.Engine.schedule_at e0 ~at:(Sim.Time.ms 70) (fun () ->
          Atm.Net.clear_faults net0)));
  Sim.Shard.run ~domains ~until:duration shard;
  Sim.Monitor.report ~name:"fabric" (Array.to_list monitors)

(* ------------------------------------------------------------------ *)

let names = [ "video"; "congest"; "pfs"; "fabric" ]

let run ?duration ?domains name =
  match name with
  | "video" -> video ?duration ()
  | "congest" -> congest ?duration ()
  | "pfs" -> pfs ?duration ()
  | "fabric" -> fabric ?duration ?domains ()
  | _ -> invalid_arg ("Health_scenarios.run: unknown scenario " ^ name)
