(* The scenarios behind `pegasus_cli audit`: short deterministic runs
   meant to be executed with flow tracing on ([Sim.Trace.set_flows]).
   "video" and "av" are the E1/E2 rigs re-exported; "pfs" drives the
   Pegasus file service over RPC plus a Baker-calibrated client-agent
   write mix; "video-pfs" runs the video rig and the file service on
   one engine — the CI smoke scenario. *)

let default_duration = Sim.Time.ms 400

let video ?duration e = E01_tile_latency.audit_scenario ?duration e
let av ?duration e = E02_bandwidth_jitter.audit_scenario ?duration e

(* File service: one workstation client calling the "pfs" RPC interface
   (8 KB calls against one file, enough writes to seal 64 KB segments so
   the RAID and disk stages appear in the report), plus a client agent
   fed by the Baker file-lifetime mix, with the server's write delay
   shortened so buffered writes reach the disk inside the run. *)
let setup_pfs e ~duration =
  let site = Pegasus.Site.create e in
  let ws = Pegasus.Workstation.create site ~name:"client" () in
  let fs =
    Pegasus.Fileserver.create site ~name:"pfs" ~segment_bytes:65536
      ~write_delay:(Sim.Time.ms 40) ()
  in
  let conn, agent = Pegasus.Fileserver.connect_client fs ws in
  let fid = Pfs.Log.create_file (Pegasus.Fileserver.log fs) () in
  let chunk = 8192 in
  let period = Sim.Time.ms 10 in
  let rec schedule_calls i =
    let at = Sim.Time.mul period (i + 1) in
    if Sim.Time.(at < duration) then begin
      ignore
        (Sim.Engine.schedule_at e ~at (fun () ->
             if i mod 4 = 3 then
               Rpc.call conn ~iface:"pfs" ~meth:"read"
                 (Pegasus.Fileserver.encode_u32s [ fid; 0; chunk ])
                 ~reply:(fun _ -> ())
             else begin
               let args =
                 Pegasus.Fileserver.encode_u32s [ fid; i * chunk; chunk ]
               in
               Rpc.call conn ~iface:"pfs" ~meth:"write"
                 (Bytes.cat args (Bytes.create chunk))
                 ~reply:(fun _ -> ())
             end));
      schedule_calls (i + 1)
    end
  in
  schedule_calls 0;
  let server = Pegasus.Fileserver.write_server fs in
  let ops =
    {
      Workloads.Baker.op_create =
        (fun () -> Pfs.Client_agent.Server.create_file server);
      op_write =
        (fun ~fid ~off ~len ->
          ignore (Pfs.Client_agent.Agent.write agent ~fid ~off ~len ()));
      op_overwrite =
        (fun ~fid ~len ->
          ignore (Pfs.Client_agent.Agent.write agent ~fid ~off:0 ~len ()));
      op_delete = (fun ~fid -> Pfs.Client_agent.Agent.delete agent ~fid);
    }
  in
  let baker =
    Workloads.Baker.create e
      ~rng:(Sim.Rng.create ~seed:5L ())
      ~ops ~create_rate:40.0 ~short_mean:(Sim.Time.ms 60)
      ~long_mean:(Sim.Time.sec 5) ()
  in
  Workloads.Baker.start baker

let pfs ?(duration = default_duration) e =
  setup_pfs e ~duration;
  Sim.Engine.run e ~until:duration

let video_pfs ?(duration = default_duration) e =
  setup_pfs e ~duration;
  (* The E1 scenario runs the engine, driving the file traffic too. *)
  E01_tile_latency.audit_scenario ~duration e
