(** Index of every experiment: id → runner.  The bench binary and the
    CLI iterate this. *)

type entry = {
  e_id : string;
  e_title : string;
  e_run : quick:bool -> domains:int -> Table.t;
      (** [domains] is a parallelism budget, never a result parameter:
          every runner produces a byte-identical table at every value
          (most ignore it; E13 fans its independent rows out over that
          many OCaml domains). *)
}

val all : entry list

val find : string -> entry option
(** Case-insensitive lookup by id ("e1", "E3b", ...). *)

val run_all : ?quick:bool -> ?domains:int -> Format.formatter -> unit
(** Run every experiment and print its table. *)
