(** Zipf flash-crowd video-on-demand read traffic.

    A fixed population of closed-loop clients reads from a catalogue of
    [files]: each client thinks (exponential), draws a title by rank
    from a Zipf law ({!Sim.Rng.zipf} — most load lands on a handful of
    hot titles), draws a chunk uniformly within the title, issues the
    read through the caller's {!ops} and loops when the read
    completes.  Closed-loop means a slow server self-throttles the
    offered load — exactly the regime where tail latency, not offered
    rate, tells the story.

    The flash crowd is a {e scripted popularity flip}: at [flip_at]
    the rank-to-title mapping rotates by half the catalogue, so the
    titles that were cold suddenly take the Zipf head while the
    previously hot ones cool off.  A popularity-aware replication
    layer must both tear down the stale replica set and grow a new one
    mid-run to hold its tail latency through the flip.

    Each client draws from its own split of the caller's RNG, so the
    trace is deterministic regardless of completion interleaving. *)

type ops = {
  op_read : client:int -> fid:int -> off:int -> len:int -> k:(unit -> unit) -> unit;
      (** Issue a read; [k] runs when the last byte reaches the
          client.  [fid] is an index in [0, files). *)
}

type t

val create :
  Sim.Engine.t ->
  rng:Sim.Rng.t ->
  ops:ops ->
  clients:int ->
  files:int ->
  file_bytes:int ->
  ?read_bytes:int ->
  ?think_mean:Sim.Time.t ->
  ?zipf_s:float ->
  ?flip_at:Sim.Time.t ->
  ?stop_at:Sim.Time.t ->
  unit ->
  t
(** Defaults: 64 KB reads, 40 ms mean think time, Zipf exponent 1.1,
    no flip, no stop (clients loop as long as the run is bounded by
    the engine's [until]).  Reads are aligned to [read_bytes] chunks
    within [file_bytes].  Raises [Invalid_argument] when the shape is
    degenerate (no clients, no files, a read larger than a file). *)

val start : t -> unit
(** Launch every client's loop (first think time starts now). *)

val hot_fid : t -> int
(** The title currently at Zipf rank 1 — before the flip, file 0;
    after, the file half a catalogue away. *)

val flipped : t -> bool

val reads_started : t -> int
val reads_done : t -> int
val bytes_read : t -> int
