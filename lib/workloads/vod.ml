type ops = {
  op_read : client:int -> fid:int -> off:int -> len:int -> k:(unit -> unit) -> unit;
}

type t = {
  engine : Sim.Engine.t;
  ops : ops;
  client_rngs : Sim.Rng.t array;
  files : int;
  chunks : int;
  read_bytes : int;
  think_mean : float;  (* seconds *)
  zipf_s : float;
  flip_at : Sim.Time.t option;
  stop_at : Sim.Time.t option;
  mutable started : int;
  mutable completed : int;
  mutable bytes : int;
}

let create engine ~rng ~ops ~clients ~files ~file_bytes ?(read_bytes = 65_536)
    ?(think_mean = Sim.Time.ms 40) ?(zipf_s = 1.1) ?flip_at ?stop_at () =
  if clients < 1 then invalid_arg "Vod.create: clients must be >= 1";
  if files < 2 then invalid_arg "Vod.create: files must be >= 2";
  if read_bytes < 1 || read_bytes > file_bytes then
    invalid_arg "Vod.create: read_bytes must fit in file_bytes";
  {
    engine;
    ops;
    client_rngs = Array.init clients (fun _ -> Sim.Rng.split rng);
    files;
    chunks = file_bytes / read_bytes;
    read_bytes;
    think_mean = Sim.Time.to_sec_f think_mean;
    zipf_s;
    flip_at;
    stop_at;
    started = 0;
    completed = 0;
    bytes = 0;
  }

let flipped t =
  match t.flip_at with
  | None -> false
  | Some at -> Sim.Time.(Sim.Engine.now t.engine >= at)

(* Rank 1 maps to file 0 before the flip and to the title half a
   catalogue away after it — the scripted flash crowd. *)
let rank_to_fid t rank =
  let shift = if flipped t then t.files / 2 else 0 in
  (rank - 1 + shift) mod t.files

let hot_fid t = rank_to_fid t 1

let stopped t =
  match t.stop_at with
  | None -> false
  | Some at -> Sim.Time.(Sim.Engine.now t.engine >= at)

let client_loop t c =
  let rng = t.client_rngs.(c) in
  let rec think () =
    let delay = Sim.Time.of_sec_f (Sim.Rng.exponential rng ~mean:t.think_mean) in
    ignore (Sim.Engine.schedule t.engine ~delay request)
  and request () =
    if not (stopped t) then begin
      let rank = Sim.Rng.zipf rng ~n:t.files ~s:t.zipf_s in
      let fid = rank_to_fid t rank in
      let off = Sim.Rng.int rng t.chunks * t.read_bytes in
      t.started <- t.started + 1;
      t.ops.op_read ~client:c ~fid ~off ~len:t.read_bytes ~k:(fun () ->
          t.completed <- t.completed + 1;
          t.bytes <- t.bytes + t.read_bytes;
          think ())
    end
  in
  think ()

let start t =
  for c = 0 to Array.length t.client_rngs - 1 do
    client_loop t c
  done

let reads_started t = t.started
let reads_done t = t.completed
let bytes_read t = t.bytes
