(* Cell payload layout: [stamp:i64][seq:u32][nsamples:u16][pcm bytes]. *)
let header_bytes = 14
let samples_per_cell = (Cell.payload_bytes - header_bytes) / 2

module Source = struct
  type t = {
    engine : Sim.Engine.t;
    vc : Net.vc;
    sample_rate : int;
    channels : int;
    cell_period : Sim.Time.t;
    mutable running : bool;
    mutable seq : int;
    mutable sent : int;
    mutable mark_every : int;
    mutable on_mark : (seq:int -> stamp:Sim.Time.t -> unit) option;
  }

  let create engine ~vc ?(sample_rate = 44100) ?(channels = 2) () =
    let frames_per_cell = samples_per_cell / channels in
    let cell_period =
      Sim.Time.of_sec_f (Float.of_int frames_per_cell /. Float.of_int sample_rate)
    in
    {
      engine;
      vc;
      sample_rate;
      channels;
      cell_period;
      running = false;
      seq = 0;
      sent = 0;
      mark_every = 0;
      on_mark = None;
    }

  let on_mark t ~every f =
    t.mark_every <- every;
    t.on_mark <- Some f

  let make_cell t =
    let cell = Cell.make_blank ~vci:0 ~last:false in
    Util.put_i64 cell.buf (cell.off + 0) (Sim.Engine.now t.engine);
    Util.put_u32 cell.buf (cell.off + 8) t.seq;
    Util.put_u16 cell.buf (cell.off + 12) samples_per_cell;
    (* Deterministic PCM ramp so tests can verify integrity. *)
    for i = 0 to samples_per_cell - 1 do
      Util.put_u16 cell.buf (cell.off + header_bytes + (2 * i)) ((t.seq + i) land 0xffff)
    done;
    cell

  let rec tick t =
    if t.running then begin
      Net.send t.vc (make_cell t);
      (match t.on_mark with
      | Some f when t.mark_every > 0 && t.seq mod t.mark_every = 0 ->
          f ~seq:t.seq ~stamp:(Sim.Engine.now t.engine)
      | Some _ | None -> ());
      t.seq <- t.seq + 1;
      t.sent <- t.sent + 1;
      ignore (Sim.Engine.schedule t.engine ~delay:t.cell_period (fun () -> tick t))
    end

  let start t =
    if not t.running then begin
      t.running <- true;
      tick t
    end

  let stop t = t.running <- false
  let cells_sent t = t.sent
  let cell_period t = t.cell_period

  let data_rate_bps t =
    Float.of_int (t.sample_rate * t.channels * 16)
end

module Sink = struct
  type t = {
    engine : Sim.Engine.t;
    cell_period : Sim.Time.t;
    playout_delay : Sim.Time.t;
    mutable base : Sim.Time.t option;  (* play-out time of seq 0 *)
    mutable received : int;
    mutable late : int;
    mutable highest_seq : int;
    delay_us : Sim.Stats.Samples.t;
    mutable on_playout : (seq:int -> stamp:Sim.Time.t -> unit) option;
  }

  let create engine ?(sample_rate = 44100) ?(channels = 2)
      ?(playout_delay = Sim.Time.ms 2) () =
    let frames_per_cell = samples_per_cell / channels in
    let cell_period =
      Sim.Time.of_sec_f (Float.of_int frames_per_cell /. Float.of_int sample_rate)
    in
    {
      engine;
      cell_period;
      playout_delay;
      base = None;
      received = 0;
      late = 0;
      highest_seq = -1;
      delay_us = Sim.Stats.Samples.create ();
      on_playout = None;
    }

  let cell_rx t (cell : Cell.t) =
    let now = Sim.Engine.now t.engine in
    let stamp = Util.get_i64 cell.buf (cell.off + 0) in
    let seq = Util.get_u32 cell.buf (cell.off + 8) in
    t.received <- t.received + 1;
    if seq > t.highest_seq then t.highest_seq <- seq;
    Sim.Stats.Samples.add t.delay_us (Sim.Time.to_us_f (Sim.Time.sub now stamp));
    let base =
      match t.base with
      | Some b -> b
      | None ->
          (* First cell anchors the play-out schedule. *)
          let b =
            Sim.Time.sub (Sim.Time.add now t.playout_delay)
              (Sim.Time.mul t.cell_period seq)
          in
          t.base <- Some b;
          b
    in
    let play_at = Sim.Time.add base (Sim.Time.mul t.cell_period seq) in
    if Sim.Time.(play_at < now) then t.late <- t.late + 1
    else
      ignore
        (Sim.Engine.schedule_at t.engine ~at:play_at (fun () ->
             match t.on_playout with
             | Some f -> f ~seq ~stamp
             | None -> ()))

  let cells_received t = t.received
  let late_cells t = t.late
  let lost_cells t = Stdlib.max 0 (t.highest_seq + 1 - t.received)
  let delay_us t = t.delay_us

  let jitter_us t =
    let samples = Sim.Stats.Samples.to_array t.delay_us in
    let summary = Sim.Stats.Summary.create () in
    Array.iter (Sim.Stats.Summary.add summary) samples;
    Sim.Stats.Summary.stddev summary

  let on_playout t f = t.on_playout <- Some f
end
