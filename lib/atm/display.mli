(** The ATM display (paper Figure 3).

    The display implements a single primitive: blit arriving pixel
    tiles into windows.  The VCI of an incoming virtual circuit indexes
    a table of window descriptors; each descriptor holds an (x, y)
    offset from the top-left of the screen and clipping information.
    The window manager creates, moves, resizes and removes windows
    purely by editing descriptors — the sending device never knows.

    Tiles essentially being fixed-size bit-blits, video and graphics
    are unified: anything that can emit tile packets can paint a
    window. *)

type t

val create :
  Sim.Engine.t -> ?screen_width:int -> ?screen_height:int -> unit -> t
(** Default screen: 1280x1024. *)

val cell_rx : t -> Cell.t -> unit
(** The handler to pass as [rx] when opening a VC to the display;
    reassembles AAL5 per VCI and decodes tile packets. *)

val train_rx : t -> Train.t -> unit
(** The handler to pass as [rx_train]: reassembles a whole train window
    with a single blit.  Frame completion instants are identical to
    feeding {!cell_rx} cell by cell. *)

(** {1 Window management} *)

val add_window :
  t -> vci:int -> x:int -> y:int -> width:int -> height:int -> unit
(** Map the stream arriving on [vci] to a window at screen position
    (x, y) clipped to [width] x [height] pixels.  Replaces any previous
    descriptor for that VCI. *)

val move_window : t -> vci:int -> x:int -> y:int -> unit
val resize_window : t -> vci:int -> width:int -> height:int -> unit
val remove_window : t -> vci:int -> unit

val raise_window : t -> vci:int -> unit
(** Put the window on top of the stacking order.  Because streams
    repaint continuously, the newly exposed window repairs itself
    within a frame time — no damage protocol needed. *)

val lower_window : t -> vci:int -> unit
val z_order : t -> vci:int -> int

val decorate :
  t -> x:int -> y:int -> width:int -> height:int -> value:int -> unit
(** The window manager's whole-screen write access: paint a rectangle
    (title bar, border) directly.  Any window may paint over it. *)

val window_count : t -> int

(** {1 Observation} *)

val on_blit : t -> (vci:int -> Tile.packet -> unit) -> unit
(** Callback on every rendered packet (after clipping); play-out
    controllers use it as the data-arrival event source. *)

val tiles_blitted : t -> vci:int -> int
val tiles_clipped : t -> vci:int -> int

val pixels_occluded : t -> vci:int -> int
(** Pixels withheld because a higher window owned them. *)

val frames_completed : t -> vci:int -> int
(** Frames for which every expected tile arrived (detected by frame
    number change). *)

val faulty_frames : t -> int
(** AAL5 frames dropped for CRC/length errors — the protection AAL5
    gives against rendering faulty tiles. *)

val staging_latency_us : t -> vci:int -> Sim.Stats.Samples.t
(** Per-packet latency from tile digitisation ([captured_at]) to blit,
    in microseconds — the paper's frame-time vs tile-time comparison. *)

val screen_byte : t -> x:int -> y:int -> int
(** Read back a framebuffer byte (tests verify actual pixel placement).
    Raises [Invalid_argument] outside the screen. *)
