(** A cell train: a contiguous burst of cells of one AAL5 frame,
    sharing one VCI and one backing PDU buffer.

    This is the unit the fast path moves through the network — one
    scheduled event per hop instead of one per cell — and the unit the
    reassembler blits from.  A train is an immutable window
    [[first, first + count)] into the [total] cells of its PDU, so
    splitting a burst (fault fallback, partial queue overflow, chunked
    delivery) is [sub], not a copy.  Cell [i]'s payload is the 48 bytes
    at [(first + i) * 48] in [buf]; the frame's end-of-frame bit lives
    on absolute cell [total - 1]. *)

type t = {
  mutable vci : int;  (** rewritten at each switch hop *)
  flow : int;
      (** causal flow id carried by every cell of the frame
          ({!Sim.Trace.no_flow} when untraced) *)
  buf : bytes;  (** the whole AAL5 PDU *)
  first : int;  (** absolute index of this window's first cell *)
  count : int;  (** cells in this window *)
  total : int;  (** cells in the whole PDU *)
}

val make : vci:int -> ?flow:int -> bytes -> t
(** A train covering a whole PDU.  Raises [Invalid_argument] unless the
    buffer is a non-zero whole number of 48-byte cells. *)

val sub : t -> first:int -> count:int -> t
(** A sub-window, [first] relative to [t]'s window.  Shares the buffer.
    Raises [Invalid_argument] when out of bounds or empty. *)

val cell : t -> int -> Cell.t
(** Cell [i] of the window as a zero-copy {!Cell.t} view carrying the
    train's current VCI. *)

val is_last : t -> int -> bool
(** Does cell [i] of the window carry the end-of-frame bit? *)

val contains_last : t -> bool
(** Does the window reach the end of the frame? *)

val count : t -> int
val total : t -> int
val first : t -> int
val buf : t -> bytes
