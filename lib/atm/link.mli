(** Unidirectional ATM link with serialisation, propagation delay and a
    bounded output queue.

    The transmitter is modelled as a virtual queue: a cell offered while
    the line is busy waits its turn; if the backlog would exceed
    [queue_cells], the cell is dropped (and counted).  Delivery happens
    one serialisation time plus the propagation delay after transmission
    starts. *)

type t

type train_rx =
  | Stream of (Train.t -> arrivals_ns:int array -> unit)
      (** a mid-path hop (switch): sub-trains are handed over as soon as
          their cells are irrevocably committed, with each cell's
          absolute arrival instant in ns *)
  | Frame_end of (Train.t -> unit)
      (** an endpoint (host NIC): the window is delivered once, at the
          arrival instant of its last transmitted cell — the only
          externally visible instant at an endpoint *)

val create :
  Sim.Engine.t ->
  ?bandwidth_bps:int ->
  ?prop:Sim.Time.t ->
  ?queue_cells:int ->
  rx:(Cell.t -> unit) ->
  ?rx_train:train_rx ->
  unit ->
  t
(** Defaults: 100 Mbit/s (the paper's network), 5 us propagation,
    256-cell queue.  Without [rx_train], trains are fanned out to [rx]
    cell by cell at the window's completion instant. *)

val send : ?priority:bool -> t -> Cell.t -> unit
(** [priority] cells belong to a reserved VC: they are never dropped
    and see at most one cell time of interference from best-effort
    traffic (non-preemptive line). *)

val send_train : ?priority:bool -> ?offers_ns:int array -> t -> Train.t -> unit
(** The fast path: offer a whole train with one call and (usually) one
    scheduled delivery event, instead of one event per cell.

    [offers_ns.(i)] is the instant the per-cell path would have offered
    cell [i] to this link (default: every cell now).  Offers must be
    non-decreasing and [offers_ns.(0)] must not precede now.  Start
    slots, queue-overflow drops, counters and delivery instants are
    computed analytically against the same transmitter horizons the
    per-cell path uses, so the result is byte-identical by
    construction.  When per-cell fidelity is genuinely required — the
    link is down, a loss stream is active, or tracing is enabled — the
    train transparently falls back to per-cell [send]s at the virtual
    offer instants; interference arriving mid-window splits the
    un-offered remainder back to the per-cell path. *)

val reserve : t -> bps:int -> bool
(** Admission control: reserve bandwidth for a VC crossing this link;
    refuses beyond 90% of line rate. *)

val release : t -> bps:int -> unit
val reserved_bps : t -> int

val bandwidth_bps : t -> int
val cell_time : t -> Sim.Time.t

val prop : t -> Sim.Time.t
(** Propagation delay as configured at creation.  A cell offered to the
    link is never seen by the far end earlier than this, which makes it
    the per-link lookahead a conservative parallel partition can bank
    on (see {!Net.cut_lookahead}). *)

(** {1 Fault injection}

    Hooks for {!Sim.Fault} plans.  A down link loses every cell offered
    to it; wire loss drops individual cells after transmission (the
    cell still occupies line time — physical loss does not respect
    reservations); a latency spike adds extra propagation delay to
    every delivery while set.  All injected losses are counted in
    {!cells_lost} and the [atm/link.cells_lost] metric. *)

val set_down : t -> bool -> unit
val is_down : t -> bool

val set_loss : t -> (unit -> bool) option -> unit
(** Install a per-cell loss decision stream (e.g. {!Sim.Fault.bernoulli});
    [None] clears it. *)

val set_loss_rate : t -> rng:Sim.Rng.t -> float -> unit
(** Convenience: Bernoulli loss at the given rate from a stream split
    off [rng]; a rate [<= 0] clears injection. *)

val set_extra_prop : t -> Sim.Time.t -> unit
(** Extra propagation delay while a latency spike is in effect;
    [Sim.Time.zero] clears it. *)

val extra_prop : t -> Sim.Time.t

(** {1 Statistics} *)

val cells_sent : t -> int

val cells_dropped : t -> int
(** Best-effort cells dropped at a full output queue. *)

val cells_lost : t -> int
(** Cells lost to injected faults (outages and wire loss). *)

val busy_time : t -> Sim.Time.t
val utilisation : t -> since:Sim.Time.t -> float
(** Fraction of the interval [since .. now] spent transmitting. *)

val queue_depth : t -> int
(** Cells currently waiting or in transmission. *)
