type window = {
  mutable wx : int;
  mutable wy : int;
  mutable ww : int;
  mutable wh : int;
  mutable wz : int;  (* stacking order: higher is on top *)
  reassembler : Aal5.Reassembler.t;
  latency_us : Sim.Stats.Samples.t;
  mutable blitted : int;
  mutable clipped : int;
  mutable occluded_px : int;
  mutable frames_done : int;
  mutable current_frame : int;
}

type t = {
  engine : Sim.Engine.t;
  screen_w : int;
  screen_h : int;
  framebuffer : bytes;
  owners : int array;  (* per-pixel VCI of the window that painted it *)
  windows : (int, window) Hashtbl.t;
  mutable next_z : int;
  mutable faulty : int;
  mutable on_blit : (vci:int -> Tile.packet -> unit) option;
  m_staging_win : Sim.Metrics.observer;
}

let create engine ?(screen_width = 1280) ?(screen_height = 1024) () =
  {
    engine;
    screen_w = screen_width;
    screen_h = screen_height;
    framebuffer = Bytes.make (screen_width * screen_height) '\000';
    owners = Array.make (screen_width * screen_height) (-1);
    windows = Hashtbl.create 16;
    next_z = 0;
    faulty = 0;
    on_blit = None;
    m_staging_win =
      Sim.Metrics.observer
        (Sim.Engine.metrics engine)
        ~sub:Sim.Subsystem.Atm
        ~help:"windowed capture-to-blit staging latency samples (us)"
        "display.staging_win_us";
  }

let add_window t ~vci ~x ~y ~width ~height =
  t.next_z <- t.next_z + 1;
  Hashtbl.replace t.windows vci
    {
      wx = x;
      wy = y;
      ww = width;
      wh = height;
      wz = t.next_z;
      reassembler = Aal5.Reassembler.create ();
      latency_us = Sim.Stats.Samples.create ();
      blitted = 0;
      clipped = 0;
      occluded_px = 0;
      frames_done = 0;
      current_frame = -1;
    }

let window t vci =
  match Hashtbl.find_opt t.windows vci with
  | Some w -> w
  | None -> invalid_arg "Display: no window for VCI"

let move_window t ~vci ~x ~y =
  let w = window t vci in
  w.wx <- x;
  w.wy <- y

let resize_window t ~vci ~width ~height =
  let w = window t vci in
  w.ww <- width;
  w.wh <- height

let remove_window t ~vci = Hashtbl.remove t.windows vci

let raise_window t ~vci =
  let w = window t vci in
  t.next_z <- t.next_z + 1;
  w.wz <- t.next_z

let lower_window t ~vci =
  let w = window t vci in
  let lowest =
    Hashtbl.fold (fun _ w' acc -> Stdlib.min acc w'.wz) t.windows w.wz
  in
  w.wz <- lowest - 1

let z_order t ~vci = (window t vci).wz
let window_count t = Hashtbl.length t.windows
let on_blit t f = t.on_blit <- Some f

(* A pixel may be painted when unowned, owned by this window, or owned
   by a window that is now stacked below this one.  Occluded pixels are
   counted but not painted; since video repaints every frame, a raised
   window repairs itself within one frame time. *)
let may_paint t w ~vci ~idx =
  let owner = t.owners.(idx) in
  if owner = -1 || owner = vci then true
  else
    match Hashtbl.find_opt t.windows owner with
    | Some other -> other.wz <= w.wz
    | None -> true

let blit_tile t w ~vci ~sx ~sy data off =
  (* Copy an 8x8 tile whose top-left lands at screen (sx, sy); the
     caller has already checked the window clip. *)
  for line = 0 to Tile.size - 1 do
    let y = sy + line in
    if y >= 0 && y < t.screen_h then
      for px = 0 to Tile.size - 1 do
        let x = sx + px in
        if x >= 0 && x < t.screen_w && off + (line * Tile.size) + px < Bytes.length data
        then begin
          let idx = (y * t.screen_w) + x in
          if may_paint t w ~vci ~idx then begin
            t.owners.(idx) <- vci;
            Bytes.set t.framebuffer idx
              (Bytes.get data (off + (line * Tile.size) + px))
          end
          else w.occluded_px <- w.occluded_px + 1
        end
      done
  done

let render t vci w (p : Tile.packet) =
  let now = Sim.Engine.now t.engine in
  let staging_us = Sim.Time.to_us_f (Sim.Time.sub now p.captured_at) in
  Sim.Stats.Samples.add w.latency_us staging_us;
  Sim.Metrics.sample t.m_staging_win staging_us;
  if p.frame <> w.current_frame then begin
    if w.current_frame >= 0 then w.frames_done <- w.frames_done + 1;
    w.current_frame <- p.frame
  end;
  for i = 0 to p.count - 1 do
    let tile_px = (p.x + i) * Tile.size and tile_py = p.y * Tile.size in
    (* Clip against the window rectangle. *)
    if
      tile_px + Tile.size <= w.ww
      && tile_py + Tile.size <= w.wh
      && tile_px >= 0 && tile_py >= 0
    then begin
      w.blitted <- w.blitted + 1;
      (* Raw tiles carry 64 bytes of pixels; compressed tiles are
         expanded notionally (we blit what data there is). *)
      if p.bytes_per_tile = Tile.raw_bytes then
        blit_tile t w ~vci ~sx:(w.wx + tile_px) ~sy:(w.wy + tile_py) p.data
          (i * p.bytes_per_tile)
    end
    else w.clipped <- w.clipped + 1
  done;
  match t.on_blit with Some f -> f ~vci p | None -> ()

let handle_reassembly t vci w = function
  | Error _ -> t.faulty <- t.faulty + 1
  | Ok payload -> begin
      (* The frame's causal flow ends here: reassembly completes at the
         last cell's arrival and the blit happens in the same instant.
         Faulty frames never end their flow — the audit reports them as
         incomplete. *)
      let tr = Sim.Engine.trace t.engine in
      (if Sim.Trace.flows_on tr then
         let flow = Aal5.Reassembler.last_flow w.reassembler in
         if flow >= 0 then
           Sim.Trace.flow_end tr
             ~ts:(Sim.Engine.now t.engine)
             ~sub:Sim.Subsystem.Atm ~cat:"video" ~flow "display");
      match Tile.unmarshal payload with
      | None -> t.faulty <- t.faulty + 1
      | Some packet -> render t vci w packet
    end

let cell_rx t (cell : Cell.t) =
  match Hashtbl.find_opt t.windows cell.vci with
  | None -> ()  (* no descriptor: the window manager has not granted access *)
  | Some w -> begin
      match Aal5.Reassembler.push w.reassembler cell with
      | None -> ()
      | Some r -> handle_reassembly t cell.vci w r
    end

(* The fast path: a whole train window lands in the reassembler as one
   blit.  Completion instants match [cell_rx] — a frame finishes when
   its last cell arrives, which is exactly when the train window
   carrying that cell is delivered. *)
let train_rx t (train : Train.t) =
  let vci = train.Train.vci in
  match Hashtbl.find_opt t.windows vci with
  | None -> ()
  | Some w ->
      List.iter
        (fun r -> handle_reassembly t vci w r)
        (Aal5.Reassembler.push_train w.reassembler train)

(* The window manager's whole-screen descriptor: it may write any
   pixel, for title bars and borders; what it paints is owned by VCI
   -2, which any window may later paint over. *)
let decorate t ~x ~y ~width ~height ~value =
  for dy = 0 to height - 1 do
    let py = y + dy in
    if py >= 0 && py < t.screen_h then
      for dx = 0 to width - 1 do
        let px = x + dx in
        if px >= 0 && px < t.screen_w then begin
          let idx = (py * t.screen_w) + px in
          t.owners.(idx) <- -2;
          Bytes.set t.framebuffer idx (Char.chr (value land 0xff))
        end
      done
  done

let tiles_blitted t ~vci = (window t vci).blitted
let tiles_clipped t ~vci = (window t vci).clipped
let pixels_occluded t ~vci = (window t vci).occluded_px
let frames_completed t ~vci = (window t vci).frames_done
let faulty_frames t = t.faulty
let staging_latency_us t ~vci = (window t vci).latency_us

let screen_byte t ~x ~y =
  if x < 0 || x >= t.screen_w || y < 0 || y >= t.screen_h then
    invalid_arg "Display.screen_byte: out of bounds";
  Char.code (Bytes.get t.framebuffer ((y * t.screen_w) + x))
