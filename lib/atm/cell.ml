let header_bytes = 5
let payload_bytes = 48
let total_bytes = header_bytes + payload_bytes
let wire_bits = total_bytes * 8

type t = {
  mutable vci : int;
  last : bool;
  flow : int;
  buf : bytes;
  off : int;
}

let make ~vci ~last ?(flow = Sim.Trace.no_flow) payload =
  if Bytes.length payload <> payload_bytes then
    invalid_arg "Cell.make: payload must be 48 bytes";
  { vci; last; flow; buf = payload; off = 0 }

let view ~vci ~last ?(flow = Sim.Trace.no_flow) buf ~off =
  if off < 0 || off + payload_bytes > Bytes.length buf then
    invalid_arg "Cell.view: payload range out of bounds";
  { vci; last; flow; buf; off }

let make_blank ~vci ~last =
  {
    vci;
    last;
    flow = Sim.Trace.no_flow;
    buf = Bytes.make payload_bytes '\000';
    off = 0;
  }

let payload_copy t = Bytes.sub t.buf t.off payload_bytes

let tx_time ~bandwidth_bps =
  Sim.Time.of_sec_f (Float.of_int wire_bits /. Float.of_int bandwidth_bps)
