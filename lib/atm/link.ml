type t = {
  engine : Sim.Engine.t;
  bandwidth_bps : int;
  cell_time : Sim.Time.t;
  prop : Sim.Time.t;
  queue_cells : int;
  rx : Cell.t -> unit;
  mutable next_free : Sim.Time.t;  (* when the transmitter goes idle *)
  mutable res_next_free : Sim.Time.t;  (* reserved traffic's horizon *)
  mutable reserved_bps : int;
  mutable sent : int;
  mutable dropped : int;
  mutable lost : int;  (* injected: outage drops + wire loss *)
  mutable is_down : bool;  (* fault injection: link outage *)
  mutable loss : (unit -> bool) option;  (* per-cell loss decision *)
  mutable extra_prop : Sim.Time.t;  (* fault injection: latency spike *)
  mutable busy : Sim.Time.t;
  m_sent : Sim.Metrics.counter;
  m_dropped : Sim.Metrics.counter;
  m_lost : Sim.Metrics.counter;
  m_queue_delay : Sim.Metrics.dist;
}

let create engine ?(bandwidth_bps = 100_000_000) ?(prop = Sim.Time.us 5)
    ?(queue_cells = 256) ~rx () =
  let metrics = Sim.Engine.metrics engine in
  {
    engine;
    bandwidth_bps;
    cell_time = Cell.tx_time ~bandwidth_bps;
    prop;
    queue_cells;
    rx;
    next_free = Sim.Time.zero;
    res_next_free = Sim.Time.zero;
    reserved_bps = 0;
    sent = 0;
    dropped = 0;
    lost = 0;
    is_down = false;
    loss = None;
    extra_prop = Sim.Time.zero;
    busy = Sim.Time.zero;
    m_sent =
      Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Atm
        ~help:"cells transmitted over all links" "link.cells_sent";
    m_dropped =
      Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Atm
        ~help:"best-effort cells dropped at full output queues"
        "link.cells_dropped";
    m_lost =
      Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Atm
        ~help:"cells lost to injected faults (outages, wire loss)"
        "link.cells_lost";
    m_queue_delay =
      Sim.Metrics.dist metrics ~sub:Sim.Subsystem.Atm
        ~help:"us a cell waits before its transmission starts"
        "link.queue_delay_us";
  }

let queue_depth t =
  let now = Sim.Engine.now t.engine in
  if Sim.Time.(t.next_free <= now) then 0
  else
    let backlog = Sim.Time.sub t.next_free now in
    Int64.to_int (Int64.div backlog t.cell_time)
    + (if Int64.rem backlog t.cell_time > 0L then 1 else 0)

(* Reserved cells are scheduled against their own horizon and suffer at
   most one cell time of non-preemptive interference from whatever is
   on the wire; best-effort cells queue behind everything.  This is the
   per-VC guarantee the ATM signalling hands out. *)
let lose t cell ~why =
  t.lost <- t.lost + 1;
  Sim.Metrics.incr t.m_lost;
  let tr = Sim.Engine.trace t.engine in
  if Sim.Trace.enabled tr then
    Sim.Trace.instant tr ~ts:(Sim.Engine.now t.engine) ~sub:Sim.Subsystem.Atm
      ~cat:"fault"
      ~args:[ ("vci", Sim.Trace.Int cell.Cell.vci) ]
      why

let send ?(priority = false) t cell =
  let now = Sim.Engine.now t.engine in
  if t.is_down then lose t cell ~why:"cell_lost_link_down"
  else if (not priority) && queue_depth t >= t.queue_cells then begin
    t.dropped <- t.dropped + 1;
    Sim.Metrics.incr t.m_dropped;
    let tr = Sim.Engine.trace t.engine in
    if Sim.Trace.enabled tr then
      Sim.Trace.instant tr ~ts:now ~sub:Sim.Subsystem.Atm ~cat:"link"
        ~args:[ ("vci", Sim.Trace.Int cell.Cell.vci) ]
        "cell_dropped"
  end
  else begin
    let start =
      if priority then
        (* one cell may be mid-transmission: bounded interference *)
        Sim.Time.add (Sim.Time.max now t.res_next_free) t.cell_time
      else Sim.Time.max (Sim.Time.max now t.next_free) t.res_next_free
    in
    let tx_end = Sim.Time.add start t.cell_time in
    if priority then t.res_next_free <- tx_end else t.next_free <- tx_end;
    t.sent <- t.sent + 1;
    Sim.Metrics.incr t.m_sent;
    Sim.Metrics.observe t.m_queue_delay
      (Sim.Time.to_us_f (Sim.Time.sub start now));
    t.busy <- Sim.Time.add t.busy t.cell_time;
    (* Injected wire loss: the cell still occupies line time, it just
       never arrives.  Physical loss does not respect reservations. *)
    let dropped_on_wire =
      match t.loss with Some decide -> decide () | None -> false
    in
    if dropped_on_wire then lose t cell ~why:"cell_lost_on_wire"
    else begin
      let deliver () = t.rx cell in
      let arrival =
        Sim.Time.add (Sim.Time.add tx_end t.prop) t.extra_prop
      in
      ignore (Sim.Engine.schedule_at t.engine ~at:arrival deliver)
    end
  end

let reserve t ~bps =
  if t.reserved_bps + bps > t.bandwidth_bps * 9 / 10 then false
  else begin
    t.reserved_bps <- t.reserved_bps + bps;
    true
  end

let release t ~bps = t.reserved_bps <- Stdlib.max 0 (t.reserved_bps - bps)
let reserved_bps t = t.reserved_bps

let bandwidth_bps t = t.bandwidth_bps
let cell_time t = t.cell_time
let cells_sent t = t.sent
let cells_dropped t = t.dropped
let cells_lost t = t.lost
let busy_time t = t.busy

(* {1 Fault injection} *)

let set_down t down = t.is_down <- down
let is_down t = t.is_down
let set_loss t decide = t.loss <- decide

let set_loss_rate t ~rng rate =
  if rate <= 0.0 then t.loss <- None
  else begin
    let stream = Sim.Rng.split rng in
    t.loss <- Some (fun () -> Sim.Rng.float stream < rate)
  end

let set_extra_prop t extra = t.extra_prop <- extra
let extra_prop t = t.extra_prop

let utilisation t ~since =
  let now = Sim.Engine.now t.engine in
  let span = Sim.Time.to_sec_f (Sim.Time.sub now since) in
  if span <= 0.0 then 0.0 else Sim.Time.to_sec_f t.busy /. span
