type train_rx =
  | Stream of (Train.t -> arrivals_ns:int array -> unit)
  | Frame_end of (Train.t -> unit)

(* A committed train window.

   [send_train] computes every cell's start slot analytically at commit
   time against the same horizons the per-cell path uses, then advances
   the horizon for the whole burst at once.  Cells keep a *virtual
   offer* instant [ot_offers.(i)] — the time the per-cell path would
   have offered them — and a start [ot_starts.(i)] (-1 when the cell
   would have been dropped at the queue).  Nothing downstream learns of
   a cell before its virtual offer has passed, so any interferer that
   arrives mid-window can still split the un-offered remainder back to
   the per-cell path and the two simulations stay byte-identical.

   Counters and metrics are applied when cells are *processed* (at
   delivery events); the public accessors add the correction for cells
   whose virtual offer has passed but whose processing event has not
   fired yet, so reads always match the per-cell path. *)
type otrain = {
  mutable ot_train : Train.t;  (* extended in place by continuation merges *)
  ot_prio : bool;
  ot_offers : int array;  (* virtual offer instants, absolute ns *)
  ot_starts : int array;  (* start slots, ns; -1 = dropped at the queue *)
  ot_h0 : int;  (* the class horizon before this commit, ns *)
  ot_lat : int;  (* cell_time + prop + extra_prop at commit, ns *)
  mutable ot_n : int;  (* cells still owned (splits truncate this) *)
  mutable ot_done : int;  (* cells already processed *)
  mutable ot_ev : Sim.Engine.event_id option;
}

type t = {
  engine : Sim.Engine.t;
  bandwidth_bps : int;
  cell_time : Sim.Time.t;
  cell_time_ns : int;
  prop : Sim.Time.t;
  prop_ns : int;
  queue_cells : int;
  rx : Cell.t -> unit;
  rx_train : train_rx option;
  mutable next_free : Sim.Time.t;  (* when the transmitter goes idle *)
  mutable res_next_free : Sim.Time.t;  (* reserved traffic's horizon *)
  mutable reserved_bps : int;
  mutable sent : int;
  mutable dropped : int;
  mutable lost : int;  (* injected: outage drops + wire loss *)
  mutable is_down : bool;  (* fault injection: link outage *)
  mutable loss : (unit -> bool) option;  (* per-cell loss decision *)
  mutable extra_prop : Sim.Time.t;  (* fault injection: latency spike *)
  mutable busy : Sim.Time.t;
  mutable opens : otrain list;  (* open train windows, oldest first *)
  mutable pending_reoffers : int;  (* split cells awaiting per-cell re-offer *)
  m_sent : Sim.Metrics.counter;
  m_dropped : Sim.Metrics.counter;
  m_lost : Sim.Metrics.counter;
  m_queue_delay : Sim.Metrics.dist;
  m_queue_delay_win : Sim.Metrics.observer;
}

let create engine ?(bandwidth_bps = 100_000_000) ?(prop = Sim.Time.us 5)
    ?(queue_cells = 256) ~rx ?rx_train () =
  let metrics = Sim.Engine.metrics engine in
  let cell_time = Cell.tx_time ~bandwidth_bps in
  {
    engine;
    bandwidth_bps;
    cell_time;
    cell_time_ns = Sim.Time.to_ns cell_time;
    prop;
    prop_ns = Sim.Time.to_ns prop;
    queue_cells;
    rx;
    rx_train;
    next_free = Sim.Time.zero;
    res_next_free = Sim.Time.zero;
    reserved_bps = 0;
    sent = 0;
    dropped = 0;
    lost = 0;
    is_down = false;
    loss = None;
    extra_prop = Sim.Time.zero;
    busy = Sim.Time.zero;
    opens = [];
    pending_reoffers = 0;
    m_sent =
      Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Atm
        ~help:"cells transmitted over all links" "link.cells_sent";
    m_dropped =
      Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Atm
        ~help:"best-effort cells dropped at full output queues"
        "link.cells_dropped";
    m_lost =
      Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Atm
        ~help:"cells lost to injected faults (outages, wire loss)"
        "link.cells_lost";
    m_queue_delay =
      Sim.Metrics.dist metrics ~sub:Sim.Subsystem.Atm
        ~help:"us a cell waits before its transmission starts"
        "link.queue_delay_us";
    m_queue_delay_win =
      Sim.Metrics.observer metrics ~sub:Sim.Subsystem.Atm
        ~help:"windowed queue-delay samples for SLO monitors"
        "link.queue_delay_win_us";
  }

let now_ns t = Sim.Time.to_ns (Sim.Engine.now t.engine)

let rec last_open = function
  | [] -> None
  | [ x ] -> Some x
  | _ :: r -> last_open r

(* The per-cell-equivalent transmitter horizon: an open train commits
   its whole burst into [next_free] at once, so while cells of open
   windows are still virtually un-offered the horizon a per-cell reader
   would see is the end of the last *offered* sent cell.  Open windows
   are commit-ordered and their offer ranges do not overlap (each
   commit's flush truncates everything past its first offer), so scan
   newest to oldest. *)
let virtual_horizon t ~prio now =
  let actual =
    Sim.Time.to_ns (if prio then t.res_next_free else t.next_free)
  in
  let cls = List.filter (fun ot -> ot.ot_prio = prio) t.opens in
  match last_open cls with
  | Some newest when newest.ot_n > 0 && newest.ot_offers.(newest.ot_n - 1) > now
    ->
      let rec back ot i older =
        if i < 0 then
          match last_open older with
          | Some o -> back o (o.ot_n - 1) (List.filter (fun x -> x != o) older)
          | None -> ot.ot_h0
        else if ot.ot_offers.(i) > now then back ot (i - 1) older
        else if ot.ot_starts.(i) >= 0 then ot.ot_starts.(i) + t.cell_time_ns
        else back ot (i - 1) older
      in
      back newest (newest.ot_n - 1) (List.filter (fun x -> x != newest) cls)
  | _ -> actual

let queue_depth t =
  let now = now_ns t in
  let nf = virtual_horizon t ~prio:false now in
  if nf <= now then 0
  else (nf - now + t.cell_time_ns - 1) / t.cell_time_ns

(* Reserved cells are scheduled against their own horizon and suffer at
   most one cell time of non-preemptive interference from whatever is
   on the wire; best-effort cells queue behind everything.  This is the
   per-VC guarantee the ATM signalling hands out. *)
let lose t cell ~why =
  t.lost <- t.lost + 1;
  Sim.Metrics.incr t.m_lost;
  let tr = Sim.Engine.trace t.engine in
  if Sim.Trace.enabled tr then
    Sim.Trace.instant tr ~ts:(Sim.Engine.now t.engine) ~sub:Sim.Subsystem.Atm
      ~cat:"fault"
      ~args:[ ("vci", Sim.Trace.Int cell.Cell.vci) ]
      why

let cancel_ev t ot =
  match ot.ot_ev with
  | Some ev ->
      ignore (Sim.Engine.cancel t.engine ev);
      ot.ot_ev <- None
  | None -> ()

(* The instant of an open window's next processing event: for a
   [Stream] receiver, the arrival of the first unprocessed delivered
   cell (chunks hand over as early as safety allows); for a
   [Frame_end] receiver (or plain fan-out) the arrival of the *last*
   delivered cell, which is the only externally visible instant at an
   endpoint.  When only dropped cells remain, their last virtual offer
   closes the window. *)
let next_event_ns t ot =
  let stream = match t.rx_train with Some (Stream _) -> true | _ -> false in
  let found = ref (-1) in
  (if stream then begin
     let i = ref ot.ot_done in
     while !found < 0 && !i < ot.ot_n do
       if ot.ot_starts.(!i) >= 0 then found := !i;
       incr i
     done
   end
   else begin
     let i = ref (ot.ot_n - 1) in
     while !found < 0 && !i >= ot.ot_done do
       if ot.ot_starts.(!i) >= 0 then found := !i;
       decr i
     done
   end);
  if !found >= 0 then ot.ot_starts.(!found) + ot.ot_lat
  else ot.ot_offers.(ot.ot_n - 1)

let rec send ?(priority = false) t cell =
  if t.opens <> [] then flush t;
  let now = Sim.Engine.now t.engine in
  if t.is_down then lose t cell ~why:"cell_lost_link_down"
  else if (not priority) && queue_depth t >= t.queue_cells then begin
    t.dropped <- t.dropped + 1;
    Sim.Metrics.incr t.m_dropped;
    let tr = Sim.Engine.trace t.engine in
    if Sim.Trace.enabled tr then
      Sim.Trace.instant tr ~ts:now ~sub:Sim.Subsystem.Atm ~cat:"link"
        ~args:[ ("vci", Sim.Trace.Int cell.Cell.vci) ]
        "cell_dropped"
  end
  else begin
    let start =
      if priority then
        (* one cell may be mid-transmission: bounded interference *)
        Sim.Time.add (Sim.Time.max now t.res_next_free) t.cell_time
      else Sim.Time.max (Sim.Time.max now t.next_free) t.res_next_free
    in
    let tx_end = Sim.Time.add start t.cell_time in
    if priority then t.res_next_free <- tx_end else t.next_free <- tx_end;
    t.sent <- t.sent + 1;
    Sim.Metrics.incr t.m_sent;
    let qd_us = Sim.Time.to_us_f (Sim.Time.sub start now) in
    Sim.Metrics.observe t.m_queue_delay qd_us;
    Sim.Metrics.sample t.m_queue_delay_win qd_us;
    t.busy <- Sim.Time.add t.busy t.cell_time;
    (* Injected wire loss: the cell still occupies line time, it just
       never arrives.  Physical loss does not respect reservations. *)
    let dropped_on_wire =
      match t.loss with Some decide -> decide () | None -> false
    in
    if dropped_on_wire then lose t cell ~why:"cell_lost_on_wire"
    else begin
      let deliver () = t.rx cell in
      let arrival = Sim.Time.add (Sim.Time.add tx_end t.prop) t.extra_prop in
      ignore (Sim.Engine.schedule_at t.engine ~at:arrival deliver)
    end
  end

(* Split every open window at [boundary_ns]: cells whose virtual offer
   has passed stay committed, the remainder is cancelled — the class
   horizon rewinds to the prefix end — and re-offered through the
   per-cell path at exactly its virtual offer instants.  Equivalence is
   by construction: the re-offered cells traverse [send] at the same
   instants the per-cell simulation would have offered them. *)
and flush ?boundary_ns t =
  match t.opens with
  | [] -> ()
  | opens ->
      let b = match boundary_ns with Some b -> b | None -> now_ns t in
      let rolled_be = ref false and rolled_pr = ref false in
      let truncated = ref [] in
      List.iter
        (fun ot ->
          let k = ref ot.ot_n in
          while !k > 0 && ot.ot_offers.(!k - 1) > b do
            decr k
          done;
          if !k < ot.ot_n then begin
            truncated := ot :: !truncated;
            let rolled = if ot.ot_prio then rolled_pr else rolled_be in
            if not !rolled then begin
              rolled := true;
              let rec back i =
                if i < 0 then ot.ot_h0
                else if ot.ot_starts.(i) >= 0 then
                  ot.ot_starts.(i) + t.cell_time_ns
                else back (i - 1)
              in
              let h = Sim.Time.ns (back (!k - 1)) in
              if ot.ot_prio then t.res_next_free <- h else t.next_free <- h
            end;
            for i = !k to ot.ot_n - 1 do
              let cell = Train.cell ot.ot_train i in
              let at = Sim.Time.ns ot.ot_offers.(i) in
              let prio = ot.ot_prio in
              t.pending_reoffers <- t.pending_reoffers + 1;
              ignore
                (Sim.Engine.schedule_at t.engine ~at (fun () ->
                     t.pending_reoffers <- t.pending_reoffers - 1;
                     send ~priority:prio t cell))
            done;
            ot.ot_n <- !k
          end)
        opens;
      match !truncated with
      | [] -> ()
      | cut ->
          List.iter
            (fun ot -> if ot.ot_done >= ot.ot_n then cancel_ev t ot)
            cut;
          t.opens <- List.filter (fun ot -> ot.ot_done < ot.ot_n) t.opens;
          List.iter (fun ot -> if ot.ot_done < ot.ot_n then reschedule t ot) cut

and reschedule t ot =
  cancel_ev t ot;
  (* A truncated [Frame_end] window's new last arrival may already be in
     the past (its event was pinned to the old, later last cell): fire
     now.  Harmless — a truncated window can no longer complete a
     frame, so late processing is externally invisible. *)
  let at = Sim.Time.max (Sim.Time.ns (next_event_ns t ot)) (Sim.Engine.now t.engine) in
  ot.ot_ev <-
    Some
      (Sim.Engine.schedule_at t.engine ~at (fun () ->
           ot.ot_ev <- None;
           fire t ot))

and fire t ot =
  process_upto t ot (now_ns t);
  if ot.ot_done >= ot.ot_n then
    t.opens <- List.filter (fun o -> o != ot) t.opens
  else reschedule t ot

(* Process committed cells whose virtual offer has passed [w]: apply
   the per-cell counters and hand maximal contiguous delivered runs to
   the receiver as zero-copy sub-trains. *)
and process_upto t ot w =
  let i = ref ot.ot_done in
  let run0 = ref (-1) in
  let flush_run last =
    let first = !run0 in
    run0 := -1;
    let count = last - first + 1 in
    let sub = Train.sub ot.ot_train ~first ~count in
    match t.rx_train with
    | Some (Stream f) ->
        let arrivals =
          Array.init count (fun k -> ot.ot_starts.(first + k) + ot.ot_lat)
        in
        f sub ~arrivals_ns:arrivals
    | Some (Frame_end f) -> f sub
    | None ->
        for k = 0 to count - 1 do
          t.rx (Train.cell sub k)
        done
  in
  while !i < ot.ot_n && ot.ot_offers.(!i) <= w do
    let s = ot.ot_starts.(!i) in
    if s >= 0 then begin
      t.sent <- t.sent + 1;
      Sim.Metrics.incr t.m_sent;
      let qd_us = Sim.Time.to_us_f (Sim.Time.ns (s - ot.ot_offers.(!i))) in
      Sim.Metrics.observe t.m_queue_delay qd_us;
      Sim.Metrics.sample t.m_queue_delay_win qd_us;
      t.busy <- Sim.Time.add t.busy t.cell_time;
      if !run0 < 0 then run0 := !i
    end
    else begin
      t.dropped <- t.dropped + 1;
      Sim.Metrics.incr t.m_dropped;
      if !run0 >= 0 then flush_run (!i - 1)
    end;
    incr i
  done;
  if !run0 >= 0 then flush_run (!i - 1);
  ot.ot_done <- !i

let send_train ?(priority = false) ?offers_ns t train =
  let n = Train.count train in
  (match offers_ns with
  | Some o when Array.length o <> n ->
      invalid_arg "Link.send_train: offers length mismatch"
  | _ -> ());
  let now = now_ns t in
  let first_offer = match offers_ns with Some o -> o.(0) | None -> now in
  if t.opens <> [] then flush ~boundary_ns:first_offer t;
  let tracing = Sim.Trace.cell_detail_on (Sim.Engine.trace t.engine) in
  if t.is_down || t.loss <> None || tracing || t.pending_reoffers > 0 then
    (* Per-cell fidelity required (loss streams draw an RNG decision per
       cell in offer order; outages may lift mid-window; cell-detail
       tracing stamps per-cell instants — flow-only tracing does NOT
       force this fallback, trains carry their flow id intact; pending
       re-offered cells from an earlier split must win same-instant
       ties against this commit, exactly as their earlier injection
       order would under the per-cell path): run every cell through the
       per-cell path at its virtual offer instant. *)
    for i = 0 to n - 1 do
      let o = match offers_ns with Some ofs -> ofs.(i) | None -> now in
      if o <= now then send ~priority t (Train.cell train i)
      else begin
        let cell = Train.cell train i in
        t.pending_reoffers <- t.pending_reoffers + 1;
        ignore
          (Sim.Engine.schedule_at t.engine ~at:(Sim.Time.ns o) (fun () ->
               t.pending_reoffers <- t.pending_reoffers - 1;
               send ~priority t cell))
      end
    done
  else begin
    let ctn = t.cell_time_ns in
    let lat = ctn + t.prop_ns + Sim.Time.to_ns t.extra_prop in
    (* The same start computation the per-cell path makes, one cell at a
       time, applied to [offers.(base .. base+n-1)] against the current
       class horizons. *)
    let analyze offers starts base =
      if priority then begin
        let rf = ref (Sim.Time.to_ns t.res_next_free) in
        for i = base to base + n - 1 do
          let s = Stdlib.max offers.(i) !rf + ctn in
          starts.(i) <- s;
          rf := s + ctn
        done;
        t.res_next_free <- Sim.Time.ns !rf
      end
      else begin
        let nf = ref (Sim.Time.to_ns t.next_free) in
        let rf = Sim.Time.to_ns t.res_next_free in
        for i = base to base + n - 1 do
          let o = offers.(i) in
          let depth = if !nf <= o then 0 else (!nf - o + ctn - 1) / ctn in
          if depth < t.queue_cells then begin
            let s = Stdlib.max (Stdlib.max o !nf) rf in
            starts.(i) <- s;
            nf := s + ctn
          end
        done;
        t.next_free <- Sim.Time.ns !nf
      end
    in
    let continuation =
      (* A chunk continuing the newest open window's PDU (switches hand
         a frame over in wire-rate chunks): extend that window in place
         rather than opening — and scheduling an event for — a new one. *)
      match last_open t.opens with
      | Some ot
        when ot.ot_prio = priority
             && ot.ot_lat = lat
             && ot.ot_train.Train.buf == train.Train.buf
             && ot.ot_train.Train.vci = train.Train.vci
             && ot.ot_train.Train.first + ot.ot_n = train.Train.first
             && ot.ot_n + n <= Array.length ot.ot_offers
             && (ot.ot_n = 0 || first_offer >= ot.ot_offers.(ot.ot_n - 1)) ->
          Some ot
      | _ -> None
    in
    match continuation with
    | Some ot ->
        let base = ot.ot_n in
        (match offers_ns with
        | Some o -> Array.blit o 0 ot.ot_offers base n
        | None -> Array.fill ot.ot_offers base n now);
        analyze ot.ot_offers ot.ot_starts base;
        ot.ot_train <-
          {
            Train.vci = train.Train.vci;
            flow = train.Train.flow;
            buf = train.Train.buf;
            first = ot.ot_train.Train.first;
            count = base + n;
            total = train.Train.total;
          };
        ot.ot_n <- base + n;
        reschedule t ot
    | None ->
        let h0 =
          Sim.Time.to_ns (if priority then t.res_next_free else t.next_free)
        in
        (* Room for the PDU's remaining cells, so continuation chunks
           append without reallocating. *)
        let cap =
          Stdlib.max n (train.Train.total - train.Train.first)
        in
        let offers = Array.make cap 0 in
        (match offers_ns with
        | Some o -> Array.blit o 0 offers 0 n
        | None -> Array.fill offers 0 n now);
        let starts = Array.make cap (-1) in
        analyze offers starts 0;
        let ot =
          {
            ot_train = train;
            ot_prio = priority;
            ot_offers = offers;
            ot_starts = starts;
            ot_h0 = h0;
            ot_lat = lat;
            ot_n = n;
            ot_done = 0;
            ot_ev = None;
          }
        in
        t.opens <- t.opens @ [ ot ];
        reschedule t ot
  end

let reserve t ~bps =
  if t.reserved_bps + bps > t.bandwidth_bps * 9 / 10 then false
  else begin
    t.reserved_bps <- t.reserved_bps + bps;
    true
  end

let release t ~bps = t.reserved_bps <- Stdlib.max 0 (t.reserved_bps - bps)
let reserved_bps t = t.reserved_bps

let bandwidth_bps t = t.bandwidth_bps
let cell_time t = t.cell_time
let prop t = t.prop

(* Counter corrections: cells of open windows whose virtual offer has
   passed but whose processing event has not fired yet.  The per-cell
   path would already have counted them. *)
let pending_counts t =
  match t.opens with
  | [] -> (0, 0)
  | opens ->
      let now = now_ns t in
      let s = ref 0 and d = ref 0 in
      List.iter
        (fun ot ->
          let i = ref ot.ot_done in
          while !i < ot.ot_n && ot.ot_offers.(!i) <= now do
            if ot.ot_starts.(!i) >= 0 then incr s else incr d;
            incr i
          done)
        opens;
      (!s, !d)

let cells_sent t = t.sent + fst (pending_counts t)
let cells_dropped t = t.dropped + snd (pending_counts t)
let cells_lost t = t.lost

let busy_time t =
  Sim.Time.add t.busy (Sim.Time.mul t.cell_time (fst (pending_counts t)))

(* {1 Fault injection} *)

let set_down t down =
  if t.opens <> [] then flush t;
  t.is_down <- down

let is_down t = t.is_down

let set_loss t decide =
  if t.opens <> [] then flush t;
  t.loss <- decide

let set_loss_rate t ~rng rate =
  if t.opens <> [] then flush t;
  if rate <= 0.0 then t.loss <- None
  else begin
    let stream = Sim.Rng.split rng in
    t.loss <- Some (fun () -> Sim.Rng.float stream < rate)
  end

let set_extra_prop t extra =
  if t.opens <> [] then flush t;
  t.extra_prop <- extra

let extra_prop t = t.extra_prop

let utilisation t ~since =
  let now = Sim.Engine.now t.engine in
  let span = Sim.Time.to_sec_f (Sim.Time.sub now since) in
  if span <= 0.0 then 0.0 else Sim.Time.to_sec_f (busy_time t) /. span
