let trailer_bytes = 8

let frame_cells len =
  (len + trailer_bytes + Cell.payload_bytes - 1) / Cell.payload_bytes

(* Build the CPCS-PDU for a payload: payload, zero padding, and the
   8-byte trailer (UU=0, CPI=0, length, CRC).  The CRC covers the PDU
   with the CRC field itself zeroed, which is how we verify it too. *)
let build_pdu payload =
  let len = Bytes.length payload in
  if len > 0xffff then invalid_arg "Aal5.segment: payload too long";
  let ncells = frame_cells len in
  let pdu_len = ncells * Cell.payload_bytes in
  let pdu = Bytes.make pdu_len '\000' in
  Bytes.blit payload 0 pdu 0 len;
  Util.put_u16 pdu (pdu_len - 6) len;
  let crc = Crc32.digest pdu ~pos:0 ~len:(pdu_len - 4) in
  Util.put_u32 pdu (pdu_len - 4) crc;
  pdu

let segment ~vci ?(flow = Sim.Trace.no_flow) payload =
  let pdu = build_pdu payload in
  let ncells = Bytes.length pdu / Cell.payload_bytes in
  List.init ncells (fun i ->
      Cell.view ~vci ~last:(i = ncells - 1) ~flow pdu
        ~off:(i * Cell.payload_bytes))

let segment_train ~vci ?(flow = Sim.Trace.no_flow) payload =
  Train.make ~vci ~flow (build_pdu payload)

type error = Crc_mismatch | Length_mismatch | Too_long

let pp_error fmt = function
  | Crc_mismatch -> Format.pp_print_string fmt "CRC mismatch"
  | Length_mismatch -> Format.pp_print_string fmt "length mismatch"
  | Too_long -> Format.pp_print_string fmt "frame too long"

module Reassembler = struct
  type t = {
    max_frame : int;
    mutable pdu : bytes;  (* accumulated payload bytes, [0, len) valid *)
    mutable len : int;
    mutable cur_flow : int;  (* flow of the frame being accumulated *)
    mutable done_flow : int;  (* flow of the last completed frame *)
  }

  let create ?(max_frame = 1 lsl 16) () =
    {
      max_frame;
      pdu = Bytes.create (32 * Cell.payload_bytes);
      len = 0;
      cur_flow = Sim.Trace.no_flow;
      done_flow = Sim.Trace.no_flow;
    }

  let reset t =
    t.len <- 0;
    t.cur_flow <- Sim.Trace.no_flow

  let pending_cells t = t.len / Cell.payload_bytes
  let last_flow t = t.done_flow

  let ensure t extra =
    let needed = t.len + extra in
    if needed > Bytes.length t.pdu then begin
      let ncap = Stdlib.max needed (2 * Bytes.length t.pdu) in
      let npdu = Bytes.create ncap in
      Bytes.blit t.pdu 0 npdu 0 t.len;
      t.pdu <- npdu
    end

  let reassemble t =
    let pdu = t.pdu and pdu_len = t.len in
    t.done_flow <- t.cur_flow;
    reset t;
    let stored_crc = Util.get_u32 pdu (pdu_len - 4) in
    let crc = Crc32.digest pdu ~pos:0 ~len:(pdu_len - 4) in
    if crc <> stored_crc then Error Crc_mismatch
    else begin
      let len = Util.get_u16 pdu (pdu_len - 6) in
      if frame_cells len * Cell.payload_bytes <> pdu_len then
        Error Length_mismatch
      else Ok (Bytes.sub pdu 0 len)
    end

  let push t (cell : Cell.t) =
    if t.len = 0 then t.cur_flow <- cell.flow;
    ensure t Cell.payload_bytes;
    Bytes.blit cell.buf cell.off t.pdu t.len Cell.payload_bytes;
    t.len <- t.len + Cell.payload_bytes;
    if cell.last then Some (reassemble t)
    else if t.len > t.max_frame then begin
      reset t;
      Some (Error Too_long)
    end
    else None

  (* One blit for a whole train window.  [push_train] behaves exactly as
     pushing the window's cells one by one: the (rare) overflow path,
     where [Too_long] fires partway through, falls back to the per-cell
     loop and can yield more than one result. *)
  let push_train t (train : Train.t) =
    let n = Train.count train in
    let bytes_len = n * Cell.payload_bytes in
    let last = Train.contains_last train in
    (* Only non-last cells can trigger Too_long. *)
    let overflow_span = if last then bytes_len - Cell.payload_bytes else bytes_len in
    if t.len + overflow_span <= t.max_frame then begin
      if t.len = 0 then t.cur_flow <- train.Train.flow;
      ensure t bytes_len;
      Bytes.blit (Train.buf train)
        (Train.first train * Cell.payload_bytes)
        t.pdu t.len bytes_len;
      t.len <- t.len + bytes_len;
      if last then [ reassemble t ] else []
    end
    else begin
      let results = ref [] in
      for i = 0 to n - 1 do
        match push t (Train.cell train i) with
        | None -> ()
        | Some r -> results := r :: !results
      done;
      List.rev !results
    end
end
