type kind =
  | Cbr of { period : Sim.Time.t }
  | Frames of { period : Sim.Time.t; frame_bytes : int }
  | Poisson of { mean_gap_s : float; rng : Sim.Rng.t }
  | On_off of {
      peak_period : Sim.Time.t;
      mean_on_s : float;
      mean_off_s : float;
      rng : Sim.Rng.t;
      mutable on_until : Sim.Time.t;
    }

type t = {
  engine : Sim.Engine.t;
  vc : Net.vc;
  kind : kind;
  mutable running : bool;
  mutable sent : int;
}

let cell_period_of_rate rate_bps =
  Sim.Time.of_sec_f (Float.of_int Cell.wire_bits /. Float.of_int rate_bps)

let cbr engine ~vc ~rate_bps =
  {
    engine;
    vc;
    kind = Cbr { period = cell_period_of_rate rate_bps };
    running = false;
    sent = 0;
  }

(* Frame-granularity CBR: whole AAL5 frames at a fixed period, the
   arrival shape of video tiles and bulk-transfer units.  Each frame is
   one burst at the first link — the workload the cell-train fast path
   batches into a single event per hop. *)
let frames engine ~vc ~frame_bytes ~period =
  if frame_bytes < 1 then invalid_arg "Traffic.frames: frame_bytes < 1";
  { engine; vc; kind = Frames { period; frame_bytes }; running = false; sent = 0 }

let poisson engine ~vc ~rate_bps ~rng =
  let mean_gap_s = Float.of_int Cell.wire_bits /. Float.of_int rate_bps in
  { engine; vc; kind = Poisson { mean_gap_s; rng }; running = false; sent = 0 }

let on_off engine ~vc ~peak_bps ~mean_on ~mean_off ~rng =
  {
    engine;
    vc;
    kind =
      On_off
        {
          peak_period = cell_period_of_rate peak_bps;
          mean_on_s = Sim.Time.to_sec_f mean_on;
          mean_off_s = Sim.Time.to_sec_f mean_off;
          rng;
          on_until = Sim.Time.zero;
        };
    running = false;
    sent = 0;
  }

let emit t =
  Net.send t.vc (Cell.make_blank ~vci:0 ~last:true);
  t.sent <- t.sent + 1

let rec tick t =
  if t.running then begin
    match t.kind with
    | Cbr { period } ->
        emit t;
        ignore (Sim.Engine.schedule t.engine ~delay:period (fun () -> tick t))
    | Frames { period; frame_bytes } ->
        Net.send_frame t.vc (Bytes.make frame_bytes '\000');
        t.sent <- t.sent + Aal5.frame_cells frame_bytes;
        ignore (Sim.Engine.schedule t.engine ~delay:period (fun () -> tick t))
    | Poisson { mean_gap_s; rng } ->
        emit t;
        let gap = Sim.Rng.exponential rng ~mean:mean_gap_s in
        ignore
          (Sim.Engine.schedule t.engine ~delay:(Sim.Time.of_sec_f gap) (fun () ->
               tick t))
    | On_off o ->
        let now = Sim.Engine.now t.engine in
        if Sim.Time.(now < o.on_until) then begin
          emit t;
          ignore
            (Sim.Engine.schedule t.engine ~delay:o.peak_period (fun () -> tick t))
        end
        else begin
          (* Begin an OFF period, then a fresh ON burst. *)
          let off = Sim.Rng.exponential o.rng ~mean:o.mean_off_s in
          let on = Sim.Rng.exponential o.rng ~mean:o.mean_on_s in
          let resume = Sim.Time.add now (Sim.Time.of_sec_f off) in
          o.on_until <- Sim.Time.add resume (Sim.Time.of_sec_f on);
          ignore
            (Sim.Engine.schedule_at t.engine ~at:resume (fun () -> tick t))
        end
  end

let start t =
  if not t.running then begin
    t.running <- true;
    (match t.kind with
    | On_off o ->
        let on = Sim.Rng.exponential o.rng ~mean:o.mean_on_s in
        o.on_until <-
          Sim.Time.add (Sim.Engine.now t.engine) (Sim.Time.of_sec_f on)
    | Cbr _ | Frames _ | Poisson _ -> ());
    tick t
  end

let stop t = t.running <- false
let cells_sent t = t.sent
