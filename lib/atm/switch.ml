type port = int

type t = {
  engine : Sim.Engine.t;
  name : string;
  nports : int;
  fabric_delay : Sim.Time.t;
  outputs : Link.t option array;
  table : (int * int, port * int * bool) Hashtbl.t;  (* ..., priority *)
  mutable switched : int;
  mutable unroutable : int;
  port_cells : int array;  (* cells accepted per input port *)
  m_switched : Sim.Metrics.counter;
  m_unroutable : Sim.Metrics.counter;
}

let create engine ~name ~ports ?(fabric_delay = Sim.Time.ns 4240) () =
  let metrics = Sim.Engine.metrics engine in
  {
    engine;
    name;
    nports = ports;
    fabric_delay;
    outputs = Array.make ports None;
    table = Hashtbl.create 64;
    switched = 0;
    unroutable = 0;
    port_cells = Array.make ports 0;
    m_switched =
      Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Atm
        ~help:"cells forwarded across all switch fabrics"
        "switch.cells_switched";
    m_unroutable =
      Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Atm
        ~help:"cells dropped for lack of a routing-table entry"
        "switch.cells_unroutable";
  }

let name t = t.name
let ports t = t.nports

let attach_output t port link =
  if port < 0 || port >= t.nports then invalid_arg "Switch.attach_output: bad port";
  match t.outputs.(port) with
  | Some _ -> invalid_arg "Switch.attach_output: port already attached"
  | None -> t.outputs.(port) <- Some link

let add_route ?(priority = false) t ~in_port ~in_vci ~out_port ~out_vci =
  if Hashtbl.mem t.table (in_port, in_vci) then
    invalid_arg "Switch.add_route: route exists";
  Hashtbl.add t.table (in_port, in_vci) (out_port, out_vci, priority)

let remove_route t ~in_port ~in_vci = Hashtbl.remove t.table (in_port, in_vci)

let route t ~in_port ~in_vci =
  match Hashtbl.find_opt t.table (in_port, in_vci) with
  | Some (out_port, out_vci, _) -> Some (out_port, out_vci)
  | None -> None

let drop_unroutable t in_port (cell : Cell.t) =
  t.unroutable <- t.unroutable + 1;
  Sim.Metrics.incr t.m_unroutable;
  let tr = Sim.Engine.trace t.engine in
  if Sim.Trace.enabled tr then
    Sim.Trace.instant tr
      ~ts:(Sim.Engine.now t.engine)
      ~sub:Sim.Subsystem.Atm ~cat:"switch"
      ~args:
        [
          ("switch", Sim.Trace.Str t.name);
          ("port", Sim.Trace.Int in_port);
          ("vci", Sim.Trace.Int cell.Cell.vci);
        ]
      "cell_unroutable"

let input t in_port (cell : Cell.t) =
  if in_port >= 0 && in_port < t.nports then
    t.port_cells.(in_port) <- t.port_cells.(in_port) + 1;
  match Hashtbl.find_opt t.table (in_port, cell.vci) with
  | None -> drop_unroutable t in_port cell
  | Some (out_port, out_vci, priority) -> begin
      match t.outputs.(out_port) with
      | None -> drop_unroutable t in_port cell
      | Some link ->
          t.switched <- t.switched + 1;
          Sim.Metrics.incr t.m_switched;
          cell.vci <- out_vci;
          let forward () = Link.send ~priority link cell in
          ignore (Sim.Engine.schedule t.engine ~delay:t.fabric_delay forward)
    end

let cells_switched t = t.switched
let cells_unroutable t = t.unroutable

let port_cells t port =
  if port < 0 || port >= t.nports then invalid_arg "Switch.port_cells: bad port";
  t.port_cells.(port)
