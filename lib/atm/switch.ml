type port = int

(* A burst whose counters were bumped at handover time: cells with
   arrival instants still in the future are subtracted back out by the
   accessors, so reads always match the per-cell path, which counts
   each cell at its own arrival event.  [pa] holds per-cell instants
   shifted by [poff] (the fabric delay once the burst is routed). *)
type pend = { pa : int array; poff : int; pport : int; pun : bool }

type t = {
  engine : Sim.Engine.t;
  name : string;
  nports : int;
  fabric_delay : Sim.Time.t;
  outputs : Link.t option array;
  table : (int * int, port * int * bool) Hashtbl.t;  (* ..., priority *)
  mutable switched : int;
  mutable unroutable : int;
  mutable pending : pend list;
  port_cells : int array;  (* cells accepted per input port *)
  m_switched : Sim.Metrics.counter;
  m_unroutable : Sim.Metrics.counter;
}

let create engine ~name ~ports ?(fabric_delay = Sim.Time.ns 4240) () =
  let metrics = Sim.Engine.metrics engine in
  {
    engine;
    name;
    nports = ports;
    fabric_delay;
    outputs = Array.make ports None;
    table = Hashtbl.create 64;
    switched = 0;
    unroutable = 0;
    pending = [];
    port_cells = Array.make ports 0;
    m_switched =
      Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Atm
        ~help:"cells forwarded across all switch fabrics"
        "switch.cells_switched";
    m_unroutable =
      Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Atm
        ~help:"cells dropped for lack of a routing-table entry"
        "switch.cells_unroutable";
  }

let name t = t.name
let ports t = t.nports

let attach_output t port link =
  if port < 0 || port >= t.nports then invalid_arg "Switch.attach_output: bad port";
  match t.outputs.(port) with
  | Some _ -> invalid_arg "Switch.attach_output: port already attached"
  | None -> t.outputs.(port) <- Some link

let add_route ?(priority = false) t ~in_port ~in_vci ~out_port ~out_vci =
  if Hashtbl.mem t.table (in_port, in_vci) then
    invalid_arg "Switch.add_route: route exists";
  Hashtbl.add t.table (in_port, in_vci) (out_port, out_vci, priority)

let remove_route t ~in_port ~in_vci = Hashtbl.remove t.table (in_port, in_vci)

let route t ~in_port ~in_vci =
  match Hashtbl.find_opt t.table (in_port, in_vci) with
  | Some (out_port, out_vci, _) -> Some (out_port, out_vci)
  | None -> None

let drop_unroutable t in_port (cell : Cell.t) =
  t.unroutable <- t.unroutable + 1;
  Sim.Metrics.incr t.m_unroutable;
  let tr = Sim.Engine.trace t.engine in
  if Sim.Trace.enabled tr then
    Sim.Trace.instant tr
      ~ts:(Sim.Engine.now t.engine)
      ~sub:Sim.Subsystem.Atm ~cat:"switch"
      ~args:
        [
          ("switch", Sim.Trace.Str t.name);
          ("port", Sim.Trace.Int in_port);
          ("vci", Sim.Trace.Int cell.Cell.vci);
        ]
      "cell_unroutable"

let input t in_port (cell : Cell.t) =
  if in_port >= 0 && in_port < t.nports then
    t.port_cells.(in_port) <- t.port_cells.(in_port) + 1;
  match Hashtbl.find_opt t.table (in_port, cell.vci) with
  | None -> drop_unroutable t in_port cell
  | Some (out_port, out_vci, priority) -> begin
      match t.outputs.(out_port) with
      | None -> drop_unroutable t in_port cell
      | Some link ->
          t.switched <- t.switched + 1;
          Sim.Metrics.incr t.m_switched;
          (* One causal hop per frame: the stage ends when the frame's
             last cell reaches this switch's input. *)
          let tr = Sim.Engine.trace t.engine in
          if cell.last && Sim.Trace.flows_on tr && cell.flow >= 0 then
            Sim.Trace.flow_step tr
              ~ts:(Sim.Engine.now t.engine)
              ~sub:Sim.Subsystem.Atm ~cat:"hop" ~flow:cell.flow
              ("sw:" ^ t.name);
          cell.vci <- out_vci;
          let forward () = Link.send ~priority link cell in
          ignore (Sim.Engine.schedule t.engine ~delay:t.fabric_delay forward)
    end

(* The train fast path: one routing lookup and one fabric-transit event
   for a whole burst.  [arrivals_ns] (each cell's arrival at this input
   port) becomes, shifted by the fabric delay, the virtual offer vector
   the output link schedules against — so per-cell timing is preserved
   exactly.  The array is consumed: it is shifted in place and handed to
   the link. *)
let now_ns t = Sim.Time.to_ns (Sim.Engine.now t.engine)

let prune_pending t =
  let now = now_ns t in
  t.pending <-
    List.filter
      (fun p -> p.pa.(Array.length p.pa - 1) - p.poff > now)
      t.pending

(* Cells counted at handover whose arrival has not happened yet. *)
let future_cells t pred =
  let now = now_ns t in
  List.fold_left
    (fun acc p ->
      if pred p then begin
        let k = ref 0 in
        let i = ref (Array.length p.pa - 1) in
        while !i >= 0 && p.pa.(!i) - p.poff > now do
          incr k;
          decr i
        done;
        acc + !k
      end
      else acc)
    0 t.pending

let note_pending t pa poff pport pun =
  prune_pending t;
  if pa.(Array.length pa - 1) - poff > now_ns t then
    t.pending <- { pa; poff; pport; pun } :: t.pending

let input_train t in_port (train : Train.t) ~arrivals_ns =
  let n = Train.count train in
  if in_port >= 0 && in_port < t.nports then
    t.port_cells.(in_port) <- t.port_cells.(in_port) + n;
  let out =
    match Hashtbl.find_opt t.table (in_port, train.Train.vci) with
    | None -> None
    | Some (out_port, out_vci, priority) -> begin
        match t.outputs.(out_port) with
        | None -> None
        | Some link -> Some (link, out_vci, priority)
      end
  in
  match out with
  | None ->
      (* The train path only runs without cell-detail tracing, so
         counting the burst is all the per-cell path would have done. *)
      t.unroutable <- t.unroutable + n;
      Sim.Metrics.incr ~by:n t.m_unroutable;
      note_pending t arrivals_ns 0 in_port true
  | Some (link, out_vci, priority) ->
      t.switched <- t.switched + n;
      Sim.Metrics.incr ~by:n t.m_switched;
      (* Same causal hop as the per-cell path: stamped with the last
         cell's (possibly future) arrival at this input, so the audit
         sees identical stage boundaries whichever path ran. *)
      let tr = Sim.Engine.trace t.engine in
      if
        Train.contains_last train
        && Sim.Trace.flows_on tr
        && train.Train.flow >= 0
      then
        Sim.Trace.flow_step tr
          ~ts:(Sim.Time.ns arrivals_ns.(n - 1))
          ~sub:Sim.Subsystem.Atm ~cat:"hop" ~flow:train.Train.flow
          ("sw:" ^ t.name);
      train.Train.vci <- out_vci;
      let fabric = Sim.Time.to_ns t.fabric_delay in
      for i = 0 to n - 1 do
        arrivals_ns.(i) <- arrivals_ns.(i) + fabric
      done;
      note_pending t arrivals_ns fabric in_port false;
      (* Commit downstream immediately with the (future) fabric-shifted
         instants as virtual offers: the output link reveals each cell
         only once its offer passes, so no fabric-transit event per
         burst is needed at all. *)
      Link.send_train ~priority ~offers_ns:arrivals_ns link train

let cells_switched t =
  prune_pending t;
  t.switched - future_cells t (fun p -> not p.pun)

let cells_unroutable t =
  prune_pending t;
  t.unroutable - future_cells t (fun p -> p.pun)

let port_cells t port =
  if port < 0 || port >= t.nports then invalid_arg "Switch.port_cells: bad port";
  prune_pending t;
  t.port_cells.(port) - future_cells t (fun p -> p.pport = port)
