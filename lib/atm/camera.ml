type mode = Raw | Jpeg of { ratio : float }
type release = [ `Tile_row | `Whole_frame ]

type t = {
  engine : Sim.Engine.t;
  vc : Net.vc;
  width : int;
  height : int;
  fps : int;
  mode : mode;
  release : release;
  max_packet_tiles : int;
  pace_bps : int;
  frame_period : Sim.Time.t;
  row_period : Sim.Time.t;  (* time to digitise 8 scan-lines *)
  bytes_per_tile : int;
  stream : string;  (* audit stream label for this camera's flows *)
  mutable running : bool;
  mutable frame : int;
  mutable frames_captured : int;
  mutable packets_sent : int;
  mutable bytes_sent : int;
  mutable on_frame : (frame:int -> captured_at:Sim.Time.t -> unit) option;
  (* send horizon for pacing: next instant the paced output is free *)
  mutable tx_free : Sim.Time.t;
}

let create engine ~vc ?(width = 640) ?(height = 480) ?(fps = 25) ?(mode = Raw)
    ?(release = `Tile_row) ?(max_packet_tiles = 14) ?(pace_bps = 80_000_000) () =
  if width mod Tile.size <> 0 || height mod Tile.size <> 0 then
    invalid_arg "Camera.create: dimensions must be multiples of 8";
  let frame_period = Sim.Time.of_sec_f (1.0 /. Float.of_int fps) in
  let bytes_per_tile =
    match mode with
    | Raw -> Tile.raw_bytes
    | Jpeg { ratio } ->
        if ratio < 1.0 then invalid_arg "Camera.create: JPEG ratio < 1";
        Stdlib.max 2 (Float.to_int (Float.of_int Tile.raw_bytes /. ratio))
  in
  {
    engine;
    vc;
    width;
    height;
    fps;
    mode;
    release;
    max_packet_tiles;
    pace_bps;
    frame_period;
    row_period = Sim.Time.div frame_period (height / Tile.size);
    bytes_per_tile;
    stream = Printf.sprintf "cam:%d" (Net.vc_src_vci vc);
    running = false;
    frame = 0;
    frames_captured = 0;
    packets_sent = 0;
    bytes_sent = 0;
    on_frame = None;
    tx_free = Sim.Time.zero;
  }

let frame_period t = t.frame_period

let data_rate_bps t =
  let tiles = t.width / Tile.size * (t.height / Tile.size) in
  Float.of_int (tiles * t.bytes_per_tile * 8 * t.fps)

(* Send a marshalled packet through the VC, paced so that the burst
   never exceeds [pace_bps].  Returns nothing; accounting updated. *)
let send_paced t payload =
  let cells = Aal5.frame_cells (Bytes.length payload) in
  let tx_time =
    Sim.Time.of_sec_f
      (Float.of_int (cells * Cell.wire_bits) /. Float.of_int t.pace_bps)
  in
  let now = Sim.Engine.now t.engine in
  let at = Sim.Time.max now t.tx_free in
  t.tx_free <- Sim.Time.add at tx_time;
  t.packets_sent <- t.packets_sent + 1;
  t.bytes_sent <- t.bytes_sent + Bytes.length payload;
  (* Each released packet is one causal flow: born when the tile row is
     released, stepped when pacing hands it to the wire.  The id rides
     the frame's cells (no wire bytes, no timing impact). *)
  let tr = Sim.Engine.trace t.engine in
  let flow =
    if Sim.Trace.flows_on tr then begin
      let f = Sim.Trace.alloc_flow tr in
      Sim.Trace.flow_start tr ~ts:now ~sub:Sim.Subsystem.Atm ~cat:"video"
        ~args:[ ("stream", Sim.Trace.Str t.stream) ]
        ~flow:f "cam.release";
      Sim.Trace.flow_step tr ~ts:at ~sub:Sim.Subsystem.Atm ~cat:"video"
        ~flow:f "cam.pace";
      Some f
    end
    else None
  in
  if Sim.Time.(at <= now) then Net.send_frame ?flow t.vc payload
  else
    ignore
      (Sim.Engine.schedule_at t.engine ~at (fun () ->
           Net.send_frame ?flow t.vc payload))

(* Pixel content: a deterministic pattern so that tests can check what
   the display renders without shipping real video. *)
let fill_tile_data t buf ~row ~first_tile ~count =
  for i = 0 to (count * t.bytes_per_tile) - 1 do
    Bytes.set buf i
      (Char.chr ((row + first_tile + i + t.frame) land 0xff))
  done

let packets_of_row t ~row ~captured_at =
  let tiles_per_row = t.width / Tile.size in
  let rec split first acc =
    if first >= tiles_per_row then List.rev acc
    else begin
      let count = Stdlib.min t.max_packet_tiles (tiles_per_row - first) in
      let data = Bytes.create (count * t.bytes_per_tile) in
      fill_tile_data t data ~row ~first_tile:first ~count;
      let packet =
        {
          Tile.x = first;
          y = row;
          frame = t.frame;
          count;
          bytes_per_tile = t.bytes_per_tile;
          captured_at;
          data;
        }
      in
      split (first + count) (Tile.marshal packet :: acc)
    end
  in
  split 0 []

let rec capture_frame t frame_start =
  if t.running then begin
    let rows = t.height / Tile.size in
    let frame_end = Sim.Time.add frame_start t.frame_period in
    (* Each row of tiles finishes digitising 8 scan-lines into the row
       buffer; under `Tile_row it is released right then. *)
    for row = 0 to rows - 1 do
      let captured_at = Sim.Time.add frame_start (Sim.Time.mul t.row_period (row + 1)) in
      let release_at =
        match t.release with `Tile_row -> captured_at | `Whole_frame -> frame_end
      in
      ignore
        (Sim.Engine.schedule_at t.engine ~at:release_at (fun () ->
             if t.running then
               List.iter (send_paced t) (packets_of_row t ~row ~captured_at)))
    done;
    ignore
      (Sim.Engine.schedule_at t.engine ~at:frame_end (fun () ->
           if t.running then begin
             t.frames_captured <- t.frames_captured + 1;
             (match t.on_frame with
             | Some f -> f ~frame:t.frame ~captured_at:frame_end
             | None -> ());
             t.frame <- t.frame + 1;
             capture_frame t frame_end
           end))
  end

let start t =
  if not t.running then begin
    t.running <- true;
    capture_frame t (Sim.Engine.now t.engine)
  end

let stop t = t.running <- false
let running t = t.running
let on_frame t f = t.on_frame <- Some f
let frames_captured t = t.frames_captured
let packets_sent t = t.packets_sent
let bytes_sent t = t.bytes_sent
