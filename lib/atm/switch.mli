(** Output-queued ATM switch (Fairisle-style).

    Cells arriving on an input port are looked up in the routing table
    by (input port, VCI), have their VCI rewritten, cross the fabric in
    a fixed transit time, and are offered to the output port's link
    (which owns the bounded output queue).  Unroutable cells are
    dropped and counted. *)

type t

type port = int

val create : Sim.Engine.t -> name:string -> ports:int -> ?fabric_delay:Sim.Time.t -> unit -> t
(** [fabric_delay] defaults to 4.24 us — one cell time at 100 Mbit/s,
    matching Fairisle's cell-pipelined fabric. *)

val name : t -> string
val ports : t -> int

val attach_output : t -> port -> Link.t -> unit
(** Connect the transmit side of [port]. Raises if already attached. *)

val add_route :
  ?priority:bool ->
  t ->
  in_port:port ->
  in_vci:int ->
  out_port:port ->
  out_vci:int ->
  unit
(** Install a routing-table entry.  [priority] marks the VC as
    bandwidth-reserved: its cells are forwarded onto the output link
    with priority.  Raises [Invalid_argument] if the (in_port, in_vci)
    pair is already routed. *)

val remove_route : t -> in_port:port -> in_vci:int -> unit

val route : t -> in_port:port -> in_vci:int -> (port * int) option

val input : t -> port -> Cell.t -> unit
(** Deliver a cell to an input port (this is the link rx callback). *)

val input_train : t -> port -> Train.t -> arrivals_ns:int array -> unit
(** Deliver a train window to an input port (the link's [Stream]
    callback): one routing lookup, one fabric-transit event for the
    whole burst.  [arrivals_ns] gives each cell's arrival instant at
    this port and is consumed — shifted by the fabric delay in place it
    becomes the offer vector for the output link. *)

val cells_switched : t -> int
val cells_unroutable : t -> int

val port_cells : t -> port -> int
(** Cells received on an input port (routable or not).  Raises
    [Invalid_argument] on a bad port. *)
