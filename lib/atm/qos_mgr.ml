(* Network-side QoS manager (the paper's contract broker, on the ATM
   fabric rather than the CPU): owns per-VC contracts and mediates
   between streams and scarce link bandwidth.  A request is admitted at
   its full rate when some path has the capacity, admitted degraded at a
   lower tier of its class ladder when only that fits, and rejected
   when even the lowest tier fits nowhere.  A periodic (or manual)
   review renegotiates: degraded contracts are promoted one tier
   whenever capacity freed by departures allows, in admission order, so
   the longest-waiting contract upgrades first.

   Every open attempt rides {!Net.open_vc}'s all-or-nothing signalling,
   and every upgrade rides {!Net.vc_adjust_reservation}'s all-or-nothing
   grow — the manager never holds partial state on a refused path. *)

type stream_class = Video | Audio | Rpc

let class_name = function Video -> "video" | Audio -> "audio" | Rpc -> "rpc"

(* Degradation ladder: fraction of the requested rate per tier, best
   first.  Video tolerates deep rate adaptation (JPEG instead of raw,
   lower frame rates); audio only halves once before it stops being
   audio; RPC is take-it-or-leave-it. *)
let tiers = function
  | Video -> [ 1.0; 0.5; 0.25 ]
  | Audio -> [ 1.0; 0.5 ]
  | Rpc -> [ 1.0 ]

let default_deadline = function
  | Video -> Sim.Time.ms 40  (* one frame period at 25 fps *)
  | Audio -> Sim.Time.ms 5
  | Rpc -> Sim.Time.ms 100

type contract = {
  c_id : int;
  c_class : stream_class;
  c_requested_bps : int;
  c_deadline : Sim.Time.t;
  mutable c_granted_bps : int;
  mutable c_tier : int;  (* index into [tiers c_class]; 0 = full rate *)
  mutable c_vc : Net.vc option;  (* [None] once torn down *)
  mutable c_upgrades : int;
}

type verdict = Accepted of contract | Degraded of contract | Rejected

type t = {
  qm_net : Net.t;
  path_attempts : int;
  mutable contracts : contract list;  (* live, newest first *)
  mutable next_id : int;
  mutable n_offered : int;
  mutable n_accepted : int;
  mutable n_degraded : int;
  mutable n_rejected : int;
  mutable n_released : int;
  mutable n_renegotiated : int;
  mutable n_reviews : int;
}

let tier_bps ~requested fraction =
  Stdlib.max 1 (int_of_float (Float.of_int requested *. fraction))

let review t =
  t.n_reviews <- t.n_reviews + 1;
  List.iter
    (fun c ->
      if c.c_tier > 0 then
        match c.c_vc with
        | None -> ()
        | Some vc ->
            (* One tier per review: promotion is gradual, so freed
               capacity is shared across waiting contracts rather than
               swallowed whole by the first. *)
            let fraction = List.nth (tiers c.c_class) (c.c_tier - 1) in
            let bps = tier_bps ~requested:c.c_requested_bps fraction in
            if Net.vc_adjust_reservation vc ~bps then begin
              c.c_tier <- c.c_tier - 1;
              c.c_granted_bps <- bps;
              c.c_upgrades <- c.c_upgrades + 1;
              t.n_renegotiated <- t.n_renegotiated + 1
            end)
    (List.rev t.contracts)

let create ?interval ?(path_attempts = 1) net () =
  if path_attempts < 1 then invalid_arg "Qos_mgr.create: path_attempts < 1";
  let t =
    {
      qm_net = net;
      path_attempts;
      contracts = [];
      next_id = 0;
      n_offered = 0;
      n_accepted = 0;
      n_degraded = 0;
      n_rejected = 0;
      n_released = 0;
      n_renegotiated = 0;
      n_reviews = 0;
    }
  in
  (match interval with
  | None -> ()
  | Some period ->
      Sim.Engine.every ~daemon:true (Net.engine net) ~period (fun () ->
          review t;
          true));
  t

let request ?deadline ?rx_train t ~cls ~bps ~src ~dst ~rx () =
  if bps <= 0 then invalid_arg "Qos_mgr.request: bps <= 0";
  t.n_offered <- t.n_offered + 1;
  (* Full rate over every candidate path first, then down the ladder:
     a degraded circuit on the best path never pre-empts a full-rate
     chance on an alternate spine. *)
  let try_tier bps_tier =
    let rec attempt sel =
      if sel >= t.path_attempts then None
      else
        match
          Net.open_vc ~reserve_bps:bps_tier ~path_sel:sel ?rx_train t.qm_net
            ~src ~dst ~rx
        with
        | vc -> Some vc
        | exception Failure _ -> attempt (sel + 1)
    in
    attempt 0
  in
  let rec descend tier = function
    | [] -> None
    | fraction :: rest -> (
        let bps_tier = tier_bps ~requested:bps fraction in
        match try_tier bps_tier with
        | Some vc -> Some (tier, bps_tier, vc)
        | None -> descend (tier + 1) rest)
  in
  match descend 0 (tiers cls) with
  | None ->
      t.n_rejected <- t.n_rejected + 1;
      Rejected
  | Some (tier, granted, vc) ->
      let c =
        {
          c_id = t.next_id;
          c_class = cls;
          c_requested_bps = bps;
          c_deadline =
            (match deadline with Some d -> d | None -> default_deadline cls);
          c_granted_bps = granted;
          c_tier = tier;
          c_vc = Some vc;
          c_upgrades = 0;
        }
      in
      t.next_id <- t.next_id + 1;
      t.contracts <- c :: t.contracts;
      if tier = 0 then begin
        t.n_accepted <- t.n_accepted + 1;
        Accepted c
      end
      else begin
        t.n_degraded <- t.n_degraded + 1;
        Degraded c
      end

let teardown t c =
  match c.c_vc with
  | None -> ()
  | Some vc ->
      Net.close_vc t.qm_net vc;
      c.c_vc <- None;
      t.contracts <- List.filter (fun c' -> c' != c) t.contracts;
      t.n_released <- t.n_released + 1

let live t = List.rev t.contracts
let live_count t = List.length t.contracts
let offered t = t.n_offered
let accepted t = t.n_accepted
let degraded t = t.n_degraded
let rejected t = t.n_rejected
let released t = t.n_released
let renegotiated t = t.n_renegotiated
let reviews t = t.n_reviews

let contract_id c = c.c_id
let contract_class c = c.c_class
let contract_vc c = c.c_vc
let requested_bps c = c.c_requested_bps
let granted_bps c = c.c_granted_bps
let contract_tier c = c.c_tier
let contract_deadline c = c.c_deadline
let upgrades c = c.c_upgrades
let is_degraded c = c.c_tier > 0
