(** Topology builder and virtual-circuit signalling.

    A network is a graph of hosts and switches joined by bidirectional
    link pairs.  {!open_vc} plays the role of ATM signalling: it finds a
    shortest path, allocates a VCI per hop, installs the switch routing
    entries, and hands back a handle for sending cells or whole AAL5
    frames.  In Pegasus this signalling runs in a management process on
    the workstation rather than in the devices; here it is a library
    call made by whatever component manages the device. *)

type t

type node_id

type vc

val create : ?vci_limit:int -> Sim.Engine.t -> t
(** [vci_limit] (default 65535, minimum 32) caps the VCI space of every
    (node, port) pair: signalling fails — and rolls back — when a hop's
    space is exhausted.  Closed VCs return their VCIs for reuse, so only
    the peak number of concurrently open VCs through a port counts
    against the limit. *)

val engine : t -> Sim.Engine.t

val add_switch : t -> name:string -> ports:int -> node_id
val add_host : t -> name:string -> node_id

val find : t -> string -> node_id
(** Look a node up by name.  Raises [Not_found]. *)

val node_name : t -> node_id -> string

val connect :
  t ->
  ?bandwidth_bps:int ->
  ?prop:Sim.Time.t ->
  ?queue_cells:int ->
  node_id ->
  node_id ->
  unit
(** Join two nodes with a pair of links (one per direction) with the
    given characteristics (defaults as in {!Link.create}). *)

val open_vc :
  ?reserve_bps:int ->
  ?rx_train:(Train.t -> unit) ->
  ?path_sel:int ->
  t ->
  src:node_id ->
  dst:node_id ->
  rx:(Cell.t -> unit) ->
  vc
(** Establish a unidirectional VC from [src] to [dst]; [rx] runs at the
    destination host for each arriving cell.  [reserve_bps] asks the
    signalling for a bandwidth reservation on every link of the path:
    the VC's cells then travel with priority and bounded jitter.
    [rx_train] receives whole train windows on the fast path (at the
    window's completion instant); without it, windows are fanned out to
    [rx] cell by cell at that same instant.

    Path search is host-transparent (intermediate hops are always
    switches) and [path_sel] rotates the edge-iteration order at every
    expanded node, so a QoS manager can deterministically spread
    equal-cost circuits over a multi-spine fabric; [path_sel = 0] (the
    default) is plain attach-order BFS.

    Raises [Failure] if no path exists, either endpoint is a switch,
    admission control refuses the reservation, or a hop's VCI space is
    exhausted.  A failed open is all-or-nothing: any reservations,
    VCIs and switch routes already installed are rolled back. *)

val close_vc : t -> vc -> unit
(** Tear the VC down: releases its reservation, removes its switch
    routes and host handler, and returns every hop's VCI to the free
    pool for reuse.  Idempotent. *)

val vc_adjust_reservation : vc -> bps:int -> bool
(** Renegotiate the VC's reservation to a new total of [bps]: shrinking
    always succeeds and releases the difference on every path link;
    growing reserves the difference on every link, all-or-nothing (on
    refusal nothing changes and the result is [false]).  Returns [false]
    on a closed VC.  Raises [Invalid_argument] when [bps <= 0] or the VC
    was opened without a reservation. *)

val send : vc -> Cell.t -> unit
(** Send one cell (the VCI field is overwritten). *)

val send_frame : ?flow:int -> vc -> bytes -> unit
(** AAL5-segment a payload and send all its cells — as one zero-copy
    {!Train.t} on the fast path (the default), or cell by cell when the
    train path is disabled with {!set_train_path}.  [flow] is stamped
    on every cell of the frame; it is simulation metadata (no wire
    bytes), so traced and untraced runs are timing-identical. *)

val set_train_path : t -> bool -> unit
(** Toggle the cell-train fast path (default [true]).  Off, every frame
    moves through the per-cell path; simulation results are identical
    either way — only event counts and wall-clock speed differ. *)

val train_path : t -> bool

val vc_hops : vc -> int
(** Number of links traversed. *)

val vc_src_vci : vc -> int

val vc_reserved : vc -> int option

val vc_bandwidth_bps : vc -> int
(** Line rate of the VC's first link (for sender-side pacing). *)

val vc_dst_vci : vc -> int
(** The VCI under which cells arrive at the destination — the display
    device, for instance, uses it to index window descriptors. *)

val vc_path_links : vc -> Link.t list
(** The directed links the VC crosses, source first — the links its
    reservation (if any) is held on. *)

val vc_live : vc -> bool
(** [false] once the VC has been closed. *)

val host_rx_capacity : t -> node_id -> int
(** Size of the host's dense VCI-indexed receive-dispatch array — a
    diagnostic for the churn tests: with VCI reuse it stays pinned
    across open/close cycles.  Raises [Invalid_argument] on a switch. *)

val frame_rx : rx:(bytes -> unit) -> ?on_error:(Aal5.error -> unit) -> unit -> Cell.t -> unit
(** Build a cell handler that reassembles AAL5 frames and passes the
    payloads to [rx].  Frames with CRC or length errors go to
    [on_error] (default: ignored — the paper's devices simply avoid
    rendering faulty tiles). *)

val frame_rx_pair :
  rx:(bytes -> unit) ->
  ?on_error:(Aal5.error -> unit) ->
  unit ->
  (Cell.t -> unit) * (Train.t -> unit)
(** Like {!frame_rx}, but returns a cell handler and a train handler
    sharing one reassembler — pass both to {!open_vc} so frames arriving
    as trains are reassembled with a single blit. *)

val frame_rx_pair_flow :
  rx:(flow:int -> bytes -> unit) ->
  ?on_error:(Aal5.error -> unit) ->
  unit ->
  (Cell.t -> unit) * (Train.t -> unit)
(** Like {!frame_rx_pair}, but [rx] also receives the causal flow id
    carried by the frame's cells ({!Sim.Trace.no_flow} when the sender
    attached none). *)

(** {1 Multi-server attach and frame pipes} *)

val fan :
  ?bandwidth_bps:int ->
  ?prop:Sim.Time.t ->
  ?queue_cells:int ->
  t ->
  switch:node_id ->
  prefix:string ->
  n:int ->
  node_id array
(** Attach [n] hosts (named [prefix0], [prefix1], ...) to [switch],
    each over its own link pair with the given characteristics — the
    one-switch counterpart of {!clos} for server-fleet rigs.  Names
    and attach order are deterministic.  Raises [Invalid_argument]
    when [n < 1]. *)

val open_pipe :
  ?reserve_bps:int ->
  ?path_sel:int ->
  t ->
  src:node_id ->
  dst:node_id ->
  rx:(flow:int -> bytes -> unit) ->
  vc
(** {!open_vc} for callers that deal in whole AAL5 frames: a shared
    reassembler is pre-wired on both the per-cell path and the train
    fast path ({!frame_rx_pair_flow}), and [rx] receives each frame's
    payload with the causal flow id its cells carried
    ({!Sim.Trace.no_flow} when the sender attached none).  Frames with
    CRC or length errors are dropped silently, as the paper's devices
    do. *)

(** {1 Clos / leaf-spine fabric generation} *)

type clos = {
  cl_spines : node_id array;
  cl_leaves : node_id array;
  cl_hosts : node_id array;
      (** Leaf-major: the hosts of leaf [l] occupy indices
          [l * hosts_per_leaf .. (l+1) * hosts_per_leaf - 1]. *)
}

val clos :
  ?spine_bps:int ->
  ?host_bps:int ->
  ?spine_prop:Sim.Time.t ->
  ?host_prop:Sim.Time.t ->
  ?queue_cells:int ->
  t ->
  spines:int ->
  leaves:int ->
  hosts_per_leaf:int ->
  unit ->
  clos
(** Generate a two-tier folded Clos (leaf-spine) fabric: every leaf
    switch connects to every spine switch over a [spine_bps] trunk
    (default 1 Gbit/s, 10 us), and [hosts_per_leaf] hosts hang off each
    leaf over [host_bps] links (default 100 Mbit/s, 5 us).  Construction
    is O(V+E); names ([spine0], [leaf3], [h3.5]) and edge attach order
    are deterministic, so paths — and therefore experiment tables — are
    reproducible.  Host-to-host paths across leaves are 4 hops
    (host, leaf, spine, leaf, host); {!open_vc}'s [path_sel] picks among
    the [spines] equal-cost spine crossings.  Raises [Invalid_argument]
    when any dimension is [< 1]. *)

(** {1 Fault injection}

    Per-link loss and outage injection, driven by a {!Sim.Fault} plan
    (or any deterministic RNG). *)

val links_between : t -> node_id -> node_id -> Link.t list
(** The directed links from the first node to the second (normally one
    per [connect]); empty when not adjacent. *)

val set_link_down : t -> node_id -> node_id -> bool -> unit
(** Take both directions of the link pair between two adjacent nodes
    down (or back up).  Raises [Invalid_argument] if not adjacent. *)

val inject_loss : t -> rng:Sim.Rng.t -> float -> unit
(** Install independent Bernoulli wire-loss streams at the given rate
    on every link, each split off [rng] (deterministic given the RNG's
    seed and the link creation order).  A rate [<= 0] clears loss. *)

val clear_faults : t -> unit
(** Clear every injected fault on every link: outage flags, loss
    streams and latency spikes. *)

(** {1 Statistics} *)

val total_cells_dropped : t -> int
(** Sum of queue drops over every link in the network. *)

val total_cells_lost : t -> int
(** Sum of fault-injected losses over every link. *)

val switches : t -> Switch.t list
val links : t -> Link.t list

(** {1 Topology partitioning}

    Support for sharded parallel simulation ({!Sim.Shard}): split the
    topology into per-switch-neighbourhood parts and compute the
    conservative lookahead of the cut. *)

val partition : t -> parts:int -> int array
(** Assign every node a part in [0, parts): switches are split into
    contiguous blocks in creation order and each host joins its nearest
    switch's part (multi-source BFS, deterministic).  With fewer
    switches than [parts], the extra parts stay empty; with no switches
    everything lands in part 0.  Raises [Invalid_argument] when
    [parts < 1]. *)

val cut_lookahead : t -> assign:int array -> Sim.Time.t option
(** Minimum propagation delay over the links whose endpoints sit in
    different parts of [assign] — the largest lookahead a conservative
    sharded run of this topology can use.  [None] when no link crosses
    the cut.  Raises [Invalid_argument] if [assign] does not cover every
    node. *)
