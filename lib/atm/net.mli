(** Topology builder and virtual-circuit signalling.

    A network is a graph of hosts and switches joined by bidirectional
    link pairs.  {!open_vc} plays the role of ATM signalling: it finds a
    shortest path, allocates a VCI per hop, installs the switch routing
    entries, and hands back a handle for sending cells or whole AAL5
    frames.  In Pegasus this signalling runs in a management process on
    the workstation rather than in the devices; here it is a library
    call made by whatever component manages the device. *)

type t

type node_id

type vc

val create : Sim.Engine.t -> t
val engine : t -> Sim.Engine.t

val add_switch : t -> name:string -> ports:int -> node_id
val add_host : t -> name:string -> node_id

val find : t -> string -> node_id
(** Look a node up by name.  Raises [Not_found]. *)

val node_name : t -> node_id -> string

val connect :
  t ->
  ?bandwidth_bps:int ->
  ?prop:Sim.Time.t ->
  ?queue_cells:int ->
  node_id ->
  node_id ->
  unit
(** Join two nodes with a pair of links (one per direction) with the
    given characteristics (defaults as in {!Link.create}). *)

val open_vc :
  ?reserve_bps:int ->
  ?rx_train:(Train.t -> unit) ->
  t ->
  src:node_id ->
  dst:node_id ->
  rx:(Cell.t -> unit) ->
  vc
(** Establish a unidirectional VC from [src] to [dst]; [rx] runs at the
    destination host for each arriving cell.  [reserve_bps] asks the
    signalling for a bandwidth reservation on every link of the path:
    the VC's cells then travel with priority and bounded jitter.
    [rx_train] receives whole train windows on the fast path (at the
    window's completion instant); without it, windows are fanned out to
    [rx] cell by cell at that same instant.
    Raises [Failure] if no path exists, either endpoint is a switch, or
    admission control refuses the reservation. *)

val close_vc : t -> vc -> unit

val send : vc -> Cell.t -> unit
(** Send one cell (the VCI field is overwritten). *)

val send_frame : ?flow:int -> vc -> bytes -> unit
(** AAL5-segment a payload and send all its cells — as one zero-copy
    {!Train.t} on the fast path (the default), or cell by cell when the
    train path is disabled with {!set_train_path}.  [flow] is stamped
    on every cell of the frame; it is simulation metadata (no wire
    bytes), so traced and untraced runs are timing-identical. *)

val set_train_path : t -> bool -> unit
(** Toggle the cell-train fast path (default [true]).  Off, every frame
    moves through the per-cell path; simulation results are identical
    either way — only event counts and wall-clock speed differ. *)

val train_path : t -> bool

val vc_hops : vc -> int
(** Number of links traversed. *)

val vc_src_vci : vc -> int

val vc_reserved : vc -> int option

val vc_bandwidth_bps : vc -> int
(** Line rate of the VC's first link (for sender-side pacing). *)

val vc_dst_vci : vc -> int
(** The VCI under which cells arrive at the destination — the display
    device, for instance, uses it to index window descriptors. *)

val frame_rx : rx:(bytes -> unit) -> ?on_error:(Aal5.error -> unit) -> unit -> Cell.t -> unit
(** Build a cell handler that reassembles AAL5 frames and passes the
    payloads to [rx].  Frames with CRC or length errors go to
    [on_error] (default: ignored — the paper's devices simply avoid
    rendering faulty tiles). *)

val frame_rx_pair :
  rx:(bytes -> unit) ->
  ?on_error:(Aal5.error -> unit) ->
  unit ->
  (Cell.t -> unit) * (Train.t -> unit)
(** Like {!frame_rx}, but returns a cell handler and a train handler
    sharing one reassembler — pass both to {!open_vc} so frames arriving
    as trains are reassembled with a single blit. *)

val frame_rx_pair_flow :
  rx:(flow:int -> bytes -> unit) ->
  ?on_error:(Aal5.error -> unit) ->
  unit ->
  (Cell.t -> unit) * (Train.t -> unit)
(** Like {!frame_rx_pair}, but [rx] also receives the causal flow id
    carried by the frame's cells ({!Sim.Trace.no_flow} when the sender
    attached none). *)

(** {1 Fault injection}

    Per-link loss and outage injection, driven by a {!Sim.Fault} plan
    (or any deterministic RNG). *)

val links_between : t -> node_id -> node_id -> Link.t list
(** The directed links from the first node to the second (normally one
    per [connect]); empty when not adjacent. *)

val set_link_down : t -> node_id -> node_id -> bool -> unit
(** Take both directions of the link pair between two adjacent nodes
    down (or back up).  Raises [Invalid_argument] if not adjacent. *)

val inject_loss : t -> rng:Sim.Rng.t -> float -> unit
(** Install independent Bernoulli wire-loss streams at the given rate
    on every link, each split off [rng] (deterministic given the RNG's
    seed and the link creation order).  A rate [<= 0] clears loss. *)

val clear_faults : t -> unit
(** Clear every injected fault on every link: outage flags, loss
    streams and latency spikes. *)

(** {1 Statistics} *)

val total_cells_dropped : t -> int
(** Sum of queue drops over every link in the network. *)

val total_cells_lost : t -> int
(** Sum of fault-injected losses over every link. *)

val switches : t -> Switch.t list
val links : t -> Link.t list

(** {1 Topology partitioning}

    Support for sharded parallel simulation ({!Sim.Shard}): split the
    topology into per-switch-neighbourhood parts and compute the
    conservative lookahead of the cut. *)

val partition : t -> parts:int -> int array
(** Assign every node a part in [0, parts): switches are split into
    contiguous blocks in creation order and each host joins its nearest
    switch's part (multi-source BFS, deterministic).  With fewer
    switches than [parts], the extra parts stay empty; with no switches
    everything lands in part 0.  Raises [Invalid_argument] when
    [parts < 1]. *)

val cut_lookahead : t -> assign:int array -> Sim.Time.t option
(** Minimum propagation delay over the links whose endpoints sit in
    different parts of [assign] — the largest lookahead a conservative
    sharded run of this topology can use.  [None] when no link crosses
    the cut.  Raises [Invalid_argument] if [assign] does not cover every
    node. *)
