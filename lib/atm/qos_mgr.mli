(** Network-side QoS manager: per-VC stream contracts over the fabric.

    The paper's QoS manager mediates between applications and scarce
    resources — accepting, rejecting and renegotiating contracts.
    {!Nemesis.Qos} plays that role for CPU; this module plays it for
    network bandwidth.  A {!request} names a stream class and a rate;
    the manager admits it at full rate if any candidate path through the
    fabric has the capacity ({!Net.open_vc} with rotating [path_sel]),
    admits it {e degraded} at a lower tier of the class's rate ladder
    when only that fits, and rejects it otherwise.  {!review} — run
    manually or on a periodic interval — renegotiates upward: degraded
    contracts are promoted one tier at a time, in admission order, as
    departures free capacity.

    Every admission and every upgrade is all-or-nothing on the
    underlying signalling: a refused attempt leaves no reservation,
    route or VCI behind. *)

type t

type stream_class = Video | Audio | Rpc

val class_name : stream_class -> string

val tiers : stream_class -> float list
(** The degradation ladder of a class as fractions of the requested
    rate, best first: video [1, 1/2, 1/4]; audio [1, 1/2]; RPC [1]
    (take-it-or-leave-it). *)

val default_deadline : stream_class -> Sim.Time.t
(** Per-class end-to-end deadline recorded on contracts that do not
    override it: 40 ms video, 5 ms audio, 100 ms RPC. *)

type contract

type verdict =
  | Accepted of contract  (** admitted at the requested rate *)
  | Degraded of contract  (** admitted at a lower tier of the ladder *)
  | Rejected

val create : ?interval:Sim.Time.t -> ?path_attempts:int -> Net.t -> unit -> t
(** A manager over the given fabric.  [interval] schedules {!review} as
    a daemon at that period (default: manual review only).
    [path_attempts] (default 1) is how many rotated path selections each
    admission tier tries — set it to the spine count of a Clos fabric to
    let admission spread over every equal-cost crossing. *)

val request :
  ?deadline:Sim.Time.t ->
  ?rx_train:(Train.t -> unit) ->
  t ->
  cls:stream_class ->
  bps:int ->
  src:Net.node_id ->
  dst:Net.node_id ->
  rx:(Cell.t -> unit) ->
  unit ->
  verdict
(** Offer a contract: a [cls] stream from [src] to [dst] at [bps].
    Tries full rate on every candidate path, then each lower tier of
    the ladder; the returned contract's VC is open and reserved at the
    granted rate.  Raises [Invalid_argument] when [bps <= 0]. *)

val teardown : t -> contract -> unit
(** Close the contract's VC and release everything it held.
    Idempotent. *)

val review : t -> unit
(** One renegotiation pass: every live degraded contract, in admission
    order, is offered the next tier up; the upgrade happens only when
    every link of its path can take the difference. *)

(** {1 Contract accessors} *)

val contract_id : contract -> int
val contract_class : contract -> stream_class

val contract_vc : contract -> Net.vc option
(** [None] once torn down. *)

val requested_bps : contract -> int
val granted_bps : contract -> int

val contract_tier : contract -> int
(** Index into {!tiers}: 0 is full rate. *)

val contract_deadline : contract -> Sim.Time.t

val upgrades : contract -> int
(** Tier promotions this contract has received from {!review}. *)

val is_degraded : contract -> bool

(** {1 Manager statistics} *)

val live : t -> contract list
(** Live contracts in admission order. *)

val live_count : t -> int
val offered : t -> int
val accepted : t -> int
val degraded : t -> int
val rejected : t -> int
val released : t -> int

val renegotiated : t -> int
(** Total tier promotions across all reviews. *)

val reviews : t -> int
