(** AAL5 segmentation and reassembly.

    A CPCS-PDU is the user payload, zero padding, and an 8-byte trailer
    (UU, CPI, 16-bit length, CRC-32), sized to a whole number of cells.
    The final cell of a frame is marked via the PTI bit.  The paper's
    devices use AAL5 so that faulty tiles are detected before rendering;
    the CRC gives us exactly that.

    Segmentation is zero-copy: the PDU is built once and cells (or one
    {!Train.t}) are views into it. *)

val trailer_bytes : int

val frame_cells : int -> int
(** [frame_cells len] is the number of cells needed for a [len]-byte
    payload. *)

val segment : vci:int -> ?flow:int -> bytes -> Cell.t list
(** Split a payload into cells — zero-copy views of one PDU buffer,
    each carrying [flow].  Raises [Invalid_argument] on payloads longer
    than 65535 bytes. *)

val segment_train : vci:int -> ?flow:int -> bytes -> Train.t
(** The same PDU as one train (the fast path). *)

type error =
  | Crc_mismatch
  | Length_mismatch
  | Too_long  (** reassembly buffer exceeded *)

val pp_error : Format.formatter -> error -> unit

(** Per-VC reassembler.  Feed cells in order; a result is returned on
    each end-of-frame cell. *)
module Reassembler : sig
  type t

  val create : ?max_frame:int -> unit -> t

  val push : t -> Cell.t -> (bytes, error) result option
  (** [push t cell] returns [Some result] when [cell] completes a frame,
      [None] otherwise. *)

  val push_train : t -> Train.t -> (bytes, error) result list
  (** Push a whole train window as one blit.  Equivalent to pushing its
      cells in order; the list is almost always empty (mid-frame) or a
      singleton (the window completes a frame), but the overflow path
      can emit [Error Too_long] followed by the result of whatever
      accumulates afterwards. *)

  val pending_cells : t -> int

  val last_flow : t -> int
  (** Flow id carried by the cells of the most recently completed
      frame ({!Sim.Trace.no_flow} if none, or untraced).  Valid until
      the next frame completes — read it inside the delivery
      callback. *)
end
