(* The tables are forced at module initialisation: [digest] sits on the
   per-frame hot path and must not pay a [Lazy.force] (a caml_modify +
   branch) per call.

   [digest] uses slicing-by-8: eight derived tables let the loop consume
   eight bytes per iteration with a single xor-combine, cutting the
   serial table-lookup dependency chain from eight steps per 8 bytes to
   one.  The result is bit-identical to the classic byte-at-a-time
   CRC-32 (reflected, polynomial 0xEDB88320), which the KAT test pins. *)
let t0 =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
      done;
      !c)

let derive prev =
  Array.init 256 (fun n -> t0.(prev.(n) land 0xff) lxor (prev.(n) lsr 8))
let t1 = derive t0
let t2 = derive t1
let t3 = derive t2
let t4 = derive t3
let t5 = derive t4
let t6 = derive t5
let t7 = derive t6

(* Safe: callers bounds-check the whole range before the loop. *)
let[@inline] word32 b i =
  Char.code (Bytes.unsafe_get b i)
  lor (Char.code (Bytes.unsafe_get b (i + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (i + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (i + 3)) lsl 24)

let digest b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.digest: range out of bounds";
  let c = ref 0xFFFFFFFF in
  let i = ref pos in
  let last8 = pos + len - 8 in
  while !i <= last8 do
    let lo = !c lxor word32 b !i in
    let hi = word32 b (!i + 4) in
    c :=
      Array.unsafe_get t7 (lo land 0xff)
      lxor Array.unsafe_get t6 ((lo lsr 8) land 0xff)
      lxor Array.unsafe_get t5 ((lo lsr 16) land 0xff)
      lxor Array.unsafe_get t4 ((lo lsr 24) land 0xff)
      lxor Array.unsafe_get t3 (hi land 0xff)
      lxor Array.unsafe_get t2 ((hi lsr 8) land 0xff)
      lxor Array.unsafe_get t1 ((hi lsr 16) land 0xff)
      lxor Array.unsafe_get t0 ((hi lsr 24) land 0xff);
    i := !i + 8
  done;
  for j = !i to pos + len - 1 do
    let byte = Char.code (Bytes.unsafe_get b j) in
    c := Array.unsafe_get t0 ((!c lxor byte) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let digest_bytes b = digest b ~pos:0 ~len:(Bytes.length b)
