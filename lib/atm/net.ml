type node_id = int

type edge = {
  dst : node_id;
  out_port : int;  (* port (switch) or NIC index (host) at the source *)
  in_port : int;  (* port or NIC index at the destination *)
  link : Link.t;  (* src -> dst *)
}

(* Host receive dispatch is a dense array indexed by VCI: signalling
   allocates small consecutive integers (from 32), so an option array
   replaces the per-cell Hashtbl probe of the old implementation. *)
type node_kind =
  | Switch_node of Switch.t
  | Host_node of {
      mutable rx_cells : (Cell.t -> unit) option array;
      mutable rx_trains : (Train.t -> unit) option array;
    }

(* Adjacency is a growable array (first [edge_count] slots live, in
   attach order) so [connect] appends in O(1) and an E-edge fabric
   builds in O(V+E); iteration order is attach order, exactly what the
   old list gave, so experiment tables are unchanged. *)
type node = {
  node_name : string;
  kind : node_kind;
  mutable edges : edge array;
  mutable edge_count : int;
  mutable nic_count : int;
}

(* Per-(node, receiving port) VCI allocator.  Closed VCs push their VCI
   onto [free] (LIFO, so churn reuses the same small integers and the
   dense host rx arrays stay bounded); [next] only advances when the
   free list is empty.  [Net.create]'s [vci_limit] caps [next]: ATM VCI
   space is finite, and exhausting it mid-signalling must roll back. *)
type vci_pool = { mutable vp_next : int; mutable vp_free : int list }

type t = {
  engine : Sim.Engine.t;
  mutable nodes : node array;
  mutable node_count : int;
  by_name : (string, node_id) Hashtbl.t;
  vci_pools : (node_id * int, vci_pool) Hashtbl.t;
  vci_limit : int;
  mutable all_links : Link.t list;
  mutable all_switches : Switch.t list;
  mutable use_trains : bool;
}

let create ?(vci_limit = 65_535) engine =
  if vci_limit < 32 then invalid_arg "Net.create: vci_limit < 32";
  {
    engine;
    nodes = [||];
    node_count = 0;
    by_name = Hashtbl.create 16;
    vci_pools = Hashtbl.create 64;
    vci_limit;
    all_links = [];
    all_switches = [];
    use_trains = true;
  }

let set_train_path t on = t.use_trains <- on
let train_path t = t.use_trains

let engine t = t.engine

let add_node t node =
  if Hashtbl.mem t.by_name node.node_name then
    invalid_arg ("Net: duplicate node name " ^ node.node_name);
  if t.node_count = Array.length t.nodes then begin
    let ncap = if t.node_count = 0 then 8 else t.node_count * 2 in
    let narr = Array.make ncap node in
    Array.blit t.nodes 0 narr 0 t.node_count;
    t.nodes <- narr
  end;
  t.nodes.(t.node_count) <- node;
  let id = t.node_count in
  t.node_count <- t.node_count + 1;
  Hashtbl.add t.by_name node.node_name id;
  id

let add_switch t ~name ~ports =
  let sw = Switch.create t.engine ~name ~ports () in
  t.all_switches <- sw :: t.all_switches;
  add_node t
    { node_name = name; kind = Switch_node sw; edges = [||]; edge_count = 0; nic_count = 0 }

let add_host t ~name =
  add_node t
    {
      node_name = name;
      kind = Host_node { rx_cells = Array.make 64 None; rx_trains = Array.make 64 None };
      edges = [||];
      edge_count = 0;
      nic_count = 0;
    }

let find t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None -> raise Not_found

let node_name t id = t.nodes.(id).node_name

let append_edge node e =
  if node.edge_count = Array.length node.edges then begin
    let ncap = if node.edge_count = 0 then 4 else node.edge_count * 2 in
    let narr = Array.make ncap e in
    Array.blit node.edges 0 narr 0 node.edge_count;
    node.edges <- narr
  end;
  node.edges.(node.edge_count) <- e;
  node.edge_count <- node.edge_count + 1

let iter_edges f node =
  for k = 0 to node.edge_count - 1 do
    f node.edges.(k)
  done

let slot arr vci = if vci >= 0 && vci < Array.length arr then arr.(vci) else None

let grown arr vci =
  if vci < Array.length arr then arr
  else begin
    let narr = Array.make (Stdlib.max (vci + 1) (2 * Array.length arr)) None in
    Array.blit arr 0 narr 0 (Array.length arr);
    narr
  end

let host_rx t id (cell : Cell.t) =
  match t.nodes.(id).kind with
  | Host_node h -> begin
      match slot h.rx_cells cell.vci with
      | Some handler -> handler cell
      | None -> ()  (* cell for a closed VC: dropped on the floor *)
    end
  | Switch_node _ -> assert false

let host_rx_train t id (train : Train.t) =
  match t.nodes.(id).kind with
  | Host_node h -> begin
      match slot h.rx_trains train.Train.vci with
      | Some handler -> handler train
      | None -> (
          (* No train-aware handler: fan the window out to the cell
             handler at its completion instant. *)
          match slot h.rx_cells train.Train.vci with
          | Some handler ->
              for i = 0 to Train.count train - 1 do
                handler (Train.cell train i)
              done
          | None -> ())
    end
  | Switch_node _ -> assert false

let host_rx_capacity t id =
  match t.nodes.(id).kind with
  | Host_node h -> Array.length h.rx_cells
  | Switch_node _ -> invalid_arg "Net.host_rx_capacity: not a host"

(* Allocate the attachment point for one end of a new link pair and
   return its port/NIC index. *)
let alloc_port t id =
  let node = t.nodes.(id) in
  match node.kind with
  | Switch_node sw ->
      let used = node.edge_count in
      if used >= Switch.ports sw then
        invalid_arg ("Net.connect: switch " ^ node.node_name ^ " is full");
      used
  | Host_node _ ->
      let idx = node.nic_count in
      node.nic_count <- idx + 1;
      idx

let rx_for t id port =
  match t.nodes.(id).kind with
  | Switch_node sw -> fun cell -> Switch.input sw port cell
  | Host_node _ -> fun cell -> host_rx t id cell

let rx_train_for t id port =
  match t.nodes.(id).kind with
  | Switch_node sw ->
      Link.Stream (fun train ~arrivals_ns -> Switch.input_train sw port train ~arrivals_ns)
  | Host_node _ -> Link.Frame_end (fun train -> host_rx_train t id train)

let connect t ?(bandwidth_bps = 100_000_000) ?(prop = Sim.Time.us 5)
    ?(queue_cells = 256) a b =
  let pa = alloc_port t a and pb = alloc_port t b in
  let link_ab =
    Link.create t.engine ~bandwidth_bps ~prop ~queue_cells ~rx:(rx_for t b pb)
      ~rx_train:(rx_train_for t b pb) ()
  in
  let link_ba =
    Link.create t.engine ~bandwidth_bps ~prop ~queue_cells ~rx:(rx_for t a pa)
      ~rx_train:(rx_train_for t a pa) ()
  in
  (match t.nodes.(a).kind with
  | Switch_node sw -> Switch.attach_output sw pa link_ab
  | Host_node _ -> ());
  (match t.nodes.(b).kind with
  | Switch_node sw -> Switch.attach_output sw pb link_ba
  | Host_node _ -> ());
  append_edge t.nodes.(a) { dst = b; out_port = pa; in_port = pb; link = link_ab };
  append_edge t.nodes.(b) { dst = a; out_port = pb; in_port = pa; link = link_ba };
  t.all_links <- link_ab :: link_ba :: t.all_links

(* Breadth-first path search, host-transparent: only the source (and
   switches) are expanded, so a multi-homed host can never be chosen as
   an intermediate hop — it is an endpoint, not a through-route.  [sel]
   rotates the starting edge at every expanded node, giving signalling a
   deterministic way to spread equal-cost paths over a multi-spine
   fabric ([sel = 0] reproduces plain attach-order BFS exactly). *)
let shortest_path ?(sel = 0) t ~src ~dst =
  let prev = Array.make t.node_count None in
  let visited = Array.make t.node_count false in
  visited.(src) <- true;
  let q = Queue.create () in
  Queue.add src q;
  let found = ref (src = dst) in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    let n = t.nodes.(u) in
    let expand =
      u = src
      || match n.kind with Switch_node _ -> true | Host_node _ -> false
    in
    if expand then begin
      let deg = n.edge_count in
      let start = if deg = 0 then 0 else sel mod deg in
      for k = 0 to deg - 1 do
        let e = n.edges.((start + k) mod deg) in
        if not visited.(e.dst) then begin
          visited.(e.dst) <- true;
          prev.(e.dst) <- Some (u, e);
          if e.dst = dst then found := true else Queue.add e.dst q
        end
      done
    end
  done;
  if not !found then None
  else begin
    let rec walk acc v =
      match prev.(v) with
      | None -> acc
      | Some (u, e) -> walk (e :: acc) u
    in
    Some (walk [] dst)
  end

let pool_for t id port =
  let key = (id, port) in
  match Hashtbl.find_opt t.vci_pools key with
  | Some p -> p
  | None ->
      let p = { vp_next = 32; vp_free = [] } in
      Hashtbl.add t.vci_pools key p;
      p

let alloc_vci t id port =
  let pool = pool_for t id port in
  match pool.vp_free with
  | vci :: rest ->
      pool.vp_free <- rest;
      vci
  | [] ->
      if pool.vp_next > t.vci_limit then
        failwith
          (Printf.sprintf "Net: VCI space exhausted on %s port %d"
             t.nodes.(id).node_name port);
      let vci = pool.vp_next in
      pool.vp_next <- vci + 1;
      vci

let free_vci t id port vci =
  let pool = pool_for t id port in
  pool.vp_free <- vci :: pool.vp_free

type vc = {
  vc_net : t;
  net_src : node_id;
  net_dst : node_id;
  first_link : Link.t;
  src_vci : int;
  dst_vci : int;
  hops : int;
  mutable reserved : int option;  (* bps reserved on every link of the path *)
  path_links : Link.t list;
  (* per-hop VCI allocations (receiving node, receiving port, vci) *)
  allocs : (node_id * int * int) array;
  (* switch routing entries and the host rx entry, for teardown *)
  entries : (Switch.t * int * int) list;
  mutable live : bool;
}

let open_vc ?reserve_bps ?rx_train ?(path_sel = 0) t ~src ~dst ~rx =
  (match (t.nodes.(src).kind, t.nodes.(dst).kind) with
  | Host_node _, Host_node _ -> ()
  | _ -> failwith "Net.open_vc: endpoints must be hosts");
  match shortest_path ~sel:path_sel t ~src ~dst with
  | None | Some [] -> failwith "Net.open_vc: no path"
  | Some (first :: _ as path) ->
      let links = List.map (fun e -> e.link) path in
      let path_arr = Array.of_list path in
      let n = Array.length path_arr in
      (* The host-transparent path search guarantees every intermediate
         node is a switch; check before touching any state so a bad path
         can never half-install. *)
      for i = 0 to n - 2 do
        match t.nodes.(path_arr.(i).dst).kind with
        | Switch_node _ -> ()
        | Host_node _ -> failwith "Net.open_vc: path crosses a host"
      done;
      (match reserve_bps with
      | None -> ()
      | Some bps ->
          (* Admission along the whole path, rolled back on refusal. *)
          let rec admit done_ = function
            | [] -> ()
            | l :: rest ->
                if Link.reserve l ~bps then admit (l :: done_) rest
                else begin
                  List.iter (fun l' -> Link.release l' ~bps) done_;
                  failwith "Net.open_vc: reservation refused (admission)"
                end
          in
          admit [] links);
      let priority = reserve_bps <> None in
      (* Allocate a VCI per hop (at the receiving side) and install the
         switch routes as we go: the cell enters node path_arr.(i).dst
         with vcis.(i) and must leave via edge path_arr.(i+1).  Any
         failure past admission — VCI space exhausted, a clashing route —
         unwinds every route, VCI and reservation already made, so a
         failed open leaves no trace (the admission-leak fix). *)
      let vcis = Array.make n (-1) in
      let entries = ref [] in
      let rollback () =
        List.iter
          (fun (sw, in_port, in_vci) -> Switch.remove_route sw ~in_port ~in_vci)
          !entries;
        for i = 0 to n - 1 do
          if vcis.(i) >= 0 then
            free_vci t path_arr.(i).dst path_arr.(i).in_port vcis.(i)
        done;
        match reserve_bps with
        | Some bps -> List.iter (fun l -> Link.release l ~bps) links
        | None -> ()
      in
      (try
         for i = 0 to n - 1 do
           vcis.(i) <- alloc_vci t path_arr.(i).dst path_arr.(i).in_port;
           if i > 0 then
             match t.nodes.(path_arr.(i - 1).dst).kind with
             | Switch_node sw ->
                 Switch.add_route ~priority sw ~in_port:path_arr.(i - 1).in_port
                   ~in_vci:vcis.(i - 1) ~out_port:path_arr.(i).out_port
                   ~out_vci:vcis.(i);
                 entries := (sw, path_arr.(i - 1).in_port, vcis.(i - 1)) :: !entries
             | Host_node _ -> assert false  (* checked above *)
         done
       with e ->
         rollback ();
         raise e);
      let dst_vci = vcis.(n - 1) in
      (match t.nodes.(dst).kind with
      | Host_node h ->
          h.rx_cells <- grown h.rx_cells dst_vci;
          h.rx_cells.(dst_vci) <- Some rx;
          h.rx_trains <- grown h.rx_trains dst_vci;
          h.rx_trains.(dst_vci) <- rx_train
      | Switch_node _ -> assert false);
      {
        vc_net = t;
        net_src = src;
        net_dst = dst;
        first_link = first.link;
        src_vci = vcis.(0);
        dst_vci;
        hops = n;
        reserved = reserve_bps;
        path_links = links;
        allocs =
          Array.mapi (fun i e -> (e.dst, e.in_port, vcis.(i))) path_arr;
        entries = !entries;
        live = true;
      }

let close_vc t vc =
  if vc.live then begin
    vc.live <- false;
    (match vc.reserved with
    | Some bps -> List.iter (fun l -> Link.release l ~bps) vc.path_links
    | None -> ());
    List.iter
      (fun (sw, in_port, in_vci) -> Switch.remove_route sw ~in_port ~in_vci)
      vc.entries;
    (match t.nodes.(vc.net_dst).kind with
    | Host_node h ->
        if vc.dst_vci < Array.length h.rx_cells then
          h.rx_cells.(vc.dst_vci) <- None;
        if vc.dst_vci < Array.length h.rx_trains then
          h.rx_trains.(vc.dst_vci) <- None
    | Switch_node _ -> ());
    (* Return every hop's VCI to its pool so churn reuses the same small
       integers instead of growing the dense rx arrays without bound. *)
    Array.iter (fun (id, port, vci) -> free_vci t id port vci) vc.allocs
  end

let vc_adjust_reservation vc ~bps =
  if bps <= 0 then invalid_arg "Net.vc_adjust_reservation: bps <= 0";
  match vc.reserved with
  | None -> invalid_arg "Net.vc_adjust_reservation: VC has no reservation"
  | Some old ->
      if not vc.live then false
      else if bps = old then true
      else if bps < old then begin
        List.iter (fun l -> Link.release l ~bps:(old - bps)) vc.path_links;
        vc.reserved <- Some bps;
        true
      end
      else begin
        (* Grow by the delta on every link, all or nothing. *)
        let delta = bps - old in
        let rec grow done_ = function
          | [] -> true
          | l :: rest ->
              if Link.reserve l ~bps:delta then grow (l :: done_) rest
              else begin
                List.iter (fun l' -> Link.release l' ~bps:delta) done_;
                false
              end
        in
        if grow [] vc.path_links then begin
          vc.reserved <- Some bps;
          true
        end
        else false
      end

let send vc (cell : Cell.t) =
  cell.vci <- vc.src_vci;
  Link.send ~priority:(vc.reserved <> None) vc.first_link cell

let send_frame ?flow vc payload =
  let priority = vc.reserved <> None in
  if vc.vc_net.use_trains then
    Link.send_train ~priority vc.first_link
      (Aal5.segment_train ~vci:vc.src_vci ?flow payload)
  else
    List.iter (fun cell -> Link.send ~priority vc.first_link cell)
      (Aal5.segment ~vci:vc.src_vci ?flow payload)

let vc_hops vc = vc.hops
let vc_bandwidth_bps vc = Link.bandwidth_bps vc.first_link
let vc_reserved vc = vc.reserved
let vc_src_vci vc = vc.src_vci
let vc_dst_vci vc = vc.dst_vci
let vc_path_links vc = vc.path_links
let vc_live vc = vc.live

let frame_rx_pair ~rx ?(on_error = fun _ -> ()) () =
  let reassembler = Aal5.Reassembler.create () in
  let handle = function Ok payload -> rx payload | Error e -> on_error e in
  let cell_fn cell =
    match Aal5.Reassembler.push reassembler cell with
    | None -> ()
    | Some r -> handle r
  in
  let train_fn train =
    List.iter handle (Aal5.Reassembler.push_train reassembler train)
  in
  (cell_fn, train_fn)

let frame_rx ~rx ?on_error () = fst (frame_rx_pair ~rx ?on_error ())

(* Flow-aware variant: the handler also receives the causal flow id
   carried by the frame's cells (Sim.Trace.no_flow when untraced). *)
let frame_rx_pair_flow ~rx ?(on_error = fun _ -> ()) () =
  let reassembler = Aal5.Reassembler.create () in
  let handle = function
    | Ok payload -> rx ~flow:(Aal5.Reassembler.last_flow reassembler) payload
    | Error e -> on_error e
  in
  let cell_fn cell =
    match Aal5.Reassembler.push reassembler cell with
    | None -> ()
    | Some r -> handle r
  in
  let train_fn train =
    List.iter handle (Aal5.Reassembler.push_train reassembler train)
  in
  (cell_fn, train_fn)

(* {1 Multi-server attach and frame pipes}

   Helpers for rigs that hang a fleet of hosts off one switch (the
   file-service experiments): [fan] attaches and links n named hosts
   in one deterministic sweep, [open_pipe] is open_vc with a shared
   AAL5 reassembler pre-wired on both the cell path and the train fast
   path, so the caller deals in whole frames and flow ids. *)

let fan ?bandwidth_bps ?prop ?queue_cells t ~switch ~prefix ~n =
  if n < 1 then invalid_arg "Net.fan: n must be >= 1";
  Array.init n (fun i ->
      let h = add_host t ~name:(Printf.sprintf "%s%d" prefix i) in
      connect t ?bandwidth_bps ?prop ?queue_cells switch h;
      h)

let open_pipe ?reserve_bps ?path_sel t ~src ~dst ~rx =
  let cell_rx, train_rx = frame_rx_pair_flow ~rx () in
  open_vc ?reserve_bps ~rx_train:train_rx ?path_sel t ~src ~dst ~rx:cell_rx

let total_cells_dropped t =
  List.fold_left (fun acc l -> acc + Link.cells_dropped l) 0 t.all_links

let total_cells_lost t =
  List.fold_left (fun acc l -> acc + Link.cells_lost l) 0 t.all_links

let switches t = t.all_switches
let links t = t.all_links

(* {1 Clos / leaf-spine fabric generation}

   A two-tier folded Clos: every leaf connects to every spine, hosts
   hang off the leaves.  All construction is O(V+E) (edge append is
   amortised O(1)), names and port assignments are deterministic, and
   the attach order — all spine trunks of leaf 0, then leaf 0's hosts,
   then leaf 1 ... — fixes the BFS edge order that path selection
   rotates over. *)

type clos = {
  cl_spines : node_id array;
  cl_leaves : node_id array;
  cl_hosts : node_id array;  (* leaf-major: hosts of leaf l start at l * hosts_per_leaf *)
}

let clos ?(spine_bps = 1_000_000_000) ?(host_bps = 100_000_000)
    ?(spine_prop = Sim.Time.us 10) ?(host_prop = Sim.Time.us 5)
    ?(queue_cells = 256) t ~spines ~leaves ~hosts_per_leaf () =
  if spines < 1 || leaves < 1 || hosts_per_leaf < 1 then
    invalid_arg "Net.clos: spines, leaves and hosts_per_leaf must be >= 1";
  let cl_spines =
    Array.init spines (fun s ->
        add_switch t ~name:(Printf.sprintf "spine%d" s) ~ports:leaves)
  in
  let cl_leaves =
    Array.init leaves (fun l ->
        add_switch t
          ~name:(Printf.sprintf "leaf%d" l)
          ~ports:(spines + hosts_per_leaf))
  in
  let cl_hosts =
    Array.init (leaves * hosts_per_leaf) (fun i ->
        add_host t
          ~name:(Printf.sprintf "h%d.%d" (i / hosts_per_leaf) (i mod hosts_per_leaf)))
  in
  Array.iteri
    (fun l leaf ->
      Array.iter
        (fun spine ->
          connect t ~bandwidth_bps:spine_bps ~prop:spine_prop ~queue_cells leaf
            spine)
        cl_spines;
      for h = 0 to hosts_per_leaf - 1 do
        connect t ~bandwidth_bps:host_bps ~prop:host_prop ~queue_cells
          cl_hosts.((l * hosts_per_leaf) + h)
          leaf
      done)
    cl_leaves;
  { cl_spines; cl_leaves; cl_hosts }

(* {1 Topology partitioning}

   Sharding a simulation along switch boundaries: switches are split
   into [parts] contiguous blocks (in creation order, so the assignment
   is deterministic), and every host joins the part of its nearest
   switch via a multi-source BFS seeded from the switches in id order.
   Hosts with no switch in reach fall into part 0. *)

let partition t ~parts =
  if parts < 1 then invalid_arg "Net.partition: parts < 1";
  let assign = Array.make t.node_count 0 in
  let sw_ids = ref [] in
  for id = t.node_count - 1 downto 0 do
    match t.nodes.(id).kind with
    | Switch_node _ -> sw_ids := id :: !sw_ids
    | Host_node _ -> ()
  done;
  let sw_ids = Array.of_list !sw_ids in
  let nsw = Array.length sw_ids in
  if nsw = 0 then assign
  else begin
    let visited = Array.make t.node_count false in
    let q = Queue.create () in
    Array.iteri
      (fun k id ->
        (* Contiguous blocks: switch k of nsw goes to part k*parts/nsw,
           so parts beyond the switch count are left empty rather than
           splitting one switch's neighbourhood. *)
        assign.(id) <- k * parts / nsw;
        visited.(id) <- true;
        Queue.add id q)
      sw_ids;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      iter_edges
        (fun e ->
          if not visited.(e.dst) then begin
            visited.(e.dst) <- true;
            assign.(e.dst) <- assign.(u);
            Queue.add e.dst q
          end)
        t.nodes.(u)
    done;
    assign
  end

let cut_lookahead t ~assign =
  if Array.length assign <> t.node_count then
    invalid_arg "Net.cut_lookahead: assignment size mismatch";
  let best = ref None in
  for u = 0 to t.node_count - 1 do
    iter_edges
      (fun e ->
        if assign.(u) <> assign.(e.dst) then
          let p = Link.prop e.link in
          match !best with
          | Some b when Sim.Time.(b <= p) -> ()
          | _ -> best := Some p)
      t.nodes.(u)
  done;
  !best

(* {1 Fault injection} *)

let links_between t a b =
  let out = ref [] in
  iter_edges (fun e -> if e.dst = b then out := e.link :: !out) t.nodes.(a);
  List.rev !out

let set_link_down t a b down =
  let pair = links_between t a b @ links_between t b a in
  if pair = [] then invalid_arg "Net.set_link_down: nodes are not adjacent";
  List.iter (fun l -> Link.set_down l down) pair

let inject_loss t ~rng rate =
  List.iter (fun l -> Link.set_loss_rate l ~rng rate) t.all_links

let clear_faults t =
  List.iter
    (fun l ->
      Link.set_down l false;
      Link.set_loss l None;
      Link.set_extra_prop l Sim.Time.zero)
    t.all_links
