(** Synthetic cross traffic for loading links and switches. *)

type t

val cbr : Sim.Engine.t -> vc:Net.vc -> rate_bps:int -> t
(** Constant bit rate: one cell every [wire_bits / rate_bps]. *)

val frames : Sim.Engine.t -> vc:Net.vc -> frame_bytes:int -> period:Sim.Time.t -> t
(** Whole AAL5 frames at a fixed period — the arrival shape of video
    tiles and bulk-transfer units.  [cells_sent] counts cells, not
    frames. *)

val poisson : Sim.Engine.t -> vc:Net.vc -> rate_bps:int -> rng:Sim.Rng.t -> t
(** Poisson cell arrivals averaging [rate_bps]. *)

val on_off :
  Sim.Engine.t ->
  vc:Net.vc ->
  peak_bps:int ->
  mean_on:Sim.Time.t ->
  mean_off:Sim.Time.t ->
  rng:Sim.Rng.t ->
  t
(** Bursty source: exponentially distributed ON periods at [peak_bps]
    alternating with silent OFF periods. *)

val start : t -> unit
val stop : t -> unit
val cells_sent : t -> int
