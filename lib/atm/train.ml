type t = {
  mutable vci : int;
  flow : int;
  buf : bytes;
  first : int;
  count : int;
  total : int;
}

let make ~vci ?(flow = Sim.Trace.no_flow) buf =
  let len = Bytes.length buf in
  if len = 0 || len mod Cell.payload_bytes <> 0 then
    invalid_arg "Train.make: buffer must be a whole number of cells";
  let total = len / Cell.payload_bytes in
  { vci; flow; buf; first = 0; count = total; total }

let count t = t.count
let total t = t.total
let buf t = t.buf
let first t = t.first

let sub t ~first ~count =
  if first < 0 || count < 1 || first + count > t.count then
    invalid_arg "Train.sub: range out of bounds";
  { t with first = t.first + first; count }

let is_last t i =
  if i < 0 || i >= t.count then invalid_arg "Train.is_last: index out of bounds";
  t.first + i = t.total - 1

let contains_last t = t.first + t.count = t.total

let cell t i =
  Cell.view ~vci:t.vci ~last:(is_last t i) ~flow:t.flow t.buf
    ~off:((t.first + i) * Cell.payload_bytes)
