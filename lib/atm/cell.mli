(** ATM cells: 53 bytes on the wire, 48 of payload.

    Only the header fields the models need are represented: the VCI
    (rewritten hop by hop by switches) and the AAL5 end-of-frame bit
    carried in the PTI field.

    The payload is a [(buf, off)] view of a backing buffer rather than
    an owned 48-byte copy, so segmenting an AAL5 PDU into cells is
    zero-copy: every cell of a frame aliases one PDU buffer.  Code that
    reads or writes payload bytes must index [buf] at [off + i]. *)

val header_bytes : int (* 5 *)
val payload_bytes : int (* 48 *)
val total_bytes : int (* 53 *)
val wire_bits : int (* 424 *)

type t = {
  mutable vci : int;  (** rewritten at each switch hop *)
  last : bool;  (** AAL5 end-of-frame marker (PTI bit) *)
  flow : int;
      (** causal flow id ({!Sim.Trace.no_flow} when untraced) —
          simulation metadata, not wire bytes *)
  buf : bytes;  (** backing buffer (shared with the whole frame) *)
  off : int;  (** start of this cell's 48 payload bytes in [buf] *)
}

val make : vci:int -> last:bool -> ?flow:int -> bytes -> t
(** A cell owning its whole buffer ([off = 0]).  Raises
    [Invalid_argument] if the payload is not 48 bytes. *)

val view : vci:int -> last:bool -> ?flow:int -> bytes -> off:int -> t
(** A zero-copy view of 48 bytes at [off].  Raises [Invalid_argument]
    if the range exceeds the buffer. *)

val make_blank : vci:int -> last:bool -> t
(** A cell with a zeroed payload (fresh buffer). *)

val payload_copy : t -> bytes
(** The 48 payload bytes as a fresh buffer (for tests/tools; the data
    path never needs the copy). *)

val tx_time : bandwidth_bps:int -> Sim.Time.t
(** Serialisation time of one cell at the given link rate. *)
