type channel = {
  ch_dst : Domain.t;
  ch_mode : [ `Sync | `Async ];
  ch_closure : (unit -> Job.t option) option;
  mutable ch_pending : int;
  mutable ch_sent : int;
  mutable ch_delivered : int;
}

type plan = {
  p_dom : Domain.t;
  p_window_end : Sim.Time.t;
  p_window_ev : Sim.Engine.event_id;
  mutable p_completion_ev : Sim.Engine.event_id option;
  mutable p_seg_start : Sim.Time.t;
  p_overhead_until : Sim.Time.t;
  p_span : Sim.Trace.span;
}

type t = {
  engine : Sim.Engine.t;
  policy : Policy.t;
  ctx_switch_cost : Sim.Time.t;
  mutable doms : Domain.t list;
  mutable channels : channel list;
  mutable plan : plan option;
  mutable last_running : Domain.t option;
  mutable kick_pending : bool;
  mutable handoff : (Domain.t * Sim.Time.t) option;
      (* sync-send target and the window it inherits from the sender *)
  mutable idle_wake : Sim.Engine.event_id option;
  mutable kps_depth : int;
  mutable deferred : channel list;  (* interrupts raised during a KPS *)
  mutable switches : int;
  mutable idle_since : Sim.Time.t option;
  mutable idle_total : Sim.Time.t;
  m_switches : Sim.Metrics.counter;
  m_deadline_misses : Sim.Metrics.counter;
  m_slack_windows : Sim.Metrics.counter;
  m_slack_window_us : Sim.Metrics.dist;
  m_lateness_win : Sim.Metrics.observer;
}

let create engine ~policy ?(ctx_switch_cost = Sim.Time.us 10) () =
  let metrics = Sim.Engine.metrics engine in
  {
    engine;
    policy;
    ctx_switch_cost;
    doms = [];
    channels = [];
    plan = None;
    last_running = None;
    kick_pending = false;
    handoff = None;
    idle_wake = None;
    kps_depth = 0;
    deferred = [];
    switches = 0;
    idle_since = Some Sim.Time.zero;
    idle_total = Sim.Time.zero;
    m_switches =
      Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Nemesis
        ~help:"processor moves between different domains"
        "kernel.context_switches";
    m_deadline_misses =
      Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Nemesis
        ~help:"jobs completed after their deadline" "kernel.deadline_misses";
    m_slack_windows =
      Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Nemesis
        ~help:"scheduling windows granted from slack, not guarantees"
        "kernel.slack_windows";
    m_slack_window_us =
      Sim.Metrics.dist metrics ~sub:Sim.Subsystem.Nemesis
        ~help:"length of slack-granted windows in us" "kernel.slack_window_us";
    m_lateness_win =
      Sim.Metrics.observer metrics ~sub:Sim.Subsystem.Nemesis
        ~help:"windowed deadline-miss lateness samples (us)"
        "kernel.lateness_win_us";
  }

let engine t = t.engine
let now t = Sim.Engine.now t.engine
let policy_name t = t.policy.Policy.policy_name
let domains t = t.doms

(* -------------------------------------------------------------- *)
(* The scheduling machinery.  Every state change funnels through   *)
(* [kick], which coalesces same-instant changes into one           *)
(* reschedule run as a zero-delay event.                           *)

let rec kick t =
  if not t.kick_pending then begin
    t.kick_pending <- true;
    ignore (Sim.Engine.schedule t.engine ~delay:Sim.Time.zero (fun () -> reschedule t))
  end

and charge_segment t p at =
  let elapsed = Sim.Time.sub at p.p_seg_start in
  if elapsed > 0L then begin
    Domain.charge p.p_dom elapsed;
    t.policy.Policy.charge p.p_dom ~amount:elapsed;
    (match Domain.current p.p_dom with
    | Some j ->
        let work_start = Sim.Time.max p.p_seg_start p.p_overhead_until in
        if Sim.Time.(at > work_start) then begin
          let used = Sim.Time.sub at work_start in
          j.Job.remaining <- Sim.Time.max Sim.Time.zero (Sim.Time.sub j.Job.remaining used)
        end
    | None -> ());
    p.p_seg_start <- at
  end

and suspend_current t at =
  match t.plan with
  | None -> ()
  | Some p ->
      ignore (Sim.Engine.cancel t.engine p.p_window_ev);
      (match p.p_completion_ev with
      | Some ev -> ignore (Sim.Engine.cancel t.engine ev)
      | None -> ());
      charge_segment t p at;
      Sim.Trace.span_end (Sim.Engine.trace t.engine) ~ts:at p.p_span;
      Domain.deactivate p.p_dom;
      t.plan <- None

(* Deliver pending event notifications for a domain that is being
   activated; each notification's closure may enqueue a job. *)
and deliver_events t d =
  List.fold_left
    (fun total ch ->
      if ch.ch_dst == d && ch.ch_pending > 0 then begin
        let n = ch.ch_pending in
        ch.ch_pending <- 0;
        ch.ch_delivered <- ch.ch_delivered + n;
        (match ch.ch_closure with
        | Some f ->
            for _ = 1 to n do
              match f () with
              | Some job -> Domain.add_job d job
              | None -> ()
            done
        | None -> ());
        total + n
      end
      else total)
    0 t.channels

and note_idle_start t at =
  match t.idle_since with None -> t.idle_since <- Some at | Some _ -> ()

and note_idle_end t at =
  match t.idle_since with
  | Some since ->
      t.idle_total <- Sim.Time.add t.idle_total (Sim.Time.sub at since);
      t.idle_since <- None
  | None -> ()

and reschedule t =
  t.kick_pending <- false;
  let at = now t in
  suspend_current t at;
  (match t.idle_wake with
  | Some ev ->
      ignore (Sim.Engine.cancel t.engine ev);
      t.idle_wake <- None
  | None -> ());
  (* Domains with pending events are runnable even before the events
     are turned into jobs, so give every such domain its activation
     first: activation is what converts notifications into work. *)
  List.iter
    (fun d ->
      if
        Domain.is_deactivated d
        && List.exists (fun ch -> ch.ch_dst == d && ch.ch_pending > 0) t.channels
      then begin
        let n = deliver_events t d in
        Domain.activate d ~now:at ~events:n
      end)
    t.doms;
  (* A synchronous send hands the processor directly to the signalled
     domain for the remainder of the sender's window. *)
  let decision =
    match t.handoff with
    | Some (d, window_end)
      when Domain.has_work d && Sim.Time.(window_end > at) ->
        t.handoff <- None;
        Some { Policy.domain = d; window_end; from_slack = false }
    | Some _ ->
        t.handoff <- None;
        t.policy.Policy.select ~domains:t.doms ~now:at
    | None -> t.policy.Policy.select ~domains:t.doms ~now:at
  in
  match decision with
  | None ->
      note_idle_start t at;
      (match t.policy.Policy.next_wake ~domains:t.doms ~now:at with
      | Some wake when Sim.Time.(wake > at) ->
          t.idle_wake <-
            Some
              (Sim.Engine.schedule_at t.engine ~at:wake (fun () ->
                   t.idle_wake <- None;
                   reschedule t))
      | Some _ | None -> ())
  | Some { Policy.domain = d; window_end; from_slack } ->
      note_idle_end t at;
      let same =
        match t.last_running with Some prev -> prev == d | None -> false
      in
      if not same then begin
        t.switches <- t.switches + 1;
        Sim.Metrics.incr t.m_switches
      end;
      if from_slack then begin
        Sim.Metrics.incr t.m_slack_windows;
        Sim.Metrics.observe t.m_slack_window_us
          (Sim.Time.to_us_f (Sim.Time.sub window_end at))
      end;
      let overhead = if same then Sim.Time.zero else t.ctx_switch_cost in
      t.last_running <- Some d;
      if Domain.is_deactivated d then begin
        let n = deliver_events t d in
        Domain.activate d ~now:at ~events:n
      end;
      let p =
        {
          p_dom = d;
          p_window_end = window_end;
          p_window_ev =
            Sim.Engine.schedule_at t.engine ~at:window_end (fun () -> kick t);
          p_completion_ev = None;
          p_seg_start = at;
          p_overhead_until = Sim.Time.add at overhead;
          p_span =
            Sim.Trace.span_begin (Sim.Engine.trace t.engine) ~ts:at
              ~sub:Sim.Subsystem.Nemesis ~cat:"sched"
              ~args:[ ("from_slack", Sim.Trace.Bool from_slack) ]
              (Domain.name d);
        }
      in
      t.plan <- Some p;
      plan_job t p

and plan_job t p =
  let d = p.p_dom in
  match Domain.next_job d with
  | None ->
      (* The domain yielded the rest of its window: nothing to run. *)
      Domain.set_current d None;
      suspend_current t (now t);
      kick t
  | Some j ->
      Domain.set_current d (Some j);
      let start = Sim.Time.max (now t) p.p_overhead_until in
      let completion_at = Sim.Time.add start j.Job.remaining in
      if Sim.Time.(completion_at <= p.p_window_end) then
        p.p_completion_ev <-
          Some
            (Sim.Engine.schedule_at t.engine ~at:completion_at (fun () ->
                 complete t p j))

and complete t p j =
  let at = now t in
  charge_segment t p at;
  p.p_completion_ev <- None;
  assert (j.Job.remaining = 0L);
  Domain.remove_job p.p_dom j;
  Domain.note_job_done p.p_dom j ~now:at;
  (let tr = Sim.Engine.trace t.engine in
   if Sim.Trace.flows_on tr && j.Job.flow >= 0 then
     Sim.Trace.flow_step tr ~ts:at ~sub:Sim.Subsystem.Nemesis ~cat:"sched"
       ~flow:j.Job.flow "cpu.run");
  (match j.Job.deadline with
  | Some d when Sim.Time.(at > d) ->
      Sim.Metrics.incr t.m_deadline_misses;
      Sim.Metrics.sample t.m_lateness_win
        (Sim.Time.to_us_f (Sim.Time.sub at d));
      let tr = Sim.Engine.trace t.engine in
      if Sim.Trace.enabled tr then
        Sim.Trace.instant tr ~ts:at ~sub:Sim.Subsystem.Nemesis ~cat:"sched"
          ~flow:j.Job.flow
          ~args:
            [
              ("domain", Sim.Trace.Str (Domain.name p.p_dom));
              ("late_us", Sim.Trace.Float (Sim.Time.to_us_f (Sim.Time.sub at d)));
            ]
          "deadline_miss"
  | Some _ | None -> ());
  (match j.Job.on_complete with Some f -> f () | None -> ());
  (* Continue in the same window if the plan survived the callback. *)
  match t.plan with Some p' when p' == p -> plan_job t p | Some _ | None -> ()

let add_domain t d =
  t.doms <- t.doms @ [ d ];
  let s = Domain.sched d in
  s.Domain.release <- now t;
  if Domain.has_work d then Domain.note_runnable d ~now:(now t);
  kick t

let submit t d job =
  Domain.add_job d job;
  Domain.note_runnable d ~now:(now t);
  (* Adding work to the domain that already holds the processor needs
     no scheduling decision: its own thread scheduler will pick the job
     up at the next completion point. *)
  match t.plan with
  | Some p when p.p_dom == d -> ()
  | Some _ | None -> kick t

(* -------------------------------------------------------------- *)
(* Events.                                                         *)

let channel t ~dst ~mode ?closure () =
  let ch =
    {
      ch_dst = dst;
      ch_mode = mode;
      ch_closure = closure;
      ch_pending = 0;
      ch_sent = 0;
      ch_delivered = 0;
    }
  in
  t.channels <- ch :: t.channels;
  ch

let raise_event t ch =
  ch.ch_pending <- ch.ch_pending + 1;
  ch.ch_sent <- ch.ch_sent + 1;
  Domain.note_runnable ch.ch_dst ~now:(now t)

let send t ch =
  raise_event t ch;
  match ch.ch_mode with
  | `Sync ->
      (* The sender gives up the processor to the signalled domain,
         which inherits the rest of the window. *)
      (match t.plan with
      | Some p when p.p_dom != ch.ch_dst ->
          t.handoff <- Some (ch.ch_dst, p.p_window_end)
      | Some _ | None -> ());
      kick t
  | `Async -> if t.plan = None then kick t

let rec interrupt t ch =
  if t.kps_depth > 0 then t.deferred <- t.deferred @ [ ch ]
  else begin
    raise_event t ch;
    kick t
  end

and flush_deferred t =
  match t.deferred with
  | [] -> ()
  | ch :: rest ->
      t.deferred <- rest;
      interrupt t ch;
      flush_deferred t

let pending ch = ch.ch_pending
let sent ch = ch.ch_sent
let delivered ch = ch.ch_delivered

let timer t ~at ch =
  ignore (Sim.Engine.schedule_at t.engine ~at (fun () -> interrupt t ch))

(* -------------------------------------------------------------- *)
(* Kernel-privileged sections.                                     *)

let enter_kps t = t.kps_depth <- t.kps_depth + 1

let exit_kps t =
  if t.kps_depth = 0 then invalid_arg "Kernel.exit_kps: not in a section";
  t.kps_depth <- t.kps_depth - 1;
  if t.kps_depth = 0 then flush_deferred t

let kps_active t = t.kps_depth > 0

let with_kps t f =
  enter_kps t;
  Fun.protect ~finally:(fun () -> exit_kps t) f

(* -------------------------------------------------------------- *)

let context_switches t = t.switches

let idle_time t =
  match t.idle_since with
  | Some since -> Sim.Time.add t.idle_total (Sim.Time.sub (now t) since)
  | None -> t.idle_total

let running t = match t.plan with Some p -> Some p.p_dom | None -> None
