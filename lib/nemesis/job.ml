type t = {
  id : int;
  label : string;
  work : Sim.Time.t;
  deadline : Sim.Time.t option;
  created : Sim.Time.t;
  flow : int;
  mutable remaining : Sim.Time.t;
  on_complete : (unit -> unit) option;
}

let next_id = ref 0

let make ?(label = "") ?deadline ?on_complete ?(flow = Sim.Trace.no_flow) ~work
    ~created () =
  incr next_id;
  {
    id = !next_id;
    label;
    work;
    deadline;
    created;
    flow;
    remaining = work;
    on_complete;
  }

let far_future = Int64.max_int

let deadline_key t = match t.deadline with Some d -> d | None -> far_future
