(** A unit of work inside a domain.

    Domains do not run opaque code in the simulation; their threads are
    queues of jobs, each needing a known amount of CPU time and
    optionally carrying a deadline.  The kernel charges consumed CPU
    against [remaining]; when it reaches zero the completion callback
    runs (at the right simulated instant) and may send events, spawn
    further jobs, etc. *)

type t = {
  id : int;
  label : string;
  work : Sim.Time.t;  (** total CPU needed *)
  deadline : Sim.Time.t option;  (** absolute; [None] = best effort *)
  created : Sim.Time.t;
  flow : int;
      (** causal flow this job belongs to ({!Sim.Trace.no_flow} when
          untraced): the kernel records a ["cpu.run"] flow step at the
          job's completion instant *)
  mutable remaining : Sim.Time.t;
  on_complete : (unit -> unit) option;
}

val make :
  ?label:string ->
  ?deadline:Sim.Time.t ->
  ?on_complete:(unit -> unit) ->
  ?flow:int ->
  work:Sim.Time.t ->
  created:Sim.Time.t ->
  unit ->
  t

val deadline_key : t -> Sim.Time.t
(** The deadline, or a far-future sentinel for best-effort jobs, so EDF
    comparisons are total. *)
