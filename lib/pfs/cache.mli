(** LRU block cache.

    Used by the {e normal} service stack; the continuous-media stack
    deliberately bypasses it — caching a stream larger than the cache
    only evicts everything else before the stream ever comes back
    around (the paper's argument against caching video). *)

type t

val create : capacity_blocks:int -> unit -> t

val access : t -> fid:int -> block:int -> [ `Hit | `Miss ]
(** Touch a block: a hit refreshes its recency; a miss inserts it,
    evicting the least recently used block when full. *)

val probe : t -> fid:int -> block:int -> bool
(** Membership without side effects. *)

val invalidate_file : t -> fid:int -> unit
(** Drop every block of a file (delete/truncate/replica reseal).  A
    per-fid secondary index makes this O(blocks of that file), not
    O(cache size) — the replication directory invalidates on every
    overwrite of a replicated file, so the old whole-table fold was on
    a hot path. *)

val size : t -> int
val capacity : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
val reset_stats : t -> unit
