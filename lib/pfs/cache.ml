type node = {
  key : int * int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  cap : int;
  tbl : (int * int, node) Hashtbl.t;
  by_fid : (int, (int, node) Hashtbl.t) Hashtbl.t;
      (* fid -> (block -> node): secondary index so whole-file
         invalidation walks only that file's blocks, not the cache *)
  mutable head : node option;  (* most recent *)
  mutable tail : node option;  (* least recent *)
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_evictions : int;
}

let create ~capacity_blocks () =
  assert (capacity_blocks > 0);
  {
    cap = capacity_blocks;
    tbl = Hashtbl.create (2 * capacity_blocks);
    by_fid = Hashtbl.create 64;
    head = None;
    tail = None;
    n_hits = 0;
    n_misses = 0;
    n_evictions = 0;
  }

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let index_add t n =
  let fid, block = n.key in
  let blocks =
    match Hashtbl.find_opt t.by_fid fid with
    | Some blocks -> blocks
    | None ->
        let blocks = Hashtbl.create 8 in
        Hashtbl.replace t.by_fid fid blocks;
        blocks
  in
  Hashtbl.replace blocks block n

let index_remove t n =
  let fid, block = n.key in
  match Hashtbl.find_opt t.by_fid fid with
  | None -> ()
  | Some blocks ->
      Hashtbl.remove blocks block;
      if Hashtbl.length blocks = 0 then Hashtbl.remove t.by_fid fid

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.key;
      index_remove t n;
      t.n_evictions <- t.n_evictions + 1

let access t ~fid ~block =
  let key = (fid, block) in
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
      t.n_hits <- t.n_hits + 1;
      unlink t n;
      push_front t n;
      `Hit
  | None ->
      t.n_misses <- t.n_misses + 1;
      if Hashtbl.length t.tbl >= t.cap then evict_lru t;
      let n = { key; prev = None; next = None } in
      Hashtbl.replace t.tbl key n;
      index_add t n;
      push_front t n;
      `Miss

let probe t ~fid ~block = Hashtbl.mem t.tbl (fid, block)

let invalidate_file t ~fid =
  match Hashtbl.find_opt t.by_fid fid with
  | None -> ()
  | Some blocks ->
      Hashtbl.iter
        (fun _ n ->
          unlink t n;
          Hashtbl.remove t.tbl n.key)
        blocks;
      Hashtbl.remove t.by_fid fid

let size t = Hashtbl.length t.tbl
let capacity t = t.cap
let hits t = t.n_hits
let misses t = t.n_misses
let evictions t = t.n_evictions

let reset_stats t =
  t.n_hits <- 0;
  t.n_misses <- 0;
  t.n_evictions <- 0
