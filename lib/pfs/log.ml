type kind = Normal | Continuous
type fid = int
type error = [ `Lost | `No_such_file ]

(* A contiguous run of file bytes at a fixed place in the log.  Meta
   extents (pnode records) use x_fid = -1 - fid of their owner. *)
type extent = {
  x_fid : int;
  x_foff : int;
  x_seg : int;
  x_soff : int;
  x_len : int;
  mutable x_dead : bool;
}

type seg_state = Open | Sealed | Free

type seg = {
  mutable s_live : int;
  mutable s_state : seg_state;
  mutable s_kind : kind;
  mutable s_residents : extent list;
}

type pnode = {
  mutable p_size : int;
  mutable p_extents : extent list;  (* sorted by x_foff, all live *)
  mutable p_meta : extent option;
  p_kind : kind;
}

type open_seg = { mutable o_seg : int; mutable o_fill : int; o_buf : bytes }

type t = {
  engine : Sim.Engine.t;
  raid : Raid.t;
  seg_bytes : int;
  segs : (int, seg) Hashtbl.t;
  mutable next_seg : int;
  mutable free_list : int list;
  files : (fid, pnode) Hashtbl.t;
  mutable next_fid : int;
  garbage : Garbage.t;
  normal : open_seg;
  continuous : open_seg;
  mutable garbage_created : int;
  mutable meta_writes : int;
  mutable shadow : shadow option;  (* recovery point, refreshed at seals *)
  m_sealed : Sim.Metrics.counter;
  m_bytes_appended : Sim.Metrics.counter;
  m_meta_writes : Sim.Metrics.counter;
  m_garbage_bytes : Sim.Metrics.counter;
}

(* A consistent copy of the mapping state, as reconstructible from the
   sealed log.  Extents are shared between pnodes and segment resident
   lists, so the copy preserves that sharing. *)
and shadow = {
  sh_segs : (int * seg) list;
  sh_files : (fid * pnode) list;
  sh_next_seg : int;
  sh_free : int list;
  sh_next_fid : int;
  sh_live_garbage : int;
}

let meta_bytes = 64

let seg_record t id =
  match Hashtbl.find_opt t.segs id with
  | Some s -> s
  | None ->
      let s = { s_live = 0; s_state = Free; s_kind = Normal; s_residents = [] } in
      Hashtbl.replace t.segs id s;
      s

let allocate_segment t knd =
  let id =
    match t.free_list with
    | id :: rest ->
        t.free_list <- rest;
        id
    | [] ->
        let id = t.next_seg in
        t.next_seg <- t.next_seg + 1;
        id
  in
  let s = seg_record t id in
  s.s_state <- Open;
  s.s_kind <- knd;
  s.s_live <- 0;
  s.s_residents <- [];
  id

let create engine ~raid () =
  let seg_bytes = Raid.segment_bytes raid in
  let mk_open knd =
    (* placeholder; real segment assigned below *)
    ignore knd;
    { o_seg = -1; o_fill = 0; o_buf = Bytes.make seg_bytes '\000' }
  in
  let metrics = Sim.Engine.metrics engine in
  let t =
    {
      engine;
      raid;
      seg_bytes;
      segs = Hashtbl.create 256;
      next_seg = 0;
      free_list = [];
      files = Hashtbl.create 64;
      next_fid = 1;
      garbage = Garbage.create ();
      normal = mk_open Normal;
      continuous = mk_open Continuous;
      garbage_created = 0;
      meta_writes = 0;
      shadow = None;
      m_sealed =
        Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Pfs
          ~help:"log segments sealed and written to the array"
          "log.segments_sealed";
      m_bytes_appended =
        Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Pfs
          ~help:"bytes appended to the log (data, metadata and cleaner moves)"
          "log.bytes_appended";
      m_meta_writes =
        Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Pfs
          ~help:"pnode records appended" "log.meta_writes";
      m_garbage_bytes =
        Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Pfs
          ~help:"bytes turned into garbage (overwrites, deletes, seal tails)"
          "log.garbage_bytes";
    }
  in
  t.normal.o_seg <- allocate_segment t Normal;
  t.continuous.o_seg <- allocate_segment t Continuous;
  t

let engine t = t.engine
let raid t = t.raid
let garbage t = t.garbage
let segment_bytes t = t.seg_bytes

let open_seg_for t = function
  | Normal -> t.normal
  | Continuous -> t.continuous

let emit_garbage t ~seg ~off ~len =
  Garbage.append t.garbage ~seg ~off ~len;
  t.garbage_created <- t.garbage_created + len;
  Sim.Metrics.incr t.m_garbage_bytes ~by:len

(* One causal-flow step at the current instant, named for the log stage
   the flow just cleared ("pfs.log", "pfs.cache", ...). *)
let flow_step t flow name =
  if flow >= 0 then begin
    let tr = Sim.Engine.trace t.engine in
    if Sim.Trace.flows_on tr then
      Sim.Trace.flow_step tr
        ~ts:(Sim.Engine.now t.engine)
        ~sub:Sim.Subsystem.Pfs ~cat:"pfs" ~flow name
  end

(* Completion joiner: [spawn] before each asynchronous leg, and call
   the returned finisher when the leg completes; the synchronous part
   holds one implicit leg released by [release]. *)
let joiner k =
  let outstanding = ref 1 in
  let failed = ref false in
  let finish r =
    (match r with Error _ -> failed := true | Ok _ -> ());
    decr outstanding;
    if !outstanding = 0 then k (if !failed then Error `Lost else Ok ())
  in
  let spawn () = incr outstanding in
  let release () = finish (Ok ()) in
  (spawn, finish, release)

let copy_state t =
  let xmap = Hashtbl.create 256 in
  let copy_extent x =
    match Hashtbl.find_opt xmap x with
    | Some x' -> x'
    | None ->
        let x' =
          {
            x_fid = x.x_fid;
            x_foff = x.x_foff;
            x_seg = x.x_seg;
            x_soff = x.x_soff;
            x_len = x.x_len;
            x_dead = x.x_dead;
          }
        in
        Hashtbl.add xmap x x';
        x'
  in
  let sh_segs =
    Hashtbl.fold
      (fun id s acc ->
        ( id,
          {
            s_live = s.s_live;
            s_state = s.s_state;
            s_kind = s.s_kind;
            s_residents = List.map copy_extent s.s_residents;
          } )
        :: acc)
      t.segs []
  in
  let sh_files =
    Hashtbl.fold
      (fun fid p acc ->
        ( fid,
          {
            p_size = p.p_size;
            p_extents = List.map copy_extent p.p_extents;
            p_meta = Option.map copy_extent p.p_meta;
            p_kind = p.p_kind;
          } )
        :: acc)
      t.files []
  in
  {
    sh_segs;
    sh_files;
    sh_next_seg = t.next_seg;
    sh_free = t.free_list;
    sh_next_fid = t.next_fid;
    sh_live_garbage = Garbage.count t.garbage;
  }

let seal ?(flow = Sim.Trace.no_flow) t os ~spawn ~finish =
  let id = os.o_seg in
  let s = seg_record t id in
  let tail = t.seg_bytes - os.o_fill in
  if tail > 0 then emit_garbage t ~seg:id ~off:os.o_fill ~len:tail;
  s.s_state <- Sealed;
  Sim.Metrics.incr t.m_sealed;
  let tr = Sim.Engine.trace t.engine in
  if Sim.Trace.enabled tr then
    Sim.Trace.instant tr
      ~ts:(Sim.Engine.now t.engine)
      ~sub:Sim.Subsystem.Pfs ~cat:"log"
      ~args:
        [ ("seg", Sim.Trace.Int id); ("live_bytes", Sim.Trace.Int s.s_live) ]
      "segment_sealed";
  let data =
    if Raid.stores_data t.raid then Some (Bytes.copy os.o_buf) else None
  in
  spawn ();
  Raid.write_segment t.raid ~seg:id ?data ~flow (fun r ->
      finish (r :> (unit, error) result));
  os.o_seg <- allocate_segment t s.s_kind;
  os.o_fill <- 0;
  Bytes.fill os.o_buf 0 t.seg_bytes '\000';
  (* Everything up to this seal is now reconstructible from disk. *)
  t.shadow <- Some (copy_state t)

(* Append raw bytes to the open segment of [knd]; returns the extents
   created (most recent first).  May seal one or more segments. *)
let append_raw t knd ~fid ~foff ?data ?(dataoff = 0)
    ?(flow = Sim.Trace.no_flow) ~len ~spawn ~finish () =
  let os = open_seg_for t knd in
  let created = ref [] in
  let written = ref 0 in
  while !written < len do
    if os.o_fill = t.seg_bytes then seal ~flow t os ~spawn ~finish;
    let n = Stdlib.min (len - !written) (t.seg_bytes - os.o_fill) in
    (match data with
    | Some src -> Bytes.blit src (dataoff + !written) os.o_buf os.o_fill n
    | None -> ());
    let x =
      {
        x_fid = fid;
        x_foff = foff + !written;
        x_seg = os.o_seg;
        x_soff = os.o_fill;
        x_len = n;
        x_dead = false;
      }
    in
    let s = seg_record t os.o_seg in
    s.s_residents <- x :: s.s_residents;
    s.s_live <- s.s_live + n;
    Sim.Metrics.incr t.m_bytes_appended ~by:n;
    os.o_fill <- os.o_fill + n;
    if os.o_fill = t.seg_bytes then seal ~flow t os ~spawn ~finish;
    created := x :: !created;
    written := !written + n
  done;
  !created

(* Kill an extent: live accounting, garbage entry (over the sub-range
   [from, from+len) of the extent), and the dead flag.  The caller
   removes it from the pnode. *)
let kill_range t x ~from ~len =
  let s = seg_record t x.x_seg in
  s.s_live <- s.s_live - len;
  emit_garbage t ~seg:x.x_seg ~off:(x.x_soff + from) ~len

(* Remove [lo, hi) from the pnode's mapping, creating garbage; kept
   sub-ranges of partially overlapped extents are re-registered. *)
let punch t p ~lo ~hi =
  let keep_piece x ~foff ~delta ~len =
    let piece =
      {
        x_fid = x.x_fid;
        x_foff = foff;
        x_seg = x.x_seg;
        x_soff = x.x_soff + delta;
        x_len = len;
        x_dead = false;
      }
    in
    let s = seg_record t x.x_seg in
    s.s_residents <- piece :: s.s_residents;
    piece
  in
  let process x =
    let x_end = x.x_foff + x.x_len in
    if x_end <= lo || x.x_foff >= hi then [ x ]
    else begin
      let olo = Stdlib.max lo x.x_foff and ohi = Stdlib.min hi x_end in
      x.x_dead <- true;
      kill_range t x ~from:(olo - x.x_foff) ~len:(ohi - olo);
      (* Surviving live bytes move to the kept pieces. *)
      let pieces = ref [] in
      if x.x_foff < olo then
        pieces := keep_piece x ~foff:x.x_foff ~delta:0 ~len:(olo - x.x_foff) :: !pieces;
      if ohi < x_end then begin
        let right =
          keep_piece x ~foff:ohi ~delta:(ohi - x.x_foff) ~len:(x_end - ohi)
        in
        pieces := right :: !pieces
      end;
      List.rev !pieces
    end
  in
  p.p_extents <- List.concat_map process p.p_extents

let append_meta ?(flow = Sim.Trace.no_flow) t fid p ~spawn ~finish =
  (match p.p_meta with
  | Some m when not m.x_dead ->
      m.x_dead <- true;
      kill_range t m ~from:0 ~len:m.x_len
  | Some _ | None -> ());
  let created =
    append_raw t Normal ~fid:(-1 - fid) ~foff:0 ~flow ~len:meta_bytes ~spawn
      ~finish ()
  in
  t.meta_writes <- t.meta_writes + 1;
  Sim.Metrics.incr t.m_meta_writes;
  match created with
  | [ m ] -> p.p_meta <- Some m
  | ms -> p.p_meta <- (match ms with m :: _ -> Some m | [] -> None)

let create_file t ?(kind = Normal) () =
  let fid = t.next_fid in
  t.next_fid <- t.next_fid + 1;
  let p = { p_size = 0; p_extents = []; p_meta = None; p_kind = kind } in
  Hashtbl.replace t.files fid p;
  (* The pnode itself is data in the log. *)
  let _spawn, _finish, release = joiner (fun _ -> ()) in
  append_meta t fid p ~spawn:_spawn ~finish:_finish;
  release ();
  fid

let file_exists t fid = Hashtbl.mem t.files fid

let file_size t fid =
  match Hashtbl.find_opt t.files fid with
  | Some p -> p.p_size
  | None -> raise Not_found

let insert_sorted extents x =
  let rec go = function
    | [] -> [ x ]
    | y :: rest when y.x_foff < x.x_foff -> y :: go rest
    | rest -> x :: rest
  in
  go extents

let write t fid ~off ?data ?(flow = Sim.Trace.no_flow) ~len k =
  match Hashtbl.find_opt t.files fid with
  | None -> k (Error `No_such_file)
  | Some p ->
      flow_step t flow "pfs.log";
      let spawn, finish, release = joiner k in
      punch t p ~lo:off ~hi:(off + len);
      let created =
        append_raw t p.p_kind ~fid ~foff:off ?data ~flow ~len ~spawn ~finish ()
      in
      List.iter (fun x -> p.p_extents <- insert_sorted p.p_extents x) created;
      p.p_size <- Stdlib.max p.p_size (off + len);
      append_meta ~flow t fid p ~spawn ~finish;
      release ()

let peek t fid ~off ~len =
  match Hashtbl.find_opt t.files fid with
  | None -> None
  | Some p when not (Raid.stores_data t.raid) -> ignore p; None
  | Some p ->
      let out = Bytes.make len '\000' in
      let ok = ref true in
      List.iter
        (fun x ->
          if x.x_foff < off + len && x.x_foff + x.x_len > off then begin
            let lo = Stdlib.max off x.x_foff
            and hi = Stdlib.min (off + len) (x.x_foff + x.x_len) in
            let delta = lo - x.x_foff and n = hi - lo in
            let s = seg_record t x.x_seg in
            match s.s_state with
            | Open ->
                let os = open_seg_for t s.s_kind in
                if os.o_seg = x.x_seg then
                  Bytes.blit os.o_buf (x.x_soff + delta) out (lo - off) n
            | Sealed -> begin
                match Raid.peek_segment t.raid ~seg:x.x_seg with
                | Some segdata ->
                    Bytes.blit segdata (x.x_soff + delta) out (lo - off) n
                | None -> ok := false
              end
            | Free -> ()
          end)
        p.p_extents;
      if !ok then Some out else None

let delete t fid ~k =
  match Hashtbl.find_opt t.files fid with
  | None -> k (Error `No_such_file)
  | Some p ->
      List.iter
        (fun x ->
          if not x.x_dead then begin
            x.x_dead <- true;
            kill_range t x ~from:0 ~len:x.x_len
          end)
        p.p_extents;
      (match p.p_meta with
      | Some m when not m.x_dead ->
          m.x_dead <- true;
          kill_range t m ~from:0 ~len:m.x_len
      | Some _ | None -> ());
      Hashtbl.remove t.files fid;
      k (Ok ())

let read_flow t fid ~off ~len ~flow ~k =
  match Hashtbl.find_opt t.files fid with
  | None -> k (Error `No_such_file)
  | Some p ->
      flow_step t flow "pfs.log";
      let stores = Raid.stores_data t.raid in
      let out = if stores then Some (Bytes.make len '\000') else None in
      let spawn, finish, release =
        joiner (fun r ->
            match r with Ok () -> k (Ok out) | Error e -> k (Error e))
      in
      let overlapping =
        List.filter
          (fun x -> x.x_foff < off + len && x.x_foff + x.x_len > off)
          p.p_extents
      in
      let cache_hit = ref false in
      let handle x =
        let lo = Stdlib.max off x.x_foff
        and hi = Stdlib.min (off + len) (x.x_foff + x.x_len) in
        let delta = lo - x.x_foff and n = hi - lo in
        let s = seg_record t x.x_seg in
        match s.s_state with
        | Open ->
            (* Data still in the open segment buffer: a memory copy. *)
            cache_hit := true;
            let os = open_seg_for t s.s_kind in
            (match out with
            | Some buf when os.o_seg = x.x_seg ->
                Bytes.blit os.o_buf (x.x_soff + delta) buf (lo - off) n
            | Some _ | None -> ())
        | Sealed ->
            spawn ();
            if stores then
              Raid.read_segment_flow t.raid ~seg:x.x_seg ~flow ~k:(fun r ->
                  (match (r, out) with
                  | Ok (Some segdata), Some buf ->
                      Bytes.blit segdata (x.x_soff + delta) buf (lo - off) n
                  | (Ok _ | Error _), _ -> ());
                  match r with
                  | Ok _ -> finish (Ok ())
                  | Error `Lost -> finish (Error `Lost))
            else
              Raid.read_extent_flow t.raid ~seg:x.x_seg ~off:(x.x_soff + delta)
                ~len:n ~flow ~k:(fun r -> finish (r :> (unit, error) result))
        | Free -> ()  (* cannot happen: live extents pin their segment *)
      in
      List.iter handle overlapping;
      (* One step for the whole read when any byte came straight out of
         an open segment buffer — the cache-hit side of the split. *)
      if !cache_hit then flow_step t flow "pfs.cache";
      release ()

let read t fid ~off ~len ~k =
  read_flow t fid ~off ~len ~flow:Sim.Trace.no_flow ~k

let sync t ~k =
  let spawn, finish, release = joiner k in
  if t.normal.o_fill > 0 then seal t t.normal ~spawn ~finish;
  if t.continuous.o_fill > 0 then seal t t.continuous ~spawn ~finish;
  release ()

let total_segments t = t.next_seg
let free_segments t = List.length t.free_list

let segment_live t id = (seg_record t id).s_live
let segment_sealed t id = (seg_record t id).s_state = Sealed

let clean_segment t id ~k =
  let s = seg_record t id in
  (match s.s_state with
  | Sealed -> ()
  | Open -> invalid_arg "Log.clean_segment: segment is open"
  | Free -> invalid_arg "Log.clean_segment: segment is free");
  let residents = List.filter (fun x -> not x.x_dead) s.s_residents in
  Raid.read_segment t.raid ~seg:id ~k:(fun r ->
      match r with
      | Error `Lost -> k (Error `Lost)
      | Ok segdata ->
          let moved = ref 0 in
          let spawn, finish, release =
            joiner (fun r ->
                match r with
                | Ok () -> k (Ok !moved)
                | Error e -> k (Error e))
          in
          let move x =
            x.x_dead <- true;
            if x.x_fid < 0 then begin
              (* A pnode record: re-append it for its owner, if the
                 file still exists. *)
              let owner = -1 - x.x_fid in
              match Hashtbl.find_opt t.files owner with
              | Some p ->
                  let created =
                    append_raw t Normal ~fid:x.x_fid ~foff:0 ~len:x.x_len
                      ~spawn ~finish ()
                  in
                  (match created with
                  | m :: _ -> p.p_meta <- Some m
                  | [] -> ());
                  moved := !moved + x.x_len
              | None -> ()
            end
            else begin
              match Hashtbl.find_opt t.files x.x_fid with
              | None -> ()
              | Some p ->
                  let data =
                    match segdata with
                    | Some bytes -> Some bytes
                    | None -> None
                  in
                  let created =
                    match data with
                    | Some bytes ->
                        append_raw t p.p_kind ~fid:x.x_fid ~foff:x.x_foff
                          ~data:bytes ~dataoff:x.x_soff ~len:x.x_len ~spawn
                          ~finish ()
                    | None ->
                        append_raw t p.p_kind ~fid:x.x_fid ~foff:x.x_foff
                          ~len:x.x_len ~spawn ~finish ()
                  in
                  (* Swap the mapping: drop the old extent, insert the
                     replacements. *)
                  p.p_extents <-
                    List.filter (fun y -> not (y == x)) p.p_extents;
                  List.iter
                    (fun y -> p.p_extents <- insert_sorted p.p_extents y)
                    created;
                  moved := !moved + x.x_len
            end
          in
          List.iter move residents;
          (* The whole segment is now reusable. *)
          s.s_state <- Free;
          s.s_live <- 0;
          s.s_residents <- [];
          t.free_list <- id :: t.free_list;
          release ())

let checkpoint t ~k =
  sync t ~k:(fun r ->
      match r with
      | Error _ as e -> k e
      | Ok () ->
          t.shadow <- Some (copy_state t);
          (* one checkpoint-region write: a pnode-map-sized extent *)
          Raid.read_extent t.raid ~seg:0 ~off:0 ~len:0 ~k:(fun _ ->
              k (Ok ())))

let crash_and_recover t ~k =
  (* Volatile losses: open segment contents... *)
  let lost = t.normal.o_fill + t.continuous.o_fill in
  (match t.shadow with
  | None ->
      (* Nothing ever sealed: back to an empty file system. *)
      Hashtbl.reset t.segs;
      Hashtbl.reset t.files;
      t.next_seg <- 0;
      t.free_list <- [];
      t.next_fid <- 1
  | Some sh ->
      Hashtbl.reset t.segs;
      List.iter (fun (id, s) -> Hashtbl.replace t.segs id s) sh.sh_segs;
      Hashtbl.reset t.files;
      List.iter (fun (fid, p) -> Hashtbl.replace t.files fid p) sh.sh_files;
      t.next_seg <- sh.sh_next_seg;
      t.free_list <- sh.sh_free;
      t.next_fid <- sh.sh_next_fid);
  (* The open segments' buffered bytes are gone; their segments were
     never sealed, so recycle them and reopen fresh ones. *)
  Hashtbl.iter
    (fun id s ->
      if s.s_state = Open then begin
        s.s_state <- Free;
        s.s_live <- 0;
        s.s_residents <- [];
        t.free_list <- id :: t.free_list
      end)
    t.segs;
  t.normal.o_seg <- allocate_segment t Normal;
  t.normal.o_fill <- 0;
  Bytes.fill t.normal.o_buf 0 t.seg_bytes '\000';
  t.continuous.o_seg <- allocate_segment t Continuous;
  t.continuous.o_fill <- 0;
  Bytes.fill t.continuous.o_buf 0 t.seg_bytes '\000';
  (* The restored records are live again; re-snapshot so a second
     crash does not resurrect state mutated since this recovery. *)
  t.shadow <- Some (copy_state t);
  (* Recovery I/O: read the checkpoint region (modelled as one segment
     read) before answering. *)
  Raid.read_segment t.raid ~seg:0 ~k:(fun _ -> k ~lost_bytes:lost)

let file_extents t fid =
  match Hashtbl.find_opt t.files fid with
  | None -> raise Not_found
  | Some p ->
      List.map (fun x -> (x.x_foff, x.x_seg, x.x_soff, x.x_len)) p.p_extents

let file_sealed t fid =
  match Hashtbl.find_opt t.files fid with
  | None -> raise Not_found
  | Some p ->
      List.for_all (fun x -> (seg_record t x.x_seg).s_state = Sealed) p.p_extents

let live_bytes t =
  Hashtbl.fold (fun _ s acc -> acc + s.s_live) t.segs 0

let garbage_bytes_created t = t.garbage_created
let metadata_writes t = t.meta_writes
