(** Popularity-aware replication and read load balancing over a fleet
    of log-structured file servers.

    The directory is the control point a switch-attached file service
    needs once it is sharded: every file has a {e home} shard (chosen
    round-robin at creation), writes {e always} go to the home shard,
    and reads are routed to any member of the file's replica set.  The
    directory tracks a deterministic EWMA of each file's read rate over
    simulated time; files hotter than [per_replica_rate] grow replicas
    — built by copying the file's {e sealed, immutable} log segments
    onto another shard's array — and cooled-off files shrink back.
    Replica copies are tagged with the file's version: a write bumps
    the version and drops every replica at once, so a read after a
    reseal can never be served from a stale copy (writes never fan out
    — the copy path moves only sealed segments, never individual
    writes).

    Reads pick a server by deterministic rotation over the candidate
    set (home plus valid replicas), biased by each server's
    outstanding-request count: the rotation spreads load when servers
    are equally busy, and the bias steers around a server with a deep
    queue.  All decisions are functions of simulated state, so runs
    are byte-reproducible and shard-count independent.

    Network legs (request, response, replica copy) go through a
    {!transport} supplied by the caller — the VOD experiment binds it
    to real framed VCs on an {!Atm.Net} fabric, tests use {!loopback}.

    Known simplification: dropping or discarding a replica returns its
    segment ids to a per-server free pool but does not scrub the
    array; running a cleaner over a shard that also holds replica
    segments is not supported (the log and the replica store share the
    array but not the allocator — see [replica_seg_base]). *)

type t

type transport = {
  t_request : client:int -> server:int -> flow:int -> k:(unit -> unit) -> unit;
      (** Deliver a read request from [client] to [server]; [k] runs at
          the server when the request arrives. *)
  t_respond :
    server:int -> client:int -> flow:int -> len:int -> k:(unit -> unit) -> unit;
      (** Ship [len] result bytes back; [k] runs at the client when the
          last byte lands. *)
  t_copy : src:int -> dst:int -> len:int -> k:(unit -> unit) -> unit;
      (** Move one segment's bytes between servers during replication. *)
}

val loopback : ?delay:Sim.Time.t -> Sim.Engine.t -> transport
(** A transport where every leg is a fixed [delay] (default 50 us) —
    for tests and rigs that do not model the fabric. *)

type config = {
  replicate : bool;  (** Master switch; off = static placement. *)
  per_replica_rate : float;
      (** EWMA reads/s that justify one replica: the target replica
          count is [rate / per_replica_rate], clamped to
          [max_replicas]. *)
  max_replicas : int;  (** Beyond the home copy. *)
  ewma_tau : Sim.Time.t;  (** Read-rate decay time constant. *)
  review_period : Sim.Time.t;
      (** Period of the daemon tick that decays rates, grows replica
          sets one copy at a time and shrinks cooled files. *)
  shrink_hysteresis : float;
      (** A file with [r] replicas shrinks only once its rate falls
          under [per_replica_rate * r * shrink_hysteresis] — the gap
          between the grow and shrink thresholds stops flapping. *)
  cache_blocks : int;
      (** Per-server home-shard block cache capacity; [0] disables.
          A read whose blocks all hit skips the disks entirely (it
          still crosses the network both ways). *)
  cache_block_bytes : int;
  replica_seg_base : int;
      (** First array segment id used for replica copies on each
          server — must stay above any id the local log will allocate
          ({!create} refuses to copy onto a server whose log has grown
          past it). *)
}

val default_config : config
(** [replicate] on, 40 reads/s per replica, 3 replicas max, 250 ms
    tau, 25 ms review period, 0.5 hysteresis, no cache, segment base
    2048. *)

val create :
  Sim.Engine.t -> logs:Log.t array -> transport:transport -> ?config:config ->
  unit -> t
(** One directory over [logs] (one per shard, at least one).  The
    review tick is a daemon: it never keeps a run alive. *)

val server_count : t -> int
val server_log : t -> int -> Log.t

(** {1 Files} *)

val create_file : t -> ?kind:Log.kind -> unit -> int
(** Allocate a file on the next shard (round-robin homes); the result
    is a directory-global file id. *)

val home_of : t -> int -> int
(** The file's home shard.  Raises [Not_found]. *)

val replicas_of : t -> int -> int list
(** Shards currently holding a valid replica (most recent first). *)

val rate_of : t -> int -> float
(** The file's read-rate EWMA decayed to the current instant. *)

val write :
  t ->
  int ->
  off:int ->
  ?data:bytes ->
  len:int ->
  ((unit, Log.error) result -> unit) ->
  unit
(** Write through to the home shard's log.  Bumps the file's version:
    every replica is dropped immediately and any copy in flight is
    discarded on completion, so no read routed after this instant can
    observe pre-write bytes from a replica.  Also invalidates the
    home's block cache for the file. *)

val read :
  t ->
  ?client:int ->
  ?flow:int ->
  int ->
  off:int ->
  len:int ->
  k:((bytes option, Log.error) result -> unit) ->
  unit
(** Route a read: update the popularity estimate, pick a server
    (rotation + load bias), cross the transport, serve from the block
    cache / home log / replica segments, and return over the
    transport.  [k] runs at the client with the bytes when the arrays
    store data ([None] on timing-only arrays, like {!Log.read}).
    [flow] threads a causal flow through every stage
    (["dir.route"], the pfs stages, ["pfs.replica"] on a replica
    serve). *)

val delete : t -> int -> k:((unit, Log.error) result -> unit) -> unit
(** Delete at the home shard; drops replicas and cache blocks. *)

val sync : t -> k:((unit, Log.error) result -> unit) -> unit
(** Seal the open segments of every shard (e.g. after preloading a
    file set, so the whole corpus is replicable). *)

(** {1 Statistics} *)

val reads_total : t -> int

val reads_home : t -> int
(** Served by the home shard's disks. *)

val reads_replica : t -> int
val reads_cached : t -> int
val replications_started : t -> int
val replications_completed : t -> int
val replications_discarded : t -> int
(** Copies abandoned because the file was rewritten or deleted mid-copy
    (or a segment read failed). *)

val replicas_dropped : t -> int
(** Shrinks by cooling plus drops by write invalidation. *)

val invalidations : t -> int
(** Write/delete events that dropped at least one replica. *)

val server_reads : t -> int -> int
(** Completed reads served by shard [i]. *)

val server_outstanding : t -> int -> int
(** Reads currently routed to shard [i] (request sent, response not yet
    delivered) — the quantity the load bias consults. *)

val server_replica_bytes : t -> int -> int
(** Bytes of replica segments currently installed on shard [i]. *)
