(** The core layer: a log-structured store over the RAID.

    The log is divided into megabyte segments.  Normal file data fills
    "normal" segments; continuous-media data is collected in separate
    segments, though its metadata (pnodes) is appended to the normal
    log like everything else.  Overwrites and deletes do not touch old
    data — they record holes in the {!Garbage} file, from which the
    cleaner later reclaims whole segments.

    All disk-touching operations are continuation-passing; [k] runs at
    the simulated completion time. *)

type t

type kind = Normal | Continuous

type fid = int

type error = [ `Lost | `No_such_file ]

val create : Sim.Engine.t -> raid:Raid.t -> unit -> t

val engine : t -> Sim.Engine.t
val raid : t -> Raid.t
val garbage : t -> Garbage.t
val segment_bytes : t -> int

(** {1 Files} *)

val create_file : t -> ?kind:kind -> unit -> fid
(** Allocate a file.  [kind] (default [Normal]) selects which open
    segment its data goes to. *)

val file_exists : t -> fid -> bool
val file_size : t -> fid -> int
(** Raises [Not_found] for unknown files. *)

val write :
  t ->
  fid ->
  off:int ->
  ?data:bytes ->
  ?flow:int ->
  len:int ->
  ((unit, error) result -> unit) ->
  unit
(** Write [len] bytes at [off] (zeros when [data] is omitted).
    Overwritten ranges become garbage.  [k] fires once the data is in
    the log — immediately if it only filled the open segment buffer,
    or after the RAID write when it sealed one or more segments.
    A pnode update is appended to the normal log as a side effect,
    obsoleting the previous pnode.
    When [flow] names a causal flow ({!Sim.Trace.flows_on}), a
    ["pfs.log"] step is recorded at entry and the flow is threaded
    through any seal into the RAID and disk layers. *)

val read :
  t ->
  fid ->
  off:int ->
  len:int ->
  k:((bytes option, error) result -> unit) ->
  unit
(** Read back a range.  Bytes are returned when the RAID stores data
    ([Some], holes reading as zeros); timing is exercised either way. *)

val read_flow :
  t ->
  fid ->
  off:int ->
  len:int ->
  flow:int ->
  k:((bytes option, error) result -> unit) ->
  unit
(** Like {!read}, carrying a causal flow id ({!Sim.Trace.no_flow} for
    none): ["pfs.log"] at entry, one ["pfs.cache"] step when any byte
    is served from an open segment buffer, and ["pfs.raid"] /
    ["pfs.disk"] steps from the layers below for sealed extents. *)

val peek : t -> fid -> off:int -> len:int -> bytes option
(** Read a range without disk activity or simulated time — the path a
    buffer-cache hit takes.  [None] unless the RAID stores data and
    every needed segment is readable. *)

val delete : t -> fid -> k:((unit, error) result -> unit) -> unit
(** All of the file's data and its pnode become garbage. *)

val sync : t -> k:((unit, error) result -> unit) -> unit
(** Seal the open segments (partially filled space is recorded as
    garbage so the cleaner can recover it). *)

(** {1 Checkpoint and crash recovery}

    The on-disk state is consistent up to the last sealed segment:
    sealing writes the segment (with its summary) and every metadata
    update travels through the log as a pnode append.  Recovery
    restores the state as of the last seal or explicit checkpoint —
    whatever sat only in the open segment buffers is lost, which is
    precisely the window the client agent's buffering (and the UPS)
    exists to cover. *)

val checkpoint : t -> k:((unit, error) result -> unit) -> unit
(** Seal the open segments and record a recovery point (one extra
    checkpoint-region write). *)

val crash_and_recover : t -> k:(lost_bytes:int -> unit) -> unit
(** Lose the volatile state (open segment buffers and metadata changes
    since the last seal/checkpoint), then rebuild from the checkpoint
    plus roll-forward; [k] reports how many buffered bytes vanished.
    Note the LFS quirk: a delete performed after the last seal is also
    rolled back — the file returns. *)

(** {1 Segment bookkeeping (used by the cleaners)} *)

val total_segments : t -> int
(** Segments ever opened (the size of the segment table). *)

val free_segments : t -> int
val segment_live : t -> int -> int
(** Live bytes in a segment. *)

val segment_sealed : t -> int -> bool

val clean_segment : t -> int -> k:((int, error) result -> unit) -> unit
(** Move every live byte of a sealed segment to the head of the log and
    free it.  Returns the number of bytes moved.  Cleaning a segment
    that is open or already free is an error ([Invalid_argument]). *)

(** {1 Extent map (used by the replication directory)} *)

val file_extents : t -> fid -> (int * int * int * int) list
(** The file's live extents as [(foff, seg, soff, len)], sorted by file
    offset — the map a seal-time segment copy needs to mirror a file
    onto another server.  Raises [Not_found] for unknown files. *)

val file_sealed : t -> fid -> bool
(** [true] when every live extent of the file sits in a sealed segment
    — the precondition for replicating it: sealed segments are
    immutable, so a copy taken afterwards can never be dirtied by a
    write (writes only append to {e open} segments and bump the file's
    version at the directory).  Raises [Not_found] for unknown
    files. *)

(** {1 Statistics} *)

val live_bytes : t -> int
val garbage_bytes_created : t -> int
val metadata_writes : t -> int
