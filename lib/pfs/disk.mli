(** A magnetic disk of the early-90s "high-performance" class.

    Timing only — contents live in the layers above.  Operations queue
    FIFO; each pays a seek (zero when sequential with the previous
    operation), half a rotation, and the transfer at the sustained
    media rate.  The defaults are sized so that reading or writing
    whole megabyte extents keeps seek overhead under ten per cent and
    delivers at least five megabytes per second, the figures the paper
    quotes. *)

type params = {
  transfer_bps : int;  (** sustained media rate, bits per second *)
  min_seek : Sim.Time.t;  (** track-to-track *)
  max_seek : Sim.Time.t;  (** full stroke *)
  half_rotation : Sim.Time.t;
  capacity : int;  (** bytes *)
}

val default_params : params
(** 6 MB/s media rate, 2–12 ms seeks, 7200 rpm (4.17 ms half turn),
    2 GB. *)

type t

type error = [ `Failed ]

val create : Sim.Engine.t -> ?params:params -> name:string -> unit -> t

val name : t -> string
val params : t -> params

val read :
  t -> off:int -> len:int -> k:((unit, error) result -> unit) -> unit
(** Queue a read of [len] bytes at byte offset [off]; [k] runs at
    completion time, or immediately with [Error `Failed] if the disk
    has failed. *)

val write :
  t -> off:int -> len:int -> k:((unit, error) result -> unit) -> unit

val read_flow :
  t ->
  flow:int ->
  off:int ->
  len:int ->
  k:((unit, error) result -> unit) ->
  unit
(** Like {!read}, carrying a causal flow id ({!Sim.Trace.no_flow} for
    none): when flow tracing is on ({!Sim.Trace.flows_on}), a
    ["pfs.disk"] flow step is recorded at the operation's completion
    instant. *)

val write_flow :
  t ->
  flow:int ->
  off:int ->
  len:int ->
  k:((unit, error) result -> unit) ->
  unit

val fail : t -> unit
(** The disk stops answering (head crash).  Queued operations complete
    with [Error `Failed]. *)

val repair : t -> unit
val failed : t -> bool

(** {1 Scripted failure windows}

    Deterministic fault schedules: the disk fails at a simulated
    instant (clamped to now), permanently or for a bounded window.
    Operations in flight when the failure strikes complete with
    [Error `Failed] — the mid-read case the RAID layer must survive. *)

val fail_at : t -> at:Sim.Time.t -> unit

val fail_for : t -> at:Sim.Time.t -> duration:Sim.Time.t -> unit

(** {1 Statistics} *)

val head : t -> int
(** Byte position of the head after the last queued operation. *)

val reads : t -> int
val writes : t -> int
val bytes_read : t -> int
val bytes_written : t -> int
val busy_time : t -> Sim.Time.t
(** Total time servicing operations (seek + rotation + transfer). *)

val seek_time : t -> Sim.Time.t
(** The seek and rotation share of [busy_time]. *)

val reset_stats : t -> unit
