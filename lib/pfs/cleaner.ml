type stats = {
  segments_cleaned : int;
  bytes_moved : int;
  bytes_reclaimed : int;
  entries_processed : int;
  table_entries_scanned : int;
  scan_cost : Sim.Time.t;
  duration : Sim.Time.t;
}

let pp_stats fmt s =
  Format.fprintf fmt
    "cleaned=%d moved=%dB reclaimed=%dB entries=%d scanned=%d scan=%a total=%a"
    s.segments_cleaned s.bytes_moved s.bytes_reclaimed s.entries_processed
    s.table_entries_scanned Sim.Time.pp s.scan_cost Sim.Time.pp s.duration

let clean_sequentially log segments ~k =
  let rec go segments ~cleaned ~moved =
    match segments with
    | [] -> k ~segments:cleaned ~moved
    | seg :: rest ->
        if Log.segment_sealed log seg then
          Log.clean_segment log seg ~k:(fun r ->
              match r with
              | Ok n -> go rest ~cleaned:(cleaned + 1) ~moved:(moved + n)
              | Error _ -> go rest ~cleaned ~moved)
        else go rest ~cleaned ~moved
  in
  go segments ~cleaned:0 ~moved:0

let garbage_read_cost ~entries =
  let read_bps = 5_000_000.0 (* sequential, one disk *) in
  let read = Float.of_int (entries * 16) /. read_bps in
  let sort =
    if entries < 2 then 0.0
    else Float.of_int entries *. log (Float.of_int entries) *. 0.5e-6
  in
  Sim.Time.of_sec_f (read +. sort)

let run log ?(min_garbage = 1) k =
  let engine = Log.engine log in
  let metrics = Sim.Engine.metrics engine in
  let m_cleaned =
    Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Pfs
      ~help:"segments reclaimed by the cleaner" "cleaner.segments_cleaned"
  in
  let m_moved =
    Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Pfs
      ~help:"live bytes rewritten to evacuate victim segments"
      "cleaner.bytes_moved"
  in
  let m_reclaimed =
    Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Pfs
      ~help:"garbage bytes recovered" "cleaner.bytes_reclaimed"
  in
  let m_duration =
    Sim.Metrics.dist metrics ~sub:Sim.Subsystem.Pfs
      ~help:"wall time of one cleaner pass in ms" "cleaner.pass_ms"
  in
  let m_share =
    Sim.Metrics.gauge metrics ~sub:Sim.Subsystem.Pfs
      ~help:"fraction of log write bandwidth consumed by cleaner moves"
      "cleaner.write_share"
  in
  let m_appended =
    Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Pfs "log.bytes_appended"
  in
  let started = Sim.Engine.now engine in
  let pass_span =
    Sim.Trace.span_begin (Sim.Engine.trace engine) ~ts:started
      ~sub:Sim.Subsystem.Pfs ~cat:"cleaner" "cleaner_pass"
  in
  let g = Log.garbage log in
  Garbage.set_marker g;
  let entries = Garbage.before_marker g in
  let n_entries = List.length entries in
  let scan_cost = garbage_read_cost ~entries:n_entries in
  (* Group garbage by segment ("sort by segment number"). *)
  let per_seg = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let prev =
        match Hashtbl.find_opt per_seg e.Garbage.g_seg with
        | Some n -> n
        | None -> 0
      in
      Hashtbl.replace per_seg e.Garbage.g_seg (prev + e.Garbage.g_len))
    entries;
  let victims =
    Hashtbl.fold
      (fun seg bytes acc ->
        (* Only sealed segments can be cleaned; garbage sitting in an
           open segment is collected once that segment seals. *)
        if bytes >= min_garbage && Log.segment_sealed log seg then
          (seg, bytes) :: acc
        else acc)
      per_seg []
    |> List.sort compare
  in
  let reclaimable = List.fold_left (fun acc (_, b) -> acc + b) 0 victims in
  ignore
    (Sim.Engine.schedule engine ~delay:scan_cost (fun () ->
         clean_sequentially log (List.map fst victims) ~k:(fun ~segments ~moved ->
             (* Entries for still-open segments go back after the marker
                so a later pass can reclaim them. *)
             let survivors =
               List.filter
                 (fun e -> not (List.mem_assoc e.Garbage.g_seg victims))
                 entries
             in
             Garbage.truncate_to_marker g;
             List.iter
               (fun e ->
                 Garbage.append g ~seg:e.Garbage.g_seg ~off:e.Garbage.g_off
                   ~len:e.Garbage.g_len)
               survivors;
             let duration = Sim.Time.sub (Sim.Engine.now engine) started in
             Sim.Metrics.incr m_cleaned ~by:segments;
             Sim.Metrics.incr m_moved ~by:moved;
             Sim.Metrics.incr m_reclaimed ~by:reclaimable;
             Sim.Metrics.observe m_duration (Sim.Time.to_ms_f duration);
             let appended = Sim.Metrics.value m_appended in
             if appended > 0 then
               Sim.Metrics.set m_share
                 (Float.of_int (Sim.Metrics.value m_moved)
                 /. Float.of_int appended);
             Sim.Trace.span_end (Sim.Engine.trace engine)
               ~ts:(Sim.Engine.now engine)
               ~args:
                 [
                   ("segments", Sim.Trace.Int segments);
                   ("bytes_moved", Sim.Trace.Int moved);
                   ("bytes_reclaimed", Sim.Trace.Int reclaimable);
                 ]
               pass_span;
             k
               {
                 segments_cleaned = segments;
                 bytes_moved = moved;
                 bytes_reclaimed = reclaimable;
                 entries_processed = n_entries;
                 table_entries_scanned = 0;
                 scan_cost;
                 duration;
               })))
